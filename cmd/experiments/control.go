package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"timerstudy/internal/control"
	"timerstudy/internal/fleet"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
	"timerstudy/internal/workloads"
)

// The steered-fleet mode: wrap the -fleet scenario in the control plane so
// a run can be perturbed (-steer, -poll), recorded (-record-commands),
// replayed (-replay-commands), interrupted (-checkpoint -stop-window) and
// resumed (-resume). Every path prints the same "control digest:" line the
// check.sh gates compare: a replayed or resumed run must land on the exact
// digest of the original.

var (
	listFl          = flag.Bool("list", false, "list scenarios, workloads and steering commands, then exit")
	steerFl         = flag.String("steer", "", "steer the fleet: comma-separated window:kind:host[:arg[:dur]] commands (see -list)")
	recordCmdFl     = flag.String("record-commands", "", "write the applied command log (TCMD) to this file at exit")
	replayCmdFl     = flag.String("replay-commands", "", "replay a recorded command log (TCMD) from this file")
	checkpointFl    = flag.String("checkpoint", "", "write a checkpoint (TCKP) to this file (at -stop-window, or at run end)")
	stopWindowFl    = flag.Int("stop-window", 0, "stop the controlled run at this window boundary (requires -checkpoint)")
	resumeFl        = flag.String("resume", "", "resume a controlled run from this checkpoint file")
	keyframeEveryFl = flag.Int("keyframe-every", 0, "automatic keyframe cadence in windows (0 = control-plane default)")
	pollFl          = flag.String("poll", "", "poll a timerstat -serve command hub at this base URL for steering commands")
)

// controlMode reports whether any control-plane flag asks for the steered
// fleet path instead of plain -fleet.
func controlMode() bool {
	return *steerFl != "" || *replayCmdFl != "" || *checkpointFl != "" ||
		*resumeFl != "" || *pollFl != "" || *recordCmdFl != ""
}

// controlBench is the "control" key merged into the -bench JSON report.
type controlBench struct {
	Hosts            int     `json:"hosts"`
	Workers          int     `json:"workers"`
	Windows          int     `json:"windows"`
	CommandsApplied  int     `json:"commands_applied"`
	CheckpointMS     float64 `json:"checkpoint_ms"`
	CheckpointBytes  int     `json:"checkpoint_bytes"`
	ResumeForwardMS  float64 `json:"resume_fastforward_ms"`
	WallMS           float64 `json:"wall_ms"`
	Digest           string  `json:"digest"`
}

// parseSteer turns the -steer spec into commands. Format, comma-separated:
//
//	window:kind:host[:arg[:dur]]
//
// window is the boundary to apply at (0 = next); kind is a control.Kind
// name; host is a fabric name or "*"; arg is numeric, with the mnemonics
// fixed/adaptive (policy) and heap/wheel (queue); dur is a Go duration.
func parseSteer(spec string, f *fleet.Fleet) ([]control.Command, error) {
	var cmds []control.Command
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		parts := strings.Split(field, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("steer %q: want window:kind:host[:arg[:dur]]", field)
		}
		window, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("steer %q: bad window: %v", field, err)
		}
		kind, err := control.ParseKind(parts[1])
		if err != nil {
			return nil, fmt.Errorf("steer %q: %v", field, err)
		}
		host, err := resolveHost(f, parts[2])
		if err != nil {
			return nil, fmt.Errorf("steer %q: %v", field, err)
		}
		c := control.Command{Window: window, Kind: kind, Host: host}
		if len(parts) > 3 {
			c.Arg, err = parseArg(kind, parts[3])
			if err != nil {
				return nil, fmt.Errorf("steer %q: %v", field, err)
			}
		}
		if len(parts) > 4 {
			d, err := time.ParseDuration(parts[4])
			if err != nil {
				return nil, fmt.Errorf("steer %q: bad duration: %v", field, err)
			}
			c.Dur = sim.FromStd(d)
		}
		cmds = append(cmds, c)
	}
	return cmds, nil
}

// parseArg resolves a steer argument, accepting the kind's mnemonics.
func parseArg(kind control.Kind, s string) (int64, error) {
	switch kind {
	case control.KindPolicy:
		switch s {
		case "fixed":
			return fleet.PolicyFixed, nil
		case "adaptive":
			return fleet.PolicyAdaptive, nil
		}
	case control.KindQueue:
		if qk, err := sim.ParseQueueKind(s); err == nil {
			return int64(qk), nil
		}
	case control.KindCoalesce:
		// Coalescing windows read best as durations ("100ms"), falling
		// through to raw nanoseconds for scripts that compute them.
		if d, err := time.ParseDuration(s); err == nil {
			return int64(sim.FromStd(d)), nil
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad argument %q for %s", s, kind)
	}
	return n, nil
}

// resolveHost maps "*" or a fabric name to a control host index.
func resolveHost(f *fleet.Fleet, name string) (int32, error) {
	if name == "*" {
		return -1, nil
	}
	for i, h := range f.Hosts() {
		if h.Name == name {
			return int32(i), nil
		}
	}
	return 0, fmt.Errorf("unknown host %q", name)
}

// hubPoller drains a timerstat -serve command hub and reports verdicts
// back, making the dashboard's steering form drive this run.
type hubPoller struct {
	base   string
	client *http.Client
	last   time.Time
}

// hubStaged mirrors serve.StagedCommand without importing the service.
type hubStaged struct {
	Ticket uint64 `json:"ticket"`
	Kind   string `json:"kind"`
	Host   string `json:"host"`
	Arg    int64  `json:"arg"`
	DurMS  int64  `json:"dur_ms"`
	Window uint64 `json:"window"`
}

// hubResult mirrors serve.CommandResult.
type hubResult struct {
	Ticket   uint64 `json:"ticket"`
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	Window   uint64 `json:"window,omitempty"`
}

// poll drains the hub once per pollInterval of wall time: barriers are
// microseconds apart, HTTP round trips are not.
func (hp *hubPoller) poll(p *control.Plane) {
	if hp == nil || time.Since(hp.last) < pollInterval {
		return
	}
	hp.last = time.Now()
	resp, err := hp.client.Post(hp.base+"/api/command/drain", "application/json", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -poll: %v\n", err)
		return
	}
	var drained struct {
		Commands []hubStaged `json:"commands"`
	}
	err = json.NewDecoder(resp.Body).Decode(&drained)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -poll: bad drain body: %v\n", err)
		return
	}
	results := make([]hubResult, 0, len(drained.Commands))
	for _, sc := range drained.Commands {
		res := hubResult{Ticket: sc.Ticket}
		c, err := hubCommand(p, sc)
		if err != nil {
			res.Reason = err.Error()
		} else if ok, reason := p.Enqueue(c); !ok {
			res.Reason = reason
		} else {
			res.Accepted = true
			pend := p.Pending()
			res.Seq = pend[len(pend)-1].Seq
			res.Window = pend[len(pend)-1].Window
		}
		results = append(results, res)
	}
	hp.report(p, results)
}

// hubCommand converts one hub entry to a control command.
func hubCommand(p *control.Plane, sc hubStaged) (control.Command, error) {
	kind, err := control.ParseKind(sc.Kind)
	if err != nil {
		return control.Command{}, err
	}
	host, err := resolveHost(p.Fleet(), sc.Host)
	if err != nil {
		return control.Command{}, err
	}
	return control.Command{
		Window: sc.Window,
		Kind:   kind,
		Host:   host,
		Arg:    sc.Arg,
		Dur:    sim.Duration(sc.DurMS) * sim.Millisecond,
	}, nil
}

// report posts verdicts, the current snapshot and fresh patches to the hub.
func (hp *hubPoller) report(p *control.Plane, results []hubResult) {
	snap, _ := json.Marshal(p.Snapshot())
	patches, _ := json.Marshal(p.DrainPatches())
	body, _ := json.Marshal(struct {
		Results  []hubResult     `json:"results,omitempty"`
		Snapshot json.RawMessage `json:"snapshot,omitempty"`
		Patches  json.RawMessage `json:"patches,omitempty"`
	}{results, snap, patches})
	resp, err := hp.client.Post(hp.base+"/api/command/report", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -poll: report: %v\n", err)
		return
	}
	resp.Body.Close()
}

// controlSpec builds the run identity from the fleet flags, mirroring
// runFleet's host split.
func controlSpec(queue sim.QueueKind) (control.Spec, error) {
	hosts := *hostsFl
	if hosts < 1 {
		return control.Spec{}, fmt.Errorf("-hosts must be at least 1")
	}
	ws := hosts / 8
	if ws < 1 {
		ws = 1
	}
	return control.Spec{
		Webservers: ws,
		Desktops:   hosts - ws,
		Seed:       *seedFlag,
		Queue:      queue.String(),
		End:        sim.FromStd(*fleetDurFl),
	}, nil
}

// runControl is the steered-fleet entry point; returns the exit code.
func runControl(queue sim.QueueKind) int {
	workers := *fleetWorkersFl
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts := []control.Option{control.WithWorkers(workers)}
	if *keyframeEveryFl > 0 {
		opts = append(opts, control.WithKeyframeEvery(*keyframeEveryFl))
	}

	var (
		p         *control.Plane
		err       error
		resumeFwd time.Duration
	)
	switch {
	case *resumeFl != "":
		data, rerr := os.ReadFile(*resumeFl)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: -resume: %v\n", rerr)
			return 1
		}
		cp, rerr := trace.ReadCheckpoint(bytes.NewReader(data))
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: -resume: %v\n", rerr)
			return 1
		}
		t0 := time.Now()
		p, err = control.Resume(cp, opts...)
		resumeFwd = time.Since(t0)
		if err == nil {
			fmt.Printf("control: resumed %q at window %d (fast-forward %.0f ms, %d hosts verified)\n",
				cp.Label, cp.Window, resumeFwd.Seconds()*1e3, len(cp.Hosts))
		}
	case *replayCmdFl != "":
		spec, serr := controlSpec(queue)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", serr)
			return 2
		}
		data, rerr := os.ReadFile(*replayCmdFl)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: -replay-commands: %v\n", rerr)
			return 1
		}
		log, derr := control.DecodeCommands(data)
		if derr != nil {
			fmt.Fprintf(os.Stderr, "experiments: -replay-commands: %v\n", derr)
			return 1
		}
		p, err = control.Replay(spec, log, opts...)
		if err == nil {
			fmt.Printf("control: replaying %d recorded commands\n", len(log))
		}
	default:
		spec, serr := controlSpec(queue)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", serr)
			return 2
		}
		p, err = control.NewPlane(spec, opts...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	spec := p.Spec()
	fmt.Printf("control: %d hosts (%d webservers, %d desktops), %v virtual, seed %d, %s queue, workers %d\n",
		spec.Webservers+spec.Desktops, spec.Webservers, spec.Desktops,
		spec.End, spec.Seed, spec.Queue, workers)

	if *steerFl != "" {
		cmds, serr := parseSteer(*steerFl, p.Fleet())
		if serr != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", serr)
			return 2
		}
		for _, c := range cmds {
			if ok, reason := p.Enqueue(c); !ok {
				fmt.Fprintf(os.Stderr, "experiments: -steer %s@%d: %s\n", c.Kind, c.Window, reason)
				return 2
			}
		}
		fmt.Printf("control: staged %d steering commands\n", len(cmds))
	}

	var poller *hubPoller
	if *pollFl != "" {
		poller = &hubPoller{base: strings.TrimRight(*pollFl, "/"), client: &http.Client{Timeout: pollInterval}}
		fmt.Printf("control: polling %s for commands\n", poller.base)
	}

	// The drive loop: poll, advance, until the stop window or the end.
	start := time.Now()
	stopped := false
	for {
		if *stopWindowFl > 0 && p.Windows() >= *stopWindowFl {
			stopped = true
			break
		}
		poller.poll(p)
		if !p.Advance() {
			break
		}
	}

	var (
		ckptWall  time.Duration
		ckptBytes int
	)
	if stopped {
		if *checkpointFl == "" {
			fmt.Fprintln(os.Stderr, "experiments: -stop-window without -checkpoint would discard the run")
			p.Abort()
			return 2
		}
		t0 := time.Now()
		cp := p.Checkpoint("experiments -checkpoint")
		var buf bytes.Buffer
		if err := trace.WriteCheckpoint(&buf, cp); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -checkpoint: %v\n", err)
			p.Abort()
			return 1
		}
		ckptWall = time.Since(t0)
		ckptBytes = buf.Len()
		if err := os.WriteFile(*checkpointFl, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -checkpoint: %v\n", err)
			p.Abort()
			return 1
		}
		p.Abort()
		fmt.Printf("control: checkpoint %s at window %d (%d hosts, %d bytes, %.1f ms)\n",
			*checkpointFl, cp.Window, len(cp.Hosts), ckptBytes, ckptWall.Seconds()*1e3)
		fmt.Printf("control stopped: window=%d resume with -resume %s\n", cp.Window, *checkpointFl)
		return emitControlArtifacts(p, workers, ckptWall, ckptBytes, resumeFwd, time.Since(start), stopped)
	}

	stats := p.Finish()
	wall := time.Since(start)
	digest := p.Fleet().Digest()
	fmt.Printf("control: %d windows, %d events, %d commands applied, traffic %d sent / %d delivered / %d lost\n",
		stats.Windows, stats.Events, len(p.CommandLog()), stats.Sent, stats.Delivered, stats.Lost)
	if *checkpointFl != "" {
		t0 := time.Now()
		cp := p.Checkpoint("experiments -checkpoint (end of run)")
		var buf bytes.Buffer
		if err := trace.WriteCheckpoint(&buf, cp); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -checkpoint: %v\n", err)
			return 1
		}
		ckptWall = time.Since(t0)
		ckptBytes = buf.Len()
		if err := os.WriteFile(*checkpointFl, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -checkpoint: %v\n", err)
			return 1
		}
		fmt.Printf("control: checkpoint %s at window %d (%d bytes, %.1f ms)\n",
			*checkpointFl, cp.Window, ckptBytes, ckptWall.Seconds()*1e3)
	}
	fmt.Printf("control digest: %016x windows=%d workers=%d\n", digest, stats.Windows, workers)
	return emitControlArtifacts(p, workers, ckptWall, ckptBytes, resumeFwd, wall, stopped)
}

// emitControlArtifacts writes the command log and the bench key; shared by
// the stopped and completed exits.
func emitControlArtifacts(p *control.Plane, workers int, ckptWall time.Duration, ckptBytes int, resumeFwd, wall time.Duration, stopped bool) int {
	if *recordCmdFl != "" {
		history := append(p.CommandLog(), p.Pending()...)
		if err := os.WriteFile(*recordCmdFl, control.EncodeCommands(history), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -record-commands: %v\n", err)
			return 1
		}
		fmt.Printf("control: recorded %d commands to %s\n", len(history), *recordCmdFl)
	}
	if *benchFl != "" {
		spec := p.Spec()
		digest := ""
		if !stopped {
			digest = fmt.Sprintf("%016x", p.Fleet().Digest())
		}
		cb := controlBench{
			Hosts:           spec.Webservers + spec.Desktops,
			Workers:         workers,
			Windows:         p.Windows(),
			CommandsApplied: len(p.CommandLog()),
			CheckpointMS:    ckptWall.Seconds() * 1e3,
			CheckpointBytes: ckptBytes,
			ResumeForwardMS: resumeFwd.Seconds() * 1e3,
			WallMS:          wall.Seconds() * 1e3,
			Digest:          digest,
		}
		if err := mergeBenchKey(*benchFl, "control", cb); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchFl, err)
			return 1
		}
	}
	return 0
}

// runList enumerates what this binary can run — the -list satellite: no
// more guessing scenario or command names from error messages.
func runList() int {
	fmt.Println("scenarios:")
	fmt.Println("  (default)      the paper's evaluation traces (Tables 1-3, Figures 2-11)")
	fmt.Println("  -fleet         parallel datacenter fleet with determinism verification")
	fmt.Println("  -serve-bench   loopback live-service ingest/query benchmark")
	fmt.Println("  -steer/-poll/-checkpoint/-resume/-replay-commands")
	fmt.Println("                 steered fleet under the deterministic control plane")
	fmt.Println()
	fmt.Println("workloads (single-host traces):")
	for _, os := range []struct {
		name  string
		names []string
	}{{"linux", workloads.LinuxWorkloads()}, {"vista", workloads.VistaWorkloads()}} {
		for _, w := range os.names {
			fmt.Printf("  %s/%s\n", os.name, w)
		}
	}
	fmt.Println()
	fmt.Println("steering commands (window:kind:host[:arg[:dur]], host \"*\" = fleet-wide):")
	fmt.Println("  spike     multiply desktop request rate by arg for dur (e.g. 10:spike:*:4:500ms)")
	fmt.Println("  kill      power a host off at the boundary (20:kill:ws-0000)")
	fmt.Println("  restart   power a killed host back on (60:restart:ws-0000)")
	fmt.Println("  policy    request-timeout policy: fixed | adaptive (25:policy:*:adaptive)")
	fmt.Println("  coalesce  periodic-timer coalescing window (30:coalesce:*:100ms)")
	fmt.Println("  queue     stage an event-queue swap for the next resume: heap | wheel")
	return 0
}
