package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"timerstudy/internal/analysis"
	"timerstudy/internal/serve"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
	"timerstudy/internal/workloads"
)

// Live-service integration: -emit streams every experiment trace to a
// running `timerstat -serve` while the simulations execute, and
// -serve-bench runs the whole loop in-process — producers × readers over a
// loopback listener — to measure the service's ingest and query throughput
// for the benchmark report.

var (
	emitFl           = flag.String("emit", "", "stream traces to a live timerstat -serve service at this base URL while running")
	serveBenchFl     = flag.Bool("serve-bench", false, "run the loopback live-service benchmark instead of the experiments")
	serveProducersFl = flag.Int("serve-producers", 8, "serve-bench: concurrent producer streams")
	serveReadersFl   = flag.Int("serve-readers", 4, "serve-bench: concurrent API readers")
	versionFl        = flag.Bool("version", false, "print build version and exit")
)

// emitTrace replays a finished run's in-memory trace to the -emit service
// under the given stream name. Emission is observability export, not part
// of the experiment: failures warn and drop, they never fail the run.
func emitTrace(url, name string, b *trace.Buffer) {
	sink, err := trace.NewHTTPSink(url, name, trace.HTTPSinkOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -emit %s: %v\n", name, err)
		return
	}
	for _, r := range b.Records() {
		r.Origin = sink.Origin(b.OriginName(r.Origin))
		sink.Log(r)
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -emit %s: %v\n", name, err)
	}
	if st := sink.Stats(); st.DroppedFrames > 0 {
		fmt.Fprintf(os.Stderr, "experiments: -emit %s: dropped %d frames (%d records)\n",
			name, st.DroppedFrames, st.DroppedRecords)
	}
}

// serveBench is the "serve" key of the benchmark JSON report.
type serveBench struct {
	Producers        int     `json:"producers"`
	Readers          int     `json:"readers"`
	Streams          uint64  `json:"streams"`
	Records          uint64  `json:"records"`
	WireBytes        uint64  `json:"wire_bytes"`
	Queries          uint64  `json:"queries"`
	WallMS           float64 `json:"wall_ms"`
	RecordsPerSec    float64 `json:"ingest_records_per_sec"`
	MBPerSec         float64 `json:"ingest_mb_per_sec"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	Merges           uint64  `json:"merges"`
	MergeLastMS      float64 `json:"merge_last_ms"`
	ServerHeapMB     float64 `json:"server_heap_mb"`
	DeterministicOff bool    `json:"matches_offline"`
}

// runServeBench measures the live service end to end on a loopback
// listener: N producers each simulate a workload and stream it through
// trace.HTTPSink while M readers poll the query API; after quiescing, the
// merged summary is diffed against the offline pipeline over the same
// traces (concatenated in stream-name order) — the same determinism
// contract the serve tests and the CI loopback gate pin.
func runServeBench(queue sim.QueueKind) int {
	producers, readers := *serveProducersFl, *serveReadersFl
	if producers < 1 || readers < 0 {
		fmt.Fprintln(os.Stderr, "experiments: -serve-producers must be >=1, -serve-readers >=0")
		return 2
	}
	dur := sim.FromStd(*durFlag)
	if *quick {
		dur = 2 * sim.Minute
	}
	p := benchPipeline()
	srv := serve.New(serve.Options{Pipeline: p, Version: "serve-bench"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	url := "http://" + ln.Addr().String()

	fmt.Printf("serve-bench: %d producers x %d readers, %v virtual per producer, seed %d\n",
		producers, readers, dur, *seedFlag)

	// Pre-simulate every producer's trace so the measured window is the
	// service (ingest + merge + query), not the simulator. Timer identities
	// are namespaced per producer — the serve/offline equivalence is over
	// streams with disjoint timer IDs, which distinct hosts guarantee.
	bufs := make([]*trace.Buffer, producers)
	names := make([]string, producers)
	for i := range bufs {
		cfg := workloads.Config{Seed: *seedFlag + int64(i), Duration: dur, Queue: queue}
		res := workloads.RunLinux(workloads.Idle, cfg)
		recs := res.Trace.Records()
		for j := range recs {
			recs[j].TimerID |= uint64(i+1) << 48
		}
		bufs[i] = res.Trace
		names[i] = fmt.Sprintf("bench-%03d", i)
	}

	stop := make(chan struct{})
	var queries uint64
	var qmu sync.Mutex
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			paths := []string{"/api/summary", "/api/origins", "/api/histograms", "/api/rates?window=30", "/api/streams", "/api/metrics"}
			n := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					qmu.Lock()
					queries += n
					qmu.Unlock()
					return
				default:
				}
				resp, err := http.Get(url + paths[(r+i)%len(paths)])
				if err == nil {
					resp.Body.Close()
					n++
				}
			}
		}(r)
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for i := range bufs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			emitTrace(url, names[i], bufs[i])
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	close(stop)
	rg.Wait()

	// Quiesced determinism check against the offline pipeline.
	resp, err := http.Get(url + "/api/summary")
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: serve-bench summary: %v\n", err)
		return 1
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: serve-bench summary: %v\n", err)
		return 1
	}
	total := 0
	for _, b := range bufs {
		total += len(b.Records())
	}
	oracle := trace.NewBuffer(total)
	for _, b := range bufs { // names are already in lexicographic order
		for _, r := range b.Records() {
			r.Origin = oracle.Origin(b.OriginName(r.Origin))
			oracle.Log(r)
		}
	}
	rep, err := p.Run(oracle)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: serve-bench oracle: %v\n", err)
		return 1
	}
	matches := string(served) == string(rep.SummaryJSON())
	if !matches {
		fmt.Fprintln(os.Stderr, "experiments: SERVE NONDETERMINISM: /api/summary != offline pipeline")
	}

	met := srv.Metrics.Snapshot("serve-bench", wall)
	sb := serveBench{
		Producers:        producers,
		Readers:          readers,
		Streams:          met.StreamsClosed,
		Records:          met.IngestRecords,
		WireBytes:        met.IngestBytes,
		Queries:          queries,
		WallMS:           wall.Seconds() * 1e3,
		RecordsPerSec:    float64(met.IngestRecords) / wall.Seconds(),
		MBPerSec:         float64(met.IngestBytes) / 1e6 / wall.Seconds(),
		QueriesPerSec:    float64(queries) / wall.Seconds(),
		Merges:           met.Merges,
		MergeLastMS:      met.MergeLastMS,
		ServerHeapMB:     float64(met.HeapAllocBytes) / 1e6,
		DeterministicOff: matches,
	}
	fmt.Printf("serve-bench: %d records (%d MB wire) in %.0f ms: %.0f records/sec, %.1f MB/sec\n",
		sb.Records, sb.WireBytes>>20, sb.WallMS, sb.RecordsPerSec, sb.MBPerSec)
	fmt.Printf("serve-bench: %d queries (%.0f/sec), %d merges (last %.1f ms), offline match=%v\n",
		sb.Queries, sb.QueriesPerSec, sb.Merges, sb.MergeLastMS, matches)

	if *benchFl != "" {
		if err := mergeBenchKey(*benchFl, "serve", sb); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchFl, err)
			return 1
		}
	}
	if !matches {
		return 1
	}
	return 0
}

// benchPipeline is the analysis configuration the serve benchmark and its
// offline oracle share: the same artifact set the single-host experiments
// compute.
func benchPipeline() analysis.Pipeline {
	return analysis.Pipeline{
		Values:        analysis.ValueOptions{JiffyBinKernel: true, MinSharePercent: 2},
		OriginMinSets: 10,
	}
}

// mergeBenchKey sets one key in a benchmark JSON report (created if
// absent), preserving other keys — the same merge contract the fleet and
// lint benches use.
func mergeBenchKey(path, key string, v any) error {
	report := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	report[key] = v
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
