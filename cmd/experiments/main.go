// Command experiments regenerates every table and figure in the paper's
// evaluation from the simulated systems, printing them in order. Its output
// is the basis of EXPERIMENTS.md.
//
// The ten evaluation traces (four Linux + four Vista workloads, the 90 s
// Vista desktop behind Figure 1, and the Section 5.2 webserver trace) are
// independent deterministic simulations, so they fan out across a worker
// pool and each trace is reduced to its tables/figures in the worker via
// analysis.Pipeline — the trace buffer is released before the next run
// starts on that worker. Output is byte-identical at any worker count.
//
// Usage:
//
//	experiments              # full 30-minute virtual traces (the paper's length)
//	experiments -quick       # 2-minute traces for a fast look
//	experiments -j 4         # cap the worker pool (default GOMAXPROCS)
//	experiments -bench f.json # also write machine-readable wall-clock timings
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"timerstudy/internal/analysis"
	"timerstudy/internal/core"
	"timerstudy/internal/dispatch"
	"timerstudy/internal/jiffies"
	"timerstudy/internal/kernel"
	"timerstudy/internal/layers"
	"timerstudy/internal/sim"
	"timerstudy/internal/softtimer"
	"timerstudy/internal/trace"
	"timerstudy/internal/version"
	"timerstudy/internal/workloads"
)

var (
	durFlag   = flag.Duration("duration", 30*time.Minute, "virtual duration per trace")
	seedFlag  = flag.Int64("seed", 1, "simulation seed")
	quick     = flag.Bool("quick", false, "use 2-minute traces")
	workersFl = flag.Int("j", 0, "workload worker pool size (0 = GOMAXPROCS)")
	benchFl   = flag.String("bench", "", "write a machine-readable timing report (JSON) to this file")
	queueFl   = flag.String("queue", "", "engine event queue: heap (default) or wheel")
	spillFl   = flag.Bool("spill", false, "stream each trace to a temp file during the run and analyze it from disk (bounded memory)")
	strictFl  = flag.Bool("strict", false, "exit nonzero if any run dropped trace records")
	cpuproFl  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memproFl  = flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")

	fleetFl        = flag.Bool("fleet", false, "run the datacenter fleet scenario instead of the single-host experiments")
	hostsFl        = flag.Int("hosts", 1024, "fleet: total host count (1/8 webservers, rest desktops)")
	fleetWorkersFl = flag.Int("fleet-workers", 0, "fleet: parallel host workers (0 = GOMAXPROCS); a workers=1 verification pass runs first when >1")
	fleetDurFl     = flag.Duration("fleet-duration", 30*time.Second, "fleet: virtual duration")
)

// artifacts is everything we keep from one workload run after its trace is
// released.
type artifacts struct {
	name    string
	summary analysis.Summary
	shares  analysis.ClassShares
	values  []analysis.ValueEntry
	valuesF []analysis.ValueEntry // filtered (Figure 5)
	valuesU []analysis.ValueEntry // user-only (Figure 6)
	scatter []analysis.ScatterPoint
	series  []analysis.SeriesPoint // Xorg select (idle only)
	origins []analysis.OriginRow
}

// analyze reduces one finished run to its artifacts in a single pass over
// the record source (summary + every histogram at once). The source may be
// the run's own in-memory buffer or a spill file replaying from disk; the
// artifacts are byte-identical either way.
func analyze(res *workloads.Result, src trace.Source) (artifacts, error) {
	sOpts := analysis.DefaultScatterOptions()
	sOpts.ExcludeProcesses = []string{"Xorg", "icewm"}
	rep, err := analysis.Pipeline{
		Values: analysis.ValueOptions{JiffyBinKernel: res.OS == "linux", MinSharePercent: 2},
		ValuesFiltered: &analysis.ValueOptions{
			JiffyBinKernel: res.OS == "linux", MinSharePercent: 2,
			CollapseCountdowns: true, ExcludeProcesses: []string{"Xorg", "icewm"},
		},
		ValuesUser: &analysis.ValueOptions{
			UserOnly: true, MinSharePercent: 2, CollapseCountdowns: true,
		},
		Scatter:       &sOpts,
		SeriesProcess: "Xorg",
		OriginMinSets: 50,
	}.Run(src)
	if err != nil {
		return artifacts{}, err
	}
	return artifacts{
		name:    res.Name,
		summary: rep.Summary,
		shares:  rep.Shares,
		values:  rep.Values,
		valuesF: rep.ValuesFiltered,
		valuesU: rep.ValuesUser,
		scatter: rep.Scatter,
		series:  rep.Series,
		origins: rep.Origins,
	}, nil
}

// runSpec executes one workload spec and hands its records to reduce as a
// one-shot trace.Source. In-memory mode the source is the run's own buffer.
// In spill mode the records stream to a temp file during the run (the buffer
// is never built) and replay from disk, so peak memory is bounded by live
// timers, not trace length; the file is removed before returning.
func runSpec(spec workloads.Spec, spill bool, reduce func(res *workloads.Result, src trace.Source) error) (*workloads.Result, error) {
	emit := *emitFl
	stream := fmt.Sprintf("%s-%s", spec.OS, spec.Name)
	if !spill {
		res := spec.Run()
		if emit != "" {
			// Replay the in-memory trace to the live service; export is
			// best-effort and never fails the experiment.
			emitTrace(emit, stream, res.Trace)
		}
		return res, reduce(res, res.Trace)
	}
	f, err := os.CreateTemp("", "timerstudy-spill-*.trace")
	if err != nil {
		return nil, err
	}
	defer func() {
		f.Close()
		os.Remove(f.Name())
	}()
	sw := trace.NewStreamWriter(f)
	spec.Cfg.Sink = sw
	var hs *trace.HTTPSink
	if emit != "" {
		// Single pass: tee the spill stream to the live service while the
		// simulation writes it.
		if hs, err = trace.NewHTTPSink(emit, stream, trace.HTTPSinkOptions{}); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -emit %s: %v\n", stream, err)
			hs = nil
		} else {
			spec.Cfg.Sink = trace.Tee(sw, hs)
		}
	}
	res := spec.Run()
	if hs != nil {
		if err := hs.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -emit %s: %v\n", stream, err)
		}
	}
	if err := sw.Close(); err != nil {
		return nil, fmt.Errorf("spill encode: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	src, err := trace.NewStreamReader(f)
	if err != nil {
		return nil, fmt.Errorf("spill replay: %w", err)
	}
	return res, reduce(res, src)
}

// experimentSet holds every artifact the figure writer needs, in workload
// order. It is a pure function of (seed, dur) — worker count never changes
// its contents, which TestParallelMatchesSerial asserts byte-for-byte.
type experimentSet struct {
	dur          sim.Duration
	names        []string
	linux        []artifacts
	vista        []artifacts
	desktopRates []analysis.RateSeries
	relations    []analysis.InferredRelation
	dropped      []droppedRun
}

// droppedRun records a workload whose trace buffer overflowed: its analyses
// silently cover only the stored prefix.
type droppedRun struct {
	os, name       string
	dropped, total uint64
}

// warnDropped prints a warning per overflowed run and reports whether any
// run dropped records.
func warnDropped(w io.Writer, set experimentSet) bool {
	for _, d := range set.dropped {
		fmt.Fprintf(w, "WARNING: %s/%s dropped %d of %d trace records (buffer full); its analyses cover only the stored prefix — rerun with -spill or a larger trace cap\n",
			d.os, d.name, d.dropped, d.total)
	}
	return len(set.dropped) > 0
}

// computeExperiments runs the ten evaluation traces on a pool of workers
// and reduces each to its artifacts inside the worker goroutine. With spill
// the traces stream to temp files instead of memory; the artifacts are
// byte-identical (TestSpillMatchesMemory).
func computeExperiments(seed int64, dur sim.Duration, queue sim.QueueKind, workers int, spill bool, bench *benchReport) (experimentSet, error) {
	cfg := workloads.Config{Seed: seed, Duration: dur, Queue: queue}
	specs := workloads.EvaluationSpecs(cfg)
	desktopIdx := len(specs) - 1
	relationsIdx := len(specs)
	specs = append(specs, workloads.Spec{
		OS: "linux", Name: workloads.Webserver,
		Cfg: workloads.Config{Seed: seed, Duration: relationsTraceDuration, Queue: queue},
	})

	set := experimentSet{
		dur:   dur,
		names: workloads.LinuxWorkloads(),
		linux: make([]artifacts, len(workloads.LinuxWorkloads())),
		vista: make([]artifacts, len(workloads.VistaWorkloads())),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	timings := make([]runTiming, len(specs))
	errs := make([]error, len(specs))

	var phase0 runtime.MemStats
	if bench != nil {
		runtime.ReadMemStats(&phase0)
	}
	start := time.Now()
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < min(workers, len(specs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				var m0, m1 runtime.MemStats
				if bench != nil {
					// Global counters: under a parallel pool each delta
					// includes neighbouring workers' allocations, so
					// per-run numbers are upper bounds there (workers=1
					// is exact). Totals use the phase-wide delta, which
					// is exact at any worker count.
					runtime.ReadMemStats(&m0)
				}
				t0 := time.Now()
				var t1 time.Time
				res, err := runSpec(specs[i], spill, func(res *workloads.Result, src trace.Source) error {
					t1 = time.Now()
					switch {
					case i < len(set.linux):
						a, err := analyze(res, src)
						if err != nil {
							return err
						}
						set.linux[i] = a
					case i < desktopIdx:
						a, err := analyze(res, src)
						if err != nil {
							return err
						}
						set.vista[i-len(set.linux)] = a
					case i == desktopIdx:
						set.desktopRates = analysis.SetRates(src, res.Duration, workloads.DesktopGrouper())
					case i == relationsIdx:
						set.relations = analysis.InferRelations(analysis.Lifecycles(src), analysis.InferOptions{})
					}
					return nil
				})
				if err != nil {
					errs[i] = fmt.Errorf("%s/%s: %w", specs[i].OS, specs[i].Name, err)
					continue
				}
				if t1.IsZero() {
					t1 = time.Now()
				}
				timings[i] = runTiming{
					run:     t1.Sub(t0),
					analyze: time.Since(t1),
					records: int(res.Counters.Total - res.Counters.Dropped),
					dropped: res.Counters.Dropped,
				}
				if bench != nil {
					runtime.ReadMemStats(&m1)
					timings[i].mallocs = m1.Mallocs - m0.Mallocs
					timings[i].allocBytes = m1.TotalAlloc - m0.TotalAlloc
				}
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)
	var phaseMallocs, phaseBytes uint64
	if bench != nil {
		var phase1 runtime.MemStats
		runtime.ReadMemStats(&phase1)
		phaseMallocs = phase1.Mallocs - phase0.Mallocs
		phaseBytes = phase1.TotalAlloc - phase0.TotalAlloc
	}
	for i, e := range errs {
		if e != nil {
			return set, e
		}
		if timings[i].dropped > 0 {
			set.dropped = append(set.dropped, droppedRun{
				os: specs[i].OS, name: specs[i].Name,
				dropped: timings[i].dropped,
				total:   timings[i].dropped + uint64(timings[i].records),
			})
		}
	}
	bench.recordCompute(specs, timings, workers, wall, phaseMallocs, phaseBytes)
	return set, nil
}

func headerTo(w io.Writer, s string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", s)
}

func header(s string) { headerTo(os.Stdout, s) }

// writeFigures prints Tables 1-3 and Figures 1-11 from a computed set. It
// is deterministic: same set in, same bytes out, regardless of how the set
// was computed.
func writeFigures(w io.Writer, s experimentSet, bench *benchReport) {
	names := s.names

	bench.section("table-1-linux-summary", func() {
		headerTo(w, "Table 1: Linux trace summary")
		printSummaries(w, s.linux, false)
	})
	bench.section("table-2-vista-summary", func() {
		headerTo(w, "Table 2: Vista trace summary (timers clustered by call site, as Section 3.3)")
		printSummaries(w, s.vista, true)
	})

	bench.section("figure-1-desktop-rates", func() {
		headerTo(w, "Figure 1: Timer usage frequency in Vista (90 s desktop trace)")
		fmt.Fprint(w, analysis.RenderRates(s.desktopRates))
	})

	bench.section("figure-2-class-shares", func() {
		headerTo(w, "Figure 2: Common Linux timer usage patterns (% of timers)")
		shares := make([]analysis.ClassShares, len(s.linux))
		for i := range s.linux {
			shares[i] = s.linux[i].shares
		}
		fmt.Fprint(w, analysis.RenderClassShares(names, shares))
	})

	bench.section("figures-3-7-value-histograms", func() {
		headerTo(w, "Figure 3: Common Linux timer values (>=2%)")
		for _, a := range s.linux {
			fmt.Fprintf(w, "-- %s --\n%s", a.name, analysis.RenderValues(a.values))
		}
		headerTo(w, "Figure 4: X server select countdown (idle trace)")
		fmt.Fprint(w, analysis.RenderSeries(s.linux[0].series, s.dur))
		headerTo(w, "Figure 5: Common Linux values, X/icewm filtered, countdowns collapsed")
		for _, a := range s.linux {
			fmt.Fprintf(w, "-- %s --\n%s", a.name, analysis.RenderValues(a.valuesF))
		}
		headerTo(w, "Figure 6: Common Linux syscall (user-space) timer values")
		for _, a := range s.linux {
			fmt.Fprintf(w, "-- %s --\n%s", a.name, analysis.RenderValues(a.valuesU))
		}
		headerTo(w, "Figure 7: Common Vista timeout values")
		for _, a := range s.vista {
			fmt.Fprintf(w, "-- %s --\n%s", a.name, analysis.RenderValues(a.values))
		}
	})

	bench.section("figures-8-11-scatter", func() {
		figNames := []string{"Figure 8 (Idle)", "Figure 9 (Skype)", "Figure 10 (Firefox)", "Figure 11 (Webserver)"}
		for i := range names {
			headerTo(w, figNames[i]+": expiry/cancelation time vs timeout value")
			fmt.Fprintf(w, "-- Linux --\n%s", analysis.RenderScatter(s.linux[i].scatter))
			fmt.Fprintf(w, "-- Vista --\n%s", analysis.RenderScatter(s.vista[i].scatter))
		}
	})

	bench.section("table-3-origins", func() {
		headerTo(w, "Table 3: Origins and classification of frequent Linux timeout values")
		fmt.Fprint(w, analysis.RenderOrigins(mergeOrigins(s.linux)))
	})
}

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so the pprof writers below always flush.
func run() int {
	flag.Parse()
	if *versionFl {
		fmt.Println(version.String())
		return 0
	}
	dur := sim.FromStd(*durFlag)
	if *quick {
		dur = 2 * sim.Minute
	}
	queue, err := sim.ParseQueueKind(*queueFl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	if *listFl {
		return runList()
	}
	if *serveBenchFl {
		return runServeBench(queue)
	}
	if controlMode() {
		return runControl(queue)
	}
	if *fleetFl {
		return runFleet(queue)
	}
	cfg := workloads.Config{Seed: *seedFlag, Duration: dur, Queue: queue}
	fmt.Printf("timerstudy experiments: %v virtual per trace, seed %d, %s event queue\n", dur, *seedFlag, queue)

	if *cpuproFl != "" {
		f, err := os.Create(*cpuproFl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var bench *benchReport
	if *benchFl != "" {
		bench = &benchReport{Config: benchConfig{
			Seed:            *seedFlag,
			VirtualPerTrace: dur.String(),
			Quick:           *quick,
			Workers:         *workersFl,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			Queue:           queue.String(),
		}}
	}

	set, err := computeExperiments(*seedFlag, dur, queue, *workersFl, *spillFl, bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	writeFigures(os.Stdout, set, bench)
	if warnDropped(os.Stderr, set) && *strictFl {
		fmt.Fprintln(os.Stderr, "experiments: -strict: trace records were dropped")
		return 1
	}

	bench.section("section-3.2-overhead", func() {
		header("Section 3.2: instrumentation overhead")
		overheadExperiment(cfg)
	})
	bench.section("section-2.2.2-layers", func() {
		header("Section 2.2.2: layered timeouts (open a file share)")
		layersExperiment()
	})
	bench.section("section-5.1-adaptive", func() {
		header("Section 5.1: adaptive timeouts vs the fixed 30 s")
		adaptiveExperiment()
	})
	bench.section("section-5.3-coalescing", func() {
		header("Section 5.3: slack windows, round_jiffies, dynticks vs CPU wakeups")
		coalescingExperiment()
	})
	bench.section("section-5.2-relations", func() {
		header("Section 5.2: timer relations inferred from the webserver trace")
		fmt.Print(analysis.RenderRelations(set.relations))
	})
	bench.section("section-5.5-dispatcher", func() {
		header("Section 5.5: timers merged into the CPU dispatcher")
		dispatcherExperiment()
	})
	bench.section("related-work-soft-timers", func() {
		header("Related work: soft timers (Aron & Druschel) on this substrate")
		softTimerExperiment()
	})

	if bench != nil {
		bench.section("stream-codec-bench", func() {
			bench.Stream = streamBench()
		})
		if err := bench.writeFile(*benchFl); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchFl, err)
			return 1
		}
	}

	if *memproFl != "" {
		f, err := os.Create(*memproFl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // flush recent allocations into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			return 1
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// Bench report: machine-readable wall-clock timings (BENCH_experiments.json).

type runTiming struct {
	run        time.Duration
	analyze    time.Duration
	records    int // stored (analyzed) records
	dropped    uint64
	mallocs    uint64
	allocBytes uint64
}

type benchConfig struct {
	Seed            int64  `json:"seed"`
	VirtualPerTrace string `json:"virtual_per_trace"`
	Quick           bool   `json:"quick"`
	Workers         int    `json:"workers"` // 0 = GOMAXPROCS
	GOMAXPROCS      int    `json:"gomaxprocs"`
	Queue           string `json:"queue"` // engine event-queue kind
	// AllocNote flags when per-run alloc columns are upper bounds: the
	// runtime counters are process-global, so with workers > 1 each run's
	// delta absorbs its neighbours'. Totals are exact either way.
	AllocNote string `json:"alloc_note,omitempty"`
}

type benchRun struct {
	OS            string  `json:"os"`
	Workload      string  `json:"workload"`
	Virtual       string  `json:"virtual"`
	RunMS         float64 `json:"run_ms"`
	AnalyzeMS     float64 `json:"analyze_ms"`
	Records       int     `json:"records"`
	RecordsPerSec float64 `json:"records_per_sec"` // analysis throughput
	// Allocs/AllocMB cover run+analyze together (one ReadMemStats delta);
	// AllocsPerRecord = Allocs / Records, the figure the zero-allocation
	// engine work drives toward zero.
	Allocs          uint64  `json:"allocs"`
	AllocMB         float64 `json:"alloc_mb"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

type benchSection struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
}

type benchTotals struct {
	// ComputeWallMS is the observed wall-clock of the parallel run+analyze
	// phase; RunWallSumMS is what the same work costs serially (sum over
	// runs). Their ratio estimates the fan-out speedup on this host — but
	// only when workers <= GOMAXPROCS: an oversubscribed pool time-slices,
	// each run's wall then includes its neighbours' work, and the ratio
	// overstates. SpeedupVsSerial is 0 in that case.
	ComputeWallMS   float64 `json:"compute_wall_ms"`
	RunWallSumMS    float64 `json:"run_wall_sum_ms"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial_estimate,omitempty"`
	RecordsAnalyzed int     `json:"records_analyzed"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	// Whole-compute-phase allocation totals from one ReadMemStats delta
	// around the pool: exact at any worker count.
	Allocs          uint64  `json:"allocs"`
	AllocMB         float64 `json:"alloc_mb"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// benchStream reports v2 stream-codec and analysis throughput, measured
// over an in-memory synthetic trace so disk speed doesn't pollute the
// numbers.
type benchStream struct {
	Records         int     `json:"records"`
	Bytes           int     `json:"bytes"`
	EncodeMS        float64 `json:"encode_ms"`
	DecodeMS        float64 `json:"decode_ms"`
	EncodeMBPerSec  float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec  float64 `json:"decode_mb_per_sec"`
	EncodeRecPerSec float64 `json:"encode_records_per_sec"`
	DecodeRecPerSec float64 `json:"decode_records_per_sec"`
	// Analyze throughput runs the full artifact pipeline over the encoded
	// stream: serial is Pipeline.Run, parallel is Pipeline.RunParallel at
	// GOMAXPROCS, and the scaling map records MB/s per worker count
	// (keys "1", "2", ...). Parallel speedup is host-dependent: on a
	// single-CPU machine parallel equals serial.
	AnalyzeMBPerSec         float64            `json:"analyze_mb_per_sec"`
	AnalyzeRecPerSec        float64            `json:"analyze_records_per_sec"`
	AnalyzeParallelMBPerSec float64            `json:"analyze_parallel_mb_per_sec"`
	AnalyzeWorkerScaling    map[string]float64 `json:"analyze_worker_mb_per_sec"`
}

type benchReport struct {
	Config   benchConfig    `json:"config"`
	Runs     []benchRun     `json:"runs"`
	Sections []benchSection `json:"sections"`
	Stream   *benchStream   `json:"stream,omitempty"`
	Totals   benchTotals    `json:"totals"`
}

// streamBench encodes a synthetic trace through StreamWriter, replays it
// through StreamReader, and runs the artifact pipeline over it serially and
// at a worker sweep, reporting throughput for every stage. Origins are
// interned and the buffer pre-sized before the encode clock starts, so
// encode_mb_per_sec measures the codec, not fmt.Sprintf or bytes.Buffer
// regrowth.
func streamBench() *benchStream {
	const n = 1 << 21
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("bench/origin-%d", i)
	}
	var buf bytes.Buffer
	buf.Grow(n*trace.RecordSize + n/64) // records + ample frame/footer headroom
	sw := trace.NewStreamWriter(&buf)
	origins := make([]uint32, len(names))
	for i, name := range names {
		origins[i] = sw.Origin(name)
	}
	r := trace.Record{Op: trace.OpSet, Timeout: int64(10 * sim.Millisecond)}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		r.T = sim.Time(i)
		r.TimerID = uint64(i % 1024)
		r.Origin = origins[i%len(origins)]
		sw.Log(r)
	}
	if err := sw.Close(); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	enc := time.Since(t0)

	t0 = time.Now()
	sr, err := trace.NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		panic(err)
	}
	got := 0
	if err := sr.ForEach(func(trace.Record) { got++ }); err != nil || got != n {
		panic(fmt.Sprintf("stream bench replay: %d records, %v", got, err))
	}
	dec := time.Since(t0)

	// Analysis throughput over the same encoded stream, with the full
	// artifact configuration the evaluation runs use.
	sOpts := analysis.DefaultScatterOptions()
	p := analysis.Pipeline{
		Values:        analysis.ValueOptions{JiffyBinKernel: true, MinSharePercent: 2},
		Scatter:       &sOpts,
		SeriesProcess: "Xorg",
		OriginMinSets: 50,
	}
	analyzePass := func(workers int) time.Duration {
		sr, err := trace.NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		if workers == 0 {
			_, err = p.Run(sr)
		} else {
			_, err = p.RunParallel(sr, workers)
		}
		if err != nil {
			panic(err)
		}
		return time.Since(t0)
	}
	mb := float64(buf.Len()) / (1 << 20)
	serial := analyzePass(0)
	maxWorkers := runtime.GOMAXPROCS(0)
	parallel := analyzePass(maxWorkers)
	scaling := map[string]float64{}
	for _, w := range []int{1, 2, 4, maxWorkers} {
		key := fmt.Sprintf("%d", w)
		if _, done := scaling[key]; done {
			continue
		}
		scaling[key] = mb / analyzePass(w).Seconds()
	}

	return &benchStream{
		Records:                 n,
		Bytes:                   buf.Len(),
		EncodeMS:                ms(enc),
		DecodeMS:                ms(dec),
		EncodeMBPerSec:          mb / enc.Seconds(),
		DecodeMBPerSec:          mb / dec.Seconds(),
		EncodeRecPerSec:         float64(n) / enc.Seconds(),
		DecodeRecPerSec:         float64(n) / dec.Seconds(),
		AnalyzeMBPerSec:         mb / serial.Seconds(),
		AnalyzeRecPerSec:        float64(n) / serial.Seconds(),
		AnalyzeParallelMBPerSec: mb / parallel.Seconds(),
		AnalyzeWorkerScaling:    scaling,
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// section times fn and records it; with a nil receiver it just runs fn.
func (b *benchReport) section(name string, fn func()) {
	if b == nil {
		fn()
		return
	}
	t0 := time.Now()
	fn()
	b.Sections = append(b.Sections, benchSection{Name: name, WallMS: ms(time.Since(t0))})
}

// recordCompute folds the per-spec timings of one computeExperiments call
// into the report. Nil-safe.
func (b *benchReport) recordCompute(specs []workloads.Spec, timings []runTiming, workers int, wall time.Duration, phaseMallocs, phaseBytes uint64) {
	if b == nil {
		return
	}
	b.Config.Workers = workers
	if workers != 1 {
		b.Config.AllocNote = "per-run allocs/alloc_mb are upper bounds (global counters, parallel workers); totals are exact"
	}
	var sum time.Duration
	var records int
	for i, s := range specs {
		t := timings[i]
		sum += t.run + t.analyze
		records += t.records
		perSec := 0.0
		if t.analyze > 0 {
			perSec = float64(t.records) / t.analyze.Seconds()
		}
		perRecord := 0.0
		if t.records > 0 {
			perRecord = float64(t.mallocs) / float64(t.records)
		}
		b.Runs = append(b.Runs, benchRun{
			OS:              s.OS,
			Workload:        s.Name,
			Virtual:         s.Cfg.Duration.String(),
			RunMS:           ms(t.run),
			AnalyzeMS:       ms(t.analyze),
			Records:         t.records,
			RecordsPerSec:   perSec,
			Allocs:          t.mallocs,
			AllocMB:         float64(t.allocBytes) / (1 << 20),
			AllocsPerRecord: perRecord,
		})
	}
	b.Totals.ComputeWallMS = ms(wall)
	b.Totals.RunWallSumMS = ms(sum)
	if wall > 0 && workers <= runtime.GOMAXPROCS(0) {
		b.Totals.SpeedupVsSerial = float64(sum) / float64(wall)
	}
	b.Totals.RecordsAnalyzed = records
	if wall > 0 {
		b.Totals.RecordsPerSec = float64(records) / wall.Seconds()
	}
	b.Totals.Allocs = phaseMallocs
	b.Totals.AllocMB = float64(phaseBytes) / (1 << 20)
	if records > 0 {
		b.Totals.AllocsPerRecord = float64(phaseMallocs) / float64(records)
	}
}

func (b *benchReport) writeFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ---------------------------------------------------------------------------

// dispatcherExperiment contrasts the observed poll-loop idiom with declared
// dispatch requirements (the Section 5.5 design).
func dispatcherExperiment() {
	const runFor = 30 * sim.Second
	// Poll-loop version.
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 20)
	lx := kernel.NewLinux(eng, tr)
	app := lx.NewProcess("softrt")
	for _, p := range []sim.Duration{20 * sim.Millisecond, 32 * sim.Millisecond} {
		p := p
		th := app.NewThread()
		var loop func()
		loop = func() { th.Poll(p, func(kernel.SelectResult) { loop() }) }
		loop()
	}
	eng.Run(sim.Time(runFor))
	s := analysis.Summarize(tr)
	fmt.Printf("poll loops:  %6d timer accesses, %6d CPU wakeups, deadline misses unobservable\n",
		s.Accesses, eng.Stats().Wakeups)

	// Dispatcher version.
	eng2 := sim.NewEngine(1)
	sched := dispatch.NewScheduler(eng2)
	audio := sched.NewTask("audio", 4)
	video := sched.NewTask("video", 1)
	audio.Periodic(audioFrameInterval, audioWindow, audioBudget, func(dispatch.Context) {})
	video.Periodic(videoFrameInterval, videoWindow, videoBudget, func(dispatch.Context) {})
	eng2.Run(sim.Time(runFor))
	st := sched.Stats()
	fmt.Printf("dispatcher:  %6d timer accesses, %6d scheduler activations, %d/%d dispatches missed\n",
		0, st.Wakeups, st.Misses, st.Dispatches)
}

// softTimerExperiment quantifies the related-work point solution the paper
// cites for timer overhead: trigger-state delivery vs per-timer interrupts.
func softTimerExperiment() {
	const span = 500 * sim.Millisecond
	const rate = 50 * sim.Microsecond
	// Baseline: a hardware interrupt per 20 kHz timer.
	eng := sim.NewEngine(1)
	var hard uint64
	var rearm func()
	rearm = func() {
		eng.After(rate, "hw", func() {
			hard++
			if eng.Now() < sim.Time(span-10*sim.Millisecond) {
				rearm()
			}
		})
	}
	rearm()
	eng.Run(sim.Time(span))

	// Soft timers on a busy host.
	eng2 := sim.NewEngine(1)
	f := softtimer.New(eng2, softOverflowPeriod)
	var trigger func()
	trigger = func() {
		f.TriggerState()
		d := sim.Duration(eng2.Rand().ExpFloat64() * float64(30*sim.Microsecond))
		if d < sim.Microsecond {
			d = sim.Microsecond
		}
		if eng2.Now() < sim.Time(span) {
			eng2.After(d, "trig", trigger)
		}
	}
	eng2.After(0, "trig", trigger)
	var arm func()
	arm = func() {
		f.Schedule(rate, func() {
			if eng2.Now() < sim.Time(span-10*sim.Millisecond) {
				arm()
			}
		})
	}
	arm()
	eng2.Run(sim.Time(span))
	st := f.Stats()
	fmt.Printf("20 kHz network-polling timers over %v:\n", span)
	fmt.Printf("  per-timer hardware interrupts: %d\n", hard)
	fmt.Printf("  soft timers: %d overflow interrupts, %d soft deliveries, mean lag %v, max lag %v\n",
		st.OverflowInterrupts, st.SoftFired, st.MeanLatency(), st.MaxLatency)
}

func printSummaries(w io.Writer, arts []artifacts, clustered bool) {
	names := make([]string, len(arts))
	sums := make([]analysis.Summary, len(arts))
	for i, a := range arts {
		names[i] = a.name
		sums[i] = a.summary
		if clustered {
			sums[i].Timers = a.summary.ClusteredTimers
		}
	}
	fmt.Fprint(w, analysis.RenderSummaryTable("", names, sums))
}

// mergeOrigins combines the per-workload origin tables into one Table 3.
func mergeOrigins(arts []artifacts) []analysis.OriginRow {
	merged := map[string]analysis.OriginRow{}
	for _, a := range arts {
		for _, r := range a.origins {
			m, ok := merged[r.Origin]
			if !ok || r.Sets > m.Sets {
				if ok {
					r.Sets += m.Sets
					r.Timers += m.Timers
				}
				merged[r.Origin] = r
			} else {
				m.Sets += r.Sets
				m.Timers += r.Timers
				merged[r.Origin] = m
			}
		}
	}
	rows := make([]analysis.OriginRow, 0, len(merged))
	for _, r := range merged {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value < rows[j].Value
		}
		return rows[i].Origin < rows[j].Origin
	})
	return rows
}

func overheadExperiment(cfg workloads.Config) {
	// Micro-benchmark: cost of one trace record (the paper measured 236
	// cycles via 1,000,000 consecutive runs).
	const n = 1_000_000
	buf := trace.NewBuffer(n)
	rec := trace.Record{T: 1, TimerID: 42, Timeout: 1000, Op: trace.OpSet}
	var perOp time.Duration
	// Two passes: the first faults the buffer in; the second measures the
	// steady-state logging path, as the paper's 1,000,000-run loop did.
	for pass := 0; pass < 2; pass++ {
		buf.Reset()
		start := time.Now()
		for i := 0; i < n; i++ {
			rec.T = sim.Time(i)
			buf.Log(rec)
		}
		perOp = time.Since(start) / n
	}
	fmt.Printf("logging micro-benchmark: %v per record over %d records (paper: 236 cycles ≈ 89 ns at 2.66 GHz)\n", perOp, n)

	// Perturbation: identical workload with full tracing vs counting-only.
	run := func(capRecords int) (uint64, time.Duration) {
		c := cfg
		c.TraceCap = capRecords
		c.Duration = 2 * sim.Minute
		start := time.Now()
		res := workloads.RunLinux(workloads.Firefox, c)
		return res.Counters.Total, time.Since(start)
	}
	fullOps, fullT := run(trace.DefaultCapacity)
	bareOps, bareT := run(1) // store (almost) nothing, count everything
	diff := 100 * (float64(fullOps) - float64(bareOps)) / float64(bareOps)
	fmt.Printf("call-count perturbation: %d vs %d timer-subsystem calls (%.2f%%; paper saw <3%%, the simulation is deterministic)\n",
		fullOps, bareOps, diff)
	fmt.Printf("host-time cost of storing records: %v vs %v for a 2-minute Firefox trace\n", fullT, bareT)
}

func layersExperiment() {
	type row struct {
		policy layers.Policy
		target string
		out    layers.Outcome
	}
	var rows []row
	for _, pol := range []layers.Policy{layers.Static, layers.Budgeted, layers.Adaptive} {
		for _, target := range []string{layers.FileServer, layers.DeadHost, layers.BadName} {
			w := layers.NewWorld(1)
			if pol == layers.Adaptive {
				w.Warm(10)
			}
			rows = append(rows, row{pol, target, w.OpenShare(pol, target, shareDeadline)})
		}
	}
	fmt.Printf("%-10s %-16s %-8s %-14s %s\n", "policy", "target", "result", "time-to-report", "decided by")
	for _, r := range rows {
		status := "error"
		if r.out.OK {
			status = "ok"
		}
		fmt.Printf("%-10s %-16s %-8s %-14v %s\n", r.policy, r.target, status, r.out.Elapsed, r.out.Detail)
	}
	fmt.Println("\nThe healthy server answers within ~300 ms (130 ms RTT), yet the static")
	fmt.Println("layering needs over a minute to report a dead host — the paper's point.")
}

func adaptiveExperiment() {
	// An RPC client over a 130 ms-RTT link: compare time-to-detect a
	// server death and spurious-timeout rates for fixed 30 s vs adaptive
	// 99%-confidence timeouts.
	eng := sim.NewEngine(1)
	f := core.New(core.SimBackend{Eng: eng})
	a := f.NewAdaptiveTimeout("rpc", 0.99, sim.Millisecond, 30*sim.Second)
	rng := eng.Rand()
	// 2000 successful calls with lognormal-ish latency around 130 ms.
	spurious := 0
	for i := 0; i < 2000; i++ {
		lat := 100*sim.Millisecond + sim.Duration(rng.ExpFloat64()*float64(40*sim.Millisecond))
		if lat > a.Current() {
			spurious++
		}
		a.ObserveSuccess(lat)
	}
	fixed := 30 * sim.Second
	adaptive := a.Current()
	fmt.Printf("learned 99%% timeout after 2000 calls: %v (fixed value: %v)\n", adaptive, fixed)
	fmt.Printf("spurious timeouts during learning: %d/2000 (%.2f%%)\n", spurious, float64(spurious)/20)
	fmt.Printf("failure detection speedup: %.0fx (%v -> %v)\n",
		float64(fixed)/float64(adaptive), fixed, adaptive)
	if a.Estimator().Shifts > 0 {
		fmt.Printf("level shifts detected during steady state: %d (should be 0)\n", a.Estimator().Shifts)
	}
	// Level shift: the LAN-to-WAN move of Section 5.1.
	for i := 0; i < 200; i++ {
		a.ObserveSuccess(800*sim.Millisecond + sim.Duration(rng.ExpFloat64()*float64(200*sim.Millisecond)))
	}
	fmt.Printf("after a latency regime change (x6 RTT): timeout re-learned to %v (shifts detected: %d)\n",
		a.Current(), a.Estimator().Shifts)
}

func coalescingExperiment() {
	// (a) core facility: 100 one-second housekeeping tickers at random
	// phases, precise vs 300 ms slack windows.
	run := func(slack sim.Duration) uint64 {
		eng := sim.NewEngine(1)
		f := core.New(core.SimBackend{Eng: eng})
		for i := 0; i < 100; i++ {
			phase := sim.Duration(eng.Rand().Int63n(int64(sim.Second)))
			p := phase
			eng.After(p, "start", func() {
				f.NewTicker("housekeeping", housekeepingPeriod, slack, func() {})
			})
		}
		eng.Run(sim.Time(sim.Minute))
		return f.Stats().Wakeups
	}
	precise := run(0)
	sloppy := run(coalesceSlack)
	fmt.Printf("core facility, 100 x 1 s tickers over 60 s: %d wakeups precise, %d with 300 ms slack (%.1fx fewer)\n",
		precise, sloppy, float64(precise)/float64(sloppy))
	pm := sim.LaptopPower()
	fmt.Printf("estimated package power (%s): %.2f W precise vs %.2f W with slack\n", pm,
		pm.AveragePower(sim.Stats{Wakeups: precise, Events: precise * 2}, sim.Duration(sim.Minute)),
		pm.AveragePower(sim.Stats{Wakeups: sloppy, Events: sloppy * 2}, sim.Duration(sim.Minute)))

	// (b) Linux jiffies: round_jiffies batching and dynticks idle skipping.
	jrun := func(round, nohz bool) (wakeups, ticks uint64) {
		eng := sim.NewEngine(1)
		b := jiffies.NewBase(eng, trace.NewBuffer(0), jiffies.WithNoHZ(nohz))
		for i := 0; i < 20; i++ {
			t := &jiffies.Timer{}
			var rearm func()
			rearm = func() {
				dj := jiffies.MsecsToJiffies(housekeepingPeriod)
				if round {
					dj = b.RoundJiffiesRelative(dj)
				}
				b.Mod(t, b.Jiffies()+dj)
			}
			b.Init(t, "housekeeping", 0, rearm)
			eng.At(sim.Time(eng.Rand().Int63n(int64(sim.Second))), "phase", rearm)
		}
		eng.Run(sim.Time(sim.Minute))
		return eng.Stats().Wakeups, b.TickCount
	}
	w1, t1 := jrun(false, false)
	w2, t2 := jrun(false, true)
	w3, t3 := jrun(true, true)
	fmt.Printf("jiffies, 20 x 1 s timers over 60 s:\n")
	fmt.Printf("  periodic tick:                 %5d wakeups, %5d tick interrupts\n", w1, t1)
	fmt.Printf("  dynticks (NO_HZ):              %5d wakeups, %5d tick interrupts\n", w2, t2)
	fmt.Printf("  dynticks + round_jiffies:      %5d wakeups, %5d tick interrupts\n", w3, t3)
}
