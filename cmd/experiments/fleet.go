package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"timerstudy/internal/fleet"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// The -fleet mode: instead of the paper's nine single-host traces, simulate
// a datacenter of them — N webserver + 7N desktop hosts exchanging request
// traffic over the netsim fabric, advanced in parallel with conservative-
// lookahead windows. The run always includes a workers=1 pass whose fleet
// digest must match the parallel pass bit-for-bit; a mismatch is a hard
// failure (the determinism gate check.sh relies on).

// fleetBench is the "fleet" key merged into the -bench JSON report.
type fleetBench struct {
	Hosts            int     `json:"hosts"`
	Webservers       int     `json:"webservers"`
	Desktops         int     `json:"desktops"`
	Workers          int     `json:"workers"`
	VirtualDuration  string  `json:"virtual_duration"`
	LookaheadUS      float64 `json:"lookahead_us"`
	Windows          int     `json:"windows"`
	Events           uint64  `json:"events"`
	CumulativeTimers uint64  `json:"cumulative_timers"`
	Records          uint64  `json:"records_total"`
	MessagesSent     uint64  `json:"messages_sent"`
	MessagesLost     uint64  `json:"messages_lost"`
	WallMSSerial     float64 `json:"wall_ms_serial"`
	WallMSParallel   float64 `json:"wall_ms_parallel"`
	EventsPerSec     float64 `json:"events_per_sec"`
	SpeedupVsWorkers float64 `json:"speedup_vs_workers"`
	Digest           string  `json:"digest"`
	Deterministic    bool    `json:"deterministic"`
}

// fleetPass builds the topology fresh and runs it once, returning the run
// stats, the fleet digest and the wall time.
func fleetPass(top fleet.Topology, end sim.Time, workers int) (fleet.RunStats, uint64, uint64, uint64, time.Duration) {
	f := top.Build()
	t0 := time.Now()
	stats := f.Run(end, workers)
	wall := time.Since(t0)
	c := f.Counters()
	return stats, f.Digest(), c.ByOp[trace.OpSet], c.Total, wall
}

// runFleet is the -fleet entry point; returns the process exit code.
func runFleet(queue sim.QueueKind) int {
	hosts := *hostsFl
	if hosts < 1 {
		fmt.Fprintln(os.Stderr, "experiments: -hosts must be at least 1")
		return 2
	}
	ws := hosts / 8
	if ws < 1 {
		ws = 1
	}
	pc := hosts - ws
	workers := *fleetWorkersFl
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dur := sim.FromStd(*fleetDurFl)
	end := sim.Time(dur)
	top := fleet.Topology{
		Webservers: ws,
		Desktops:   pc,
		Seed:       *seedFlag,
		Queue:      queue,
	}

	fmt.Printf("fleet: %d hosts (%d webservers, %d desktops), %v virtual, seed %d, %s queue\n",
		hosts, ws, pc, dur, *seedFlag, queue)

	// -emit streams each host's trace to the live service, teed with the
	// digest HashSink, on the final pass only (two emitting passes would
	// collide on stream names).
	var emitClose func()
	serialTop := top
	if *emitFl != "" && workers <= 1 {
		serialTop.NewSink, emitClose = fleetEmitSinks(*emitFl)
	}
	stats, digest, sets, records, wallSerial := fleetPass(serialTop, end, 1)
	if emitClose != nil {
		emitClose()
	}
	wallParallel := wallSerial
	deterministic := true
	if workers > 1 {
		ptop := top
		emitClose = nil
		if *emitFl != "" {
			ptop.NewSink, emitClose = fleetEmitSinks(*emitFl)
		}
		pstats, pdigest, _, _, pw := fleetPass(ptop, end, workers)
		if emitClose != nil {
			emitClose()
		}
		wallParallel = pw
		deterministic = pdigest == digest && pstats == stats
		if !deterministic {
			fmt.Fprintf(os.Stderr,
				"experiments: FLEET NONDETERMINISM: workers=1 digest %016x %+v vs workers=%d digest %016x %+v\n",
				digest, stats, workers, pdigest, pstats)
		}
	}

	evPerSec := float64(stats.Events) / wallParallel.Seconds()
	speedup := wallSerial.Seconds() / wallParallel.Seconds()
	fmt.Printf("fleet: %d windows (lookahead %v), %d events, %d cumulative timer sets, %d records\n",
		stats.Windows, stats.Lookahead, stats.Events, sets, records)
	fmt.Printf("fleet: traffic %d sent / %d delivered / %d lost\n", stats.Sent, stats.Delivered, stats.Lost)
	fmt.Printf("fleet: serial %.0f ms, workers=%d %.0f ms, %.2fx, %.0f events/sec\n",
		wallSerial.Seconds()*1e3, workers, wallParallel.Seconds()*1e3, speedup, evPerSec)
	fmt.Printf("fleet digest: %016x workers=%d deterministic=%v\n", digest, workers, deterministic)

	if *benchFl != "" {
		fb := fleetBench{
			Hosts:            hosts,
			Webservers:       ws,
			Desktops:         pc,
			Workers:          workers,
			VirtualDuration:  dur.String(),
			LookaheadUS:      float64(stats.Lookahead) / float64(sim.Microsecond),
			Windows:          stats.Windows,
			Events:           stats.Events,
			CumulativeTimers: sets,
			Records:          records,
			MessagesSent:     stats.Sent,
			MessagesLost:     stats.Lost,
			WallMSSerial:     wallSerial.Seconds() * 1e3,
			WallMSParallel:   wallParallel.Seconds() * 1e3,
			EventsPerSec:     evPerSec,
			SpeedupVsWorkers: speedup,
			Digest:           fmt.Sprintf("%016x", digest),
			Deterministic:    deterministic,
		}
		if err := mergeFleetBench(*benchFl, fb); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchFl, err)
			return 1
		}
	}
	if !deterministic {
		return 1
	}
	return 0
}

// fleetEmitSinks returns a Topology.NewSink that tees each host's digest
// HashSink with an HTTPSink streaming to the live service, plus a closer
// that flushes every stream's counters footer after the run.
func fleetEmitSinks(url string) (func(string) trace.Sink, func()) {
	var sinks []*trace.HTTPSink
	newSink := func(host string) trace.Sink {
		hs, err := trace.NewHTTPSink(url, "fleet-"+host, trace.HTTPSinkOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -emit %s: %v\n", host, err)
			return trace.NewHashSink()
		}
		sinks = append(sinks, hs)
		return trace.Tee(trace.NewHashSink(), hs)
	}
	closeAll := func() {
		for _, hs := range sinks {
			if err := hs.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -emit: %v\n", err)
			}
		}
	}
	return newSink, closeAll
}

// mergeFleetBench sets the "fleet" key in a benchmark JSON report (created
// if absent), preserving other keys — the same merge contract timerlint
// uses for "lint".
func mergeFleetBench(path string, fb fleetBench) error {
	report := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	report["fleet"] = fb
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
