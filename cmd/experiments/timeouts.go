package main

import (
	"time"

	"timerstudy/internal/sim"
)

// The experiment suite's timeout registry (paper Section 5.2: a timeout
// value without provenance is a bug).
const (
	// pollInterval rate-limits -poll hub round trips (and bounds each HTTP
	// call): fleet barriers are microseconds of wall time apart, so
	// draining the hub at every one would melt the service; 200 ms keeps
	// dashboard steering sub-second without measurable drag on the run.
	// Wall-clock by nature — it throttles real HTTP traffic, and command
	// arrival time never affects virtual time (the window stamp does).
	pollInterval = 200 * time.Millisecond

	// audioFrameInterval: the 20 ms VoIP audio cadence from the Skype traces.
	audioFrameInterval = 20 * sim.Millisecond
	// audioWindow: ±5 ms tolerable dispatch slack for audio.
	audioWindow = 5 * sim.Millisecond
	// audioBudget: ~2 ms CPU per audio frame declared to the dispatcher.
	audioBudget = 2 * sim.Millisecond
	// videoFrameInterval: the declared ~30 fps video cadence.
	videoFrameInterval = 33 * sim.Millisecond
	// videoWindow: ±12 ms tolerable dispatch slack for video.
	videoWindow = 12 * sim.Millisecond
	// videoBudget: ~4 ms CPU per video frame declared to the dispatcher.
	videoBudget = 4 * sim.Millisecond
	// softOverflowPeriod: soft-timer overflow backstop — the related work's 10 ms worst-case bound.
	softOverflowPeriod = 10 * sim.Millisecond
	// shareDeadline: the user-level OpenShare budget, matching examples/fileshare.
	shareDeadline = 5 * sim.Second
	// housekeepingPeriod: canonical 1 s housekeeping cadence used by the coalescing experiments.
	housekeepingPeriod = sim.Second
	// coalesceSlack: the 300 ms slack window the coalescing experiment grants each ticker.
	coalesceSlack = 300 * sim.Millisecond
	// relationsTraceDuration: the Section 5.2 relation-inference webserver
	// trace length — long enough for per-connection timer chains to repeat.
	relationsTraceDuration = 3 * sim.Minute
)
