package main

import (
	"strings"
	"testing"

	"timerstudy/internal/control"
	"timerstudy/internal/fleet"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

func steerFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	top := fleet.Topology{
		Webservers: 1, Desktops: 2, Seed: 1,
		NewSink: func(string) trace.Sink { return trace.NewHashSink() },
	}
	return top.Build()
}

func TestParseSteer(t *testing.T) {
	f := steerFleet(t)
	cmds, err := parseSteer("10:spike:*:4:500ms, 20:kill:ws-0000, 25:policy:*:adaptive, 30:coalesce:*:100ms, 70:queue:*:wheel", f)
	if err != nil {
		t.Fatalf("parseSteer: %v", err)
	}
	if len(cmds) != 5 {
		t.Fatalf("parsed %d commands", len(cmds))
	}
	want := []control.Command{
		{Window: 10, Kind: control.KindSpike, Host: -1, Arg: 4, Dur: 500 * sim.Millisecond},
		{Window: 20, Kind: control.KindKill, Host: 0},
		{Window: 25, Kind: control.KindPolicy, Host: -1, Arg: fleet.PolicyAdaptive},
		{Window: 30, Kind: control.KindCoalesce, Host: -1, Arg: int64(100 * sim.Millisecond)},
		{Window: 70, Kind: control.KindQueue, Host: -1, Arg: int64(sim.QueueWheel)},
	}
	for i := range want {
		if cmds[i] != want[i] {
			t.Fatalf("command %d: %+v != %+v", i, cmds[i], want[i])
		}
	}
}

func TestParseSteerErrors(t *testing.T) {
	f := steerFleet(t)
	cases := []struct {
		spec, want string
	}{
		{"10:spike", "window:kind:host"},
		{"x:spike:*", "bad window"},
		{"10:reboot:*", "unknown command kind"},
		{"10:kill:no-such-host", "unknown host"},
		{"10:policy:*:sometimes", "bad argument"},
		{"10:spike:*:4:fortnight", "bad duration"},
	}
	for _, tc := range cases {
		if _, err := parseSteer(tc.spec, f); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("parseSteer(%q): %v, want mention of %q", tc.spec, err, tc.want)
		}
	}
}
