package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
)

// goldenDuration keeps the determinism test fast; the property it checks is
// duration-independent (every run owns its engine and seeded rand).
const goldenDuration = 30 * sim.Second

// TestParallelMatchesSerial is the golden test for both execution axes: the
// rendered tables and figures must be byte-identical whether the work runs
// serially or on a saturated pool, and whether the engine's event queue is
// the binary heap or the timing wheel.
func TestParallelMatchesSerial(t *testing.T) {
	render := func(workers int, queue sim.QueueKind) []byte {
		set, err := computeExperiments(1, goldenDuration, queue, workers, false, nil)
		if err != nil {
			t.Fatalf("computeExperiments: %v", err)
		}
		var buf bytes.Buffer
		writeFigures(&buf, set, nil)
		fmt.Fprint(&buf, analysis.RenderRelations(set.relations))
		return buf.Bytes()
	}
	serial := render(1, sim.QueueHeap)
	for _, alt := range []struct {
		name    string
		workers int
		queue   sim.QueueKind
	}{
		{"parallel", 8, sim.QueueHeap},
		{"wheel-parallel", 8, sim.QueueWheel},
	} {
		got := render(alt.workers, alt.queue)
		if !bytes.Equal(serial, got) {
			sl, pl := bytes.Split(serial, []byte("\n")), bytes.Split(got, []byte("\n"))
			for i := 0; i < len(sl) && i < len(pl); i++ {
				if !bytes.Equal(sl[i], pl[i]) {
					t.Fatalf("%s output diverges at line %d:\nserial: %s\n%s: %s",
						alt.name, i+1, sl[i], alt.name, pl[i])
				}
			}
			t.Fatalf("%s output lengths differ: serial %d lines, %s %d lines",
				alt.name, len(sl), alt.name, len(pl))
		}
	}
}

// TestBenchReportShape checks the -bench recorder captures one entry per
// evaluation trace plus per-section timings, with sane totals.
func TestBenchReportShape(t *testing.T) {
	bench := &benchReport{}
	set, err := computeExperiments(1, goldenDuration, sim.QueueHeap, 2, false, bench)
	if err != nil {
		t.Fatalf("computeExperiments: %v", err)
	}
	writeFigures(&bytes.Buffer{}, set, bench)

	if len(bench.Runs) != 10 {
		t.Fatalf("runs = %d, want 10 (9 evaluation traces + webserver relations)", len(bench.Runs))
	}
	for _, r := range bench.Runs {
		if r.Records <= 0 || r.RunMS < 0 || r.AnalyzeMS < 0 {
			t.Fatalf("implausible run entry: %+v", r)
		}
		if r.Allocs == 0 || r.AllocMB <= 0 || r.AllocsPerRecord <= 0 {
			t.Fatalf("alloc columns not filled: %+v", r)
		}
	}
	if bench.Totals.Allocs == 0 || bench.Totals.AllocMB <= 0 || bench.Totals.AllocsPerRecord <= 0 {
		t.Fatalf("alloc totals not filled: %+v", bench.Totals)
	}
	if bench.Config.AllocNote == "" {
		t.Fatal("workers=2 must flag per-run alloc columns as upper bounds")
	}
	if len(bench.Sections) == 0 {
		t.Fatalf("no sections recorded")
	}
	if bench.Totals.ComputeWallMS <= 0 || bench.Totals.RunWallSumMS <= 0 {
		t.Fatalf("totals not filled: %+v", bench.Totals)
	}
	if bench.Totals.RecordsAnalyzed <= 0 {
		t.Fatalf("records not summed: %+v", bench.Totals)
	}
}

// TestSpillMatchesMemory is the golden determinism test for the streaming
// path: every table and figure must be byte-identical whether each trace is
// analyzed from its in-memory buffer or spilled to a v2 file during the run
// and replayed from disk.
func TestSpillMatchesMemory(t *testing.T) {
	render := func(spill bool) []byte {
		set, err := computeExperiments(1, goldenDuration, sim.QueueHeap, 4, spill, nil)
		if err != nil {
			t.Fatalf("computeExperiments(spill=%v): %v", spill, err)
		}
		if warnDropped(&bytes.Buffer{}, set) {
			t.Fatalf("golden run dropped records (spill=%v)", spill)
		}
		var buf bytes.Buffer
		writeFigures(&buf, set, nil)
		fmt.Fprint(&buf, analysis.RenderRelations(set.relations))
		return buf.Bytes()
	}
	mem := render(false)
	spilled := render(true)
	if !bytes.Equal(mem, spilled) {
		ml, sl := bytes.Split(mem, []byte("\n")), bytes.Split(spilled, []byte("\n"))
		for i := 0; i < len(ml) && i < len(sl); i++ {
			if !bytes.Equal(ml[i], sl[i]) {
				t.Fatalf("spill output diverges at line %d:\nmemory: %s\nspill:  %s", i+1, ml[i], sl[i])
			}
		}
		t.Fatalf("spill output lengths differ: memory %d lines, spill %d lines", len(ml), len(sl))
	}
}

// TestWarnDropped checks the overflow warning fires per dropped run, names
// the workload and counts, and stays silent on clean sets.
func TestWarnDropped(t *testing.T) {
	var buf bytes.Buffer
	if warnDropped(&buf, experimentSet{}) {
		t.Fatal("clean set reported drops")
	}
	if buf.Len() != 0 {
		t.Fatalf("clean set produced output: %q", buf.String())
	}
	set := experimentSet{dropped: []droppedRun{
		{os: "linux", name: "idle", dropped: 5, total: 100},
		{os: "vista", name: "skype", dropped: 7, total: 200},
	}}
	if !warnDropped(&buf, set) {
		t.Fatal("dropped runs not reported")
	}
	out := buf.String()
	for _, want := range []string{
		"WARNING: linux/idle dropped 5 of 100 trace records",
		"WARNING: vista/skype dropped 7 of 200 trace records",
		"-spill",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("warning output missing %q:\n%s", want, out)
		}
	}
}
