package main

import (
	"bytes"
	"fmt"
	"testing"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
)

// goldenDuration keeps the determinism test fast; the property it checks is
// duration-independent (every run owns its engine and seeded rand).
const goldenDuration = 30 * sim.Second

// TestParallelMatchesSerial is the tentpole's golden test: the rendered
// tables and figures from a saturated worker pool must be byte-identical to
// a serial run.
func TestParallelMatchesSerial(t *testing.T) {
	render := func(workers int) []byte {
		set := computeExperiments(1, goldenDuration, workers, nil)
		var buf bytes.Buffer
		writeFigures(&buf, set, nil)
		fmt.Fprint(&buf, analysis.RenderRelations(set.relations))
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		sl, pl := bytes.Split(serial, []byte("\n")), bytes.Split(parallel, []byte("\n"))
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if !bytes.Equal(sl[i], pl[i]) {
				t.Fatalf("output diverges at line %d:\nserial:   %s\nparallel: %s", i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("output lengths differ: serial %d lines, parallel %d lines", len(sl), len(pl))
	}
}

// TestBenchReportShape checks the -bench recorder captures one entry per
// evaluation trace plus per-section timings, with sane totals.
func TestBenchReportShape(t *testing.T) {
	bench := &benchReport{}
	set := computeExperiments(1, goldenDuration, 2, bench)
	writeFigures(&bytes.Buffer{}, set, bench)

	if len(bench.Runs) != 10 {
		t.Fatalf("runs = %d, want 10 (9 evaluation traces + webserver relations)", len(bench.Runs))
	}
	for _, r := range bench.Runs {
		if r.Records <= 0 || r.RunMS < 0 || r.AnalyzeMS < 0 {
			t.Fatalf("implausible run entry: %+v", r)
		}
	}
	if len(bench.Sections) == 0 {
		t.Fatalf("no sections recorded")
	}
	if bench.Totals.ComputeWallMS <= 0 || bench.Totals.RunWallSumMS <= 0 {
		t.Fatalf("totals not filled: %+v", bench.Totals)
	}
	if bench.Totals.RecordsAnalyzed <= 0 {
		t.Fatalf("records not summed: %+v", bench.Totals)
	}
}
