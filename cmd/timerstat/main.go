// Command timerstat analyses a binary timer trace written by timertrace,
// reproducing the paper's per-trace analyses: summary counts (Tables 1-2),
// usage-pattern classification (Figure 2), common-value histograms
// (Figures 3 and 5-7), the select-countdown dot plot (Figure 4), the
// expiry/cancelation scatter (Figures 8-11), and the origins table
// (Table 3).
//
// Usage:
//
//	timerstat -summary -classes -values trace.bin
//	timerstat -values -user-only -collapse -exclude Xorg,icewm trace.bin
//	timerstat -scatter -origins -series Xorg trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

func main() {
	summary := flag.Bool("summary", false, "print the trace summary (Tables 1-2)")
	classes := flag.Bool("classes", false, "print usage-pattern shares (Figure 2)")
	values := flag.Bool("values", false, "print the common-value histogram (Figures 3/5/6/7)")
	userOnly := flag.Bool("user-only", false, "restrict -values to user-space accesses (Figure 6)")
	collapse := flag.Bool("collapse", false, "collapse select countdowns to their initial value (Figure 5)")
	exclude := flag.String("exclude", "", "comma-separated processes to exclude (Figure 5 uses Xorg,icewm)")
	jiffyBin := flag.Bool("jiffies", true, "bin kernel values to jiffies (Linux analysis)")
	minShare := flag.Float64("min-share", 2.0, "histogram share threshold in percent")
	scatter := flag.Bool("scatter", false, "print the expiry/cancel scatter (Figures 8-11)")
	origins := flag.Bool("origins", false, "print the origins table (Table 3)")
	minSets := flag.Int("min-sets", 20, "origins table: minimum sets per origin")
	series := flag.String("series", "", "print the set-time/value dot plot for a process (Figure 4)")
	deps := flag.Bool("deps", false, "infer timer dependency/overlap relations (Section 5.2)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: timerstat [flags] trace-file")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
		os.Exit(1)
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
		os.Exit(1)
	}

	ls := analysis.Lifecycles(tr)
	var excl []string
	if *exclude != "" {
		excl = strings.Split(*exclude, ",")
	}
	any := false
	if *summary {
		any = true
		s := analysis.Summarize(tr)
		fmt.Print(analysis.RenderSummaryTable("Trace summary", []string{"value"}, []analysis.Summary{s}))
		fmt.Printf("Clustered    %12d (distinct origin+pid)\n\n", s.ClusteredTimers)
	}
	if *classes {
		any = true
		fmt.Println("Usage patterns (Figure 2):")
		fmt.Print(analysis.RenderClassShares([]string{"share"}, []analysis.ClassShares{analysis.ComputeClassShares(ls)}))
		fmt.Println()
	}
	if *values {
		any = true
		entries, total := analysis.CommonValues(ls, analysis.ValueOptions{
			UserOnly:           *userOnly,
			ExcludeProcesses:   excl,
			CollapseCountdowns: *collapse,
			JiffyBinKernel:     *jiffyBin,
			MinSharePercent:    *minShare,
		})
		fmt.Printf("Common timeout values (>=%.1f%% of %d samples):\n", *minShare, total)
		fmt.Print(analysis.RenderValues(entries))
		fmt.Println()
	}
	if *scatter {
		any = true
		fmt.Println("Expiry/cancelation vs timeout (Figures 8-11):")
		opts := analysis.DefaultScatterOptions()
		opts.ExcludeProcesses = excl
		fmt.Print(analysis.RenderScatter(analysis.Scatter(ls, opts)))
		fmt.Println()
	}
	if *origins {
		any = true
		fmt.Println("Origins (Table 3):")
		fmt.Print(analysis.RenderOrigins(analysis.OriginTable(ls, *minSets)))
		fmt.Println()
	}
	if *series != "" {
		any = true
		pts := analysis.SetSeries(ls, *series)
		var end sim.Time
		for _, r := range tr.Records() {
			if r.T > end {
				end = r.T
			}
		}
		fmt.Printf("Set series for %s (Figure 4), %d points:\n", *series, len(pts))
		fmt.Print(analysis.RenderSeries(pts, end.Sub(0)))
	}
	if *deps {
		any = true
		fmt.Println("Inferred timer relations (Section 5.2):")
		fmt.Print(analysis.RenderRelations(analysis.InferRelations(ls, analysis.InferOptions{})))
	}
	if !any {
		fmt.Fprintln(os.Stderr, "timerstat: nothing to do; pass -summary, -classes, -values, -scatter, -origins, -series or -deps")
		os.Exit(2)
	}
}
