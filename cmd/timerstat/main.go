// Command timerstat analyses a binary timer trace written by timertrace,
// reproducing the paper's per-trace analyses: summary counts (Tables 1-2),
// usage-pattern classification (Figure 2), common-value histograms
// (Figures 3 and 5-7), the select-countdown dot plot (Figure 4), the
// expiry/cancelation scatter (Figures 8-11), and the origins table
// (Table 3).
//
// Both trace formats are auto-detected: the v1 in-memory format and the
// chunked v2 stream format (timertrace -stream). Everything except -deps
// runs in one streaming pass with memory bounded by live timers, so a v2
// trace larger than RAM analyses fine; -deps materializes per-timer
// histories and needs O(trace) memory.
//
// The streaming pass decodes and analyses on -j worker goroutines
// (default: all CPUs); output is byte-identical at any worker count, so
// -j only changes wall-clock time. Pass -j 1 to force the serial path.
//
// Several trace files analyse as one logical trace: each file becomes an
// incremental partial merged in sorted file-name order, so the report is
// byte-identical to analysing the concatenation (the same contract the
// live service keeps; see internal/serve).
//
// -serve runs the live trace service instead of an offline analysis: an
// HTTP endpoint ingesting streams from timertrace/experiments producers
// (trace.HTTPSink) with a JSON API and embedded dashboard. The analysis
// flags configure the service's pipeline, so a quiesced server's
// /api/summary matches `timerstat -json -summary` over the same streams.
//
// Usage:
//
//	timerstat -summary -classes -values trace.bin
//	timerstat -values -user-only -collapse -exclude Xorg,icewm trace.bin
//	timerstat -scatter -origins -series Xorg trace.bin
//	timerstat -summary host-*.trace
//	timerstat -json -summary trace.bin
//	timerstat -serve 127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"timerstudy/internal/analysis"
	"timerstudy/internal/serve"
	"timerstudy/internal/trace"
	"timerstudy/internal/version"
)

func run() int {
	summary := flag.Bool("summary", false, "print the trace summary (Tables 1-2)")
	classes := flag.Bool("classes", false, "print usage-pattern shares (Figure 2)")
	values := flag.Bool("values", false, "print the common-value histogram (Figures 3/5/6/7)")
	userOnly := flag.Bool("user-only", false, "restrict -values to user-space accesses (Figure 6)")
	collapse := flag.Bool("collapse", false, "collapse select countdowns to their initial value (Figure 5)")
	exclude := flag.String("exclude", "", "comma-separated processes to exclude (Figure 5 uses Xorg,icewm)")
	jiffyBin := flag.Bool("jiffies", true, "bin kernel values to jiffies (Linux analysis)")
	minShare := flag.Float64("min-share", 2.0, "histogram share threshold in percent")
	scatter := flag.Bool("scatter", false, "print the expiry/cancel scatter (Figures 8-11)")
	origins := flag.Bool("origins", false, "print the origins table (Table 3)")
	minSets := flag.Int("min-sets", 20, "origins table: minimum sets per origin")
	series := flag.String("series", "", "print the set-time/value dot plot for a process (Figure 4)")
	deps := flag.Bool("deps", false, "infer timer dependency/overlap relations (Section 5.2; needs O(trace) memory)")
	jobs := flag.Int("j", 0, "analysis worker count (0 = all CPUs, 1 = serial); output is identical at any count")
	jsonOut := flag.Bool("json", false, "emit canonical JSON (one of -summary, -values, -origins); byte-identical to the live service's API")
	serveAddr := flag.String("serve", "", "run the live trace service on this address instead of analysing a file")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return 0
	}
	var excl []string
	if *exclude != "" {
		excl = strings.Split(*exclude, ",")
	}

	// One streaming pass computes every requested artifact; a v2 source is
	// consumed incrementally, never materialized.
	p := analysis.Pipeline{
		Values: analysis.ValueOptions{
			UserOnly:           *userOnly,
			ExcludeProcesses:   excl,
			CollapseCountdowns: *collapse,
			JiffyBinKernel:     *jiffyBin,
			MinSharePercent:    *minShare,
		},
		SeriesProcess: *series,
	}
	if *scatter {
		opts := analysis.DefaultScatterOptions()
		opts.ExcludeProcesses = excl
		p.Scatter = &opts
	}
	if *origins {
		p.OriginMinSets = *minSets
	}

	if *serveAddr != "" {
		return runServe(*serveAddr, p)
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: timerstat [flags] trace-file...")
		flag.PrintDefaults()
		return 2
	}
	if !*summary && !*classes && !*values && !*scatter && !*origins && *series == "" && !*deps {
		fmt.Fprintln(os.Stderr, "timerstat: nothing to do; pass -summary, -classes, -values, -scatter, -origins, -series or -deps")
		return 2
	}
	path := flag.Arg(0)
	if *deps && flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "timerstat: -deps analyses a single trace file")
		return 2
	}
	rep, err := analyze(p, flag.Args(), *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
		return 1
	}

	if *jsonOut {
		return writeJSON(rep, *summary, *values, *origins)
	}

	if *summary {
		s := rep.Summary
		fmt.Print(analysis.RenderSummaryTable("Trace summary", []string{"value"}, []analysis.Summary{s}))
		fmt.Printf("Clustered    %12d (distinct origin+pid)\n\n", s.ClusteredTimers)
	}
	if *classes {
		fmt.Println("Usage patterns (Figure 2):")
		fmt.Print(analysis.RenderClassShares([]string{"share"}, []analysis.ClassShares{rep.Shares}))
		fmt.Println()
	}
	if *values {
		fmt.Printf("Common timeout values (>=%.1f%% of %d samples):\n", *minShare, rep.ValuesTotal)
		fmt.Print(analysis.RenderValues(rep.Values))
		fmt.Println()
	}
	if *scatter {
		fmt.Println("Expiry/cancelation vs timeout (Figures 8-11):")
		fmt.Print(analysis.RenderScatter(rep.Scatter))
		fmt.Println()
	}
	if *origins {
		fmt.Println("Origins (Table 3):")
		fmt.Print(analysis.RenderOrigins(rep.Origins))
		fmt.Println()
	}
	if *series != "" {
		fmt.Printf("Set series for %s (Figure 4), %d points:\n", *series, len(rep.Series))
		fmt.Print(analysis.RenderSeries(rep.Series, rep.End.Sub(0)))
	}
	if *deps {
		// Relations need every use of every timer at once; reopen the file
		// (stream sources are one-shot) and materialize the histories.
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
			return 1
		}
		src, err := trace.Open(f)
		if err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
			return 1
		}
		ls := analysis.Lifecycles(src)
		f.Close()
		fmt.Println("Inferred timer relations (Section 5.2):")
		fmt.Print(analysis.RenderRelations(analysis.InferRelations(ls, analysis.InferOptions{})))
	}
	return 0
}

// analyze runs the pipeline over the given trace files: one file goes
// through the parallel single-trace path; several files become incremental
// partials merged in sorted file-name order, byte-identical to analysing
// their concatenation.
func analyze(p analysis.Pipeline, paths []string, jobs int) (*analysis.Report, error) {
	if len(paths) == 1 {
		f, err := os.Open(paths[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src, err := trace.Open(f)
		if err != nil {
			return nil, err
		}
		return p.RunParallel(src, jobs)
	}
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	parts := make([]*analysis.Partial, 0, len(sorted))
	for _, path := range sorted {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		src, err := trace.Open(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		pa := p.NewPartial()
		err = pa.AddSource(src)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		parts = append(parts, pa)
	}
	return p.MergePartials(parts), nil
}

// writeJSON emits exactly one canonical JSON section — the same bytes the
// live service serves for the equivalent endpoint, which is what the CI
// loopback gate diffs.
func writeJSON(rep *analysis.Report, summary, values, origins bool) int {
	n := 0
	for _, b := range []bool{summary, values, origins} {
		if b {
			n++
		}
	}
	if n != 1 {
		fmt.Fprintln(os.Stderr, "timerstat: -json wants exactly one of -summary, -values, -origins")
		return 2
	}
	switch {
	case summary:
		os.Stdout.Write(rep.SummaryJSON())
	case values:
		os.Stdout.Write(rep.HistogramsJSON())
	case origins:
		os.Stdout.Write(rep.OriginsJSON())
	}
	return 0
}

// runServe runs the live trace service until the process receives SIGINT
// or SIGTERM, then shuts down gracefully: stop accepting, drain in-flight
// ingests, force a final merge, and close the listener — so an interrupted
// check.sh loopback gate never leaks a port or a half-written view. The
// listen line goes to stdout in a fixed format so scripts (scripts/check.sh)
// can scrape the bound address when given port 0.
func runServe(addr string, p analysis.Pipeline) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
		return 1
	}
	v := version.String()
	log.Printf("timerstat -serve %s", v)
	fmt.Printf("listening on http://%s\n", ln.Addr())
	srv := serve.New(serve.Options{Pipeline: p, Version: v})
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		// Serve only returns on listener failure here; Shutdown's
		// ErrServerClosed cannot arrive before the signal path runs it.
		fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	log.Printf("timerstat -serve: signal received, shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// Stragglers past the grace period are cut off, not waited for.
		hs.Close()
		fmt.Fprintf(os.Stderr, "timerstat: shutdown: %v\n", err)
	}
	<-done // Serve has returned ErrServerClosed; the port is released.
	records, streams := srv.FinalMerge()
	log.Printf("timerstat -serve: final merge: %d records across %d streams", records, streams)
	return 0
}

func main() {
	os.Exit(run())
}
