// Command timerstat analyses a binary timer trace written by timertrace,
// reproducing the paper's per-trace analyses: summary counts (Tables 1-2),
// usage-pattern classification (Figure 2), common-value histograms
// (Figures 3 and 5-7), the select-countdown dot plot (Figure 4), the
// expiry/cancelation scatter (Figures 8-11), and the origins table
// (Table 3).
//
// Both trace formats are auto-detected: the v1 in-memory format and the
// chunked v2 stream format (timertrace -stream). Everything except -deps
// runs in one streaming pass with memory bounded by live timers, so a v2
// trace larger than RAM analyses fine; -deps materializes per-timer
// histories and needs O(trace) memory.
//
// The streaming pass decodes and analyses on -j worker goroutines
// (default: all CPUs); output is byte-identical at any worker count, so
// -j only changes wall-clock time. Pass -j 1 to force the serial path.
//
// Usage:
//
//	timerstat -summary -classes -values trace.bin
//	timerstat -values -user-only -collapse -exclude Xorg,icewm trace.bin
//	timerstat -scatter -origins -series Xorg trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"timerstudy/internal/analysis"
	"timerstudy/internal/trace"
)

func run() int {
	summary := flag.Bool("summary", false, "print the trace summary (Tables 1-2)")
	classes := flag.Bool("classes", false, "print usage-pattern shares (Figure 2)")
	values := flag.Bool("values", false, "print the common-value histogram (Figures 3/5/6/7)")
	userOnly := flag.Bool("user-only", false, "restrict -values to user-space accesses (Figure 6)")
	collapse := flag.Bool("collapse", false, "collapse select countdowns to their initial value (Figure 5)")
	exclude := flag.String("exclude", "", "comma-separated processes to exclude (Figure 5 uses Xorg,icewm)")
	jiffyBin := flag.Bool("jiffies", true, "bin kernel values to jiffies (Linux analysis)")
	minShare := flag.Float64("min-share", 2.0, "histogram share threshold in percent")
	scatter := flag.Bool("scatter", false, "print the expiry/cancel scatter (Figures 8-11)")
	origins := flag.Bool("origins", false, "print the origins table (Table 3)")
	minSets := flag.Int("min-sets", 20, "origins table: minimum sets per origin")
	series := flag.String("series", "", "print the set-time/value dot plot for a process (Figure 4)")
	deps := flag.Bool("deps", false, "infer timer dependency/overlap relations (Section 5.2; needs O(trace) memory)")
	jobs := flag.Int("j", 0, "analysis worker count (0 = all CPUs, 1 = serial); output is identical at any count")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: timerstat [flags] trace-file")
		flag.PrintDefaults()
		return 2
	}
	if !*summary && !*classes && !*values && !*scatter && !*origins && *series == "" && !*deps {
		fmt.Fprintln(os.Stderr, "timerstat: nothing to do; pass -summary, -classes, -values, -scatter, -origins, -series or -deps")
		return 2
	}
	path := flag.Arg(0)
	var excl []string
	if *exclude != "" {
		excl = strings.Split(*exclude, ",")
	}

	// One streaming pass computes every requested artifact; a v2 source is
	// consumed incrementally, never materialized.
	p := analysis.Pipeline{
		Values: analysis.ValueOptions{
			UserOnly:           *userOnly,
			ExcludeProcesses:   excl,
			CollapseCountdowns: *collapse,
			JiffyBinKernel:     *jiffyBin,
			MinSharePercent:    *minShare,
		},
		SeriesProcess: *series,
	}
	if *scatter {
		opts := analysis.DefaultScatterOptions()
		opts.ExcludeProcesses = excl
		p.Scatter = &opts
	}
	if *origins {
		p.OriginMinSets = *minSets
	}
	rep, err := func() (*analysis.Report, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src, err := trace.Open(f)
		if err != nil {
			return nil, err
		}
		return p.RunParallel(src, *jobs)
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
		return 1
	}

	if *summary {
		s := rep.Summary
		fmt.Print(analysis.RenderSummaryTable("Trace summary", []string{"value"}, []analysis.Summary{s}))
		fmt.Printf("Clustered    %12d (distinct origin+pid)\n\n", s.ClusteredTimers)
	}
	if *classes {
		fmt.Println("Usage patterns (Figure 2):")
		fmt.Print(analysis.RenderClassShares([]string{"share"}, []analysis.ClassShares{rep.Shares}))
		fmt.Println()
	}
	if *values {
		fmt.Printf("Common timeout values (>=%.1f%% of %d samples):\n", *minShare, rep.ValuesTotal)
		fmt.Print(analysis.RenderValues(rep.Values))
		fmt.Println()
	}
	if *scatter {
		fmt.Println("Expiry/cancelation vs timeout (Figures 8-11):")
		fmt.Print(analysis.RenderScatter(rep.Scatter))
		fmt.Println()
	}
	if *origins {
		fmt.Println("Origins (Table 3):")
		fmt.Print(analysis.RenderOrigins(rep.Origins))
		fmt.Println()
	}
	if *series != "" {
		fmt.Printf("Set series for %s (Figure 4), %d points:\n", *series, len(rep.Series))
		fmt.Print(analysis.RenderSeries(rep.Series, rep.End.Sub(0)))
	}
	if *deps {
		// Relations need every use of every timer at once; reopen the file
		// (stream sources are one-shot) and materialize the histories.
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
			return 1
		}
		src, err := trace.Open(f)
		if err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "timerstat: %v\n", err)
			return 1
		}
		ls := analysis.Lifecycles(src)
		f.Close()
		fmt.Println("Inferred timer relations (Section 5.2):")
		fmt.Print(analysis.RenderRelations(analysis.InferRelations(ls, analysis.InferOptions{})))
	}
	return 0
}

func main() {
	os.Exit(run())
}
