package main

import "time"

// Wall-clock tunables for the -serve mode, with provenance (the paper's
// Section 4 discipline applied to our own magic numbers).
const (
	// shutdownGrace bounds graceful shutdown: in-flight ingest POSTs are a
	// few MiB at most and finish in well under a second on loopback; five
	// seconds covers a slow remote producer without making ^C feel hung.
	shutdownGrace = 5 * time.Second
)
