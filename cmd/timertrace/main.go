// Command timertrace runs one of the paper's workloads on a simulated
// Linux or Vista system and writes the resulting binary timer trace — the
// equivalent of the paper's relayfs/ETW collection step.
//
// Usage:
//
//	timertrace -os linux -workload firefox -duration 30m -seed 1 -o firefox.trace
//
// Workloads: idle, skype, firefox, webserver; the Vista personality also
// offers "desktop" (the 90-second Figure 1 trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
	"timerstudy/internal/workloads"
)

func main() {
	osName := flag.String("os", "linux", "personality: linux or vista")
	workload := flag.String("workload", "idle", "idle, skype, firefox, webserver, desktop (vista only)")
	duration := flag.Duration("duration", 30*time.Minute, "virtual trace duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	out := flag.String("o", "", "output trace file (default <os>-<workload>.trace)")
	flag.Parse()

	cfg := workloads.Config{Seed: *seed, Duration: sim.FromStd(*duration)}
	var res *workloads.Result
	switch *osName {
	case "linux":
		res = workloads.RunLinux(*workload, cfg)
	case "vista":
		res = workloads.RunVista(*workload, cfg)
	default:
		fmt.Fprintf(os.Stderr, "timertrace: unknown personality %q\n", *osName)
		os.Exit(2)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.trace", res.OS, res.Name)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "timertrace: %v\n", err)
		os.Exit(1)
	}
	if err := res.Trace.Encode(f); err != nil {
		fmt.Fprintf(os.Stderr, "timertrace: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "timertrace: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	s := analysis.Summarize(res.Trace)
	fmt.Printf("%s/%s: %v of virtual time, %d records (%d dropped) -> %s\n",
		res.OS, res.Name, res.Duration, res.Trace.Len(), res.Trace.Counters().Dropped, path)
	fmt.Printf("timers=%d concurrency=%d accesses=%d user=%d kernel=%d set=%d expired=%d canceled=%d\n",
		s.Timers, s.Concurrency, s.Accesses, s.UserSpace, s.Kernel, s.Set, s.Expired, s.Canceled)
}
