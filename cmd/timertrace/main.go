// Command timertrace runs one of the paper's workloads on a simulated
// Linux or Vista system and writes the resulting binary timer trace — the
// equivalent of the paper's relayfs/ETW collection step.
//
// By default the trace is buffered in memory and written in the v1 format
// at the end. With -stream the records spill to the output file in the
// chunked v2 format while the simulation runs, so memory stays bounded by
// live timers and the trace can exceed RAM. timerstat auto-detects both
// formats; the record streams are byte-for-byte identical.
//
// Usage:
//
//	timertrace -os linux -workload firefox -duration 30m -seed 1 -o firefox.trace
//	timertrace -os vista -workload desktop -stream -o desktop.trace
//
// Workloads: idle, skype, firefox, webserver; the Vista personality also
// offers "desktop" (the 90-second Figure 1 trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
	"timerstudy/internal/version"
	"timerstudy/internal/workloads"
)

func run() int {
	osName := flag.String("os", "linux", "personality: linux or vista")
	workload := flag.String("workload", "idle", "idle, skype, firefox, webserver, desktop (vista only)")
	duration := flag.Duration("duration", 30*time.Minute, "virtual trace duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	stream := flag.Bool("stream", false, "stream records to the output in the v2 format during the run (bounded memory)")
	out := flag.String("o", "", "output trace file (default <os>-<workload>.trace)")
	emit := flag.String("emit", "", "also stream the trace to a live timerstat -serve service at this base URL")
	emitStream := flag.String("emit-stream", "", "stream name for -emit (default <os>-<workload>)")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return 0
	}

	cfg := workloads.Config{Seed: *seed, Duration: sim.FromStd(*duration)}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.trace", *osName, *workload)
	}

	streamName := *emitStream
	if streamName == "" {
		streamName = fmt.Sprintf("%s-%s", *osName, *workload)
	}

	var f *os.File
	var sw *trace.StreamWriter
	var hs *trace.HTTPSink
	if *stream {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: %v\n", err)
			return 1
		}
		sw = trace.NewStreamWriter(f)
		cfg.Sink = sw
		if *emit != "" {
			// Single pass: tee the v2 stream to the live service while the
			// simulation writes the file.
			hs, err = trace.NewHTTPSink(*emit, streamName, trace.HTTPSinkOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "timertrace: -emit: %v\n", err)
				return 1
			}
			cfg.Sink = trace.Tee(sw, hs)
		}
	}

	var res *workloads.Result
	switch *osName {
	case "linux":
		res = workloads.RunLinux(*workload, cfg)
	case "vista":
		res = workloads.RunVista(*workload, cfg)
	default:
		fmt.Fprintf(os.Stderr, "timertrace: unknown personality %q\n", *osName)
		return 2
	}

	if *stream {
		if hs != nil {
			if err := hs.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "timertrace: -emit: %v\n", err)
				return 1
			}
		}
		if err := sw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: writing %s: %v\n", path, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: closing %s: %v\n", path, err)
			return 1
		}
	} else {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: %v\n", err)
			return 1
		}
		if err := res.Trace.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: writing %s: %v\n", path, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: closing %s: %v\n", path, err)
			return 1
		}
	}

	if *emit != "" && !*stream {
		// Buffered run: replay the in-memory records to the live service.
		hs, err := trace.NewHTTPSink(*emit, streamName, trace.HTTPSinkOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: -emit: %v\n", err)
			return 1
		}
		b := res.Trace
		for _, r := range b.Records() {
			r.Origin = hs.Origin(b.OriginName(r.Origin))
			hs.Log(r)
		}
		if err := hs.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "timertrace: -emit: %v\n", err)
			return 1
		}
	}

	c := res.Counters
	fmt.Printf("%s/%s: %v of virtual time, %d records (%d dropped) -> %s\n",
		res.OS, res.Name, res.Duration, c.Total-c.Dropped, c.Dropped, path)

	// Summarize from the written file: in stream mode the records were never
	// held in memory, so replay them; in buffer mode this doubles as a
	// round-trip check of what was just encoded.
	s, err := func() (analysis.Summary, error) {
		rf, err := os.Open(path)
		if err != nil {
			return analysis.Summary{}, err
		}
		defer rf.Close()
		src, err := trace.Open(rf)
		if err != nil {
			return analysis.Summary{}, err
		}
		rep, err := analysis.Pipeline{}.Run(src)
		if err != nil {
			return analysis.Summary{}, err
		}
		return rep.Summary, nil
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "timertrace: reading back %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("timers=%d concurrency=%d accesses=%d user=%d kernel=%d set=%d expired=%d canceled=%d\n",
		s.Timers, s.Concurrency, s.Accesses, s.UserSpace, s.Kernel, s.Set, s.Expired, s.Canceled)
	return 0
}

func main() {
	os.Exit(run())
}
