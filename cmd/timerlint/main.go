// Command timerlint runs the module's timer-hygiene and determinism
// analyzers (magictimeout, wallclock, uncheckedcancel, exactspec, rawsink,
// mapiter, goroutinecapture, allocfree) over the repository and prints
// position-accurate diagnostics.
//
// Usage:
//
//	timerlint [flags] [./... | dir ...]
//
// With "./..." (or no arguments) every package of the enclosing module is
// checked; explicit directories check just those packages. -as loads a single
// directory under the given import path, which places testdata fixtures on
// the policed paths the path-scoped analyzers care about.
//
// Output formats (-format): "text" (default, file:line:col lines), "json"
// (indented array, also via the legacy -json flag), and "github" (GitHub
// Actions ::error/::warning workflow commands that annotate a pull request).
//
// -baseline FILE drops findings recorded in an accepted-debt baseline;
// -write-baseline FILE records the current findings as that baseline.
// -run selects a comma-separated subset of analyzers; -j caps loader
// parallelism; -bench FILE merges the run's timing stats into a benchmark
// JSON report under its "lint" key.
//
// Exit status is 0 when clean (warnings only count as clean under
// -severity=error), 1 when findings were reported, 2 on a load or usage
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"timerstudy/internal/lint"
	"timerstudy/internal/version"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (same as -format=json)")
	format := flag.String("format", "text", "output format: text, json, or github")
	asPath := flag.String("as", "", "load a single directory under this import path (fixture testing)")
	runList := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	workers := flag.Int("j", 0, "parallel package loads (0 = GOMAXPROCS)")
	severity := flag.String("severity", "warning", "minimum severity that fails the run: warning or error")
	baseline := flag.String("baseline", "", "drop findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "record current findings as the accepted-debt baseline and exit 0")
	benchOut := flag.String("bench", "", "merge load/analyzer timing stats into this benchmark JSON file under the \"lint\" key")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: timerlint [flags] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		os.Exit(0)
	}
	if *jsonOut {
		*format = "json"
	}
	os.Exit(run(options{
		format:        *format,
		asPath:        *asPath,
		runList:       *runList,
		workers:       *workers,
		severity:      lint.Severity(*severity),
		baseline:      *baseline,
		writeBaseline: *writeBaseline,
		benchOut:      *benchOut,
	}, flag.Args()))
}

type options struct {
	format        string
	asPath        string
	runList       string
	workers       int
	severity      lint.Severity
	baseline      string
	writeBaseline string
	benchOut      string
}

func run(opts options, args []string) int {
	switch opts.format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "timerlint: unknown format %q (want text, json, or github)\n", opts.format)
		return 2
	}
	analyzers, err := lint.Select(opts.runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerlint:", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerlint:", err)
		return 2
	}

	loadStart := time.Now()
	var pkgs []*lint.Package
	if opts.asPath != "" {
		if len(args) != 1 || args[0] == "./..." {
			fmt.Fprintln(os.Stderr, "timerlint: -as requires exactly one directory argument")
			return 2
		}
		p, err := loader.LoadDirAs(args[0], opts.asPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
		pkgs = append(pkgs, p)
	} else if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		pkgs, err = loader.LoadAllWorkers(opts.workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
	} else {
		for _, dir := range args {
			p, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "timerlint:", err)
				return 2
			}
			pkgs = append(pkgs, p)
		}
	}
	loadMS := float64(time.Since(loadStart).Nanoseconds()) / 1e6

	runStart := time.Now()
	ds, stats := lint.RunStats(loader, pkgs, analyzers)
	runMS := float64(time.Since(runStart).Nanoseconds()) / 1e6
	lint.Relativize(loader.ModuleDir, ds)

	if opts.writeBaseline != "" {
		if err := lint.WriteBaseline(opts.writeBaseline, ds); err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "timerlint: wrote %d finding(s) to baseline %s\n", len(ds), opts.writeBaseline)
		return 0
	}
	if opts.baseline != "" {
		var dropped int
		ds, dropped, err = lint.ApplyBaseline(opts.baseline, ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "timerlint: %d baselined finding(s) suppressed\n", dropped)
		}
	}
	if opts.benchOut != "" {
		if err := mergeBenchStats(opts.benchOut, loadMS, runMS, opts.workers, len(pkgs), stats); err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
	}

	switch opts.format {
	case "json":
		out, err := lint.JSON(ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
		fmt.Println(string(out))
	case "github":
		fmt.Print(lint.GitHub(ds))
	default:
		fmt.Print(lint.Text(ds))
	}
	failing := lint.FilterSeverity(ds, opts.severity)
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "timerlint: %d finding(s)\n", len(ds))
		return 1
	}
	return 0
}

// mergeBenchStats inserts the run's cost accounting under the "lint" key of
// a benchmark JSON report (created if absent), preserving other keys.
func mergeBenchStats(path string, loadMS, runMS float64, workers, pkgCount int, stats []lint.AnalyzerStat) error {
	report := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	report["lint"] = map[string]any{
		"load_wall_ms":  loadMS,
		"run_wall_ms":   runMS,
		"total_wall_ms": loadMS + runMS,
		"workers":       workers,
		"packages":      pkgCount,
		"analyzers":     stats,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
