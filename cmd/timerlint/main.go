// Command timerlint runs the module's timer-hygiene analyzers (magictimeout,
// wallclock, uncheckedcancel, exactspec) over the repository and prints
// position-accurate diagnostics.
//
// Usage:
//
//	timerlint [-json] [-as import/path] [./... | dir ...]
//
// With "./..." (or no arguments) every package of the enclosing module is
// checked; explicit directories check just those packages. -as loads a single
// directory under the given import path, which places testdata fixtures on
// the policed paths the path-scoped analyzers care about. Exit status is 0
// when clean, 1 when findings were reported, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"timerstudy/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	asPath := flag.String("as", "", "load a single directory under this import path (fixture testing)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: timerlint [-json] [-as import/path] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*jsonOut, *asPath, flag.Args()))
}

func run(jsonOut bool, asPath string, args []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerlint:", err)
		return 2
	}

	var pkgs []*lint.Package
	if asPath != "" {
		if len(args) != 1 || args[0] == "./..." {
			fmt.Fprintln(os.Stderr, "timerlint: -as requires exactly one directory argument")
			return 2
		}
		p, err := loader.LoadDirAs(args[0], asPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
		pkgs = append(pkgs, p)
	} else if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
	} else {
		for _, dir := range args {
			p, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "timerlint:", err)
				return 2
			}
			pkgs = append(pkgs, p)
		}
	}

	ds := lint.Run(loader, pkgs, lint.Analyzers())
	lint.Relativize(loader.ModuleDir, ds)
	if jsonOut {
		out, err := lint.JSON(ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerlint:", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(lint.Text(ds))
	}
	if len(ds) > 0 {
		fmt.Fprintf(os.Stderr, "timerlint: %d finding(s)\n", len(ds))
		return 1
	}
	return 0
}
