#!/usr/bin/env bash
# Regenerate the machine-readable experiments timing report.
#
#   scripts/bench.sh                          # writes BENCH_experiments.json (quick traces)
#   scripts/bench.sh out.json                 # custom output path
#   FULL=1 scripts/bench.sh                   # the paper's full 30-minute traces
#
# The report records wall-clock per evaluation trace (run + analyze),
# records/sec of analysis throughput, per-table/figure render time, the
# fan-out speedup estimate for this host, and v2 stream-codec throughput
# (encode/decode MB/s and records/sec under "stream"). See EXPERIMENTS.md
# for how to read it.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_experiments.json}"
args=(-bench "$out")
if [[ "${FULL:-0}" != "1" ]]; then
	args+=(-quick)
fi

go run ./cmd/experiments "${args[@]}" > /dev/null
echo "wrote $out"
