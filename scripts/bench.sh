#!/usr/bin/env bash
# Regenerate the machine-readable experiments timing report.
#
#   scripts/bench.sh                          # writes BENCH_experiments.json (quick traces)
#   scripts/bench.sh out.json                 # custom output path
#   FULL=1 scripts/bench.sh                   # the paper's full 30-minute traces
#   FLEET_HOSTS=1024 scripts/bench.sh         # bigger -fleet pass (default 64 hosts)
#
# The report records wall-clock per evaluation trace (run + analyze),
# records/sec of analysis throughput, per-table/figure render time, the
# fan-out speedup estimate for this host, v2 stream-codec and analysis
# throughput (encode/decode MB/s plus analyze_mb_per_sec,
# analyze_parallel_mb_per_sec and the per-worker-count
# analyze_worker_mb_per_sec scaling map under "stream"), and the timerlint
# self-run cost (load + per-analyzer wall time and finding counts under
# "lint"). Parallel-analyze numbers are host-dependent: on a single-CPU
# machine parallel equals serial. See EXPERIMENTS.md for how to read it.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_experiments.json}"
args=(-bench "$out")
if [[ "${FULL:-0}" != "1" ]]; then
	args+=(-quick)
fi

go run ./cmd/experiments "${args[@]}" > /dev/null

# Fleet scenario: hosts, cumulative timers, events/sec, wall ms and
# speedup_vs_workers, merged under the "fleet" key. The run itself enforces
# digest equality between its workers=1 and workers=N passes (exit 1 on
# divergence), so a bench regeneration doubles as a determinism check.
# Default is a 64-host, 5 s pass so bench.sh stays fast; FLEET_HOSTS=1024
# FLEET_DURATION=30s reproduces the full datacenter scenario.
go run ./cmd/experiments -fleet -hosts "${FLEET_HOSTS:-64}" \
	-fleet-duration "${FLEET_DURATION:-5s}" -bench "$out" > /dev/null

# Control plane: a steered fleet run that writes a checkpoint at its end,
# merged under the "control" key (checkpoint_ms, checkpoint_bytes, windows,
# commands_applied, wall_ms, digest). The steering script exercises every
# command kind, so the bench doubles as a smoke test of the steered path.
ctl_ck="$(mktemp)"
go run ./cmd/experiments -hosts "${FLEET_HOSTS:-64}" \
	-fleet-duration "${FLEET_DURATION:-5s}" \
	-steer "10:spike:*:4:500ms,20:kill:ws-0000,25:policy:*:adaptive,30:coalesce:*:100ms,60:restart:ws-0000" \
	-checkpoint "$ctl_ck" -bench "$out" > /dev/null
rm -f "$ctl_ck"

# Live trace service: loopback ingest/query throughput (producers x
# readers through real HTTP), merged under the "serve" key. The run also
# re-checks the quiesced server's summary against the offline pipeline and
# exits nonzero on divergence, so the bench doubles as a determinism check.
go run ./cmd/experiments -serve-bench -quick \
	-serve-producers "${SERVE_PRODUCERS:-8}" -serve-readers "${SERVE_READERS:-4}" \
	-bench "$out" > /dev/null

# Lint self-run cost: package-load and per-analyzer wall time plus finding
# counts, merged into the report under its "lint" key. Findings themselves
# gate check.sh, not the bench; a dirty tree still yields a timing report.
go run ./cmd/timerlint -bench "$out" ./... > /dev/null || true
echo "wrote $out"
