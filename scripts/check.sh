#!/usr/bin/env bash
# Full verification: build, vet, race tests, and the repo's own linter.
# CI runs exactly this script; run it before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== parallel determinism golden test =="
go test -race -count=2 -run 'TestParallelMatchesSerial|TestRunAllDeterministicAcrossWorkers|TestQueueKindsByteIdenticalTraces' \
	./cmd/experiments ./internal/workloads

echo "== spill-vs-memory determinism golden test =="
# The streaming trace path (v2 spill files) must render byte-identical
# tables and figures to the in-memory path.
go test -race -count=2 -run 'TestSpillMatchesMemory' ./cmd/experiments

echo "== serial-vs-parallel analysis determinism golden test =="
# Pipeline.RunParallel must produce byte-identical reports to Pipeline.Run
# at every worker count, over buffers and v2 streams, including chunk sizes
# that straddle origin frames and timer lifecycles.
go test -race -count=2 -run 'TestRunParallelMatchesRunAcrossWorkers|TestRunParallelChunkTorture|TestParallelForEachMatchesSerial' \
	./internal/analysis ./internal/trace

echo "== allocation regression (steady-state hot paths must be alloc-free) =="
# Run WITHOUT -race: the race detector instruments allocations and would
# make AllocsPerRun report false positives.
go test -count=1 -run 'TestEngineZeroAllocSteadyState|TestEventAllocsPlateau|TestLogZeroAlloc|TestStreamWriterLogZeroAlloc|TestShardRecordZeroAlloc' \
	./internal/sim ./internal/trace ./internal/analysis

echo "== codec fuzz smoke (10s per format) =="
go test -run '^$' -fuzz 'FuzzDecode$' -fuzztime=10s ./internal/trace
go test -run '^$' -fuzz 'FuzzDecodeV2$' -fuzztime=10s ./internal/trace
go test -run '^$' -fuzz 'FuzzReadCheckpoint' -fuzztime=10s ./internal/trace
go test -run '^$' -fuzz 'FuzzDecodeCommands' -fuzztime=10s ./internal/control

echo "== benchmark smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime=1x ./...

echo "== timerlint (full analyzer suite) =="
go run ./cmd/timerlint ./...

echo "== timerlint allocfree gate (annotated hot paths must have no heap escapes) =="
# Redundant with the full run above, but asserted separately so an alloc
# regression on the engine schedule/expire path, the wheel cascade, the
# trace encoders, or the analysis per-record fold fails with an
# unmistakable step name.
go run ./cmd/timerlint -run allocfree ./internal/sim ./internal/trace ./internal/analysis

echo "== timerlint serve gates (stream ingest + producer sink) =="
# The live service and the HTTP producer sink hold the retry/backoff and
# merge-cadence tunables: magictimeout audits their timeouts.go provenance
# registries, rawsink/goroutinecapture audit the ingest handlers and the
# sink's sender goroutine.
go run ./cmd/timerlint -run rawsink,goroutinecapture,magictimeout ./internal/serve ./internal/trace

echo "== timerlint fleet gates (alloc-free window advance, no shared-state captures) =="
# The fleet's worker-pool closures and the netsim fabric they read are the
# two places a shared-state capture would silently break byte-identical
# traces; goroutinecapture audits them, allocfree covers the per-window
# advance path.
go run ./cmd/timerlint -run allocfree,goroutinecapture ./internal/fleet ./internal/netsim

echo "== timerlint control gates (window-boundary apply path, bounds provenance) =="
# The control plane drains commands at the fleet barrier and stores its
# bounds in timeouts.go: allocfree/goroutinecapture audit the apply path,
# magictimeout audits the registry.
go run ./cmd/timerlint -run allocfree,goroutinecapture,magictimeout ./internal/control

echo "== fleet serial-vs-parallel determinism gate (64 hosts) =="
# Two separate processes — workers=1 and workers=4 — must print identical
# fleet digests: per-host traces byte-identical regardless of worker count.
# (Each multi-worker run also self-checks in-process; this gate additionally
# pins serial-only against parallel across process boundaries.)
fleet_args=(-fleet -hosts 64 -fleet-duration 2s)
d1="$(go run ./cmd/experiments "${fleet_args[@]}" -fleet-workers 1 | grep '^fleet digest:' | cut -d' ' -f3)"
d4="$(go run ./cmd/experiments "${fleet_args[@]}" -fleet-workers 4 | grep '^fleet digest:' | cut -d' ' -f3)"
if [[ -z "$d1" || "$d1" != "$d4" ]]; then
	echo "FLEET NONDETERMINISM: workers=1 digest '$d1' != workers=4 digest '$d4'" >&2
	exit 1
fi
echo "fleet digest $d1 identical at workers=1 and workers=4"

echo "== command-replay determinism gate (steered run == recorded replay) =="
# A steered run's recorded command log, replayed from seed in a separate
# process at a different worker count AND on the other event-queue
# implementation, must land on the identical control digest. CONTROL_HOSTS
# sizes the fleet (default 1024 — the acceptance scale; the whole
# four-run gate pair takes ~12 s on this container).
ctl_dir="$(mktemp -d)"
ctl_args=(-hosts "${CONTROL_HOSTS:-1024}" -fleet-duration 1s -seed 7)
steer_script="10:spike:*:4:200ms,20:kill:ws-0000,25:policy:*:adaptive,30:coalesce:*:100ms,60:restart:ws-0000"
go build -o "$ctl_dir/experiments" ./cmd/experiments
c1="$("$ctl_dir/experiments" "${ctl_args[@]}" -steer "$steer_script" \
	-record-commands "$ctl_dir/cmds.tcmd" -fleet-workers 4 \
	| grep '^control digest:' | cut -d' ' -f3)"
c2="$("$ctl_dir/experiments" "${ctl_args[@]}" -replay-commands "$ctl_dir/cmds.tcmd" \
	-fleet-workers 1 | grep '^control digest:' | cut -d' ' -f3)"
c3="$("$ctl_dir/experiments" "${ctl_args[@]}" -replay-commands "$ctl_dir/cmds.tcmd" \
	-fleet-workers 8 -queue wheel | grep '^control digest:' | cut -d' ' -f3)"
if [[ -z "$c1" || "$c1" != "$c2" || "$c1" != "$c3" ]]; then
	echo "COMMAND REPLAY NONDETERMINISM: steered '$c1' vs replay-w1 '$c2' vs replay-w8-wheel '$c3'" >&2
	rm -rf "$ctl_dir"
	exit 1
fi
echo "control digest $c1 identical for steered run and both replays"

echo "== checkpoint-resume digest gate (interrupted run == uninterrupted) =="
# The same steered run interrupted at window 40, checkpointed, and resumed
# in a fresh process (different worker count) must finish on the exact
# digest of the uninterrupted run above. Keyframe verification runs inside
# -resume: any divergence between the rebuilt fleet and the checkpoint's
# per-host keyframe is a hard error before the run even continues.
"$ctl_dir/experiments" "${ctl_args[@]}" -steer "$steer_script" \
	-stop-window 40 -checkpoint "$ctl_dir/ck.tckp" -fleet-workers 4 > /dev/null
c4="$("$ctl_dir/experiments" -resume "$ctl_dir/ck.tckp" -fleet-workers 2 \
	| grep '^control digest:' | cut -d' ' -f3)"
rm -rf "$ctl_dir"
if [[ -z "$c4" || "$c4" != "$c1" ]]; then
	echo "CHECKPOINT RESUME DIVERGENCE: resumed digest '$c4' != uninterrupted '$c1'" >&2
	exit 1
fi
echo "control digest $c4 identical for checkpoint-resumed and uninterrupted runs"

echo "== live-service loopback gate (serve ingest == offline timerstat) =="
# End-to-end determinism across the network path: start timerstat -serve on
# a loopback port, record a trace while streaming it to the service through
# trace.HTTPSink (timertrace -emit), then the quiesced server's
# /api/summary must be byte-identical to offline `timerstat -json -summary`
# over the recorded file.
gate_dir="$(mktemp -d)"
serve_pid=""
trap 'rm -rf "$gate_dir"; [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$gate_dir/timerstat" ./cmd/timerstat
go build -o "$gate_dir/timertrace" ./cmd/timertrace
"$gate_dir/timerstat" -serve 127.0.0.1:0 > "$gate_dir/serve.out" 2> "$gate_dir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do
	serve_url="$(sed -n 's#^listening on ##p' "$gate_dir/serve.out")"
	[[ -n "$serve_url" ]] && break
	sleep 0.1
done
if [[ -z "${serve_url:-}" ]]; then
	echo "LOOPBACK GATE: timerstat -serve never reported its address" >&2
	cat "$gate_dir/serve.log" >&2
	exit 1
fi
"$gate_dir/timertrace" -os linux -workload firefox -duration 2m -stream \
	-o "$gate_dir/gate.trace" -emit "$serve_url" > /dev/null
curl -sf "$serve_url/api/summary" > "$gate_dir/served.json"
"$gate_dir/timerstat" -json -summary "$gate_dir/gate.trace" > "$gate_dir/offline.json"
if ! diff -u "$gate_dir/served.json" "$gate_dir/offline.json"; then
	echo "LOOPBACK GATE: live /api/summary != offline timerstat -json -summary" >&2
	exit 1
fi
echo "live service summary byte-identical to offline analysis"

echo "OK"
