#!/usr/bin/env bash
# Full verification: build, vet, race tests, and the repo's own linter.
# CI runs exactly this script; run it before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== timerlint =="
go run ./cmd/timerlint ./...

echo "OK"
