#!/usr/bin/env bash
# Full verification: build, vet, race tests, and the repo's own linter.
# CI runs exactly this script; run it before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== parallel determinism golden test =="
go test -race -count=2 -run 'TestParallelMatchesSerial|TestRunAllDeterministicAcrossWorkers|TestQueueKindsByteIdenticalTraces' \
	./cmd/experiments ./internal/workloads

echo "== spill-vs-memory determinism golden test =="
# The streaming trace path (v2 spill files) must render byte-identical
# tables and figures to the in-memory path.
go test -race -count=2 -run 'TestSpillMatchesMemory' ./cmd/experiments

echo "== serial-vs-parallel analysis determinism golden test =="
# Pipeline.RunParallel must produce byte-identical reports to Pipeline.Run
# at every worker count, over buffers and v2 streams, including chunk sizes
# that straddle origin frames and timer lifecycles.
go test -race -count=2 -run 'TestRunParallelMatchesRunAcrossWorkers|TestRunParallelChunkTorture|TestParallelForEachMatchesSerial' \
	./internal/analysis ./internal/trace

echo "== allocation regression (steady-state hot paths must be alloc-free) =="
# Run WITHOUT -race: the race detector instruments allocations and would
# make AllocsPerRun report false positives.
go test -count=1 -run 'TestEngineZeroAllocSteadyState|TestEventAllocsPlateau|TestLogZeroAlloc|TestStreamWriterLogZeroAlloc|TestShardRecordZeroAlloc' \
	./internal/sim ./internal/trace ./internal/analysis

echo "== codec fuzz smoke (10s per format) =="
go test -run '^$' -fuzz 'FuzzDecode$' -fuzztime=10s ./internal/trace
go test -run '^$' -fuzz 'FuzzDecodeV2$' -fuzztime=10s ./internal/trace

echo "== benchmark smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime=1x ./...

echo "== timerlint (full analyzer suite) =="
go run ./cmd/timerlint ./...

echo "== timerlint allocfree gate (annotated hot paths must have no heap escapes) =="
# Redundant with the full run above, but asserted separately so an alloc
# regression on the engine schedule/expire path, the wheel cascade, the
# trace encoders, or the analysis per-record fold fails with an
# unmistakable step name.
go run ./cmd/timerlint -run allocfree ./internal/sim ./internal/trace ./internal/analysis

echo "== timerlint serve gates (stream ingest + producer sink) =="
# The live service and the HTTP producer sink hold the retry/backoff and
# merge-cadence tunables: magictimeout audits their timeouts.go provenance
# registries, rawsink/goroutinecapture audit the ingest handlers and the
# sink's sender goroutine.
go run ./cmd/timerlint -run rawsink,goroutinecapture,magictimeout ./internal/serve ./internal/trace

echo "== timerlint fleet gates (alloc-free window advance, no shared-state captures) =="
# The fleet's worker-pool closures and the netsim fabric they read are the
# two places a shared-state capture would silently break byte-identical
# traces; goroutinecapture audits them, allocfree covers the per-window
# advance path.
go run ./cmd/timerlint -run allocfree,goroutinecapture ./internal/fleet ./internal/netsim

echo "== fleet serial-vs-parallel determinism gate (64 hosts) =="
# Two separate processes — workers=1 and workers=4 — must print identical
# fleet digests: per-host traces byte-identical regardless of worker count.
# (Each multi-worker run also self-checks in-process; this gate additionally
# pins serial-only against parallel across process boundaries.)
fleet_args=(-fleet -hosts 64 -fleet-duration 2s)
d1="$(go run ./cmd/experiments "${fleet_args[@]}" -fleet-workers 1 | grep '^fleet digest:' | cut -d' ' -f3)"
d4="$(go run ./cmd/experiments "${fleet_args[@]}" -fleet-workers 4 | grep '^fleet digest:' | cut -d' ' -f3)"
if [[ -z "$d1" || "$d1" != "$d4" ]]; then
	echo "FLEET NONDETERMINISM: workers=1 digest '$d1' != workers=4 digest '$d4'" >&2
	exit 1
fi
echo "fleet digest $d1 identical at workers=1 and workers=4"

echo "== live-service loopback gate (serve ingest == offline timerstat) =="
# End-to-end determinism across the network path: start timerstat -serve on
# a loopback port, record a trace while streaming it to the service through
# trace.HTTPSink (timertrace -emit), then the quiesced server's
# /api/summary must be byte-identical to offline `timerstat -json -summary`
# over the recorded file.
gate_dir="$(mktemp -d)"
serve_pid=""
trap 'rm -rf "$gate_dir"; [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$gate_dir/timerstat" ./cmd/timerstat
go build -o "$gate_dir/timertrace" ./cmd/timertrace
"$gate_dir/timerstat" -serve 127.0.0.1:0 > "$gate_dir/serve.out" 2> "$gate_dir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do
	serve_url="$(sed -n 's#^listening on ##p' "$gate_dir/serve.out")"
	[[ -n "$serve_url" ]] && break
	sleep 0.1
done
if [[ -z "${serve_url:-}" ]]; then
	echo "LOOPBACK GATE: timerstat -serve never reported its address" >&2
	cat "$gate_dir/serve.log" >&2
	exit 1
fi
"$gate_dir/timertrace" -os linux -workload firefox -duration 2m -stream \
	-o "$gate_dir/gate.trace" -emit "$serve_url" > /dev/null
curl -sf "$serve_url/api/summary" > "$gate_dir/served.json"
"$gate_dir/timerstat" -json -summary "$gate_dir/gate.trace" > "$gate_dir/offline.json"
if ! diff -u "$gate_dir/served.json" "$gate_dir/offline.json"; then
	echo "LOOPBACK GATE: live /api/summary != offline timerstat -json -summary" >&2
	exit 1
fi
echo "live service summary byte-identical to offline analysis"

echo "OK"
