#!/usr/bin/env bash
# Full verification: build, vet, race tests, and the repo's own linter.
# CI runs exactly this script; run it before sending a change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== parallel determinism golden test =="
go test -race -count=2 -run 'TestParallelMatchesSerial|TestRunAllDeterministicAcrossWorkers|TestQueueKindsByteIdenticalTraces' \
	./cmd/experiments ./internal/workloads

echo "== spill-vs-memory determinism golden test =="
# The streaming trace path (v2 spill files) must render byte-identical
# tables and figures to the in-memory path.
go test -race -count=2 -run 'TestSpillMatchesMemory' ./cmd/experiments

echo "== serial-vs-parallel analysis determinism golden test =="
# Pipeline.RunParallel must produce byte-identical reports to Pipeline.Run
# at every worker count, over buffers and v2 streams, including chunk sizes
# that straddle origin frames and timer lifecycles.
go test -race -count=2 -run 'TestRunParallelMatchesRunAcrossWorkers|TestRunParallelChunkTorture|TestParallelForEachMatchesSerial' \
	./internal/analysis ./internal/trace

echo "== allocation regression (steady-state hot paths must be alloc-free) =="
# Run WITHOUT -race: the race detector instruments allocations and would
# make AllocsPerRun report false positives.
go test -count=1 -run 'TestEngineZeroAllocSteadyState|TestEventAllocsPlateau|TestLogZeroAlloc|TestStreamWriterLogZeroAlloc|TestShardRecordZeroAlloc' \
	./internal/sim ./internal/trace ./internal/analysis

echo "== codec fuzz smoke (10s per format) =="
go test -run '^$' -fuzz 'FuzzDecode$' -fuzztime=10s ./internal/trace
go test -run '^$' -fuzz 'FuzzDecodeV2$' -fuzztime=10s ./internal/trace

echo "== benchmark smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime=1x ./...

echo "== timerlint (full analyzer suite) =="
go run ./cmd/timerlint ./...

echo "== timerlint allocfree gate (annotated hot paths must have no heap escapes) =="
# Redundant with the full run above, but asserted separately so an alloc
# regression on the engine schedule/expire path, the wheel cascade, the
# trace encoders, or the analysis per-record fold fails with an
# unmistakable step name.
go run ./cmd/timerlint -run allocfree ./internal/sim ./internal/trace ./internal/analysis

echo "== timerlint fleet gates (alloc-free window advance, no shared-state captures) =="
# The fleet's worker-pool closures and the netsim fabric they read are the
# two places a shared-state capture would silently break byte-identical
# traces; goroutinecapture audits them, allocfree covers the per-window
# advance path.
go run ./cmd/timerlint -run allocfree,goroutinecapture ./internal/fleet ./internal/netsim

echo "== fleet serial-vs-parallel determinism gate (64 hosts) =="
# Two separate processes — workers=1 and workers=4 — must print identical
# fleet digests: per-host traces byte-identical regardless of worker count.
# (Each multi-worker run also self-checks in-process; this gate additionally
# pins serial-only against parallel across process boundaries.)
fleet_args=(-fleet -hosts 64 -fleet-duration 2s)
d1="$(go run ./cmd/experiments "${fleet_args[@]}" -fleet-workers 1 | grep '^fleet digest:' | cut -d' ' -f3)"
d4="$(go run ./cmd/experiments "${fleet_args[@]}" -fleet-workers 4 | grep '^fleet digest:' | cut -d' ' -f3)"
if [[ -z "$d1" || "$d1" != "$d4" ]]; then
	echo "FLEET NONDETERMINISM: workers=1 digest '$d1' != workers=4 digest '$d4'" >&2
	exit 1
fi
echo "fleet digest $d1 identical at workers=1 and workers=4"

echo "OK"
