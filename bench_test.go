// Package timerstudy's root benchmark harness: one benchmark per table and
// figure in the paper's evaluation, plus ablations over the timer-queue
// data structures. Each benchmark regenerates its experiment end to end
// (workload simulation + analysis) on short virtual traces and reports the
// experiment's headline quantity via ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced shapes.
package timerstudy

import (
	"testing"

	"timerstudy/internal/analysis"
	"timerstudy/internal/core"
	"timerstudy/internal/dispatch"
	"timerstudy/internal/jiffies"
	"timerstudy/internal/kernel"
	"timerstudy/internal/layers"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/softtimer"
	"timerstudy/internal/timerwheel"
	"timerstudy/internal/trace"
	"timerstudy/internal/workloads"
)

// benchDuration keeps per-iteration work modest; rates are duration-
// independent.
const benchDuration = 60 * sim.Second

func benchCfg() workloads.Config {
	return workloads.Config{Seed: 1, Duration: benchDuration}
}

// --- Tables 1 and 2 ---

// benchSummaries fans the table's workloads across the worker pool (the
// cmd/experiments production path) and summarizes each trace in-worker.
func benchSummaries(b *testing.B, os string, names []string) {
	specs := make([]workloads.Spec, len(names))
	for i, n := range names {
		specs[i] = workloads.Spec{OS: os, Name: n, Cfg: benchCfg()}
	}
	last := make([]analysis.Summary, len(specs))
	for i := 0; i < b.N; i++ {
		workloads.ForEach(specs, 0, func(j int, res *workloads.Result) {
			last[j] = analysis.Summarize(res.Trace)
		})
	}
	secs := benchDuration.Seconds()
	for i, n := range names {
		b.ReportMetric(float64(last[i].Accesses)/secs, n+"-acc/vs")
	}
}

func BenchmarkTable1LinuxSummary(b *testing.B) {
	benchSummaries(b, "linux", workloads.LinuxWorkloads())
}

func BenchmarkTable2VistaSummary(b *testing.B) {
	benchSummaries(b, "vista", workloads.VistaWorkloads())
}

// --- The evaluation fan-out: nine traces, serial vs worker pool ---

// benchNineWorkloads runs the full evaluation set (4 Linux + 4 Vista +
// the 90 s desktop) per iteration; the Serial/Parallel pair measures the
// fan-out speedup on this host (identical on one core, ~min(9, cores)x
// apart on a multi-core machine — the outputs are identical either way,
// see TestParallelMatchesSerial).
func benchNineWorkloads(b *testing.B, workers int) {
	specs := workloads.EvaluationSpecs(benchCfg())
	accesses := make([]uint64, len(specs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workloads.ForEach(specs, workers, func(j int, res *workloads.Result) {
			accesses[j] = analysis.Summarize(res.Trace).Accesses
		})
	}
	var total uint64
	for _, a := range accesses {
		total += a
	}
	b.ReportMetric(float64(total), "accesses")
}

func BenchmarkNineWorkloadsSerial(b *testing.B)   { benchNineWorkloads(b, 1) }
func BenchmarkNineWorkloadsParallel(b *testing.B) { benchNineWorkloads(b, 0) }

// --- Ablation: engine event-queue kind under the full evaluation set ---

// benchEngineQueueKind reruns the nine evaluation workloads with the engine's
// event queue switched between the binary heap and the hierarchical timing
// wheel. The traces are byte-identical across kinds (see the workloads golden
// test); this measures what the choice costs end to end, with allocations
// reported so pooling regressions in either queue show up as allocs/op.
func benchEngineQueueKind(b *testing.B, kind sim.QueueKind) {
	cfg := benchCfg()
	cfg.Queue = kind
	specs := workloads.EvaluationSpecs(cfg)
	var records uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		records = 0
		workloads.ForEach(specs, 1, func(j int, res *workloads.Result) {
			records += uint64(res.Trace.Len())
		})
	}
	b.ReportMetric(float64(records), "records")
}

func BenchmarkEngineQueueHeap(b *testing.B)  { benchEngineQueueKind(b, sim.QueueHeap) }
func BenchmarkEngineQueueWheel(b *testing.B) { benchEngineQueueKind(b, sim.QueueWheel) }

// --- Single-pass pipeline vs the six independent walks it replaced ---

func benchAnalysisOptions() (vPlain, vFilt, vUser analysis.ValueOptions, sOpts analysis.ScatterOptions) {
	vPlain = analysis.ValueOptions{JiffyBinKernel: true, MinSharePercent: 2}
	vFilt = analysis.ValueOptions{
		JiffyBinKernel: true, MinSharePercent: 2,
		CollapseCountdowns: true, ExcludeProcesses: []string{"Xorg", "icewm"},
	}
	vUser = analysis.ValueOptions{UserOnly: true, MinSharePercent: 2, CollapseCountdowns: true}
	sOpts = analysis.DefaultScatterOptions()
	sOpts.ExcludeProcesses = []string{"Xorg", "icewm"}
	return
}

func BenchmarkAnalysisSinglePassPipeline(b *testing.B) {
	res := workloads.RunLinux(workloads.Webserver, benchCfg())
	vPlain, vFilt, vUser, sOpts := benchAnalysisOptions()
	b.ReportAllocs()
	b.ResetTimer()
	var rep *analysis.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = analysis.Pipeline{
			Values: vPlain, ValuesFiltered: &vFilt, ValuesUser: &vUser,
			Scatter: &sOpts, SeriesProcess: "Xorg", OriginMinSets: 50,
		}.Run(res.Trace)
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
	b.ReportMetric(float64(res.Trace.Len()), "records")
	b.ReportMetric(float64(len(rep.Origins)), "origin-rows")
}

func BenchmarkAnalysisLegacySixPass(b *testing.B) {
	res := workloads.RunLinux(workloads.Webserver, benchCfg())
	vPlain, vFilt, vUser, sOpts := benchAnalysisOptions()
	b.ReportAllocs()
	b.ResetTimer()
	var rows []analysis.OriginRow
	for i := 0; i < b.N; i++ {
		ls := analysis.Lifecycles(res.Trace)
		_ = analysis.Summarize(res.Trace)
		_ = analysis.ComputeClassShares(ls)
		_, _ = analysis.CommonValues(ls, vPlain)
		_, _ = analysis.CommonValues(ls, vFilt)
		_, _ = analysis.CommonValues(ls, vUser)
		_ = analysis.Scatter(ls, sOpts)
		_ = analysis.SetSeries(ls, "Xorg")
		rows = analysis.OriginTable(ls, 50)
	}
	b.ReportMetric(float64(res.Trace.Len()), "records")
	b.ReportMetric(float64(len(rows)), "origin-rows")
}

// --- Table 3 ---

func BenchmarkTable3Origins(b *testing.B) {
	var rows []analysis.OriginRow
	for i := 0; i < b.N; i++ {
		res := workloads.RunLinux(workloads.Webserver, benchCfg())
		rows = analysis.OriginTable(analysis.Lifecycles(res.Trace), 20)
	}
	b.ReportMetric(float64(len(rows)), "origin-rows")
}

// --- Figure 1 ---

func BenchmarkFigure1VistaDesktopRate(b *testing.B) {
	var outlookPeak, kernelMean float64
	for i := 0; i < b.N; i++ {
		res := workloads.RunVista(workloads.Desktop, workloads.Config{Seed: 1, Duration: 90 * sim.Second})
		for _, s := range analysis.SetRates(res.Trace, res.Duration, workloads.DesktopGrouper()) {
			switch s.Group {
			case "Outlook":
				outlookPeak = float64(s.Peak())
			case "Kernel":
				kernelMean = s.Mean()
			}
		}
	}
	b.ReportMetric(outlookPeak, "outlook-peak/s")
	b.ReportMetric(kernelMean, "kernel-mean/s")
}

// --- Figure 2 ---

func BenchmarkFigure2UsagePatterns(b *testing.B) {
	var shares analysis.ClassShares
	for i := 0; i < b.N; i++ {
		res := workloads.RunLinux(workloads.Idle, benchCfg())
		shares = analysis.ComputeClassShares(analysis.Lifecycles(res.Trace))
	}
	b.ReportMetric(shares.Share(analysis.ClassPeriodic), "idle-periodic-%")
	b.ReportMetric(shares.Share(analysis.ClassOther), "idle-other-%")
}

// --- Figures 3, 5, 6, 7 ---

func benchValues(b *testing.B, os, workload string, opts analysis.ValueOptions) {
	var entries []analysis.ValueEntry
	for i := 0; i < b.N; i++ {
		var res *workloads.Result
		if os == "linux" {
			res = workloads.RunLinux(workload, benchCfg())
		} else {
			res = workloads.RunVista(workload, benchCfg())
		}
		entries, _ = analysis.CommonValues(analysis.Lifecycles(res.Trace), opts)
	}
	b.ReportMetric(float64(len(entries)), "common-values")
}

func BenchmarkFigure3CommonValues(b *testing.B) {
	benchValues(b, "linux", workloads.Webserver,
		analysis.ValueOptions{JiffyBinKernel: true, MinSharePercent: 2})
}

func BenchmarkFigure4SelectCountdown(b *testing.B) {
	var chainLen int
	for i := 0; i < b.N; i++ {
		res := workloads.RunLinux(workloads.Idle, benchCfg())
		chainLen = 0
		for _, tl := range analysis.Lifecycles(res.Trace) {
			if tl.Origin != "Xorg/select" {
				continue
			}
			for _, c := range analysis.CountdownChains(tl) {
				if c.Len() > chainLen {
					chainLen = c.Len()
				}
			}
		}
	}
	b.ReportMetric(float64(chainLen), "longest-countdown")
}

func BenchmarkFigure5FilteredValues(b *testing.B) {
	benchValues(b, "linux", workloads.Idle, analysis.ValueOptions{
		JiffyBinKernel: true, MinSharePercent: 2,
		CollapseCountdowns: true, ExcludeProcesses: []string{"Xorg", "icewm"},
	})
}

func BenchmarkFigure6SyscallValues(b *testing.B) {
	benchValues(b, "linux", workloads.Skype,
		analysis.ValueOptions{UserOnly: true, MinSharePercent: 2, CollapseCountdowns: true})
}

func BenchmarkFigure7VistaValues(b *testing.B) {
	benchValues(b, "vista", workloads.Idle, analysis.ValueOptions{MinSharePercent: 2})
}

// --- Figures 8-11 ---

func benchScatter(b *testing.B, os, workload string) {
	var pts []analysis.ScatterPoint
	for i := 0; i < b.N; i++ {
		var res *workloads.Result
		if os == "linux" {
			res = workloads.RunLinux(workload, benchCfg())
		} else {
			res = workloads.RunVista(workload, benchCfg())
		}
		opts := analysis.DefaultScatterOptions()
		opts.ExcludeProcesses = []string{"Xorg", "icewm"}
		pts = analysis.Scatter(analysis.Lifecycles(res.Trace), opts)
	}
	over := 0
	for _, p := range pts {
		if p.RatioPct >= 100 {
			over += p.Count
		}
	}
	b.ReportMetric(float64(len(pts)), "scatter-bins")
	b.ReportMetric(float64(over), "uses-at-or-over-100%")
}

func BenchmarkFigure8ScatterIdle(b *testing.B)       { benchScatter(b, "linux", workloads.Idle) }
func BenchmarkFigure9ScatterSkype(b *testing.B)      { benchScatter(b, "linux", workloads.Skype) }
func BenchmarkFigure10ScatterFirefox(b *testing.B)   { benchScatter(b, "vista", workloads.Firefox) }
func BenchmarkFigure11ScatterWebserver(b *testing.B) { benchScatter(b, "linux", workloads.Webserver) }

// --- Section 3.2: instrumentation overhead ---

func BenchmarkSec32TraceOverhead(b *testing.B) {
	buf := trace.NewBuffer(1 << 20)
	rec := trace.Record{T: 1, TimerID: 42, Timeout: 1000, Op: trace.OpSet}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(1<<20-1) == 0 {
			buf.Reset()
		}
		rec.T = sim.Time(i)
		buf.Log(rec)
	}
}

// --- Section 2.2.2: layered timeouts ---

func BenchmarkSec222LayeredTimeouts(b *testing.B) {
	var static, budgeted layers.Outcome
	for i := 0; i < b.N; i++ {
		ws := layers.NewWorld(1)
		static = ws.OpenShare(layers.Static, layers.DeadHost, 0)
		wb := layers.NewWorld(1)
		budgeted = wb.OpenShare(layers.Budgeted, layers.DeadHost, 5*sim.Second)
	}
	b.ReportMetric(static.Elapsed.Seconds(), "static-error-s")
	b.ReportMetric(budgeted.Elapsed.Seconds(), "budgeted-error-s")
}

// --- Section 5.1: adaptive timeouts ---

func BenchmarkSec51AdaptiveTimeouts(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		w := layers.NewWorld(1)
		w.Warm(10)
		adaptive := w.OpenShare(layers.Adaptive, layers.DeadHost, 0)
		ws := layers.NewWorld(1)
		static := ws.OpenShare(layers.Static, layers.DeadHost, 0)
		speedup = float64(static.Elapsed) / float64(adaptive.Elapsed)
	}
	b.ReportMetric(speedup, "detection-speedup-x")
}

// --- Section 5.3: coalescing ---

func BenchmarkSec53Coalescing(b *testing.B) {
	var precise, sloppy uint64
	run := func(slack sim.Duration) uint64 {
		eng := sim.NewEngine(1)
		f := core.New(core.SimBackend{Eng: eng})
		for i := 0; i < 50; i++ {
			phase := sim.Duration(eng.Rand().Int63n(int64(sim.Second)))
			eng.After(phase, "start", func() {
				f.NewTicker("task", sim.Second, slack, func() {})
			})
		}
		eng.Run(sim.Time(benchDuration))
		return f.Stats().Wakeups
	}
	for i := 0; i < b.N; i++ {
		precise = run(0)
		sloppy = run(300 * sim.Millisecond)
	}
	b.ReportMetric(float64(precise)/float64(sloppy), "wakeup-reduction-x")
}

// BenchmarkSec53Dynticks measures the jiffies-level equivalents.
func BenchmarkSec53Dynticks(b *testing.B) {
	run := func(round, nohz bool) uint64 {
		eng := sim.NewEngine(1)
		base := jiffies.NewBase(eng, trace.NewBuffer(0), jiffies.WithNoHZ(nohz))
		for i := 0; i < 20; i++ {
			t := &jiffies.Timer{}
			var rearm func()
			rearm = func() {
				dj := jiffies.MsecsToJiffies(sim.Second)
				if round {
					dj = base.RoundJiffiesRelative(dj)
				}
				base.Mod(t, base.Jiffies()+dj)
			}
			base.Init(t, "task", 0, rearm)
			eng.At(sim.Time(eng.Rand().Int63n(int64(sim.Second))), "start", rearm)
		}
		eng.Run(sim.Time(benchDuration))
		return eng.Stats().Wakeups
	}
	var periodic, tickless uint64
	for i := 0; i < b.N; i++ {
		periodic = run(false, false)
		tickless = run(true, true)
	}
	b.ReportMetric(float64(periodic)/float64(tickless), "wakeup-reduction-x")
}

// --- Ablations: timer-queue data structures ---

// benchWheel drives one queue implementation with the webserver-like op mix
// (sets mostly canceled, short and long horizons mixed).
func benchWheel(b *testing.B, mk func() timerwheel.Queue) {
	q := mk()
	timers := make([]*timerwheel.Timer, 8192)
	for i := range timers {
		timers[i] = &timerwheel.Timer{Payload: i}
	}
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := timers[i%len(timers)]
		var horizon int
		if i%10 == 0 {
			horizon = 1_800_000 // the 7200 s keepalive
		} else {
			horizon = 64 // short protocol timers
		}
		q.Schedule(tm, now+uint64(1+i%horizon))
		if i%3 == 0 {
			q.Cancel(timers[(i*7)%len(timers)])
		}
		if i%8 == 7 {
			now++
			q.Advance(now, func(*timerwheel.Timer) {})
		}
	}
}

func BenchmarkAblationWheelSortedList(b *testing.B) {
	benchWheel(b, func() timerwheel.Queue { return timerwheel.NewSortedList() })
}

func BenchmarkAblationWheelHeap(b *testing.B) {
	benchWheel(b, func() timerwheel.Queue { return timerwheel.NewHeap() })
}

func BenchmarkAblationWheelSimple(b *testing.B) {
	benchWheel(b, func() timerwheel.Queue { return timerwheel.NewSimpleWheel(4096) })
}

func BenchmarkAblationWheelHashed(b *testing.B) {
	benchWheel(b, func() timerwheel.Queue { return timerwheel.NewHashedWheel(512) })
}

func BenchmarkAblationWheelHierarchical(b *testing.B) {
	benchWheel(b, func() timerwheel.Queue { return timerwheel.NewHierarchicalWheel() })
}

// BenchmarkAblationJiffiesBackend swaps the timer-queue structure under a
// full TCP request/response load on the jiffies subsystem: the end-to-end
// cost of the queue choice, as opposed to the micro-op costs above.
func BenchmarkAblationJiffiesBackend(b *testing.B) {
	queues := []struct {
		name string
		mk   func() timerwheel.Queue
	}{
		{"hierarchical", func() timerwheel.Queue { return timerwheel.NewHierarchicalWheel() }},
		{"hashed", func() timerwheel.Queue { return timerwheel.NewHashedWheel(256) }},
		{"heap", func() timerwheel.Queue { return timerwheel.NewHeap() }},
		{"sorted-list", func() timerwheel.Queue { return timerwheel.NewSortedList() }},
	}
	for _, q := range queues {
		q := q
		b.Run(q.name, func(b *testing.B) {
			eng := sim.NewEngine(1)
			tr := trace.NewBuffer(0)
			srvBase := jiffies.NewBase(eng, tr, jiffies.WithQueue(q.mk()))
			cliBase := jiffies.NewBase(eng, tr, jiffies.WithQueue(q.mk()))
			net := netsim.NewNetwork(eng)
			srv := netsim.NewStack(net, "server", &netsim.LinuxFacility{Base: srvBase})
			srv.KeepaliveEnabled = true
			cli := netsim.NewStack(net, "client", &netsim.LinuxFacility{Base: cliBase})
			srv.Listen(80, func(c *netsim.Conn) {
				c.OnMessage = func(c *netsim.Conn, size int, _ any) { c.Send(1000, "resp", nil) }
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := false
				cli.Connect("server", 80, func(c *netsim.Conn, err error) {
					if err != nil {
						b.Fatal(err)
					}
					c.OnMessage = func(c *netsim.Conn, size int, _ any) {
						c.Close()
						done = true
					}
					c.Send(200, "req", nil)
				})
				for !done {
					if !eng.Step() {
						b.Fatal("engine drained")
					}
				}
			}
		})
	}
}

// BenchmarkEndToEndTCPExchange measures the transport substrate alone.
func BenchmarkEndToEndTCPExchange(b *testing.B) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(0)
	net := netsim.NewNetwork(eng)
	srv := netsim.NewStack(net, "server", &netsim.LinuxFacility{Base: jiffies.NewBase(eng, tr)})
	cli := netsim.NewStack(net, "client", &netsim.LinuxFacility{Base: jiffies.NewBase(eng, tr)})
	srv.Listen(80, func(c *netsim.Conn) {
		c.OnMessage = func(c *netsim.Conn, size int, _ any) { c.Send(1000, "resp", nil) }
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		cli.Connect("server", 80, func(c *netsim.Conn, err error) {
			if err != nil {
				b.Fatal(err)
			}
			c.OnMessage = func(c *netsim.Conn, size int, _ any) {
				c.Close()
				done = true
			}
			c.Send(200, "req", nil)
		})
		for !done {
			if !eng.Step() {
				b.Fatal("engine drained mid-exchange")
			}
		}
	}
}

// --- Section 5.5: dispatcher replaces the timer interface ---

func BenchmarkSec55DispatcherVsPolling(b *testing.B) {
	var pollAccesses, dispatcherMisses, dispatcherWakeups uint64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		tr := trace.NewBuffer(1 << 20)
		lx := kernel.NewLinux(eng, tr)
		app := lx.NewProcess("softrt")
		th := app.NewThread()
		var loop func()
		loop = func() { th.Poll(20*sim.Millisecond, func(kernel.SelectResult) { loop() }) }
		loop()
		eng.Run(sim.Time(10 * sim.Second))
		pollAccesses = analysis.Summarize(tr).Accesses

		eng2 := sim.NewEngine(1)
		sched := dispatch.NewScheduler(eng2)
		task := sched.NewTask("audio", 1)
		task.Periodic(20*sim.Millisecond, 5*sim.Millisecond, 2*sim.Millisecond, func(dispatch.Context) {})
		eng2.Run(sim.Time(10 * sim.Second))
		dispatcherMisses = sched.Stats().Misses
		dispatcherWakeups = sched.Stats().Wakeups
	}
	b.ReportMetric(float64(pollAccesses), "poll-timer-accesses")
	b.ReportMetric(float64(dispatcherMisses), "dispatcher-misses")
	b.ReportMetric(float64(dispatcherWakeups), "dispatcher-wakeups")
}

// --- Related work: soft timers ---

func BenchmarkSoftTimersVsPerTimerInterrupts(b *testing.B) {
	var hard, overflow uint64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		var rearm func()
		n := uint64(0)
		rearm = func() {
			eng.After(50*sim.Microsecond, "hw", func() {
				n++
				if eng.Now() < sim.Time(90*sim.Millisecond) {
					rearm()
				}
			})
		}
		rearm()
		eng.Run(sim.Time(100 * sim.Millisecond))
		hard = n

		eng2 := sim.NewEngine(1)
		f := softtimer.New(eng2, 10*sim.Millisecond)
		var trig func()
		trig = func() {
			f.TriggerState()
			if eng2.Now() < sim.Time(100*sim.Millisecond) {
				eng2.After(30*sim.Microsecond, "t", trig)
			}
		}
		eng2.After(0, "t", trig)
		var arm func()
		arm = func() {
			f.Schedule(50*sim.Microsecond, func() {
				if eng2.Now() < sim.Time(90*sim.Millisecond) {
					arm()
				}
			})
		}
		arm()
		eng2.Run(sim.Time(100 * sim.Millisecond))
		overflow = f.Stats().OverflowInterrupts
	}
	b.ReportMetric(float64(hard), "per-timer-interrupts")
	b.ReportMetric(float64(overflow), "soft-overflow-interrupts")
}
