// Package version renders the build's identity — module version plus VCS
// stamp — from the info the Go toolchain embeds in every binary. All four
// cmds print it under -version, `timerstat -serve` logs it at startup, and
// /api/metrics reports it so a dashboard can tell which build produced a
// report.
package version

import (
	"runtime/debug"
	"strings"
)

// String returns a one-line build identity like
//
//	timerstudy devel rev 1a2b3c4d5e6f (dirty) 2026-08-08T10:00:00Z go1.24.1
//
// degrading gracefully when pieces are missing (test binaries, stripped
// builds).
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown (no build info)"
	}
	var parts []string
	if bi.Main.Path != "" {
		parts = append(parts, bi.Main.Path)
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	parts = append(parts, v)
	var rev, at string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		parts = append(parts, "rev "+rev)
		if dirty {
			parts = append(parts, "(dirty)")
		}
	}
	if at != "" {
		parts = append(parts, at)
	}
	if bi.GoVersion != "" {
		parts = append(parts, bi.GoVersion)
	}
	return strings.Join(parts, " ")
}
