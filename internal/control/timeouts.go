package control

// The control plane's bounds registry (magictimeout discipline: every
// fixed constant lives here with its provenance). The plane introduces no
// fixed virtual-time durations of its own — command timing is expressed in
// window boundaries, and the durations commands carry (spike length,
// coalescing window) are caller inputs, not constants.
const (
	// defaultMaxQueue bounds pending commands between barriers; Enqueue
	// rejects beyond it. Sized like the game-loop input queues this
	// façade is modeled on: far above any interactive rate, small enough
	// that a runaway feeder fails fast instead of ballooning memory.
	defaultMaxQueue = 256
	// defaultKeyframeEvery is the automatic keyframe cadence in fleet
	// windows. With millisecond-scale lookahead windows this lands a
	// checkpoint every few hundred virtual milliseconds — frequent
	// enough to bound replay-on-resume, rare enough that keyframe
	// hashing stays off the hot path.
	defaultKeyframeEvery = 256
	// maxPatchBuffer bounds the patch feed between drains; the oldest
	// entries are evicted (and counted) on overflow.
	maxPatchBuffer = 1024
)
