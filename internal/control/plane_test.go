package control

import (
	"runtime"
	"strings"
	"testing"

	"timerstudy/internal/fleet"
	"timerstudy/internal/sim"
)

// testSpec mirrors the fleet package's test topology: a small but fully
// wired datacenter with cross-host traffic, retransmits and daemons.
func testSpec() Spec {
	return Spec{
		Webservers: 2,
		Desktops:   6,
		Seed:       42,
		ThinkMean:  20 * sim.Millisecond,
		End:        2 * sim.Duration(sim.Second),
	}
}

func mustPlane(t *testing.T, spec Spec, opts ...Option) *Plane {
	t.Helper()
	p, err := NewPlane(spec, opts...)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	return p
}

func hostIndex(t *testing.T, p *Plane, name string) int32 {
	t.Helper()
	for i, h := range p.Fleet().Hosts() {
		if h.Name == name {
			return int32(i)
		}
	}
	t.Fatalf("no host %q", name)
	return -1
}

func TestNewPlaneRejectsBadSpec(t *testing.T) {
	cases := []Spec{
		{Webservers: 0, Desktops: 0, End: sim.Duration(sim.Second)},
		{Webservers: -1, Desktops: 2, End: sim.Duration(sim.Second)},
		{Webservers: 1, Desktops: 1, End: 0},
		{Webservers: 1, Desktops: 1, End: sim.Duration(sim.Second), Queue: "splay-tree"},
	}
	for i, s := range cases {
		if _, err := NewPlane(s); err == nil {
			t.Fatalf("case %d: bad spec accepted: %+v", i, s)
		}
	}
}

// TestEnqueueValidation: the façade contract — malformed commands are
// rejected immediately with a reason; well-formed ones are stamped.
func TestEnqueueValidation(t *testing.T) {
	p := mustPlane(t, testSpec())
	defer p.Abort()
	bad := []struct {
		c      Command
		reason string
	}{
		{Command{Kind: 0}, "unknown command kind"},
		{Command{Kind: kindEnd}, "unknown command kind"},
		{Command{Kind: KindKill, Host: 99}, "out of range"},
		{Command{Kind: KindKill, Host: -2}, "out of range"},
		{Command{Kind: KindKill, Host: -1}, "needs a specific host"},
		{Command{Kind: KindRestart, Host: -1}, "needs a specific host"},
		{Command{Kind: KindSpike, Host: -1, Arg: 0, Dur: 1}, "factor must be >= 1"},
		{Command{Kind: KindSpike, Host: -1, Arg: 2, Dur: 0}, "positive duration"},
		{Command{Kind: KindPolicy, Host: -1, Arg: 7}, "unknown timeout policy"},
		{Command{Kind: KindCoalesce, Host: -1, Arg: -1}, "must be >= 0"},
		{Command{Kind: KindQueue, Host: 0, Arg: 1}, "fleet-wide"},
		{Command{Kind: KindQueue, Host: -1, Arg: 42}, "unknown queue kind"},
	}
	for i, tc := range bad {
		ok, reason := p.Enqueue(tc.c)
		if ok {
			t.Fatalf("case %d: accepted %+v", i, tc.c)
		}
		if !strings.Contains(reason, tc.reason) {
			t.Fatalf("case %d: reason %q does not mention %q", i, reason, tc.reason)
		}
	}
	if n := len(p.Pending()); n != 0 {
		t.Fatalf("rejected commands staged: %d pending", n)
	}

	ok, reason := p.Enqueue(Command{Kind: KindSpike, Host: -1, Arg: 2, Dur: sim.Duration(sim.Second)})
	if !ok {
		t.Fatalf("valid spike rejected: %s", reason)
	}
	pend := p.Pending()
	if len(pend) != 1 || pend[0].Seq != 1 {
		t.Fatalf("accepted command not stamped: %+v", pend)
	}

	// Past windows are rejected; window 0 stamps to the current boundary.
	for i := 0; i < 5; i++ {
		if !p.Advance() {
			t.Fatal("run ended inside warmup")
		}
	}
	if ok, reason := p.Enqueue(Command{Kind: KindKill, Host: 0, Window: 2}); ok || !strings.Contains(reason, "already passed") {
		t.Fatalf("past window: ok=%v reason=%q", ok, reason)
	}
	ok, _ = p.Enqueue(Command{Kind: KindKill, Host: 0})
	if !ok {
		t.Fatal("current-window kill rejected")
	}
	pend = p.Pending()
	if got := pend[len(pend)-1].Window; got != uint64(p.Windows()) {
		t.Fatalf("window 0 stamped to %d, current is %d", got, p.Windows())
	}
}

func TestEnqueueQueueBound(t *testing.T) {
	p := mustPlane(t, testSpec(), WithMaxQueue(2))
	defer p.Abort()
	c := Command{Kind: KindCoalesce, Host: -1, Arg: 1, Window: 1000}
	for i := 0; i < 2; i++ {
		if ok, reason := p.Enqueue(c); !ok {
			t.Fatalf("enqueue %d: %s", i, reason)
		}
	}
	if ok, reason := p.Enqueue(c); ok || !strings.Contains(reason, "queue full") {
		t.Fatalf("third enqueue: ok=%v reason=%q", ok, reason)
	}
}

// script stages the canonical steering sequence used across the
// determinism tests: spike, kill, policy switch, coalesce, restart.
func script(t *testing.T, p *Plane) {
	t.Helper()
	ws := hostIndex(t, p, "ws-0000")
	cmds := []Command{
		{Kind: KindSpike, Host: -1, Arg: 4, Dur: 500 * sim.Duration(sim.Millisecond), Window: 10},
		{Kind: KindKill, Host: ws, Window: 20},
		{Kind: KindPolicy, Host: -1, Arg: int64(fleet.PolicyAdaptive), Window: 25},
		{Kind: KindCoalesce, Host: -1, Arg: int64(100 * sim.Millisecond), Window: 30},
		{Kind: KindRestart, Host: ws, Window: 60},
	}
	for i, c := range cmds {
		if ok, reason := p.Enqueue(c); !ok {
			t.Fatalf("script command %d rejected: %s", i, reason)
		}
	}
}

// TestReplayDeterminism is satellite 3: the same (spec, command log)
// reproduces the interactive run bit for bit at any worker count and on
// either event-queue implementation.
func TestReplayDeterminism(t *testing.T) {
	p := mustPlane(t, testSpec(), WithWorkers(1))
	script(t, p)
	p.Finish()
	want := p.Fleet().Digest()
	log := p.CommandLog()
	if len(log) != 5 {
		t.Fatalf("script only applied %d of 5 commands", len(log))
	}

	for _, queue := range []string{"heap", "wheel"} {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			spec := testSpec()
			spec.Queue = queue
			rp, err := Replay(spec, log, WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s/%d: %v", queue, workers, err)
			}
			rp.Finish()
			if got := rp.Fleet().Digest(); got != want {
				t.Fatalf("%s/%d: replay digest %016x != interactive %016x", queue, workers, got, want)
			}
			rlog := rp.CommandLog()
			if len(rlog) != len(log) {
				t.Fatalf("%s/%d: replay applied %d commands, want %d", queue, workers, len(rlog), len(log))
			}
			for i := range log {
				if rlog[i] != log[i] {
					t.Fatalf("%s/%d: replay log diverged at %d: %+v != %+v", queue, workers, i, rlog[i], log[i])
				}
			}
		}
	}

	clean := mustPlane(t, testSpec())
	clean.Finish()
	if clean.Fleet().Digest() == want {
		t.Fatal("steering script did not change the run")
	}
}

// TestPatchesAndSnapshot: the patch feed reports what each command did at
// its boundary, and snapshots summarize the plane truthfully.
func TestPatchesAndSnapshot(t *testing.T) {
	p := mustPlane(t, testSpec())
	defer p.Abort()
	ws := hostIndex(t, p, "ws-0000")

	s0 := p.Snapshot()
	if s0.Hosts != 8 || s0.HostsDown != 0 || s0.Done || s0.Window != 0 {
		t.Fatalf("fresh snapshot: %+v", s0)
	}

	enq := func(c Command) {
		t.Helper()
		if ok, reason := p.Enqueue(c); !ok {
			t.Fatalf("enqueue %+v: %s", c, reason)
		}
	}
	enq(Command{Kind: KindKill, Host: ws})
	enq(Command{Kind: KindKill, Host: ws})     // second kill: drained, not applied
	enq(Command{Kind: KindRestart, Host: ws + 1}) // not down
	enq(Command{Kind: KindQueue, Host: -1, Arg: int64(sim.QueueWheel)})
	if !p.Advance() {
		t.Fatal("run ended on first window")
	}

	patches := p.DrainPatches()
	if len(patches) != 4 {
		t.Fatalf("patch count %d, want 4: %+v", len(patches), patches)
	}
	if !patches[0].Applied || patches[0].Kind != "kill" || patches[0].Host != "ws-0000" {
		t.Fatalf("kill patch: %+v", patches[0])
	}
	if patches[1].Applied || patches[1].Detail != "already down" {
		t.Fatalf("double-kill patch: %+v", patches[1])
	}
	if patches[2].Applied || patches[2].Detail != "not down" {
		t.Fatalf("restart-up patch: %+v", patches[2])
	}
	if !patches[3].Applied || patches[3].Detail != "staged until resume" || patches[3].Host != "*" {
		t.Fatalf("queue patch: %+v", patches[3])
	}
	if len(p.DrainPatches()) != 0 {
		t.Fatal("drain did not empty the feed")
	}

	s1 := p.Snapshot()
	if s1.HostsDown != 1 {
		t.Fatalf("snapshot misses the down host: %+v", s1)
	}
	if s1.Queue != "wheel" {
		t.Fatalf("staged queue swap not visible in snapshot: %+v", s1)
	}
	if s1.LogLen != 4 || s1.QueueDepth != 0 {
		t.Fatalf("snapshot log/queue: %+v", s1)
	}
	if s1.Window == 0 || s1.Floor <= 0 {
		t.Fatalf("snapshot did not advance: %+v", s1)
	}
}

// TestPatchBufferBounded: the feed evicts its oldest entries rather than
// growing without bound, and counts what it dropped.
func TestPatchBufferBounded(t *testing.T) {
	p := mustPlane(t, testSpec(), WithMaxQueue(maxPatchBuffer+10))
	defer p.Abort()
	for i := 0; i < maxPatchBuffer+5; i++ {
		if ok, reason := p.Enqueue(Command{Kind: KindCoalesce, Host: -1, Arg: 1}); !ok {
			t.Fatalf("enqueue %d: %s", i, reason)
		}
	}
	if !p.Advance() {
		t.Fatal("run ended on first window")
	}
	patches := p.DrainPatches()
	if len(patches) != maxPatchBuffer {
		t.Fatalf("feed holds %d, want cap %d", len(patches), maxPatchBuffer)
	}
	if got := p.Snapshot().Dropped; got != 5 {
		t.Fatalf("dropped count %d, want 5", got)
	}
	// The survivors are the newest entries.
	if patches[0].Seq != 6 {
		t.Fatalf("eviction kept the wrong end: first surviving seq %d", patches[0].Seq)
	}
}

// TestEnqueueAfterDone: a finished plane accepts nothing.
func TestEnqueueAfterDone(t *testing.T) {
	spec := testSpec()
	spec.End = 100 * sim.Duration(sim.Millisecond)
	p := mustPlane(t, spec)
	p.Finish()
	if !p.Done() {
		t.Fatal("plane not done after Finish")
	}
	if ok, reason := p.Enqueue(Command{Kind: KindKill, Host: 0}); ok || !strings.Contains(reason, "complete") {
		t.Fatalf("done plane accepted a command: ok=%v reason=%q", ok, reason)
	}
}
