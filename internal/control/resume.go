package control

import (
	"encoding/json"
	"fmt"

	"timerstudy/internal/trace"
)

// Checkpoint/resume is replay-based (see sim.EngineState's docs): a
// checkpoint does not serialize engine heaps — pending events are closures
// — it serializes the run's identity (spec), its input history (command
// log) and a per-host verification keyframe. Resume rebuilds the fleet
// from the spec, replays the command log window by window to the
// checkpoint boundary, and then proves the reconstruction: every host's
// clock, scheduling sequence, pending-set hash, RNG position, trace digest
// and counters must match the keyframe exactly. A resumed run that passes
// verification is bit-identical to the run that wrote the checkpoint, so
// continuing it produces the same final digest as never having stopped.

// Checkpoint captures the plane at the current barrier as a serializable
// checkpoint (write it with trace.WriteCheckpoint). The command blob holds
// the applied log plus the still-pending queue: commands staged for a
// window beyond the checkpoint survive the round trip and fire at their
// stamped boundary in the resumed run.
func (p *Plane) Checkpoint(label string) *trace.Checkpoint {
	cfg, err := json.Marshal(p.spec)
	if err != nil {
		// Spec is a plain struct of scalars; Marshal cannot fail on it.
		panic("control: marshal spec: " + err.Error())
	}
	history := make([]Command, 0, len(p.log)+len(p.queue))
	history = append(history, p.log...)
	history = append(history, p.queue...)
	return &trace.Checkpoint{
		Label:    label,
		Seed:     p.spec.Seed,
		Window:   uint64(p.session.Windows()),
		VTime:    int64(p.session.Floor()),
		Config:   cfg,
		Commands: EncodeCommands(history),
		Hosts:    p.fleet.Keyframe(),
	}
}

// Replay builds a plane that will re-apply a recorded command log at the
// original boundaries: the log is preloaded as the pending queue with its
// stamps intact, so advancing the plane reproduces the recorded run bit
// for bit. Commands enqueued afterwards continue the Seq sequence.
func Replay(spec Spec, log []Command, opts ...Option) (*Plane, error) {
	p, err := NewPlane(spec, opts...)
	if err != nil {
		return nil, err
	}
	p.queue = append(p.queue, log...)
	for _, c := range log {
		if c.Seq > p.seq {
			p.seq = c.Seq
		}
	}
	return p, nil
}

// Resume rebuilds a plane from a checkpoint: fast-forward to the
// checkpoint window replaying the command log, then verify every host
// against the keyframe. Options apply to the rebuilt plane (worker count
// may differ from the original run — determinism makes that safe).
func Resume(cp *trace.Checkpoint, opts ...Option) (*Plane, error) {
	var spec Spec
	if err := json.Unmarshal(cp.Config, &spec); err != nil {
		return nil, fmt.Errorf("control: decoding checkpoint config: %w", err)
	}
	if spec.Seed != cp.Seed {
		return nil, fmt.Errorf("control: checkpoint seed %d disagrees with config seed %d", cp.Seed, spec.Seed)
	}
	log, err := DecodeCommands(cp.Commands)
	if err != nil {
		return nil, err
	}
	p, err := Replay(spec, log, opts...)
	if err != nil {
		return nil, err
	}
	for uint64(p.session.Windows()) < cp.Window {
		if p.Advance() {
			continue
		}
		// The run can legitimately end exactly at the checkpoint window;
		// ending short of it means the config does not describe the run.
		if uint64(p.session.Windows()) < cp.Window {
			p.Abort()
			return nil, fmt.Errorf("control: run ended at window %d, before checkpoint window %d (config mismatch?)",
				p.session.Windows(), cp.Window)
		}
	}
	if got := int64(p.session.Floor()); got != cp.VTime {
		p.Abort()
		return nil, fmt.Errorf("control: resume reached window %d at vtime %d, checkpoint says %d",
			cp.Window, got, cp.VTime)
	}
	if err := verifyKeyframe(cp.Hosts, p.fleet.Keyframe()); err != nil {
		p.Abort()
		return nil, err
	}
	// Patches emitted during replay describe history the checkpoint's
	// consumers already saw; drop them so the feed starts at the resume.
	p.patches, p.dropped = nil, 0
	return p, nil
}

// verifyKeyframe compares the checkpoint keyframe against the rebuilt
// fleet, reporting the first divergent host and field group.
func verifyKeyframe(want, got []trace.CheckpointHost) error {
	if len(want) != len(got) {
		return fmt.Errorf("control: resume verification failed: checkpoint has %d hosts, rebuild has %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w == g {
			continue
		}
		switch {
		case w.Name != g.Name:
			return fmt.Errorf("control: resume verification failed at index %d: host %q became %q", i, w.Name, g.Name)
		case w.Clock != g.Clock:
			return fmt.Errorf("control: resume verification failed at %s: clock %d != %d", w.Name, g.Clock, w.Clock)
		case w.Seq != g.Seq:
			return fmt.Errorf("control: resume verification failed at %s: seq %d != %d", w.Name, g.Seq, w.Seq)
		case w.Pending != g.Pending || w.EventsHash != g.EventsHash:
			return fmt.Errorf("control: resume verification failed at %s: pending set diverged (%d events, hash %016x; checkpoint %d, %016x)",
				w.Name, g.Pending, g.EventsHash, w.Pending, w.EventsHash)
		case w.RandDraws != g.RandDraws:
			return fmt.Errorf("control: resume verification failed at %s: rng draws %d != %d", w.Name, g.RandDraws, w.RandDraws)
		case w.Digest != g.Digest:
			return fmt.Errorf("control: resume verification failed at %s: trace digest %016x != %016x", w.Name, g.Digest, w.Digest)
		case w.Down != g.Down:
			return fmt.Errorf("control: resume verification failed at %s: down %v != %v", w.Name, g.Down, w.Down)
		default:
			return fmt.Errorf("control: resume verification failed at %s: counters diverged", w.Name)
		}
	}
	return nil
}
