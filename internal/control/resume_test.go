package control

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// runToWindow advances the plane until the given window boundary.
func runToWindow(t *testing.T, p *Plane, w int) {
	t.Helper()
	for p.Windows() < w {
		if !p.Advance() {
			t.Fatalf("run ended at window %d, before %d", p.Windows(), w)
		}
	}
}

// checkpointAt drives the steering script to the given window and returns
// the checkpoint plus the uninterrupted run's final digest.
func checkpointAt(t *testing.T, w int) (*trace.Checkpoint, uint64) {
	t.Helper()
	p := mustPlane(t, testSpec(), WithWorkers(1))
	script(t, p)
	runToWindow(t, p, w)
	cp := p.Checkpoint("test")
	p.Finish()
	return cp, p.Fleet().Digest()
}

// TestCheckpointResume is the tentpole's acceptance gate: stop a steered
// run mid-flight, round-trip the checkpoint through its wire format,
// resume at a different worker count, and land on the exact digest the
// uninterrupted run produced.
func TestCheckpointResume(t *testing.T) {
	cp, want := checkpointAt(t, 40)
	if cp.Window != 40 {
		t.Fatalf("checkpoint window %d, want 40", cp.Window)
	}
	if len(cp.Hosts) != 8 {
		t.Fatalf("keyframe hosts %d, want 8", len(cp.Hosts))
	}

	var buf bytes.Buffer
	if err := trace.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatalf("write: %v", err)
	}
	cp2, err := trace.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		r, err := Resume(cp2, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if got := r.Windows(); got != 40 {
			t.Fatalf("workers=%d: resumed at window %d", workers, got)
		}
		if pts := r.DrainPatches(); len(pts) != 0 {
			t.Fatalf("workers=%d: replay history leaked %d patches", workers, len(pts))
		}
		r.Finish()
		if got := r.Fleet().Digest(); got != want {
			t.Fatalf("workers=%d: resumed digest %016x != uninterrupted %016x", workers, got, want)
		}
	}
}

// TestResumeBeforePendingCommand: a checkpoint taken before a staged
// command's boundary carries the command across the gap — the resumed run
// still applies it (here the window-60 restart, taken at window 30).
func TestResumeBeforePendingCommand(t *testing.T) {
	cp, want := checkpointAt(t, 30)
	r, err := Resume(cp, WithWorkers(2))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if n := len(r.Pending()); n == 0 {
		t.Fatal("pending restart lost across the checkpoint")
	}
	r.Finish()
	if got := r.Fleet().Digest(); got != want {
		t.Fatalf("resumed digest %016x != uninterrupted %016x", got, want)
	}
	// The restart applied: no host is down at the end.
	if down := r.Snapshot().HostsDown; down != 0 {
		t.Fatalf("%d hosts still down at end of resumed run", down)
	}
}

// TestResumeContinuesSteering: commands enqueued after a resume continue
// the Seq sequence and steer the continued run.
func TestResumeContinuesSteering(t *testing.T) {
	cp, want := checkpointAt(t, 40)
	r, err := Resume(cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	maxSeq := uint64(0)
	for _, c := range r.CommandLog() {
		if c.Seq > maxSeq {
			maxSeq = c.Seq
		}
	}
	for _, c := range r.Pending() {
		if c.Seq > maxSeq {
			maxSeq = c.Seq
		}
	}
	ok, reason := r.Enqueue(Command{Kind: KindCoalesce, Host: -1, Arg: int64(50 * sim.Millisecond)})
	if !ok {
		t.Fatalf("post-resume enqueue: %s", reason)
	}
	pend := r.Pending()
	if got := pend[len(pend)-1].Seq; got != maxSeq+1 {
		t.Fatalf("post-resume seq %d, want %d", got, maxSeq+1)
	}
	r.Finish()
	if got := r.Fleet().Digest(); got == want {
		t.Fatal("post-resume steering did not change the run")
	}
}

// TestQueueSwapAcrossResume: a KindQueue command stages the swap; resume
// rebuilds on the new implementation; the digest does not move (traces are
// byte-identical across queue kinds — the pinned PR-3 invariant).
func TestQueueSwapAcrossResume(t *testing.T) {
	p := mustPlane(t, testSpec())
	script(t, p)
	if ok, reason := p.Enqueue(Command{Kind: KindQueue, Host: -1, Arg: int64(sim.QueueWheel), Window: 35}); !ok {
		t.Fatalf("queue swap rejected: %s", reason)
	}
	runToWindow(t, p, 40)
	if got := p.Spec().Queue; got != "wheel" {
		t.Fatalf("swap not staged: spec queue %q", got)
	}
	cp := p.Checkpoint("swap")
	p.Finish()
	want := p.Fleet().Digest()

	r, err := Resume(cp)
	if err != nil {
		t.Fatalf("resume on wheel: %v", err)
	}
	if got := r.Spec().Queue; got != "wheel" {
		t.Fatalf("resumed spec queue %q, want wheel", got)
	}
	r.Finish()
	if got := r.Fleet().Digest(); got != want {
		t.Fatalf("queue swap moved the digest: %016x != %016x", got, want)
	}
}

// TestResumeVerificationFailure: a tampered keyframe is caught, and the
// error names the divergent host and field group.
func TestResumeVerificationFailure(t *testing.T) {
	tamper := []struct {
		name string
		mut  func(cp *trace.Checkpoint)
		want string
	}{
		{"events hash", func(cp *trace.Checkpoint) { cp.Hosts[2].EventsHash ^= 1 }, "pending set diverged"},
		{"clock", func(cp *trace.Checkpoint) { cp.Hosts[0].Clock++ }, "clock"},
		{"rng", func(cp *trace.Checkpoint) { cp.Hosts[1].RandDraws += 7 }, "rng draws"},
		{"digest", func(cp *trace.Checkpoint) { cp.Hosts[3].Digest ^= 0xFF }, "trace digest"},
		{"down", func(cp *trace.Checkpoint) { cp.Hosts[4].Down = !cp.Hosts[4].Down }, "down"},
		{"counters", func(cp *trace.Checkpoint) { cp.Hosts[5].Counters.Total++ }, "counters diverged"},
		{"host count", func(cp *trace.Checkpoint) { cp.Hosts = cp.Hosts[:7] }, "8"},
		{"vtime", func(cp *trace.Checkpoint) { cp.VTime++ }, "vtime"},
		{"seed", func(cp *trace.Checkpoint) { cp.Seed++ }, "seed"},
	}
	for _, tc := range tamper {
		cp, _ := checkpointAt(t, 40)
		tc.mut(cp)
		r, err := Resume(cp)
		if err == nil {
			r.Abort()
			t.Fatalf("%s: tampered checkpoint resumed", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestResumePastEnd: a checkpoint claiming a window beyond the run's end
// is a config mismatch, not a hang or a panic.
func TestResumePastEnd(t *testing.T) {
	cp, _ := checkpointAt(t, 40)
	cp.Window = 1 << 40
	if _, err := Resume(cp); err == nil || !strings.Contains(err.Error(), "before checkpoint window") {
		t.Fatalf("absurd checkpoint window: %v", err)
	}
}

// TestAutoKeyframe: the cadence keyframe is a real checkpoint — resuming
// from it reproduces the uninterrupted digest.
func TestAutoKeyframe(t *testing.T) {
	p := mustPlane(t, testSpec(), WithKeyframeEvery(32))
	script(t, p)
	runToWindow(t, p, 70)
	cp := p.Keyframe()
	if cp == nil {
		t.Fatal("no automatic keyframe after 70 windows at cadence 32")
	}
	if cp.Window%32 != 0 || cp.Window == 0 {
		t.Fatalf("keyframe at window %d, want a multiple of 32", cp.Window)
	}
	p.Finish()
	want := p.Fleet().Digest()

	r, err := Resume(cp)
	if err != nil {
		t.Fatalf("resume from auto keyframe: %v", err)
	}
	r.Finish()
	if got := r.Fleet().Digest(); got != want {
		t.Fatalf("auto-keyframe resume digest %016x != %016x", got, want)
	}
}
