package control

import (
	"fmt"

	"timerstudy/internal/fleet"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Spec is the serializable identity of a controlled run: everything needed
// to rebuild the fleet from scratch. It is the checkpoint's Config blob
// (JSON); fields deliberately mirror fleet.Topology minus the
// non-serializable parts (sink constructors), plus the run length.
type Spec struct {
	Webservers int          `json:"webservers"`
	Desktops   int          `json:"desktops"`
	Seed       int64        `json:"seed"`
	Queue      string       `json:"queue"` // "heap" or "wheel"; "" = heap
	Threads    int          `json:"threads,omitempty"`
	ThinkMean  sim.Duration `json:"think_mean,omitempty"`
	ServiceMean sim.Duration `json:"service_mean,omitempty"`
	// End is the run length in virtual time.
	End sim.Duration `json:"end"`
	// Link overrides the fabric default path when any field is non-zero.
	LinkLatency sim.Duration `json:"link_latency,omitempty"`
	LinkJitter  sim.Duration `json:"link_jitter,omitempty"`
	LinkLoss    float64      `json:"link_loss,omitempty"`
}

// topology resolves the spec into a buildable fleet topology.
func (s Spec) topology(newSink func(string) trace.Sink) (fleet.Topology, error) {
	if s.Webservers < 0 || s.Desktops < 0 || s.Webservers+s.Desktops == 0 {
		return fleet.Topology{}, fmt.Errorf("control: spec needs at least one host")
	}
	if s.End <= 0 {
		return fleet.Topology{}, fmt.Errorf("control: spec needs a positive end time")
	}
	qk, err := sim.ParseQueueKind(s.Queue)
	if err != nil {
		return fleet.Topology{}, err
	}
	top := fleet.Topology{
		Webservers:  s.Webservers,
		Desktops:    s.Desktops,
		Seed:        s.Seed,
		Queue:       qk,
		Threads:     s.Threads,
		ThinkMean:   s.ThinkMean,
		ServiceMean: s.ServiceMean,
		NewSink:     newSink,
	}
	if s.LinkLatency > 0 || s.LinkJitter > 0 || s.LinkLoss > 0 {
		top.Link = &netsim.PathConfig{
			Latency: s.LinkLatency,
			Jitter:  s.LinkJitter,
			Loss:    s.LinkLoss,
		}
	}
	return top, nil
}

// Patch is one entry of the plane's outward event feed: what happened to a
// command when its boundary came up. The feed is bounded; DrainPatches
// empties it.
type Patch struct {
	// Window is the boundary the command applied at.
	Window uint64 `json:"window"`
	// Seq is the command's accept sequence.
	Seq uint64 `json:"seq"`
	// Kind names the command kind.
	Kind string `json:"kind"`
	// Host is the target host name, or "*" for fleet-wide.
	Host string `json:"host"`
	// Applied reports whether any host accepted the command (a kill of an
	// already-down host, for example, is drained but not applied).
	Applied bool `json:"applied"`
	// Detail carries kind-specific notes ("staged until resume").
	Detail string `json:"detail,omitempty"`
}

// Snapshot is a cheap point-in-time summary of the plane, safe to take at
// any barrier.
type Snapshot struct {
	Window     uint64       `json:"window"`
	Floor      sim.Time     `json:"floor"`
	Done       bool         `json:"done"`
	Hosts      int          `json:"hosts"`
	HostsDown  int          `json:"hosts_down"`
	QueueDepth int          `json:"queue_depth"`
	LogLen     int          `json:"log_len"`
	Dropped    uint64       `json:"patches_dropped"`
	Digest     uint64       `json:"digest"`
	Queue      string       `json:"queue"`
	End        sim.Duration `json:"end"`
}

// Option configures a Plane.
type Option func(*Plane)

// WithWorkers sets the session worker count (default 1). Worker count
// never changes results — only wall-clock speed.
func WithWorkers(n int) Option { return func(p *Plane) { p.workers = n } }

// WithMaxQueue bounds the pending command queue (default
// defaultMaxQueue); Enqueue rejects beyond it.
func WithMaxQueue(n int) Option { return func(p *Plane) { p.maxQueue = n } }

// WithKeyframeEvery sets the automatic keyframe cadence in windows
// (default defaultKeyframeEvery; 0 disables). At each cadence boundary
// the plane captures a checkpoint, retrievable via Keyframe.
func WithKeyframeEvery(n int) Option { return func(p *Plane) { p.keyframeEvery = n } }

// WithSink overrides the per-host sink constructor (default: HashSink,
// digest-only — what checkpoint verification needs).
func WithSink(f func(string) trace.Sink) Option { return func(p *Plane) { p.newSink = f } }

// Plane is the control plane over one fleet session. All methods are
// single-goroutine: the plane is driven by whoever owns the simulation
// loop, and concurrent callers (a serve command hub) must hand commands to
// that loop, not call Enqueue from another goroutine.
type Plane struct {
	spec    Spec
	workers int
	maxQueue int
	keyframeEvery int
	newSink func(string) trace.Sink

	fleet   *fleet.Fleet
	session *fleet.Session

	queue   []Command // accepted, not yet due; Seq order
	log     []Command // drained commands, the replay record
	patches []Patch
	dropped uint64
	seq     uint64
	done    bool

	keyframe *trace.Checkpoint // latest automatic keyframe (WithKeyframeEvery)
}

// NewPlane builds the fleet from the spec and opens its session.
func NewPlane(spec Spec, opts ...Option) (*Plane, error) {
	p := &Plane{
		spec:          spec,
		workers:       1,
		maxQueue:      defaultMaxQueue,
		keyframeEvery: defaultKeyframeEvery,
		newSink:       func(string) trace.Sink { return trace.NewHashSink() },
	}
	for _, o := range opts {
		o(p)
	}
	top, err := spec.topology(p.newSink)
	if err != nil {
		return nil, err
	}
	p.fleet = top.Build()
	p.session = p.fleet.StartSession(sim.Time(spec.End), p.workers)
	return p, nil
}

// Enqueue validates and stages a command, returning (false, reason) on
// rejection — the façade contract: the caller (an HTTP handler, a flag
// parser) learns immediately whether the command is well-formed, while
// application waits for the stamped boundary.
func (p *Plane) Enqueue(c Command) (bool, string) {
	if p.done {
		return false, "run complete"
	}
	if c.Kind < KindSpike || c.Kind >= kindEnd {
		return false, fmt.Sprintf("unknown command kind %d", c.Kind)
	}
	if c.Host < -1 || int(c.Host) >= len(p.fleet.Hosts()) {
		return false, fmt.Sprintf("host index %d out of range (fleet has %d)", c.Host, len(p.fleet.Hosts()))
	}
	switch c.Kind {
	case KindSpike:
		if c.Arg < 1 {
			return false, "spike factor must be >= 1"
		}
		if c.Dur <= 0 {
			return false, "spike needs a positive duration"
		}
	case KindKill, KindRestart:
		if c.Host < 0 {
			return false, c.Kind.String() + " needs a specific host"
		}
	case KindPolicy:
		if c.Arg != int64(fleet.PolicyFixed) && c.Arg != int64(fleet.PolicyAdaptive) {
			return false, fmt.Sprintf("unknown timeout policy %d", c.Arg)
		}
	case KindCoalesce:
		if c.Arg < 0 {
			return false, "coalescing window must be >= 0"
		}
	case KindQueue:
		if c.Host != -1 {
			return false, "queue swap is fleet-wide (host must be -1)"
		}
		if _, err := sim.ParseQueueKind(sim.QueueKind(c.Arg).String()); err != nil || c.Arg < 0 {
			return false, fmt.Sprintf("unknown queue kind %d", c.Arg)
		}
	}
	if len(p.queue) >= p.maxQueue {
		return false, fmt.Sprintf("command queue full (%d pending)", len(p.queue))
	}
	now := uint64(p.session.Windows())
	if c.Window == 0 {
		c.Window = now
	} else if c.Window < now {
		return false, fmt.Sprintf("window %d already passed (current %d)", c.Window, now)
	}
	p.seq++
	c.Seq = p.seq
	p.queue = append(p.queue, c)
	return true, ""
}

// Pending returns a copy of the staged, not-yet-applied commands.
func (p *Plane) Pending() []Command {
	out := make([]Command, len(p.queue))
	copy(out, p.queue)
	return out
}

// Advance applies every due command at the current barrier, then steps the
// session one window. Returns false when the run is complete.
func (p *Plane) Advance() bool {
	if p.done {
		return false
	}
	p.applyDue()
	if !p.session.Step() {
		p.done = true
	}
	if n := p.keyframeEvery; n > 0 && p.session.Windows() > 0 && p.session.Windows()%n == 0 {
		p.keyframe = p.Checkpoint("auto-keyframe")
	}
	return !p.done
}

// applyDue drains commands whose window has arrived, in Seq order.
func (p *Plane) applyDue() {
	w := uint64(p.session.Windows())
	rest := p.queue[:0]
	for _, c := range p.queue {
		if c.Window > w {
			rest = append(rest, c)
			continue
		}
		p.apply(c)
	}
	for i := len(rest); i < len(p.queue); i++ {
		p.queue[i] = Command{}
	}
	p.queue = rest
}

// apply executes one command at the barrier and records it in the log and
// the patch feed. Application is deterministic: the command's effect
// depends only on (virtual state, command), never on wall clock.
func (p *Plane) apply(c Command) {
	hosts := p.fleet.Hosts()
	applied := false
	detail := ""
	hostName := "*"
	if c.Host >= 0 {
		hostName = hosts[c.Host].Name
	}
	switch c.Kind {
	case KindKill:
		if h := hosts[c.Host]; !h.Down {
			h.Kill()
			applied = true
		} else {
			detail = "already down"
		}
	case KindRestart:
		if h := hosts[c.Host]; h.Down {
			h.Restart(p.session.Floor())
			applied = true
		} else {
			detail = "not down"
		}
	case KindQueue:
		// Engines cannot swap queues live; stage the swap in the spec so
		// the next checkpoint/resume rebuilds on the new kind. Traces are
		// byte-identical across queue kinds, so the swap never perturbs
		// digests — it only changes which implementation executes.
		p.spec.Queue = sim.QueueKind(c.Arg).String()
		applied = true
		detail = "staged until resume"
	default:
		d, ok := directive(c)
		if ok && c.Host >= 0 {
			applied = hosts[c.Host].Steer(d)
		} else if ok {
			for _, h := range hosts {
				if h.Steer(d) {
					applied = true
				}
			}
		}
	}
	p.log = append(p.log, c)
	p.addPatch(Patch{
		Window:  uint64(p.session.Windows()),
		Seq:     c.Seq,
		Kind:    c.Kind.String(),
		Host:    hostName,
		Applied: applied,
		Detail:  detail,
	})
}

// directive maps steering command kinds onto fleet directives.
func directive(c Command) (fleet.Directive, bool) {
	switch c.Kind {
	case KindSpike:
		return fleet.Directive{Kind: fleet.DirSpike, Arg: c.Arg, Dur: c.Dur}, true
	case KindPolicy:
		return fleet.Directive{Kind: fleet.DirPolicy, Arg: c.Arg}, true
	case KindCoalesce:
		return fleet.Directive{Kind: fleet.DirCoalesce, Arg: c.Arg}, true
	}
	return fleet.Directive{}, false
}

// addPatch appends to the bounded feed, evicting the oldest on overflow.
func (p *Plane) addPatch(pt Patch) {
	if len(p.patches) >= maxPatchBuffer {
		p.patches = p.patches[1:]
		p.dropped++
	}
	p.patches = append(p.patches, pt)
}

// DrainPatches empties and returns the patch feed.
func (p *Plane) DrainPatches() []Patch {
	out := p.patches
	p.patches = nil
	return out
}

// Snapshot summarizes the plane at the current barrier.
func (p *Plane) Snapshot() Snapshot {
	down := 0
	for _, h := range p.fleet.Hosts() {
		if h.Down {
			down++
		}
	}
	return Snapshot{
		Window:     uint64(p.session.Windows()),
		Floor:      p.session.Floor(),
		Done:       p.done,
		Hosts:      len(p.fleet.Hosts()),
		HostsDown:  down,
		QueueDepth: len(p.queue),
		LogLen:     len(p.log),
		Dropped:    p.dropped,
		Digest:     p.fleet.Digest(),
		Queue:      p.spec.Queue,
		End:        p.spec.End,
	}
}

// CommandLog returns a copy of the applied-command record — the replay
// input that, with the spec, reproduces this run bit for bit.
func (p *Plane) CommandLog() []Command {
	out := make([]Command, len(p.log))
	copy(out, p.log)
	return out
}

// Keyframe returns the latest automatic keyframe (WithKeyframeEvery), or
// nil before the first cadence boundary.
func (p *Plane) Keyframe() *trace.Checkpoint { return p.keyframe }

// Windows returns the completed window count.
func (p *Plane) Windows() int { return p.session.Windows() }

// Done reports whether the run has completed.
func (p *Plane) Done() bool { return p.done }

// Fleet exposes the underlying fleet (digests, counters, hosts).
func (p *Plane) Fleet() *fleet.Fleet { return p.fleet }

// Spec returns the plane's current spec (including staged queue swaps).
func (p *Plane) Spec() Spec { return p.spec }

// Finish drains any remaining windows and closes the run, returning the
// final statistics.
func (p *Plane) Finish() fleet.RunStats {
	for p.Advance() {
	}
	p.done = true
	return p.session.Finish()
}

// Abort tears the session down mid-run without completing it — the
// checkpoint-then-exit path.
func (p *Plane) Abort() fleet.RunStats {
	p.done = true
	return p.session.Close()
}
