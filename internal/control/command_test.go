package control

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"timerstudy/internal/sim"
)

func sampleLog() []Command {
	return []Command{
		{Seq: 1, Window: 0, Kind: KindSpike, Host: -1, Arg: 8, Dur: sim.Duration(sim.Second)},
		{Seq: 2, Window: 20, Kind: KindKill, Host: 0},
		{Seq: 3, Window: 25, Kind: KindPolicy, Host: -1, Arg: int64(1)},
		{Seq: 4, Window: 30, Kind: KindCoalesce, Host: 3, Arg: int64(100 * sim.Millisecond)},
		{Seq: 5, Window: 60, Kind: KindRestart, Host: 0},
		{Seq: 6, Window: 70, Kind: KindQueue, Host: -1, Arg: 1},
	}
}

func TestCommandCodecRoundtrip(t *testing.T) {
	for _, log := range [][]Command{nil, sampleLog(), sampleLog()[:1]} {
		enc := EncodeCommands(log)
		got, err := DecodeCommands(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(log) {
			t.Fatalf("roundtrip count: %d != %d", len(got), len(log))
		}
		for i := range log {
			if got[i] != log[i] {
				t.Fatalf("record %d: %+v != %+v", i, got[i], log[i])
			}
		}
	}
}

// TestDecodeCommandsTruncation: cutting the log at every byte offset is an
// error, never a panic, and the error names an offset.
func TestDecodeCommandsTruncation(t *testing.T) {
	enc := EncodeCommands(sampleLog())
	for cut := 0; cut < len(enc); cut++ {
		_, err := DecodeCommands(enc[:cut])
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !strings.Contains(err.Error(), "byte offset") && cut >= 12 {
			t.Fatalf("truncation at %d: error names no offset: %v", cut, err)
		}
	}
}

func TestDecodeCommandsErrors(t *testing.T) {
	enc := EncodeCommands(sampleLog())

	bad := append([]byte("XCMD"), enc[4:]...)
	if _, err := DecodeCommands(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}

	ver := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(ver[4:], 99)
	if _, err := DecodeCommands(ver); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}

	huge := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(huge[8:], maxCommandLog+1)
	if _, err := DecodeCommands(huge); err == nil || !strings.Contains(err.Error(), "implausibl") {
		t.Fatalf("implausible count: %v", err)
	}

	tail := append(append([]byte(nil), enc...), 0xAA)
	if _, err := DecodeCommands(tail); err == nil || !strings.Contains(err.Error(), "trailing garbage") {
		t.Fatalf("trailing garbage: %v", err)
	}
}

// FuzzDecodeCommands: arbitrary bytes never panic the decoder, and anything
// it accepts re-encodes to the identical canonical bytes.
func FuzzDecodeCommands(f *testing.F) {
	f.Add(EncodeCommands(sampleLog()))
	f.Add(EncodeCommands(nil))
	f.Add([]byte("TCMD"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cmds, err := DecodeCommands(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeCommands(cmds), data) {
			t.Fatalf("accepted non-canonical encoding (%d bytes)", len(data))
		}
	})
}

func TestKindStringParse(t *testing.T) {
	for k := KindSpike; k < kindEnd; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("reboot-the-universe"); err == nil {
		t.Fatal("unknown kind parsed")
	}
	if s := Kind(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("unknown kind string: %q", s)
	}
	if !reflect.DeepEqual(KindQueue.String(), "queue") {
		t.Fatalf("KindQueue = %q", KindQueue.String())
	}
}
