// Package control is the deterministic control plane over a fleet
// simulation: a bounded command queue, window-boundary command application,
// patch feed, and replay-based checkpoint/resume.
//
// The design follows the staged-input game-loop idiom: callers Enqueue
// commands at any wall-clock moment, the plane stamps each accepted command
// with the virtual window boundary it will apply at, and Advance drains due
// commands only at that boundary — the fleet session's serial barrier,
// where no worker owns host state. Virtual time therefore never sees
// wall-clock arrival order: two runs fed the same (seed, command log) are
// byte-identical at any worker count, which is what makes interactive runs
// replayable and checkpoints verifiable.
package control

import (
	"encoding/binary"
	"fmt"
	"io"

	"timerstudy/internal/sim"
)

// Kind enumerates the steering commands the plane understands.
type Kind uint8

const (
	// KindSpike multiplies desktop request rates by Arg for Dur of
	// virtual time (fleet.DirSpike). Host -1 targets every desktop.
	KindSpike Kind = iota + 1
	// KindKill powers a host off at the boundary (Host.Kill).
	KindKill
	// KindRestart powers a killed host back on (Host.Restart).
	KindRestart
	// KindPolicy switches the desktop request-timeout policy: Arg 0 =
	// fixed 30 s, Arg 1 = adaptive RTT-tracking (fleet.DirPolicy).
	KindPolicy
	// KindCoalesce sets a host's periodic-timer coalescing window to Arg
	// nanoseconds (fleet.DirCoalesce).
	KindCoalesce
	// KindQueue stages an engine event-queue swap to Arg
	// (sim.QueueKind). It cannot rebuild live engines, so it takes
	// effect at the next checkpoint/resume boundary — and because traces
	// are byte-identical across queue kinds, the swap never changes
	// digests, only the queue implementation the resumed run executes on.
	KindQueue

	kindEnd // one past the last valid kind
)

// String names the kind for logs and patches.
func (k Kind) String() string {
	switch k {
	case KindSpike:
		return "spike"
	case KindKill:
		return "kill"
	case KindRestart:
		return "restart"
	case KindPolicy:
		return "policy"
	case KindCoalesce:
		return "coalesce"
	case KindQueue:
		return "queue"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a command name to its Kind.
func ParseKind(s string) (Kind, error) {
	for k := KindSpike; k < kindEnd; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("control: unknown command kind %q", s)
}

// Command is one steering instruction. Seq and Window are stamped by the
// plane on accept; the rest is caller input.
type Command struct {
	// Seq is the accept order, unique per plane, assigned by Enqueue.
	Seq uint64
	// Window is the fleet window boundary the command applies at.
	// Enqueue stamps 0 to the next boundary; non-zero must not be in the
	// past. Commands at one boundary apply in Seq order.
	Window uint64
	// Kind selects the operation.
	Kind Kind
	// Host is the target host index, or -1 for every host that accepts
	// the directive.
	Host int32
	// Arg is the kind-specific operand.
	Arg int64
	// Dur bounds the effect in virtual time, for kinds that expire.
	Dur sim.Duration
}

// The command-log wire format — the 'L' payload of a checkpoint and the
// -record-commands/-replay-commands file format:
//
//	magic "TCMD" | version u32 = 1 | count u32 |
//	count × (seq u64 | window u64 | kind u8 | host i32 | arg i64 | dur i64)
//
// Fixed-size records, strict decode: implausible counts, short reads and
// trailing garbage are errors.
const (
	commandMagic   = "TCMD"
	commandVersion = 1
	commandRecSize = 8 + 8 + 1 + 4 + 8 + 8

	// maxCommandLog bounds the records a decoder will materialize.
	maxCommandLog = 1 << 20
)

// EncodeCommands serializes a command log.
func EncodeCommands(cmds []Command) []byte {
	buf := make([]byte, 0, 12+len(cmds)*commandRecSize)
	buf = append(buf, commandMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, commandVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cmds)))
	for _, c := range cmds {
		buf = binary.LittleEndian.AppendUint64(buf, c.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, c.Window)
		buf = append(buf, byte(c.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Host))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Arg))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Dur))
	}
	return buf
}

// DecodeCommands parses a command log, rejecting malformed input with an
// error (never a panic).
func DecodeCommands(data []byte) ([]Command, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("control: command log truncated at byte offset %d: %w", len(data), io.ErrUnexpectedEOF)
	}
	if string(data[0:4]) != commandMagic {
		return nil, fmt.Errorf("control: bad command-log magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != commandVersion {
		return nil, fmt.Errorf("control: unsupported command-log version %d", v)
	}
	count := binary.LittleEndian.Uint32(data[8:])
	if count > maxCommandLog {
		return nil, fmt.Errorf("control: implausible command-log count (%d)", count)
	}
	want := 12 + int(count)*commandRecSize
	if len(data) < want {
		return nil, fmt.Errorf("control: command log truncated at byte offset %d (need %d): %w", len(data), want, io.ErrUnexpectedEOF)
	}
	if len(data) > want {
		return nil, fmt.Errorf("control: trailing garbage after command log at byte offset %d", want)
	}
	cmds := make([]Command, 0, count)
	for i := uint32(0); i < count; i++ {
		rec := data[12+int(i)*commandRecSize:]
		cmds = append(cmds, Command{
			Seq:    binary.LittleEndian.Uint64(rec),
			Window: binary.LittleEndian.Uint64(rec[8:]),
			Kind:   Kind(rec[16]),
			Host:   int32(binary.LittleEndian.Uint32(rec[17:])),
			Arg:    int64(binary.LittleEndian.Uint64(rec[21:])),
			Dur:    sim.Duration(binary.LittleEndian.Uint64(rec[29:])),
		})
	}
	return cmds, nil
}
