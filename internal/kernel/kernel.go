// Package kernel provides the simulated operating-system glue for the Linux
// personality: processes, the timer-relevant syscall layer (select, poll,
// nanosleep, alarm, the POSIX timer API), and the rules by which user-space
// timeout values reach the kernel timer subsystem.
//
// Two details from Section 3.1 of the paper are load-bearing here:
//
//  1. user-space timeout values are recorded at the system-call boundary,
//     where the caller-supplied relative value is visible exactly (no
//     jitter), and
//  2. when select/poll return early due to file-descriptor activity, Linux
//     writes back the *remaining* time, and event-loop programs (the X
//     server, icewm) immediately re-issue select with that remainder —
//     producing the countdown pattern of Figure 4 that the analysis must
//     detect and filter.
//
// All blocking syscalls take continuation callbacks: the simulation is
// event-driven, so "the process blocks" means "the continuation runs later".
package kernel

import (
	"fmt"
	"math/rand"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Linux bundles the simulated Linux system: engine, tracer, the standard
// timer base and the hrtimer facility.
type Linux struct {
	eng     *sim.Engine
	tr      trace.Sink
	base    *jiffies.Base
	hr      *jiffies.HighRes
	nextPID int32
	procs   []*Process
}

// NewLinux boots a simulated Linux system. Base options (dynticks, wheel
// choice) pass through to the jiffies base.
func NewLinux(eng *sim.Engine, tr trace.Sink, opts ...jiffies.Option) *Linux {
	return &Linux{
		eng:  eng,
		tr:   tr,
		base: jiffies.NewBase(eng, tr, opts...),
		hr:   jiffies.NewHighRes(eng, tr),
	}
}

// Engine returns the simulation engine.
func (l *Linux) Engine() *sim.Engine { return l.eng }

// Trace returns the trace buffer.
func (l *Linux) Trace() trace.Sink { return l.tr }

// Base returns the standard timer base (for kernel subsystems).
func (l *Linux) Base() *jiffies.Base { return l.base }

// HighRes returns the hrtimer facility.
func (l *Linux) HighRes() *jiffies.HighRes { return l.hr }

// Now returns current virtual time.
func (l *Linux) Now() sim.Time { return l.eng.Now() }

// Rand returns the deterministic random source.
func (l *Linux) Rand() *rand.Rand { return l.eng.Rand() }

// KernelTimer allocates and initializes a kernel-internal timer with the
// given origin label, the idiom kernel subsystems use (statically allocated
// struct + init_timer).
func (l *Linux) KernelTimer(origin string, fn func()) *jiffies.Timer {
	t := &jiffies.Timer{}
	l.base.Init(t, origin, 0, fn)
	return t
}

// Process is a simulated user process.
type Process struct {
	l *Linux
	// PID is the process identifier (assigned sequentially from 1000, like
	// a freshly booted desktop).
	PID int32
	// Name is the executable name used in origins ("Xorg", "firefox-bin").
	Name string

	// main is the process's main thread; its select/poll timers model the
	// on-stack timer structures of the respective syscall paths: one
	// stable identity per thread per syscall, which is what lets the
	// analysis correlate the X server's successive select timeouts
	// (Figure 4).
	main *Thread

	alarmTimer  *jiffies.Timer
	alarmOrigin uint32
}

// Thread is one thread of a process: it owns the per-thread on-stack timer
// structures used by blocking syscalls, so concurrent select/poll loops in
// one process (Firefox's event-loop threads) do not share timer identities.
type Thread struct {
	p           *Process
	selectTimer *jiffies.Timer
	pollTimer   *jiffies.Timer

	selOrigin, pollOrigin uint32
}

// NewProcess registers a process.
func (l *Linux) NewProcess(name string) *Process {
	l.nextPID++
	p := &Process{l: l, PID: 999 + l.nextPID, Name: name}
	p.main = p.NewThread()
	p.alarmTimer = p.quietTimer(name + "/alarm")
	p.alarmOrigin = l.tr.Origin(name + "/alarm")
	l.procs = append(l.procs, p)
	return p
}

// NewThread adds a thread to the process. Origins stay per call site
// (process + syscall), as the paper's stack-based attribution groups them,
// but each thread's syscall timers have their own identity.
func (p *Process) NewThread() *Thread {
	t := &Thread{p: p}
	t.selectTimer = p.quietTimer(p.Name + "/select")
	t.pollTimer = p.quietTimer(p.Name + "/poll")
	t.selOrigin = p.l.tr.Origin(p.Name + "/select")
	t.pollOrigin = p.l.tr.Origin(p.Name + "/poll")
	return t
}

// Processes returns all registered processes.
func (l *Linux) Processes() []*Process { return l.procs }

func (p *Process) quietTimer(origin string) *jiffies.Timer {
	t := &jiffies.Timer{Quiet: true, UserFlagged: true}
	p.l.base.Init(t, origin, p.PID, nil)
	return t
}

// SelectResult is what a select/poll continuation receives.
type SelectResult struct {
	// TimedOut is true when the timeout expired with no fd activity.
	TimedOut bool
	// Remaining is the unconsumed timeout Linux writes back into the
	// timeval on early return; zero when TimedOut.
	Remaining sim.Duration
}

// Pending is an in-progress blocking syscall. The workload completes it
// early by calling Complete (file-descriptor activity, signal delivery).
type Pending struct {
	done     bool
	complete func()
}

// Complete finishes the syscall early (fd became ready). Calling it after
// completion is a no-op, like a wakeup racing a timeout.
func (w *Pending) Complete() {
	if w == nil || w.done {
		return
	}
	w.done = true
	w.complete()
}

// Done reports whether the syscall already returned.
func (w *Pending) Done() bool { return w == nil || w.done }

// Select issues select(2) on the main thread. The continuation receives
// either a timeout or the remaining time at fd activity. A nil-timeout
// (blocking forever) select never touches the timer subsystem; model that
// by not calling Select at all.
func (p *Process) Select(timeout sim.Duration, cb func(SelectResult)) *Pending {
	return p.main.Select(timeout, cb)
}

// Poll issues poll(2) on the main thread.
func (p *Process) Poll(timeout sim.Duration, cb func(SelectResult)) *Pending {
	return p.main.Poll(timeout, cb)
}

// EpollWait issues epoll_wait(2) on the main thread, sharing the poll
// path's timer, as in the kernel.
func (p *Process) EpollWait(timeout sim.Duration, cb func(SelectResult)) *Pending {
	return p.main.Poll(timeout, cb)
}

// Select issues select(2) from this thread.
func (t *Thread) Select(timeout sim.Duration, cb func(SelectResult)) *Pending {
	return t.p.sysTimedBlock(t.selectTimer, t.selOrigin, timeout, cb)
}

// Poll issues poll(2) from this thread.
func (t *Thread) Poll(timeout sim.Duration, cb func(SelectResult)) *Pending {
	return t.p.sysTimedBlock(t.pollTimer, t.pollOrigin, timeout, cb)
}

func (p *Process) sysTimedBlock(t *jiffies.Timer, origin uint32, timeout sim.Duration, cb func(SelectResult)) *Pending {
	l := p.l
	if timeout < 0 {
		timeout = 0
	}
	// The user record: exact requested value, measured at the syscall.
	l.tr.Log(trace.Record{
		T: l.eng.Now(), Op: trace.OpSet, TimerID: t.ID(), Timeout: int64(timeout),
		PID: p.PID, Origin: origin, Flags: trace.FlagUser,
	})
	if timeout == 0 {
		// Non-blocking poll/select: returns immediately, arming nothing.
		// The zero "timeout value" still reaches the trace (it dominates
		// the paper's Figure 6 for Skype), paired with a satisfied cancel.
		l.tr.Log(trace.Record{
			T: l.eng.Now(), Op: trace.OpCancel, TimerID: t.ID(),
			PID: p.PID, Origin: origin, Flags: trace.FlagUser | trace.FlagSatisfied,
		})
		w := &Pending{done: true}
		cb(SelectResult{TimedOut: true})
		return w
	}
	w := &Pending{}
	start := l.eng.Now()
	deadline := start.Add(timeout)
	t.SetCallback(func() {
		if w.done {
			return
		}
		w.done = true
		l.tr.Log(trace.Record{
			T: l.eng.Now(), Op: trace.OpExpire, TimerID: t.ID(),
			PID: p.PID, Origin: origin, Flags: trace.FlagUser,
		})
		cb(SelectResult{TimedOut: true})
	})
	w.complete = func() {
		_ = l.base.Del(t)
		l.tr.Log(trace.Record{
			T: l.eng.Now(), Op: trace.OpCancel, TimerID: t.ID(),
			PID: p.PID, Origin: origin, Flags: trace.FlagUser | trace.FlagSatisfied,
		})
		remaining := deadline.Sub(l.eng.Now())
		if remaining < 0 {
			remaining = 0
		}
		// Linux rounds the written-back remainder to timer granularity.
		remaining = sim.Duration(jiffies.MsecsToJiffies(remaining)) * jiffies.JiffyDuration
		cb(SelectResult{Remaining: remaining})
	}
	t.UserFlagged = true
	l.base.ModTimeout(t, timeout)
	return w
}

// Nanosleep blocks for the given duration via the hrtimer path (2.6.16+).
func (p *Process) Nanosleep(d sim.Duration, cb func()) {
	t := &jiffies.HRTimer{UserFlagged: true}
	p.l.hr.Init(t, p.Name+"/nanosleep", p.PID, cb)
	p.l.hr.Start(t, d)
}

// Alarm implements alarm(2): schedule SIGALRM after d; a zero d cancels any
// pending alarm. Returns the time remaining on a previously pending alarm,
// as the syscall does.
func (p *Process) Alarm(d sim.Duration, onSignal func()) sim.Duration {
	l := p.l
	var remaining sim.Duration
	if p.alarmTimer.Pending() {
		remaining = jiffies.JiffiesToTime(p.alarmTimer.Expires()).Sub(l.eng.Now())
		_ = l.base.Del(p.alarmTimer)
		l.tr.Log(trace.Record{
			T: l.eng.Now(), Op: trace.OpCancel, TimerID: p.alarmTimer.ID(),
			PID: p.PID, Origin: p.alarmOrigin, Flags: trace.FlagUser,
		})
	}
	if d <= 0 {
		return remaining
	}
	p.alarmTimer.SetCallback(func() {
		l.tr.Log(trace.Record{
			T: l.eng.Now(), Op: trace.OpExpire, TimerID: p.alarmTimer.ID(),
			PID: p.PID, Origin: p.alarmOrigin, Flags: trace.FlagUser,
		})
		if onSignal != nil {
			onSignal()
		}
	})
	l.tr.Log(trace.Record{
		T: l.eng.Now(), Op: trace.OpSet, TimerID: p.alarmTimer.ID(), Timeout: int64(d),
		PID: p.PID, Origin: p.alarmOrigin, Flags: trace.FlagUser,
	})
	l.base.ModTimeout(p.alarmTimer, d)
	return remaining
}

// PosixTimer is a timer created through the POSIX timer API
// (timer_create/timer_settime/timer_delete) — with alarm(2), the only two
// Linux system-call routes that arm a timer without blocking (Section 2.1).
type PosixTimer struct {
	p        *Process
	t        *jiffies.Timer
	origin   uint32
	interval sim.Duration
	fn       func()
	deleted  bool
}

// TimerCreate allocates a POSIX per-process timer delivering to fn.
func (p *Process) TimerCreate(label string, fn func()) *PosixTimer {
	pt := &PosixTimer{p: p, fn: fn}
	pt.t = p.quietTimer(p.Name + "/timer_settime:" + label)
	pt.origin = p.l.tr.Origin(p.Name + "/timer_settime:" + label)
	return pt
}

// Settime arms the timer: first expiry after value, then periodically every
// interval (zero interval = one-shot). A zero value disarms.
func (pt *PosixTimer) Settime(value, interval sim.Duration) {
	if pt.deleted {
		panic(fmt.Sprintf("kernel: timer_settime on deleted timer (pid %d)", pt.p.PID))
	}
	l := pt.p.l
	pt.interval = interval
	if value <= 0 {
		if pt.t.Pending() {
			_ = l.base.Del(pt.t)
			l.tr.Log(trace.Record{
				T: l.eng.Now(), Op: trace.OpCancel, TimerID: pt.t.ID(),
				PID: pt.p.PID, Origin: pt.origin, Flags: trace.FlagUser,
			})
		}
		return
	}
	pt.t.SetCallback(pt.expire)
	l.tr.Log(trace.Record{
		T: l.eng.Now(), Op: trace.OpSet, TimerID: pt.t.ID(), Timeout: int64(value),
		PID: pt.p.PID, Origin: pt.origin, Flags: trace.FlagUser,
	})
	l.base.ModTimeout(pt.t, value)
}

func (pt *PosixTimer) expire() {
	l := pt.p.l
	l.tr.Log(trace.Record{
		T: l.eng.Now(), Op: trace.OpExpire, TimerID: pt.t.ID(),
		PID: pt.p.PID, Origin: pt.origin, Flags: trace.FlagUser,
	})
	fn := pt.fn
	if pt.interval > 0 && !pt.deleted {
		l.tr.Log(trace.Record{
			T: l.eng.Now(), Op: trace.OpSet, TimerID: pt.t.ID(), Timeout: int64(pt.interval),
			PID: pt.p.PID, Origin: pt.origin, Flags: trace.FlagUser,
		})
		l.base.ModTimeout(pt.t, pt.interval)
	}
	if fn != nil {
		fn()
	}
}

// Delete is timer_delete: disarm and invalidate.
func (pt *PosixTimer) Delete() {
	if pt.t.Pending() {
		_ = pt.p.l.base.Del(pt.t)
		pt.p.l.tr.Log(trace.Record{
			T: pt.p.l.eng.Now(), Op: trace.OpCancel, TimerID: pt.t.ID(),
			PID: pt.p.PID, Origin: pt.origin, Flags: trace.FlagUser,
		})
	}
	pt.deleted = true
}

// ScheduleTimeout is the kernel-internal blocking pattern (Section 2.1): a
// thread executing in the kernel installs a timer callback and separately
// asks the scheduler to block. Drivers and kernel threads use it; the
// timeout is a kernel access, not a user one.
func (l *Linux) ScheduleTimeout(origin string, d sim.Duration, cb func(timedOut bool)) *Pending {
	t := &jiffies.Timer{}
	w := &Pending{}
	l.base.Init(t, origin, 0, func() {
		if w.done {
			return
		}
		w.done = true
		cb(true)
	})
	w.complete = func() {
		_ = l.base.Del(t)
		cb(false)
	}
	l.base.ModTimeout(t, d)
	return w
}
