package kernel

import (
	"testing"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

func newTestLinux() (*sim.Engine, *trace.Buffer, *Linux) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 20)
	return eng, tr, NewLinux(eng, tr)
}

func TestSelectTimeout(t *testing.T) {
	eng, tr, l := newTestLinux()
	p := l.NewProcess("xterm")
	var res SelectResult
	got := false
	p.Select(100*sim.Millisecond, func(r SelectResult) { res, got = r, true })
	eng.Run(sim.Time(sim.Second))
	if !got || !res.TimedOut {
		t.Fatalf("res = %+v got=%v", res, got)
	}
	// Trace: exact user value on the set record.
	var set *trace.Record
	for i, r := range tr.Records() {
		if r.Op == trace.OpSet && r.IsUser() {
			set = &tr.Records()[i]
		}
	}
	if set == nil {
		t.Fatal("no user set record")
	}
	if set.Timeout != int64(100*sim.Millisecond) {
		t.Fatalf("user value jittered: %d", set.Timeout)
	}
	if set.PID != p.PID {
		t.Fatalf("pid = %d", set.PID)
	}
	if tr.OriginName(set.Origin) != "xterm/select" {
		t.Fatalf("origin = %q", tr.OriginName(set.Origin))
	}
}

func TestSelectEarlyCompletionRemainingCountdown(t *testing.T) {
	// The Figure 4 idiom: select(600s) interrupted at 250s returns ~350s
	// remaining, quantized to jiffies.
	eng, _, l := newTestLinux()
	p := l.NewProcess("Xorg")
	var res SelectResult
	w := p.Select(600*sim.Second, func(r SelectResult) { res = r })
	eng.At(sim.Time(250*sim.Second), "fd-activity", w.Complete)
	eng.Run(sim.Time(300 * sim.Second))
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if res.Remaining != 350*sim.Second {
		t.Fatalf("remaining = %v, want 350s", res.Remaining)
	}
}

func TestSelectCompleteAfterTimeoutIsNoop(t *testing.T) {
	eng, _, l := newTestLinux()
	p := l.NewProcess("a")
	calls := 0
	w := p.Select(10*sim.Millisecond, func(SelectResult) { calls++ })
	eng.Run(sim.Time(sim.Second))
	w.Complete()
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
	if !w.Done() {
		t.Fatal("not done")
	}
}

func TestSelectTimerIdentityStablePerProcess(t *testing.T) {
	// Successive selects from one process reuse one timer identity —
	// the property the paper's Linux analysis leans on.
	eng, tr, l := newTestLinux()
	p := l.NewProcess("icewm")
	for i := 0; i < 3; i++ {
		p.Select(10*sim.Millisecond, func(SelectResult) {})
		eng.Run(eng.Now().Add(100 * sim.Millisecond))
	}
	ids := map[uint64]bool{}
	for _, r := range tr.Records() {
		if r.Op == trace.OpSet {
			ids[r.TimerID] = true
		}
	}
	if len(ids) != 1 {
		t.Fatalf("select used %d identities, want 1", len(ids))
	}
}

func TestPollSeparateFromSelect(t *testing.T) {
	eng, tr, l := newTestLinux()
	p := l.NewProcess("skype")
	p.Select(10*sim.Millisecond, func(SelectResult) {})
	p.Poll(10*sim.Millisecond, func(SelectResult) {})
	eng.Run(sim.Time(sim.Second))
	ids := map[uint64]string{}
	for _, r := range tr.Records() {
		if r.Op == trace.OpSet {
			ids[r.TimerID] = tr.OriginName(r.Origin)
		}
	}
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestNanosleepHighRes(t *testing.T) {
	eng, _, l := newTestLinux()
	p := l.NewProcess("a")
	var at sim.Time
	p.Nanosleep(1500*sim.Microsecond, func() { at = eng.Now() })
	eng.Run(sim.Time(sim.Second))
	if at != sim.Time(1500*sim.Microsecond) {
		t.Fatalf("woke at %v: nanosleep is hrtimer-based, no jiffy rounding", at)
	}
}

func TestAlarm(t *testing.T) {
	eng, _, l := newTestLinux()
	p := l.NewProcess("cron")
	fired := false
	p.Alarm(2*sim.Second, func() { fired = true })
	// Re-arm before expiry: returns remaining, replaces.
	eng.At(sim.Time(sim.Second), "rearm", func() {
		rem := p.Alarm(5*sim.Second, func() { fired = true })
		if rem < 900*sim.Millisecond || rem > 1100*sim.Millisecond {
			t.Errorf("remaining = %v, want ≈1s", rem)
		}
	})
	eng.Run(sim.Time(4 * sim.Second))
	if fired {
		t.Fatal("original alarm fired despite re-arm")
	}
	eng.Run(sim.Time(10 * sim.Second))
	if !fired {
		t.Fatal("alarm never fired")
	}
	// alarm(0) cancels.
	p.Alarm(sim.Second, func() { t.Error("canceled alarm fired") })
	p.Alarm(0, nil)
	eng.Run(sim.Time(20 * sim.Second))
}

func TestPosixTimerPeriodic(t *testing.T) {
	eng, tr, l := newTestLinux()
	p := l.NewProcess("mplayer")
	fires := 0
	pt := p.TimerCreate("frame", func() { fires++ })
	pt.Settime(100*sim.Millisecond, 100*sim.Millisecond)
	eng.Run(sim.Time(1050 * sim.Millisecond))
	if fires < 9 || fires > 11 {
		t.Fatalf("fires = %d", fires)
	}
	pt.Settime(0, 0) // disarm
	n := fires
	eng.Run(sim.Time(2 * sim.Second))
	if fires != n {
		t.Fatal("fired after disarm")
	}
	pt.Delete()
	// Each periodic expiry logs a user set for the next interval.
	c := tr.Counters()
	if c.ByOp[trace.OpSet] < uint64(n) {
		t.Fatalf("sets = %d, fires = %d", c.ByOp[trace.OpSet], n)
	}
}

func TestPosixTimerSettimeAfterDeletePanics(t *testing.T) {
	_, _, l := newTestLinux()
	p := l.NewProcess("x")
	pt := p.TimerCreate("t", nil)
	pt.Delete()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	pt.Settime(sim.Second, 0)
}

func TestScheduleTimeoutKernelAttribution(t *testing.T) {
	eng, tr, l := newTestLinux()
	var timedOut bool
	l.ScheduleTimeout("ide/command-timeout", 30*sim.Second, func(to bool) { timedOut = to })
	eng.Run(sim.Time(31 * sim.Second))
	if !timedOut {
		t.Fatal("no timeout")
	}
	for _, r := range tr.Records() {
		if r.IsUser() {
			t.Fatalf("kernel timeout flagged user: %+v", r)
		}
	}
}

func TestScheduleTimeoutEarlyWake(t *testing.T) {
	eng, _, l := newTestLinux()
	var timedOut = true
	w := l.ScheduleTimeout("scsi/cmd", 30*sim.Second, func(to bool) { timedOut = to })
	eng.At(sim.Time(10*sim.Millisecond), "io-done", w.Complete)
	eng.Run(sim.Time(sim.Minute))
	if timedOut {
		t.Fatal("completed wait reported timeout")
	}
}

func TestUserRecordsCountedOnce(t *testing.T) {
	// One select = one set access (the syscall layer logs; the base is
	// quiet). This keeps the Table 1 user/kernel split honest.
	eng, tr, l := newTestLinux()
	p := l.NewProcess("a")
	p.Select(50*sim.Millisecond, func(SelectResult) {})
	eng.Run(sim.Time(sim.Second))
	c := tr.Counters()
	if c.ByOp[trace.OpSet] != 1 {
		t.Fatalf("set records = %d, want 1", c.ByOp[trace.OpSet])
	}
	if c.ByOp[trace.OpExpire] != 1 {
		t.Fatalf("expire records = %d, want 1", c.ByOp[trace.OpExpire])
	}
}

func TestPIDsAssignedSequentially(t *testing.T) {
	_, _, l := newTestLinux()
	a := l.NewProcess("a")
	b := l.NewProcess("b")
	if a.PID == b.PID || a.PID < 1000 {
		t.Fatalf("pids: %d %d", a.PID, b.PID)
	}
	if len(l.Processes()) != 2 {
		t.Fatal("process registry broken")
	}
}

func TestSelectExpiryOnJiffyBoundary(t *testing.T) {
	// Observed durations quantize to jiffies even though requested values
	// are exact — the Figure 8 hyperbola's cause on Linux.
	eng, tr, l := newTestLinux()
	p := l.NewProcess("a")
	p.Select(sim.Millisecond, func(SelectResult) {})
	eng.Run(sim.Time(sim.Second))
	var setT, expT sim.Time
	for _, r := range tr.Records() {
		switch r.Op {
		case trace.OpSet:
			setT = r.T
		case trace.OpExpire:
			expT = r.T
		}
	}
	elapsed := expT.Sub(setT)
	if elapsed < sim.Duration(jiffies.JiffyDuration) {
		t.Fatalf("1ms select delivered after %v, want ≥ 1 jiffy", elapsed)
	}
}

func TestPollZeroNonBlocking(t *testing.T) {
	// poll(0) returns inline, arms nothing, and still contributes a
	// zero-valued set to the trace (the Figure 6 Skype spike).
	eng, tr, l := newTestLinux()
	p := l.NewProcess("skype")
	ran := false
	w := p.Poll(0, func(r SelectResult) { ran = r.TimedOut })
	if !ran || !w.Done() {
		t.Fatal("poll(0) did not complete inline")
	}
	c := tr.Counters()
	if c.ByOp[trace.OpSet] != 1 || c.ByOp[trace.OpCancel] != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if tr.Records()[0].Timeout != 0 {
		t.Fatalf("timeout = %d", tr.Records()[0].Timeout)
	}
	eng.Run(sim.Time(sim.Second))
	if l.Base().ExpiredCount != 0 {
		t.Fatal("poll(0) armed a kernel timer")
	}
}

func TestEpollWaitSharesPollIdentity(t *testing.T) {
	eng, tr, l := newTestLinux()
	p := l.NewProcess("nginx")
	p.EpollWait(10*sim.Millisecond, func(SelectResult) {})
	eng.Run(sim.Time(sim.Second))
	p.Poll(10*sim.Millisecond, func(SelectResult) {})
	eng.Run(sim.Time(2 * sim.Second))
	ids := map[uint64]bool{}
	for _, r := range tr.Records() {
		if r.Op == trace.OpSet {
			ids[r.TimerID] = true
		}
	}
	if len(ids) != 1 {
		t.Fatalf("epoll_wait and poll used %d identities, want 1 (same kernel path)", len(ids))
	}
}

func TestThreadsIsolateSyscallTimers(t *testing.T) {
	eng, _, l := newTestLinux()
	p := l.NewProcess("firefox")
	t1, t2 := p.NewThread(), p.NewThread()
	got1, got2 := false, false
	t1.Poll(20*sim.Millisecond, func(SelectResult) { got1 = true })
	t2.Poll(40*sim.Millisecond, func(SelectResult) { got2 = true })
	eng.Run(sim.Time(sim.Second))
	if !got1 || !got2 {
		t.Fatalf("concurrent per-thread polls interfered: %v %v", got1, got2)
	}
}

func TestAlarmZeroReturnsRemaining(t *testing.T) {
	eng, _, l := newTestLinux()
	p := l.NewProcess("sh")
	p.Alarm(10*sim.Second, nil)
	eng.Run(sim.Time(4 * sim.Second))
	rem := p.Alarm(0, nil)
	if rem < 5900*sim.Millisecond || rem > 6100*sim.Millisecond {
		t.Fatalf("remaining = %v, want ≈6s", rem)
	}
	if p.Alarm(0, nil) != 0 {
		t.Fatal("second alarm(0) returned nonzero")
	}
}

func TestSelectNegativeTimeoutTreatedAsZero(t *testing.T) {
	_, tr, l := newTestLinux()
	p := l.NewProcess("a")
	ran := false
	p.Select(-5*sim.Second, func(SelectResult) { ran = true })
	if !ran {
		t.Fatal("negative timeout did not complete inline")
	}
	if tr.Records()[0].Timeout != 0 {
		t.Fatalf("recorded %d", tr.Records()[0].Timeout)
	}
}
