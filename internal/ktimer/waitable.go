package ktimer

import (
	"timerstudy/internal/sim"
)

// Win32 waitable timers (Section 2.2): "the {Create, Set, Cancel}-
// WaitableTimer APIs, which expose the NT API interface largely
// unmodified". A waitable timer is a KTIMER surfaced as a synchronization
// object: threads wait on it, an optional completion routine (APC) runs on
// expiry, and the object can be manual-reset (stays signaled until re-set)
// or synchronization/auto-reset (one waiter consumes the signal).
type WaitableTimer struct {
	kt          *KTimer
	manualReset bool
	k           *Kernel
}

// CreateWaitableTimer allocates a waitable timer for a process.
func (k *Kernel) CreateWaitableTimer(pid int32, processName string, manualReset bool) *WaitableTimer {
	w := &WaitableTimer{
		kt:          k.NewTimer(processName+"/waitable-timer", pid, true, nil),
		manualReset: manualReset,
		k:           k,
	}
	w.kt.Object.autoReset = !manualReset
	return w
}

// Set is SetWaitableTimer: arm for a relative due time with an optional
// period and completion routine. Setting clears the signaled state.
func (w *WaitableTimer) Set(due sim.Duration, period sim.Duration, apc func()) {
	w.kt.SetDPC(apc)
	w.k.SetTimerIn(w.kt, due, period)
}

// Cancel is CancelWaitableTimer. The signaled state is left alone, as in
// Win32.
func (w *WaitableTimer) Cancel() bool {
	return w.k.CancelTimer(w.kt)
}

// Object exposes the dispatcher object for WaitFor.
func (w *WaitableTimer) Object() *Object { return &w.kt.Object }

// Signaled reports the timer's object state.
func (w *WaitableTimer) Signaled() bool { return w.kt.Signaled() }
