package ktimer

import (
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

func newTestKernel() (*sim.Engine, *trace.Buffer, *Kernel) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 20)
	return eng, tr, NewKernel(eng, tr)
}

func TestKTimerFiresAtClockInterrupt(t *testing.T) {
	eng, tr, k := newTestKernel()
	var firedAt sim.Time
	kt := k.NewTimer("driver/test", 0, false, nil)
	kt.dpc = func() { firedAt = eng.Now() }
	k.SetTimerIn(kt, 20*sim.Millisecond, 0)
	eng.Run(sim.Time(sim.Second))
	// 20 ms rounds up to the 2nd clock interrupt: 31.25 ms.
	want := sim.Time(2 * ClockInterval)
	if firedAt != want {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
	var ops []trace.Op
	for _, r := range tr.Records() {
		ops = append(ops, r.Op)
	}
	if len(ops) != 2 || ops[0] != trace.OpSet || ops[1] != trace.OpExpire {
		t.Fatalf("ops = %v", ops)
	}
	if got := tr.Records()[0].Timeout; got != int64(20*sim.Millisecond) {
		t.Fatalf("recorded timeout = %d", got)
	}
}

func TestKTimerSubMillisecondDeliveredLate(t *testing.T) {
	// The paper's Vista Firefox trace shows sub-millisecond timers
	// "delivered at essentially random times": delivery is quantized to the
	// 15.6 ms clock, so a 1 ms timer is >1500 % late.
	eng, _, k := newTestKernel()
	var firedAt sim.Time
	kt := k.NewTimer("firefox/short", 10, true, nil)
	kt.dpc = func() { firedAt = eng.Now() }
	k.SetTimerIn(kt, sim.Millisecond, 0)
	eng.Run(sim.Time(sim.Second))
	if firedAt != sim.Time(ClockInterval) {
		t.Fatalf("fired at %v, want %v", firedAt, ClockInterval)
	}
}

func TestKTimerCancel(t *testing.T) {
	eng, tr, k := newTestKernel()
	fired := false
	kt := k.NewTimer("driver/test", 0, false, nil)
	kt.dpc = func() { fired = true }
	k.SetTimerIn(kt, 100*sim.Millisecond, 0)
	if !k.CancelTimer(kt) {
		t.Fatal("cancel failed")
	}
	if k.CancelTimer(kt) {
		t.Fatal("double cancel reported active")
	}
	eng.Run(sim.Time(sim.Second))
	if fired {
		t.Fatal("canceled timer fired")
	}
	if got := tr.Counters().ByOp[trace.OpCancel]; got != 2 {
		t.Fatalf("cancel accesses = %d", got)
	}
}

func TestKTimerPeriodicSetOnceExpiresMany(t *testing.T) {
	eng, tr, k := newTestKernel()
	fires := 0
	kt := k.NewTimer("system/periodic", 4, false, nil)
	kt.dpc = func() { fires++ }
	k.SetTimerIn(kt, 100*sim.Millisecond, 100*sim.Millisecond)
	eng.Run(sim.Time(sim.Second))
	if fires < 8 || fires > 10 {
		t.Fatalf("fires = %d, want ≈9", fires)
	}
	c := tr.Counters()
	if c.ByOp[trace.OpSet] != 1 {
		t.Fatalf("sets = %d, want 1 (periodic re-arm is internal)", c.ByOp[trace.OpSet])
	}
	if int(c.ByOp[trace.OpExpire]) != fires {
		t.Fatalf("expiries = %d, fires = %d", c.ByOp[trace.OpExpire], fires)
	}
}

func TestFreshIdentityPerAllocation(t *testing.T) {
	_, _, k := newTestKernel()
	a := k.NewTimer("x", 0, false, nil)
	b := k.NewTimer("x", 0, false, nil)
	if a.ID() == b.ID() {
		t.Fatal("dynamically allocated KTIMERs must have fresh identities")
	}
}

func TestWaitSatisfied(t *testing.T) {
	eng, tr, k := newTestKernel()
	obj := NewEvent()
	th := k.NewThread(100, "app.exe")
	var result WaitResult = -1
	th.WaitFor(5*sim.Second, func(r WaitResult) { result = r }, obj)
	eng.At(sim.Time(sim.Second), "signal", func() { obj.signal(k) })
	eng.Run(sim.Time(10 * sim.Second))
	if result != WaitSatisfied {
		t.Fatalf("result = %v", result)
	}
	// Trace: OpWait then OpCancel with FlagSatisfied.
	var seen []trace.Op
	for _, r := range tr.Records() {
		seen = append(seen, r.Op)
		if r.Op == trace.OpCancel && r.Flags&trace.FlagSatisfied == 0 {
			t.Fatal("satisfied wait cancel not flagged")
		}
	}
	if len(seen) != 2 || seen[0] != trace.OpWait || seen[1] != trace.OpCancel {
		t.Fatalf("ops = %v", seen)
	}
}

func TestWaitTimeout(t *testing.T) {
	eng, tr, k := newTestKernel()
	obj := NewEvent()
	th := k.NewThread(100, "app.exe")
	var result WaitResult = -1
	var at sim.Time
	th.WaitFor(sim.Second, func(r WaitResult) { result, at = r, eng.Now() }, obj)
	eng.Run(sim.Time(10 * sim.Second))
	if result != WaitTimeout {
		t.Fatalf("result = %v", result)
	}
	if at < sim.Time(sim.Second) || at > sim.Time(sim.Second+ClockInterval) {
		t.Fatalf("timed out at %v", at)
	}
	c := tr.Counters()
	if c.ByOp[trace.OpWait] != 1 || c.ByOp[trace.OpExpire] != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestWaitOnSignaledObjectImmediate(t *testing.T) {
	eng, tr, k := newTestKernel()
	obj := NewEvent()
	obj.signal(k)
	th := k.NewThread(1, "a")
	done := false
	th.WaitFor(sim.Second, func(r WaitResult) { done = r == WaitSatisfied }, obj)
	if !done {
		t.Fatal("wait on signaled object did not complete inline")
	}
	if tr.Counters().Total != 0 {
		t.Fatal("inline completion should not touch the timer subsystem")
	}
	_ = eng
}

func TestInfiniteWaitNoTimer(t *testing.T) {
	eng, tr, k := newTestKernel()
	obj := NewEvent()
	th := k.NewThread(1, "a")
	ok := false
	th.WaitFor(Forever, func(r WaitResult) { ok = r == WaitSatisfied }, obj)
	if tr.Counters().ByOp[trace.OpWait] != 0 {
		t.Fatal("infinite wait armed a timer")
	}
	eng.At(sim.Time(sim.Second), "signal", func() { obj.signal(k) })
	eng.Run(sim.Time(2 * sim.Second))
	if !ok {
		t.Fatal("wait not satisfied")
	}
}

func TestWaitAnyMultipleObjects(t *testing.T) {
	eng, _, k := newTestKernel()
	a, b := NewEvent(), NewEvent()
	th := k.NewThread(1, "a")
	n := 0
	th.WaitFor(10*sim.Second, func(WaitResult) { n++ }, a, b)
	eng.At(sim.Time(sim.Second), "sig-b", func() { b.signal(k) })
	eng.At(sim.Time(2*sim.Second), "sig-a", func() { a.signal(k) })
	eng.Run(sim.Time(5 * sim.Second))
	if n != 1 {
		t.Fatalf("callback ran %d times", n)
	}
}

func TestThreadpoolCoalescing(t *testing.T) {
	// Three timers due within each other's windows must share one kernel
	// expiry.
	eng, _, k := newTestKernel()
	pool := k.NewPool(50, "svchost.exe")
	fired := 0
	for i := 0; i < 3; i++ {
		tp := pool.NewTimer("svchost.exe/task", func() { fired++ })
		tp.Set(sim.Duration(100+10*i)*sim.Millisecond, 0, 200*sim.Millisecond)
	}
	before := k.ExpiredCount
	eng.Run(sim.Time(sim.Second))
	if fired != 3 {
		t.Fatalf("fired = %d", fired)
	}
	if got := k.ExpiredCount - before; got != 1 {
		t.Fatalf("kernel expiries = %d, want 1 (coalesced)", got)
	}
}

func TestThreadpoolPeriodicAndCancel(t *testing.T) {
	eng, _, k := newTestKernel()
	pool := k.NewPool(50, "svchost.exe")
	fires := 0
	tp := pool.NewTimer("svchost.exe/poll", func() { fires++ })
	tp.Set(100*sim.Millisecond, 100*sim.Millisecond, 0)
	eng.Run(sim.Time(sim.Second))
	if fires < 8 {
		t.Fatalf("fires = %d", fires)
	}
	if !tp.Cancel() {
		t.Fatal("cancel failed")
	}
	if tp.Cancel() {
		t.Fatal("double cancel succeeded")
	}
	n := fires
	eng.Run(sim.Time(2 * sim.Second))
	if fires != n {
		t.Fatal("fired after cancel")
	}
	if pool.Len() != 0 {
		t.Fatalf("pool len = %d", pool.Len())
	}
}

func TestThreadpoolNoWindowFiresPromptly(t *testing.T) {
	eng, _, k := newTestKernel()
	pool := k.NewPool(50, "x")
	var at sim.Time
	tp := pool.NewTimer("x/t", func() { at = eng.Now() })
	tp.Set(20*sim.Millisecond, 0, 0)
	eng.Run(sim.Time(sim.Second))
	if at != sim.Time(2*ClockInterval) {
		t.Fatalf("fired at %v", at)
	}
}

func TestWin32TimerPeriodicWMTimer(t *testing.T) {
	eng, _, k := newTestKernel()
	q := k.NewMessageQueue(200, "outlook.exe")
	fires := 0
	q.SetTimer(1, 100*sim.Millisecond, func() { fires++ })
	eng.Run(sim.Time(sim.Second))
	if fires < 7 || fires > 10 {
		t.Fatalf("fires = %d", fires)
	}
	if !q.KillTimer(1) {
		t.Fatal("KillTimer failed")
	}
	if q.KillTimer(1) {
		t.Fatal("double kill succeeded")
	}
	n := fires
	eng.Run(sim.Time(2 * sim.Second))
	if fires != n {
		t.Fatal("fired after KillTimer")
	}
}

func TestWin32TimerIDReplacement(t *testing.T) {
	eng, _, k := newTestKernel()
	q := k.NewMessageQueue(200, "app.exe")
	a, b := 0, 0
	q.SetTimer(7, 100*sim.Millisecond, func() { a++ })
	q.SetTimer(7, 100*sim.Millisecond, func() { b++ }) // replaces
	eng.Run(sim.Time(sim.Second))
	if a != 0 {
		t.Fatalf("replaced timer fired %d times", a)
	}
	if b == 0 {
		t.Fatal("replacement never fired")
	}
}

func TestAfdSelectTimeoutAndCancel(t *testing.T) {
	eng, tr, k := newTestKernel()
	timedOut := false
	k.AfdSelect(10, "iexplore.exe", 50*sim.Millisecond, func(to bool) { timedOut = to })
	eng.Run(sim.Time(sim.Second))
	if !timedOut {
		t.Fatal("select did not time out")
	}
	// Early completion path.
	got := -1
	cancel := k.AfdSelect(10, "iexplore.exe", 5*sim.Second, func(to bool) {
		if to {
			got = 1
		} else {
			got = 0
		}
	})
	eng.At(eng.Now().Add(10*sim.Millisecond), "activity", cancel)
	eng.Run(eng.Now().Add(10 * sim.Second))
	if got != 0 {
		t.Fatalf("got = %d, want completion without timeout", got)
	}
	// Each select allocated a fresh KTIMER.
	ids := map[uint64]bool{}
	for _, r := range tr.Records() {
		if r.Op == trace.OpSet {
			ids[r.TimerID] = true
		}
	}
	if len(ids) < 2 {
		t.Fatalf("selects shared a timer: %v", ids)
	}
}

func TestNtSetTimerAPC(t *testing.T) {
	eng, _, k := newTestKernel()
	ran := false
	kt := k.NtSetTimer(10, "app/nt-timer", 50*sim.Millisecond, func() { ran = true })
	if !k.NtCancelTimer(kt) {
		t.Fatal("cancel failed")
	}
	eng.Run(sim.Time(sim.Second))
	if ran {
		t.Fatal("canceled NT timer delivered its APC")
	}
}
