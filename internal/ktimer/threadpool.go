package ktimer

import (
	"container/heap"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Pool is the NTDLL threadpool timer layer (CreateThreadpoolTimer /
// SetThreadpoolTimer): a user-level timer ring multiplexed over a single
// kernel KTIMER (Section 2.2). Each pool belongs to one process; its kernel
// timer is dynamically allocated, like the real thing.
//
// SetThreadpoolTimer's WindowLength parameter allows expiries to be
// delivered up to that much late so that nearby timers batch into one kernel
// wakeup — Vista's version of timer coalescing.
type Pool struct {
	k      *Kernel
	pid    int32
	origin string

	kt      *KTimer
	timers  tpHeap
	nextSeq uint64

	originID uint32
}

// NewPool creates a threadpool timer ring for a process.
func (k *Kernel) NewPool(pid int32, processName string) *Pool {
	p := &Pool{k: k, pid: pid, origin: processName + "/threadpool"}
	p.originID = k.tr.Origin(p.origin)
	p.kt = k.NewTimer(p.origin, pid, true, nil)
	p.kt.dpc = p.expireDPC
	return p
}

// TPTimer is a threadpool timer (PTP_TIMER).
type TPTimer struct {
	pool   *Pool
	due    sim.Time
	latest sim.Time // due + window: the latest acceptable delivery
	period sim.Duration
	window sim.Duration
	cb     func()
	index  int // heap position, -1 when idle
	seq    uint64
	id     uint64

	originID uint32
}

// NewTimer is CreateThreadpoolTimer: allocate an inert timer with its
// callback.
func (p *Pool) NewTimer(origin string, cb func()) *TPTimer {
	p.k.nextID++
	return &TPTimer{
		pool: p, cb: cb, index: -1, id: p.k.nextID,
		originID: p.k.tr.Origin(origin),
	}
}

// Set is SetThreadpoolTimer: arm for a relative due time with optional
// period and coalescing window. Setting an armed timer moves it.
func (t *TPTimer) Set(due, period, window sim.Duration) {
	p := t.pool
	if due < 0 {
		due = 0
	}
	t.due = p.k.eng.Now().Add(due)
	t.period = period
	t.window = window
	t.latest = t.due.Add(window)
	p.nextSeq++
	t.seq = p.nextSeq
	if t.index >= 0 {
		heap.Fix(&p.timers, t.index)
	} else {
		heap.Push(&p.timers, t)
	}
	p.k.tr.Log(trace.Record{
		T: p.k.eng.Now(), Op: trace.OpSet, TimerID: t.id, Timeout: int64(due),
		PID: p.pid, Origin: t.originID, Flags: trace.FlagUser,
	})
	p.rearmKernelTimer()
}

// Cancel is SetThreadpoolTimer(NULL): disarm.
func (t *TPTimer) Cancel() bool {
	p := t.pool
	active := t.index >= 0
	if active {
		heap.Remove(&p.timers, t.index)
		t.index = -1
	}
	p.k.tr.Log(trace.Record{
		T: p.k.eng.Now(), Op: trace.OpCancel, TimerID: t.id,
		PID: p.pid, Origin: t.originID, Flags: trace.FlagUser,
	})
	if active {
		p.rearmKernelTimer()
	}
	return active
}

// rearmKernelTimer points the single kernel timer at the pool's coalescing
// target: the earliest `latest` among pending timers — the longest the ring
// may wait while still honouring every window.
func (p *Pool) rearmKernelTimer() {
	if len(p.timers) == 0 {
		if p.kt.Pending() {
			_ = p.k.CancelTimer(p.kt)
		}
		return
	}
	target := p.timers[0].latest
	for _, t := range p.timers {
		if t.latest < target {
			target = t.latest
		}
	}
	if p.kt.Pending() && p.kt.due == target {
		return
	}
	p.k.SetTimer(p.kt, target, 0, true)
}

// expireDPC runs in DPC context when the kernel timer fires: deliver every
// timer whose due time has arrived (all of them owe delivery by now or are
// within their window), re-arm periodics, then retarget the kernel timer.
func (p *Pool) expireDPC() {
	now := p.k.eng.Now()
	for len(p.timers) > 0 && p.timers[0].due <= now {
		t := heap.Pop(&p.timers).(*TPTimer)
		t.index = -1
		p.k.tr.Log(trace.Record{
			T: now, Op: trace.OpExpire, TimerID: t.id,
			PID: p.pid, Origin: t.originID, Flags: trace.FlagUser,
		})
		if t.period > 0 {
			t.due = now.Add(t.period)
			t.latest = t.due.Add(t.window)
			p.nextSeq++
			t.seq = p.nextSeq
			heap.Push(&p.timers, t)
		}
		t.cb()
	}
	p.rearmKernelTimer()
}

// Len reports the number of armed threadpool timers.
func (p *Pool) Len() int { return len(p.timers) }

type tpHeap []*TPTimer

func (h tpHeap) Len() int { return len(h) }
func (h tpHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h tpHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *tpHeap) Push(x any) {
	t := x.(*TPTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *tpHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
