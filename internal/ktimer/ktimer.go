// Package ktimer reimplements the Windows Vista timer stack the paper
// instruments (Section 2.2), from the NT kernel's KTIMER objects upward
// through the layers that multiplex them:
//
//   - KTIMER ring processed by the clock-interrupt expiry DPC
//     (KeSetTimer / KeCancelTimer),
//   - dispatcher objects and thread waits with the dedicated per-thread
//     wait timer fast path (WaitForSingleObject),
//   - the NTDLL threadpool timer: a user-level timer ring multiplexed over
//     a single kernel timer (SetThreadpoolTimer), with coalescing windows,
//   - Win32 GUI timers (SetTimer/KillTimer) delivering WM_TIMER messages
//     through a message queue,
//   - the Winsock2 select path: a blocking ioctl on afd.sys that allocates
//     a fresh KTIMER per call.
//
// The distinctive property the paper highlights — Vista timer structures
// are mostly allocated on the fly and never reused — holds here: every
// dynamically created KTimer gets a fresh trace identity.
package ktimer

import (
	"timerstudy/internal/sim"
	"timerstudy/internal/timerwheel"
	"timerstudy/internal/trace"
)

// ClockInterval is Vista's default clock interrupt period: 15.625 ms
// (64 Hz).
const ClockInterval = sim.Duration(15625 * int64(sim.Microsecond))

// timeToTick maps an absolute due time to the first clock interrupt at or
// after it — NT delivers a timer at the first tick where DueTime has passed.
func timeToTick(t sim.Time) uint64 {
	tick := uint64(t) / uint64(ClockInterval)
	if sim.Time(tick)*sim.Time(ClockInterval) < t {
		tick++
	}
	return tick
}

func tickToTime(tick uint64) sim.Time { return sim.Time(tick) * sim.Time(ClockInterval) }

// KTimer is the analog of the NT kernel's KTIMER. It is a dispatcher
// object: threads can wait on it, and it may also carry an expiry DPC and a
// recurring period.
type KTimer struct {
	Object // embedded dispatcher object: signaled state + waiters

	k      *Kernel
	entry  timerwheel.Timer
	due    sim.Time
	period sim.Duration
	dpc    func()
	id     uint64

	originID uint32
	origin   string
	pid      int32
	flags    trace.Flags
}

// ID returns the timer's trace identity. Fresh for every allocation.
func (t *KTimer) ID() uint64 { return t.id }

// Pending reports whether the timer is in the timer table.
func (t *KTimer) Pending() bool { return t.entry.Pending() }

// SetDPC binds or replaces the expiry DPC.
func (t *KTimer) SetDPC(fn func()) { t.dpc = fn }

// Kernel holds the NT timer machinery: the timer table (a hashed wheel, as
// in NT), the DPC queue, and the clock interrupt.
type Kernel struct {
	eng    *sim.Engine
	tr     trace.Sink
	table  timerwheel.Queue
	nextID uint64
	dpcs   []func()
	inDPC  bool

	// dynamicTick skips idle clock interrupts, jumping straight to the
	// next due timer — Section 1: "Vista also dynamically adjusts the
	// frequency of the periodic timer interrupt, processing timers
	// according to observed CPU load."
	dynamicTick bool
	nextDue     dueHeap
	interruptEv sim.Event
	interruptFn func() // k.clockInterrupt bound once; arming must not allocate

	// ClockInterrupts counts ISR invocations; ExpiredCount counts fired
	// timers.
	ClockInterrupts uint64
	ExpiredCount    uint64
}

// KernelOption configures the NT timer machinery.
type KernelOption func(*Kernel)

// WithDynamicTick enables Vista's load-adaptive clock interrupt: interrupts
// with no due timers are skipped entirely.
func WithDynamicTick(enabled bool) KernelOption {
	return func(k *Kernel) { k.dynamicTick = enabled }
}

// NewKernel builds the timer machinery and starts the clock interrupt.
func NewKernel(eng *sim.Engine, tr trace.Sink, opts ...KernelOption) *Kernel {
	k := &Kernel{eng: eng, tr: tr, table: timerwheel.NewHashedWheel(256)}
	for _, o := range opts {
		o(k)
	}
	k.interruptFn = k.clockInterrupt
	k.scheduleInterrupt()
	return k
}

// dueHeap tracks pending due-ticks for the dynamic tick's next-interrupt
// computation (entries may be stale; validated by comparing to the clock).
type dueHeap []uint64

func (h *dueHeap) push(tick uint64) {
	*h = append(*h, tick)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *dueHeap) pop() {
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && (*h)[l] < (*h)[m] {
			m = l
		}
		if r < n && (*h)[r] < (*h)[m] {
			m = r
		}
		if m == i {
			return
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// Engine exposes the underlying engine (used by upper layers for message
// loop latencies).
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Trace exposes the trace buffer for the upper layers.
func (k *Kernel) Trace() trace.Sink { return k.tr }

// NewTimer allocates a KTIMER with its attribution. Most Vista code paths
// allocate these on the fly; allocating is free of trace records (the paper
// instruments Set/Cancel and expiry, not allocation).
func (k *Kernel) NewTimer(origin string, pid int32, user bool, dpc func()) *KTimer {
	k.nextID++
	t := &KTimer{
		k: k, dpc: dpc, id: k.nextID,
		origin: origin, originID: k.tr.Origin(origin), pid: pid,
	}
	if user {
		t.flags = trace.FlagUser
	}
	t.Object.init()
	return t
}

// SetTimer is KeSetTimer(Ex): arm the timer for an absolute due time with an
// optional recurring period. Re-setting a pending timer moves it. The
// signaled state resets, as for the real dispatcher object.
func (k *Kernel) SetTimer(t *KTimer, due sim.Time, period sim.Duration, absolute bool) {
	t.due = due
	t.period = period
	t.signaled = false
	flags := t.flags
	if absolute {
		flags |= trace.FlagAbsolute
	}
	if period > 0 {
		flags |= trace.FlagPeriodic
	}
	k.table.Schedule(&t.entry, timeToTick(due))
	t.entry.Payload = t
	if k.dynamicTick {
		k.nextDue.push(timeToTick(due))
		k.retick()
	}
	k.tr.Log(trace.Record{
		T: k.eng.Now(), Op: trace.OpSet, TimerID: t.id,
		Timeout: int64(due.Sub(k.eng.Now())),
		PID:     t.pid, Origin: t.originID, Flags: flags,
	})
}

// SetTimerIn arms the timer for a relative delay — the negative-DueTime form
// of KeSetTimer.
func (k *Kernel) SetTimerIn(t *KTimer, d sim.Duration, period sim.Duration) {
	if d < 0 {
		d = 0
	}
	k.SetTimer(t, k.eng.Now().Add(d), period, false)
}

// CancelTimer is KeCancelTimer. Always an access; returns whether the timer
// was pending.
func (k *Kernel) CancelTimer(t *KTimer) bool {
	active := t.entry.Pending()
	if active {
		_ = k.table.Cancel(&t.entry)
	}
	k.tr.Log(trace.Record{
		T: k.eng.Now(), Op: trace.OpCancel, TimerID: t.id,
		PID: t.pid, Origin: t.originID, Flags: t.flags,
	})
	return active
}

// QueueDPC appends a deferred procedure call; the queue drains at the end of
// the current interrupt (or immediately if none is in progress).
func (k *Kernel) QueueDPC(fn func()) {
	k.dpcs = append(k.dpcs, fn)
	if !k.inDPC {
		k.drainDPCs()
	}
}

func (k *Kernel) drainDPCs() {
	k.inDPC = true
	for len(k.dpcs) > 0 {
		fn := k.dpcs[0]
		k.dpcs = k.dpcs[:copy(k.dpcs, k.dpcs[1:])]
		fn()
	}
	k.inDPC = false
}

func (k *Kernel) scheduleInterrupt() {
	cur := uint64(k.eng.Now()) / uint64(ClockInterval)
	nextTick := cur + 1
	if k.dynamicTick {
		// Skip idle interrupts: jump to the earliest pending due tick.
		for len(k.nextDue) > 0 && k.nextDue[0] <= cur {
			k.nextDue.pop()
		}
		if len(k.nextDue) == 0 {
			// Nothing pending: no interrupt at all until the next set.
			k.interruptEv = sim.Event{}
			return
		}
		nextTick = k.nextDue[0]
	}
	k.interruptEv = k.eng.At(tickToTime(nextTick), "ktimer:clock-interrupt", k.interruptFn)
}

// retick pulls the scheduled interrupt forward when a newly set timer is
// due before it (or when no interrupt was armed at all).
func (k *Kernel) retick() {
	if k.inDPC {
		return // clockInterrupt reschedules on exit
	}
	cur := uint64(k.eng.Now()) / uint64(ClockInterval)
	for len(k.nextDue) > 0 && k.nextDue[0] <= cur {
		k.nextDue.pop()
	}
	if len(k.nextDue) == 0 {
		return
	}
	due := tickToTime(k.nextDue[0])
	if !k.interruptEv.Pending() {
		k.interruptEv = k.eng.At(due, "ktimer:clock-interrupt", k.interruptFn)
		return
	}
	if k.interruptEv.When() > due {
		k.eng.Reschedule(k.interruptEv, due)
	}
}

// clockInterrupt is the ISR + timer expiry DPC: it pops due timers from the
// table, signals them, queues their DPCs, re-arms periodic ones, then drains
// the DPC queue.
func (k *Kernel) clockInterrupt() {
	k.ClockInterrupts++
	tick := uint64(k.eng.Now()) / uint64(ClockInterval)
	k.inDPC = true
	k.table.Advance(tick, func(e *timerwheel.Timer) {
		t := e.Payload.(*KTimer)
		k.ExpiredCount++
		k.tr.Log(trace.Record{
			T: k.eng.Now(), Op: trace.OpExpire, TimerID: t.id,
			PID: t.pid, Origin: t.originID, Flags: t.flags,
		})
		t.signal(k)
		if t.dpc != nil {
			k.dpcs = append(k.dpcs, t.dpc)
		}
		if t.period > 0 {
			// Periodic re-arm happens inside the kernel without a fresh
			// KeSetTimer trace record, matching NT (the expiry DPC re-queues
			// it); the paper sees one set and many expiries for these.
			t.due = k.eng.Now().Add(t.period)
			k.table.Schedule(&t.entry, timeToTick(t.due))
			t.entry.Payload = t
			if k.dynamicTick {
				k.nextDue.push(timeToTick(t.due))
			}
		}
	})
	k.inDPC = false
	k.drainDPCs()
	k.scheduleInterrupt()
}
