package ktimer

import (
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

func TestWaitableTimerAPCAndWait(t *testing.T) {
	eng, _, k := newTestKernel()
	w := k.CreateWaitableTimer(100, "app.exe", true)
	apcRan := false
	w.Set(50*sim.Millisecond, 0, func() { apcRan = true })
	th := k.NewThread(100, "app.exe")
	var result WaitResult = -1
	th.WaitFor(5*sim.Second, func(r WaitResult) { result = r }, w.Object())
	eng.Run(sim.Time(sim.Second))
	if !apcRan {
		t.Fatal("completion routine did not run")
	}
	if result != WaitSatisfied {
		t.Fatalf("wait result = %v", result)
	}
	// Manual reset: stays signaled; a later wait completes inline.
	if !w.Signaled() {
		t.Fatal("manual-reset timer not signaled")
	}
	inline := false
	th.WaitFor(sim.Second, func(r WaitResult) { inline = r == WaitSatisfied }, w.Object())
	if !inline {
		t.Fatal("second wait on a signaled manual-reset timer blocked")
	}
}

func TestWaitableTimerAutoResetReleasesOneWaiter(t *testing.T) {
	eng, _, k := newTestKernel()
	w := k.CreateWaitableTimer(100, "app.exe", false)
	w.Set(50*sim.Millisecond, 0, nil)
	results := map[string]WaitResult{}
	for _, name := range []string{"t1", "t2"} {
		name := name
		th := k.NewThread(100, "app.exe!"+name)
		th.WaitFor(sim.Second, func(r WaitResult) { results[name] = r }, w.Object())
	}
	eng.Run(sim.Time(5 * sim.Second))
	satisfied, timedOut := 0, 0
	for _, r := range results {
		switch r {
		case WaitSatisfied:
			satisfied++
		case WaitTimeout:
			timedOut++
		}
	}
	if satisfied != 1 || timedOut != 1 {
		t.Fatalf("auto-reset released %d waiters (timeouts %d)", satisfied, timedOut)
	}
	if w.Signaled() {
		t.Fatal("auto-reset timer stayed signaled after releasing a waiter")
	}
}

func TestWaitableTimerPeriodic(t *testing.T) {
	eng, _, k := newTestKernel()
	w := k.CreateWaitableTimer(100, "app.exe", false)
	fires := 0
	w.Set(100*sim.Millisecond, 100*sim.Millisecond, func() { fires++ })
	eng.Run(sim.Time(sim.Second))
	if fires < 8 {
		t.Fatalf("fires = %d", fires)
	}
	if !w.Cancel() {
		t.Fatal("cancel failed")
	}
	n := fires
	eng.Run(sim.Time(2 * sim.Second))
	if fires != n {
		t.Fatal("fired after cancel")
	}
}

func TestWaitableTimerCancelLeavesSignalState(t *testing.T) {
	eng, tr, k := newTestKernel()
	w := k.CreateWaitableTimer(100, "app.exe", true)
	w.Set(50*sim.Millisecond, 0, nil)
	eng.Run(sim.Time(sim.Second))
	if !w.Signaled() {
		t.Fatal("not signaled after expiry")
	}
	w.Set(sim.Second, 0, nil) // re-set clears signaled
	if w.Signaled() {
		t.Fatal("set did not clear signal")
	}
	w.Cancel()
	if w.Signaled() {
		t.Fatal("cancel changed signal state")
	}
	if got := tr.Counters().ByOp[trace.OpCancel]; got != 1 {
		t.Fatalf("cancel records = %d", got)
	}
}

func TestAutoResetSignalWithNoWaitersLatches(t *testing.T) {
	_, _, k := newTestKernel()
	obj := NewAutoResetEvent()
	k.Signal(obj)
	if !obj.Signaled() {
		t.Fatal("signal with no waiters must latch")
	}
	th := k.NewThread(1, "a")
	got := false
	th.WaitFor(sim.Second, func(r WaitResult) { got = r == WaitSatisfied }, obj)
	if !got {
		t.Fatal("latched signal not consumed inline")
	}
	if obj.Signaled() {
		t.Fatal("auto-reset not cleared by the consuming wait")
	}
}
