package ktimer

import (
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

func TestSetTimerAbsolute(t *testing.T) {
	eng, tr, k := newTestKernel()
	var at sim.Time
	kt := k.NewTimer("driver/abs", 0, false, nil)
	kt.SetDPC(func() { at = eng.Now() })
	k.SetTimer(kt, sim.Time(100*sim.Millisecond), 0, true)
	eng.Run(sim.Time(sim.Second))
	want := sim.Time(7 * ClockInterval) // first interrupt ≥ 100 ms = 109.375 ms
	if at != want {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for _, r := range tr.Records() {
		if r.Op == trace.OpSet && r.Flags&trace.FlagAbsolute == 0 {
			t.Fatal("absolute set not flagged")
		}
	}
}

func TestResetPendingTimerMoves(t *testing.T) {
	eng, tr, k := newTestKernel()
	fires := 0
	kt := k.NewTimer("driver/x", 0, false, nil)
	kt.SetDPC(func() { fires++ })
	k.SetTimerIn(kt, 50*sim.Millisecond, 0)
	k.SetTimerIn(kt, 500*sim.Millisecond, 0) // move, not duplicate
	eng.Run(sim.Time(sim.Second))
	if fires != 1 {
		t.Fatalf("fires = %d", fires)
	}
	if got := tr.Counters().ByOp[trace.OpSet]; got != 2 {
		t.Fatalf("sets = %d", got)
	}
}

func TestDoubleWaitPanics(t *testing.T) {
	_, _, k := newTestKernel()
	th := k.NewThread(1, "a")
	obj := NewEvent()
	th.WaitFor(sim.Second, func(WaitResult) {}, obj)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double wait")
		}
	}()
	th.WaitFor(sim.Second, func(WaitResult) {}, obj)
}

func TestZeroWaitCompletesInline(t *testing.T) {
	_, tr, k := newTestKernel()
	th := k.NewThread(1, "a")
	got := false
	th.WaitFor(0, func(r WaitResult) { got = r == WaitTimeout })
	if !got {
		t.Fatal("zero wait did not complete inline")
	}
	c := tr.Counters()
	if c.ByOp[trace.OpWait] != 1 || c.ByOp[trace.OpExpire] != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// The thread can immediately wait again: the zero wait left no state.
	th.WaitFor(0, func(WaitResult) {})
}

func TestMessageQueueCoalescesWMTimer(t *testing.T) {
	eng, _, k := newTestKernel()
	q := k.NewMessageQueue(1, "app.exe")
	// A dispatch loop stalled longer than the timer period: expiries must
	// collapse into pending messages rather than queueing up.
	q.DispatchLatency = 200 * sim.Millisecond
	fires := 0
	q.SetTimer(1, 20*sim.Millisecond, func() { fires++ })
	eng.Run(sim.Time(2 * sim.Second))
	if q.Coalesced == 0 {
		t.Fatal("no WM_TIMER coalescing under a slow dispatch loop")
	}
	if fires == 0 {
		t.Fatal("nothing dispatched")
	}
	if uint64(fires) != q.Dispatched {
		t.Fatalf("fires=%d dispatched=%d", fires, q.Dispatched)
	}
}

func TestThreadpoolCancelAllDisarmsKernelTimer(t *testing.T) {
	eng, _, k := newTestKernel()
	pool := k.NewPool(1, "svc")
	tps := make([]*TPTimer, 3)
	for i := range tps {
		tps[i] = pool.NewTimer("svc/t", func() {})
		tps[i].Set(sim.Second, 0, 0)
	}
	for _, tp := range tps {
		tp.Cancel()
	}
	before := k.ExpiredCount
	eng.Run(sim.Time(5 * sim.Second))
	if k.ExpiredCount != before {
		t.Fatal("kernel timer fired after all threadpool timers were canceled")
	}
}

func TestThreadpoolResetPendingMoves(t *testing.T) {
	eng, _, k := newTestKernel()
	pool := k.NewPool(1, "svc")
	var at sim.Time
	tp := pool.NewTimer("svc/t", func() { at = eng.Now() })
	tp.Set(100*sim.Millisecond, 0, 0)
	tp.Set(sim.Second, 0, 0)
	eng.Run(sim.Time(5 * sim.Second))
	if at < sim.Time(sim.Second) {
		t.Fatalf("fired at %v despite re-set", at)
	}
	if pool.Len() != 0 {
		t.Fatalf("pool len = %d", pool.Len())
	}
}

func TestSignalBeforeWaitCompletesNextWaitInline(t *testing.T) {
	eng, _, k := newTestKernel()
	obj := NewEvent()
	k.Signal(obj)
	th := k.NewThread(1, "a")
	n := 0
	th.WaitFor(sim.Second, func(WaitResult) { n++ }, obj)
	if n != 1 {
		t.Fatal("signaled object did not satisfy immediately")
	}
	obj.Reset()
	th.WaitFor(50*sim.Millisecond, func(WaitResult) { n++ }, obj)
	eng.Run(sim.Time(sim.Second))
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
}

func TestClockInterruptCadence(t *testing.T) {
	eng, _, k := newTestKernel()
	eng.Run(sim.Time(sim.Second))
	// 64 interrupts per second at 15.625 ms.
	if k.ClockInterrupts < 63 || k.ClockInterrupts > 65 {
		t.Fatalf("interrupts = %d", k.ClockInterrupts)
	}
}

func TestDynamicTickSkipsIdleInterrupts(t *testing.T) {
	run := func(dynamic bool) uint64 {
		eng := sim.NewEngine(1)
		k := NewKernel(eng, trace.NewBuffer(0), WithDynamicTick(dynamic))
		fires := 0
		kt := k.NewTimer("driver/x", 0, false, nil)
		kt.SetDPC(func() { fires++ })
		k.SetTimerIn(kt, 5*sim.Second, 0)
		eng.Run(sim.Time(30 * sim.Second))
		if fires != 1 {
			t.Fatalf("fires = %d", fires)
		}
		return k.ClockInterrupts
	}
	periodic := run(false)
	dynamic := run(true)
	if periodic < 30*64-5 {
		t.Fatalf("periodic interrupts = %d", periodic)
	}
	if dynamic > 3 {
		t.Fatalf("dynamic interrupts = %d, want ≈1", dynamic)
	}
}

func TestDynamicTickFiresOnTime(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, trace.NewBuffer(0), WithDynamicTick(true))
	var at sim.Time
	kt := k.NewTimer("driver/x", 0, false, nil)
	kt.SetDPC(func() { at = eng.Now() })
	k.SetTimerIn(kt, 20*sim.Millisecond, 0)
	eng.Run(sim.Time(sim.Second))
	if at != sim.Time(2*ClockInterval) {
		t.Fatalf("fired at %v", at)
	}
	// A later, nearer timer pulls the interrupt forward.
	var at2 sim.Time
	far := k.NewTimer("driver/far", 0, false, nil)
	far.SetDPC(func() {})
	k.SetTimerIn(far, 10*sim.Second, 0)
	near := k.NewTimer("driver/near", 0, false, nil)
	near.SetDPC(func() { at2 = eng.Now() })
	k.SetTimerIn(near, 50*sim.Millisecond, 0)
	eng.Run(eng.Now().Add(sim.Second))
	if at2 == 0 || at2 > sim.Time(sim.Second)+sim.Time(100*sim.Millisecond) {
		t.Fatalf("near timer at %v", at2)
	}
}

func TestDynamicTickPeriodicTimer(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, trace.NewBuffer(0), WithDynamicTick(true))
	fires := 0
	kt := k.NewTimer("driver/p", 0, false, nil)
	kt.SetDPC(func() { fires++ })
	k.SetTimerIn(kt, 100*sim.Millisecond, 100*sim.Millisecond)
	eng.Run(sim.Time(sim.Second))
	if fires < 8 {
		t.Fatalf("fires = %d: periodic re-arm lost under dynamic tick", fires)
	}
}

// TestKTimerAgainstReferenceModel drives the NT timer machinery with random
// set/cancel operations and checks every delivery against a naive model:
// a timer fires at the first clock interrupt at or after its due time,
// unless canceled or re-set first.
func TestKTimerAgainstReferenceModel(t *testing.T) {
	eng := sim.NewEngine(17)
	k := NewKernel(eng, trace.NewBuffer(0))
	rng := eng.Rand()

	type state struct {
		kt  *KTimer
		due sim.Time // 0 when idle
	}
	timers := make([]*state, 30)
	for i := range timers {
		st := &state{}
		st.kt = k.NewTimer("fuzz", 0, false, nil)
		st.kt.SetDPC(func() {
			now := eng.Now()
			if st.due == 0 {
				t.Error("fired while idle")
				return
			}
			if now < st.due {
				t.Errorf("fired at %v, due %v (early)", now, st.due)
			}
			// Delivery at the first interrupt >= due: lateness < one
			// clock interval past that interrupt.
			firstTick := tickToTime(timeToTick(st.due))
			if now != firstTick {
				t.Errorf("fired at %v, want interrupt %v for due %v", now, firstTick, st.due)
			}
			st.due = 0
		})
		timers[i] = st
	}
	var step func()
	step = func() {
		st := timers[rng.Intn(len(timers))]
		switch rng.Intn(3) {
		case 0, 1:
			d := sim.Duration(rng.Intn(int(2*sim.Second))) + sim.Millisecond
			st.due = eng.Now().Add(d)
			k.SetTimerIn(st.kt, d, 0)
		case 2:
			if k.CancelTimer(st.kt) {
				st.due = 0
			}
		}
		if eng.Now() < sim.Time(20*sim.Second) {
			eng.After(sim.Duration(rng.Intn(int(50*sim.Millisecond)))+1, "fuzz", step)
		}
	}
	eng.After(0, "fuzz", step)
	eng.Run(sim.Time(30 * sim.Second))
	for i, st := range timers {
		if st.due != 0 && st.due < eng.Now().Add(-sim.Second) {
			t.Errorf("timer %d lost: due %v, now %v", i, st.due, eng.Now())
		}
	}
}
