package ktimer

import (
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Object is an NT dispatcher object: anything a thread can wait on. KTimer
// embeds it; events and processes in the workload models use it directly.
// Auto-reset (synchronization) objects release exactly one waiter per
// signal and clear themselves; manual-reset objects stay signaled.
type Object struct {
	signaled  bool
	autoReset bool
	waiters   []*wait
}

func (o *Object) init() { o.waiters = nil }

// NewAutoResetEvent returns a synchronization-style event: one waiter is
// released per signal.
func NewAutoResetEvent() *Object {
	o := &Object{autoReset: true}
	o.init()
	return o
}

// NewEvent returns a manual-reset event-style dispatcher object.
func NewEvent() *Object {
	o := &Object{}
	o.init()
	return o
}

// Signaled reports the object's state.
func (o *Object) Signaled() bool { return o.signaled }

// signal sets the object and satisfies waiters: all of them for
// manual-reset objects, exactly one (consuming the signal) for auto-reset.
func (o *Object) signal(k *Kernel) {
	if o.autoReset {
		if len(o.waiters) > 0 {
			w := o.waiters[0]
			o.signaled = false
			w.satisfy(k)
			return
		}
		o.signaled = true
		return
	}
	o.signaled = true
	waiters := o.waiters
	o.waiters = nil
	for _, w := range waiters {
		w.satisfy(k)
	}
}

// Reset clears the signaled state (ResetEvent).
func (o *Object) Reset() { o.signaled = false }

// Signal sets an object and wakes its waiters (SetEvent).
func (k *Kernel) Signal(o *Object) { o.signal(k) }

// WaitResult is the outcome of a timed wait.
type WaitResult int

const (
	// WaitSatisfied: the object was signaled before the timeout.
	WaitSatisfied WaitResult = iota
	// WaitTimeout: the timeout elapsed first.
	WaitTimeout
)

// Thread models the part of an NT thread the timer study cares about: its
// identity and its dedicated wait KTIMER (Section 2.2: "wait timeouts are
// implemented using a dedicated KTIMER object in the kernel's thread
// datastructure and have a fast-path insertion into the kernel timer ring").
type Thread struct {
	// PID is the owning process.
	PID int32
	// Name labels trace origins, e.g. "outlook.exe!ui".
	Name string

	k         *Kernel
	waitTimer *KTimer
	current   *wait
}

// NewThread creates a thread with its dedicated wait timer.
func (k *Kernel) NewThread(pid int32, name string) *Thread {
	th := &Thread{PID: pid, Name: name, k: k}
	th.waitTimer = k.NewTimer(name+"/wait", pid, true, nil)
	return th
}

// wait is one in-progress timed wait.
type wait struct {
	th      *Thread
	objs    []*Object
	cb      func(WaitResult)
	done    bool
	started sim.Time
	timeout sim.Duration
}

func (w *wait) satisfy(k *Kernel) {
	if w.done {
		return
	}
	w.done = true
	w.detach()
	th := w.th
	th.current = nil
	// Cancel the wait timer; the FlagSatisfied cancel record is how the
	// Vista instrumentation distinguishes satisfied waits from timeouts.
	if th.waitTimer.Pending() {
		_ = k.table.Cancel(&th.waitTimer.entry)
	}
	k.tr.Log(trace.Record{
		T: k.eng.Now(), Op: trace.OpCancel, TimerID: th.waitTimer.id,
		PID: th.PID, Origin: th.waitTimer.originID,
		Flags: th.waitTimer.flags | trace.FlagSatisfied,
	})
	cb := w.cb
	w.cb = nil
	cb(WaitSatisfied)
}

func (w *wait) expire(k *Kernel) {
	if w.done {
		return
	}
	w.done = true
	w.detach()
	w.th.current = nil
	cb := w.cb
	w.cb = nil
	cb(WaitTimeout)
}

// detach removes the wait from all objects' waiter lists.
func (w *wait) detach() {
	for _, o := range w.objs {
		for i, x := range o.waiters {
			if x == w {
				o.waiters = append(o.waiters[:i], o.waiters[i+1:]...)
				break
			}
		}
	}
}

// Forever is the "no timeout" sentinel for waits.
const Forever = sim.Duration(1<<62 - 1)

// WaitFor is WaitForSingleObject/WaitForMultipleObjects (wait-any): block
// the thread on the objects with a relative timeout, invoking cb exactly
// once with the outcome. A wait on an already-signaled object completes
// immediately without arming the timer. The continuation-passing form
// replaces real blocking: the simulation is event-driven.
func (th *Thread) WaitFor(timeout sim.Duration, cb func(WaitResult), objs ...*Object) {
	if th.current != nil {
		panic("ktimer: thread already waiting")
	}
	k := th.k
	for _, o := range objs {
		if o.signaled {
			if o.autoReset {
				o.signaled = false // the wait consumes the signal
			}
			cb(WaitSatisfied)
			return
		}
	}
	if timeout <= 0 {
		// Zero-timeout wait: a poll. Returns WAIT_TIMEOUT immediately; the
		// zero value still reaches the trace (Figure 7's Vista workloads
		// are full of them), paired with an immediate expiry.
		wt := th.waitTimer
		k.tr.Log(trace.Record{
			T: k.eng.Now(), Op: trace.OpWait, TimerID: wt.id, Timeout: 0,
			PID: th.PID, Origin: wt.originID, Flags: wt.flags,
		})
		k.tr.Log(trace.Record{
			T: k.eng.Now(), Op: trace.OpExpire, TimerID: wt.id,
			PID: th.PID, Origin: wt.originID, Flags: wt.flags,
		})
		cb(WaitTimeout)
		return
	}
	w := &wait{th: th, objs: objs, cb: cb, started: k.eng.Now(), timeout: timeout}
	th.current = w
	for _, o := range objs {
		o.waiters = append(o.waiters, w)
	}
	if timeout >= Forever {
		// Infinite waits never touch the timer subsystem.
		return
	}
	// Fast-path insertion of the thread's dedicated KTIMER; traced as
	// OpWait with the user-supplied timeout (Section 3.3: "a single event
	// on thread unblock which logs ... the user-supplied timeout parameter,
	// and a boolean indicating whether the wait was satisfied or timed
	// out" — we log the arming side too, which subsumes it).
	wt := th.waitTimer
	wt.dpc = func() { w.expire(k) }
	wt.due = k.eng.Now().Add(timeout)
	k.table.Schedule(&wt.entry, timeToTick(wt.due))
	wt.entry.Payload = wt
	k.tr.Log(trace.Record{
		T: k.eng.Now(), Op: trace.OpWait, TimerID: wt.id, Timeout: int64(timeout),
		PID: th.PID, Origin: wt.originID, Flags: wt.flags,
	})
}

// Sleep is KeDelayExecutionThread / Win32 Sleep: a wait on nothing with a
// timeout.
func (th *Thread) Sleep(d sim.Duration, cb func()) {
	th.WaitFor(d, func(WaitResult) { cb() })
}
