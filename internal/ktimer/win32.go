package ktimer

import (
	"timerstudy/internal/sim"
)

// MessageQueue models a GUI thread's message queue and dispatch loop, the
// layer behind Win32 SetTimer/KillTimer (Section 2.2): kernel timer expiry
// posts a WM_TIMER message, which the message loop delivers some time later.
// WM_TIMER is generated lazily — a timer ID with a message already pending
// posts no duplicate, which is why busy GUI threads see coalesced ticks.
type MessageQueue struct {
	k      *Kernel
	pid    int32
	name   string
	evName string // name+":wm_timer", interned once: post runs per expiry
	timers map[int]*gui
	// DispatchLatency bounds the simulated delay between posting a message
	// and the loop dispatching it; actual delays are uniform in
	// (0, DispatchLatency]. Default 2 ms.
	DispatchLatency sim.Duration
	// Dispatched counts delivered WM_TIMER messages; Coalesced counts
	// expiries swallowed because a message was already pending.
	Dispatched uint64
	Coalesced  uint64
}

type gui struct {
	id         int
	kt         *KTimer
	elapse     sim.Duration
	proc       func()
	dispatchFn func() // bound at SetTimer; post must not allocate per expiry
	posted     bool
	dead       bool
	queue      *MessageQueue
	originS    string
}

// NewMessageQueue creates the GUI timer machinery for a process's UI thread.
func (k *Kernel) NewMessageQueue(pid int32, processName string) *MessageQueue {
	return &MessageQueue{
		k: k, pid: pid, name: processName,
		evName:          processName + ":wm_timer",
		timers:          make(map[int]*gui),
		DispatchLatency: 2 * sim.Millisecond,
	}
}

// SetTimer is Win32 SetTimer: a *periodic* USER timer firing every elapse
// until killed. Reusing an ID replaces the existing timer, as in Win32.
func (q *MessageQueue) SetTimer(id int, elapse sim.Duration, proc func()) {
	if old, ok := q.timers[id]; ok {
		old.dead = true
		_ = q.k.CancelTimer(old.kt)
	}
	// USER clamps tiny periods (real minimum is USER_TIMER_MINIMUM=10 ms;
	// Vista-era apps routinely pass 1 ms and get clock-granularity ticks,
	// so we clamp only to >0).
	if elapse <= 0 {
		elapse = sim.Millisecond
	}
	g := &gui{id: id, elapse: elapse, proc: proc, queue: q,
		originS: q.name + "/wm_timer"}
	g.dispatchFn = func() {
		g.posted = false
		if g.dead {
			return
		}
		q.Dispatched++
		g.proc()
	}
	g.kt = q.k.NewTimer(g.originS, q.pid, true, nil)
	g.kt.dpc = func() { q.post(g) }
	q.k.SetTimerIn(g.kt, elapse, elapse)
	q.timers[id] = g
}

// KillTimer cancels a GUI timer. Unknown IDs return false.
func (q *MessageQueue) KillTimer(id int) bool {
	g, ok := q.timers[id]
	if !ok {
		return false
	}
	g.dead = true
	delete(q.timers, id)
	_ = q.k.CancelTimer(g.kt)
	return true
}

// post inserts a WM_TIMER message unless one is already pending for this
// timer ID.
func (q *MessageQueue) post(g *gui) {
	if g.dead {
		return
	}
	if g.posted {
		q.Coalesced++
		return
	}
	g.posted = true
	delay := sim.Duration(q.k.eng.Rand().Int63n(int64(q.DispatchLatency))) + 1
	q.k.eng.After(delay, q.evName, g.dispatchFn)
}

// AfdSelect is the Winsock2 select path (Section 2.2): "implemented as a
// blocking ioctl on the afd.sys device driver, which allocates a fresh
// KTIMER object and requests a DPC callback at the appropriate expiry time
// to complete the ioctl". The returned cancel function completes the select
// early (socket activity), canceling the timer.
func (k *Kernel) AfdSelect(pid int32, processName string, timeout sim.Duration, cb func(timedOut bool)) (cancel func()) {
	t := k.NewTimer(processName+"/afd-select", pid, true, nil)
	done := false
	t.dpc = func() {
		if done {
			return
		}
		done = true
		cb(true)
	}
	k.SetTimerIn(t, timeout, 0)
	return func() {
		if done {
			return
		}
		done = true
		_ = k.CancelTimer(t)
		cb(false)
	}
}

// NtSetTimer is the NT API timer path (NtCreateTimer/NtSetTimer): like
// KeSetTimer but delivering via APC. For trace purposes the difference is
// only the origin; the APC is modelled as a direct callback. A fresh kernel
// object backs every NT timer handle.
func (k *Kernel) NtSetTimer(pid int32, origin string, timeout sim.Duration, apc func()) *KTimer {
	t := k.NewTimer(origin, pid, true, nil)
	t.dpc = apc
	k.SetTimerIn(t, timeout, 0)
	return t
}

// NtCancelTimer cancels an NT timer handle.
func (k *Kernel) NtCancelTimer(t *KTimer) bool { return k.CancelTimer(t) }
