package timerwheel

// Heap is a binary min-heap of timers: O(log n) Schedule and Cancel, O(log n)
// per fired timer. This is the structure behind Linux hrtimers (which use a
// red-black tree with the same asymptotics) and Go's own runtime timers; it
// is the "comparison-based" point in the ablation.
type Heap struct {
	items []*Timer
	seq   uint64
	last  uint64
}

// NewHeap returns an empty heap queue.
func NewHeap() *Heap { return &Heap{} }

// Name implements Queue.
func (h *Heap) Name() string { return "binary-heap" }

// Len implements Queue.
func (h *Heap) Len() int { return len(h.items) }

func (h *Heap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.expires != b.expires {
		return a.expires < b.expires
	}
	return a.seq < b.seq
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *Heap) removeAt(i int) *Timer {
	t := h.items[i]
	last := len(h.items) - 1
	h.swap(i, last)
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	t.queue = nil
	t.index = 0
	return t
}

// Schedule implements Queue.
func (h *Heap) Schedule(t *Timer, expires uint64) {
	if expires <= h.last {
		expires = h.last + 1 // fire on the next tick, kernel-style rounding
	}
	if t.queue == Queue(h) {
		// Move in place: cheaper than remove+insert.
		h.seq++
		t.expires = expires
		t.seq = h.seq
		h.down(t.index)
		h.up(t.index)
		return
	}
	if t.queue != nil {
		_ = t.queue.Cancel(t)
	}
	h.seq++
	t.expires = expires
	t.seq = h.seq
	t.queue = h
	t.index = len(h.items)
	h.items = append(h.items, t)
	h.up(t.index)
}

// Cancel implements Queue.
func (h *Heap) Cancel(t *Timer) bool {
	if t.queue != Queue(h) {
		return false
	}
	h.removeAt(t.index)
	return true
}

// Advance implements Queue.
func (h *Heap) Advance(now uint64, fire func(*Timer)) int {
	fired := 0
	for len(h.items) > 0 && h.items[0].expires <= now {
		t := h.removeAt(0)
		fired++
		fire(t)
	}
	if now > h.last {
		h.last = now
	}
	return fired
}
