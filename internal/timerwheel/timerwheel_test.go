package timerwheel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func allQueues() map[string]Queue {
	return map[string]Queue{
		"sorted-list":        NewSortedList(),
		"binary-heap":        NewHeap(),
		"simple-wheel":       NewSimpleWheel(64),
		"hashed-wheel":       NewHashedWheel(256),
		"hierarchical-wheel": NewHierarchicalWheel(),
	}
}

func TestBasicScheduleFire(t *testing.T) {
	for name, q := range allQueues() {
		t.Run(name, func(t *testing.T) {
			var fired []uint64
			timers := make([]*Timer, 5)
			for i := range timers {
				timers[i] = &Timer{Payload: uint64(i)}
			}
			q.Schedule(timers[0], 10)
			q.Schedule(timers[1], 5)
			q.Schedule(timers[2], 10)
			q.Schedule(timers[3], 300) // beyond simple-wheel horizon, tv2 range
			q.Schedule(timers[4], 7)
			if q.Len() != 5 {
				t.Fatalf("Len = %d", q.Len())
			}
			for tick := uint64(1); tick <= 400; tick++ {
				q.Advance(tick, func(tm *Timer) {
					if tm.Pending() {
						t.Error("fired timer still pending")
					}
					fired = append(fired, tm.Payload.(uint64))
				})
			}
			want := []uint64{1, 4, 0, 2, 3}
			if len(fired) != len(want) {
				t.Fatalf("fired %v, want %v", fired, want)
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("fired %v, want %v", fired, want)
				}
			}
			if q.Len() != 0 {
				t.Fatalf("Len after drain = %d", q.Len())
			}
		})
	}
}

func TestCancel(t *testing.T) {
	for name, q := range allQueues() {
		t.Run(name, func(t *testing.T) {
			tm := &Timer{}
			q.Schedule(tm, 5)
			if !tm.Pending() {
				t.Fatal("not pending after schedule")
			}
			if !q.Cancel(tm) {
				t.Fatal("cancel failed")
			}
			if tm.Pending() {
				t.Fatal("pending after cancel")
			}
			if q.Cancel(tm) {
				t.Fatal("double cancel succeeded")
			}
			fired := 0
			q.Advance(100, func(*Timer) { fired++ })
			if fired != 0 {
				t.Fatalf("canceled timer fired")
			}
		})
	}
}

func TestCancelDistantTimer(t *testing.T) {
	// Exercises the simple wheel's overflow list and the hierarchical
	// wheel's outer levels.
	for name, q := range allQueues() {
		t.Run(name, func(t *testing.T) {
			tm := &Timer{}
			q.Schedule(tm, 1_000_000)
			if q.Len() != 1 {
				t.Fatalf("Len = %d", q.Len())
			}
			if !q.Cancel(tm) {
				t.Fatal("cancel failed")
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after cancel", q.Len())
			}
		})
	}
}

func TestRescheduleMovesTimer(t *testing.T) {
	for name, q := range allQueues() {
		t.Run(name, func(t *testing.T) {
			tm := &Timer{}
			q.Schedule(tm, 5)
			q.Schedule(tm, 50) // Linux mod_timer: move, not duplicate
			if q.Len() != 1 {
				t.Fatalf("Len = %d, want 1", q.Len())
			}
			var at []uint64
			for tick := uint64(1); tick <= 60; tick++ {
				q.Advance(tick, func(*Timer) { at = append(at, tick) })
			}
			if len(at) != 1 || at[0] != 50 {
				t.Fatalf("fired at %v, want [50]", at)
			}
		})
	}
}

func TestPastScheduleFiresNextTick(t *testing.T) {
	for name, q := range allQueues() {
		t.Run(name, func(t *testing.T) {
			q.Advance(100, func(*Timer) {})
			tm := &Timer{}
			q.Schedule(tm, 3) // long past
			var at []uint64
			for tick := uint64(101); tick <= 110; tick++ {
				q.Advance(tick, func(*Timer) { at = append(at, tick) })
			}
			if len(at) != 1 || at[0] != 101 {
				t.Fatalf("fired at %v, want [101]", at)
			}
		})
	}
}

func TestSameTickFIFOListBased(t *testing.T) {
	// The list-based structures preserve insertion order within a tick.
	for _, q := range []Queue{NewSortedList(), NewHeap(), NewHierarchicalWheel()} {
		t.Run(q.Name(), func(t *testing.T) {
			var fired []int
			for i := 0; i < 8; i++ {
				q.Schedule(&Timer{Payload: i}, 5)
			}
			q.Advance(5, func(tm *Timer) { fired = append(fired, tm.Payload.(int)) })
			for i, v := range fired {
				if v != i {
					t.Fatalf("order %v", fired)
				}
			}
		})
	}
}

func TestHierarchicalCascadeBoundaries(t *testing.T) {
	// Timers placed exactly at level boundaries must survive cascading.
	q := NewHierarchicalWheel()
	boundaries := []uint64{
		tvrSize - 1, tvrSize, tvrSize + 1,
		1<<(tvrBits+tvnBits) - 1, 1 << (tvrBits + tvnBits), 1<<(tvrBits+tvnBits) + 1,
		1 << (tvrBits + 2*tvnBits), 1 << (tvrBits + 3*tvnBits),
	}
	firedAt := make(map[uint64]uint64)
	for _, b := range boundaries {
		b := b
		q.Schedule(&Timer{Payload: b}, b)
	}
	limit := uint64(1<<(tvrBits+3*tvnBits)) + 10
	for tick := uint64(1); tick <= limit; tick += 1 {
		q.Advance(tick, func(tm *Timer) { firedAt[tm.Payload.(uint64)] = tick })
		if len(firedAt) == len(boundaries) {
			break
		}
	}
	for _, b := range boundaries {
		if firedAt[b] != b {
			t.Errorf("timer for tick %d fired at %d", b, firedAt[b])
		}
	}
}

func TestHierarchicalMaxIntervalCapped(t *testing.T) {
	q := NewHierarchicalWheel()
	tm := &Timer{}
	q.Schedule(tm, 1<<62) // absurd; kernel caps at max representable
	if q.Len() != 1 {
		t.Fatal("not scheduled")
	}
	if !q.Cancel(tm) {
		t.Fatal("cancel failed")
	}
}

// referenceModel is a trivially correct queue: a map scanned on every tick.
type referenceModel struct {
	timers map[*Timer]uint64
	last   uint64
}

func newReference() *referenceModel { return &referenceModel{timers: map[*Timer]uint64{}} }

func (r *referenceModel) schedule(t *Timer, expires uint64) {
	if expires <= r.last {
		expires = r.last + 1
	}
	r.timers[t] = expires
}
func (r *referenceModel) cancel(t *Timer) bool {
	_, ok := r.timers[t]
	delete(r.timers, t)
	return ok
}
func (r *referenceModel) advance(now uint64) []int {
	var fired []int
	for t, e := range r.timers {
		if e <= now {
			fired = append(fired, t.Payload.(int))
			delete(r.timers, t)
		}
	}
	r.last = now
	sort.Ints(fired)
	return fired
}

// TestAgainstReferenceModel drives every implementation with the same random
// operation sequence and requires the per-tick fired sets to match a naive
// model exactly.
func TestAgainstReferenceModel(t *testing.T) {
	for name, q := range allQueues() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(123))
			ref := newReference()
			timers := make([]*Timer, 200)
			for i := range timers {
				timers[i] = &Timer{Payload: i}
			}
			now := uint64(0)
			for step := 0; step < 5000; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // schedule/reschedule
					tm := timers[rng.Intn(len(timers))]
					exp := now + uint64(rng.Intn(2000))
					q.Schedule(tm, exp)
					ref.schedule(tm, exp)
				case op < 7: // cancel
					tm := timers[rng.Intn(len(timers))]
					got := q.Cancel(tm)
					want := ref.cancel(tm)
					if got != want {
						t.Fatalf("step %d: cancel = %v, reference = %v", step, got, want)
					}
				default: // advance 1..16 ticks, one at a time
					n := uint64(rng.Intn(16) + 1)
					for i := uint64(0); i < n; i++ {
						now++
						var fired []int
						q.Advance(now, func(tm *Timer) { fired = append(fired, tm.Payload.(int)) })
						sort.Ints(fired)
						want := ref.advance(now)
						if len(fired) != len(want) {
							t.Fatalf("step %d tick %d: fired %v, want %v", step, now, fired, want)
						}
						for j := range want {
							if fired[j] != want[j] {
								t.Fatalf("step %d tick %d: fired %v, want %v", step, now, fired, want)
							}
						}
					}
				}
				if q.Len() != len(ref.timers) {
					t.Fatalf("step %d: Len = %d, reference = %d", step, q.Len(), len(ref.timers))
				}
			}
		})
	}
}

// Property: an idle queue (no due timers) fires nothing however far it is
// advanced, and all pending timers remain.
func TestIdleAdvanceProperty(t *testing.T) {
	f := func(offsets []uint16, jump uint16) bool {
		for _, q := range allQueues() {
			base := uint64(1000)
			q.Advance(base, func(*Timer) {})
			for _, o := range offsets {
				q.Schedule(&Timer{Payload: 0}, base+uint64(jump)+uint64(o)+1)
			}
			fired := 0
			q.Advance(base+uint64(jump), func(*Timer) { fired++ })
			if fired != 0 || q.Len() != len(offsets) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func benchQueue(b *testing.B, mk func() Queue) {
	q := mk()
	rng := rand.New(rand.NewSource(1))
	timers := make([]*Timer, 4096)
	for i := range timers {
		timers[i] = &Timer{Payload: i}
	}
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := timers[i%len(timers)]
		q.Schedule(tm, now+uint64(rng.Intn(512)+1))
		if i%4 == 3 {
			now++
			q.Advance(now, func(*Timer) {})
		}
		if i%7 == 6 {
			q.Cancel(timers[rng.Intn(len(timers))])
		}
	}
}

func BenchmarkQueueSortedList(b *testing.B) { benchQueue(b, func() Queue { return NewSortedList() }) }
func BenchmarkQueueHeap(b *testing.B)       { benchQueue(b, func() Queue { return NewHeap() }) }
func BenchmarkQueueSimpleWheel(b *testing.B) {
	benchQueue(b, func() Queue { return NewSimpleWheel(1024) })
}
func BenchmarkQueueHashedWheel(b *testing.B) {
	benchQueue(b, func() Queue { return NewHashedWheel(256) })
}
func BenchmarkQueueHierarchical(b *testing.B) {
	benchQueue(b, func() Queue { return NewHierarchicalWheel() })
}
