// Package timerwheel implements the timer-queue data structures underlying
// the simulated kernels: the hashed and hierarchical timing wheels of
// Varghese & Lauck (SOSP'87), the simple fixed-horizon wheel, and two
// baselines (sorted list, binary heap) used by the ablation benchmarks.
//
// All implementations share the Queue interface and the intrusive Timer
// entry, so the simulated Linux and Vista timer subsystems can be configured
// with any of them and the benchmarks can compare set/cancel/expire costs
// across structures, as Section 2 of the paper discusses ("typically
// implemented using a variant of timing wheels").
//
// Time here is an abstract tick counter: the Linux personality maps one tick
// to one jiffy (4 ms), the Vista personality to one clock interrupt
// (15.6 ms).
package timerwheel

// Timer is an intrusive timer entry. A Timer belongs to at most one Queue at
// a time. The zero value is ready to Schedule. Payload carries the owner's
// state (callback, tracing identity) opaquely.
type Timer struct {
	expires uint64
	queue   Queue
	seq     uint64 // insertion order for same-tick FIFO
	// intrusive doubly-linked list (sorted list, wheel buckets)
	next, prev *Timer
	bucket     *bucket
	// heap position
	index int
	// Payload is the owner's opaque state.
	Payload any
}

// Expires returns the absolute tick the timer is set for. Only meaningful
// while pending.
func (t *Timer) Expires() uint64 { return t.expires }

// Pending reports whether the timer is queued in some Queue.
func (t *Timer) Pending() bool { return t.queue != nil }

// Queue is a priority queue of timers keyed by absolute expiry tick.
//
// Advance(now, fire) runs the clock forward: every timer with expires <= now
// is removed and passed to fire, grouped by tick in nondecreasing tick order
// (FIFO within one tick for the list-based structures). Schedule on an
// already-pending timer moves it (Linux __mod_timer semantics). Scheduling
// for a tick <= the last Advance tick fires on the next Advance — kernels
// round timeouts up so "expire immediately" means "on the next tick", which
// is the jiffy-quantization effect visible in the paper's Figures 8-11.
type Queue interface {
	// Schedule inserts or moves t to expire at the given absolute tick.
	Schedule(t *Timer, expires uint64)
	// Cancel removes t; it reports whether t was pending in this queue.
	Cancel(t *Timer) bool
	// Advance fires all timers with expires <= now and returns the count.
	Advance(now uint64, fire func(*Timer)) int
	// Len returns the number of pending timers.
	Len() int
	// Name identifies the implementation for benchmarks and traces.
	Name() string
}

// bucket is an intrusive circular list head used by the wheel variants and
// the sorted list.
type bucket struct {
	head Timer // sentinel
	n    int
}

func (b *bucket) init() {
	b.head.next = &b.head
	b.head.prev = &b.head
	b.head.bucket = b
}

func (b *bucket) empty() bool { return b.head.next == &b.head }

// pushBack appends t.
func (b *bucket) pushBack(t *Timer) {
	last := b.head.prev
	t.prev = last
	t.next = &b.head
	last.next = t
	b.head.prev = t
	t.bucket = b
	b.n++
}

// insertBefore places t ahead of pos (pos may be the sentinel).
func (b *bucket) insertBefore(t, pos *Timer) {
	t.prev = pos.prev
	t.next = pos
	pos.prev.next = t
	pos.prev = t
	t.bucket = b
	b.n++
}

// remove unlinks t from its bucket.
func (b *bucket) remove(t *Timer) {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev, t.bucket = nil, nil, nil
	b.n--
}

// popFront removes and returns the first timer, or nil.
func (b *bucket) popFront() *Timer {
	if b.empty() {
		return nil
	}
	t := b.head.next
	b.remove(t)
	return t
}
