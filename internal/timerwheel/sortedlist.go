package timerwheel

// SortedList is the classic BSD-callout baseline: a doubly-linked list kept
// sorted by expiry. O(n) Schedule, O(1) Cancel and per-timer Advance. It is
// the structure timing wheels were invented to replace, and serves as the
// lower baseline in the ablation benchmarks.
type SortedList struct {
	list bucket
	n    int
	seq  uint64
	last uint64
}

// NewSortedList returns an empty sorted-list queue.
func NewSortedList() *SortedList {
	s := &SortedList{}
	s.list.init()
	return s
}

// Name implements Queue.
func (s *SortedList) Name() string { return "sorted-list" }

// Len implements Queue.
func (s *SortedList) Len() int { return s.n }

// Schedule implements Queue.
func (s *SortedList) Schedule(t *Timer, expires uint64) {
	if t.queue != nil {
		_ = t.queue.Cancel(t)
	}
	s.seq++
	if expires <= s.last {
		expires = s.last + 1 // fire on the next tick, kernel-style rounding
	}
	t.expires = expires
	t.seq = s.seq
	t.queue = s
	// Walk from the back: workloads overwhelmingly append near the tail
	// (new timeouts are later than pending ones), so this is usually O(1).
	pos := s.list.head.prev
	for pos != &s.list.head && pos.expires > expires {
		pos = pos.prev
	}
	s.list.insertBefore(t, pos.next)
	s.n++
}

// Cancel implements Queue.
func (s *SortedList) Cancel(t *Timer) bool {
	if t.queue != Queue(s) || t.bucket == nil {
		return false
	}
	s.list.remove(t)
	t.queue = nil
	s.n--
	return true
}

// Advance implements Queue.
func (s *SortedList) Advance(now uint64, fire func(*Timer)) int {
	fired := 0
	for {
		first := s.list.head.next
		if first == &s.list.head || first.expires > now {
			break
		}
		s.list.remove(first)
		first.queue = nil
		s.n--
		fired++
		fire(first)
	}
	if now > s.last {
		s.last = now
	}
	return fired
}
