package timerwheel

// SimpleWheel is Varghese & Lauck's scheme 4: one bucket per tick within a
// fixed horizon, giving O(1) Schedule/Cancel/expiry for timers within the
// horizon. Timers beyond the horizon live in a sorted overflow list and
// migrate into the wheel as it turns. Good when timeouts are bounded (e.g.
// a TCP stack's per-connection timers).
type SimpleWheel struct {
	buckets  []bucket
	horizon  uint64
	now      uint64 // last advanced tick
	overflow *SortedList
	n        int
	seq      uint64
}

// NewSimpleWheel returns a wheel with the given horizon in ticks (rounded up
// to at least 2).
func NewSimpleWheel(horizon int) *SimpleWheel {
	if horizon < 2 {
		horizon = 2
	}
	w := &SimpleWheel{
		buckets:  make([]bucket, horizon),
		horizon:  uint64(horizon),
		overflow: NewSortedList(),
	}
	for i := range w.buckets {
		w.buckets[i].init()
	}
	return w
}

// Name implements Queue.
func (w *SimpleWheel) Name() string { return "simple-wheel" }

// Len implements Queue.
func (w *SimpleWheel) Len() int { return w.n + w.overflow.Len() }

// Schedule implements Queue.
func (w *SimpleWheel) Schedule(t *Timer, expires uint64) {
	if t.queue != nil {
		_ = t.queue.Cancel(t)
	}
	w.seq++
	if expires <= w.now {
		expires = w.now + 1 // fire on next tick, like a kernel rounding up
	}
	if expires-w.now >= w.horizon {
		w.overflow.Schedule(t, expires)
		// Claim ownership so Cancel routes through the wheel.
		t.queue = w
		return
	}
	t.expires = expires
	t.seq = w.seq
	t.queue = w
	w.buckets[expires%w.horizon].pushBack(t)
	w.n++
}

// Cancel implements Queue.
func (w *SimpleWheel) Cancel(t *Timer) bool {
	if t.queue != Queue(w) {
		return false
	}
	if t.bucket != nil {
		// In the overflow list the bucket belongs to the SortedList; check
		// whether it is one of ours.
		if t.bucket == &w.overflow.list {
			t.queue = w.overflow // hand back so the list's Cancel accepts it
			_ = w.overflow.Cancel(t)
			t.queue = nil
			return true
		}
		t.bucket.remove(t)
		t.queue = nil
		w.n--
		return true
	}
	return false
}

// Advance implements Queue.
func (w *SimpleWheel) Advance(now uint64, fire func(*Timer)) int {
	fired := 0
	for w.now < now {
		w.now++
		// Migrate overflow timers that are now within the horizon.
		for {
			first := w.overflow.list.head.next
			if first == &w.overflow.list.head || first.expires-w.now >= w.horizon {
				break
			}
			first.queue = w.overflow
			_ = w.overflow.Cancel(first)
			w.Schedule(first, first.expires)
		}
		b := &w.buckets[w.now%w.horizon]
		for {
			t := b.popFront()
			if t == nil {
				break
			}
			t.queue = nil
			w.n--
			fired++
			fire(t)
		}
	}
	return fired
}

// HashedWheel is Varghese & Lauck's scheme 6: a fixed number of buckets with
// timers hashed by expiry tick modulo the wheel size. Buckets are unsorted;
// each tick scans one bucket and fires the due entries. Vista's TCP/IP stack
// was re-architected around per-CPU wheels of this kind (Section 1 of the
// paper).
type HashedWheel struct {
	buckets []bucket
	mask    uint64
	now     uint64
	n       int
	seq     uint64
}

// NewHashedWheel returns a wheel with size buckets (rounded up to a power of
// two, minimum 4).
func NewHashedWheel(size int) *HashedWheel {
	n := 4
	for n < size {
		n <<= 1
	}
	w := &HashedWheel{buckets: make([]bucket, n), mask: uint64(n - 1)}
	for i := range w.buckets {
		w.buckets[i].init()
	}
	return w
}

// Name implements Queue.
func (w *HashedWheel) Name() string { return "hashed-wheel" }

// Len implements Queue.
func (w *HashedWheel) Len() int { return w.n }

// Schedule implements Queue.
func (w *HashedWheel) Schedule(t *Timer, expires uint64) {
	if t.queue != nil {
		_ = t.queue.Cancel(t)
	}
	w.seq++
	if expires <= w.now {
		expires = w.now + 1
	}
	t.expires = expires
	t.seq = w.seq
	t.queue = w
	w.buckets[expires&w.mask].pushBack(t)
	w.n++
}

// Cancel implements Queue.
func (w *HashedWheel) Cancel(t *Timer) bool {
	if t.queue != Queue(w) || t.bucket == nil {
		return false
	}
	t.bucket.remove(t)
	t.queue = nil
	w.n--
	return true
}

// Advance implements Queue.
func (w *HashedWheel) Advance(now uint64, fire func(*Timer)) int {
	fired := 0
	for w.now < now {
		w.now++
		b := &w.buckets[w.now&w.mask]
		// Scan the bucket; due timers fire, the rest stay for a later
		// revolution.
		for t := b.head.next; t != &b.head; {
			next := t.next
			if t.expires <= w.now {
				b.remove(t)
				t.queue = nil
				w.n--
				fired++
				fire(t)
			}
			t = next
		}
	}
	return fired
}
