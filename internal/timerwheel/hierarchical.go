package timerwheel

// HierarchicalWheel is Varghese & Lauck's scheme 7 as implemented by the
// Linux kernel's timer.c through 2.6.23 (the version the paper instruments):
// a first-level wheel of 256 one-tick slots (tv1) and four higher levels of
// 64 slots each (tv2..tv5), with coarser timers cascading down one level each
// time the level below wraps. All operations are O(1) amortized; the cascade
// is the well-known worst-case hiccup.
const (
	tvrBits = 8
	tvrSize = 1 << tvrBits // 256
	tvrMask = tvrSize - 1
	tvnBits = 6
	tvnSize = 1 << tvnBits // 64
	tvnMask = tvnSize - 1
)

// HierarchicalWheel implements Queue.
type HierarchicalWheel struct {
	tv1 [tvrSize]bucket
	tvn [4][tvnSize]bucket // tv2..tv5
	now uint64             // base.timer_jiffies: next tick to process
	n   int
	seq uint64
}

// NewHierarchicalWheel returns a wheel whose "current tick" starts at zero.
func NewHierarchicalWheel() *HierarchicalWheel {
	w := &HierarchicalWheel{}
	for i := range w.tv1 {
		w.tv1[i].init()
	}
	for l := range w.tvn {
		for i := range w.tvn[l] {
			w.tvn[l][i].init()
		}
	}
	w.now = 1 // next tick to process; nothing can expire at tick 0
	return w
}

// Name implements Queue.
func (w *HierarchicalWheel) Name() string { return "hierarchical-wheel" }

// Len implements Queue.
func (w *HierarchicalWheel) Len() int { return w.n }

// vecFor returns the bucket a timer expiring at `expires` belongs in, given
// the wheel's current base tick — a transliteration of Linux
// internal_add_timer().
func (w *HierarchicalWheel) vecFor(expires uint64) *bucket {
	// idx is the distance to expiry from the wheel's base.
	idx := int64(expires) - int64(w.now)
	switch {
	case idx < 0:
		// Already expired: fire on the next processed tick.
		return &w.tv1[w.now&tvrMask]
	case idx < tvrSize:
		return &w.tv1[expires&tvrMask]
	case idx < 1<<(tvrBits+tvnBits):
		return &w.tvn[0][(expires>>tvrBits)&tvnMask]
	case idx < 1<<(tvrBits+2*tvnBits):
		return &w.tvn[1][(expires>>(tvrBits+tvnBits))&tvnMask]
	case idx < 1<<(tvrBits+3*tvnBits):
		return &w.tvn[2][(expires>>(tvrBits+2*tvnBits))&tvnMask]
	default:
		// Cap at the maximum representable interval, like the kernel.
		max := uint64(1)<<(tvrBits+4*tvnBits) - 1
		if uint64(idx) > max {
			expires = max + w.now
		}
		return &w.tvn[3][(expires>>(tvrBits+3*tvnBits))&tvnMask]
	}
}

// Schedule implements Queue.
func (w *HierarchicalWheel) Schedule(t *Timer, expires uint64) {
	if t.queue != nil {
		_ = t.queue.Cancel(t)
	}
	w.seq++
	t.expires = expires
	t.seq = w.seq
	t.queue = w
	w.vecFor(expires).pushBack(t)
	w.n++
}

// Cancel implements Queue.
func (w *HierarchicalWheel) Cancel(t *Timer) bool {
	if t.queue != Queue(w) || t.bucket == nil {
		return false
	}
	t.bucket.remove(t)
	t.queue = nil
	w.n--
	return true
}

// cascade re-files every timer in level/index one level down. Returns index,
// so the caller can chain cascades exactly as run_timers() does.
func (w *HierarchicalWheel) cascade(level, index int) int {
	b := &w.tvn[level][index]
	for {
		t := b.popFront()
		if t == nil {
			break
		}
		w.vecFor(t.expires).pushBack(t)
	}
	return index
}

// Advance implements Queue. It processes each tick from the base up to and
// including now, cascading at wrap points, then firing tv1's slot — the
// structure of Linux __run_timers.
func (w *HierarchicalWheel) Advance(now uint64, fire func(*Timer)) int {
	fired := 0
	for w.now <= now {
		index := int(w.now & tvrMask)
		if index == 0 &&
			w.cascade(0, int(w.now>>tvrBits)&tvnMask) == 0 &&
			w.cascade(1, int(w.now>>(tvrBits+tvnBits))&tvnMask) == 0 &&
			w.cascade(2, int(w.now>>(tvrBits+2*tvnBits))&tvnMask) == 0 {
			w.cascade(3, int(w.now>>(tvrBits+3*tvnBits))&tvnMask)
		}
		w.now++
		b := &w.tv1[index]
		for {
			t := b.popFront()
			if t == nil {
				break
			}
			t.queue = nil
			w.n--
			fired++
			fire(t)
		}
	}
	return fired
}
