package sim

// heapQueue is an index-based binary min-heap specialized to event nodes.
// It replaces container/heap: no interface dispatch on the comparison, no
// `any` boxing on push/pop, and node removal is O(log n) via the index each
// node carries. The backing slice is retained across pops, so steady-state
// operation never allocates.
type heapQueue struct {
	items []*event
}

func (h *heapQueue) name() string { return "heap" }

func (h *heapQueue) len() int { return len(h.items) }

func (h *heapQueue) push(n *event) {
	n.index = len(h.items)
	h.items = append(h.items, n)
	h.up(n.index)
}

func (h *heapQueue) peek() *event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *heapQueue) pop() *event {
	n := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[0].index = 0
	h.items[last] = nil // drop the reference so the freelist owns the node
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	n.index = -1
	return n
}

func (h *heapQueue) remove(n *event) {
	i := n.index
	last := len(h.items) - 1
	if i != last {
		h.items[i] = h.items[last]
		h.items[i].index = i
	}
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	n.index = -1
}

func (h *heapQueue) forEach(fn func(*event)) {
	for _, n := range h.items {
		fn(n)
	}
}

func (h *heapQueue) update(n *event) {
	h.down(n.index)
	h.up(n.index)
}

func (h *heapQueue) up(i int) {
	items := h.items
	n := items[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := items[parent]
		if !eventLess(n, p) {
			break
		}
		items[i] = p
		p.index = i
		i = parent
	}
	items[i] = n
	n.index = i
}

func (h *heapQueue) down(i int) {
	items := h.items
	n := items[i]
	size := len(items)
	for {
		child := 2*i + 1
		if child >= size {
			break
		}
		if r := child + 1; r < size && eventLess(items[r], items[child]) {
			child = r
		}
		c := items[child]
		if !eventLess(c, n) {
			break
		}
		items[i] = c
		c.index = i
		i = child
	}
	items[i] = n
	n.index = i
}
