package sim

import "math/bits"

// wheelQueue is a hierarchical timing wheel over the engine's pending
// events — the Linux tv1..tv5 cascade layout (see internal/timerwheel,
// which transliterates kernel/timer.c) adapted to serve as a total-order
// priority queue over nanosecond instants:
//
//   - Instants are bucketed by tick, where one tick is 2^20 ns ≈ 1.05 ms —
//     the same order of magnitude as the jiffy the paper's kernels bucket
//     by. An innermost wheel of 256 ticks plus four outer wheels of 64
//     slots each cover 2^32 ticks ≈ 52 days of horizon; the rare event
//     beyond that is clamped into the outermost wheel and re-filed at each
//     cascade until it fits (late filing is harmless, early would not be).
//   - Within a bucket, events are kept in an intrusive doubly-linked list
//     sorted by (when, seq). This is where the wheel differs from the
//     kernel's (which keeps ticks unordered and fires a whole jiffy as a
//     batch): the simulator must dequeue in exactly the same (when, seq)
//     order as the binary heap, or traces would diverge between queue
//     implementations. Sorting costs O(bucket length) per insert, but a
//     bucket spans ~1 ms of virtual time, so it holds only events that are
//     both near-simultaneous and still pending — short in every workload,
//     and appends (the common case, since seq is monotonic) probe from the
//     tail and hit immediately.
//   - peek advances a cursor over the innermost wheel, cascading one outer
//     bucket down per 256-tick block boundary (once per boundary, tracked
//     by lastCascade — the pull-based equivalent of the kernel doing it in
//     the timer softirq as jiffies wrap each index).
//
// Scheduling and canceling are O(1) plus the bucket sort; the cursor scan
// is amortized O(total virtual ticks elapsed), independent of event count.
type wheelQueue struct {
	tv1 [tvrSize]wheelBucket    // innermost: one bucket per tick, 256 ticks
	tvn [4][tvnSize]wheelBucket // outer wheels: 64 slots, each 64× coarser

	// occ is an occupancy bitmap over tv1, one bit per slot. Bits are set
	// on insert and cleared lazily when the cursor finds the slot empty, so
	// a stale set bit costs one wasted probe, never a missed event. It lets
	// the cursor cross an idle gap in O(1) per 64 ticks instead of stepping
	// every ~1 ms slot of a multi-second sleep individually.
	occ [tvrSize / 64]uint64

	// cur is the next tick the cursor will examine; buckets strictly below
	// it are empty. It only moves forward.
	cur uint64
	// lastCascade records the block boundary most recently cascaded so that
	// re-peeking at a boundary tick does not re-run the cascade (which
	// could otherwise re-file an aliased far-future event into the bucket
	// being drained, looping forever).
	lastCascade uint64

	size      int
	cachedMin *event // memoized peek result; nil = recompute
}

const (
	// wheelShift sets the tick granularity: tick = when >> wheelShift.
	wheelShift = 20
	tvrBits    = 8
	tvnBits    = 6
	tvrSize    = 1 << tvrBits
	tvnSize    = 1 << tvnBits
	// wheelHorizon is the farthest tick distance the wheels can file
	// directly: 2^(8+4·6) - 1 ticks ≈ 52 days.
	wheelHorizon = 1<<(tvrBits+4*tvnBits) - 1
)

// wheelBucket is a (when, seq)-sorted intrusive doubly-linked list of
// events, nil-terminated at both ends.
type wheelBucket struct {
	head, tail *event
}

func newWheelQueue() *wheelQueue {
	// lastCascade starts off every valid boundary so the first peek at
	// cur=0 runs its (vacuous) cascade and establishes the invariant.
	return &wheelQueue{lastCascade: ^uint64(0)}
}

func (w *wheelQueue) name() string { return "wheel" }

func (w *wheelQueue) len() int { return w.size }

// push files the event and maintains the cached minimum.
//
//lint:allocfree steady-state wheel insert: pointer relinking only, guarded by BenchmarkEngine allocs
func (w *wheelQueue) push(n *event) {
	w.size++
	w.insert(n)
	if w.cachedMin != nil && eventLess(n, w.cachedMin) {
		w.cachedMin = n
	}
}

// remove unlinks the event from its bucket's doubly-linked list.
//
//lint:allocfree cancel path: unlink only
func (w *wheelQueue) remove(n *event) {
	b := n.bucket
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.next, n.prev, n.bucket = nil, nil, nil
	w.size--
	if w.cachedMin == n {
		w.cachedMin = nil
	}
}

// update re-files an event whose (when, seq) key changed (Reschedule).
//
//lint:allocfree reschedule path: remove+push, both allocation-free
func (w *wheelQueue) update(n *event) {
	w.remove(n)
	w.push(n)
}

// forEach visits every queued node: all tv1 slots plus the four outer
// wheels, in bucket order (cold-path state export; callers sort).
func (w *wheelQueue) forEach(fn func(*event)) {
	visit := func(b *wheelBucket) {
		for n := b.head; n != nil; n = n.next {
			fn(n)
		}
	}
	for i := range w.tv1 {
		visit(&w.tv1[i])
	}
	for level := range w.tvn {
		for i := range w.tvn[level] {
			visit(&w.tvn[level][i])
		}
	}
}

// peek returns the earliest pending event, advancing the cursor over empty
// slots and cascading outer wheels as block boundaries are crossed.
//
//lint:allocfree expiry scan: cursor arithmetic and cascades, no allocation
func (w *wheelQueue) peek() *event {
	if w.cachedMin != nil {
		return w.cachedMin
	}
	if w.size == 0 {
		return nil
	}
	for {
		slot := w.cur & (tvrSize - 1)
		if slot == 0 && w.lastCascade != w.cur {
			w.lastCascade = w.cur
			w.cascade()
		}
		if h := w.tv1[slot].head; h != nil {
			w.cachedMin = h
			return h
		}
		w.occ[slot>>6] &^= 1 << (slot & 63)
		// Jump to the next occupied slot in this 256-tick block, or to the
		// block boundary (where the next cascade is due) if there is none.
		w.cur += uint64(w.nextOccupied(int(slot)+1) - int(slot))
	}
}

// nextOccupied returns the index of the first tv1 slot >= from whose
// occupancy bit is set, or tvrSize if the rest of the block is empty.
func (w *wheelQueue) nextOccupied(from int) int {
	if from >= tvrSize {
		return tvrSize
	}
	i := from >> 6
	word := w.occ[i] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return i<<6 + bits.TrailingZeros64(word)
		}
		i++
		if i == len(w.occ) {
			return tvrSize
		}
		word = w.occ[i]
	}
}

// pop dequeues the earliest pending event.
//
//lint:allocfree expire path: peek+remove
func (w *wheelQueue) pop() *event {
	n := w.peek()
	w.remove(n)
	return n
}

// insert files n into the bucket covering its tick at the current cursor
// position. Ticks already behind the cursor (an event scheduled within the
// tick currently being drained) file at the cursor's own bucket; the sorted
// list keeps them ordered correctly among its neighbours.
//
//lint:allocfree bucket selection is shifts and masks over preallocated wheels
func (w *wheelQueue) insert(n *event) {
	tk := uint64(n.when) >> wheelShift
	if tk < w.cur {
		tk = w.cur
	}
	var b *wheelBucket
	switch idx := tk - w.cur; {
	case idx < tvrSize:
		slot := tk & (tvrSize - 1)
		w.occ[slot>>6] |= 1 << (slot & 63)
		b = &w.tv1[slot]
	case idx < 1<<(tvrBits+tvnBits):
		b = &w.tvn[0][(tk>>tvrBits)&(tvnSize-1)]
	case idx < 1<<(tvrBits+2*tvnBits):
		b = &w.tvn[1][(tk>>(tvrBits+tvnBits))&(tvnSize-1)]
	case idx < 1<<(tvrBits+3*tvnBits):
		b = &w.tvn[2][(tk>>(tvrBits+2*tvnBits))&(tvnSize-1)]
	default:
		if idx > wheelHorizon {
			tk = w.cur + wheelHorizon
		}
		b = &w.tvn[3][(tk>>(tvrBits+3*tvnBits))&(tvnSize-1)]
	}
	b.insert(n)
}

// cascade pulls the outer-wheel buckets that cover the 256-tick block the
// cursor just entered down into finer wheels, chaining outward exactly when
// an outer index wraps to zero — the kernel's cascade chain in run_timers.
//
//lint:allocfree cascade re-files existing nodes; the paper's tick-path cost must stay allocation-free here too
func (w *wheelQueue) cascade() {
	for level := 0; level < 4; level++ {
		idx := (w.cur >> (tvrBits + uint(level)*tvnBits)) & (tvnSize - 1)
		w.drain(&w.tvn[level][idx])
		if idx != 0 {
			break
		}
	}
}

// drain unlinks every event in b and re-files it relative to the advanced
// cursor. Re-filing never targets b itself: by the time a bucket is
// cascaded, every event it holds maps strictly finer (or, for clamped
// events, to an earlier outer slot), so the loop terminates.
//
//lint:allocfree drain relinks nodes between preallocated buckets
func (w *wheelQueue) drain(b *wheelBucket) {
	n := b.head
	b.head, b.tail = nil, nil
	for n != nil {
		next := n.next
		n.next, n.prev, n.bucket = nil, nil, nil
		w.insert(n)
		n = next
	}
}

// insert places n into the sorted list. Probing starts at the tail: seq is
// monotonic, so the overwhelmingly common insert is an append.
//
//lint:allocfree sorted-list splice on intrusive pointers
func (b *wheelBucket) insert(n *event) {
	p := b.tail
	for p != nil && eventLess(n, p) {
		p = p.prev
	}
	if p == nil {
		n.prev = nil
		n.next = b.head
		if b.head != nil {
			b.head.prev = n
		} else {
			b.tail = n
		}
		b.head = n
	} else {
		n.prev = p
		n.next = p.next
		if p.next != nil {
			p.next.prev = n
		} else {
			b.tail = n
		}
		p.next = n
	}
	n.bucket = b
}
