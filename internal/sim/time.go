// Package sim provides a deterministic discrete-event simulation engine:
// a virtual nanosecond clock, an event queue, seeded randomness, and CPU
// wakeup/idle accounting.
//
// It is the substrate on which the simulated Linux and Vista timer
// subsystems, the network stack, and the workloads of the reproduction run.
// All simulated time is virtual: a 30-minute trace executes in however long
// the host takes to drain the event queue, and two runs with the same seed
// produce byte-identical traces.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant on the virtual clock, in nanoseconds since simulated
// boot. It is deliberately distinct from time.Time so that wall-clock time
// cannot leak into a simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration (same representation) but keeping a separate type
// makes accidental use of wall-clock durations visible at call sites.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant as floating-point seconds since boot.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with millisecond precision, e.g.
// "12.345s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts to a time.Duration (identical representation).
func (d Duration) Std() time.Duration { return time.Duration(d) }

// FromStd converts a time.Duration to a sim.Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// String defers to time.Duration formatting ("1.5s", "250ms", ...).
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOfSeconds builds a Duration from floating-point seconds; useful for
// table-driven workload definitions expressed in the paper's units.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }
