package sim

import (
	"math/rand"
	"sort"
)

// Engine state export for the control plane's checkpoints (internal/control).
//
// A checkpoint cannot serialize the engine's pending callbacks — they are
// closures over live workload state — so checkpoint/resume in this codebase
// is replay-based: a resumed run rebuilds the fleet from its seed, fast-
// forwards deterministically to the keyframe window, and then VERIFIES that
// the reconstructed engines match the serialized keyframe exactly. State()
// is that verification surface: the clock, the scheduling sequence counter,
// the full pending-event set (folded to an order-independent-of-queue-kind
// hash), the RNG position and the accounting stats. Two engines that agree
// on State() have byte-identical futures for the same inputs.

// countingSource wraps the engine's random source and counts raw draws.
// It forwards both Source interfaces verbatim, so the delivered stream is
// bit-identical to an unwrapped rand.NewSource — wrapping changes no trace.
// The draw count is the serializable half of the RNG state: (seed, draws)
// reconstructs the source exactly by fast-forwarding.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.draws = 0
	c.src.Seed(seed)
}

// RandDraws returns how many raw values the engine's random source has
// produced. Together with the construction seed it pins the RNG state: two
// engines built from the same seed with equal draw counts are at the same
// stream position.
func (e *Engine) RandDraws() uint64 { return e.src.draws }

// Resume clears a Stop: Run/Step/AdvanceUntil execute events again. Pending
// events survive a Stop/Resume cycle untouched, so a resumed engine first
// catches up on the backlog — the fleet uses this for deterministic host
// kill/restart (see SkipTo for the clock semantics of a restart).
func (e *Engine) Resume() { e.stopped = false }

// SkipTo advances the clock to t without executing events, accounting the
// gap as idle time. Events pending before t are not lost: they fire on the
// next Run/AdvanceUntil, late, at the advanced clock — the behaviour of a
// machine whose timers expired while it was powered off. The fleet calls
// this on host restart so the host rejoins at the barrier instant instead
// of sending from a clock in the other hosts' past. A no-op for t <= now.
func (e *Engine) SkipTo(t Time) {
	if t > e.now {
		e.stats.IdleTime += t.Sub(e.now)
		e.now = t
	}
}

// EngineState is the serializable summary of an engine's dynamic state.
type EngineState struct {
	// Now is the engine clock.
	Now Time
	// Seq is the scheduling sequence counter (total At/After/Reschedule
	// calls so far); it participates in FIFO tie-breaks, so two engines
	// with different Seq can diverge even with equal pending sets.
	Seq uint64
	// Pending is the number of queued events.
	Pending int
	// EventsHash folds the pending-event set — every (when, seq, name)
	// triple in (when, seq) order — into one FNV-1a 64 value. It is
	// queue-kind independent: heap and wheel engines with the same pending
	// set hash identically.
	EventsHash uint64
	// RandDraws is the RNG stream position (see Engine.RandDraws).
	RandDraws uint64
	// Stats is the accounting snapshot.
	Stats Stats
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	h = fnvUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// State captures the engine's dynamic state. It is a read-only walk — the
// queue is not disturbed — and deliberately cold-path: it allocates a
// scratch slice to sort the pending set into the canonical (when, seq)
// order before hashing.
func (e *Engine) State() EngineState {
	events := make([]*event, 0, e.queue.len())
	e.queue.forEach(func(n *event) { events = append(events, n) })
	sort.Slice(events, func(i, j int) bool { return eventLess(events[i], events[j]) })
	h := uint64(fnvOffset64)
	for _, n := range events {
		h = fnvUint64(h, uint64(n.when))
		h = fnvUint64(h, n.seq)
		h = fnvString(h, n.name)
	}
	return EngineState{
		Now:        e.now,
		Seq:        e.seq,
		Pending:    len(events),
		EventsHash: h,
		RandDraws:  e.RandDraws(),
		Stats:      e.stats,
	}
}

// ForEachPending calls fn for every queued event in canonical (when, seq)
// order with the event's schedule instant and diagnostic name. Like State
// it is a cold-path diagnostic walk.
func (e *Engine) ForEachPending(fn func(when Time, name string)) {
	events := make([]*event, 0, e.queue.len())
	e.queue.forEach(func(n *event) { events = append(events, n) })
	sort.Slice(events, func(i, j int) bool { return eventLess(events[i], events[j]) })
	for _, n := range events {
		fn(n.when, n.name)
	}
}
