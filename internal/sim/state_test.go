package sim

import "testing"

// TestStateQueueKindIndependent pins the checkpoint contract: two engines
// with the same history must export identical EngineState regardless of the
// event-queue implementation behind them.
func TestStateQueueKindIndependent(t *testing.T) {
	build := func(k QueueKind) *Engine {
		e := NewEngine(7, WithEventQueue(k))
		for i := 0; i < 200; i++ {
			d := Duration(e.Rand().Int63n(int64(5 * Second)))
			e.After(d, "t", func() {})
		}
		e.Run(Time(Second))
		// Leave a mixed pending set: short and far-horizon events.
		e.After(3*Second, "short", func() {})
		e.After(2*Minute, "far", func() {})
		return e
	}
	h := build(QueueHeap).State()
	w := build(QueueWheel).State()
	if h != w {
		t.Fatalf("state differs across queue kinds:\nheap:  %+v\nwheel: %+v", h, w)
	}
	if h.Pending == 0 || h.EventsHash == 0 {
		t.Fatalf("degenerate state: %+v", h)
	}
}

// TestStateDetectsDivergence: engines with different histories must not
// collide on the events hash (the keyframe verifier depends on it).
func TestStateDetectsDivergence(t *testing.T) {
	a := NewEngine(1)
	b := NewEngine(1)
	a.After(Second, "x", func() {})
	b.After(Second, "y", func() {}) // same instant, different name
	if a.State().EventsHash == b.State().EventsHash {
		t.Fatal("events hash ignored the event name")
	}
	c := NewEngine(1)
	c.After(2*Second, "x", func() {}) // same name, different instant
	if a.State().EventsHash == c.State().EventsHash {
		t.Fatal("events hash ignored the event instant")
	}
}

// TestRandDrawsCountsAndPreservesStream: the counting wrapper must not
// change the delivered random stream, and the draw count must advance with
// use so (seed, draws) pins the RNG position.
func TestRandDrawsCountsAndPreservesStream(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	if a.RandDraws() != 0 {
		t.Fatalf("fresh engine has %d draws", a.RandDraws())
	}
	var got, want []int64
	for i := 0; i < 64; i++ {
		want = append(want, b.Rand().Int63())
		got = append(got, a.Rand().Int63())
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream diverged at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if a.RandDraws() == 0 {
		t.Fatal("draw count did not advance")
	}
	if a.RandDraws() != b.RandDraws() {
		t.Fatalf("equal use, unequal draw counts: %d vs %d", a.RandDraws(), b.RandDraws())
	}
	// Fast-forwarding a fresh engine by the same number of raw draws lands
	// on the same stream position — the replay-based RNG restore.
	c := NewEngine(42)
	for c.RandDraws() < a.RandDraws() {
		c.Rand().Int63()
	}
	if c.Rand().Int63() != a.Rand().Int63() {
		t.Fatal("draw-count fast-forward missed the stream position")
	}
}

// TestStopResume: Resume undoes Stop and the backlog replays at the
// original instants.
func TestStopResume(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Duration{Second, 2 * Second, 3 * Second} {
		e.After(d, "t", func() { fired = append(fired, e.Now()) })
	}
	e.Run(Time(Second)) // first event runs
	e.Stop()
	e.Run(10 * Time(Second))
	if len(fired) != 1 {
		t.Fatalf("stopped engine ran %d events, want 1", len(fired))
	}
	e.Resume()
	if e.Stopped() {
		t.Fatal("Resume left the engine stopped")
	}
	e.Run(10 * Time(Second))
	if len(fired) != 3 {
		t.Fatalf("resumed engine ran %d events, want 3", len(fired))
	}
	if fired[1] != 2*Time(Second) || fired[2] != 3*Time(Second) {
		t.Fatalf("backlog replayed at wrong instants: %v", fired)
	}
}

// TestForEachPendingOrder: the export walk delivers (when, seq) order on
// both queue kinds.
func TestForEachPendingOrder(t *testing.T) {
	for _, k := range []QueueKind{QueueHeap, QueueWheel} {
		e := NewEngine(3, WithEventQueue(k))
		for i := 0; i < 100; i++ {
			e.After(Duration(e.Rand().Int63n(int64(Minute))), "t", func() {})
		}
		var last Time
		n := 0
		e.ForEachPending(func(when Time, name string) {
			if when < last {
				t.Fatalf("%s: out-of-order walk: %v after %v", k, when, last)
			}
			last = when
			n++
		})
		if n != e.Pending() {
			t.Fatalf("%s: walked %d of %d pending", k, n, e.Pending())
		}
	}
}
