package sim

import (
	"math/rand"
	"testing"
)

// TestEventQueueCrossCheck drives a heap-backed and a wheel-backed engine
// through the same deterministic stream of 10k mixed At/Cancel/Reschedule
// operations and requires identical firing schedules — the (when, seq)
// total order that makes traces byte-identical across queue kinds.
func TestEventQueueCrossCheck(t *testing.T) {
	type firing struct {
		at    Time
		label int
	}
	run := func(kind QueueKind) ([]firing, Stats) {
		const ops = 10000
		rng := rand.New(rand.NewSource(99))
		e := NewEngine(0, WithEventQueue(kind))
		var log []firing
		var handles []Event
		label := 0
		for i := 0; i < ops; i++ {
			switch r := rng.Intn(10); {
			case r < 5:
				// Schedule with a spread of horizons: same-instant ties,
				// sub-tick deltas, and multi-level wheel distances.
				label++
				l := label
				var d Duration
				switch rng.Intn(4) {
				case 0:
					d = 0 // ties at the current instant
				case 1:
					d = Duration(rng.Int63n(int64(2 * Millisecond)))
				case 2:
					d = Duration(rng.Int63n(int64(5 * Second)))
				default:
					d = Duration(rng.Int63n(int64(10 * Minute)))
				}
				handles = append(handles, e.After(d, "x", func() {
					log = append(log, firing{e.Now(), l})
				}))
			case r < 7 && len(handles) > 0:
				// Cancel a random handle; stale ones must be no-ops.
				e.Cancel(handles[rng.Intn(len(handles))])
			case r < 9 && len(handles) > 0:
				// Reschedule a random still-pending handle, earlier or later.
				if h := handles[rng.Intn(len(handles))]; h.Pending() {
					e.Reschedule(h, e.Now().Add(Duration(rng.Int63n(int64(30*Second)))))
				}
			default:
				e.Step()
			}
		}
		e.RunAll()
		return log, e.Stats()
	}

	heapLog, heapStats := run(QueueHeap)
	wheelLog, wheelStats := run(QueueWheel)
	if len(heapLog) == 0 {
		t.Fatal("no events fired; the cross-check exercised nothing")
	}
	if len(heapLog) != len(wheelLog) {
		t.Fatalf("firing counts differ: heap %d, wheel %d", len(heapLog), len(wheelLog))
	}
	for i := range heapLog {
		if heapLog[i] != wheelLog[i] {
			t.Fatalf("firing %d differs: heap %+v, wheel %+v", i, heapLog[i], wheelLog[i])
		}
	}
	if heapStats != wheelStats {
		t.Fatalf("stats differ: heap %+v, wheel %+v", heapStats, wheelStats)
	}
}

// TestWheelQueueFarHorizon exercises the outer wheels and the beyond-horizon
// clamp: events farther than the wheel's direct 2^32-tick span must still
// fire, in order, and never early.
func TestWheelQueueFarHorizon(t *testing.T) {
	e := NewEngine(0, WithEventQueue(QueueWheel))
	var order []int
	at := make(map[int]Time)
	// Distances chosen to land in each wheel level and beyond the horizon.
	horizon := Duration(wheelHorizon) << wheelShift
	delays := []Duration{
		Millisecond,           // tv1
		500 * Millisecond,     // tvn[0]
		30 * Second,           // tvn[1]
		20 * Minute,           // tvn[2]
		30 * Hour,             // tvn[3]
		horizon + 24*Hour,     // clamped, one re-cascade
		horizon + 40*24*Hour,  // clamped, several re-cascades
		2*horizon + 7*24*Hour, // clamped repeatedly
	}
	for i, d := range delays {
		i, d := i, d
		e.After(d, "far", func() {
			order = append(order, i)
			at[i] = e.Now()
		})
	}
	e.RunAll()
	if len(order) != len(delays) {
		t.Fatalf("fired %d of %d events: %v", len(order), len(delays), order)
	}
	for i, d := range delays {
		if order[i] != i {
			t.Fatalf("out of order: %v", order)
		}
		if at[i] != Time(d) {
			t.Fatalf("event %d fired at %v, want %v (early/late delivery)", i, at[i], Time(d))
		}
	}
}

// TestEngineZeroAllocSteadyState is the acceptance guard: once the freelist
// is warm, the At+Step hot path must run without a single heap allocation,
// on both queue implementations. Run under -count=1 in CI (scripts/check.sh)
// so a regression fails the build.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		e := NewEngine(0, WithEventQueue(kind))
		fn := func() {}
		// Warm the freelist and the heap queue's backing slice.
		for i := 0; i < 64; i++ {
			e.After(Duration(i)*Microsecond, "warm", fn)
		}
		e.RunAll()
		if allocs := testing.AllocsPerRun(1000, func() {
			e.After(50*Microsecond, "hot", fn)
			e.Step()
		}); allocs != 0 {
			t.Errorf("%v: At+Step steady state allocates %.1f objects/op, want 0", kind, allocs)
		}
		if allocs := testing.AllocsPerRun(1000, func() {
			ev := e.After(50*Microsecond, "hot", fn)
			e.Reschedule(ev, e.Now().Add(80*Microsecond))
			if !e.Cancel(ev) {
				t.Fatal("cancel failed")
			}
		}); allocs != 0 {
			t.Errorf("%v: After+Reschedule+Cancel allocates %.1f objects/op, want 0", kind, allocs)
		}
	}
}

// TestEventAllocsPlateau pins the freelist accounting: node allocations
// track the high-water mark of simultaneously pending events, not the total
// scheduled.
func TestEventAllocsPlateau(t *testing.T) {
	e := NewEngine(0)
	fn := func() {}
	for i := 0; i < 8; i++ {
		e.After(Duration(i)*Millisecond, "w", fn)
	}
	e.RunAll()
	if got := e.Stats().EventAllocs; got != 8 {
		t.Fatalf("EventAllocs = %d, want 8", got)
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < 8; i++ {
			e.After(Duration(i)*Millisecond, "w", fn)
		}
		e.RunAll()
	}
	if got := e.Stats().EventAllocs; got != 8 {
		t.Fatalf("EventAllocs grew to %d after recycling, want plateau at 8", got)
	}
}

// TestStaleHandleSafety checks that handles to fired events stay inert after
// their node is recycled for an unrelated event: Pending is false, Cancel is
// a no-op, and the new event is unaffected.
func TestStaleHandleSafety(t *testing.T) {
	e := NewEngine(0)
	first := e.After(Millisecond, "first", func() {})
	e.RunAll()
	ran := false
	second := e.After(Millisecond, "second", func() { ran = true })
	if first.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if e.Cancel(first) {
		t.Fatal("stale handle canceled something")
	}
	if !second.Pending() {
		t.Fatal("stale cancel disturbed the live event")
	}
	e.RunAll()
	if !ran {
		t.Fatal("live event did not run")
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		b.Run(kind.String(), func(b *testing.B) {
			e := NewEngine(0, WithEventQueue(kind))
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(50*Microsecond, "bench", fn)
				e.Step()
			}
		})
	}
}

// BenchmarkEnginePendingLoad measures scheduling against a populated queue,
// where the heap pays O(log n) sift costs and the wheel stays O(1).
func BenchmarkEnginePendingLoad(b *testing.B) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		b.Run(kind.String(), func(b *testing.B) {
			e := NewEngine(0, WithEventQueue(kind))
			fn := func() {}
			for i := 0; i < 4096; i++ {
				e.After(Duration(i+1)*Millisecond, "load", fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := e.After(Duration(i%4000)*Millisecond+Microsecond, "bench", fn)
				e.Cancel(ev)
			}
		})
	}
}
