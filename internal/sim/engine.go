package sim

import (
	"fmt"
	"math/rand"
)

// event is the engine's internal timer node. Nodes are owned by the engine
// and recycled through a freelist once they fire or are canceled; user code
// only ever holds generation-validated Event handles, so a recycled node can
// never be confused with the event a stale handle referred to.
type event struct {
	when Time
	seq  uint64 // tie-break: FIFO among events at the same instant
	gen  uint64 // bumped on release; validates handles
	name string
	fn   func()

	pending bool

	// index is the node's position in the heap queue.
	index int
	// next/prev link the node into a wheel bucket while queued there, and
	// next alone threads the freelist.
	next, prev *event
	// bucket is the wheel bucket currently holding the node.
	bucket *wheelBucket
}

// Event is a handle to a scheduled callback, returned by At/After. It is a
// small value (copy freely). A handle is live while its event is pending;
// once the event fires or is canceled the handle goes stale and Pending
// reports false forever, even after the engine recycles the underlying
// storage for a new event. The zero Event is a (stale) handle to nothing.
type Event struct {
	n   *event
	gen uint64
}

// Pending reports whether the event is still queued. It is stale-safe: a
// handle to a fired or canceled event reports false even if the engine has
// since reused the event's storage.
func (e Event) Pending() bool { return e.n != nil && e.n.gen == e.gen && e.n.pending }

// When returns the instant the event is scheduled for. It is meaningful only
// while the event is pending; stale handles return 0.
func (e Event) When() Time {
	if e.Pending() {
		return e.n.when
	}
	return 0
}

// Name returns the diagnostic label given at scheduling time, or "" for a
// stale handle.
func (e Event) Name() string {
	if e.Pending() {
		return e.n.name
	}
	return ""
}

// eventQueue is the priority queue behind the engine: a total order over
// pending events by (when, seq). Both implementations — the index-based
// binary heap and the hierarchical timer wheel — dequeue in exactly this
// order, which is what keeps traces byte-identical across queue choices.
type eventQueue interface {
	// push inserts a node (not currently queued).
	push(n *event)
	// peek returns the minimum (when, seq) node without removing it, or nil.
	peek() *event
	// pop removes and returns the minimum node.
	pop() *event
	// remove unlinks an arbitrary queued node.
	remove(n *event)
	// update re-positions a queued node after its when/seq changed.
	update(n *event)
	// forEach visits every queued node in unspecified order (cold-path
	// state export; callers sort).
	forEach(fn func(*event))
	// len returns the number of queued nodes.
	len() int
	// name identifies the implementation for benchmarks.
	name() string
}

// eventLess is the queue order: earliest instant first, FIFO by seq within
// one instant.
func eventLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// QueueKind selects the engine's event-queue implementation.
type QueueKind uint8

const (
	// QueueHeap is the default: an index-based binary min-heap specialized
	// to event nodes (no interface boxing, O(log n) operations).
	QueueHeap QueueKind = iota
	// QueueWheel is a hierarchical timing wheel over ~1 ms ticks (the
	// cascading tv1..tv5 layout of internal/timerwheel, adapted to
	// nanosecond instants): O(1) amortized scheduling, the structure the
	// paper's Section 2.1 kernels use for exactly this workload.
	QueueWheel
)

// String returns the queue kind's short name.
func (k QueueKind) String() string {
	switch k {
	case QueueHeap:
		return "heap"
	case QueueWheel:
		return "wheel"
	default:
		return fmt.Sprintf("queue(%d)", uint8(k))
	}
}

// ParseQueueKind resolves a queue name ("heap", "wheel"; "" means the
// default heap).
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "", "heap":
		return QueueHeap, nil
	case "wheel":
		return QueueWheel, nil
	default:
		return QueueHeap, fmt.Errorf("sim: unknown event queue %q", s)
	}
}

// Option configures an Engine.
type Option func(*Engine)

// WithEventQueue selects the event-queue implementation. The choice changes
// constant factors only: dequeue order, and therefore every trace, is
// identical across kinds.
func WithEventQueue(k QueueKind) Option {
	return func(e *Engine) { e.queueKind = k }
}

// Stats accumulates engine-level accounting used by the power/overhead
// experiments.
type Stats struct {
	// Events is the total number of events executed.
	Events uint64
	// Wakeups counts CPU wakeups: transitions from virtual idle to running.
	// Events executing at the same instant share one wakeup, which is how
	// timer coalescing (round_jiffies, slack windows, dynticks) saves power.
	Wakeups uint64
	// Canceled counts events canceled before they ran.
	Canceled uint64
	// IdleTime is the total virtual time during which no event was running,
	// i.e. the sum of gaps between distinct event instants.
	IdleTime Duration
	// EventAllocs counts event nodes allocated from the Go heap. In steady
	// state the freelist satisfies every At/After, so this plateaus at the
	// peak number of simultaneously pending events.
	EventAllocs uint64
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use: simulations are single-threaded by design so that a seed
// fully determines the trace.
type Engine struct {
	now       Time
	queue     eventQueue
	queueKind QueueKind
	free      *event // freelist of released nodes, threaded via next
	seq       uint64
	rng       *rand.Rand
	src       *countingSource
	stats     Stats
	lastWake  Time
	hasWoken  bool
	running   bool
	stopped   bool
}

// NewEngine returns an engine at time zero whose randomness derives entirely
// from seed.
func NewEngine(seed int64, opts ...Option) *Engine {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	e := &Engine{rng: rand.New(src), src: src}
	for _, o := range opts {
		o(e)
	}
	switch e.queueKind {
	case QueueWheel:
		e.queue = newWheelQueue()
	default:
		e.queue = &heapQueue{}
	}
	return e
}

// QueueName identifies the event-queue implementation in use.
func (e *Engine) QueueName() string { return e.queue.name() }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Stats returns a copy of the accumulated accounting.
func (e *Engine) Stats() Stats { return e.stats }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.len() }

// acquire takes a node from the freelist, falling back to the heap when the
// list is empty (cold start or a new high-water mark of pending events).
//
//lint:allocfree steady-state acquire is a freelist pop; the fallback below is the accounted cold path
func (e *Engine) acquire() *event {
	if n := e.free; n != nil {
		e.free = n.next
		n.next = nil
		return n
	}
	e.stats.EventAllocs++
	//lint:ignore allocfree cold path: freelist miss at cold start or a new pending high-water mark, counted in stats.EventAllocs
	return &event{}
}

// release invalidates every outstanding handle to the node (generation bump)
// and returns it to the freelist.
//
//lint:allocfree freelist push: field resets and one pointer link
func (e *Engine) release(n *event) {
	n.gen++
	n.fn = nil
	n.name = ""
	n.pending = false
	n.prev = nil
	n.bucket = nil
	n.next = e.free
	e.free = n
}

// At schedules fn to run at instant t. Scheduling in the past (t < Now) is a
// programming error and panics: the simulated kernels are responsible for
// clamping, just as real kernels must decide what an already-expired timer
// means. Steady-state calls are allocation-free: the returned handle is a
// value and the event node comes from the engine's freelist.
//
//lint:allocfree the schedule path PR 3 de-allocated; guarded dynamically by TestEngineZeroAllocSteadyState
func (e *Engine) At(t Time, name string, fn func()) Event {
	if t < e.now {
		//lint:ignore allocfree panic formatting runs once, on a programming error, never in steady state
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, e.now))
	}
	e.seq++
	//lint:ignore allocfree inlined freelist-miss fallback from acquire; cold, counted in stats.EventAllocs
	n := e.acquire()
	n.when, n.seq, n.name, n.fn = t, e.seq, name, fn
	n.pending = true
	e.queue.push(n)
	return Event{n: n, gen: n.gen}
}

// After schedules fn to run d from now. Negative d is clamped to zero,
// matching the behaviour of timer syscalls given zero/negative timeouts.
//
//lint:allocfree clamp plus At; nothing of its own may allocate
func (e *Engine) After(d Duration, name string, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), name, fn)
}

// Cancel removes a pending event. It returns false if the event has already
// run or been canceled (stale handles are safe and report false).
//
//lint:allocfree cancel is unlink plus freelist push
func (e *Engine) Cancel(ev Event) bool {
	if !ev.Pending() {
		return false
	}
	e.queue.remove(ev.n)
	e.stats.Canceled++
	e.release(ev.n)
	return true
}

// Reschedule moves a pending event to a new instant, reusing the event
// in place: no allocation, and the handle stays live. The event's FIFO
// tie-break restarts — it receives a fresh sequence number, so it runs after
// every event already scheduled at the new instant, exactly as if it had
// been canceled and re-added (the pre-freelist semantics, now without the
// churn). Instants in the past clamp to now. Rescheduling a fired or
// canceled event is a programming error and panics; callers that may hold a
// stale handle must check Pending first and schedule anew.
//
//lint:allocfree in-place re-key plus queue update; the whole point of reusing the node
func (e *Engine) Reschedule(ev Event, t Time) Event {
	if !ev.Pending() {
		panic("sim: Reschedule of a fired or canceled event (check Pending, then At)")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	n := ev.n
	n.when = t
	n.seq = e.seq
	e.queue.update(n)
	return ev
}

// Step runs the earliest pending event. It returns false if the queue is
// empty or the engine was stopped. The event node is recycled before the
// callback runs, so a rearm inside the callback reuses it immediately.
//
//lint:allocfree the expire path: dequeue, stats, recycle, invoke
func (e *Engine) Step() bool {
	if e.stopped || e.queue.len() == 0 {
		return false
	}
	n := e.queue.pop()
	if n.when > e.now {
		// The CPU was idle between the previous batch and this instant.
		e.stats.IdleTime += n.when.Sub(e.now)
		e.now = n.when
	}
	if !e.hasWoken || e.lastWake != e.now {
		e.stats.Wakeups++
		e.lastWake = e.now
		e.hasWoken = true
	}
	e.stats.Events++
	fn := n.fn
	e.release(n)
	fn()
	return true
}

// Run executes events until the queue is empty, the engine is stopped, or
// virtual time would pass `until`. Events scheduled exactly at `until` run.
// On return the clock reads min(until, time of last event executed), and is
// advanced to `until` if the queue drained earlier.
func (e *Engine) Run(until Time) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped {
		head := e.queue.peek()
		if head == nil || head.when > until {
			break
		}
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.stats.IdleTime += until.Sub(e.now)
		e.now = until
	}
}

// NextAt returns the instant of the earliest pending event. ok is false when
// the queue is empty. The fleet scheduler uses it to find the next global
// instant when a conservative window degenerates (zero-latency links).
func (e *Engine) NextAt() (t Time, ok bool) {
	if n := e.queue.peek(); n != nil {
		return n.when, true
	}
	return 0, false
}

// AdvanceUntil runs every pending event strictly before horizon and returns
// how many executed. It is the bounded-step façade the parallel fleet engine
// advances hosts with: unlike Run, an event scheduled exactly at the horizon
// does NOT run — it belongs to the next conservative window, where an inbound
// cross-host message carrying the same timestamp may still be scheduled ahead
// of or behind it deterministically. The clock is left at the last executed
// event (not pushed to the horizon), so the engine accepts new events at any
// t >= the last execution — in particular at exactly the horizon.
//
//lint:allocfree window advance is peek/Step in a loop; both are alloc-free
func (e *Engine) AdvanceUntil(horizon Time) int {
	if e.running {
		panic("sim: AdvanceUntil called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	n := 0
	for !e.stopped {
		head := e.queue.peek()
		if head == nil || head.when >= horizon {
			break
		}
		e.Step()
		n++
	}
	return n
}

// RunAll drains the queue completely (or until Stop). Intended for tests and
// terminating workloads; a workload with a self-rearming ticker never drains.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Stop halts Run/RunAll after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called.
func (e *Engine) Stopped() bool { return e.stopped }
