package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events are created by Engine.At/After and
// may be canceled before they run. The zero Event is not valid.
type Event struct {
	when  Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	index int    // heap index, -1 once removed
	name  string
	fn    func()
}

// When returns the instant the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Stats accumulates engine-level accounting used by the power/overhead
// experiments.
type Stats struct {
	// Events is the total number of events executed.
	Events uint64
	// Wakeups counts CPU wakeups: transitions from virtual idle to running.
	// Events executing at the same instant share one wakeup, which is how
	// timer coalescing (round_jiffies, slack windows, dynticks) saves power.
	Wakeups uint64
	// Canceled counts events canceled before they ran.
	Canceled uint64
	// IdleTime is the total virtual time during which no event was running,
	// i.e. the sum of gaps between distinct event instants.
	IdleTime Duration
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use: simulations are single-threaded by design so that a seed
// fully determines the trace.
type Engine struct {
	now      Time
	events   eventHeap
	seq      uint64
	rng      *rand.Rand
	stats    Stats
	lastWake Time
	hasWoken bool
	running  bool
	stopped  bool
}

// NewEngine returns an engine at time zero whose randomness derives entirely
// from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Stats returns a copy of the accumulated accounting.
func (e *Engine) Stats() Stats { return e.stats }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at instant t. Scheduling in the past (t < Now) is a
// programming error and panics: the simulated kernels are responsible for
// clamping, just as real kernels must decide what an already-expired timer
// means.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, e.now))
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, name: name, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is clamped to zero,
// matching the behaviour of timer syscalls given zero/negative timeouts.
func (e *Engine) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), name, fn)
}

// Cancel removes a pending event. It returns false if the event has already
// run or been canceled.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.events, ev.index)
	e.stats.Canceled++
	return true
}

// Reschedule moves a pending event to a new instant, preserving its callback.
// If the event already fired it is re-queued. The returned event is ev.
func (e *Engine) Reschedule(ev *Event, t Time) *Event {
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.when = t
	ev.seq = e.seq
	heap.Push(&e.events, ev)
	return ev
}

// Step runs the earliest pending event. It returns false if the queue is
// empty or the engine was stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	if ev.when > e.now {
		// The CPU was idle between the previous batch and this instant.
		e.stats.IdleTime += ev.when.Sub(e.now)
		e.now = ev.when
	}
	if !e.hasWoken || e.lastWake != e.now {
		e.stats.Wakeups++
		e.lastWake = e.now
		e.hasWoken = true
	}
	e.stats.Events++
	ev.fn()
	return true
}

// Run executes events until the queue is empty, the engine is stopped, or
// virtual time would pass `until`. Events scheduled exactly at `until` run.
// On return the clock reads min(until, time of last event executed), and is
// advanced to `until` if the queue drained earlier.
func (e *Engine) Run(until Time) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		if e.events[0].when > until {
			break
		}
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.stats.IdleTime += until.Sub(e.now)
		e.now = until
	}
}

// RunAll drains the queue completely (or until Stop). Intended for tests and
// terminating workloads; a workload with a self-rearming ticker never drains.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Stop halts Run/RunAll after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called.
func (e *Engine) Stopped() bool { return e.stopped }
