package sim

import "testing"

// TestAdvanceUntilBoundary pins the window semantics the fleet engine relies
// on: an event scheduled exactly at the horizon does not run in the current
// window, runs in the next one, and keeps FIFO order against a message
// scheduled at the same instant after the barrier.
func TestAdvanceUntilBoundary(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(99, "before", func() { order = append(order, "before") })
	e.At(100, "at-horizon", func() { order = append(order, "at-horizon") })
	e.At(101, "after", func() { order = append(order, "after") })

	if n := e.AdvanceUntil(100); n != 1 {
		t.Fatalf("AdvanceUntil(100) executed %d events, want 1", n)
	}
	if len(order) != 1 || order[0] != "before" {
		t.Fatalf("window 1 ran %v, want [before]", order)
	}
	if e.Now() != 99 {
		t.Fatalf("clock advanced to %v, want 99 (last executed event)", e.Now())
	}

	// Barrier: a cross-window message lands exactly at the old horizon. It
	// must be accepted (no past-scheduling panic) and run after the locally
	// scheduled event at the same instant (FIFO by seq).
	e.At(100, "msg-at-horizon", func() { order = append(order, "msg-at-horizon") })

	if n := e.AdvanceUntil(101); n != 2 {
		t.Fatalf("AdvanceUntil(101) executed %d events, want 2", n)
	}
	want := []string{"before", "at-horizon", "msg-at-horizon"}
	if len(order) != len(want) {
		t.Fatalf("after window 2: ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("after window 2: ran %v, want %v", order, want)
		}
	}

	if n := e.AdvanceUntil(200); n != 1 {
		t.Fatalf("AdvanceUntil(200) executed %d events, want 1", n)
	}
	if order[len(order)-1] != "after" {
		t.Fatalf("final window ran %v", order)
	}
}

// TestNextAt covers the idle-window jump the fleet uses.
func TestNextAt(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	e.At(500, "x", func() {})
	at, ok := e.NextAt()
	if !ok || at != 500 {
		t.Fatalf("NextAt = %v,%v want 500,true", at, ok)
	}
	// AdvanceUntil below the event leaves it pending.
	if n := e.AdvanceUntil(500); n != 0 {
		t.Fatalf("AdvanceUntil(500) executed %d events, want 0", n)
	}
	if at, ok := e.NextAt(); !ok || at != 500 {
		t.Fatalf("NextAt after no-op window = %v,%v want 500,true", at, ok)
	}
}
