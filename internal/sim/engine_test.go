package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(3 * Second)
	if t1.Seconds() != 3 {
		t.Fatalf("Seconds = %v, want 3", t1.Seconds())
	}
	if d := t1.Sub(t0); d != 3*Second {
		t.Fatalf("Sub = %v, want 3s", d)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("ordering broken")
	}
	if got := DurationOfSeconds(0.004); got != 4*Millisecond {
		t.Fatalf("DurationOfSeconds(0.004) = %v", got)
	}
	if Duration(1500*Millisecond).String() != "1.5s" {
		t.Fatalf("String = %q", Duration(1500*Millisecond).String())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(2*Second, "b", func() { order = append(order, 2) })
	e.After(1*Second, "a", func() { order = append(order, 1) })
	e.After(3*Second, "c", func() { order = append(order, 3) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != Time(3*Second) {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(Second), "x", func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: order = %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.After(Second, "x", func() { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("first cancel should succeed")
	}
	if e.Cancel(ev) {
		t.Fatal("second cancel should fail")
	}
	e.RunAll()
	if ran {
		t.Fatal("canceled event ran")
	}
	if e.Stats().Canceled != 1 {
		t.Fatalf("Canceled = %d", e.Stats().Canceled)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ran []string
	e.After(1*Second, "a", func() { ran = append(ran, "a") })
	e.After(2*Second, "b", func() { ran = append(ran, "b") })
	e.After(5*Second, "c", func() { ran = append(ran, "c") })
	e.Run(Time(2 * Second))
	if len(ran) != 2 {
		t.Fatalf("ran = %v", ran)
	}
	if e.Now() != Time(2*Second) {
		t.Fatalf("now = %v", e.Now())
	}
	// Clock advances to `until` even when no event lies there.
	e.Run(Time(3 * Second))
	if e.Now() != Time(3*Second) {
		t.Fatalf("now = %v", e.Now())
	}
	e.Run(Time(10 * Second))
	if len(ran) != 3 {
		t.Fatalf("ran = %v", ran)
	}
}

func TestEngineWakeupBatching(t *testing.T) {
	e := NewEngine(1)
	// Three events at the same instant: one wakeup. Two further distinct
	// instants: two more wakeups.
	for i := 0; i < 3; i++ {
		e.At(Time(Second), "batch", func() {})
	}
	e.At(Time(2*Second), "x", func() {})
	e.At(Time(3*Second), "y", func() {})
	e.RunAll()
	if got := e.Stats().Wakeups; got != 3 {
		t.Fatalf("Wakeups = %d, want 3", got)
	}
	if got := e.Stats().Events; got != 5 {
		t.Fatalf("Events = %d, want 5", got)
	}
	if got := e.Stats().IdleTime; got != Duration(3*Second) {
		t.Fatalf("IdleTime = %v, want 3s", got)
	}
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine(1)
	var at Time
	ev := e.After(1*Second, "x", func() { at = e.Now() })
	if got := e.Reschedule(ev, Time(4*Second)); !got.Pending() || got.When() != Time(4*Second) {
		t.Fatalf("rescheduled handle: pending=%v when=%v", got.Pending(), got.When())
	}
	e.RunAll()
	if at != Time(4*Second) {
		t.Fatalf("ran at %v, want 4s", at)
	}
	// Rescheduling a fired event is a programming error: the handle is
	// stale, and callers must check Pending and schedule anew.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic rescheduling a fired event")
		}
	}()
	e.Reschedule(ev, e.Now().Add(Second))
}

// TestEngineRescheduleFIFO pins the documented seq semantics: a rescheduled
// event restarts its FIFO tie-break, running after every event already
// scheduled at its new instant — exactly as if it had been canceled and
// re-added. This ordering is part of the golden-trace contract, so it must
// hold identically on both queue implementations.
func TestEngineRescheduleFIFO(t *testing.T) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		e := NewEngine(1, WithEventQueue(kind))
		var order []string
		ev := e.At(Time(Second), "moved", func() { order = append(order, "moved") })
		e.At(Time(2*Second), "a", func() { order = append(order, "a") })
		e.At(Time(2*Second), "b", func() { order = append(order, "b") })
		// Moving "moved" to 2s must place it after a and b, despite its
		// earlier original instant and smaller original seq.
		e.Reschedule(ev, Time(2*Second))
		// A later event at the same instant still runs after the move.
		e.At(Time(2*Second), "c", func() { order = append(order, "c") })
		e.RunAll()
		want := [...]string{"a", "b", "moved", "c"}
		if len(order) != len(want) {
			t.Fatalf("%v: order = %v", kind, order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("%v: order = %v, want %v", kind, order, want)
			}
		}
	}
}

// TestEngineRescheduleEarlier covers the queue-update direction ktimer's
// retick exercises: pulling a pending event to an earlier instant.
func TestEngineRescheduleEarlier(t *testing.T) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		e := NewEngine(1, WithEventQueue(kind))
		var order []string
		ev := e.At(Time(10*Second), "moved", func() { order = append(order, "moved") })
		e.At(Time(5*Second), "mid", func() { order = append(order, "mid") })
		e.Reschedule(ev, Time(2*Second))
		e.RunAll()
		if len(order) != 2 || order[0] != "moved" || order[1] != "mid" {
			t.Fatalf("%v: order = %v", kind, order)
		}
		if e.Now() != Time(5*Second) {
			t.Fatalf("%v: now = %v", kind, e.Now())
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(Second, "x", func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(Time(0), "past", func() {})
}

func TestEngineNegativeAfterClamped(t *testing.T) {
	e := NewEngine(1)
	e.After(Second, "x", func() {})
	e.RunAll()
	ran := false
	e.After(-5*Second, "neg", func() { ran = true })
	e.RunAll()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if e.Now() != Time(Second) {
		t.Fatalf("clock moved: %v", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var rearm func()
	rearm = func() {
		n++
		if n == 5 {
			e.Stop()
			return
		}
		e.After(Second, "tick", rearm)
	}
	e.After(Second, "tick", rearm)
	e.Run(Time(Hour))
	if n != 5 {
		t.Fatalf("n = %d", n)
	}
	if !e.Stopped() {
		t.Fatal("not stopped")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		var fired []Time
		var step func()
		step = func() {
			fired = append(fired, e.Now())
			if len(fired) < 50 {
				e.After(Duration(e.Rand().Int63n(int64(Second))), "r", step)
			}
		}
		e.After(0, "r", step)
		e.RunAll()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Property: however events are scheduled, they execute in nondecreasing time
// order and the clock never runs backwards.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			e.After(Duration(d)%Duration(10*Second), "p", func() {
				times = append(times, e.Now())
			})
		}
		e.RunAll()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerModelEnergy(t *testing.T) {
	m := LaptopPower()
	idle := Stats{}
	span := Duration(Hour)
	base := m.Energy(idle, span)
	if base <= 0 {
		t.Fatal("idle energy not positive")
	}
	// More wakeups strictly cost more energy.
	busy := Stats{Wakeups: 100000, Events: 100000}
	if m.Energy(busy, span) <= base {
		t.Fatal("wakeups are free")
	}
	// Average power of a fully idle hour equals idle watts.
	if got := m.AveragePower(idle, span); got != m.IdleWatts {
		t.Fatalf("idle power = %v", got)
	}
	// Busy time is capped at the span.
	absurd := Stats{Events: 1 << 40}
	if p := m.AveragePower(absurd, Duration(Second)); p > m.ActiveWatts+1 {
		t.Fatalf("power exceeded active ceiling: %v", p)
	}
	if m.Energy(idle, 0) != 0 {
		t.Fatal("zero span must cost zero")
	}
	if m.String() == "" {
		t.Fatal("empty description")
	}
}

func TestPowerModelMonotoneInWakeups(t *testing.T) {
	m := LaptopPower()
	span := Duration(Minute)
	last := -1.0
	for w := uint64(0); w <= 10000; w += 1000 {
		e := m.Energy(Stats{Wakeups: w}, span)
		if e <= last {
			t.Fatalf("not monotone at %d wakeups", w)
		}
		last = e
	}
}
