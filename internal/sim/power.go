package sim

import "fmt"

// PowerModel converts engine accounting into an energy estimate, giving the
// Section 5.3 experiments a physical unit: every avoided wakeup is energy
// the CPU package did not spend leaving its sleep state, and every saved
// busy microsecond is active power not drawn.
//
// The defaults approximate a 2008-era laptop (the paper's motivation:
// "timeouts with definite wakeup times can cause significant (and
// unnecessary) power consumption on systems that use low-power modes during
// idle periods").
type PowerModel struct {
	// IdleWatts is package power in the deepest idle state.
	IdleWatts float64
	// ActiveWatts is package power while executing.
	ActiveWatts float64
	// WakeupJoules is the energy cost of one idle-to-active transition
	// (C-state exit, cache refill).
	WakeupJoules float64
	// EventCPU approximates CPU time consumed per executed event.
	EventCPU Duration
}

// LaptopPower is a plausible 2008 laptop: 0.5 W deep idle, 12 W active,
// 2 mJ per wakeup, ~5 µs of CPU per timer event.
func LaptopPower() PowerModel {
	return PowerModel{
		IdleWatts:    0.5,
		ActiveWatts:  12,
		WakeupJoules: 0.002,
		EventCPU:     5 * Microsecond,
	}
}

// Energy estimates the joules consumed over a span with the given engine
// stats.
func (m PowerModel) Energy(stats Stats, span Duration) float64 {
	if span <= 0 {
		return 0
	}
	busy := Duration(stats.Events) * m.EventCPU
	if busy > span {
		busy = span
	}
	idle := span - busy
	return float64(stats.Wakeups)*m.WakeupJoules +
		busy.Seconds()*m.ActiveWatts +
		idle.Seconds()*m.IdleWatts
}

// AveragePower is Energy over the span, in watts.
func (m PowerModel) AveragePower(stats Stats, span Duration) float64 {
	if span <= 0 {
		return 0
	}
	return m.Energy(stats, span) / span.Seconds()
}

// String describes the model.
func (m PowerModel) String() string {
	return fmt.Sprintf("power(idle %.1fW, active %.1fW, wakeup %.1fmJ)",
		m.IdleWatts, m.ActiveWatts, m.WakeupJoules*1000)
}
