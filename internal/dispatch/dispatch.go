// Package dispatch prototypes the paper's Section 5.5 direction: merging
// the timer subsystem into the CPU scheduler. "Setting a timer implicitly
// requests that a piece of code run at a particular time in the future" —
// so instead of a timer multiplexer plus a separate scheduler interacting
// only through thread unblocking, tasks here declare temporal requirements
// directly to the dispatcher:
//
//	task.RunAt(window, cost, fn)      // run fn within the window, needs ~cost CPU
//	task.Periodic(period, slack, cost, fn)
//
// The scheduler serializes requirements on the simulated CPU, choosing by
// earliest latest-deadline (EDF) among eligible requirements and breaking
// ties by weighted virtual runtime, so application timing requirements
// compose with the system-wide CPU allocation policy — the combination the
// paper says current designs lack. Scheduler Activations-style, the
// dispatcher runs *the right piece of code* at the right time rather than
// merely unblocking a thread.
//
// What this buys, measurably: a soft-real-time application built on
// Periodic makes zero timer-subsystem accesses (compare the Skype/Firefox
// flurries of Section 4), the dispatcher batches its own wakeups, and
// deadline adherence is a first-class, observable property.
package dispatch

import (
	"container/heap"
	"fmt"

	"timerstudy/internal/sim"
)

// Context is handed to a dispatched function.
type Context struct {
	// Scheduled is the instant the requirement became eligible.
	Scheduled sim.Time
	// Start is when the dispatcher actually started it.
	Start sim.Time
	// Deadline is the latest acceptable start (the window's end).
	Deadline sim.Time
	// Missed reports Start > Deadline.
	Missed bool
}

// Stats is the dispatcher's accounting.
type Stats struct {
	// Dispatches counts requirements run.
	Dispatches uint64
	// Misses counts requirements started after their deadline.
	Misses uint64
	// Wakeups counts scheduler activations from idle.
	Wakeups uint64
	// BusyTime is total CPU time consumed.
	BusyTime sim.Duration
}

// Scheduler owns the simulated CPU and the requirement queue.
type Scheduler struct {
	eng   *sim.Engine
	ready reqHeap
	stats Stats

	running  bool
	busy     bool
	idleEv   sim.Event
	wakeFn   func() // bound once; arming the idle wake must not allocate
	seq      uint64
	taskSeq  int
	nowEvSet bool
}

// NewScheduler creates a dispatcher on the engine.
func NewScheduler(eng *sim.Engine) *Scheduler {
	s := &Scheduler{eng: eng}
	s.wakeFn = func() {
		s.stats.Wakeups++
		s.decide()
	}
	return s
}

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Task is a schedulable entity with a CPU weight.
type Task struct {
	s *Scheduler
	// Name labels the task.
	Name string
	// Weight scales CPU entitlement (default 1).
	Weight float64

	vruntime float64 // weighted CPU time consumed
	// Dispatches and Misses are per-task counters.
	Dispatches, Misses uint64
}

// NewTask registers a task.
func (s *Scheduler) NewTask(name string, weight float64) *Task {
	if weight <= 0 {
		weight = 1
	}
	s.taskSeq++
	return &Task{s: s, Name: name, Weight: weight}
}

// String identifies the task.
func (t *Task) String() string { return fmt.Sprintf("task(%s)", t.Name) }

// requirement is one pending dispatch request.
type requirement struct {
	task     *Task
	earliest sim.Time
	latest   sim.Time
	cost     sim.Duration
	fn       func(Context)
	index    int
	seq      uint64
	canceled bool
}

// Requirement is the cancellable handle returned by RunAt.
type Requirement struct{ r *requirement }

// Cancel withdraws the requirement; reports whether it was still queued.
func (h Requirement) Cancel() bool {
	if h.r == nil || h.r.canceled || h.r.index < 0 {
		return false
	}
	h.r.canceled = true
	return true
}

// Window expresses when a requirement may run: any instant in
// [After, After+Slack] from now. It is the Section 5.3 time specification
// applied to dispatch.
type Window struct {
	// After is the earliest acceptable delay.
	After sim.Duration
	// Slack is the width of the acceptable window.
	Slack sim.Duration
}

// RunAt declares: run fn somewhere in the window, expecting to use ~cost
// CPU. This is the timer interface subsumed: a Delay is RunAt with a
// window; a Timeout is RunAt canceled on completion.
func (t *Task) RunAt(w Window, cost sim.Duration, fn func(Context)) Requirement {
	s := t.s
	if w.After < 0 {
		w.After = 0
	}
	if w.Slack < 0 {
		w.Slack = 0
	}
	if cost <= 0 {
		cost = sim.Microsecond
	}
	s.seq++
	r := &requirement{
		task:     t,
		earliest: s.eng.Now().Add(w.After),
		latest:   s.eng.Now().Add(w.After + w.Slack),
		cost:     cost,
		fn:       fn,
		seq:      s.seq,
	}
	heap.Push(&s.ready, r)
	s.kick()
	return Requirement{r: r}
}

// Periodic declares a recurring requirement with a drift-free schedule.
// Returns a stop function.
func (t *Task) Periodic(period, slack, cost sim.Duration, fn func(Context)) (stop func()) {
	stopped := false
	next := t.s.eng.Now().Add(period)
	var arm func()
	arm = func() {
		if stopped {
			return
		}
		delay := next.Sub(t.s.eng.Now())
		if delay < 0 {
			delay = 0
		}
		t.RunAt(Window{After: delay, Slack: slack}, cost, func(c Context) {
			if stopped {
				return
			}
			next = next.Add(period)
			for next.Sub(t.s.eng.Now()) < 0 {
				next = next.Add(period)
			}
			arm()
			fn(c)
		})
	}
	arm()
	return func() { stopped = true }
}

// kick schedules a dispatch decision if the CPU is free.
func (s *Scheduler) kick() {
	if s.busy || s.nowEvSet {
		return
	}
	s.decide()
}

// decide picks and runs the best eligible requirement, or arms a wakeup at
// the next earliest-eligible instant. One wakeup can serve many
// requirements whose windows overlap — the dispatcher coalesces by
// construction.
func (s *Scheduler) decide() {
	s.dropCanceled()
	if len(s.ready) == 0 || s.busy {
		return
	}
	now := s.eng.Now()
	// Eligible: earliest <= now. Among them, min latest (EDF), tie-broken
	// by weighted vruntime.
	best := -1
	for i, r := range s.ready {
		if r.canceled || r.earliest > now {
			continue
		}
		if best == -1 || s.before(r, s.ready[best]) {
			best = i
		}
	}
	if best == -1 {
		// Nothing eligible: sleep as late as each window allows while
		// reserving the requirement's own service time — the Section 5.3
		// batching applied to dispatch. Overlapping windows then share
		// one activation.
		var wake sim.Time = -1
		for _, r := range s.ready {
			if r.canceled {
				continue
			}
			w := r.latest.Add(-r.cost)
			if w < r.earliest {
				w = r.earliest
			}
			if wake < 0 || w < wake {
				wake = w
			}
		}
		if wake >= 0 && (!s.idleEv.Pending() || s.idleEv.When() > wake) {
			if s.idleEv.Pending() {
				_ = s.eng.Cancel(s.idleEv)
			}
			s.idleEv = s.eng.At(wake, "dispatch:wake", s.wakeFn)
		}
		return
	}
	r := heap.Remove(&s.ready, best).(*requirement)
	s.run(r)
}

// before orders eligible requirements: EDF, then fairness.
func (s *Scheduler) before(a, b *requirement) bool {
	if a.latest != b.latest {
		return a.latest < b.latest
	}
	av := a.task.vruntime / a.task.Weight
	bv := b.task.vruntime / b.task.Weight
	if av != bv {
		return av < bv
	}
	return a.seq < b.seq
}

// run executes a requirement on the CPU for its declared cost.
func (s *Scheduler) run(r *requirement) {
	now := s.eng.Now()
	ctx := Context{
		Scheduled: r.earliest,
		Start:     now,
		Deadline:  r.latest,
		Missed:    now > r.latest,
	}
	s.stats.Dispatches++
	r.task.Dispatches++
	if ctx.Missed {
		s.stats.Misses++
		r.task.Misses++
	}
	s.busy = true
	r.task.vruntime += float64(r.cost)
	s.stats.BusyTime += r.cost
	r.fn(ctx)
	s.eng.After(r.cost, "dispatch:complete", func() {
		s.busy = false
		s.decide()
	})
}

// dropCanceled compacts the heap lazily.
func (s *Scheduler) dropCanceled() {
	for len(s.ready) > 0 {
		all := true
		for _, r := range s.ready {
			if !r.canceled {
				all = false
				break
			}
		}
		if !all {
			// Remove canceled entries individually.
			for i := 0; i < len(s.ready); {
				if s.ready[i].canceled {
					heap.Remove(&s.ready, i)
				} else {
					i++
				}
			}
			return
		}
		s.ready = s.ready[:0]
	}
}

type reqHeap []*requirement

func (h reqHeap) Len() int { return len(h) }
func (h reqHeap) Less(i, j int) bool {
	if h[i].latest != h[j].latest {
		return h[i].latest < h[j].latest
	}
	return h[i].seq < h[j].seq
}
func (h reqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *reqHeap) Push(x any) {
	r := x.(*requirement)
	r.index = len(*h)
	*h = append(*h, r)
}
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	r.index = -1
	*h = old[:n-1]
	return r
}
