package dispatch

import (
	"testing"

	"timerstudy/internal/sim"
)

func TestRunAtWithinWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	task := s.NewTask("a", 1)
	var ctx Context
	ran := false
	task.RunAt(Window{After: sim.Second, Slack: 100 * sim.Millisecond}, sim.Millisecond, func(c Context) {
		ctx, ran = c, true
	})
	eng.Run(sim.Time(sim.Minute))
	if !ran {
		t.Fatal("never ran")
	}
	if ctx.Start < sim.Time(sim.Second) || ctx.Start > sim.Time(1100*sim.Millisecond) {
		t.Fatalf("started at %v", ctx.Start)
	}
	if ctx.Missed {
		t.Fatal("marked missed")
	}
}

func TestCancel(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	task := s.NewTask("a", 1)
	ran := false
	h := task.RunAt(Window{After: sim.Second}, sim.Millisecond, func(Context) { ran = true })
	if !h.Cancel() {
		t.Fatal("cancel failed")
	}
	if h.Cancel() {
		t.Fatal("double cancel")
	}
	eng.Run(sim.Time(sim.Minute))
	if ran {
		t.Fatal("canceled requirement ran")
	}
}

func TestEDFPicksTighterDeadline(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	a := s.NewTask("loose", 1)
	b := s.NewTask("tight", 1)
	var order []string
	// Both eligible at 10 ms; the CPU can only run one at a time.
	a.RunAt(Window{After: 10 * sim.Millisecond, Slack: 100 * sim.Millisecond}, 5*sim.Millisecond, func(Context) {
		order = append(order, "loose")
	})
	b.RunAt(Window{After: 10 * sim.Millisecond, Slack: 2 * sim.Millisecond}, 5*sim.Millisecond, func(Context) {
		order = append(order, "tight")
	})
	eng.Run(sim.Time(sim.Second))
	if len(order) != 2 || order[0] != "tight" {
		t.Fatalf("order = %v", order)
	}
	if s.Stats().Misses != 0 {
		t.Fatalf("misses = %d", s.Stats().Misses)
	}
}

func TestDeadlineMissAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	hog := s.NewTask("hog", 1)
	victim := s.NewTask("victim", 1)
	// The hog occupies the CPU past the victim's window.
	hog.RunAt(Window{}, 50*sim.Millisecond, func(Context) {})
	missed := false
	victim.RunAt(Window{After: sim.Millisecond, Slack: 5 * sim.Millisecond}, sim.Millisecond, func(c Context) {
		missed = c.Missed
	})
	eng.Run(sim.Time(sim.Second))
	if !missed {
		t.Fatal("victim not marked missed")
	}
	if s.Stats().Misses != 1 || victim.Misses != 1 || hog.Misses != 0 {
		t.Fatalf("miss accounting: sched=%d victim=%d hog=%d",
			s.Stats().Misses, victim.Misses, hog.Misses)
	}
}

func TestPeriodicDriftFree(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	task := s.NewTask("audio", 1)
	var starts []sim.Time
	stop := task.Periodic(20*sim.Millisecond, sim.Millisecond, 2*sim.Millisecond, func(c Context) {
		starts = append(starts, c.Start)
	})
	eng.Run(sim.Time(sim.Second))
	stop()
	if len(starts) < 48 || len(starts) > 50 {
		t.Fatalf("dispatches = %d, want ≈49", len(starts))
	}
	for i, at := range starts {
		want := sim.Time(20 * sim.Millisecond * sim.Duration(i+1))
		if at < want || at > want+sim.Time(sim.Millisecond) {
			t.Fatalf("dispatch %d at %v, want %v(+1ms)", i, at, want)
		}
	}
	n := len(starts)
	eng.Run(sim.Time(2 * sim.Second))
	if len(starts) != n {
		t.Fatal("ran after stop")
	}
}

func TestWeightedFairnessTieBreak(t *testing.T) {
	// A backlog of equal-deadline requirements: among deadline ties the
	// scheduler serves proportionally to weight.
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	heavy := s.NewTask("heavy", 4)
	light := s.NewTask("light", 1)
	counts := map[string]int{}
	for _, task := range []*Task{heavy, light} {
		task := task
		for i := 0; i < 200; i++ {
			task.RunAt(Window{Slack: sim.Hour}, sim.Millisecond, func(Context) {
				counts[task.Name]++
			})
		}
	}
	// 100 ms of CPU at 1 ms per dispatch: ~100 dispatches served.
	eng.Run(sim.Time(100 * sim.Millisecond))
	if counts["heavy"] < 3*counts["light"] {
		t.Fatalf("weights ignored: %v", counts)
	}
	if counts["light"] == 0 {
		t.Fatal("light task starved completely")
	}
}

// The Section 5.5 claim, measured: a Skype-like soft-real-time pipeline
// built on the dispatcher meets its deadlines with *zero* timer-subsystem
// accesses and far fewer wakeups than the 50 Hz poll-loop equivalent.
func TestSoftRealtimeWithoutTimers(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	audio := s.NewTask("audio", 4)
	video := s.NewTask("video", 1)
	frames := 0
	// The audio slack exceeds the video service time, so non-preemptive
	// EDF can always meet the audio window.
	stopA := audio.Periodic(20*sim.Millisecond, 5*sim.Millisecond, 2*sim.Millisecond, func(c Context) {
		frames++
	})
	stopV := video.Periodic(33*sim.Millisecond, 12*sim.Millisecond, 4*sim.Millisecond, func(Context) {})
	eng.Run(sim.Time(10 * sim.Second))
	stopA()
	stopV()
	if frames < 495 {
		t.Fatalf("audio frames = %d", frames)
	}
	st := s.Stats()
	// Non-preemptive dispatch with overlapping windows tolerates a small
	// miss rate (a video frame occasionally delays an audio start past its
	// window edge); the comparison point is the select-loop version, which
	// gives no deadline accounting at all.
	if st.Misses*50 > st.Dispatches {
		t.Fatalf("misses = %d of %d dispatches (>2%%)", st.Misses, st.Dispatches)
	}
	// The dispatcher needed roughly one activation per dispatch batch;
	// crucially the *applications* armed no timers at all.
	if st.Wakeups > st.Dispatches {
		t.Fatalf("wakeups = %d > dispatches = %d", st.Wakeups, st.Dispatches)
	}
	t.Logf("dispatches=%d wakeups=%d misses=%d busy=%v",
		st.Dispatches, st.Wakeups, st.Misses, st.BusyTime)
}

func TestSlackEnablesDispatchBatching(t *testing.T) {
	// Ten tasks with 100 ms periods and generous slack: overlapping
	// windows let one scheduler wakeup serve several dispatches
	// back-to-back.
	run := func(slack sim.Duration) uint64 {
		eng := sim.NewEngine(1)
		s := NewScheduler(eng)
		for i := 0; i < 10; i++ {
			task := s.NewTask("t", 1)
			phase := sim.Duration(eng.Rand().Int63n(int64(100 * sim.Millisecond)))
			eng.After(phase, "start", func() {
				task.Periodic(100*sim.Millisecond, slack, 100*sim.Microsecond, func(Context) {})
			})
		}
		eng.Run(sim.Time(10 * sim.Second))
		return s.Stats().Wakeups
	}
	precise := run(0)
	sloppy := run(40 * sim.Millisecond)
	if sloppy >= precise {
		t.Fatalf("slack did not reduce scheduler wakeups: %d -> %d", precise, sloppy)
	}
}

func TestCancelWhileEligible(t *testing.T) {
	// A requirement canceled after becoming eligible but before the CPU
	// frees up must not run.
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	hog := s.NewTask("hog", 1)
	victim := s.NewTask("victim", 1)
	hog.RunAt(Window{}, 100*sim.Millisecond, func(Context) {})
	ran := false
	h := victim.RunAt(Window{After: sim.Millisecond, Slack: sim.Hour}, sim.Millisecond, func(Context) { ran = true })
	eng.At(sim.Time(50*sim.Millisecond), "cancel", func() {
		if !h.Cancel() {
			t.Error("cancel failed while queued")
		}
	})
	eng.Run(sim.Time(sim.Second))
	if ran {
		t.Fatal("canceled requirement ran")
	}
}

func TestZeroCostClamped(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	task := s.NewTask("a", 1)
	ran := false
	task.RunAt(Window{}, 0, func(Context) { ran = true })
	eng.Run(sim.Time(sim.Second))
	if !ran {
		t.Fatal("zero-cost requirement never ran")
	}
}

func TestPeriodicSkipsMissedSlots(t *testing.T) {
	// A hog delays a 10 ms periodic far beyond several periods; the
	// drift-free schedule skips the missed slots instead of bursting.
	eng := sim.NewEngine(1)
	s := NewScheduler(eng)
	hog := s.NewTask("hog", 1)
	p := s.NewTask("p", 1)
	hog.RunAt(Window{}, 100*sim.Millisecond, func(Context) {})
	count := 0
	p.Periodic(10*sim.Millisecond, sim.Millisecond, sim.Millisecond, func(Context) { count++ })
	eng.Run(sim.Time(sim.Second))
	// ~90 slots remain after the 100 ms hog; a burst catch-up would
	// exceed 95.
	if count < 80 || count > 95 {
		t.Fatalf("count = %d", count)
	}
}
