// Package fleet simulates a datacenter: many hosts, each a full simulated
// machine with its own event engine, timer subsystem and trace sink,
// exchanging traffic over internal/netsim links. The fleet advances all
// hosts in parallel using conservative-lookahead windows (see Fleet.Run and
// DESIGN.md §"Fleet-scale parallel simulation"); per-host traces are
// byte-identical at any worker count.
package fleet

import (
	"cmp"
	"slices"

	"timerstudy/internal/kernel"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
	"timerstudy/internal/workloads"
)

// Message kinds understood by the built-in host models.
const (
	// MsgRequest is a client HTTP request.
	MsgRequest uint8 = iota
	// MsgResponse is the server's reply, carrying the request's ID back.
	MsgResponse
)

// Message is one unit of cross-host traffic. DeliverAt is computed by the
// sender from the frozen fabric (latency + jitter + serialization); the
// triple (DeliverAt, Src, Seq) is unique and totally orders every inbox,
// which is what makes delivery deterministic at any worker count.
type Message struct {
	DeliverAt sim.Time
	Src, Dst  int32
	Seq       uint64 // per-source send counter
	Kind      uint8
	ID        uint64 // model-defined correlation ID (request/response match)
	Size      int32  // wire bytes, drives serialization delay
}

// Model is a per-host behaviour: it boots the host's processes and timers
// and reacts to inbound messages. A Model instance belongs to exactly one
// Host and runs only on that host's engine (single-threaded).
type Model interface {
	Boot(h *Host)
	OnMessage(h *Host, m Message)
}

// Host is one simulated machine in the fleet. Everything hanging off it —
// engine, kernel personality, sink, model state — is owned by the host and
// touched only by the host's own window advance (or the serial barrier
// phase), never by two workers at once.
type Host struct {
	Index int
	Name  string
	Eng   *sim.Engine
	Sink  trace.Sink
	Kern  *kernel.Linux
	Kit   *workloads.HostKit

	fleet *Fleet
	model Model

	// seq numbers outgoing messages; with Src it makes inbox keys unique.
	seq uint64
	// outbox collects messages sent during the current window. Written only
	// by this host's advance (worker-local), drained serially at the
	// barrier.
	outbox []Message
	// staged holds messages routed to this host at the barrier, in serial
	// gather order (by source host index, then send order).
	staged []Message
	// inbox[inboxHead:] is the pending delivery queue, sorted by
	// (DeliverAt, Src, Seq). deliver pops the head; mergeStaged compacts
	// the consumed prefix.
	inbox     []Message
	inboxHead int
	// deliverFn is the single pre-bound delivery closure: every inbound
	// message schedules this same func at its DeliverAt, so delivery costs
	// no per-message allocation. Correctness: the engine fires delivery
	// events in nondecreasing time order and the multiset of scheduled
	// event times equals the multiset of pending DeliverAt values, so the
	// k-th firing always finds its message at the sorted-queue head.
	deliverFn func()
	recvLabel string

	// windowExecuted is the event count of the host's latest AdvanceUntil,
	// written by the worker that advanced the host, read after the barrier.
	windowExecuted int

	// Traffic counters (host-local, summed serially by RunStats).
	Sent, Delivered, Lost uint64

	// Down marks a killed host (see Kill). Set only at session barriers.
	Down bool
}

// Kill freezes the host, modeling a machine power-off: its engine stops
// executing (the pending backlog is retained, frozen in place) and the
// route phase drops inbound messages as Lost. Call only at a session
// barrier — mid-window the workers own host state.
func (h *Host) Kill() {
	h.Down = true
	h.Eng.Stop()
}

// Restart brings a killed host back at the given instant — the session's
// current Floor(). The engine clock skips forward over the outage (idle
// time), and the frozen backlog fires late at the restart instant, like a
// machine whose timers expired while it was off. Skipping the clock is
// load-bearing for determinism: a resumed host sending from a lagging
// clock would deliver into other hosts' past, breaking the lookahead
// invariant. Call only at a session barrier.
func (h *Host) Restart(at sim.Time) {
	h.Down = false
	h.Eng.Resume()
	h.Eng.SkipTo(at)
}

// Steer hands a directive to the host at a session barrier. Host-level
// directives (DirCoalesce) are handled here; the rest go to the model,
// returning false when it does not implement Steerable or rejects the
// directive.
func (h *Host) Steer(d Directive) bool {
	if d.Kind == DirCoalesce {
		if d.Arg < 0 {
			return false
		}
		h.Kit.SetCoalesce(sim.Duration(d.Arg))
		return true
	}
	if s, ok := h.model.(Steerable); ok {
		return s.Steer(h, d)
	}
	return false
}

// Send queues a message to another host. It must be called from within the
// sending host's own engine callbacks. The delivery time is computed from
// the frozen fabric: base latency + per-send jitter (host-local rng) +
// serialization at the fabric bandwidth. Returns false when the link drops
// the packet.
//
// Because path latency is never below the fabric's MinLatency, DeliverAt
// lands at or beyond the current window's horizon — which is exactly the
// conservative-lookahead invariant that lets hosts advance in parallel.
func (h *Host) Send(dst int, kind uint8, id uint64, size int) bool {
	f := h.fleet
	cfg := f.fabric.PathFor(h.Name, f.hosts[dst].Name)
	rng := h.Eng.Rand()
	if cfg.Loss > 0 && rng.Float64() < cfg.Loss {
		h.Lost++
		return false
	}
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += sim.Duration(rng.Int63n(int64(cfg.Jitter)))
	}
	if bw := f.fabric.Bandwidth(); bw > 0 && size > 0 {
		delay += sim.Duration(int64(size) * int64(sim.Second) / bw)
	}
	h.seq++
	h.outbox = append(h.outbox, Message{
		DeliverAt: h.Eng.Now() + sim.Time(delay),
		Src:       int32(h.Index),
		Dst:       int32(dst),
		Seq:       h.seq,
		Kind:      kind,
		ID:        id,
		Size:      int32(size),
	})
	h.Sent++
	return true
}

// deliver pops the head of the sorted pending queue and hands it to the
// model. It is the body of deliverFn and runs as an engine event at the
// message's DeliverAt.
func (h *Host) deliver() {
	m := h.inbox[h.inboxHead]
	h.inboxHead++
	h.Delivered++
	h.model.OnMessage(h, m)
}

// mergeStaged runs in the serial barrier phase: it schedules one delivery
// event per staged message, appends them to the pending queue, and restores
// the queue's (DeliverAt, Src, Seq) order. Scheduling uses Engine.At
// directly — every DeliverAt is at or beyond the window horizon, and the
// host's clock stopped at its last executed event strictly before the
// horizon, so At never sees a past time.
func (h *Host) mergeStaged() {
	if len(h.staged) == 0 {
		return
	}
	for i := range h.staged {
		h.Eng.At(h.staged[i].DeliverAt, h.recvLabel, h.deliverFn)
	}
	// Compact the consumed prefix before growing the queue.
	if h.inboxHead > 0 {
		n := copy(h.inbox, h.inbox[h.inboxHead:])
		h.inbox = h.inbox[:n]
		h.inboxHead = 0
	}
	h.inbox = append(h.inbox, h.staged...)
	h.staged = h.staged[:0]
	sortMessages(h.inbox[h.inboxHead:])
}

// sortMessages restores (DeliverAt, Src, Seq) order. The key is unique —
// Seq never repeats within a source — so the sort's stability is
// irrelevant and the result is independent of input order.
func sortMessages(ms []Message) {
	slices.SortFunc(ms, func(a, b Message) int {
		switch {
		case a.DeliverAt != b.DeliverAt:
			return cmp.Compare(a.DeliverAt, b.DeliverAt)
		case a.Src != b.Src:
			return cmp.Compare(a.Src, b.Src)
		default:
			return cmp.Compare(a.Seq, b.Seq)
		}
	})
}
