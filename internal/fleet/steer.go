package fleet

import "timerstudy/internal/sim"

// Steering: the control plane (internal/control) mutates model behaviour
// mid-run by handing Directives to hosts at session barriers. Directives
// are plain data — kind plus two scalar operands — so they serialize into
// the command log and replay bit-identically; models opt in by
// implementing Steerable.

// Directive is one steering instruction for a host's model.
type Directive struct {
	// Kind selects the behaviour change (Dir* constants).
	Kind uint8
	// Arg is the kind-specific scalar operand.
	Arg int64
	// Dur bounds the effect in virtual time, for kinds that expire.
	Dur sim.Duration
}

// Directive kinds.
const (
	// DirSpike multiplies a desktop's request rate by Arg (think-time
	// divided by Arg) for Dur of virtual time — the "flash crowd" the
	// paper's loaded-webserver trace is the per-box view of.
	DirSpike uint8 = iota + 1
	// DirPolicy selects the desktop client's request-timeout policy:
	// Arg 0 = the paper's fixed 30 s, Arg 1 = adaptive (Jacobson RTT
	// estimator, srtt + 4·rttvar clamped to [1 s, 30 s]) — the
	// alternative the paper's Section 5 argues timer APIs should make
	// easy.
	DirPolicy
	// DirCoalesce sets the host's periodic-timer coalescing window to Arg
	// nanoseconds (0 = off) — workloads.HostKit.SetCoalesce, the
	// round_jiffies remedy as a run-time knob. Handled by the Host itself,
	// so every model supports it.
	DirCoalesce
)

// Policy arguments for DirPolicy.
const (
	// PolicyFixed is the paper's default: every request arms the full
	// 30 s timeout.
	PolicyFixed int64 = 0
	// PolicyAdaptive arms srtt + 4·rttvar instead, clamped to
	// [adaptiveTimeoutMin, clientRequestTimeout].
	PolicyAdaptive int64 = 1
)

// Steerable is implemented by models that accept steering directives.
// Steer runs at a session barrier on the host's own (parked) engine; it
// must mutate only model/host state and return false for directives it
// does not support.
type Steerable interface {
	Steer(h *Host, d Directive) bool
}
