package fleet

import (
	"runtime"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// hashTopology is testTopology with digest-only sinks, the configuration
// the control plane runs.
func hashTopology() Topology {
	top := testTopology()
	top.NewSink = func(string) trace.Sink { return trace.NewHashSink() }
	return top
}

// TestSessionMatchesRun pins the refactor: stepping a session window by
// window, at any worker count, is byte-identical to the one-shot Run.
func TestSessionMatchesRun(t *testing.T) {
	const end = sim.Time(2 * sim.Second)
	ref := hashTopology().Build()
	refStats := ref.Run(end, 1)
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		f := hashTopology().Build()
		s := f.StartSession(end, workers)
		steps := 0
		for s.Step() {
			steps++
			if fl := s.Floor(); fl <= 0 {
				t.Fatalf("workers=%d: floor not advancing at step %d", workers, steps)
			}
		}
		stats := s.Finish()
		if f.Digest() != ref.Digest() {
			t.Fatalf("workers=%d: session digest %016x != run digest %016x",
				workers, f.Digest(), ref.Digest())
		}
		if stats.Windows != refStats.Windows || stats.Events != refStats.Events {
			t.Fatalf("workers=%d: session stats %+v != run stats %+v", workers, stats, refStats)
		}
		if s.Windows() != stats.Windows {
			t.Fatalf("Windows() %d != stats.Windows %d", s.Windows(), stats.Windows)
		}
	}
}

// steeredRun steps a session applying fn at each barrier; returns digest.
func steeredRun(t *testing.T, end sim.Time, workers int, fn func(f *Fleet, s *Session)) (uint64, RunStats) {
	t.Helper()
	f := hashTopology().Build()
	s := f.StartSession(end, workers)
	for {
		fn(f, s)
		if !s.Step() {
			break
		}
	}
	stats := s.Finish()
	return f.Digest(), stats
}

// TestKillRestartDeterministic: killing a webserver mid-run and restarting
// it later is deterministic across worker counts, loses traffic while the
// host is down, and diverges from the unsteered run.
func TestKillRestartDeterministic(t *testing.T) {
	const end = sim.Time(2 * sim.Second)
	steer := func(f *Fleet, s *Session) {
		switch s.Windows() {
		case 20:
			f.HostByName("ws-0000").Kill()
		case 60:
			f.HostByName("ws-0000").Restart(s.Floor())
		}
	}
	base, baseStats := steeredRun(t, end, 1, steer)
	if baseStats.Lost == 0 {
		t.Fatal("killed webserver lost no traffic")
	}
	for _, workers := range []int{2, runtime.NumCPU()} {
		got, _ := steeredRun(t, end, workers, steer)
		if got != base {
			t.Fatalf("workers=%d: steered digest %016x != serial %016x", workers, got, base)
		}
	}
	clean, _ := steeredRun(t, end, 1, func(*Fleet, *Session) {})
	if clean == base {
		t.Fatal("kill/restart did not change the run")
	}
}

// TestSteerSpikeAndPolicy: directives apply, replay deterministically at
// any worker count, and actually change behaviour.
func TestSteerSpikeAndPolicy(t *testing.T) {
	const end = sim.Time(2 * sim.Second)
	steer := func(f *Fleet, s *Session) {
		if s.Windows() != 10 {
			return
		}
		for _, h := range f.Hosts() {
			h.Steer(Directive{Kind: DirSpike, Arg: 8, Dur: sim.Duration(sim.Second)})
			h.Steer(Directive{Kind: DirPolicy, Arg: PolicyAdaptive})
		}
	}
	base, baseStats := steeredRun(t, end, 1, steer)
	for _, workers := range []int{2, runtime.NumCPU()} {
		got, _ := steeredRun(t, end, workers, steer)
		if got != base {
			t.Fatalf("workers=%d: steered digest %016x != serial %016x", workers, got, base)
		}
	}
	clean, cleanStats := steeredRun(t, end, 1, func(*Fleet, *Session) {})
	if clean == base {
		t.Fatal("spike+policy did not change the run")
	}
	if baseStats.Sent <= cleanStats.Sent {
		t.Fatalf("8x spike did not raise traffic: steered %d, clean %d", baseStats.Sent, cleanStats.Sent)
	}

	// Webservers are not steerable; desktops reject unknown directives.
	f := hashTopology().Build()
	if f.HostByName("ws-0000").Steer(Directive{Kind: DirSpike, Arg: 2, Dur: 1}) {
		t.Fatal("webserver accepted a steering directive")
	}
	if f.HostByName("pc-0000").Steer(Directive{Kind: 99}) {
		t.Fatal("desktop accepted an unknown directive")
	}
}

// TestKeyframeVerifies: keyframes of identical runs match field for field;
// a run with a different seed does not.
func TestKeyframeVerifies(t *testing.T) {
	const end = sim.Time(500 * sim.Millisecond)
	build := func(seed int64) *Fleet {
		top := hashTopology()
		top.Seed = seed
		return top.Build()
	}
	a, b := build(42), build(42)
	a.Run(end, 1)
	b.Run(end, runtime.NumCPU())
	ka, kb := a.Keyframe(), b.Keyframe()
	if len(ka) != len(kb) || len(ka) == 0 {
		t.Fatalf("keyframe sizes: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("keyframe host %d differs:\na: %+v\nb: %+v", i, ka[i], kb[i])
		}
		if ka[i].EventsHash == 0 || ka[i].Digest == 0 {
			t.Fatalf("degenerate keyframe for %s: %+v", ka[i].Name, ka[i])
		}
	}
	c := build(43)
	c.Run(end, 1)
	kc := c.Keyframe()
	same := 0
	for i := range kc {
		if kc[i] == ka[i] {
			same++
		}
	}
	if same == len(kc) {
		t.Fatal("different seed produced identical keyframes")
	}
}
