package fleet

import (
	"timerstudy/internal/jiffies"
	"timerstudy/internal/kernel"
	"timerstudy/internal/sim"
)

// The built-in datacenter models: desktop hosts run closed-loop client
// threads against webserver hosts. Each request arms the paper's timer
// quartet — the client's 30 s request timeout and 200 ms TCP retransmit,
// the server's 15 s request watchdog, and (sometimes) the block layer's
// 4 ms unplug + 30 s IDE pair — so cumulative timer volume scales with
// hosts × request rate, exactly the "Table 3 × 1000" the fleet exists to
// measure. On top of that every host boots the full single-machine daemon
// set (workloads.HostKit), so the background timer population matches the
// paper's idle trace per box.

// webserverModel is a loaded web server: accept-loop select, per-request
// watchdog, service delay, occasional disk I/O.
type webserverModel struct {
	serviceMean sim.Duration
	watchPool   []*jiffies.Timer
	nreq        uint64
}

func newWebserverModel(serviceMean sim.Duration) *webserverModel {
	return &webserverModel{serviceMean: serviceMean}
}

func (w *webserverModel) Boot(h *Host) {
	h.Kit.BootKernelDaemons()
	h.Kit.BootUserDaemons()
	// Apache's housekeeping select with fd activity from real requests'
	// side effects modeled as a mean arrival.
	h.Kit.SelectLoop(h.Kern.NewProcess("apache"), serverSelectTimeout, 3*serverSelectTimeout)
}

func (w *webserverModel) OnMessage(h *Host, m Message) {
	if m.Kind != MsgRequest {
		return
	}
	w.nreq++
	// Request watchdog: armed per accepted request, canceled when the
	// response goes out. Timer structs are slab-recycled like the request
	// structures holding them.
	var wd *jiffies.Timer
	if n := len(w.watchPool); n > 0 {
		wd = w.watchPool[n-1]
		w.watchPool = w.watchPool[:n-1]
	} else {
		wd = h.Kern.KernelTimer("kernel/tcp:request-watchdog", nil)
	}
	expired := false
	wd.SetCallback(func() { expired = true }) // request aborted
	h.Kern.Base().ModTimeout(wd, serverRequestWatchdog)

	if w.nreq%serverDiskEvery == 0 {
		h.Kit.DiskIO()
	}
	src, id := int(m.Src), m.ID
	h.Eng.After(h.Kit.Exp(w.serviceMean), "httpd:service", func() {
		if !expired {
			_ = h.Kern.Base().Del(wd)
			h.Send(src, MsgResponse, id, responseSize)
		}
		w.watchPool = append(w.watchPool, wd)
	})
}

// client is one desktop request loop: a thread that thinks, sends a
// request, and blocks in select on the 30 s timeout with a 200 ms
// retransmit timer running underneath.
type client struct {
	th      *kernel.Thread
	pending *kernel.Pending
	retrans *jiffies.Timer
	reqID   uint64
	dst     int
	tries   int
	waiting bool
	sentAt  sim.Time // first send of the current request (RTT sampling)
}

// desktopModel drives clients against the webserver index range
// [0, webservers).
type desktopModel struct {
	webservers int
	threads    int
	thinkMean  sim.Duration
	clients    []*client
	inflight   map[uint64]*client
	nextID     uint64

	// Steering state (Steerable, see steer.go). All of it is plain host-
	// local data mutated only at session barriers or on the host's own
	// engine, so steered runs replay deterministically.
	spikeDiv   int64    // think-time divisor while spiking (>1 = spike on)
	spikeUntil sim.Time // spike expiry in virtual time
	adaptive   bool     // request-timeout policy (PolicyAdaptive)
	srtt       sim.Duration
	rttvar     sim.Duration
}

func newDesktopModel(webservers, threads int, thinkMean sim.Duration) *desktopModel {
	return &desktopModel{
		webservers: webservers,
		threads:    threads,
		thinkMean:  thinkMean,
		inflight:   map[uint64]*client{},
	}
}

func (d *desktopModel) Boot(h *Host) {
	h.Kit.BootKernelDaemons()
	h.Kit.BootUserDaemons()
	p := h.Kern.NewProcess("browser")
	for i := 0; i < d.threads; i++ {
		c := &client{th: p.NewThread()}
		c.retrans = h.Kern.KernelTimer("kernel/tcp:retransmit", func() {
			d.retransmit(h, c)
		})
		d.clients = append(d.clients, c)
		d.think(h, c, d.thinkMean)
	}
}

// think schedules the next request after an exponential pause. While a
// DirSpike is active the pause shrinks by the spike factor, multiplying
// the request rate.
func (d *desktopModel) think(h *Host, c *client, mean sim.Duration) {
	if d.spikeDiv > 1 && h.Eng.Now() < d.spikeUntil {
		if mean /= sim.Duration(d.spikeDiv); mean <= 0 {
			mean = 1
		}
	}
	h.Eng.After(h.Kit.Exp(mean), "browser:think", func() { d.request(h, c) })
}

func (d *desktopModel) request(h *Host, c *client) {
	if d.webservers == 0 {
		return
	}
	d.nextID++
	c.reqID = d.nextID
	c.dst = h.Eng.Rand().Intn(d.webservers)
	c.tries = 0
	c.waiting = true
	c.sentAt = h.Eng.Now()
	d.inflight[c.reqID] = c
	h.Send(c.dst, MsgRequest, c.reqID, requestSize)
	h.Kern.Base().ModTimeout(c.retrans, clientRetransmitTimeout)
	// The titular 30 seconds: armed on every request, nearly always
	// canceled by the response long before it could fire. Under
	// PolicyAdaptive the deadline tracks the RTT estimator instead.
	c.pending = c.th.Select(d.requestTimeout(), func(r kernel.SelectResult) {
		mean := d.thinkMean
		if r.TimedOut {
			// Deadline reached with no response: tear down and back off.
			delete(d.inflight, c.reqID)
			c.waiting = false
			_ = h.Kern.Base().Del(c.retrans)
			mean += clientGiveUpThink
		}
		d.think(h, c, mean)
	})
}

// retransmit re-sends the outstanding request (packet or response lost, or
// server slow) and re-arms, up to the retry budget.
func (d *desktopModel) retransmit(h *Host, c *client) {
	if !c.waiting {
		return
	}
	if c.tries++; c.tries > clientMaxRetries {
		return // give up; the 30 s select deadline will fire
	}
	h.Send(c.dst, MsgRequest, c.reqID, requestSize)
	h.Kern.Base().ModTimeout(c.retrans, clientRetransmitTimeout)
}

func (d *desktopModel) OnMessage(h *Host, m Message) {
	if m.Kind != MsgResponse {
		return
	}
	c, ok := d.inflight[m.ID]
	if !ok {
		return // response to a request we already gave up on (or a dup)
	}
	delete(d.inflight, m.ID)
	c.waiting = false
	if c.tries == 0 {
		// Karn's rule: only never-retransmitted requests yield RTT
		// samples (a retransmitted response is ambiguous about which
		// send it answers).
		d.observeRTT(h.Eng.Now().Sub(c.sentAt))
	}
	_ = h.Kern.Base().Del(c.retrans)
	// Wakes the select early: OpCancel|FlagSatisfied on the 30 s timer,
	// then the select callback continues the loop.
	c.pending.Complete()
}

// requestTimeout picks the per-request select deadline under the active
// policy. PolicyFixed (and a cold estimator) arms the paper's full 30 s;
// PolicyAdaptive arms the RFC 6298 RTO, srtt + 4·rttvar, clamped to
// [adaptiveTimeoutMin, clientRequestTimeout].
func (d *desktopModel) requestTimeout() sim.Duration {
	if !d.adaptive || d.srtt == 0 {
		return clientRequestTimeout
	}
	rto := d.srtt + 4*d.rttvar
	if rto < adaptiveTimeoutMin {
		rto = adaptiveTimeoutMin
	}
	if rto > clientRequestTimeout {
		rto = clientRequestTimeout
	}
	return rto
}

// observeRTT feeds one round-trip sample into the Jacobson estimator
// (RFC 6298 integer form). Only runs while the adaptive policy is on, so
// the fixed-policy hot path stays untouched.
func (d *desktopModel) observeRTT(rtt sim.Duration) {
	if !d.adaptive || rtt <= 0 {
		return
	}
	if d.srtt == 0 {
		d.srtt = rtt
		d.rttvar = rtt / 2
		return
	}
	diff := d.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	d.rttvar += (diff - d.rttvar) / 4
	d.srtt += (rtt - d.srtt) / 8
}

// Steer implements Steerable: desktops accept load spikes and timeout-
// policy switches.
func (d *desktopModel) Steer(h *Host, dir Directive) bool {
	switch dir.Kind {
	case DirSpike:
		if dir.Arg < 1 || dir.Dur <= 0 {
			return false
		}
		d.spikeDiv = dir.Arg
		d.spikeUntil = h.Eng.Now() + sim.Time(dir.Dur)
		return true
	case DirPolicy:
		switch dir.Arg {
		case PolicyFixed:
			d.adaptive = false
		case PolicyAdaptive:
			// Cold-start the estimator: samples only accumulate while
			// adaptive, so a re-enable starts fresh.
			d.adaptive = true
			d.srtt, d.rttvar = 0, 0
		default:
			return false
		}
		return true
	}
	return false
}
