package fleet

import (
	"fmt"

	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Topology describes a datacenter to build: N webserver hosts ("ws-0000"…)
// and M desktop hosts ("pc-0000"…) over a uniform link matrix. The zero
// value of every optional field picks the registry default.
type Topology struct {
	// Webservers and Desktops count the two host classes. Webservers get
	// fleet indexes [0, Webservers); desktops follow.
	Webservers int
	Desktops   int
	// Seed drives all randomness; each host derives an independent stream
	// from it (splitmix64 over the host index).
	Seed int64
	// Queue selects every host engine's event-queue implementation.
	Queue sim.QueueKind
	// Link, when non-nil, overrides the fabric's default path (latency /
	// jitter / loss) for every host pair. The fleet's lookahead is the
	// link's base latency.
	Link *netsim.PathConfig
	// Threads is the number of client loops per desktop (default 2).
	Threads int
	// ThinkMean and ServiceMean override the request-rate defaults.
	ThinkMean   sim.Duration
	ServiceMean sim.Duration
	// NewSink builds each host's trace sink; nil means a trace.HashSink
	// (digest-only — the only thing that fits at 10k hosts).
	NewSink func(host string) trace.Sink
}

// splitmix64 decorrelates per-host seeds: sequential inputs produce
// independent-looking 64-bit streams (Steele et al., the standard seed
// expander).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HostSeed returns the engine seed for host index i under fleet seed s.
func HostSeed(s int64, i int) int64 {
	return int64(splitmix64(uint64(s) ^ splitmix64(uint64(i)+1)))
}

// Build constructs the fabric and the fleet. Hosts are added in a fixed
// order (all webservers, then all desktops, both by index), which — with
// the per-index seeds — makes the whole build a pure function of the
// Topology value.
func (t Topology) Build() *Fleet {
	if t.Webservers < 0 || t.Desktops < 0 || t.Webservers+t.Desktops == 0 {
		panic("fleet: topology needs at least one host")
	}
	threads := t.Threads
	if threads <= 0 {
		threads = defaultClientThreads
	}
	think := t.ThinkMean
	if think <= 0 {
		think = defaultThinkMean
	}
	service := t.ServiceMean
	if service <= 0 {
		service = defaultServiceMean
	}
	newSink := t.NewSink
	if newSink == nil {
		newSink = func(string) trace.Sink { return trace.NewHashSink() }
	}

	names := make([]string, 0, t.Webservers+t.Desktops)
	for i := 0; i < t.Webservers; i++ {
		names = append(names, fmt.Sprintf("ws-%04d", i))
	}
	for i := 0; i < t.Desktops; i++ {
		names = append(names, fmt.Sprintf("pc-%04d", i))
	}

	fab := netsim.NewFabric()
	for _, n := range names {
		fab.AddHost(n)
	}
	if t.Link != nil {
		fab.SetDefaultPath(*t.Link)
	}
	fab.Freeze()

	f := New(fab)
	for i, n := range names {
		var m Model
		if i < t.Webservers {
			m = newWebserverModel(service)
		} else {
			m = newDesktopModel(t.Webservers, threads, think)
		}
		f.AddHost(n, HostSeed(t.Seed, i), t.Queue, newSink(n), m)
	}
	return f
}
