package fleet

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"timerstudy/internal/analysis"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// testTopology is a small but fully wired datacenter: cross-host request
// traffic, retransmits, watchdogs, background daemons.
func testTopology() Topology {
	return Topology{
		Webservers: 2,
		Desktops:   6,
		Seed:       42,
		ThinkMean:  20 * sim.Millisecond,
		NewSink:    func(string) trace.Sink { return trace.NewBuffer(trace.DefaultCapacity) },
	}
}

// runOnce builds the test fleet, runs it, and returns the per-host encoded
// trace bytes plus the merged analysis summary.
func runOnce(t *testing.T, top Topology, end sim.Time, workers int) ([][]byte, []analysis.Summary, RunStats) {
	t.Helper()
	f := top.Build()
	stats := f.Run(end, workers)
	encs := make([][]byte, len(f.Hosts()))
	sums := make([]analysis.Summary, len(f.Hosts()))
	for i, h := range f.Hosts() {
		buf, ok := h.Sink.(*trace.Buffer)
		if !ok {
			t.Fatalf("host %s sink is %T, want *trace.Buffer", h.Name, h.Sink)
		}
		var bb bytes.Buffer
		if err := buf.Encode(&bb); err != nil {
			t.Fatalf("encode %s: %v", h.Name, err)
		}
		encs[i] = bb.Bytes()
		sums[i] = analysis.Summarize(buf)
	}
	return encs, sums, stats
}

// TestFleetDeterminismSweep is the tentpole's acceptance property in
// miniature: per-host traces and per-host analysis summaries are
// byte-identical at every worker count.
func TestFleetDeterminismSweep(t *testing.T) {
	top := testTopology()
	const end = sim.Time(2 * sim.Second)
	base, baseSums, baseStats := runOnce(t, top, end, 1)
	if baseStats.Sent == 0 || baseStats.Delivered == 0 {
		t.Fatalf("no cross-host traffic moved: %+v", baseStats)
	}
	if !baseStats.Bounded || baseStats.Lookahead <= 0 {
		t.Fatalf("expected positive lookahead, got %+v", baseStats)
	}
	workerCounts := []int{2, runtime.NumCPU(), 4 * runtime.NumCPU()}
	for _, w := range workerCounts {
		encs, sums, stats := runOnce(t, top, end, w)
		if stats.Windows != baseStats.Windows || stats.Events != baseStats.Events ||
			stats.Sent != baseStats.Sent || stats.Delivered != baseStats.Delivered ||
			stats.Lost != baseStats.Lost {
			t.Errorf("workers=%d stats diverge: %+v vs %+v", w, stats, baseStats)
		}
		for i := range encs {
			if !bytes.Equal(encs[i], base[i]) {
				t.Errorf("workers=%d host %d trace differs from serial (lens %d vs %d)",
					w, i, len(encs[i]), len(base[i]))
			}
			if sums[i] != baseSums[i] {
				t.Errorf("workers=%d host %d summary differs:\n%+v\nvs\n%+v",
					w, i, sums[i], baseSums[i])
			}
		}
	}
}

// TestFleetHashSinkMatchesBuffer: the digest-only sink used at 10k hosts
// agrees with the byte-level comparison — same topology run through
// HashSinks produces equal digests exactly when the Buffer runs produced
// equal bytes.
func TestFleetHashSinkMatchesBuffer(t *testing.T) {
	top := testTopology()
	top.NewSink = nil // default: HashSink
	const end = sim.Time(sim.Second)
	f1 := top.Build()
	f1.Run(end, 1)
	f2 := top.Build()
	f2.Run(end, 3)
	if f1.Digest() != f2.Digest() {
		t.Fatalf("digest diverges across worker counts: %x vs %x", f1.Digest(), f2.Digest())
	}
	if f1.Digest() == 0 {
		t.Fatal("zero digest")
	}
	c1, c2 := f1.Counters(), f2.Counters()
	if c1 != c2 || c1.Total == 0 {
		t.Fatalf("counters diverge or empty: %+v vs %+v", c1, c2)
	}
	// A different seed must change the digest.
	top.Seed++
	f3 := top.Build()
	f3.Run(end, 1)
	if f3.Digest() == f1.Digest() {
		t.Fatal("different seed produced identical fleet digest")
	}
}

// TestFleetZeroRTT: a zero-latency link collapses the lookahead; the fleet
// must degenerate to lock-step and stay deterministic at any worker count.
func TestFleetZeroRTT(t *testing.T) {
	top := testTopology()
	top.Link = &netsim.PathConfig{Latency: 0}
	const end = sim.Time(500 * sim.Millisecond)
	base, _, baseStats := runOnce(t, top, end, 1)
	if baseStats.Lookahead != 0 || !baseStats.Bounded {
		t.Fatalf("expected zero bounded lookahead, got %+v", baseStats)
	}
	if baseStats.Delivered == 0 {
		t.Fatalf("no traffic in zero-RTT mode: %+v", baseStats)
	}
	encs, _, stats := runOnce(t, top, end, 4)
	if stats.Events != baseStats.Events || stats.Delivered != baseStats.Delivered {
		t.Fatalf("zero-RTT stats diverge: %+v vs %+v", stats, baseStats)
	}
	for i := range encs {
		if !bytes.Equal(encs[i], base[i]) {
			t.Fatalf("zero-RTT host %d trace differs across worker counts", i)
		}
	}
}

// TestFleetSingleHostUnbounded: a one-host fleet has no lookahead bound and
// must simply run to the end.
func TestFleetSingleHostUnbounded(t *testing.T) {
	top := Topology{Webservers: 1, Seed: 7}
	f := top.Build()
	stats := f.Run(sim.Time(sim.Second), 2)
	if stats.Bounded {
		t.Fatalf("single host reported bounded lookahead: %+v", stats)
	}
	if stats.Windows != 1 || stats.Events == 0 {
		t.Fatalf("expected one unbounded window with events, got %+v", stats)
	}
	if h := f.HostByName("ws-0000"); h == nil || h.Eng.Now() != sim.Time(sim.Second) {
		t.Fatalf("host clock not parked at end")
	}
}

// TestFleetQueueKindsAgree: heap- and wheel-queued fleets produce identical
// digests, extending the single-engine queue-kind golden to the fleet.
func TestFleetQueueKindsAgree(t *testing.T) {
	const end = sim.Time(sim.Second)
	digests := map[sim.QueueKind]uint64{}
	for _, q := range []sim.QueueKind{sim.QueueHeap, sim.QueueWheel} {
		top := testTopology()
		top.NewSink = nil
		top.Queue = q
		f := top.Build()
		f.Run(end, 2)
		digests[q] = f.Digest()
	}
	if digests[sim.QueueHeap] != digests[sim.QueueWheel] {
		t.Fatalf("queue kinds diverge: %x vs %x", digests[sim.QueueHeap], digests[sim.QueueWheel])
	}
}

func ExampleTopology() {
	f := Topology{Webservers: 1, Desktops: 3, Seed: 1}.Build()
	stats := f.Run(sim.Time(200*sim.Millisecond), 2)
	fmt.Println(stats.Bounded, stats.Sent > 0, stats.Delivered > 0)
	// Output: true true true
}
