package fleet

import "timerstudy/internal/trace"

// Keyframe captures every host's verification state in index order: the
// engine summary (clock, scheduling sequence, pending-set hash, RNG
// position), the trace digest and counters, and the up/down flag. Taken at
// a session barrier it is a complete identity check for the run so far —
// the payload of a control-plane checkpoint (see internal/control and the
// replay-based resume design in sim.EngineState's docs).
func (f *Fleet) Keyframe() []trace.CheckpointHost {
	hosts := make([]trace.CheckpointHost, len(f.hosts))
	for i, h := range f.hosts {
		st := h.Eng.State()
		ch := trace.CheckpointHost{
			Name:       h.Name,
			Clock:      int64(st.Now),
			Seq:        st.Seq,
			Pending:    uint32(st.Pending),
			EventsHash: st.EventsHash,
			RandDraws:  st.RandDraws,
			Down:       h.Down,
		}
		if hs, ok := firstHashSink(h.Sink); ok {
			ch.Digest = hs.Sum64()
		}
		if c, ok := firstCounters(h.Sink); ok {
			ch.Counters = c.Counters()
		}
		hosts[i] = ch
	}
	return hosts
}
