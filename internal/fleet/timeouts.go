package fleet

import "timerstudy/internal/sim"

// The fleet's timeout registry (magictimeout): every fixed duration a fleet
// host arms lives here with its provenance. The datacenter models reuse the
// paper's single-machine values at scale — the point of the fleet is to
// show what Table 3's per-box timers look like multiplied by a thousand.
const (
	// clientRequestTimeout: the paper's titular 30 s — the connect/response
	// timeout every networked client in Section 4.1 arms and almost never
	// uses, here armed once per request by every desktop client thread.
	clientRequestTimeout = 30 * sim.Second
	// clientRetransmitTimeout: TCP RTO floor per RFC 6298 lower bound as
	// shipped in Linux (TCP_RTO_MIN = HZ/5); the Figure 8 retransmit timer
	// that is set and canceled on every exchange.
	clientRetransmitTimeout = 200 * sim.Millisecond
	// clientMaxRetries bounds retransmissions per request, mirroring the
	// syn-retry default of the era's kernels.
	clientMaxRetries = 5
	// clientGiveUpThink: extra back-off after a request deadline expires
	// before the user "clicks again".
	clientGiveUpThink = 2 * sim.Second
	// serverRequestWatchdog: Apache's Timeout directive default-era value
	// (the 15 s keepalive/request watchdog of the webserver trace), armed
	// per accepted request and canceled when the response is written.
	serverRequestWatchdog = 15 * sim.Second
	// serverSelectTimeout: the accept loop's select timeout; Table 3 shows
	// Apache's 1 s housekeeping select on the loaded webserver.
	serverSelectTimeout = sim.Second
	// defaultThinkMean: mean client think time between requests. Far below
	// human think time on purpose: one desktop host stands in for the
	// request rate of a whole office behind it, which is what pushes the
	// fleet past 10M cumulative timers in a 30 s window.
	defaultThinkMean = 10 * sim.Millisecond
	// defaultServiceMean: mean webserver service time per request (in-memory
	// page, the httperf setup of Section 3.5).
	defaultServiceMean = 2 * sim.Millisecond
	// defaultClientThreads: concurrent request loops per desktop host.
	defaultClientThreads = 2
	// requestSize: wire bytes of a GET, drives serialization delay.
	requestSize = 512
	// responseSize: wire bytes of the small static page of the Section 3.5
	// httperf setup.
	responseSize = 8 << 10
	// serverDiskEvery: one request in this many does disk I/O on the server
	// (the 4 ms unplug + 30 s IDE pair of Table 3).
	serverDiskEvery = 8
	// adaptiveTimeoutMin: floor of the PolicyAdaptive request timeout —
	// RFC 6298's 1 s minimum RTO, the lower bound the paper's Section 5
	// contrasts the hardcoded 30 s against.
	adaptiveTimeoutMin = sim.Second
)
