package fleet

import "timerstudy/internal/sim"

// Session is Fleet.Run cut open at its barriers: the same
// conservative-lookahead algorithm, but advanced one window per Step call
// so a caller (the control plane, internal/control) can act between
// windows. At every return from Step the fleet sits at a globally
// consistent boundary — all events strictly before Floor() have executed,
// the serial route phase has run, and no worker is touching host state —
// which is the only point where cross-host mutation (steering commands,
// kill/restart, keyframe capture) is deterministic: the boundary sequence
// depends only on the topology and the fabric, never on worker count or
// wall-clock arrival of commands.
//
// Lifecycle: StartSession → Step until false (or until the caller decides
// to stop) → Finish (drain remaining windows, park clocks at end — the
// exact Run semantics) or Close (tear down mid-run, for
// checkpoint-then-exit). A fleet supports one active session at a time.
type Session struct {
	f       *Fleet
	end     sim.Time
	workers int
	stats   RunStats

	lookahead sim.Duration
	bounded   bool

	// start is the next window's start instant — the virtual-time floor:
	// every event strictly before it has executed on every live host.
	start    sim.Time
	done     bool
	finished bool
}

// StartSession prepares an incremental run over [0, end]. It spins up the
// worker pool (workers > 1) exactly as Run does; the pool lives until
// Finish or Close.
func (f *Fleet) StartSession(end sim.Time, workers int) *Session {
	if workers < 1 {
		workers = 1
	}
	if f.active {
		panic("fleet: a session is already active")
	}
	f.active = true
	s := &Session{f: f, end: end, workers: workers}
	s.lookahead, s.bounded = f.fabric.MinLatency()
	s.stats.Lookahead, s.stats.Bounded = s.lookahead, s.bounded
	if workers > 1 {
		// Workers range over a local copy: the f.jobs field is cleared at
		// teardown, and a field read in the loop would race with it.
		jobs := make(chan func(), workers)
		f.jobs = jobs
		for w := 0; w < workers; w++ {
			go func() {
				for job := range jobs {
					job()
				}
			}()
		}
	}
	return s
}

// Step advances the fleet through exactly one window (one advance+route
// round) and reports whether more windows remain. The three run modes of
// Fleet.Run map one-to-one: unbounded fabrics complete in a single Step
// (there are no barriers to steer at), zero-lookahead fabrics step one
// global timestamp, and the normal mode steps one lookahead window —
// including the idle-window jump, which counts as a window like Run's.
func (s *Session) Step() bool {
	if s.done {
		return false
	}
	f := s.f
	switch {
	case !s.bounded:
		// No cross-host traffic possible: fully independent hosts.
		s.stats.Windows++
		s.stats.Events += f.advanceAll(s.workers, s.end+1)
		s.start = s.end + 1
		s.done = true
	case s.lookahead == 0:
		// Degenerate lock-step: one global timestamp per round.
		t, ok := f.minNextAt()
		if !ok || t > s.end {
			s.done = true
			break
		}
		s.stats.Windows++
		s.stats.Events += f.advanceAll(s.workers, t+1)
		f.route()
		s.start = t + 1
	default:
		if s.start > s.end {
			s.done = true
			break
		}
		horizon := s.end + 1
		if h := s.start + sim.Time(s.lookahead); h > s.start && h < horizon {
			horizon = h
		}
		s.stats.Windows++
		executed := f.advanceAll(s.workers, horizon)
		s.stats.Events += executed
		moved := f.route()
		if executed == 0 && moved == 0 {
			// Idle window: jump to the next event anywhere in the fleet
			// instead of spinning one empty window per lookahead.
			t, ok := f.minNextAt()
			if !ok || t > s.end {
				s.done = true
				break
			}
			s.start = t
			break
		}
		s.start = horizon
	}
	return !s.done
}

// Windows returns the number of windows stepped so far — the keyframe
// index the control plane stamps commands and checkpoints with.
func (s *Session) Windows() int { return s.stats.Windows }

// Floor returns the virtual-time floor of the current boundary: every
// event strictly before it has executed on every live host.
func (s *Session) Floor() sim.Time { return s.start }

// Finish drains any remaining windows, parks every clock at the end
// instant (so idle-time accounting matches a serial Engine.Run(end)),
// tears the pool down and returns the totals — exactly Run's epilogue.
func (s *Session) Finish() RunStats {
	for s.Step() {
	}
	f := s.f
	f.each(s.workers, func(i int) {
		f.hosts[i].Eng.Run(s.end)
	})
	return s.close()
}

// Close tears the session down mid-run without draining windows or
// parking clocks: the checkpoint-then-exit path, where the partial run's
// trace is discarded and only the keyframe survives.
func (s *Session) Close() RunStats { return s.close() }

func (s *Session) close() RunStats {
	if s.finished {
		return s.stats
	}
	s.finished = true
	s.done = true
	f := s.f
	if f.jobs != nil {
		close(f.jobs)
		f.jobs = nil
	}
	f.active = false
	for _, h := range f.hosts {
		s.stats.Sent += h.Sent
		s.stats.Delivered += h.Delivered
		s.stats.Lost += h.Lost
	}
	return s.stats
}

// Run advances the whole fleet through virtual time [0, end] on the given
// number of workers and returns run statistics. Per-host traces are
// byte-identical for any workers value.
//
// The algorithm is conservative-lookahead parallel discrete-event
// simulation: with L = the fabric's minimum link latency, every message
// sent at time s is delivered at s+L or later, so all events strictly
// before now+L are causally independent across hosts. Each round therefore
// advances every host to the window horizon on the worker pool, barriers,
// routes the accumulated cross-host messages serially, and repeats — one
// barrier per window, not per event (see DESIGN.md for why). Run is
// StartSession + Step-to-exhaustion + Finish; use a Session directly to
// act at the barriers.
//
// When L is zero (a zero-latency link exists) the fleet degenerates to
// deterministic lock-step by timestamp: each round runs exactly the global
// minimum pending instant on every host that has it. When the fabric
// permits no cross-host traffic at all, each host simply runs to the end
// independently.
func (f *Fleet) Run(end sim.Time, workers int) RunStats {
	return f.StartSession(end, workers).Finish()
}
