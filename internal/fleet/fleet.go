package fleet

import (
	"sync"
	"sync/atomic"

	"timerstudy/internal/kernel"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
	"timerstudy/internal/workloads"
)

// Fleet is a set of simulated hosts advancing in lock-step windows over a
// frozen netsim.Fabric. Build it with New + AddHost (or a Topology), then
// call Run once.
type Fleet struct {
	fabric *netsim.Fabric
	hosts  []*Host
	byName map[string]int

	// jobs feeds the persistent worker pool; nil while no session is active
	// or when running with one worker.
	jobs chan func()
	// active guards against overlapping sessions (StartSession/Run).
	active bool
}

// RunStats summarizes one Fleet.Run.
type RunStats struct {
	// Windows is the number of synchronization barriers (advance+route
	// rounds) the run needed.
	Windows int
	// Events is the total engine events executed across all hosts inside
	// the windowed advance (the cleanup clock-advance at the end adds
	// none).
	Events uint64
	// Sent, Delivered, Lost total the cross-host traffic.
	Sent, Delivered, Lost uint64
	// Lookahead is the conservative window width used (0 in degenerate
	// lock-step mode; Bounded false when the fabric allows no cross-host
	// traffic at all).
	Lookahead sim.Duration
	// Bounded reports whether cross-host traffic constrained the run.
	Bounded bool
}

// New returns an empty fleet over a frozen fabric. Freezing first is
// required: host construction interns delivery labels and Run reads the
// link matrix from parallel workers.
func New(fabric *netsim.Fabric) *Fleet {
	if !fabric.Frozen() {
		panic("fleet: fabric must be frozen before New")
	}
	return &Fleet{fabric: fabric, byName: map[string]int{}}
}

// AddHost creates a host with its own engine (seeded independently), kernel
// personality and sink, then boots the model. Hosts must be added in the
// same order on every run — the index is part of the deterministic message
// order. The name must be registered on the fabric.
func (f *Fleet) AddHost(name string, seed int64, queue sim.QueueKind, sink trace.Sink, model Model) *Host {
	if _, dup := f.byName[name]; dup {
		panic("fleet: duplicate host " + name)
	}
	label := f.fabric.RecvLabel(name)
	if label == "" {
		panic("fleet: host " + name + " not registered on the fabric")
	}
	eng := sim.NewEngine(seed, sim.WithEventQueue(queue))
	kern := kernel.NewLinux(eng, sink)
	h := &Host{
		Index:     len(f.hosts),
		Name:      name,
		Eng:       eng,
		Sink:      sink,
		Kern:      kern,
		Kit:       workloads.NewHostKit(eng, kern),
		fleet:     f,
		model:     model,
		recvLabel: label,
	}
	h.deliverFn = h.deliver
	f.byName[name] = h.Index
	f.hosts = append(f.hosts, h)
	model.Boot(h)
	return h
}

// Hosts returns the fleet's hosts in index order. The slice is shared;
// callers must not mutate it.
func (f *Fleet) Hosts() []*Host { return f.hosts }

// HostByName returns a host by fabric name, or nil.
func (f *Fleet) HostByName(name string) *Host {
	if i, ok := f.byName[name]; ok {
		return f.hosts[i]
	}
	return nil
}

// eachChunk is the unit of work stealing: big enough to amortize the atomic
// increment, small enough to balance uneven hosts.
const eachChunk = 16

// each applies fn to every host index, fanning out across the worker pool.
// workers==1 (or a single host) bypasses the pool entirely and runs the
// exact serial order — the baseline the determinism gate compares against.
// fn bodies may touch only the indexed host's state plus frozen/immutable
// fleet state; the goroutinecapture analyzer audits call sites through the
// (workers, func) parameter pair.
func (f *Fleet) each(workers int, fn func(i int)) {
	n := len(f.hosts)
	if workers <= 1 || n <= 1 || f.jobs == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	job := func() {
		defer wg.Done()
		for {
			base := int(next.Add(eachChunk)) - eachChunk
			if base >= n {
				return
			}
			hi := base + eachChunk
			if hi > n {
				hi = n
			}
			for i := base; i < hi; i++ {
				fn(i)
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		f.jobs <- job
	}
	wg.Wait()
}

// advanceAll moves every host's engine up to (strictly before) horizon in
// parallel and returns the total events executed.
func (f *Fleet) advanceAll(workers int, horizon sim.Time) uint64 {
	f.each(workers, func(i int) {
		h := f.hosts[i]
		h.windowExecuted = h.Eng.AdvanceUntil(horizon)
	})
	var total uint64
	for _, h := range f.hosts {
		total += uint64(h.windowExecuted)
	}
	return total
}

// route is the serial barrier phase: drain every outbox into the
// destinations' staged queues in host-index order (deterministic regardless
// of which worker advanced whom), then merge and schedule deliveries. It
// returns the number of messages moved. Messages addressed to a down host
// (Host.Kill) are dropped here and counted against the destination's Lost —
// the wire reached the machine, the machine was off.
func (f *Fleet) route() int {
	moved := 0
	for _, h := range f.hosts {
		for _, m := range h.outbox {
			dst := f.hosts[m.Dst]
			if dst.Down {
				dst.Lost++
				continue
			}
			dst.staged = append(dst.staged, m)
			moved++
		}
		h.outbox = h.outbox[:0]
	}
	if moved == 0 {
		return 0
	}
	for _, h := range f.hosts {
		h.mergeStaged()
	}
	return moved
}

// minNextAt returns the earliest pending event time across the fleet.
// Stopped engines (killed hosts) are skipped: their backlog cannot execute,
// and letting it anchor the idle-jump target would pin the fleet to an
// instant that never drains.
func (f *Fleet) minNextAt() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, h := range f.hosts {
		if h.Eng.Stopped() {
			continue
		}
		if t, ok := h.Eng.NextAt(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// Counters sums the per-host sink counters (for sinks that keep them). A
// teed host sink is counted once, by the first counter-keeping sink in the
// fan — every sink in a tee sees the identical record sequence.
func (f *Fleet) Counters() trace.Counters {
	var total trace.Counters
	for _, h := range f.hosts {
		if c, ok := firstCounters(h.Sink); ok {
			hc := c.Counters()
			for i := range hc.ByOp {
				total.ByOp[i] += hc.ByOp[i]
			}
			total.Total += hc.Total
			total.Dropped += hc.Dropped
			total.Unknown += hc.Unknown
		}
	}
	return total
}

// firstCounters finds the first counter-keeping sink in a host sink's fan.
func firstCounters(s trace.Sink) (interface{ Counters() trace.Counters }, bool) {
	for _, inner := range trace.Fan(s) {
		if c, ok := inner.(interface{ Counters() trace.Counters }); ok {
			return c, true
		}
	}
	return nil, false
}

// firstHashSink finds the digest-bearing sink in a host sink's fan.
func firstHashSink(s trace.Sink) (*trace.HashSink, bool) {
	for _, inner := range trace.Fan(s) {
		if hs, ok := inner.(*trace.HashSink); ok {
			return hs, true
		}
	}
	return nil, false
}

// Digest folds the per-host trace digests (hosts using trace.HashSink) into
// one fleet-wide FNV-1a 64 value in host-index order. Two runs are
// byte-identical iff their digests match. Hosts whose sink is not a
// HashSink contribute nothing.
func (f *Fleet) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	d := uint64(offset64)
	for _, h := range f.hosts {
		hs, ok := firstHashSink(h.Sink)
		if !ok {
			continue
		}
		s := hs.Sum64()
		for i := 0; i < 8; i++ {
			d ^= uint64(byte(s >> (8 * i)))
			d *= prime64
		}
	}
	return d
}
