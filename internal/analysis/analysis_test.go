package analysis

import (
	"strings"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// traceBuilder makes hand-written traces terse.
type traceBuilder struct {
	tr *trace.Buffer
}

func newTB() *traceBuilder { return &traceBuilder{tr: trace.NewBuffer(1 << 16)} }

func (b *traceBuilder) log(t sim.Duration, op trace.Op, id uint64, timeout sim.Duration, origin string, flags trace.Flags) {
	b.tr.Log(trace.Record{
		T: sim.Time(t), Op: op, TimerID: id, Timeout: int64(timeout),
		Origin: b.tr.Origin(origin), Flags: flags,
	})
}

func (b *traceBuilder) set(t sim.Duration, id uint64, timeout sim.Duration) {
	b.log(t, trace.OpSet, id, timeout, "test", 0)
}
func (b *traceBuilder) expire(t sim.Duration, id uint64) {
	b.log(t, trace.OpExpire, id, 0, "test", 0)
}
func (b *traceBuilder) cancel(t sim.Duration, id uint64) {
	b.log(t, trace.OpCancel, id, 0, "test", 0)
}

func lifeOf(t *testing.T, tr *trace.Buffer, id uint64) *TimerLife {
	t.Helper()
	for _, tl := range Lifecycles(tr) {
		if tl.ID == id {
			return tl
		}
	}
	t.Fatalf("no lifecycle for id %d", id)
	return nil
}

func TestLifecycleBasic(t *testing.T) {
	b := newTB()
	b.set(0, 1, sim.Second)
	b.expire(sim.Second, 1)
	b.set(2*sim.Second, 1, sim.Second)
	b.cancel(2500*sim.Millisecond, 1)
	b.cancel(2600*sim.Millisecond, 1) // no-op cancel: access only
	tl := lifeOf(t, b.tr, 1)
	if len(tl.Uses) != 2 {
		t.Fatalf("uses = %d", len(tl.Uses))
	}
	if tl.Uses[0].End != EndExpired || tl.Uses[0].Elapsed() != sim.Second {
		t.Fatalf("use0 = %+v", tl.Uses[0])
	}
	if tl.Uses[1].End != EndCanceled || tl.Uses[1].Elapsed() != 500*sim.Millisecond {
		t.Fatalf("use1 = %+v", tl.Uses[1])
	}
	if tl.Ops != 5 {
		t.Fatalf("ops = %d", tl.Ops)
	}
	if r, ok := tl.Uses[1].Ratio(); !ok || r != 0.5 {
		t.Fatalf("ratio = %v %v", r, ok)
	}
}

func TestLifecycleResetDetection(t *testing.T) {
	b := newTB()
	b.set(0, 1, 10*sim.Second)
	b.set(5*sim.Second, 1, 10*sim.Second) // re-armed before expiry
	b.expire(15*sim.Second, 1)
	tl := lifeOf(t, b.tr, 1)
	if len(tl.Uses) != 2 {
		t.Fatalf("uses = %d", len(tl.Uses))
	}
	if tl.Uses[0].End != EndReset {
		t.Fatalf("use0.End = %v", tl.Uses[0].End)
	}
	if tl.Uses[1].End != EndExpired {
		t.Fatalf("use1.End = %v", tl.Uses[1].End)
	}
}

func TestLifecycleDanglingUse(t *testing.T) {
	b := newTB()
	b.set(0, 1, sim.Hour)
	tl := lifeOf(t, b.tr, 1)
	if tl.Uses[0].End != EndDangling {
		t.Fatal("expected dangling")
	}
	if _, ok := tl.Uses[0].Ratio(); ok {
		t.Fatal("dangling use has a ratio")
	}
}

// mkPeriodic builds n expiry-and-immediate-reset cycles.
func mkPeriodic(b *traceBuilder, id uint64, period sim.Duration, n int) {
	t := sim.Duration(0)
	for i := 0; i < n; i++ {
		b.set(t, id, period)
		t += period
		b.expire(t, id)
	}
}

func TestClassifyPeriodic(t *testing.T) {
	b := newTB()
	mkPeriodic(b, 1, sim.Second, 10)
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassPeriodic {
		t.Fatalf("class = %v", c)
	}
}

func TestClassifyWatchdog(t *testing.T) {
	b := newTB()
	// Reset every 2 s with a 10 s timeout; never expires.
	for i := 0; i < 10; i++ {
		b.set(sim.Duration(i)*2*sim.Second, 1, 10*sim.Second)
	}
	b.cancel(21*sim.Second, 1)
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassWatchdog {
		t.Fatalf("class = %v", c)
	}
}

func TestClassifyDelay(t *testing.T) {
	b := newTB()
	// Expires, then re-set after a long gap, same value.
	t0 := sim.Duration(0)
	for i := 0; i < 6; i++ {
		b.set(t0, 1, sim.Second)
		b.expire(t0+sim.Second, 1)
		t0 += 10 * sim.Second // non-trivial gap
	}
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassDelay {
		t.Fatalf("class = %v", c)
	}
}

func TestClassifyTimeout(t *testing.T) {
	b := newTB()
	// Canceled shortly after set, re-set later: RPC-style timeout.
	t0 := sim.Duration(0)
	for i := 0; i < 8; i++ {
		b.set(t0, 1, 30*sim.Second)
		b.cancel(t0+120*sim.Millisecond, 1)
		t0 += 5 * sim.Second
	}
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassTimeout {
		t.Fatalf("class = %v", c)
	}
}

func TestClassifyDeferred(t *testing.T) {
	b := newTB()
	// Vista lazy-close: deferred thrice, expires, restarts.
	t0 := sim.Duration(0)
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 3; i++ {
			b.set(t0, 1, 5*sim.Second)
			t0 += 2 * sim.Second
		}
		b.set(t0, 1, 5*sim.Second)
		t0 += 5 * sim.Second
		b.expire(t0, 1)
		t0 += 20 * sim.Second
	}
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassDeferred {
		t.Fatalf("class = %v", c)
	}
}

func TestClassifyOtherIrregular(t *testing.T) {
	b := newTB()
	// Wildly varying values: select-loop style.
	vals := []sim.Duration{600 * sim.Second, 420 * sim.Second, 100 * sim.Second, 3 * sim.Second}
	t0 := sim.Duration(0)
	for _, v := range vals {
		b.set(t0, 1, v)
		b.cancel(t0+sim.Second, 1)
		t0 += 2 * sim.Second
	}
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassOther {
		t.Fatalf("class = %v", c)
	}
}

func TestClassifySingleUseIsOther(t *testing.T) {
	b := newTB()
	b.set(0, 1, sim.Second)
	b.expire(sim.Second, 1)
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassOther {
		t.Fatalf("class = %v", c)
	}
}

func TestClassifyJitterTolerated(t *testing.T) {
	b := newTB()
	// Periodic with ±1.5 ms jitter on the value: still periodic.
	t0 := sim.Duration(0)
	for i := 0; i < 8; i++ {
		v := sim.Second + sim.Duration(i%2)*1500*sim.Microsecond
		b.set(t0, 1, v)
		t0 += sim.Second
		b.expire(t0, 1)
	}
	if c := Classify(lifeOf(t, b.tr, 1)); c != ClassPeriodic {
		t.Fatalf("class = %v", c)
	}
}

func TestComputeClassShares(t *testing.T) {
	b := newTB()
	mkPeriodic(b, 1, sim.Second, 5)
	mkPeriodic(b, 2, 2*sim.Second, 5)
	for i := 0; i < 5; i++ {
		b.set(sim.Duration(i)*sim.Second, 3, 10*sim.Second)
	}
	s := ComputeClassShares(Lifecycles(b.tr))
	if s.Total != 3 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.Counts[ClassPeriodic] != 2 || s.Counts[ClassWatchdog] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if s.Share(ClassPeriodic) < 66 || s.Share(ClassPeriodic) > 67 {
		t.Fatalf("share = %v", s.Share(ClassPeriodic))
	}
}

func TestSummarize(t *testing.T) {
	b := newTB()
	b.log(0, trace.OpSet, 1, sim.Second, "kernel/x", 0)
	b.log(sim.Millisecond, trace.OpSet, 2, sim.Second, "app/select", trace.FlagUser)
	b.log(2*sim.Millisecond, trace.OpSet, 3, sim.Second, "kernel/y", 0)
	b.log(500*sim.Millisecond, trace.OpCancel, 2, 0, "app/select", trace.FlagUser)
	b.log(sim.Second, trace.OpExpire, 1, 0, "kernel/x", 0)
	b.log(sim.Second, trace.OpExpire, 3, 0, "kernel/y", 0)
	s := Summarize(b.tr)
	if s.Timers != 3 {
		t.Fatalf("timers = %d", s.Timers)
	}
	if s.Concurrency != 3 {
		t.Fatalf("concurrency = %d", s.Concurrency)
	}
	if s.Accesses != 6 || s.UserSpace != 2 || s.Kernel != 4 {
		t.Fatalf("accesses = %+v", s)
	}
	if s.Set != 3 || s.Expired != 2 || s.Canceled != 1 {
		t.Fatalf("ops = %+v", s)
	}
}

func TestCountdownDetection(t *testing.T) {
	b := newTB()
	// select(60s) interrupted at 10s intervals: 60, 50, 40... the X idiom.
	v := 60 * sim.Second
	t0 := sim.Duration(0)
	var id uint64 = 1
	for v > 0 {
		b.log(t0, trace.OpSet, id, v, "Xorg/select", trace.FlagUser)
		b.log(t0+10*sim.Second, trace.OpCancel, id, 0, "Xorg/select", trace.FlagUser)
		t0 += 10 * sim.Second
		v -= 10 * sim.Second
	}
	tl := lifeOf(t, b.tr, 1)
	chains := CountdownChains(tl)
	if len(chains) != 1 {
		t.Fatalf("chains = %+v", chains)
	}
	if chains[0].Len() != 6 {
		t.Fatalf("chain len = %d", chains[0].Len())
	}
}

func TestCountdownNotConfusedWithWatchdog(t *testing.T) {
	b := newTB()
	// Watchdog: same value re-set; must NOT be a countdown.
	for i := 0; i < 5; i++ {
		b.set(sim.Duration(i)*sim.Second, 1, 10*sim.Second)
	}
	if chains := CountdownChains(lifeOf(t, b.tr, 1)); len(chains) != 0 {
		t.Fatalf("watchdog detected as countdown: %+v", chains)
	}
}

func TestCommonValuesCollapseAndFilter(t *testing.T) {
	b := newTB()
	// Xorg countdown from 600 s (6 sets), plus a kernel 5 s timer with 10
	// sets, plus an icewm constant.
	v := 600 * sim.Second
	t0 := sim.Duration(0)
	for i := 0; i < 6; i++ {
		b.log(t0, trace.OpSet, 1, v, "Xorg/select", trace.FlagUser)
		b.log(t0+100*sim.Second, trace.OpCancel, 1, 0, "Xorg/select", trace.FlagUser)
		t0 += 100 * sim.Second
		v -= 100 * sim.Second
	}
	for i := 0; i < 10; i++ {
		b.log(sim.Duration(i)*10*sim.Second, trace.OpSet, 2, 5*sim.Second, "kernel/writeback", 0)
		b.log(sim.Duration(i)*10*sim.Second+5*sim.Second, trace.OpExpire, 2, 0, "kernel/writeback", 0)
	}
	b.log(0, trace.OpSet, 3, 10*sim.Second, "icewm/select", trace.FlagUser)
	ls := Lifecycles(b.tr)

	// Unfiltered, uncollapsed: 17 samples, countdown spread present.
	entries, total := CommonValues(ls, ValueOptions{JiffyBinKernel: true, MinSharePercent: 2})
	if total != 17 {
		t.Fatalf("total = %d", total)
	}
	if len(entries) < 7 {
		t.Fatalf("entries = %+v", entries)
	}

	// Collapsed + X/icewm filtered: only the kernel 5 s remains.
	entries, total = CommonValues(ls, ValueOptions{
		JiffyBinKernel: true, MinSharePercent: 2,
		CollapseCountdowns: true,
		ExcludeProcesses:   []string{"Xorg", "icewm"},
	})
	if total != 10 {
		t.Fatalf("filtered total = %d", total)
	}
	if len(entries) != 1 || entries[0].Value != 5*sim.Second || entries[0].Jiffies != 1250 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Share != 100 {
		t.Fatalf("share = %v", entries[0].Share)
	}
}

func TestCommonValuesUserOnly(t *testing.T) {
	b := newTB()
	b.log(0, trace.OpSet, 1, sim.Second, "kernel/x", 0)
	b.log(0, trace.OpSet, 2, 500*sim.Millisecond, "skype/select", trace.FlagUser)
	ls := Lifecycles(b.tr)
	entries, total := CommonValues(ls, ValueOptions{UserOnly: true, MinSharePercent: 2})
	if total != 1 || len(entries) != 1 || entries[0].Value != 500*sim.Millisecond {
		t.Fatalf("entries = %+v total=%d", entries, total)
	}
}

func TestCommonValuesDistinguishesSkypeHalfSecond(t *testing.T) {
	// 0.4999 and 0.5 must stay distinct bins (Figure 6's Skype oddity).
	b := newTB()
	for i := 0; i < 10; i++ {
		b.log(sim.Duration(i)*sim.Second, trace.OpSet, 1, 499900*sim.Microsecond, "skype/select", trace.FlagUser)
		b.log(sim.Duration(i)*sim.Second, trace.OpSet, 2, 500*sim.Millisecond, "skype/poll", trace.FlagUser)
	}
	entries, _ := CommonValues(Lifecycles(b.tr), ValueOptions{UserOnly: true, MinSharePercent: 2})
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestScatterAggregation(t *testing.T) {
	b := newTB()
	// 100 periodic 1 s expiries at 100 % and one early cancel at 50 %.
	mkPeriodic(b, 1, sim.Second, 100)
	b.set(200*sim.Second, 2, sim.Second)
	b.cancel(200*sim.Second+500*sim.Millisecond, 2)
	pts := Scatter(Lifecycles(b.tr), DefaultScatterOptions())
	var at100, at50 int
	for _, p := range pts {
		if p.RatioPct == 100 {
			at100 += p.Count
		}
		if p.RatioPct == 50 {
			at50 += p.Count
		}
	}
	if at100 != 100 || at50 != 1 {
		t.Fatalf("at100=%d at50=%d (%+v)", at100, at50, pts)
	}
}

func TestScatterCutoff(t *testing.T) {
	b := newTB()
	// 1 ms timeout delivered 15 ms late: 1500 % — cut off.
	b.set(0, 1, sim.Millisecond)
	b.expire(15*sim.Millisecond, 1)
	pts := Scatter(Lifecycles(b.tr), DefaultScatterOptions())
	if len(pts) != 0 {
		t.Fatalf("points above cutoff survived: %+v", pts)
	}
}

func TestSetRates(t *testing.T) {
	b := newTB()
	for i := 0; i < 10; i++ {
		b.log(sim.Duration(i)*100*sim.Millisecond, trace.OpSet, 1, sim.Second, "outlook/wm_timer", trace.FlagUser)
	}
	b.log(1500*sim.Millisecond, trace.OpSet, 2, sim.Second, "kernel/x", 0)
	series := SetRates(b.tr, 3*sim.Second, func(r trace.Record, origin string) string {
		if strings.HasPrefix(origin, "outlook") {
			return "Outlook"
		}
		return "Kernel"
	})
	if len(series) != 2 {
		t.Fatalf("series = %+v", series)
	}
	var outlook, kern RateSeries
	for _, s := range series {
		switch s.Group {
		case "Outlook":
			outlook = s
		case "Kernel":
			kern = s
		}
	}
	if outlook.PerSecond[0] != 10 || outlook.Peak() != 10 {
		t.Fatalf("outlook = %+v", outlook)
	}
	if kern.PerSecond[1] != 1 {
		t.Fatalf("kernel = %+v", kern)
	}
	if outlook.Mean() < 3.2 || outlook.Mean() > 3.5 {
		t.Fatalf("mean = %v", outlook.Mean())
	}
}

func TestOriginTable(t *testing.T) {
	b := newTB()
	mkPeriodic(b, 1, 5*sim.Second, 20)
	// give timer 1 a distinctive origin
	for i := range b.tr.Records() {
		r := &b.tr.Records()[i]
		r.Origin = b.tr.Origin("kernel/writeback")
	}
	rows := OriginTable(Lifecycles(b.tr), 5)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Origin != "kernel/writeback" || r.Class != ClassPeriodic || r.Value != 5*sim.Second {
		t.Fatalf("row = %+v", r)
	}
	if r.Sets != 20 || r.Timers != 1 {
		t.Fatalf("row = %+v", r)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	b := newTB()
	mkPeriodic(b, 1, sim.Second, 10)
	ls := Lifecycles(b.tr)
	sum := Summarize(b.tr)
	if s := RenderSummaryTable("T", []string{"Idle"}, []Summary{sum}); !strings.Contains(s, "Accesses") {
		t.Fatal("summary render broken")
	}
	if s := RenderClassShares([]string{"Idle"}, []ClassShares{ComputeClassShares(ls)}); !strings.Contains(s, "periodic") {
		t.Fatal("class render broken")
	}
	entries, _ := CommonValues(ls, ValueOptions{JiffyBinKernel: true, MinSharePercent: 2})
	if s := RenderValues(entries); !strings.Contains(s, "1") {
		t.Fatal("values render broken")
	}
	if s := RenderScatter(Scatter(ls, DefaultScatterOptions())); !strings.Contains(s, "100%") {
		t.Fatal("scatter render broken")
	}
	pts := SetSeries(ls, "test")
	if s := RenderSeries(pts, 20*sim.Second); !strings.Contains(s, "*") {
		t.Fatal("series render broken")
	}
	rows := OriginTable(ls, 1)
	if s := RenderOrigins(rows); !strings.Contains(s, "test") {
		t.Fatal("origins render broken")
	}
}

func TestSortByOps(t *testing.T) {
	b := newTB()
	mkPeriodic(b, 1, sim.Second, 2)
	mkPeriodic(b, 2, sim.Second, 10)
	ls := Lifecycles(b.tr)
	SortByOps(ls)
	if ls[0].ID != 2 {
		t.Fatalf("order = %d, %d", ls[0].ID, ls[1].ID)
	}
}

func TestSetSeriesOrdering(t *testing.T) {
	b := newTB()
	b.log(2*sim.Second, trace.OpSet, 1, sim.Second, "Xorg/select", trace.FlagUser)
	b.log(1*sim.Second, trace.OpSet, 2, 2*sim.Second, "Xorg/select2", trace.FlagUser)
	pts := SetSeries(Lifecycles(b.tr), "Xorg")
	if len(pts) != 2 || pts[0].T > pts[1].T {
		t.Fatalf("pts = %+v", pts)
	}
}
