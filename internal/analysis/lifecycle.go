// Package analysis post-processes timer traces into the paper's results:
// per-timer lifecycles, the Section 4.1.1 usage-pattern taxonomy, the
// trace summaries of Tables 1-2, the common-value histograms of Figures 3
// and 5-7 (with the select-countdown detection and X/icewm filtering of
// Figures 4-5), the expiry/cancelation scatter of Figures 8-11, the
// per-second set-rate series of Figure 1, and the origins table (Table 3).
package analysis

import (
	"fmt"
	"sort"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// JitterTolerance is the variance the paper allows when comparing timeout
// values and re-set gaps: 2 ms, experimentally determined from the kernel
// work-queue timer (Section 3.1).
const JitterTolerance = 2 * sim.Millisecond

// EndKind says how one armed interval of a timer ended.
type EndKind uint8

const (
	// EndDangling: the trace finished while the timer was pending.
	EndDangling EndKind = iota
	// EndExpired: the timeout was delivered.
	EndExpired
	// EndCanceled: the timer was canceled (del_timer, KeCancelTimer,
	// satisfied wait).
	EndCanceled
	// EndReset: the timer was re-armed before expiring (mod_timer on a
	// pending timer) — the watchdog deferral operation.
	EndReset
)

var endNames = [...]string{"dangling", "expired", "canceled", "reset"}

// String returns the lower-case end-kind name; out-of-range values render as
// "endkind(N)" rather than panicking, mirroring trace.Op.String.
func (e EndKind) String() string {
	if int(e) < len(endNames) {
		return endNames[e]
	}
	return fmt.Sprintf("endkind(%d)", uint8(e))
}

// Use is one armed interval in a timer's life.
type Use struct {
	// SetAt is when the timer was armed.
	SetAt sim.Time
	// Timeout is the relative timeout requested at arming.
	Timeout sim.Duration
	// EndAt is when the interval ended (expiry, cancel, or re-arm).
	EndAt sim.Time
	// End says how it ended.
	End EndKind
	// Satisfied marks cancels that ended a wait because the awaited object
	// signaled.
	Satisfied bool
	// IsWait marks intervals from thread waits (OpWait).
	IsWait bool
}

// Elapsed is the armed duration (zero for dangling uses).
func (u Use) Elapsed() sim.Duration {
	if u.End == EndDangling {
		return 0
	}
	return u.EndAt.Sub(u.SetAt)
}

// Ratio is elapsed time as a fraction of the requested timeout; the y-axis
// of Figures 8-11. Zero-timeout and dangling uses return false.
func (u Use) Ratio() (float64, bool) {
	if u.End == EndDangling || u.Timeout <= 0 {
		return 0, false
	}
	return float64(u.Elapsed()) / float64(u.Timeout), true
}

// TimerLife is everything the trace says about one timer identity.
type TimerLife struct {
	// ID is the timer's trace identity.
	ID uint64
	// PID owns the timer (0 = kernel).
	PID int32
	// Origin is the resolved origin label.
	Origin string
	// User reports whether the timer's operations carried FlagUser.
	User bool
	// Deferrable mirrors the Linux flag.
	Deferrable bool
	// Uses are the armed intervals in time order.
	Uses []Use
	// Ops counts raw operations on this timer (including no-op cancels).
	Ops int
	// NoopCancels counts cancels that found no pending interval (the paper
	// saw repeated deletions of idle timers); they contribute to Ops and the
	// summary's Canceled total but produce no Use.
	NoopCancels int
	// OrphanExpires counts expiries that found no pending interval (possible
	// only in adversarial traces); like NoopCancels they are accesses without
	// an interval.
	OrphanExpires int
}

// buildLifecycles is the single shared walk over the raw record stream: it
// reconstructs per-timer histories AND tallies the Table 1/2 summary in the
// same pass, so the raw-record counts and the lifecycle-derived analyses can
// never drift apart. Records must be in time order (trace buffers append in
// execution order, so they are). The result reflects the records read before
// any source error.
func buildLifecycles(src trace.Source) ([]*TimerLife, Summary, error) {
	var sum Summary
	byID := make(map[uint64]*TimerLife)
	order := make([]uint64, 0, 64)
	get := func(r trace.Record) *TimerLife {
		tl, ok := byID[r.TimerID]
		if !ok {
			tl = &TimerLife{ID: r.TimerID, PID: r.PID, Origin: src.OriginName(r.Origin)}
			byID[r.TimerID] = tl
			order = append(order, r.TimerID)
		}
		if r.Flags&trace.FlagUser != 0 {
			tl.User = true
		}
		if r.Flags&trace.FlagDeferrable != 0 {
			tl.Deferrable = true
		}
		if tl.Origin == "?" {
			tl.Origin = src.OriginName(r.Origin)
		}
		return tl
	}
	type cluster struct {
		origin uint32
		pid    int32
	}
	clusters := make(map[cluster]bool)
	open := make(map[uint64]int) // timer id -> index of open use
	err := src.ForEach(func(r trace.Record) {
		tl := get(r)
		tl.Ops++
		sum.Accesses++
		clusters[cluster{r.Origin, r.PID}] = true
		if r.IsUser() {
			sum.UserSpace++
		} else {
			sum.Kernel++
		}
		switch r.Op {
		case trace.OpInit:
			// Initialization only; no interval.
		case trace.OpSet, trace.OpWait:
			sum.Set++
			if i, ok := open[r.TimerID]; ok {
				u := &tl.Uses[i]
				u.EndAt = r.T
				u.End = EndReset
			}
			tl.Uses = append(tl.Uses, Use{
				SetAt:   r.T,
				Timeout: sim.Duration(r.Timeout),
				End:     EndDangling,
				IsWait:  r.Op == trace.OpWait,
			})
			open[r.TimerID] = len(tl.Uses) - 1
			if len(open) > sum.Concurrency {
				sum.Concurrency = len(open)
			}
		case trace.OpCancel:
			sum.Canceled++
			if i, ok := open[r.TimerID]; ok {
				u := &tl.Uses[i]
				u.EndAt = r.T
				u.End = EndCanceled
				u.Satisfied = r.Flags&trace.FlagSatisfied != 0
				delete(open, r.TimerID)
			} else {
				// Cancels of idle timers count as ops but produce no
				// interval.
				tl.NoopCancels++
			}
		case trace.OpExpire:
			sum.Expired++
			if i, ok := open[r.TimerID]; ok {
				u := &tl.Uses[i]
				u.EndAt = r.T
				u.End = EndExpired
				delete(open, r.TimerID)
			} else {
				tl.OrphanExpires++
			}
		}
	})
	sum.Timers = len(order)
	sum.ClusteredTimers = len(clusters)
	out := make([]*TimerLife, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out, sum, err
}

// Lifecycles reconstructs per-timer histories from a trace. Memory is
// O(records): every use of every timer is materialized. In-memory buffers
// never fail; for a fallible file-backed Source the histories reflect the
// records read before the error — validate such sources with Pipeline.Run
// (or a prior full read) when the distinction matters.
func Lifecycles(src trace.Source) []*TimerLife {
	ls, _, _ := buildLifecycles(src)
	return ls
}

// SortByOps orders lifecycles by descending operation count (then ID for
// determinism) — the order Table 3 style listings want.
func SortByOps(ls []*TimerLife) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Ops != ls[j].Ops {
			return ls[i].Ops > ls[j].Ops
		}
		return ls[i].ID < ls[j].ID
	})
}
