package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Property: lifecycle reconstruction is well-formed for any op stream —
// uses are in time order, no use starts before the previous ended, and
// every non-dangling use has EndAt >= SetAt.
func TestLifecycleWellFormedProperty(t *testing.T) {
	check := func(ops []uint8, gaps []uint16) bool {
		b := newTB()
		now := sim.Duration(0)
		n := len(ops)
		if n > len(gaps) {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			now += sim.Duration(gaps[i]) * sim.Microsecond
			switch ops[i] % 4 {
			case 0:
				b.set(now, 1, sim.Duration(ops[i])*sim.Millisecond)
			case 1:
				b.cancel(now, 1)
			case 2:
				b.expire(now, 1)
			case 3:
				b.log(now, trace.OpInit, 1, 0, "test", 0)
			}
		}
		ls := Lifecycles(b.tr)
		for _, tl := range ls {
			var prevEnd sim.Time = -1
			for i, u := range tl.Uses {
				if u.End != EndDangling {
					if u.EndAt < u.SetAt {
						return false
					}
					prevEnd = u.EndAt
				}
				if i > 0 && u.SetAt < tl.Uses[i-1].SetAt {
					return false
				}
				_ = prevEnd
				// Only the final use may dangle.
				if u.End == EndDangling && i != len(tl.Uses)-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize's op counts always equal the record counts, whatever
// the stream contains.
func TestSummarizeConsistencyProperty(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := newTB()
		var sets, cancels, expires uint64
		for i := 0; i < int(n); i++ {
			id := uint64(rng.Intn(5) + 1)
			switch rng.Intn(4) {
			case 0, 1:
				b.set(sim.Duration(i)*sim.Millisecond, id, sim.Second)
				sets++
			case 2:
				b.cancel(sim.Duration(i)*sim.Millisecond, id)
				cancels++
			case 3:
				b.expire(sim.Duration(i)*sim.Millisecond, id)
				expires++
			}
		}
		s := Summarize(b.tr)
		return s.Set == sets && s.Canceled == cancels && s.Expired == expires &&
			s.Accesses == sets+cancels+expires
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrencyTracksReSets(t *testing.T) {
	// A re-set (set on a pending timer) must not double-count concurrency.
	b := newTB()
	b.set(0, 1, 10*sim.Second)
	b.set(sim.Second, 1, 10*sim.Second)
	b.set(2*sim.Second, 1, 10*sim.Second)
	if s := Summarize(b.tr); s.Concurrency != 1 {
		t.Fatalf("concurrency = %d", s.Concurrency)
	}
}

func TestClassifyWaitRecords(t *testing.T) {
	// Thread waits (OpWait) behave like sets for classification: a wait
	// loop that always times out with the same value is periodic-ish.
	b := newTB()
	t0 := sim.Duration(0)
	for i := 0; i < 10; i++ {
		b.log(t0, trace.OpWait, 1, 250*sim.Millisecond, "svc/wait", trace.FlagUser)
		t0 += 250 * sim.Millisecond
		b.log(t0, trace.OpExpire, 1, 0, "svc/wait", trace.FlagUser)
	}
	tl := lifeOf(t, b.tr, 1)
	if !tl.Uses[0].IsWait {
		t.Fatal("wait flag lost")
	}
	if c := Classify(tl); c != ClassPeriodic {
		t.Fatalf("class = %v", c)
	}
}

func TestCountdownChainBrokenByRestart(t *testing.T) {
	// Two countdown runs separated by a restart at the full value: two
	// chains, not one.
	b := newTB()
	t0 := sim.Duration(0)
	emit := func(start sim.Duration, steps int) {
		v := start
		for i := 0; i < steps; i++ {
			b.log(t0, trace.OpSet, 1, v, "Xorg/select", trace.FlagUser)
			b.log(t0+10*sim.Second, trace.OpCancel, 1, 0, "Xorg/select", trace.FlagUser)
			t0 += 10 * sim.Second
			v -= 10 * sim.Second
		}
	}
	emit(60*sim.Second, 4)
	emit(60*sim.Second, 4)
	chains := CountdownChains(lifeOf(t, b.tr, 1))
	if len(chains) != 2 {
		t.Fatalf("chains = %+v", chains)
	}
}

func TestValueOptionsZeroTimeoutBin(t *testing.T) {
	// Zero timeouts (poll(0)) land in a distinct zero bin and are never
	// jiffy-rounded to one tick.
	b := newTB()
	for i := 0; i < 10; i++ {
		b.log(sim.Duration(i)*sim.Second, trace.OpSet, 1, 0, "skype/poll", trace.FlagUser)
	}
	entries, total := CommonValues(Lifecycles(b.tr), ValueOptions{UserOnly: true, MinSharePercent: 2})
	if total != 10 || len(entries) != 1 || entries[0].Value != 0 {
		t.Fatalf("entries = %+v total = %d", entries, total)
	}
}

func TestScatterRespectsExclusions(t *testing.T) {
	b := newTB()
	b.log(0, trace.OpSet, 1, sim.Second, "Xorg/select", trace.FlagUser)
	b.log(sim.Duration(sim.Second), trace.OpExpire, 1, 0, "Xorg/select", trace.FlagUser)
	opts := DefaultScatterOptions()
	opts.ExcludeProcesses = []string{"Xorg"}
	if pts := Scatter(Lifecycles(b.tr), opts); len(pts) != 0 {
		t.Fatalf("excluded process leaked into scatter: %+v", pts)
	}
}

func TestSetRatesIgnoresOutOfRange(t *testing.T) {
	b := newTB()
	b.set(sim.Duration(5)*sim.Second, 1, sim.Second) // beyond a 3 s window
	series := SetRates(b.tr, 3*sim.Second, func(trace.Record, string) string { return "g" })
	for _, s := range series {
		for _, v := range s.PerSecond {
			if v != 0 {
				t.Fatalf("out-of-range record counted: %+v", series)
			}
		}
	}
}

func TestOriginTableMinSetsFilter(t *testing.T) {
	b := newTB()
	mkPeriodic(b, 1, sim.Second, 3)
	if rows := OriginTable(Lifecycles(b.tr), 100); len(rows) != 0 {
		t.Fatalf("rows = %+v", rows)
	}
}
