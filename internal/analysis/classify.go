package analysis

import (
	"sort"

	"timerstudy/internal/sim"
)

// Class is the Section 4.1.1 usage-pattern taxonomy.
type Class uint8

const (
	// ClassOther is the fall-through: irregular values, countdown chains,
	// single uses — the select-loop idioms the paper discusses.
	ClassOther Class = iota
	// ClassPeriodic: always expires and is immediately re-set to the same
	// relative value (page-out timer, work queues).
	ClassPeriodic
	// ClassWatchdog: never expires; endlessly re-set to the same relative
	// value before expiry (console blank timeout).
	ClassWatchdog
	// ClassDelay: usually expires and is set again to the same value after
	// a non-trivial gap (threads delaying execution).
	ClassDelay
	// ClassTimeout: almost never expires; canceled shortly after being
	// set, then set again later to the same value (RPC calls, IDE
	// commands).
	ClassTimeout
	// ClassDeferred: the Vista pattern — repeatedly deferred like a
	// watchdog, but expiring after a few iterations, then restarted (lazy
	// registry handle closing).
	ClassDeferred
	nClasses
)

var classNames = [...]string{"other", "periodic", "watchdog", "delay", "timeout", "deferred"}

// String returns the lower-case class name.
func (c Class) String() string { return classNames[c] }

// Classes lists all classes in display order (matching Figure 2 plus the
// Vista-only deferred class).
func Classes() []Class {
	return []Class{ClassDelay, ClassPeriodic, ClassTimeout, ClassWatchdog, ClassDeferred, ClassOther}
}

// Classify assigns one timer lifecycle to a usage pattern, following the
// paper's rules: the timer must be used repeatedly with a constant relative
// value (within the 2 ms jitter tolerance), and the outcome mix plus re-set
// gaps decide the class.
func Classify(tl *TimerLife) Class {
	uses := tl.Uses
	// Drop a trailing dangling use: it says nothing about the pattern.
	if n := len(uses); n > 0 && uses[n-1].End == EndDangling {
		uses = uses[:n-1]
	}
	if len(uses) < 2 {
		return ClassOther
	}
	if !constantValue(uses) {
		return ClassOther
	}
	var expired, canceled, reset int
	for _, u := range uses {
		switch u.End {
		case EndExpired:
			expired++
		case EndCanceled:
			canceled++
		case EndReset:
			reset++
		}
	}
	total := len(uses)
	switch {
	case expired == 0 && reset > 0 && reset >= canceled:
		// Endlessly deferred, never fires.
		return ClassWatchdog
	case reset > 0 && expired > 0 && canceled*10 <= total:
		// Deferred a few times, then expires, then restarts.
		return ClassDeferred
	case expired*10 >= total*9: // ≥90% expire
		if immediateResetFraction(uses) >= 0.8 {
			return ClassPeriodic
		}
		return ClassDelay
	case canceled*10 >= total*8 && mostlyEarlyCancel(uses):
		return ClassTimeout
	default:
		return ClassOther
	}
}

// constantValue reports whether the requested timeouts are "always set to
// the same value" in the paper's sense: at least 90 % of them within the
// 2 ms jitter tolerance of the median. The slack absorbs the odd
// out-of-phase first arming without letting genuinely variable timers
// (countdowns, adaptive timeouts) through.
func constantValue(uses []Use) bool {
	vals := make([]sim.Duration, len(uses))
	for i, u := range uses {
		vals[i] = u.Timeout
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	median := vals[len(vals)/2]
	within := 0
	for _, v := range vals {
		d := v - median
		if d < 0 {
			d = -d
		}
		if d <= JitterTolerance {
			within++
		}
	}
	return within*10 >= len(vals)*9
}

// immediateResetFraction is the share of expiries followed by a re-set
// within the jitter tolerance — the signature of a periodic ticker
// ("the timer always expires, and is immediately re-set").
func immediateResetFraction(uses []Use) float64 {
	expiries, immediate := 0, 0
	for i, u := range uses {
		if u.End != EndExpired {
			continue
		}
		expiries++
		if i+1 < len(uses) && uses[i+1].SetAt.Sub(u.EndAt) <= JitterTolerance {
			immediate++
		}
	}
	if expiries == 0 {
		return 0
	}
	return float64(immediate) / float64(expiries)
}

// mostlyEarlyCancel reports whether canceled uses typically end well before
// their timeout — the timeout pattern ("almost never expires but instead is
// canceled shortly after being set").
func mostlyEarlyCancel(uses []Use) bool {
	n, early := 0, 0
	for _, u := range uses {
		if u.End != EndCanceled {
			continue
		}
		n++
		if u.Timeout > 0 && u.Elapsed() < u.Timeout-sim.Duration(JitterTolerance) {
			early++
		}
	}
	return n > 0 && early*10 >= n*8
}

// ClassShares computes, per class, the percentage of timers in that class —
// Figure 2's y-axis. Lifecycles with no uses at all (init-only) are skipped.
type ClassShares struct {
	// Counts per class.
	Counts [nClasses]int
	// Total classified timers.
	Total int
}

// Share returns the percentage for one class.
func (s ClassShares) Share(c Class) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Counts[c]) / float64(s.Total)
}

// observe tallies one timer under its class. Lifecycles with no uses at all
// (init-only) are skipped.
func (s *ClassShares) observe(tl *TimerLife, class Class) {
	if len(tl.Uses) == 0 {
		return
	}
	s.Counts[class]++
	s.Total++
}

// ComputeClassShares classifies every lifecycle and tallies shares.
func ComputeClassShares(ls []*TimerLife) ClassShares {
	var s ClassShares
	for _, tl := range ls {
		s.observe(tl, Classify(tl))
	}
	return s
}
