package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// TestPipelineBoundedMemoryOverStream is the bounded-memory acceptance test
// for the streaming architecture: a v2 trace file at least 4× larger than
// the allowed allocation budget must analyse completely while allocating no
// more than a quarter of its size — i.e. Pipeline.Run's footprint follows
// the live-timer population, not the record count.
func TestPipelineBoundedMemoryOverStream(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an ~80 MB trace file")
	}
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}

	// ~2M records over 512 timer identities and 64 origins: big on disk,
	// tiny live state.
	const (
		nrec    = 2_000_000
		ntimers = 512
	)
	path := filepath.Join(t.TempDir(), "big.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := trace.NewStreamWriter(f)
	origins := make([]uint32, 64)
	for i := range origins {
		origins[i] = sw.Origin(fmt.Sprintf("kernel/gen-%d", i))
	}
	for i := 0; i < nrec; i += 2 {
		id := uint64(i/2) % ntimers
		o := origins[id%uint64(len(origins))]
		ti := sim.Time(i) * sim.Time(sim.Millisecond)
		sw.Log(trace.Record{T: ti, TimerID: id, Op: trace.OpSet,
			Origin: o, Timeout: int64(10 * sim.Millisecond)})
		sw.Log(trace.Record{T: ti + sim.Time(10*sim.Millisecond), TimerID: id,
			Op: trace.OpExpire, Origin: o})
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fileSize := fi.Size()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	src, err := trace.NewStreamReader(rf)
	if err != nil {
		t.Fatal(err)
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	rep, err := Pipeline{
		Values: ValueOptions{JiffyBinKernel: true, MinSharePercent: 2},
	}.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	if got := rep.Summary.Accesses; got != nrec {
		t.Fatalf("analysed %d accesses, want %d", got, nrec)
	}
	if rep.Summary.Timers != ntimers {
		t.Fatalf("timers = %d, want %d", rep.Summary.Timers, ntimers)
	}

	delta := m1.TotalAlloc - m0.TotalAlloc
	budget := uint64(fileSize) / 4
	if fileSize < int64(4*budget) {
		t.Fatalf("trace file only %d bytes; must be >=4x the allowed delta", fileSize)
	}
	if delta > budget {
		t.Fatalf("Pipeline.Run allocated %d bytes over a %d-byte file (budget %d): streaming analysis is buffering the trace",
			delta, fileSize, budget)
	}
	t.Logf("file %d bytes, allocated %d bytes (%.1f%% of file)", fileSize, delta, 100*float64(delta)/float64(fileSize))
}
