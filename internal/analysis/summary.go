package analysis

import "timerstudy/internal/trace"

// Summary is one column of Table 1 (Linux) or Table 2 (Vista): the
// trace-wide totals.
type Summary struct {
	// Timers is the number of distinct timer identities touched.
	Timers int
	// ClusteredTimers counts distinct (origin, pid) pairs. Vista allocates
	// timer objects on the fly, so raw identities explode; the paper
	// clusters operations "according to call-site and thread ID"
	// (Section 3.3) before counting, which this reproduces. On Linux the
	// two counts are close because timer structs are reused.
	ClusteredTimers int
	// Concurrency is the maximum number of simultaneously pending timers.
	Concurrency int
	// Accesses is the total number of operations on the timer subsystem.
	Accesses uint64
	// UserSpace counts accesses made on behalf of user space (explicit and
	// implicit, i.e. syscall timeouts); Kernel is the remainder.
	UserSpace uint64
	Kernel    uint64
	// Set, Expired, Canceled are the per-operation totals (Set includes
	// thread waits, which arm a timer).
	Set      uint64
	Expired  uint64
	Canceled uint64
}

// Summarize computes the trace summary. It counts over the raw record
// stream — no-op cancels and re-sets count as accesses, as the paper's
// instrumentation counts calls — via the same single walk that reconstructs
// lifecycles (buildLifecycles), so the summary and every lifecycle-derived
// analysis agree by construction. For a fallible file-backed Source the
// summary covers the records read before any error; use Pipeline.Run when
// errors must surface.
func Summarize(src trace.Source) Summary {
	_, s, _ := buildLifecycles(src)
	return s
}
