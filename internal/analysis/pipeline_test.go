package analysis

import (
	"reflect"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// richTrace builds a trace exercising every pipeline path: kernel periodic,
// user watchdog, a countdown chain, RPC-style timeouts, waits, no-op cancels
// and an init-only timer.
func richTrace() *trace.Buffer {
	b := newTB()
	// Kernel periodic ticker.
	t0 := sim.Duration(0)
	for i := 0; i < 30; i++ {
		b.log(t0, trace.OpSet, 1, 5*sim.Second, "kernel/writeback", 0)
		t0 += 5 * sim.Second
		b.log(t0, trace.OpExpire, 1, 0, "kernel/writeback", 0)
	}
	// User watchdog, endlessly deferred.
	for i := 0; i < 20; i++ {
		b.log(sim.Duration(i)*2*sim.Second, trace.OpSet, 2, 10*sim.Second, "icewm/blank", trace.FlagUser)
	}
	// X-style countdown from 60 s.
	v := 60 * sim.Second
	t0 = 0
	for v > 0 {
		b.log(t0, trace.OpSet, 3, v, "Xorg/select", trace.FlagUser)
		b.log(t0+10*sim.Second, trace.OpCancel, 3, 0, "Xorg/select", trace.FlagUser)
		t0 += 10 * sim.Second
		v -= 10 * sim.Second
	}
	// RPC timeout: set, canceled early, plus a trailing no-op cancel.
	t0 = 0
	for i := 0; i < 15; i++ {
		b.log(t0, trace.OpSet, 4, 30*sim.Second, "rpc/call", trace.FlagUser)
		b.log(t0+130*sim.Millisecond, trace.OpCancel, 4, 0, "rpc/call", trace.FlagUser)
		b.log(t0+140*sim.Millisecond, trace.OpCancel, 4, 0, "rpc/call", trace.FlagUser)
		t0 += 2 * sim.Second
	}
	// A wait loop that always times out.
	t0 = 0
	for i := 0; i < 12; i++ {
		b.log(t0, trace.OpWait, 5, 250*sim.Millisecond, "svc/wait", trace.FlagUser)
		t0 += 250 * sim.Millisecond
		b.log(t0, trace.OpExpire, 5, 0, "svc/wait", trace.FlagUser)
	}
	// Init-only timer: accesses but no uses.
	b.log(0, trace.OpInit, 6, 0, "kernel/idle", 0)
	return b.tr
}

// TestPipelineMatchesIndependentPasses is the drift guard: one Pipeline.Run
// must equal the six independent walks it replaces, field for field.
func TestPipelineMatchesIndependentPasses(t *testing.T) {
	tr := richTrace()
	vPlain := ValueOptions{JiffyBinKernel: true, MinSharePercent: 2}
	vFilt := ValueOptions{
		JiffyBinKernel: true, MinSharePercent: 2,
		CollapseCountdowns: true, ExcludeProcesses: []string{"Xorg", "icewm"},
	}
	vUser := ValueOptions{UserOnly: true, MinSharePercent: 2, CollapseCountdowns: true}
	sOpts := DefaultScatterOptions()
	sOpts.ExcludeProcesses = []string{"Xorg", "icewm"}

	rep, err := Pipeline{
		Values:         vPlain,
		ValuesFiltered: &vFilt,
		ValuesUser:     &vUser,
		Scatter:        &sOpts,
		SeriesProcess:  "Xorg",
		OriginMinSets:  10,
	}.Run(tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	ls := Lifecycles(tr)
	if got, want := rep.Summary, Summarize(tr); got != want {
		t.Fatalf("summary drift: %+v != %+v", got, want)
	}
	if got, want := rep.Shares, ComputeClassShares(ls); got != want {
		t.Fatalf("shares drift: %+v != %+v", got, want)
	}
	check := func(name string, gotE []ValueEntry, gotT int, opts ValueOptions) {
		t.Helper()
		wantE, wantT := CommonValues(ls, opts)
		if gotT != wantT || !reflect.DeepEqual(gotE, wantE) {
			t.Fatalf("%s drift: %+v (%d) != %+v (%d)", name, gotE, gotT, wantE, wantT)
		}
	}
	check("values", rep.Values, rep.ValuesTotal, vPlain)
	check("values-filtered", rep.ValuesFiltered, rep.ValuesFilteredTotal, vFilt)
	check("values-user", rep.ValuesUser, rep.ValuesUserTotal, vUser)
	if want := Scatter(ls, sOpts); !reflect.DeepEqual(rep.Scatter, want) {
		t.Fatalf("scatter drift: %+v != %+v", rep.Scatter, want)
	}
	if want := SetSeries(ls, "Xorg"); !reflect.DeepEqual(rep.Series, want) {
		t.Fatalf("series drift: %+v != %+v", rep.Series, want)
	}
	if want := OriginTable(ls, 10); !reflect.DeepEqual(rep.Origins, want) {
		t.Fatalf("origins drift: %+v != %+v", rep.Origins, want)
	}
}

// TestPipelineSkipsUnrequestedArtifacts checks the nil/zero options leave
// their report fields empty.
func TestPipelineSkipsUnrequestedArtifacts(t *testing.T) {
	rep, err := Pipeline{Values: ValueOptions{MinSharePercent: 2}}.Run(richTrace())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ValuesFiltered != nil || rep.ValuesUser != nil || rep.Scatter != nil ||
		rep.Series != nil || rep.Origins != nil {
		t.Fatalf("unrequested artifacts computed: %+v", rep)
	}
	if len(rep.Values) == 0 || rep.Summary.Accesses == 0 || rep.Shares.Total == 0 {
		t.Fatalf("requested artifacts missing: %+v", rep)
	}
}

// TestSummarizeMatchesUseDerivedTotals cross-checks the raw-record totals
// against sums derived from the reconstructed uses, on a trace with no-op
// cancels in it.
func TestSummarizeMatchesUseDerivedTotals(t *testing.T) {
	tr := richTrace()
	s := Summarize(tr)
	var sets, expires, cancels, ops uint64
	for _, tl := range Lifecycles(tr) {
		ops += uint64(tl.Ops)
		sets += uint64(len(tl.Uses))
		cancels += uint64(tl.NoopCancels)
		expires += uint64(tl.OrphanExpires)
		for _, u := range tl.Uses {
			switch u.End {
			case EndExpired:
				expires++
			case EndCanceled:
				cancels++
			}
		}
	}
	if sets != s.Set || expires != s.Expired || cancels != s.Canceled || ops != s.Accesses {
		t.Fatalf("derived set/expire/cancel/ops = %d/%d/%d/%d, summary = %d/%d/%d/%d",
			sets, expires, cancels, ops, s.Set, s.Expired, s.Canceled, s.Accesses)
	}
}

func TestEndKindString(t *testing.T) {
	for i, want := range []string{"dangling", "expired", "canceled", "reset"} {
		if got := EndKind(i).String(); got != want {
			t.Fatalf("EndKind(%d) = %q, want %q", i, got, want)
		}
	}
	// Out-of-range values must not panic (they used to index past endNames).
	if got := EndKind(99).String(); got != "endkind(99)" {
		t.Fatalf("EndKind(99) = %q", got)
	}
}
