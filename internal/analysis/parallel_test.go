package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// standardPipeline is the full-artifact configuration the worker-sweep tests
// analyze under (the same shape cmd/experiments uses).
func standardPipeline() Pipeline {
	vFilt := ValueOptions{
		JiffyBinKernel: true, MinSharePercent: 2,
		CollapseCountdowns: true, ExcludeProcesses: []string{"Xorg", "icewm"},
	}
	vUser := ValueOptions{UserOnly: true, MinSharePercent: 2, CollapseCountdowns: true}
	sOpts := DefaultScatterOptions()
	sOpts.ExcludeProcesses = []string{"Xorg", "icewm"}
	return Pipeline{
		Values:         ValueOptions{JiffyBinKernel: true, MinSharePercent: 2},
		ValuesFiltered: &vFilt,
		ValuesUser:     &vUser,
		Scatter:        &sOpts,
		SeriesProcess:  "Xorg",
		OriginMinSets:  10,
	}
}

// wideTrace extends richTrace with a many-timer synthetic tail so shards
// actually receive work and chunk boundaries fall mid-lifecycle: 512 timers
// across a few origins, interleaved set/expire/cancel with varied timeouts
// and processes, plus same-instant armings to exercise the series
// tie-break.
func wideTrace() *trace.Buffer {
	b := richTrace()
	origins := []string{"kernel/tcp", "firefox/poll", "Xorg/select", "svc/wait"}
	t0 := sim.Time(0)
	for i := 0; i < 20_000; i++ {
		id := uint64(100 + i%512)
		origin := origins[i%len(origins)]
		var flags trace.Flags
		if i%len(origins) != 0 {
			flags = trace.FlagUser
		}
		timeout := sim.Duration(1+i%3) * 100 * sim.Millisecond
		b.Log(trace.Record{
			T: t0, Op: trace.OpSet, TimerID: id, Timeout: int64(timeout),
			Origin: b.Origin(origin), PID: int32(i % 5), Flags: flags,
		})
		endOp := trace.OpExpire
		if i%3 == 0 {
			endOp = trace.OpCancel
		}
		b.Log(trace.Record{
			T: t0 + sim.Time(timeout), Op: endOp, TimerID: id,
			Origin: b.Origin(origin), PID: int32(i % 5), Flags: flags,
		})
		if i%7 != 0 {
			t0 += sim.Time(10 * sim.Millisecond) // i%7==0 repeats the instant
		}
	}
	return b
}

// spillTrace re-logs a Buffer through a StreamWriter with the given chunk
// size and returns the encoded v2 stream.
func spillTrace(tb testing.TB, b *trace.Buffer, chunkRecords int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	sw := trace.NewStreamWriterSize(&buf, chunkRecords)
	for _, r := range b.Records() {
		r.Origin = sw.Origin(b.OriginName(r.Origin))
		sw.Log(r)
	}
	if err := sw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func reportBytes(tb testing.TB, rep *Report) []byte {
	tb.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// TestRunParallelMatchesRunAcrossWorkers is the determinism pin for the
// parallel pipeline: byte-identical reports from Run and from RunParallel at
// 1, 2, NumCPU and NumCPU×4 workers, over both the in-memory Buffer and a
// v2 stream.
func TestRunParallelMatchesRunAcrossWorkers(t *testing.T) {
	p := standardPipeline()
	b := wideTrace()
	data := spillTrace(t, b, 1024) // dozens of chunks

	serial, err := p.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	// The stream and the buffer must agree before parallelism enters.
	sr, err := trace.NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	streamRep, err := p.Run(sr)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, streamRep); !bytes.Equal(got, want) {
		t.Fatalf("stream serial report differs from buffer report:\n%s\n%s", got, want)
	}

	for _, workers := range []int{1, 2, runtime.NumCPU(), runtime.NumCPU() * 4} {
		t.Run(fmt.Sprintf("buffer/workers=%d", workers), func(t *testing.T) {
			rep, err := p.RunParallel(b, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportBytes(t, rep); !bytes.Equal(got, want) {
				t.Fatalf("parallel report differs from serial:\n%s\n%s", got, want)
			}
		})
		t.Run(fmt.Sprintf("stream/workers=%d", workers), func(t *testing.T) {
			sr, err := trace.NewStreamReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.RunParallel(sr, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportBytes(t, rep); !bytes.Equal(got, want) {
				t.Fatalf("parallel stream report differs from serial:\n%s\n%s", got, want)
			}
		})
	}
}

// TestRunParallelChunkTorture re-runs the sweep over a stream written with
// chunkRecords=3: nearly every record chunk straddles an origin frame, and
// timer lifecycles span many chunks.
func TestRunParallelChunkTorture(t *testing.T) {
	p := standardPipeline()
	b := richTrace()
	data := spillTrace(t, b, 3)

	serial, err := p.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)
	for _, workers := range []int{1, 2, runtime.NumCPU(), runtime.NumCPU() * 4} {
		sr, err := trace.NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.RunParallel(sr, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := reportBytes(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: torture report differs:\n%s\n%s", workers, got, want)
		}
	}
}

// TestRunParallelPropagatesDecodeErrors: a truncated stream must fail, not
// return a partial report.
func TestRunParallelPropagatesDecodeErrors(t *testing.T) {
	data := spillTrace(t, richTrace(), 16)
	sr, err := trace.NewStreamReader(bytes.NewReader(data[:len(data)*2/3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := standardPipeline().RunParallel(sr, 4); err == nil {
		t.Fatal("RunParallel returned a report from a truncated stream")
	}
}

// TestShardRecordZeroAlloc is the AllocsPerRun==0 guard on the Pipeline
// per-record path: once the shard has seen a record mix (timers in the
// arena, histogram bins warm), replaying records allocates nothing.
func TestShardRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	sOpts := DefaultScatterOptions()
	p := Pipeline{
		Values:        ValueOptions{JiffyBinKernel: true, MinSharePercent: 2},
		Scatter:       &sOpts,
		OriginMinSets: 1,
	}
	sh := p.newShard()
	origins := []string{"?", "kernel/writeback", "app/select"}
	recs := make([]trace.Record, 0, 1024)
	t0 := sim.Time(0)
	for i := 0; i < 512; i++ {
		id := uint64(i % 32)
		timeout := sim.Duration(1+i%3) * 250 * sim.Millisecond
		var flags trace.Flags
		if i%2 == 0 {
			flags = trace.FlagUser
		}
		recs = append(recs, trace.Record{
			T: t0, Op: trace.OpSet, TimerID: id, Timeout: int64(timeout),
			Origin: uint32(1 + i%2), PID: int32(i % 3), Flags: flags,
		})
		t0 += sim.Time(50 * sim.Millisecond)
		endOp := trace.OpExpire
		if i%4 == 0 {
			endOp = trace.OpCancel
		}
		recs = append(recs, trace.Record{
			T: t0, Op: endOp, TimerID: id, Origin: uint32(1 + i%2), PID: int32(i % 3), Flags: flags,
		})
	}
	// Warm-up: arena blocks, byID, cluster set and histogram bins all exist
	// after one pass; the steady state must then be allocation-free.
	for _, r := range recs {
		sh.record(r, origins, nil)
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, r := range recs {
			sh.record(r, origins, nil)
		}
	})
	if avg != 0 {
		t.Fatalf("shard.record allocated %.2f per replay in steady state, want 0", avg)
	}
}
