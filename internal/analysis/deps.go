package analysis

import (
	"sort"

	"timerstudy/internal/sim"
)

// Section 5.2 asks for "inferring, or allowing programmers to explicitly
// declare, such relationships between timers". The core library implements
// declaration; this file implements inference: mining a trace for timer
// pairs whose operations are systematically coupled.
//
// Two relation kinds are detectable from operation timing alone:
//
//   - dependency (t2 depends upon t1): t2 is set within a small window
//     after t1 ends (expiry or cancelation), consistently — retry chains,
//     stage-after-stage protocol timers;
//   - overlap: t1 and t2 are set together and end together, consistently —
//     multiple guards watching the same activity (the paper's case 1c,
//     e.g. TCP keepalive vs retransmission), which a redesigned facility
//     could collapse into fewer registrations.

// RelationKind classifies an inferred relation.
type RelationKind uint8

const (
	// RelDependsOn: To is set when From ends.
	RelDependsOn RelationKind = iota
	// RelOverlaps: From and To are set and ended together.
	RelOverlaps
)

var relNames = [...]string{"depends-on", "overlaps"}

// String returns the relation name.
func (k RelationKind) String() string { return relNames[k] }

// InferredRelation is one mined relationship between two timers.
type InferredRelation struct {
	// From and To are the related timers (To depends on From, or the two
	// overlap).
	From, To *TimerLife
	// Kind classifies the relation.
	Kind RelationKind
	// Support counts matched occurrences.
	Support int
	// Confidence is matched occurrences over opportunities (0..1).
	Confidence float64
}

// InferOptions tunes the mining.
type InferOptions struct {
	// Window is the co-occurrence window (default 10 ms).
	Window sim.Duration
	// MinSupport is the minimum matched occurrences (default 5).
	MinSupport int
	// MinConfidence is the minimum match ratio (default 0.7).
	MinConfidence float64
	// MaxTimers caps the pairs considered, taking the most-used timers
	// (default 128; inference is O(T² log E)).
	MaxTimers int
}

func (o *InferOptions) defaults() {
	if o.Window <= 0 {
		o.Window = 10 * sim.Millisecond
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 5
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.7
	}
	if o.MaxTimers <= 0 {
		o.MaxTimers = 128
	}
}

// timerEvents caches a timer's sorted operation instants.
type timerEvents struct {
	tl   *TimerLife
	sets []sim.Time
	ends []sim.Time // expiries and cancels (not re-sets)
}

func eventsOf(tl *TimerLife) timerEvents {
	ev := timerEvents{tl: tl}
	for _, u := range tl.Uses {
		ev.sets = append(ev.sets, u.SetAt)
		if u.End == EndExpired || u.End == EndCanceled {
			ev.ends = append(ev.ends, u.EndAt)
		}
	}
	return ev
}

// countNear returns how many instants in `times` fall within [t, t+w]
// (forward) or [t-w, t+w] (bidirectional).
func countMatches(anchors, times []sim.Time, w sim.Duration, bidirectional bool) int {
	matches := 0
	for _, a := range anchors {
		lo := a
		if bidirectional {
			lo = a.Add(-w)
		}
		hi := a.Add(w)
		i := sort.Search(len(times), func(i int) bool { return times[i] >= lo })
		if i < len(times) && times[i] <= hi {
			matches++
		}
	}
	return matches
}

// InferRelations mines the lifecycles for coupled timer pairs.
func InferRelations(ls []*TimerLife, opts InferOptions) []InferredRelation {
	opts.defaults()
	// Take the most-used timers with at least a handful of uses.
	cand := make([]*TimerLife, 0, len(ls))
	for _, tl := range ls {
		if len(tl.Uses) >= opts.MinSupport {
			cand = append(cand, tl)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if len(cand[i].Uses) != len(cand[j].Uses) {
			return len(cand[i].Uses) > len(cand[j].Uses)
		}
		return cand[i].ID < cand[j].ID
	})
	if len(cand) > opts.MaxTimers {
		cand = cand[:opts.MaxTimers]
	}
	evs := make([]timerEvents, len(cand))
	for i, tl := range cand {
		evs[i] = eventsOf(tl)
	}

	var out []InferredRelation
	for i := range evs {
		for j := range evs {
			if i == j {
				continue
			}
			a, b := evs[i], evs[j]
			// Dependency: b.sets follow a.ends.
			if len(a.ends) >= opts.MinSupport && len(b.sets) > 0 {
				m := countMatches(a.ends, b.sets, opts.Window, false)
				conf := float64(m) / float64(len(a.ends))
				explained := float64(m) / float64(len(b.sets))
				if m >= opts.MinSupport && conf >= opts.MinConfidence && explained >= 0.5 {
					out = append(out, InferredRelation{
						From: a.tl, To: b.tl, Kind: RelDependsOn,
						Support: m, Confidence: conf,
					})
				}
			}
			// Overlap (i<j once): sets co-occur and ends co-occur.
			if i < j && len(a.sets) >= opts.MinSupport && len(b.sets) >= opts.MinSupport {
				ms := countMatches(a.sets, b.sets, opts.Window, true)
				me := countMatches(a.ends, b.ends, opts.Window, true)
				confS := float64(ms) / float64(len(a.sets))
				confE := 1.0
				if len(a.ends) > 0 {
					confE = float64(me) / float64(len(a.ends))
				}
				if ms >= opts.MinSupport && confS >= opts.MinConfidence && confE >= opts.MinConfidence {
					conf := confS
					if confE < conf {
						conf = confE
					}
					out = append(out, InferredRelation{
						From: a.tl, To: b.tl, Kind: RelOverlaps,
						Support: ms, Confidence: conf,
					})
				}
			}
		}
	}
	// Suppress overlap pairs that are better explained as dependencies
	// (a dependency at window scale also co-occurs).
	dep := map[[2]uint64]bool{}
	for _, r := range out {
		if r.Kind == RelDependsOn {
			dep[[2]uint64{r.From.ID, r.To.ID}] = true
		}
	}
	filtered := out[:0]
	for _, r := range out {
		if r.Kind == RelOverlaps &&
			(dep[[2]uint64{r.From.ID, r.To.ID}] || dep[[2]uint64{r.To.ID, r.From.ID}]) {
			continue
		}
		filtered = append(filtered, r)
	}
	sort.Slice(filtered, func(i, j int) bool {
		if filtered[i].Support != filtered[j].Support {
			return filtered[i].Support > filtered[j].Support
		}
		if filtered[i].From.ID != filtered[j].From.ID {
			return filtered[i].From.ID < filtered[j].From.ID
		}
		return filtered[i].To.ID < filtered[j].To.ID
	})
	return filtered
}
