package analysis

import (
	"strings"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// The renderers are fed from arbitrary traces (including truncated or
// synthetic ones), so the degenerate shapes — nothing recorded, a single
// event, zero-valued timeouts — must render rather than panic.

func TestRenderScatterEmpty(t *testing.T) {
	if got := RenderScatter(nil); got != "(no points)\n" {
		t.Fatalf("RenderScatter(nil) = %q", got)
	}
}

func TestRenderScatterZeroTimeout(t *testing.T) {
	// A zero (or negative) timeout has no log-scale column; it must be
	// skipped, not passed to math.Log10.
	out := RenderScatter([]ScatterPoint{
		{Timeout: 0, RatioPct: 50, Count: 5},
		{Timeout: -sim.Second, RatioPct: 50, Count: 5},
	})
	for _, line := range strings.Split(out, "\n") {
		_, cells, ok := strings.Cut(line, "|")
		if ok && strings.TrimSpace(cells) != "" {
			t.Fatalf("zero/negative timeouts should plot nothing, got:\n%s", out)
		}
	}
}

func TestRenderScatterSinglePoint(t *testing.T) {
	out := RenderScatter([]ScatterPoint{{Timeout: sim.Second, RatioPct: 100, Count: 1}})
	if !strings.Contains(out, ".") {
		t.Fatalf("single point should produce one density glyph, got:\n%s", out)
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	if got := RenderSeries(nil, 0); got != "(no points)\n" {
		t.Fatalf("RenderSeries(nil, 0) = %q", got)
	}
}

func TestRenderSeriesZeroDuration(t *testing.T) {
	// A single event at t=0 over a zero-length window used to divide by
	// zero; it must render the lone column instead.
	out := RenderSeries([]SeriesPoint{{T: 0, V: sim.Second}}, 0)
	if !strings.Contains(out, "*") {
		t.Fatalf("expected the single point to render, got:\n%s", out)
	}
}

func TestRenderSeriesSinglePointZeroValue(t *testing.T) {
	// Value zero exercises the maxV==0 fallback.
	out := RenderSeries([]SeriesPoint{{T: 0, V: 0}}, sim.Second)
	if !strings.Contains(out, "*") {
		t.Fatalf("expected the single zero-value point to render, got:\n%s", out)
	}
}

func TestRenderValuesEmpty(t *testing.T) {
	out := RenderValues(nil)
	if !strings.Contains(out, "timeout[s]") || strings.Count(out, "\n") != 1 {
		t.Fatalf("empty histogram should be header-only, got:\n%s", out)
	}
}

func TestSummarizeEmptyTrace(t *testing.T) {
	s := Summarize(trace.NewBuffer(16))
	if s.Accesses != 0 || s.Timers != 0 {
		t.Fatalf("empty trace summary = %+v", s)
	}
	out := RenderSummaryTable("empty", []string{"w"}, []Summary{s})
	if !strings.Contains(out, "Accesses") {
		t.Fatalf("summary table missing rows:\n%s", out)
	}
}
