package analysis

import (
	"math"
	"sort"

	"timerstudy/internal/sim"
)

// ScatterPoint is one aggregated circle of Figures 8-11: a timeout value, a
// ratio of elapsed-to-requested time, and how many uses landed there. The
// figures cut off above 250 %.
type ScatterPoint struct {
	// Timeout is the requested value (bin representative).
	Timeout sim.Duration
	// RatioPct is elapsed/requested in percent (bin representative).
	RatioPct float64
	// Count aggregates uses in the bin.
	Count int
	// Expired is how many of them expired (the rest were canceled).
	Expired int
}

// ScatterOptions controls aggregation.
type ScatterOptions struct {
	// ExcludeProcesses filters origins as in ValueOptions (the paper
	// filters X and icewm from the Linux figures).
	ExcludeProcesses []string
	// CutoffPct drops points above this ratio (paper: 250).
	CutoffPct float64
	// LogBinsPerDecade sets x-axis resolution (default 5).
	LogBinsPerDecade int
	// RatioBinPct sets y-axis resolution in percent (default 10).
	RatioBinPct float64
}

// DefaultScatterOptions mirror the paper's figures.
func DefaultScatterOptions() ScatterOptions {
	return ScatterOptions{CutoffPct: 250, LogBinsPerDecade: 5, RatioBinPct: 10}
}

type scatterKey struct {
	x int
	y int
}

// scatterAcc aggregates completed uses into (timeout, ratio) bins; it is the
// single implementation behind Scatter and the pipeline.
type scatterAcc struct {
	opts ScatterOptions
	vo   ValueOptions
	bins *logBinner
	agg  map[scatterKey]*ScatterPoint
}

func newScatterAcc(opts ScatterOptions) *scatterAcc {
	if opts.CutoffPct == 0 {
		opts.CutoffPct = 250
	}
	if opts.LogBinsPerDecade == 0 {
		opts.LogBinsPerDecade = 5
	}
	if opts.RatioBinPct == 0 {
		opts.RatioBinPct = 10
	}
	return &scatterAcc{
		opts: opts,
		vo:   ValueOptions{ExcludeProcesses: opts.ExcludeProcesses},
		bins: newLogBinner(opts.LogBinsPerDecade),
		agg:  make(map[scatterKey]*ScatterPoint),
	}
}

func (a *scatterAcc) observe(tl *TimerLife) {
	if a.vo.excluded(tl) {
		return
	}
	for _, u := range tl.Uses {
		a.addUse(u)
	}
}

// addUse bins one completed use; the streaming pipeline calls it as uses
// close (after applying the process exclusion itself).
func (a *scatterAcc) addUse(u Use) {
	ratio, ok := u.Ratio()
	if !ok {
		return
	}
	pct := ratio * 100
	if pct > a.opts.CutoffPct {
		return
	}
	// Integer log-binning: table-driven, byte-identical to the old
	// per-record Log10 computation (see logBinner).
	xb := a.bins.bin(int64(u.Timeout))
	yb := int(math.Floor(pct / a.opts.RatioBinPct))
	k := scatterKey{xb, yb}
	p, okk := a.agg[k]
	if !okk {
		p = &ScatterPoint{
			Timeout:  sim.DurationOfSeconds(math.Pow(10, float64(xb)/float64(a.opts.LogBinsPerDecade))),
			RatioPct: float64(yb) * a.opts.RatioBinPct,
		}
		a.agg[k] = p
	}
	p.Count++
	if u.End == EndExpired {
		p.Expired++
	}
}

// merge folds another accumulator over the same options into a; bins add
// commutatively, and equal keys carry equal representatives, so shard merge
// order cannot influence the result.
func (a *scatterAcc) merge(o *scatterAcc) {
	for k, op := range o.agg {
		p, ok := a.agg[k]
		if !ok {
			cp := *op
			a.agg[k] = &cp
			continue
		}
		p.Count += op.Count
		p.Expired += op.Expired
	}
}

// clone returns an independent deep copy; the binning table is immutable
// and shared.
func (a *scatterAcc) clone() *scatterAcc {
	c := &scatterAcc{opts: a.opts, vo: a.vo, bins: a.bins, agg: make(map[scatterKey]*ScatterPoint, len(a.agg))}
	for k, p := range a.agg {
		cp := *p
		c.agg[k] = &cp
	}
	return c
}

func (a *scatterAcc) finish() []ScatterPoint {
	out := make([]ScatterPoint, 0, len(a.agg))
	for _, p := range a.agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Timeout != out[j].Timeout {
			return out[i].Timeout < out[j].Timeout
		}
		return out[i].RatioPct < out[j].RatioPct
	})
	return out
}

// Scatter aggregates every completed use into (timeout, ratio) bins.
// Timers set to expire immediately or in the past are not plotted, as in
// the paper.
func Scatter(ls []*TimerLife, opts ScatterOptions) []ScatterPoint {
	a := newScatterAcc(opts)
	for _, tl := range ls {
		a.observe(tl)
	}
	return a.finish()
}
