package analysis

import (
	"sync"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Incremental analysis. A Partial is a pipeline shard that is fed chunks as
// they arrive — from a live ingest connection, a file replayed piecewise,
// or any other incremental source — instead of in one Run. At any moment a
// set of Partials can be snapshotted and merged into a finished Report
// without disturbing their live state, so a trace service can answer
// queries mid-stream and keep folding records afterwards.
//
// Determinism contract: MergePartials over Partials fed one stream each is
// byte-identical to a single Run over the concatenation of those streams
// (in the same order), provided timer identities do not collide across
// streams. Everything the fold produces is either per-timer (and a timer
// lives entirely inside one Partial), commutative-additive, or canonically
// sorted at finish — the same argument as RunParallel's — except
// Summary.Concurrency, which MergePartials reconstructs exactly: when
// stream i's records play after streams 0..i-1 ended, every timer those
// streams left open stays open forever, so the running pending count
// during stream i is (sum of earlier streams' still-open timers) + stream
// i's own count, and the global maximum is
//
//	max_i( Σ_{j<i} openEnd_j + maxOpen_i )
//
// which needs only each Partial's final open count and high-water mark.
type Partial struct {
	mu sync.Mutex
	sh *shard
	// records counts the trace records fed, for observability; it is not
	// part of the report.
	records uint64
}

// NewPartial returns an empty Partial folding with this pipeline's
// configuration. Partials merged together must come from the same
// configuration.
func (p Pipeline) NewPartial() *Partial {
	return &Partial{sh: p.newShard()}
}

// AddChunk folds one chunk of records. Chunks from one stream must arrive
// in stream order; AddChunk is safe to call from any goroutine (calls
// serialize on an internal lock).
func (pa *Partial) AddChunk(c trace.Chunk) {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	for _, r := range c.Records {
		pa.sh.record(r, c.Origins, nil)
	}
	pa.records += uint64(len(c.Records))
}

// AddSource folds a whole Source, chunk-at-a-time when the source supports
// it. The error is the source's (decode or IO failure).
func (pa *Partial) AddSource(src trace.Source) error {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	if cs, ok := src.(trace.ChunkedSource); ok {
		return cs.ForEachChunk(1, func(c trace.Chunk) error {
			for _, r := range c.Records {
				pa.sh.record(r, c.Origins, nil)
			}
			pa.records += uint64(len(c.Records))
			return nil
		})
	}
	return src.ForEach(func(r trace.Record) {
		pa.sh.record(r, nil, src)
		pa.records++
	})
}

// Records returns how many trace records this Partial has folded.
func (pa *Partial) Records() uint64 {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	return pa.records
}

// snapshot clones the live shard under the lock. The clone is deep: the
// caller may fold and merge it while the Partial keeps accumulating.
func (pa *Partial) snapshot() *shard {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	return pa.sh.clone()
}

// MergePartials snapshots every Partial and merges the clones into a
// finished Report, leaving the live state untouched. Partials must all come
// from this pipeline configuration and are merged in slice order — the
// order that defines the equivalent concatenated stream.
func (p Pipeline) MergePartials(parts []*Partial) *Report {
	if len(parts) == 0 {
		sh := p.newShard()
		sh.fold()
		return p.report([]*shard{sh}, 0)
	}
	shards := make([]*shard, len(parts))
	concurrency, carried := 0, 0
	for i, pa := range parts {
		sh := pa.snapshot()
		sh.fold()
		if c := carried + sh.maxOpen; c > concurrency {
			concurrency = c
		}
		carried += sh.openCount
		shards[i] = sh
	}
	return p.report(shards, concurrency)
}

// clone deep-copies a shard mid-fold: arena blocks (including each timer's
// spilled timeout histogram), the identity map, every accumulator, and the
// additive tallies. Fold-time state (pending uses, open flags) copies too,
// so the clone can be folded — which mutates it — while the original keeps
// streaming.
func (s *shard) clone() *shard {
	c := &shard{
		cfg:           s.cfg,
		seriesProcess: s.seriesProcess,
		sum:           s.sum,
		end:           s.end,
		shares:        s.shares,
		nTimers:       s.nTimers,
		openCount:     s.openCount,
		maxOpen:       s.maxOpen,
	}
	c.values = s.values.clone()
	c.vaccs = append(c.vaccs, c.values)
	if s.valuesF != nil {
		c.valuesF = s.valuesF.clone()
		c.vaccs = append(c.vaccs, c.valuesF)
	}
	if s.valuesU != nil {
		c.valuesU = s.valuesU.clone()
		c.vaccs = append(c.vaccs, c.valuesU)
	}
	if s.scatter != nil {
		c.scatter = s.scatter.clone()
	}
	if s.origins != nil {
		c.origins = s.origins.clone()
	}
	c.pts = append([]SeriesPoint(nil), s.pts...)
	c.clusters = make(map[cluster]bool, len(s.clusters))
	for k := range s.clusters {
		c.clusters[k] = true
	}
	c.byID = make(map[uint64]int32, len(s.byID))
	for id, idx := range s.byID {
		c.byID[id] = idx
	}
	c.blocks = make([][]streamTimer, len(s.blocks))
	for i, blk := range s.blocks {
		nb := make([]streamTimer, len(blk))
		copy(nb, blk)
		for j := range nb {
			if m := nb[j].tvMore; m != nil {
				nm := make(map[sim.Duration]int, len(m))
				for v, n := range m {
					nm[v] = n
				}
				nb[j].tvMore = nm
			}
		}
		c.blocks[i] = nb
	}
	return c
}
