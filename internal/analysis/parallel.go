package analysis

import (
	"runtime"
	"sync"

	"timerstudy/internal/trace"
)

// Parallel analysis. RunParallel splits the pipeline three ways:
//
//   - chunk decode fans out inside trace.ForEachChunk (frames are still
//     read in file order, so the origin table grows deterministically);
//   - the router (the ForEachChunk callback, on the calling goroutine)
//     partitions each chunk's records by hashed TimerID into per-shard
//     batches, preserving record order within every shard;
//   - each shard worker folds its batches with the exact serial shard code.
//
// Determinism at any worker count follows from three facts. First, a
// timer's whole record sequence lands in one shard in stream order, so
// every per-timer fold (lifecycle state machine, countdown chains,
// classification) sees exactly what the serial pass sees. Second, all
// cross-timer accumulation is commutative-additive (sums, maxima, set
// union, histogram bins) and every finished slice sorts by a total order of
// its own values — never by arrival order. Third, the one summary that
// genuinely needs the global record order, Summary.Concurrency (the max of
// simultaneously pending timers), is tracked by the router itself, which is
// the only place that still sees every record in stream order.

// shardBatch is one chunk's worth of records for one shard, with the origin
// snapshot of the chunk they came from.
type shardBatch struct {
	recs    []trace.Record
	origins []string
}

// hashTimerID mixes timer identities (a splitmix64-style finalizer) before
// the shard modulus so strided ID patterns still spread evenly.
func hashTimerID(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// openTracker mirrors the shard open/close transitions over the global
// record order to compute Summary.Concurrency exactly: a Set/Wait on a
// closed timer opens it, Cancel/Expire on an open timer closes it, and the
// running count's maximum is the answer.
type openTracker struct {
	open     map[uint64]bool
	cur, max int
}

func (c *openTracker) observe(r trace.Record) {
	switch r.Op {
	case trace.OpSet, trace.OpWait:
		if !c.open[r.TimerID] {
			c.open[r.TimerID] = true
			c.cur++
			if c.cur > c.max {
				c.max = c.cur
			}
		}
	case trace.OpCancel, trace.OpExpire:
		if c.open[r.TimerID] {
			c.open[r.TimerID] = false
			c.cur--
		}
	}
}

// RunParallel executes the pipeline like Run but decodes and analyzes on up
// to workers goroutines, producing a Report identical to Run's at any
// worker count. workers < 1 means GOMAXPROCS. Sources without chunked
// access (anything but Buffer and StreamReader) analyze serially.
func (p Pipeline) RunParallel(src trace.Source, workers int) (*Report, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	cs, ok := src.(trace.ChunkedSource)
	if !ok || workers == 1 {
		return p.Run(src)
	}

	shards := make([]*shard, workers)
	chans := make([]chan shardBatch, workers)
	var wg sync.WaitGroup
	var batchPool sync.Pool
	for i := range shards {
		shards[i] = p.newShard()
		chans[i] = make(chan shardBatch, 4)
		wg.Add(1)
		go func(s *shard, ch <-chan shardBatch) {
			defer wg.Done()
			for b := range ch {
				for _, r := range b.recs {
					s.record(r, b.origins, nil)
				}
				batchPool.Put(b.recs[:0])
			}
			s.fold()
		}(shards[i], chans[i])
	}

	tracker := openTracker{open: make(map[uint64]bool)}
	batches := make([][]trace.Record, workers)
	err := cs.ForEachChunk(workers, func(c trace.Chunk) error {
		for w := range batches {
			if v := batchPool.Get(); v != nil {
				batches[w] = v.([]trace.Record)[:0]
			} else {
				batches[w] = nil
			}
		}
		for _, r := range c.Records {
			w := int(hashTimerID(r.TimerID) % uint64(workers))
			batches[w] = append(batches[w], r)
			tracker.observe(r)
		}
		// Records are copied out of the chunk above, so recycling the chunk
		// when this callback returns is safe; batch ownership passes to the
		// shard, which recycles it through batchPool.
		for w, b := range batches {
			if len(b) == 0 {
				if cap(b) > 0 {
					batchPool.Put(b)
				}
				continue
			}
			batches[w] = nil
			chans[w] <- shardBatch{recs: b, origins: c.Origins}
		}
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return p.report(shards, tracker.max), nil
}
