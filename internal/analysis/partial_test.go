package analysis

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"timerstudy/internal/trace"
)

// buildPartialStreams cuts wideTrace into nstreams per-producer streams with
// namespaced timer identities (as distinct hosts would produce), plus the
// origin table chunks reference. The oracle for any feeding state is a
// single Pipeline.Run over the streams' prefixes concatenated in stream
// order — exactly the offline-equivalence contract MergePartials documents.
func buildPartialStreams(tb testing.TB, nstreams int) (Pipeline, [][]trace.Record, []string) {
	tb.Helper()
	p := standardPipeline()
	b := wideTrace()
	recs := b.Records()
	var maxOrigin uint32
	for _, r := range recs {
		if r.Origin > maxOrigin {
			maxOrigin = r.Origin
		}
	}
	origins := make([]string, maxOrigin+1)
	for i := range origins {
		origins[i] = b.OriginName(uint32(i))
	}
	streams := make([][]trace.Record, nstreams)
	per := len(recs) / nstreams
	for s := 0; s < nstreams; s++ {
		lo, hi := s*per, (s+1)*per
		if s == nstreams-1 {
			hi = len(recs)
		}
		part := make([]trace.Record, hi-lo)
		copy(part, recs[lo:hi])
		for i := range part {
			part[i].TimerID |= uint64(s+1) << 48
		}
		streams[s] = part
	}
	return p, streams, origins
}

// oracleReport runs the plain single-shard pipeline over the concatenation
// of each stream's first prefix[s] records, re-interning origins the way a
// fresh Buffer would.
func oracleReport(tb testing.TB, p Pipeline, streams [][]trace.Record, origins []string, prefix []int) []byte {
	tb.Helper()
	total := 0
	for _, n := range prefix {
		total += n
	}
	b := trace.NewBuffer(total)
	for s, recs := range streams {
		for _, r := range recs[:prefix[s]] {
			r.Origin = b.Origin(origins[r.Origin])
			b.Log(r)
		}
	}
	rep, err := p.Run(b)
	if err != nil {
		tb.Fatal(err)
	}
	return reportBytes(tb, rep)
}

// TestPartialMergeMatchesRunInterleaved feeds three streams into three
// Partials in seeded-random interleavings with random chunk boundaries,
// snapshotting mid-feed: every MergePartials — intermediate or final — must
// be byte-identical to a single Run over the equivalent concatenated
// prefix, and snapshots must not disturb the live fold.
func TestPartialMergeMatchesRunInterleaved(t *testing.T) {
	const nstreams = 3
	p, streams, origins := buildPartialStreams(t, nstreams)
	full := make([]int, nstreams)
	for s := range streams {
		full[s] = len(streams[s])
	}
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			parts := make([]*Partial, nstreams)
			pos := make([]int, nstreams)
			for s := range parts {
				parts[s] = p.NewPartial()
			}
			checked := 0
			for {
				var live []int
				for s := range streams {
					if pos[s] < len(streams[s]) {
						live = append(live, s)
					}
				}
				if len(live) == 0 {
					break
				}
				s := live[rng.Intn(len(live))]
				end := min(pos[s]+1+rng.Intn(500), len(streams[s]))
				parts[s].AddChunk(trace.Chunk{Records: streams[s][pos[s]:end], Origins: origins})
				pos[s] = end
				if rng.Intn(16) == 0 && checked < 4 {
					checked++
					got := reportBytes(t, p.MergePartials(parts))
					want := oracleReport(t, p, streams, origins, pos)
					if !bytes.Equal(got, want) {
						t.Fatalf("mid-feed merge at %v differs from oracle Run:\n%s\n%s", pos, got, want)
					}
				}
			}
			got := reportBytes(t, p.MergePartials(parts))
			want := oracleReport(t, p, streams, origins, full)
			if !bytes.Equal(got, want) {
				t.Fatalf("final merge differs from oracle Run:\n%s\n%s", got, want)
			}
		})
	}
}

// TestPartialAddSourceStreamMatchesRun pins the same equivalence with each
// Partial fed from a v2 StreamReader (the ingest path's source shape)
// rather than raw chunks, at a chunk size that straddles frames.
func TestPartialAddSourceStreamMatchesRun(t *testing.T) {
	const nstreams = 3
	p, streams, origins := buildPartialStreams(t, nstreams)
	parts := make([]*Partial, nstreams)
	full := make([]int, nstreams)
	for s, recs := range streams {
		full[s] = len(recs)
		var buf bytes.Buffer
		sw := trace.NewStreamWriterSize(&buf, 777)
		for _, r := range recs {
			r.Origin = sw.Origin(origins[r.Origin])
			sw.Log(r)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		sr, err := trace.NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		parts[s] = p.NewPartial()
		if err := parts[s].AddSource(sr); err != nil {
			t.Fatal(err)
		}
	}
	got := reportBytes(t, p.MergePartials(parts))
	want := oracleReport(t, p, streams, origins, full)
	if !bytes.Equal(got, want) {
		t.Fatalf("stream-fed merge differs from oracle Run:\n%s\n%s", got, want)
	}
}

// TestPartialConcurrentFeedAndSnapshot feeds each stream from its own
// goroutine while another hammers MergePartials. Under -race this audits
// the snapshot locking; the final merged report must still equal the
// oracle, since per-stream order is preserved no matter how feeds
// interleave across streams.
func TestPartialConcurrentFeedAndSnapshot(t *testing.T) {
	const nstreams = 3
	p, streams, origins := buildPartialStreams(t, nstreams)
	parts := make([]*Partial, nstreams)
	full := make([]int, nstreams)
	for s := range parts {
		parts[s] = p.NewPartial()
		full[s] = len(streams[s])
	}
	var wg sync.WaitGroup
	for s := range streams {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			recs := streams[s]
			for lo := 0; lo < len(recs); lo += 512 {
				hi := min(lo+512, len(recs))
				parts[s].AddChunk(trace.Chunk{Records: recs[lo:hi], Origins: origins})
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			_ = p.MergePartials(parts)
		}
	}()
	wg.Wait()
	got := reportBytes(t, p.MergePartials(parts))
	want := oracleReport(t, p, streams, origins, full)
	if !bytes.Equal(got, want) {
		t.Fatalf("concurrent-fed merge differs from oracle Run:\n%s\n%s", got, want)
	}
}
