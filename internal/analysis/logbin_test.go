package analysis

import (
	"math"
	"math/rand"
	"testing"

	"timerstudy/internal/sim"
)

// TestLogBinnerMatchesFloat is the golden equivalence proof: the integer
// binner agrees with the original float expression
// floor(Log10(timeout.Seconds()) * binsPerDecade) on every probed value —
// dense low values, every boundary neighborhood, decade edges, random
// values across the full range, and the extremes.
func TestLogBinnerMatchesFloat(t *testing.T) {
	for _, b := range []int{1, 3, 5, 10} {
		lb := newLogBinner(b)
		check := func(v int64) {
			t.Helper()
			if got, want := lb.bin(v), floatBin(v, b); got != want {
				t.Fatalf("binsPerDecade=%d v=%dns: integer bin %d, float bin %d", b, v, got, want)
			}
		}
		// Dense sweep over the small end, where float rounding is at its
		// quirkiest relative to bin width.
		for v := int64(1); v <= 1_000_000; v += 7 {
			check(v)
		}
		// Every table boundary and its neighborhood.
		for _, bound := range lb.bounds {
			for dv := int64(-2); dv <= 2; dv++ {
				if v := bound + dv; v >= 1 {
					check(v)
				}
			}
		}
		// Exact powers of ten and their neighbors (the paper's axis marks),
		// including the 1 ms value whose Log10 famously rounds down.
		for p := int64(1); p <= 1e18 && p > 0; p *= 10 {
			for dv := int64(-1); dv <= 1; dv++ {
				if v := p + dv; v >= 1 {
					check(v)
				}
			}
		}
		// Random values across the full magnitude range.
		rng := rand.New(rand.NewSource(int64(b)))
		for i := 0; i < 200_000; i++ {
			mag := rng.Intn(63)
			v := int64(1)<<mag | rng.Int63n(int64(1)<<mag)
			check(v)
		}
		check(math.MaxInt64)
	}
}

// TestLogBinnerTableShape sanity-checks the table the golden sweep relies
// on: boundaries strictly increase from 1, the decade index always starts
// the scan at or before the right bin, and Table 3's human-scale values
// land where the figures put them.
func TestLogBinnerTableShape(t *testing.T) {
	lb := newLogBinner(5)
	if lb.bounds[0] != 1 {
		t.Fatalf("bounds[0] = %d, want 1", lb.bounds[0])
	}
	for i := 1; i < len(lb.bounds); i++ {
		if lb.bounds[i] <= lb.bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, lb.bounds[i], lb.bounds[i-1])
		}
	}
	// 1 s sits exactly on the decade mark: bin 0. 30 s (the title value)
	// sits in the bin covering 10^1.4..10^1.6 s: bin 7.
	if got := lb.bin(int64(sim.Second)); got != 0 {
		t.Fatalf("1s bin = %d, want 0", got)
	}
	if got := lb.bin(int64(30 * sim.Second)); got != 7 {
		t.Fatalf("30s bin = %d, want 7", got)
	}
}

// BenchmarkScatterBin compares the integer path against the float oracle.
func BenchmarkScatterBin(b *testing.B) {
	vals := make([]int64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		mag := rng.Intn(40)
		vals[i] = int64(1)<<mag | rng.Int63n(int64(1)<<mag)
	}
	b.Run("integer", func(b *testing.B) {
		lb := newLogBinner(5)
		for i := 0; i < b.N; i++ {
			_ = lb.bin(vals[i&1023])
		}
	})
	b.Run("float", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = floatBin(vals[i&1023], 5)
		}
	})
}
