package analysis

import (
	"sort"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Pipeline computes every per-workload artifact of the paper's evaluation in
// a single streaming pass over a trace.Source: the Table 1/2 summary, class
// shares (Figure 2), up to three value histograms (Figures 3, 5, 6, 7), the
// expiry/cancelation scatter (Figures 8-11), the per-process set series
// (Figure 4), and the origin table (Table 3). Memory is bounded by the
// number of distinct timer identities (each contributes a fixed-size
// accumulator) plus the size of the report itself — never by trace length —
// so a StreamReader over a file larger than RAM analyses in constant memory.
//
// The per-use folds reuse the same accumulators behind CommonValues,
// Scatter, SetSeries, ComputeClassShares and OriginTable, and the fold
// points are chosen so a pipeline run is byte-for-byte equivalent to
// reconstructing full lifecycles and calling those functions independently.
// The one assumption the streaming fold adds is that a timer's user flag
// and origin are constant across its records (true of every facility in
// this repo; crosscheck tests verify it on real workload traces).
type Pipeline struct {
	// Values configures the headline histogram (Figures 3 and 7).
	Values ValueOptions
	// ValuesFiltered, if non-nil, adds the Figure 5 histogram (typically
	// X/icewm filtered with countdowns collapsed).
	ValuesFiltered *ValueOptions
	// ValuesUser, if non-nil, adds the Figure 6 histogram (user-space only).
	ValuesUser *ValueOptions
	// Scatter, if non-nil, adds the Figures 8-11 aggregation.
	Scatter *ScatterOptions
	// SeriesProcess, if non-empty, adds the Figure 4 set series for that
	// process.
	SeriesProcess string
	// OriginMinSets, if positive, adds the Table 3 origin rows with that
	// minimum set count.
	OriginMinSets int
}

// Report is everything one Pipeline run produced.
type Report struct {
	// Summary is the Table 1/2 column, counted over the raw record stream.
	Summary Summary
	// End is the largest record timestamp seen (zero for an empty trace).
	End sim.Time
	// Shares is the Figure 2 usage-pattern tally.
	Shares ClassShares
	// Values/ValuesFiltered/ValuesUser are the requested histograms with
	// their total (pre-threshold) sample counts.
	Values              []ValueEntry
	ValuesTotal         int
	ValuesFiltered      []ValueEntry
	ValuesFilteredTotal int
	ValuesUser          []ValueEntry
	ValuesUserTotal     int
	// Scatter is the Figures 8-11 aggregation (nil unless requested).
	Scatter []ScatterPoint
	// Series is the Figure 4 set series (nil unless requested).
	Series []SeriesPoint
	// Origins is the Table 3 listing (nil unless requested).
	Origins []OriginRow
}

// streamTimer is the bounded per-timer state the streaming pass keeps in
// place of a full TimerLife: classification tallies, the open use, the
// previous closed use (for immediate-reset pairing) and the one pending use
// whose countdown-chain membership the next arming decides. Everything else
// folds into the shared accumulators as uses open and close.
type streamTimer struct {
	originName string
	user       bool

	// The currently armed use, if any.
	open    bool
	openUse Use
	// candImmediate marks an open use whose arming followed the previous
	// use's expiry within the jitter tolerance; it counts toward the
	// periodic signature only if this use closes (matching Classify's
	// truncated-slice semantics).
	candImmediate bool

	// Previous closed use, for the expiry→re-set pairing.
	hasPrev   bool
	prevEnd   EndKind
	prevEndAt sim.Time

	// Countdown-chain detection: membership of the most recently opened
	// use resolves when the next one opens (or at end of trace).
	hasPend  bool
	pend     Use
	fromPrev bool

	// Tallies over closed uses — exactly the uses Classify sees after
	// dropping a trailing dangling one.
	closed       int
	expired      int
	canceled     int
	reset        int
	earlyCancels int
	immediate    int
	tvals        map[sim.Duration]int

	// hasUse reports at least one arming ever (gates the Figure 2 tally).
	hasUse bool

	// pts collects the timer's Figure 4 points when its process matches.
	pts []SeriesPoint
}

// classify mirrors Classify over the closed-use tallies.
func (t *streamTimer) classify() Class {
	total := t.closed
	if total < 2 {
		return ClassOther
	}
	if !t.constantValue() {
		return ClassOther
	}
	switch {
	case t.expired == 0 && t.reset > 0 && t.reset >= t.canceled:
		return ClassWatchdog
	case t.reset > 0 && t.expired > 0 && t.canceled*10 <= total:
		return ClassDeferred
	case t.expired*10 >= total*9:
		if t.expired > 0 && float64(t.immediate)/float64(t.expired) >= 0.8 {
			return ClassPeriodic
		}
		return ClassDelay
	case t.canceled*10 >= total*8 && t.canceled > 0 && t.earlyCancels*10 >= t.canceled*8:
		return ClassTimeout
	default:
		return ClassOther
	}
}

// constantValue mirrors constantValue over the timeout histogram: the
// median of the closed-use multiset and the 90 %-within-tolerance rule.
func (t *streamTimer) constantValue() bool {
	n := t.closed
	vals := make([]sim.Duration, 0, len(t.tvals))
	for v := range t.tvals {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var median sim.Duration
	cum := 0
	for _, v := range vals {
		cum += t.tvals[v]
		if n/2 < cum {
			median = v
			break
		}
	}
	within := 0
	for _, v := range vals {
		d := v - median
		if d < 0 {
			d = -d
		}
		if d <= JitterTolerance {
			within += t.tvals[v]
		}
	}
	return within*10 >= n*9
}

// Run executes the pipeline over one trace in a single pass. Errors come
// from the source (a truncated or corrupt stream); an in-memory Buffer
// never fails.
func (p Pipeline) Run(src trace.Source) (*Report, error) {
	rep := &Report{}
	sum := &rep.Summary

	values := newValueAcc(p.Values)
	vaccs := []*valueAcc{values}
	var valuesF, valuesU *valueAcc
	if p.ValuesFiltered != nil {
		valuesF = newValueAcc(*p.ValuesFiltered)
		vaccs = append(vaccs, valuesF)
	}
	if p.ValuesUser != nil {
		valuesU = newValueAcc(*p.ValuesUser)
		vaccs = append(vaccs, valuesU)
	}
	var scatter *scatterAcc
	if p.Scatter != nil {
		scatter = newScatterAcc(*p.Scatter)
	}
	var series *seriesAcc
	if p.SeriesProcess != "" {
		series = &seriesAcc{process: p.SeriesProcess}
	}
	var origins *originAcc
	if p.OriginMinSets > 0 {
		origins = newOriginAcc(p.OriginMinSets)
	}

	byID := make(map[uint64]*streamTimer)
	order := make([]*streamTimer, 0, 64)
	type cluster struct {
		origin uint32
		pid    int32
	}
	clusters := make(map[cluster]bool)
	openCount := 0

	// resolve folds one use whose chain membership is now known into the
	// value histograms: collapsed accumulators take chain starts and
	// non-members, plain ones take every use.
	resolve := func(t *streamTimer, u Use, member, chainStart bool) {
		for _, a := range vaccs {
			if a.opts.excludedAttrs(t.user, t.originName) {
				continue
			}
			if a.opts.CollapseCountdowns && member && !chainStart {
				continue
			}
			a.addAttrs(t.user, u.Timeout)
		}
	}

	closeUse := func(t *streamTimer, endAt sim.Time, end EndKind, satisfied bool) {
		u := t.openUse
		u.EndAt, u.End, u.Satisfied = endAt, end, satisfied
		t.open = false
		t.closed++
		if t.tvals == nil {
			t.tvals = make(map[sim.Duration]int, 4)
		}
		t.tvals[u.Timeout]++
		switch end {
		case EndExpired:
			t.expired++
		case EndCanceled:
			t.canceled++
			if u.Timeout > 0 && u.Elapsed() < u.Timeout-JitterTolerance {
				t.earlyCancels++
			}
		case EndReset:
			t.reset++
		}
		if t.candImmediate {
			t.immediate++
		}
		if scatter != nil && !scatter.vo.excludedAttrs(t.user, t.originName) {
			scatter.addUse(u)
		}
		t.hasPrev, t.prevEnd, t.prevEndAt = true, end, endAt
	}

	err := src.ForEach(func(r trace.Record) {
		t, ok := byID[r.TimerID]
		if !ok {
			t = &streamTimer{originName: src.OriginName(r.Origin)}
			byID[r.TimerID] = t
			order = append(order, t)
		}
		if r.Flags&trace.FlagUser != 0 {
			t.user = true
		}
		if t.originName == "?" {
			t.originName = src.OriginName(r.Origin)
		}
		sum.Accesses++
		clusters[cluster{r.Origin, r.PID}] = true
		if r.IsUser() {
			sum.UserSpace++
		} else {
			sum.Kernel++
		}
		if r.T > rep.End {
			rep.End = r.T
		}
		switch r.Op {
		case trace.OpInit:
			// Initialization only; no interval.
		case trace.OpSet, trace.OpWait:
			sum.Set++
			if t.open {
				closeUse(t, r.T, EndReset, false)
			} else {
				openCount++
				if openCount > sum.Concurrency {
					sum.Concurrency = openCount
				}
			}
			u := Use{
				SetAt:   r.T,
				Timeout: sim.Duration(r.Timeout),
				End:     EndDangling,
				IsWait:  r.Op == trace.OpWait,
			}
			t.candImmediate = t.hasPrev && t.prevEnd == EndExpired &&
				r.T.Sub(t.prevEndAt) <= JitterTolerance
			if t.hasPend {
				step := isCountdownStep(t.pend, u)
				resolve(t, t.pend, t.fromPrev || step, step && !t.fromPrev)
				t.fromPrev = step
			} else {
				t.fromPrev = false
			}
			t.pend, t.hasPend = u, true
			if series != nil && processOf(t.originName) == series.process {
				t.pts = append(t.pts, SeriesPoint{T: u.SetAt, V: u.Timeout})
			}
			if origins != nil {
				origins.observeUse(t.originName, t.user, u.Timeout)
			}
			t.hasUse = true
			t.open = true
			t.openUse = u
		case trace.OpCancel:
			sum.Canceled++
			if t.open {
				closeUse(t, r.T, EndCanceled, r.Flags&trace.FlagSatisfied != 0)
				openCount--
			}
		case trace.OpExpire:
			sum.Expired++
			if t.open {
				closeUse(t, r.T, EndExpired, false)
				openCount--
			}
		}
	})
	if err != nil {
		return nil, err
	}

	sum.Timers = len(order)
	sum.ClusteredTimers = len(clusters)

	for _, t := range order {
		if t.hasPend {
			// The last use has no successor: a chain member only if the
			// step from its predecessor held.
			resolve(t, t.pend, t.fromPrev, false)
		}
		if t.hasUse {
			class := t.classify()
			rep.Shares.Counts[class]++
			rep.Shares.Total++
			if origins != nil {
				origins.observeTimer(t.originName, class)
			}
		}
		if series != nil {
			series.pts = append(series.pts, t.pts...)
		}
	}

	rep.Values, rep.ValuesTotal = values.finish()
	if valuesF != nil {
		rep.ValuesFiltered, rep.ValuesFilteredTotal = valuesF.finish()
	}
	if valuesU != nil {
		rep.ValuesUser, rep.ValuesUserTotal = valuesU.finish()
	}
	if scatter != nil {
		rep.Scatter = scatter.finish()
	}
	if series != nil {
		rep.Series = series.finish()
	}
	if origins != nil {
		rep.Origins = origins.finish()
	}
	return rep, nil
}
