package analysis

import (
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Pipeline computes every per-workload artifact of the paper's evaluation in
// a single streaming pass over a trace.Source: the Table 1/2 summary, class
// shares (Figure 2), up to three value histograms (Figures 3, 5, 6, 7), the
// expiry/cancelation scatter (Figures 8-11), the per-process set series
// (Figure 4), and the origin table (Table 3). Memory is bounded by the
// number of distinct timer identities (each contributes a fixed-size
// accumulator) plus the size of the report itself — never by trace length —
// so a StreamReader over a file larger than RAM analyses in constant memory.
//
// The per-use folds reuse the same accumulators behind CommonValues,
// Scatter, SetSeries, ComputeClassShares and OriginTable, and the fold
// points are chosen so a pipeline run is byte-for-byte equivalent to
// reconstructing full lifecycles and calling those functions independently.
// The one assumption the streaming fold adds is that a timer's user flag
// and origin are constant across its records (true of every facility in
// this repo; crosscheck tests verify it on real workload traces).
//
// The fold itself lives in the shard type: Run drives one shard over the
// whole record stream; RunParallel partitions timer identities across many
// shards and merges them, producing an identical Report at any worker count
// (see parallel.go for why).
type Pipeline struct {
	// Values configures the headline histogram (Figures 3 and 7).
	Values ValueOptions
	// ValuesFiltered, if non-nil, adds the Figure 5 histogram (typically
	// X/icewm filtered with countdowns collapsed).
	ValuesFiltered *ValueOptions
	// ValuesUser, if non-nil, adds the Figure 6 histogram (user-space only).
	ValuesUser *ValueOptions
	// Scatter, if non-nil, adds the Figures 8-11 aggregation.
	Scatter *ScatterOptions
	// SeriesProcess, if non-empty, adds the Figure 4 set series for that
	// process.
	SeriesProcess string
	// OriginMinSets, if positive, adds the Table 3 origin rows with that
	// minimum set count.
	OriginMinSets int
}

// Report is everything one Pipeline run produced.
type Report struct {
	// Summary is the Table 1/2 column, counted over the raw record stream.
	Summary Summary
	// End is the largest record timestamp seen (zero for an empty trace).
	End sim.Time
	// Shares is the Figure 2 usage-pattern tally.
	Shares ClassShares
	// Values/ValuesFiltered/ValuesUser are the requested histograms with
	// their total (pre-threshold) sample counts.
	Values              []ValueEntry
	ValuesTotal         int
	ValuesFiltered      []ValueEntry
	ValuesFilteredTotal int
	ValuesUser          []ValueEntry
	ValuesUserTotal     int
	// Scatter is the Figures 8-11 aggregation (nil unless requested).
	Scatter []ScatterPoint
	// Series is the Figure 4 set series (nil unless requested).
	Series []SeriesPoint
	// Origins is the Table 3 listing (nil unless requested).
	Origins []OriginRow
}

// tvalSlot is one (timeout value, count) pair of a timer's closed-use
// histogram.
type tvalSlot struct {
	v sim.Duration
	n int
}

// inlineTvals is the number of distinct timeout values a timer tracks
// without spilling to a map. Almost every timer in the paper's workloads
// uses one or two distinct values; four covers jitterless re-arming plus a
// couple of outliers.
const inlineTvals = 4

// streamTimer is the bounded per-timer state the streaming pass keeps in
// place of a full TimerLife: classification tallies, the open use, the
// previous closed use (for immediate-reset pairing) and the one pending use
// whose countdown-chain membership the next arming decides. Everything else
// folds into the shared accumulators as uses open and close.
//
// streamTimers live in a shard's block arena and are never allocated
// individually; the zero value is the fresh state.
type streamTimer struct {
	originName string
	user       bool

	// The currently armed use, if any.
	open    bool
	openUse Use
	// candImmediate marks an open use whose arming followed the previous
	// use's expiry within the jitter tolerance; it counts toward the
	// periodic signature only if this use closes (matching Classify's
	// truncated-slice semantics).
	candImmediate bool

	// Previous closed use, for the expiry→re-set pairing.
	hasPrev   bool
	prevEnd   EndKind
	prevEndAt sim.Time

	// Countdown-chain detection: membership of the most recently opened
	// use resolves when the next one opens (or at end of trace).
	hasPend  bool
	pend     Use
	fromPrev bool

	// Tallies over closed uses — exactly the uses Classify sees after
	// dropping a trailing dangling one. Timeout values count into inline
	// slots, spilling to tvMore only past inlineTvals distinct values.
	closed       int
	expired      int
	canceled     int
	reset        int
	earlyCancels int
	immediate    int
	ntv          uint8
	tv           [inlineTvals]tvalSlot
	tvMore       map[sim.Duration]int

	// hasUse reports at least one arming ever (gates the Figure 2 tally).
	hasUse bool
}

// addTval counts one closed-use timeout value.
func (t *streamTimer) addTval(v sim.Duration) {
	for i := 0; i < int(t.ntv); i++ {
		if t.tv[i].v == v {
			t.tv[i].n++
			return
		}
	}
	if int(t.ntv) < inlineTvals {
		t.tv[t.ntv] = tvalSlot{v: v, n: 1}
		t.ntv++
		return
	}
	if t.tvMore == nil {
		t.tvMore = make(map[sim.Duration]int, 4)
	}
	t.tvMore[v]++
}

// Arena geometry: timers are stored in fixed-size blocks so pointers stay
// stable as the table grows and a million-timer trace costs thousands of
// allocations instead of millions.
const (
	timerBlockShift = 9 // 512 timers per block
	timerBlockSize  = 1 << timerBlockShift
	timerBlockMask  = timerBlockSize - 1
)

// cluster keys the Section 3.3 (origin, thread) clustering. The key is the
// resolved origin name, not the numeric ID: IDs are interning-order
// artifacts of one stream, so merging Partials fed by different producers
// would otherwise split (or fuse) clusters that a single run over the
// concatenated streams counts as one. Within one source the two keyings are
// identical — interning makes name and ID one-to-one.
type cluster struct {
	origin string
	pid    int32
}

// shard is the streaming fold over one subset of timer identities. Run uses
// a single shard for everything; RunParallel gives each worker its own and
// merges. All of a shard's per-use folds go to shard-local accumulators, so
// shards never share mutable state.
type shard struct {
	cfg Pipeline

	values, valuesF, valuesU *valueAcc
	vaccs                    []*valueAcc
	scatter                  *scatterAcc
	origins                  *originAcc
	seriesProcess            string
	pts                      []SeriesPoint

	sum      Summary // additive fields; Timers/Concurrency filled later
	end      sim.Time
	shares   ClassShares
	clusters map[cluster]bool

	// Timer table: creation-order arena blocks indexed through byID.
	byID    map[uint64]int32
	blocks  [][]streamTimer
	nTimers int

	// openCount/maxOpen track pending-timer concurrency; exact only when
	// the shard owns every timer (Run). RunParallel tracks concurrency
	// globally instead and ignores these.
	openCount, maxOpen int

	tvScratch []tvalSlot
}

func (p Pipeline) newShard() *shard {
	s := &shard{
		cfg:           p,
		seriesProcess: p.SeriesProcess,
		clusters:      make(map[cluster]bool),
		byID:          make(map[uint64]int32),
	}
	s.values = newValueAcc(p.Values)
	s.vaccs = append(s.vaccs, s.values)
	if p.ValuesFiltered != nil {
		s.valuesF = newValueAcc(*p.ValuesFiltered)
		s.vaccs = append(s.vaccs, s.valuesF)
	}
	if p.ValuesUser != nil {
		s.valuesU = newValueAcc(*p.ValuesUser)
		s.vaccs = append(s.vaccs, s.valuesU)
	}
	if p.Scatter != nil {
		s.scatter = newScatterAcc(*p.Scatter)
	}
	if p.OriginMinSets > 0 {
		s.origins = newOriginAcc(p.OriginMinSets)
	}
	return s
}

func (s *shard) timer(idx int32) *streamTimer {
	return &s.blocks[idx>>timerBlockShift][idx&timerBlockMask]
}

// newTimer allocates the next arena slot; the cold path of record.
func (s *shard) newTimer(id uint64, name string) *streamTimer {
	if s.nTimers>>timerBlockShift == len(s.blocks) {
		s.blocks = append(s.blocks, make([]streamTimer, timerBlockSize))
	}
	idx := int32(s.nTimers)
	s.nTimers++
	s.byID[id] = idx
	t := s.timer(idx)
	t.originName = name
	return t
}

// resolveOrigin resolves an origin ID through a chunk snapshot when one is
// available (origins non-nil), else through the source.
func resolveOrigin(origins []string, src trace.Source, id uint32) string {
	if origins != nil {
		if int(id) < len(origins) {
			return origins[id]
		}
		return "?"
	}
	return src.OriginName(id)
}

// record folds one trace record. origins is the chunk's origin snapshot
// (src is only consulted when it is nil — the non-chunked fallback).
//
//lint:allocfree per-record hot path; timer state comes from the block arena and every tally is inline or in a warmed map (TestShardRecordZeroAlloc)
func (s *shard) record(r trace.Record, origins []string, src trace.Source) {
	var t *streamTimer
	if idx, ok := s.byID[r.TimerID]; ok {
		t = s.timer(idx)
	} else {
		//lint:ignore allocfree cold path inlined from newTimer: a timer's first record may grow the arena (one make per 512 timers), amortized to ~0 in allocs_per_record
		t = s.newTimer(r.TimerID, resolveOrigin(origins, src, r.Origin))
	}
	if r.Flags&trace.FlagUser != 0 {
		t.user = true
	}
	if t.originName == "?" {
		t.originName = resolveOrigin(origins, src, r.Origin)
	}
	s.sum.Accesses++
	s.clusters[cluster{resolveOrigin(origins, src, r.Origin), r.PID}] = true
	if r.IsUser() {
		s.sum.UserSpace++
	} else {
		s.sum.Kernel++
	}
	if r.T > s.end {
		s.end = r.T
	}
	switch r.Op {
	case trace.OpInit:
		// Initialization only; no interval.
	case trace.OpSet, trace.OpWait:
		s.sum.Set++
		if t.open {
			s.closeUse(t, r.T, EndReset, false)
		} else {
			s.openCount++
			if s.openCount > s.maxOpen {
				s.maxOpen = s.openCount
			}
		}
		u := Use{
			SetAt:   r.T,
			Timeout: sim.Duration(r.Timeout),
			End:     EndDangling,
			IsWait:  r.Op == trace.OpWait,
		}
		t.candImmediate = t.hasPrev && t.prevEnd == EndExpired &&
			r.T.Sub(t.prevEndAt) <= JitterTolerance
		if t.hasPend {
			step := isCountdownStep(t.pend, u)
			s.resolve(t, t.pend, t.fromPrev || step, step && !t.fromPrev)
			t.fromPrev = step
		} else {
			t.fromPrev = false
		}
		t.pend, t.hasPend = u, true
		if s.seriesProcess != "" && processOf(t.originName) == s.seriesProcess {
			s.pts = append(s.pts, SeriesPoint{T: u.SetAt, V: u.Timeout})
		}
		if s.origins != nil {
			s.origins.observeUse(t.originName, t.user, u.Timeout)
		}
		t.hasUse = true
		t.open = true
		t.openUse = u
	case trace.OpCancel:
		s.sum.Canceled++
		if t.open {
			s.closeUse(t, r.T, EndCanceled, r.Flags&trace.FlagSatisfied != 0)
			s.openCount--
		}
	case trace.OpExpire:
		s.sum.Expired++
		if t.open {
			s.closeUse(t, r.T, EndExpired, false)
			s.openCount--
		}
	}
}

// resolve folds one use whose chain membership is now known into the value
// histograms: collapsed accumulators take chain starts and non-members,
// plain ones take every use.
func (s *shard) resolve(t *streamTimer, u Use, member, chainStart bool) {
	for _, a := range s.vaccs {
		if a.opts.excludedAttrs(t.user, t.originName) {
			continue
		}
		if a.opts.CollapseCountdowns && member && !chainStart {
			continue
		}
		a.addAttrs(t.user, u.Timeout)
	}
}

func (s *shard) closeUse(t *streamTimer, endAt sim.Time, end EndKind, satisfied bool) {
	u := t.openUse
	u.EndAt, u.End, u.Satisfied = endAt, end, satisfied
	t.open = false
	t.closed++
	t.addTval(u.Timeout)
	switch end {
	case EndExpired:
		t.expired++
	case EndCanceled:
		t.canceled++
		if u.Timeout > 0 && u.Elapsed() < u.Timeout-JitterTolerance {
			t.earlyCancels++
		}
	case EndReset:
		t.reset++
	}
	if t.candImmediate {
		t.immediate++
	}
	if s.scatter != nil && !s.scatter.vo.excludedAttrs(t.user, t.originName) {
		s.scatter.addUse(u)
	}
	t.hasPrev, t.prevEnd, t.prevEndAt = true, end, endAt
}

// classify mirrors Classify over the closed-use tallies.
func (s *shard) classify(t *streamTimer) Class {
	total := t.closed
	if total < 2 {
		return ClassOther
	}
	if !s.constantValue(t) {
		return ClassOther
	}
	switch {
	case t.expired == 0 && t.reset > 0 && t.reset >= t.canceled:
		return ClassWatchdog
	case t.reset > 0 && t.expired > 0 && t.canceled*10 <= total:
		return ClassDeferred
	case t.expired*10 >= total*9:
		if t.expired > 0 && float64(t.immediate)/float64(t.expired) >= 0.8 {
			return ClassPeriodic
		}
		return ClassDelay
	case t.canceled*10 >= total*8 && t.canceled > 0 && t.earlyCancels*10 >= t.canceled*8:
		return ClassTimeout
	default:
		return ClassOther
	}
}

// constantValue mirrors constantValue over the timeout histogram: the
// median of the closed-use multiset and the 90 %-within-tolerance rule.
// The shard's scratch slice keeps the fold allocation-free; the distinct
// values are insertion-sorted (they are almost always ≤ inlineTvals many).
func (s *shard) constantValue(t *streamTimer) bool {
	n := t.closed
	vals := s.tvScratch[:0]
	for i := 0; i < int(t.ntv); i++ {
		vals = append(vals, t.tv[i])
	}
	for v, c := range t.tvMore {
		//lint:ignore mapiter the insertion sort below canonicalizes the order; sort.Slice would allocate on this alloc-free fold path
		vals = append(vals, tvalSlot{v: v, n: c})
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j].v < vals[j-1].v; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	s.tvScratch = vals
	var median sim.Duration
	cum := 0
	for _, vc := range vals {
		cum += vc.n
		if n/2 < cum {
			median = vc.v
			break
		}
	}
	within := 0
	for _, vc := range vals {
		d := vc.v - median
		if d < 0 {
			d = -d
		}
		if d <= JitterTolerance {
			within += vc.n
		}
	}
	return within*10 >= n*9
}

// fold finishes the per-timer state after the last record: trailing pending
// uses resolve, and each timer with at least one use classifies into the
// shard's Figure 2 and Table 3 tallies. Timers fold in creation order, but
// nothing order-sensitive leaves the fold: every output is an additive
// tally or canonically sorted at finish.
func (s *shard) fold() {
	for i := 0; i < s.nTimers; i++ {
		t := s.timer(int32(i))
		if t.hasPend {
			// The last use has no successor: a chain member only if the
			// step from its predecessor held.
			s.resolve(t, t.pend, t.fromPrev, false)
		}
		if t.hasUse {
			class := s.classify(t)
			s.shares.Counts[class]++
			s.shares.Total++
			if s.origins != nil {
				s.origins.observeTimer(t.originName, class)
			}
		}
	}
	s.sum.Timers = s.nTimers
}

// merge folds another shard of the same Pipeline into s. Every operation is
// commutative-additive (sums, max, set union, histogram addition), so merge
// order cannot influence the finished Report.
func (s *shard) merge(o *shard) {
	s.sum.Timers += o.sum.Timers
	s.sum.Accesses += o.sum.Accesses
	s.sum.UserSpace += o.sum.UserSpace
	s.sum.Kernel += o.sum.Kernel
	s.sum.Set += o.sum.Set
	s.sum.Expired += o.sum.Expired
	s.sum.Canceled += o.sum.Canceled
	if o.end > s.end {
		s.end = o.end
	}
	for i, c := range o.shares.Counts {
		s.shares.Counts[i] += c
	}
	s.shares.Total += o.shares.Total
	for k := range o.clusters {
		s.clusters[k] = true
	}
	s.values.merge(o.values)
	if s.valuesF != nil {
		s.valuesF.merge(o.valuesF)
	}
	if s.valuesU != nil {
		s.valuesU.merge(o.valuesU)
	}
	if s.scatter != nil {
		s.scatter.merge(o.scatter)
	}
	s.pts = append(s.pts, o.pts...)
	if s.origins != nil {
		s.origins.merge(o.origins)
	}
}

// report merges folded shards and finishes every accumulator into a Report.
// concurrency is the externally tracked Summary.Concurrency (shard-local
// tracking is only exact for a single shard).
func (p Pipeline) report(shards []*shard, concurrency int) *Report {
	main := shards[0]
	for _, s := range shards[1:] {
		main.merge(s)
	}
	rep := &Report{Summary: main.sum, End: main.end, Shares: main.shares}
	rep.Summary.ClusteredTimers = len(main.clusters)
	rep.Summary.Concurrency = concurrency
	rep.Values, rep.ValuesTotal = main.values.finish()
	if main.valuesF != nil {
		rep.ValuesFiltered, rep.ValuesFilteredTotal = main.valuesF.finish()
	}
	if main.valuesU != nil {
		rep.ValuesUser, rep.ValuesUserTotal = main.valuesU.finish()
	}
	if main.scatter != nil {
		rep.Scatter = main.scatter.finish()
	}
	if p.SeriesProcess != "" {
		sortSeries(main.pts)
		rep.Series = main.pts
	}
	if main.origins != nil {
		rep.Origins = main.origins.finish()
	}
	return rep
}

// Run executes the pipeline over one trace in a single pass. Errors come
// from the source (a truncated or corrupt stream); an in-memory Buffer
// never fails.
func (p Pipeline) Run(src trace.Source) (*Report, error) {
	sh := p.newShard()
	var err error
	if cs, ok := src.(trace.ChunkedSource); ok {
		err = cs.ForEachChunk(1, func(c trace.Chunk) error {
			for _, r := range c.Records {
				sh.record(r, c.Origins, nil)
			}
			return nil
		})
	} else {
		err = src.ForEach(func(r trace.Record) { sh.record(r, nil, src) })
	}
	if err != nil {
		return nil, err
	}
	sh.fold()
	return p.report([]*shard{sh}, sh.maxOpen), nil
}
