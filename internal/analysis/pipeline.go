package analysis

import "timerstudy/internal/trace"

// Pipeline computes every per-workload artifact of the paper's evaluation in
// a single pass: one walk over the raw records (lifecycle reconstruction +
// the Table 1/2 summary, via buildLifecycles) followed by one walk over the
// lifecycles that feeds all selected accumulators at once — class shares
// (Figure 2), up to three value histograms (Figures 3, 5, 6, 7), the
// expiry/cancelation scatter (Figures 8-11), the per-process set series
// (Figure 4), and the origin table (Table 3). Countdown-chain detection and
// classification run at most once per timer and are shared by every
// consumer.
//
// The accumulators are the same ones behind CommonValues, Scatter,
// SetSeries, ComputeClassShares and OriginTable, so a pipeline run is
// byte-for-byte equivalent to calling those six functions independently —
// it just walks the data once instead of six times.
type Pipeline struct {
	// Values configures the headline histogram (Figures 3 and 7).
	Values ValueOptions
	// ValuesFiltered, if non-nil, adds the Figure 5 histogram (typically
	// X/icewm filtered with countdowns collapsed).
	ValuesFiltered *ValueOptions
	// ValuesUser, if non-nil, adds the Figure 6 histogram (user-space only).
	ValuesUser *ValueOptions
	// Scatter, if non-nil, adds the Figures 8-11 aggregation.
	Scatter *ScatterOptions
	// SeriesProcess, if non-empty, adds the Figure 4 set series for that
	// process.
	SeriesProcess string
	// OriginMinSets, if positive, adds the Table 3 origin rows with that
	// minimum set count.
	OriginMinSets int
}

// Report is everything one Pipeline run produced.
type Report struct {
	// Summary is the Table 1/2 column, counted over the raw record stream.
	Summary Summary
	// Lifecycles are the reconstructed per-timer histories the rest of the
	// report was computed from.
	Lifecycles []*TimerLife
	// Shares is the Figure 2 usage-pattern tally.
	Shares ClassShares
	// Values/ValuesFiltered/ValuesUser are the requested histograms with
	// their total (pre-threshold) sample counts.
	Values              []ValueEntry
	ValuesTotal         int
	ValuesFiltered      []ValueEntry
	ValuesFilteredTotal int
	ValuesUser          []ValueEntry
	ValuesUserTotal     int
	// Scatter is the Figures 8-11 aggregation (nil unless requested).
	Scatter []ScatterPoint
	// Series is the Figure 4 set series (nil unless requested).
	Series []SeriesPoint
	// Origins is the Table 3 listing (nil unless requested).
	Origins []OriginRow
}

// Run executes the pipeline over one trace.
func (p Pipeline) Run(tr *trace.Buffer) *Report {
	ls, sum := buildLifecycles(tr)
	rep := &Report{Summary: sum, Lifecycles: ls}

	values := newValueAcc(p.Values)
	var valuesF, valuesU *valueAcc
	if p.ValuesFiltered != nil {
		valuesF = newValueAcc(*p.ValuesFiltered)
	}
	if p.ValuesUser != nil {
		valuesU = newValueAcc(*p.ValuesUser)
	}
	var scatter *scatterAcc
	if p.Scatter != nil {
		scatter = newScatterAcc(*p.Scatter)
	}
	var series *seriesAcc
	if p.SeriesProcess != "" {
		series = &seriesAcc{process: p.SeriesProcess}
	}
	var origins *originAcc
	if p.OriginMinSets > 0 {
		origins = newOriginAcc(p.OriginMinSets)
	}

	for _, tl := range ls {
		tl := tl
		// Chains and class are computed at most once per timer, on demand.
		var chains []Chain
		chainsDone := false
		getChains := func() []Chain {
			if !chainsDone {
				chains, chainsDone = CountdownChains(tl), true
			}
			return chains
		}
		class := Classify(tl)

		rep.Shares.observe(tl, class)
		values.observe(tl, getChains)
		if valuesF != nil {
			valuesF.observe(tl, getChains)
		}
		if valuesU != nil {
			valuesU.observe(tl, getChains)
		}
		if scatter != nil {
			scatter.observe(tl)
		}
		if series != nil {
			series.observe(tl)
		}
		if origins != nil {
			origins.observe(tl, class)
		}
	}

	rep.Values, rep.ValuesTotal = values.finish()
	if valuesF != nil {
		rep.ValuesFiltered, rep.ValuesFilteredTotal = valuesF.finish()
	}
	if valuesU != nil {
		rep.ValuesUser, rep.ValuesUserTotal = valuesU.finish()
	}
	if scatter != nil {
		rep.Scatter = scatter.finish()
	}
	if series != nil {
		rep.Series = series.finish()
	}
	if origins != nil {
		rep.Origins = origins.finish()
	}
	return rep
}
