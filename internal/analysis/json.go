package analysis

import "encoding/json"

// Canonical JSON renderings of a Report's sections. The live trace service
// and offline `timerstat -json` both call these, so "the quiesced server's
// /api/summary equals offline output" is byte-identity by construction:
// there is exactly one serializer per section. Field order is fixed by the
// struct declarations, durations render as integer nanoseconds (no float
// formatting ambiguity), and every slice is already canonically sorted by
// the pipeline's finish step.

type summaryJSON struct {
	Timers          int         `json:"timers"`
	ClusteredTimers int         `json:"clustered_timers"`
	Concurrency     int         `json:"concurrency"`
	Accesses        uint64      `json:"accesses"`
	UserSpace       uint64      `json:"user_space"`
	Kernel          uint64      `json:"kernel"`
	Set             uint64      `json:"set"`
	Expired         uint64      `json:"expired"`
	Canceled        uint64      `json:"canceled"`
	EndNS           int64       `json:"end_ns"`
	ClassTotal      int         `json:"class_total"`
	Classes         []classJSON `json:"classes"`
}

type classJSON struct {
	Class string `json:"class"`
	Count int    `json:"count"`
}

type histogramJSON struct {
	Total   int             `json:"total"`
	Entries []histEntryJSON `json:"entries"`
}

type histEntryJSON struct {
	ValueNS int64   `json:"value_ns"`
	Jiffies uint64  `json:"jiffies"`
	Count   int     `json:"count"`
	Share   float64 `json:"share"`
}

type originJSON struct {
	ValueNS int64  `json:"value_ns"`
	Origin  string `json:"origin"`
	Class   string `json:"class"`
	Sets    int    `json:"sets"`
	Timers  int    `json:"timers"`
}

// mustJSON marshals a value composed purely of marshalable fields; failure
// is a programming error, never data-dependent.
func mustJSON(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic("analysis: json render: " + err.Error())
	}
	return append(b, '\n')
}

// SummaryJSON renders the Table 1/2 summary plus the Figure 2 class shares.
func (r *Report) SummaryJSON() []byte {
	s := summaryJSON{
		Timers:          r.Summary.Timers,
		ClusteredTimers: r.Summary.ClusteredTimers,
		Concurrency:     r.Summary.Concurrency,
		Accesses:        r.Summary.Accesses,
		UserSpace:       r.Summary.UserSpace,
		Kernel:          r.Summary.Kernel,
		Set:             r.Summary.Set,
		Expired:         r.Summary.Expired,
		Canceled:        r.Summary.Canceled,
		EndNS:           int64(r.End),
		ClassTotal:      r.Shares.Total,
		Classes:         make([]classJSON, 0, int(nClasses)),
	}
	for _, c := range Classes() {
		s.Classes = append(s.Classes, classJSON{Class: c.String(), Count: r.Shares.Counts[c]})
	}
	return mustJSON(s)
}

func histJSON(entries []ValueEntry, total int) histogramJSON {
	h := histogramJSON{Total: total, Entries: make([]histEntryJSON, 0, len(entries))}
	for _, e := range entries {
		h.Entries = append(h.Entries, histEntryJSON{
			ValueNS: int64(e.Value), Jiffies: e.Jiffies, Count: e.Count, Share: e.Share,
		})
	}
	return h
}

// HistogramsJSON renders the requested value histograms (Figures 3/5/6/7);
// unconfigured ones render as null.
func (r *Report) HistogramsJSON() []byte {
	out := struct {
		Values         histogramJSON  `json:"values"`
		ValuesFiltered *histogramJSON `json:"values_filtered"`
		ValuesUser     *histogramJSON `json:"values_user"`
	}{Values: histJSON(r.Values, r.ValuesTotal)}
	if r.ValuesFiltered != nil {
		h := histJSON(r.ValuesFiltered, r.ValuesFilteredTotal)
		out.ValuesFiltered = &h
	}
	if r.ValuesUser != nil {
		h := histJSON(r.ValuesUser, r.ValuesUserTotal)
		out.ValuesUser = &h
	}
	return mustJSON(out)
}

// OriginsJSON renders the Table 3 origin rows.
func (r *Report) OriginsJSON() []byte {
	rows := make([]originJSON, 0, len(r.Origins))
	for _, o := range r.Origins {
		rows = append(rows, originJSON{
			ValueNS: int64(o.Value), Origin: o.Origin, Class: o.Class.String(),
			Sets: o.Sets, Timers: o.Timers,
		})
	}
	return mustJSON(struct {
		Origins []originJSON `json:"origins"`
	}{Origins: rows})
}
