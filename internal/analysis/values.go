package analysis

import (
	"sort"
	"strings"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/sim"
)

// ValueOptions selects and bins timeout values for the common-value
// histograms (Figures 3, 5, 6, 7).
type ValueOptions struct {
	// UserOnly restricts to user-space accesses (Figure 6).
	UserOnly bool
	// ExcludeProcesses drops timers whose origin belongs to these processes
	// (origin prefix before '/'); Figure 5 excludes Xorg and icewm.
	ExcludeProcesses []string
	// CollapseCountdowns replaces each detected select-countdown chain with
	// a single sample of its initial (programmer-chosen) value (Figure 5).
	CollapseCountdowns bool
	// JiffyBinKernel bins kernel-side values to whole jiffies, as the
	// Linux analysis does; user values always bin to 100 µs.
	JiffyBinKernel bool
	// MinSharePercent drops entries below this share of all samples
	// (the paper's figures use 2 %).
	MinSharePercent float64
}

// ValueEntry is one histogram bar.
type ValueEntry struct {
	// Value is the binned timeout.
	Value sim.Duration
	// Jiffies is the jiffy count when jiffy-binned (0 otherwise).
	Jiffies uint64
	// Count is the number of samples in the bin.
	Count int
	// Share is Count as a percentage of all samples (before thresholding).
	Share float64
}

// userBin quantizes user-supplied values to 100 µs.
const userBin = 100 * sim.Microsecond

func processOf(origin string) string {
	if i := strings.IndexByte(origin, '/'); i >= 0 {
		return origin[:i]
	}
	return origin
}

func (o ValueOptions) excluded(tl *TimerLife) bool {
	if o.UserOnly && !tl.User {
		return true
	}
	proc := processOf(tl.Origin)
	for _, p := range o.ExcludeProcesses {
		if proc == p {
			return true
		}
	}
	return false
}

func (o ValueOptions) bin(tl *TimerLife, v sim.Duration) (sim.Duration, uint64) {
	if v < 0 {
		v = 0
	}
	if o.JiffyBinKernel && !tl.User {
		j := jiffies.MsecsToJiffies(v)
		return sim.Duration(j) * jiffies.JiffyDuration, j
	}
	binned := (v + userBin/2) / userBin * userBin
	return binned, 0
}

// CommonValues computes the binned value histogram over all sets in the
// lifecycles, applying the options' filters. It returns the entries at or
// above the share threshold (sorted by value) and the total sample count.
func CommonValues(ls []*TimerLife, opts ValueOptions) ([]ValueEntry, int) {
	type key struct {
		v sim.Duration
		j uint64
	}
	counts := make(map[key]int)
	total := 0
	add := func(tl *TimerLife, v sim.Duration) {
		b, j := opts.bin(tl, v)
		counts[key{b, j}]++
		total++
	}
	for _, tl := range ls {
		if opts.excluded(tl) {
			continue
		}
		if opts.CollapseCountdowns {
			for _, chain := range CountdownChains(tl) {
				add(tl, tl.Uses[chain.Start].Timeout)
				// Chain members beyond the first are dropped.
			}
			for i, inChain := range chainMembership(tl) {
				if !inChain {
					add(tl, tl.Uses[i].Timeout)
				}
			}
		} else {
			for _, u := range tl.Uses {
				add(tl, u.Timeout)
			}
		}
	}
	entries := make([]ValueEntry, 0, len(counts))
	for k, c := range counts {
		share := 100 * float64(c) / float64(total)
		if share < opts.MinSharePercent {
			continue
		}
		entries = append(entries, ValueEntry{Value: k.v, Jiffies: k.j, Count: c, Share: share})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Value < entries[j].Value })
	return entries, total
}

// Chain is a run of uses forming a select-style countdown: each re-set's
// value is the previous value minus the elapsed time — Linux writing the
// remaining timeout back and the program re-issuing it (Figure 4).
type Chain struct {
	// Start and End index tl.Uses (End exclusive).
	Start, End int
}

// Len returns the number of uses in the chain.
func (c Chain) Len() int { return c.End - c.Start }

// countdownTolerance allows for jiffy quantization of the written-back
// remainder plus scheduling jitter.
const countdownTolerance = 2*sim.Duration(jiffies.JiffyDuration) + JitterTolerance

// isCountdownStep reports whether next continues a countdown from prev.
func isCountdownStep(prev, next Use) bool {
	gap := next.SetAt.Sub(prev.SetAt)
	if gap <= 0 {
		return false
	}
	expected := prev.Timeout - gap
	if expected < 0 {
		expected = 0
	}
	diff := next.Timeout - expected
	if diff < 0 {
		diff = -diff
	}
	// A genuine countdown strictly decreases; a watchdog re-set to the
	// same value must not match.
	return diff <= countdownTolerance && next.Timeout < prev.Timeout-JitterTolerance
}

// CountdownChains finds maximal countdown runs of length ≥ 2 in a timer's
// uses.
func CountdownChains(tl *TimerLife) []Chain {
	var chains []Chain
	i := 0
	for i < len(tl.Uses)-1 {
		j := i
		for j+1 < len(tl.Uses) && isCountdownStep(tl.Uses[j], tl.Uses[j+1]) {
			j++
		}
		if j > i {
			chains = append(chains, Chain{Start: i, End: j + 1})
			i = j + 1
		} else {
			i++
		}
	}
	return chains
}

// chainMembership marks which uses belong to some countdown chain.
func chainMembership(tl *TimerLife) []bool {
	in := make([]bool, len(tl.Uses))
	for _, c := range CountdownChains(tl) {
		for i := c.Start; i < c.End; i++ {
			in[i] = true
		}
	}
	return in
}

// SeriesPoint is one dot of Figure 4: a set operation at T with value V.
type SeriesPoint struct {
	T sim.Time
	V sim.Duration
}

// SetSeries extracts (time, value) points for timers whose origin has the
// given process prefix — the Figure 4 dot plot of the X server's select
// timer.
func SetSeries(ls []*TimerLife, process string) []SeriesPoint {
	var pts []SeriesPoint
	for _, tl := range ls {
		if processOf(tl.Origin) != process {
			continue
		}
		for _, u := range tl.Uses {
			pts = append(pts, SeriesPoint{T: u.SetAt, V: u.Timeout})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return pts
}
