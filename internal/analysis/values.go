package analysis

import (
	"sort"
	"strings"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/sim"
)

// ValueOptions selects and bins timeout values for the common-value
// histograms (Figures 3, 5, 6, 7).
type ValueOptions struct {
	// UserOnly restricts to user-space accesses (Figure 6).
	UserOnly bool
	// ExcludeProcesses drops timers whose origin belongs to these processes
	// (origin prefix before '/'); Figure 5 excludes Xorg and icewm.
	ExcludeProcesses []string
	// CollapseCountdowns replaces each detected select-countdown chain with
	// a single sample of its initial (programmer-chosen) value (Figure 5).
	CollapseCountdowns bool
	// JiffyBinKernel bins kernel-side values to whole jiffies, as the
	// Linux analysis does; user values always bin to 100 µs.
	JiffyBinKernel bool
	// MinSharePercent drops entries below this share of all samples
	// (the paper's figures use 2 %).
	MinSharePercent float64
}

// ValueEntry is one histogram bar.
type ValueEntry struct {
	// Value is the binned timeout.
	Value sim.Duration
	// Jiffies is the jiffy count when jiffy-binned (0 otherwise).
	Jiffies uint64
	// Count is the number of samples in the bin.
	Count int
	// Share is Count as a percentage of all samples (before thresholding).
	Share float64
}

// userBin quantizes user-supplied values to 100 µs.
const userBin = 100 * sim.Microsecond

func processOf(origin string) string {
	if i := strings.IndexByte(origin, '/'); i >= 0 {
		return origin[:i]
	}
	return origin
}

func (o ValueOptions) excluded(tl *TimerLife) bool {
	return o.excludedAttrs(tl.User, tl.Origin)
}

// excludedAttrs is the attribute-level form of excluded, shared with the
// streaming pipeline (which folds uses before a full TimerLife exists).
func (o ValueOptions) excludedAttrs(user bool, origin string) bool {
	if o.UserOnly && !user {
		return true
	}
	proc := processOf(origin)
	for _, p := range o.ExcludeProcesses {
		if proc == p {
			return true
		}
	}
	return false
}

func (o ValueOptions) bin(tl *TimerLife, v sim.Duration) (sim.Duration, uint64) {
	return o.binAttrs(tl.User, v)
}

// binAttrs is the attribute-level form of bin, shared with the streaming
// pipeline.
func (o ValueOptions) binAttrs(user bool, v sim.Duration) (sim.Duration, uint64) {
	if v < 0 {
		v = 0
	}
	if o.JiffyBinKernel && !user {
		j := jiffies.MsecsToJiffies(v)
		return sim.Duration(j) * jiffies.JiffyDuration, j
	}
	binned := (v + userBin/2) / userBin * userBin
	return binned, 0
}

// chainProvider lazily supplies a timer's countdown chains. The pipeline
// memoizes one computation per timer and shares it across every accumulator
// that collapses countdowns.
type chainProvider func() []Chain

// valueAcc accumulates one common-value histogram. It is the single
// implementation behind both CommonValues and the pipeline, so the two can
// never disagree.
type valueAcc struct {
	opts   ValueOptions
	counts map[valueKey]int
	total  int
}

type valueKey struct {
	v sim.Duration
	j uint64
}

func newValueAcc(opts ValueOptions) *valueAcc {
	return &valueAcc{opts: opts, counts: make(map[valueKey]int)}
}

func (a *valueAcc) add(tl *TimerLife, v sim.Duration) {
	a.addAttrs(tl.User, v)
}

// addAttrs bins and counts one sample given the timer's attributes; the
// streaming pipeline calls it as uses resolve.
func (a *valueAcc) addAttrs(user bool, v sim.Duration) {
	b, j := a.opts.binAttrs(user, v)
	a.counts[valueKey{b, j}]++
	a.total++
}

// observe folds one timer's uses into the histogram.
func (a *valueAcc) observe(tl *TimerLife, chains chainProvider) {
	if a.opts.excluded(tl) {
		return
	}
	if a.opts.CollapseCountdowns {
		cs := chains()
		for _, chain := range cs {
			a.add(tl, tl.Uses[chain.Start].Timeout)
			// Chain members beyond the first are dropped.
		}
		for i, inChain := range chainMembership(len(tl.Uses), cs) {
			if !inChain {
				a.add(tl, tl.Uses[i].Timeout)
			}
		}
	} else {
		for _, u := range tl.Uses {
			a.add(tl, u.Timeout)
		}
	}
}

// merge folds another accumulator over the same options into a. Histogram
// addition is commutative, so shard merge order cannot influence the result
// (the map-range order visibly cannot either: += into a map).
func (a *valueAcc) merge(o *valueAcc) {
	for k, c := range o.counts {
		a.counts[k] += c
	}
	a.total += o.total
}

// clone returns an independent deep copy, for snapshotting a live shard
// without disturbing it.
func (a *valueAcc) clone() *valueAcc {
	c := &valueAcc{opts: a.opts, counts: make(map[valueKey]int, len(a.counts)), total: a.total}
	for k, n := range a.counts {
		c.counts[k] = n
	}
	return c
}

// finish applies the share threshold and returns the sorted entries plus the
// total sample count.
func (a *valueAcc) finish() ([]ValueEntry, int) {
	entries := make([]ValueEntry, 0, len(a.counts))
	for k, c := range a.counts {
		share := 100 * float64(c) / float64(a.total)
		if share < a.opts.MinSharePercent {
			continue
		}
		entries = append(entries, ValueEntry{Value: k.v, Jiffies: k.j, Count: c, Share: share})
	}
	// A user-space bin and a jiffy bin can land on the same Value (e.g. a
	// user 5 s next to kernel jiffies 1250 = 5 s); break the tie on Jiffies
	// so the order never depends on map iteration.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value < entries[j].Value
		}
		return entries[i].Jiffies < entries[j].Jiffies
	})
	return entries, a.total
}

// CommonValues computes the binned value histogram over all sets in the
// lifecycles, applying the options' filters. It returns the entries at or
// above the share threshold (sorted by value) and the total sample count.
func CommonValues(ls []*TimerLife, opts ValueOptions) ([]ValueEntry, int) {
	a := newValueAcc(opts)
	for _, tl := range ls {
		tl := tl
		a.observe(tl, func() []Chain { return CountdownChains(tl) })
	}
	return a.finish()
}

// Chain is a run of uses forming a select-style countdown: each re-set's
// value is the previous value minus the elapsed time — Linux writing the
// remaining timeout back and the program re-issuing it (Figure 4).
type Chain struct {
	// Start and End index tl.Uses (End exclusive).
	Start, End int
}

// Len returns the number of uses in the chain.
func (c Chain) Len() int { return c.End - c.Start }

// countdownTolerance allows for jiffy quantization of the written-back
// remainder plus scheduling jitter.
const countdownTolerance = 2*sim.Duration(jiffies.JiffyDuration) + JitterTolerance

// isCountdownStep reports whether next continues a countdown from prev.
func isCountdownStep(prev, next Use) bool {
	gap := next.SetAt.Sub(prev.SetAt)
	if gap <= 0 {
		return false
	}
	expected := prev.Timeout - gap
	if expected < 0 {
		expected = 0
	}
	diff := next.Timeout - expected
	if diff < 0 {
		diff = -diff
	}
	// A genuine countdown strictly decreases; a watchdog re-set to the
	// same value must not match.
	return diff <= countdownTolerance && next.Timeout < prev.Timeout-JitterTolerance
}

// CountdownChains finds maximal countdown runs of length ≥ 2 in a timer's
// uses.
func CountdownChains(tl *TimerLife) []Chain {
	var chains []Chain
	i := 0
	for i < len(tl.Uses)-1 {
		j := i
		for j+1 < len(tl.Uses) && isCountdownStep(tl.Uses[j], tl.Uses[j+1]) {
			j++
		}
		if j > i {
			chains = append(chains, Chain{Start: i, End: j + 1})
			i = j + 1
		} else {
			i++
		}
	}
	return chains
}

// chainMembership marks which of n uses belong to some countdown chain.
func chainMembership(n int, chains []Chain) []bool {
	in := make([]bool, n)
	for _, c := range chains {
		for i := c.Start; i < c.End; i++ {
			in[i] = true
		}
	}
	return in
}

// SeriesPoint is one dot of Figure 4: a set operation at T with value V.
type SeriesPoint struct {
	T sim.Time
	V sim.Duration
}

// seriesAcc accumulates the Figure 4 dot plot for one process.
type seriesAcc struct {
	process string
	pts     []SeriesPoint
}

func (a *seriesAcc) observe(tl *TimerLife) {
	if processOf(tl.Origin) != a.process {
		return
	}
	for _, u := range tl.Uses {
		a.pts = append(a.pts, SeriesPoint{T: u.SetAt, V: u.Timeout})
	}
}

func (a *seriesAcc) finish() []SeriesPoint {
	sortSeries(a.pts)
	return a.pts
}

// sortSeries canonically orders Figure 4 points. The V tie-break matters:
// distinct timers can arm at the same instant, and sort.Slice is unstable,
// so ordering by T alone would let accumulation order (which differs across
// shard counts) leak into the finished slice.
func sortSeries(pts []SeriesPoint) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].T != pts[j].T {
			return pts[i].T < pts[j].T
		}
		return pts[i].V < pts[j].V
	})
}

// SetSeries extracts (time, value) points for timers whose origin has the
// given process prefix — the Figure 4 dot plot of the X server's select
// timer.
func SetSeries(ls []*TimerLife, process string) []SeriesPoint {
	a := seriesAcc{process: process}
	for _, tl := range ls {
		a.observe(tl)
	}
	return a.finish()
}
