package analysis

import (
	"sort"

	"timerstudy/internal/sim"
)

// OriginRow is one line of Table 3: a timeout value, where it comes from,
// and its usage class.
type OriginRow struct {
	// Value is the modal timeout of the origin's timers (jiffy-binned for
	// kernel timers).
	Value sim.Duration
	// Origin is the source label.
	Origin string
	// Class is the dominant usage pattern.
	Class Class
	// Sets counts arming operations from this origin.
	Sets int
	// Timers counts distinct timer identities.
	Timers int
}

// originAcc accumulates Table 3; it is the single implementation behind
// OriginTable and the pipeline. The caller supplies each timer's class so
// classification can be computed once and shared with the Figure 2 tally.
type originAcc struct {
	minSets  int
	vo       ValueOptions
	byOrigin map[string]*originStats
}

type originStats struct {
	values map[sim.Duration]int
	class  [nClasses]int
	sets   int
	timers int
}

func newOriginAcc(minSets int) *originAcc {
	return &originAcc{
		minSets:  minSets,
		vo:       ValueOptions{JiffyBinKernel: true},
		byOrigin: make(map[string]*originStats),
	}
}

func (a *originAcc) observe(tl *TimerLife, class Class) {
	if len(tl.Uses) == 0 {
		return
	}
	a.observeTimer(tl.Origin, class)
	for _, u := range tl.Uses {
		a.observeUse(tl.Origin, tl.User, u.Timeout)
	}
}

func (a *originAcc) stats(origin string) *originStats {
	s, ok := a.byOrigin[origin]
	if !ok {
		s = &originStats{values: map[sim.Duration]int{}}
		a.byOrigin[origin] = s
	}
	return s
}

// observeUse folds one arming into its origin's value histogram; the
// streaming pipeline calls it as uses open.
func (a *originAcc) observeUse(origin string, user bool, v sim.Duration) {
	s := a.stats(origin)
	b, _ := a.vo.binAttrs(user, v)
	s.values[b]++
	s.sets++
}

// observeTimer folds one timer's identity and class into its origin row;
// the streaming pipeline calls it at end of trace, for timers with at
// least one use.
func (a *originAcc) observeTimer(origin string, class Class) {
	s := a.stats(origin)
	s.timers++
	s.class[class]++
}

// merge folds another accumulator into a. Same-named origins from different
// shards combine by plain addition of their value histograms and tallies,
// so shard merge order cannot influence the finished rows.
func (a *originAcc) merge(o *originAcc) {
	for origin, os := range o.byOrigin {
		s := a.stats(origin)
		s.sets += os.sets
		s.timers += os.timers
		for c := range os.class {
			s.class[c] += os.class[c]
		}
		for v, n := range os.values {
			s.values[v] += n
		}
	}
}

// clone returns an independent deep copy, for snapshotting a live shard
// without disturbing it.
func (a *originAcc) clone() *originAcc {
	c := &originAcc{minSets: a.minSets, vo: a.vo, byOrigin: make(map[string]*originStats, len(a.byOrigin))}
	for origin, s := range a.byOrigin {
		cs := &originStats{values: make(map[sim.Duration]int, len(s.values)), class: s.class, sets: s.sets, timers: s.timers}
		for v, n := range s.values {
			cs.values[v] = n
		}
		c.byOrigin[origin] = cs
	}
	return c
}

func (a *originAcc) finish() []OriginRow {
	rows := make([]OriginRow, 0, len(a.byOrigin))
	for origin, s := range a.byOrigin {
		if s.sets < a.minSets {
			continue
		}
		var modal sim.Duration
		best := -1
		for v, c := range s.values {
			if c > best || (c == best && v < modal) {
				modal, best = v, c
			}
		}
		classBest, class := -1, ClassOther
		for c := range s.class {
			if s.class[c] > classBest {
				classBest, class = s.class[c], Class(c)
			}
		}
		rows = append(rows, OriginRow{
			Value: modal, Origin: origin, Class: class,
			Sets: s.sets, Timers: s.timers,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value < rows[j].Value
		}
		return rows[i].Origin < rows[j].Origin
	})
	return rows
}

// OriginTable groups lifecycles by origin, finds each origin's modal
// timeout value and dominant class, and returns rows sorted by value then
// origin — the shape of Table 3. Origins with fewer than minSets sets are
// dropped.
func OriginTable(ls []*TimerLife, minSets int) []OriginRow {
	a := newOriginAcc(minSets)
	for _, tl := range ls {
		a.observe(tl, Classify(tl))
	}
	return a.finish()
}
