package analysis

import (
	"sort"

	"timerstudy/internal/sim"
)

// OriginRow is one line of Table 3: a timeout value, where it comes from,
// and its usage class.
type OriginRow struct {
	// Value is the modal timeout of the origin's timers (jiffy-binned for
	// kernel timers).
	Value sim.Duration
	// Origin is the source label.
	Origin string
	// Class is the dominant usage pattern.
	Class Class
	// Sets counts arming operations from this origin.
	Sets int
	// Timers counts distinct timer identities.
	Timers int
}

// OriginTable groups lifecycles by origin, finds each origin's modal
// timeout value and dominant class, and returns rows sorted by value then
// origin — the shape of Table 3. Origins with fewer than minSets sets are
// dropped.
func OriginTable(ls []*TimerLife, minSets int) []OriginRow {
	type acc struct {
		values map[sim.Duration]int
		class  [nClasses]int
		sets   int
		timers int
	}
	byOrigin := make(map[string]*acc)
	vo := ValueOptions{JiffyBinKernel: true}
	for _, tl := range ls {
		if len(tl.Uses) == 0 {
			continue
		}
		a, ok := byOrigin[tl.Origin]
		if !ok {
			a = &acc{values: map[sim.Duration]int{}}
			byOrigin[tl.Origin] = a
		}
		a.timers++
		a.class[Classify(tl)]++
		for _, u := range tl.Uses {
			b, _ := vo.bin(tl, u.Timeout)
			a.values[b]++
			a.sets++
		}
	}
	rows := make([]OriginRow, 0, len(byOrigin))
	for origin, a := range byOrigin {
		if a.sets < minSets {
			continue
		}
		var modal sim.Duration
		best := -1
		for v, c := range a.values {
			if c > best || (c == best && v < modal) {
				modal, best = v, c
			}
		}
		classBest, class := -1, ClassOther
		for c := range a.class {
			if a.class[c] > classBest {
				classBest, class = a.class[c], Class(c)
			}
		}
		rows = append(rows, OriginRow{
			Value: modal, Origin: origin, Class: class,
			Sets: a.sets, Timers: a.timers,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value < rows[j].Value
		}
		return rows[i].Origin < rows[j].Origin
	})
	return rows
}
