package analysis

import (
	"sort"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// RateSeries is one line of Figure 1: timers set per second by a group of
// processes.
type RateSeries struct {
	// Group is the display label ("Outlook", "Kernel"...).
	Group string
	// PerSecond holds one sample per whole second of the trace.
	PerSecond []int
}

// Grouper maps a record to a Figure 1 line. Returning "" drops the record.
type Grouper func(r trace.Record, origin string) string

// SetRates buckets set operations into one-second bins per group, over
// [0, duration), in one streaming pass. For a fallible file-backed Source
// the rates cover the records read before any error.
func SetRates(src trace.Source, duration sim.Duration, group Grouper) []RateSeries {
	buckets := int(duration / sim.Second)
	if buckets <= 0 {
		return nil
	}
	series := make(map[string][]int)
	_ = src.ForEach(func(r trace.Record) {
		if r.Op != trace.OpSet && r.Op != trace.OpWait {
			return
		}
		g := group(r, src.OriginName(r.Origin))
		if g == "" {
			return
		}
		sec := int(r.T / sim.Time(sim.Second))
		if sec < 0 || sec >= buckets {
			return
		}
		s, ok := series[g]
		if !ok {
			s = make([]int, buckets)
			series[g] = s
		}
		s[sec]++
	})
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]RateSeries, 0, len(names))
	for _, n := range names {
		out = append(out, RateSeries{Group: n, PerSecond: series[n]})
	}
	return out
}

// Peak returns the maximum per-second rate in a series.
func (s RateSeries) Peak() int {
	max := 0
	for _, v := range s.PerSecond {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the average per-second rate.
func (s RateSeries) Mean() float64 {
	if len(s.PerSecond) == 0 {
		return 0
	}
	sum := 0
	for _, v := range s.PerSecond {
		sum += v
	}
	return float64(sum) / float64(len(s.PerSecond))
}
