package analysis

import (
	"math"
	"math/bits"

	"timerstudy/internal/sim"
)

// logBinner replaces the per-record math.Log10 call in scatter binning with
// integer comparisons: a bit-scan decade lookup into a precomputed boundary
// table, then a short linear scan over that decade's bin boundaries.
//
// The boundaries are found by binary search over the *original float
// expression* floor(Log10(d.Seconds()) * binsPerDecade) — not from exact
// mathematics — so the integer path reproduces the float path bit-for-bit,
// including its rounding quirks (e.g. Log10(0.001) evaluating to
// -2.9999999999999996 puts 1 ms in bin -15 at 5 bins/decade, and so does
// this table). TestLogBinnerMatchesFloat pins the equivalence.
type logBinner struct {
	binsPerDecade int
	// kmin is the bin of the smallest representable timeout (1 ns).
	kmin int
	// bounds[i] is the smallest nanosecond value whose bin is kmin+i;
	// bounds[0] == 1. A value v lands in bin kmin+i where i is the last
	// index with bounds[i] <= v.
	bounds []int64
	// scanFrom[L] indexes into bounds for the first candidate bin of a
	// value with bit length L, so the per-record scan covers at most one
	// decade's worth of boundaries (binsPerDecade+2 entries).
	scanFrom [65]int32
}

// floatBin is the original per-record computation, kept as the oracle the
// table is built (and tested) against.
func floatBin(v int64, binsPerDecade int) int {
	lx := math.Log10(sim.Duration(v).Seconds())
	return int(math.Floor(lx * float64(binsPerDecade)))
}

func newLogBinner(binsPerDecade int) *logBinner {
	lb := &logBinner{binsPerDecade: binsPerDecade}
	lb.kmin = floatBin(1, binsPerDecade)
	kmax := floatBin(math.MaxInt64, binsPerDecade)
	lb.bounds = make([]int64, 0, kmax-lb.kmin+1)
	lb.bounds = append(lb.bounds, 1)
	for k := lb.kmin + 1; k <= kmax; k++ {
		// Smallest v with floatBin(v) >= k, by binary search. Log10 is
		// monotone to well under one bin width here, so the search is
		// sound; the postcondition check below would catch a violation.
		lo, hi := lb.bounds[len(lb.bounds)-1], int64(math.MaxInt64)
		for lo < hi {
			mid := lo + (hi-lo)/2
			if floatBin(mid, binsPerDecade) >= k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if floatBin(lo, binsPerDecade) < k || (lo > 1 && floatBin(lo-1, binsPerDecade) >= k) {
			panic("analysis: log-bin boundary search lost monotonicity")
		}
		lb.bounds = append(lb.bounds, lo)
	}
	// scanFrom[L]: bin index of the smallest value with bit length L.
	i := 0
	for L := 1; L <= 64; L++ {
		v := int64(1) << (L - 1)
		if L == 64 {
			v = math.MaxInt64
		}
		for i+1 < len(lb.bounds) && lb.bounds[i+1] <= v {
			i++
		}
		lb.scanFrom[L] = int32(i)
	}
	return lb
}

// bin returns the scatter x-bin for a timeout of v nanoseconds (v >= 1),
// identical to floatBin(v) without the Log10.
//
//lint:allocfree per-record hot path: one bit scan plus a short table walk
func (lb *logBinner) bin(v int64) int {
	i := int(lb.scanFrom[bits.Len64(uint64(v))])
	for i+1 < len(lb.bounds) && lb.bounds[i+1] <= v {
		i++
	}
	return lb.kmin + i
}
