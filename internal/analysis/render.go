package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"timerstudy/internal/sim"
)

// Rendering produces the ASCII equivalents of the paper's tables and
// figures, used by cmd/timerstat, cmd/experiments and EXPERIMENTS.md.

// fmtSeconds prints a duration the way the paper labels axes: seconds with
// enough precision to distinguish 0.4999 from 0.5.
func fmtSeconds(d sim.Duration) string {
	s := d.Seconds()
	switch {
	case s == math.Trunc(s):
		return fmt.Sprintf("%.0f", s)
	case s >= 0.1:
		return strings.TrimRight(fmt.Sprintf("%.4f", s), "0")
	default:
		return strings.TrimRight(fmt.Sprintf("%.6f", s), "0")
	}
}

// RenderSummaryTable renders Tables 1-2: one column per workload.
func RenderSummaryTable(title string, names []string, sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s", "")
	for _, n := range names {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	row := func(label string, get func(Summary) uint64) {
		fmt.Fprintf(&b, "%-12s", label)
		for _, s := range sums {
			fmt.Fprintf(&b, "%12d", get(s))
		}
		b.WriteByte('\n')
	}
	row("Timers", func(s Summary) uint64 { return uint64(s.Timers) })
	row("Concurrency", func(s Summary) uint64 { return uint64(s.Concurrency) })
	row("Accesses", func(s Summary) uint64 { return s.Accesses })
	row("User-space", func(s Summary) uint64 { return s.UserSpace })
	row("Kernel", func(s Summary) uint64 { return s.Kernel })
	row("Set", func(s Summary) uint64 { return s.Set })
	row("Expired", func(s Summary) uint64 { return s.Expired })
	row("Canceled", func(s Summary) uint64 { return s.Canceled })
	return b.String()
}

// RenderClassShares renders Figure 2: usage-pattern percentages per
// workload.
func RenderClassShares(names []string, shares []ClassShares) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "class")
	for _, n := range names {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	for _, c := range Classes() {
		fmt.Fprintf(&b, "%-10s", c)
		for _, s := range shares {
			fmt.Fprintf(&b, "%11.1f%%", s.Share(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderValues renders a common-value histogram (Figures 3, 5-7).
func RenderValues(entries []ValueEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-9s %8s  %s\n", "timeout[s]", "(jiffies)", "share", "")
	for _, e := range entries {
		jif := ""
		if e.Jiffies > 0 {
			jif = fmt.Sprintf("(%d)", e.Jiffies)
		}
		bar := strings.Repeat("#", int(e.Share+0.5))
		fmt.Fprintf(&b, "%-14s %-9s %7.1f%%  %s\n", fmtSeconds(e.Value), jif, e.Share, bar)
	}
	return b.String()
}

// RenderScatter renders Figures 8-11: ratio (y) vs log-timeout (x) with
// density glyphs (". o O @" by count magnitude).
func RenderScatter(points []ScatterPoint) string {
	if len(points) == 0 {
		return "(no points)\n"
	}
	const (
		minExp = -4 // 0.0001 s
		maxExp = 4  // 10000 s
		cols   = (maxExp - minExp) * 5
		rowPct = 10
		rows   = 250/rowPct + 1
	)
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, cols)
	}
	for _, p := range points {
		if p.Timeout <= 0 {
			// Log10(0) is -Inf and int(NaN) is unspecified; a zero timeout
			// has no sensible log-scale column anyway.
			continue
		}
		x := int((math.Log10(p.Timeout.Seconds()) - minExp) * 5)
		y := int(p.RatioPct) / rowPct
		if x < 0 || x >= cols || y < 0 || y >= rows {
			continue
		}
		grid[y][x] += p.Count
	}
	glyph := func(c int) byte {
		switch {
		case c == 0:
			return ' '
		case c < 10:
			return '.'
		case c < 100:
			return 'o'
		case c < 1000:
			return 'O'
		default:
			return '@'
		}
	}
	var b strings.Builder
	for y := rows - 1; y >= 0; y-- {
		fmt.Fprintf(&b, "%4d%% |", y*rowPct)
		for x := 0; x < cols; x++ {
			b.WriteByte(glyph(grid[y][x]))
		}
		b.WriteByte('\n')
	}
	b.WriteString("      +" + strings.Repeat("-", cols) + "\n")
	b.WriteString("       ")
	for e := minExp; e <= maxExp; e++ {
		lbl := fmt.Sprintf("1e%d", e)
		b.WriteString(lbl)
		if e < maxExp {
			b.WriteString(strings.Repeat(" ", 5-len(lbl)))
		}
	}
	b.WriteString("  timeout [s]\n")
	return b.String()
}

// RenderSeries renders Figure 4: set-time vs value dot plot.
func RenderSeries(points []SeriesPoint, duration sim.Duration) string {
	if len(points) == 0 {
		return "(no points)\n"
	}
	if duration <= 0 {
		// A zero-length trace would divide by zero below; pretend it spans
		// one tick so the lone column still renders.
		duration = 1
	}
	var maxV sim.Duration
	for _, p := range points {
		if p.V > maxV {
			maxV = p.V
		}
	}
	if maxV == 0 {
		maxV = sim.Second
	}
	const rows, cols = 20, 72
	grid := make([][]bool, rows)
	for i := range grid {
		grid[i] = make([]bool, cols)
	}
	for _, p := range points {
		x := int(int64(p.T) * int64(cols) / int64(duration))
		y := int(int64(p.V) * int64(rows-1) / int64(maxV))
		if x >= cols {
			x = cols - 1
		}
		if x < 0 || y < 0 {
			continue
		}
		grid[y][x] = true
	}
	var b strings.Builder
	for y := rows - 1; y >= 0; y-- {
		fmt.Fprintf(&b, "%8s |", fmtSeconds(maxV*sim.Duration(y)/sim.Duration(rows-1))+"s")
		for x := 0; x < cols; x++ {
			if grid[y][x] {
				b.WriteByte('*')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "         +%s\n", strings.Repeat("-", cols))
	endLabel := fmtSeconds(sim.Duration(duration)) + "s"
	fmt.Fprintf(&b, "          0%s%s  time\n", strings.Repeat(" ", cols-len(endLabel)-2), endLabel)
	return b.String()
}

// RenderRates renders Figure 1: per-group mean and peak set rates plus a
// compact time series.
func RenderRates(series []RateSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s  per-second series (log scale: .=1-9 o=10-99 O=100-999 @=1000+)\n",
		"group", "mean/s", "peak/s")
	for _, s := range series {
		fmt.Fprintf(&b, "%-10s %10.1f %10d  ", s.Group, s.Mean(), s.Peak())
		for _, v := range s.PerSecond {
			switch {
			case v == 0:
				b.WriteByte('_')
			case v < 10:
				b.WriteByte('.')
			case v < 100:
				b.WriteByte('o')
			case v < 1000:
				b.WriteByte('O')
			default:
				b.WriteByte('@')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderOrigins renders Table 3.
func RenderOrigins(rows []OriginRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-44s %-10s %8s\n", "timeout[s]", "origin", "class", "sets")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-44s %-10s %8d\n", fmtSeconds(r.Value), r.Origin, r.Class, r.Sets)
	}
	return b.String()
}

// SortedByShare returns entries sorted by descending share (for summaries).
func SortedByShare(entries []ValueEntry) []ValueEntry {
	out := append([]ValueEntry(nil), entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}

// RenderRelations renders the Section 5.2 inferred-relations report,
// aggregating relations between the same origin pair (distinct timer
// structs of one call site, e.g. per-worker watchdogs).
func RenderRelations(rels []InferredRelation) string {
	if len(rels) == 0 {
		return "(no relations inferred)\n"
	}
	type key struct {
		from, to string
		kind     RelationKind
	}
	type agg struct {
		support int
		conf    float64
		pairs   int
	}
	m := map[key]*agg{}
	var order []key
	for _, r := range rels {
		k := key{r.From.Origin, r.To.Origin, r.Kind}
		a, ok := m[k]
		if !ok {
			a = &agg{}
			m[k] = a
			order = append(order, k)
		}
		a.support += r.Support
		if r.Confidence > a.conf {
			a.conf = r.Confidence
		}
		a.pairs++
	}
	sort.Slice(order, func(i, j int) bool { return m[order[i]].support > m[order[j]].support })
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-12s %-44s %8s %6s %6s\n", "from", "relation", "to", "support", "conf", "pairs")
	for _, k := range order {
		a := m[k]
		fmt.Fprintf(&b, "%-44s %-12s %-44s %8d %5.0f%% %6d\n",
			k.from, k.kind, k.to, a.support, 100*a.conf, a.pairs)
	}
	return b.String()
}
