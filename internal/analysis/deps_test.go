package analysis

import (
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

func TestInferDependency(t *testing.T) {
	// Classic retry chain: when timer 1 (stage A) ends, timer 2 (stage B)
	// is set within a millisecond.
	b := newTB()
	t0 := sim.Duration(0)
	for i := 0; i < 10; i++ {
		b.set(t0, 1, sim.Second)
		b.expire(t0+sim.Second, 1)
		b.set(t0+sim.Second+500*sim.Microsecond, 2, 2*sim.Second)
		b.cancel(t0+2*sim.Second, 2)
		t0 += 10 * sim.Second
	}
	rels := InferRelations(Lifecycles(b.tr), InferOptions{})
	found := false
	for _, r := range rels {
		if r.Kind == RelDependsOn && r.From.ID == 1 && r.To.ID == 2 {
			found = true
			if r.Support < 8 || r.Confidence < 0.8 {
				t.Fatalf("weak relation: %+v", r)
			}
		}
		if r.Kind == RelDependsOn && r.From.ID == 2 && r.To.ID == 1 {
			// The reverse direction (1 set ~8s after 2 ends) must not
			// match at a 10 ms window.
			t.Fatalf("spurious reverse dependency: %+v", r)
		}
	}
	if !found {
		t.Fatalf("dependency not inferred: %+v", rels)
	}
}

func TestInferOverlap(t *testing.T) {
	// Two guards armed together and canceled together: the paper's case
	// 1c (keepalive + retransmission watching the same liveness).
	b := newTB()
	t0 := sim.Duration(0)
	for i := 0; i < 10; i++ {
		b.set(t0, 1, 30*sim.Second)
		b.set(t0+200*sim.Microsecond, 2, 60*sim.Second)
		b.cancel(t0+sim.Second, 1)
		b.cancel(t0+sim.Second+300*sim.Microsecond, 2)
		t0 += 20 * sim.Second
	}
	rels := InferRelations(Lifecycles(b.tr), InferOptions{})
	for _, r := range rels {
		if r.Kind == RelOverlaps {
			return
		}
	}
	t.Fatalf("overlap not inferred: %+v", rels)
}

func TestNoRelationsBetweenIndependentTimers(t *testing.T) {
	// Two periodic timers with incommensurate phases: nothing inferred.
	b := newTB()
	for i := 0; i < 30; i++ {
		at := sim.Duration(i) * 1700 * sim.Millisecond
		b.set(at, 1, 1700*sim.Millisecond)
		b.expire(at+1700*sim.Millisecond, 1)
	}
	for i := 0; i < 40; i++ {
		at := 333*sim.Millisecond + sim.Duration(i)*1300*sim.Millisecond
		b.set(at, 2, 1300*sim.Millisecond)
		b.expire(at+1300*sim.Millisecond, 2)
	}
	rels := InferRelations(Lifecycles(b.tr), InferOptions{})
	for _, r := range rels {
		if (r.From.ID == 1 && r.To.ID == 2) || (r.From.ID == 2 && r.To.ID == 1) {
			t.Fatalf("spurious relation: %+v", r)
		}
	}
}

func TestInferDependencySuppressesDuplicateOverlap(t *testing.T) {
	// A tight chain (end → set within the window) must be reported as a
	// dependency, not doubly as an overlap.
	b := newTB()
	t0 := sim.Duration(0)
	for i := 0; i < 10; i++ {
		b.set(t0, 1, sim.Millisecond)
		b.expire(t0+sim.Millisecond, 1)
		b.set(t0+sim.Millisecond+100*sim.Microsecond, 2, sim.Millisecond)
		b.expire(t0+2*sim.Millisecond, 2)
		t0 += sim.Second
	}
	rels := InferRelations(Lifecycles(b.tr), InferOptions{})
	for _, r := range rels {
		if r.Kind == RelOverlaps && ((r.From.ID == 1 && r.To.ID == 2) || (r.From.ID == 2 && r.To.ID == 1)) {
			t.Fatalf("dependency double-reported as overlap: %+v", rels)
		}
	}
}

func TestInferOnRealWebserverTrace(t *testing.T) {
	// Smoke: the webserver's per-connection timers (keepalive, watchdog,
	// delack families) are mutually coupled; inference should surface
	// something without drowning in noise.
	b := newTB()
	// Simulate the per-request pattern: keepalive + watchdog set at
	// accept; both canceled at close.
	t0 := sim.Duration(0)
	for i := 0; i < 50; i++ {
		b.log(t0, trace.OpSet, 10, 7200*sim.Second, "kernel/tcp:keepalive", 0)
		b.log(t0+100*sim.Microsecond, trace.OpSet, 11, 15*sim.Second, "apache2/poll", trace.FlagUser)
		b.log(t0+80*sim.Millisecond, trace.OpCancel, 11, 0, "apache2/poll", trace.FlagUser)
		b.log(t0+80*sim.Millisecond+200*sim.Microsecond, trace.OpCancel, 10, 0, "kernel/tcp:keepalive", 0)
		t0 += sim.Second
	}
	rels := InferRelations(Lifecycles(b.tr), InferOptions{})
	if len(rels) == 0 {
		t.Fatal("nothing inferred from the per-connection pattern")
	}
	if len(rels) > 4 {
		t.Fatalf("noise: %d relations", len(rels))
	}
}
