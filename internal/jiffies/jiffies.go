// Package jiffies reimplements the Linux 2.6.23 standard kernel timer
// subsystem the paper instruments (Section 2.1): jiffy-granular timers on a
// cascading hierarchical timing wheel, driven by a periodic tick, with the
// three power-saving extensions the paper discusses — round_jiffies
// batching (2.6.20), dynticks/NO_HZ idle tick skipping (2.6.21), and
// deferrable timers (2.6.22) — plus the separate high-resolution timer
// facility (2.6.16).
//
// The package exposes the same primitive operations the paper's
// instrumentation hooks: init_timer, __mod_timer, del_timer and
// __run_timers, and logs every one of them to a trace.Buffer in the format
// internal/analysis consumes.
package jiffies

import (
	"fmt"

	"timerstudy/internal/sim"
	"timerstudy/internal/timerwheel"
	"timerstudy/internal/trace"
)

// HZ is the tick rate the paper's kernel used (CONFIG_HZ=250).
const HZ = 250

// JiffyDuration is the length of one jiffy: 4 ms at 250 Hz.
const JiffyDuration = sim.Duration(int64(sim.Second) / HZ)

// TimerState mirrors the lifecycle of a struct timer_list.
type TimerState uint8

const (
	// StateUninit: init_timer has not run.
	StateUninit TimerState = iota
	// StateIdle: initialized but not pending.
	StateIdle
	// StatePending: armed in the wheel.
	StatePending
)

// Timer is the analog of Linux struct timer_list. Like the kernel's, it is
// typically statically allocated by its owning subsystem and reused for
// every timeout that subsystem sets, which is what lets the paper's analysis
// correlate successive uses (Section 4.1.1).
type Timer struct {
	base  *Base
	entry timerwheel.Timer
	fn    func()
	state TimerState
	id    uint64
	gen   uint64 // bumped on every Mod/Del, validates nextExpiry heap entries

	// Origin is the "call stack" label recorded on every operation.
	Origin string
	// PID attributes the timer to a process (0 = kernel).
	PID int32
	// Deferrable marks the 2.6.22 flag: the timer does not wake an idle CPU.
	Deferrable bool
	// UserFlagged marks timers armed on behalf of user space (syscall
	// timeouts); it sets trace.FlagUser on the records.
	UserFlagged bool
	// Quiet suppresses the base's own trace records. The syscall layer
	// uses it for timers whose operations it logs itself at the syscall
	// boundary, where the user-supplied timeout is visible without jitter
	// (Section 3.1) — each access is recorded exactly once.
	Quiet bool

	originID uint32
}

// ID returns the timer's stable identity (the analog of its kernel address).
func (t *Timer) ID() uint64 { return t.id }

// SetCallback replaces the expiry callback (setup_timer on a live struct).
// The syscall layer uses it to bind per-call continuations to a reused
// on-stack timer structure.
func (t *Timer) SetCallback(fn func()) { t.fn = fn }

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.state == StatePending }

// Expires returns the absolute jiffy the timer is armed for (meaningful only
// while pending).
func (t *Timer) Expires() uint64 { return t.entry.Expires() }

// Option configures a Base.
type Option func(*Base)

// WithQueue substitutes the timer-queue data structure (default:
// hierarchical wheel, as in the real kernel). Used by the ablation benches.
func WithQueue(q timerwheel.Queue) Option { return func(b *Base) { b.wheel = q } }

// WithNoHZ enables dynticks: the periodic tick is suppressed while no
// non-deferrable timer is due (2.6.21 behaviour).
func WithNoHZ(enabled bool) Option { return func(b *Base) { b.nohz = enabled } }

// Base is the per-CPU timer base (struct tvec_base). The simulation is
// uniprocessor, like the paper's Linux testbed, so there is exactly one.
type Base struct {
	eng   *sim.Engine
	tr    trace.Sink
	wheel timerwheel.Queue
	jiffy uint64 // jiffies counter: last processed tick
	nohz  bool

	tickEv sim.Event
	tickFn func() // b.tick bound once; a method value would allocate per arm
	nextID uint64

	// nextHeap tracks pending non-deferrable expiries for the dynticks
	// next-event computation; entries are validated lazily against gen.
	nextHeap expiryHeap

	// RunningTimers counts __run_timers invocations that fired at least one
	// callback; TickCount counts tick interrupts taken. Their ratio shows
	// what dynticks and deferrable timers save.
	TickCount    uint64
	ExpiredCount uint64
}

// NewBase creates a timer base bound to the engine and trace buffer and
// starts its tick. The buffer must not be nil (use a zero-capacity buffer to
// discard records).
func NewBase(eng *sim.Engine, tr trace.Sink, opts ...Option) *Base {
	b := &Base{eng: eng, tr: tr, wheel: timerwheel.NewHierarchicalWheel()}
	for _, o := range opts {
		o(b)
	}
	b.tickFn = b.tick
	b.scheduleTick(b.eng.Now().Add(JiffyDuration))
	return b
}

// Jiffies returns the current jiffies value as kernel code reads the
// `jiffies` variable: the tick the clock currently sits in. Under dynticks
// the real kernel updates jiffies on any wakeup from idle
// (tick_nohz_update_jiffies); deriving it from the virtual clock gives the
// same always-current view.
func (b *Base) Jiffies() uint64 { return uint64(b.eng.Now()) / uint64(JiffyDuration) }

// Now returns current virtual time (convenience).
func (b *Base) Now() sim.Time { return b.eng.Now() }

// TimeToJiffies converts an absolute virtual time to the jiffy in which it
// falls, rounding up: a timeout can never be delivered early.
func TimeToJiffies(t sim.Time) uint64 {
	j := uint64(t) / uint64(JiffyDuration)
	if sim.Time(j)*sim.Time(JiffyDuration) < t {
		j++
	}
	return j
}

// JiffiesToTime converts an absolute jiffy count to the virtual instant of
// that tick.
func JiffiesToTime(j uint64) sim.Time { return sim.Time(j) * sim.Time(JiffyDuration) }

// MsecsToJiffies converts a duration to jiffies, rounding up (msecs_to_jiffies).
func MsecsToJiffies(d sim.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	j := uint64(d) / uint64(JiffyDuration)
	if sim.Duration(j)*JiffyDuration < d {
		j++
	}
	return j
}

// RoundJiffies rounds an absolute jiffy value to the next whole second so
// that imprecise timers expire in batches (round_jiffies, 2.6.20). Following
// the kernel: values round to the nearest second, but never into the past.
func (b *Base) RoundJiffies(j uint64) uint64 {
	rem := j % HZ
	rounded := j - rem
	if rem >= HZ/4 {
		rounded += HZ
	}
	if rounded <= b.Jiffies() {
		return j
	}
	return rounded
}

// RoundJiffiesRelative rounds a relative jiffy delta the same way
// (round_jiffies_relative).
func (b *Base) RoundJiffiesRelative(dj uint64) uint64 {
	now := b.Jiffies()
	abs := b.RoundJiffies(now + dj)
	if abs <= now {
		return dj
	}
	return abs - now
}

// Init is init_timer/setup_timer: it binds the callback and attribution and
// makes the struct usable. Calling Mod or Del on an uninitialized timer
// panics, mirroring the kernel oops.
func (b *Base) Init(t *Timer, origin string, pid int32, fn func()) {
	if t.state == StatePending {
		panic("jiffies: init_timer on pending timer")
	}
	b.nextID++
	t.base = b
	t.fn = fn
	t.state = StateIdle
	t.id = b.nextID
	t.Origin = origin
	t.PID = pid
	t.originID = b.tr.Origin(origin)
	if !t.Quiet {
		b.tr.Log(trace.Record{
			T: b.eng.Now(), Op: trace.OpInit, TimerID: t.id,
			PID: pid, Origin: t.originID, Flags: t.flags(),
		})
	}
}

func (t *Timer) flags() trace.Flags {
	var f trace.Flags
	if t.UserFlagged {
		f |= trace.FlagUser
	}
	if t.Deferrable {
		f |= trace.FlagDeferrable
	}
	return f
}

// Mod is __mod_timer: arm (or re-arm) the timer for an absolute jiffy value.
// As in the kernel, callers compute the absolute expiry themselves — which
// is exactly where the paper's observed up-to-2 ms timeout jitter comes
// from, since the computation happens partway through a jiffy.
func (b *Base) Mod(t *Timer, expires uint64) {
	if t.state == StateUninit {
		panic(fmt.Sprintf("jiffies: mod_timer on uninitialized timer %q", t.Origin))
	}
	t.gen++
	t.state = StatePending
	b.wheel.Schedule(&t.entry, expires)
	t.entry.Payload = t
	if !t.Deferrable {
		b.pushNext(t)
	}
	// The traced timeout is relative to *now*, as the instrumentation in
	// Section 3.1 measures it.
	if !t.Quiet {
		rel := int64(JiffiesToTime(expires)) - int64(b.eng.Now())
		b.tr.Log(trace.Record{
			T: b.eng.Now(), Op: trace.OpSet, TimerID: t.id, Timeout: rel,
			PID: t.PID, Origin: t.originID, Flags: t.flags(),
		})
	}
	b.retick()
}

// ModTimeout arms the timer for a relative duration from now, the common
// calling pattern (mod_timer(t, jiffies + delta)).
func (b *Base) ModTimeout(t *Timer, d sim.Duration) {
	b.Mod(t, TimeToJiffies(b.eng.Now().Add(d)))
}

// Del is del_timer: cancel the timer if pending. Calling it on an idle timer
// is explicitly legal (the paper observed repeated deletions of
// already-deleted timers) and is still logged as an access.
func (b *Base) Del(t *Timer) bool {
	if t.state == StateUninit {
		panic(fmt.Sprintf("jiffies: del_timer on uninitialized timer %q", t.Origin))
	}
	t.gen++
	active := t.state == StatePending
	if active {
		_ = b.wheel.Cancel(&t.entry)
		t.state = StateIdle
	}
	if !t.Quiet {
		b.tr.Log(trace.Record{
			T: b.eng.Now(), Op: trace.OpCancel, TimerID: t.id,
			PID: t.PID, Origin: t.originID, Flags: t.flags(),
		})
	}
	return active
}

// runTimers is __run_timers: called from the tick interrupt, fires all
// expired callbacks in bottom-half context.
func (b *Base) runTimers() {
	b.wheel.Advance(b.jiffy, func(e *timerwheel.Timer) {
		t := e.Payload.(*Timer)
		t.gen++
		t.state = StateIdle
		b.ExpiredCount++
		if !t.Quiet {
			b.tr.Log(trace.Record{
				T: b.eng.Now(), Op: trace.OpExpire, TimerID: t.id,
				PID: t.PID, Origin: t.originID, Flags: t.flags(),
			})
		}
		t.fn()
	})
}

// tick is the periodic timer interrupt.
func (b *Base) tick() {
	b.jiffy = TimeToJiffies(b.eng.Now())
	b.TickCount++
	b.runTimers()
	b.scheduleNextTick()
}

func (b *Base) scheduleTick(at sim.Time) {
	b.tickEv = b.eng.At(at, "jiffies:tick", b.tickFn)
}

// scheduleNextTick implements the dynticks decision: with NO_HZ off the tick
// is strictly periodic; with it on, the next interrupt is deferred to the
// next non-deferrable expiry (or a 1-second watchdog cap, as the kernel
// keeps for clocksource maintenance).
func (b *Base) scheduleNextTick() {
	next := JiffiesToTime(b.jiffy + 1)
	if b.nohz {
		if nj, ok := b.nextExpiryJiffy(); ok {
			if nj <= b.jiffy+1 {
				// due now or next tick: keep periodic
			} else {
				next = JiffiesToTime(nj)
			}
		} else {
			// Fully idle: sleep up to 1 s (kernel keeps a max sleep).
			next = JiffiesToTime(b.jiffy + HZ)
		}
	}
	b.scheduleTick(next)
}

// retick re-evaluates the pending tick after a Mod, so that under dynticks a
// newly armed near timer is not missed while the CPU sleeps.
func (b *Base) retick() {
	if !b.nohz || !b.tickEv.Pending() {
		return
	}
	if nj, ok := b.nextExpiryJiffy(); ok {
		due := JiffiesToTime(nj)
		if due < b.tickEv.When() {
			if due <= b.eng.Now() {
				due = JiffiesToTime(b.jiffy + 1)
			}
			b.eng.Reschedule(b.tickEv, due)
		}
	}
}

// --- next-expiry tracking for dynticks ---

type expiryEntry struct {
	expires uint64
	gen     uint64
	t       *Timer
}

type expiryHeap []expiryEntry

func (h expiryHeap) less(i, j int) bool { return h[i].expires < h[j].expires }

func (b *Base) pushNext(t *Timer) {
	h := &b.nextHeap
	*h = append(*h, expiryEntry{expires: t.entry.Expires(), gen: t.gen, t: t})
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (b *Base) popNext() {
	h := &b.nextHeap
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

// nextExpiryJiffy returns the earliest pending non-deferrable expiry,
// discarding stale heap entries as it goes (get_next_timer_interrupt).
func (b *Base) nextExpiryJiffy() (uint64, bool) {
	h := &b.nextHeap
	for len(*h) > 0 {
		top := (*h)[0]
		if top.t.state == StatePending && top.t.gen == top.gen && !top.t.Deferrable {
			return top.expires, true
		}
		b.popNext()
	}
	return 0, false
}
