package jiffies

import (
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// HighRes is the hrtimer facility added in Linux 2.6.16 (Section 2.1): a
// second, independent timer subsystem with nanosecond-resolution expiry
// driven from a per-CPU clock event device rather than the jiffy tick. In
// the simulation it schedules directly on the engine — the moral equivalent
// of programming the LAPIC one-shot comparator.
type HighRes struct {
	eng    *sim.Engine
	tr     trace.Sink
	nextID uint64
}

// NewHighRes returns an hrtimer facility sharing the trace buffer with the
// standard subsystem. hrtimer IDs are drawn from a separate space (top bit
// set) so analyses can tell the facilities apart.
func NewHighRes(eng *sim.Engine, tr trace.Sink) *HighRes {
	return &HighRes{eng: eng, tr: tr}
}

// HRTimer is the analog of struct hrtimer.
type HRTimer struct {
	hr       *HighRes
	ev       sim.Event
	fn       func()
	expireFn func() // bound once at Init so Start never allocates a closure
	evName   string // "hrtimer:"+Origin, interned at Init off the hot path
	id       uint64
	originID uint32

	// Origin and PID attribute operations, as for Timer.
	Origin string
	PID    int32
	// UserFlagged marks user-space-requested high-resolution sleeps.
	UserFlagged bool
}

const hrIDBit = uint64(1) << 63

// Init prepares the hrtimer (hrtimer_init).
func (h *HighRes) Init(t *HRTimer, origin string, pid int32, fn func()) {
	h.nextID++
	t.hr = h
	t.fn = fn
	t.id = h.nextID | hrIDBit
	t.Origin = origin
	t.PID = pid
	t.originID = h.tr.Origin(origin)
	t.evName = "hrtimer:" + origin
	t.expireFn = func() {
		h.tr.Log(trace.Record{
			T: h.eng.Now(), Op: trace.OpExpire, TimerID: t.id,
			PID: t.PID, Origin: t.originID, Flags: t.flags(),
		})
		t.fn()
	}
	h.tr.Log(trace.Record{
		T: h.eng.Now(), Op: trace.OpInit, TimerID: t.id,
		PID: pid, Origin: t.originID, Flags: t.flags(),
	})
}

func (t *HRTimer) flags() trace.Flags {
	if t.UserFlagged {
		return trace.FlagUser
	}
	return 0
}

// Pending reports whether the hrtimer is armed.
func (t *HRTimer) Pending() bool { return t.ev.Pending() }

// Start arms the hrtimer for a relative duration (hrtimer_start).
func (h *HighRes) Start(t *HRTimer, d sim.Duration) {
	if d < 0 {
		d = 0
	}
	if t.Pending() {
		_ = h.eng.Cancel(t.ev)
	}
	t.ev = h.eng.After(d, t.evName, t.expireFn)
	h.tr.Log(trace.Record{
		T: h.eng.Now(), Op: trace.OpSet, TimerID: t.id, Timeout: int64(d),
		PID: t.PID, Origin: t.originID, Flags: t.flags(),
	})
}

// Cancel disarms the hrtimer (hrtimer_cancel). Always logged as an access.
func (h *HighRes) Cancel(t *HRTimer) bool {
	active := t.Pending()
	if active {
		_ = h.eng.Cancel(t.ev)
	}
	h.tr.Log(trace.Record{
		T: h.eng.Now(), Op: trace.OpCancel, TimerID: t.id,
		PID: t.PID, Origin: t.originID, Flags: t.flags(),
	})
	return active
}
