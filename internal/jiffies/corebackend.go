package jiffies

import (
	"timerstudy/internal/sim"
)

// CoreBackend adapts the Linux standard timer base as a backend for the
// redesigned core facility, showing the clean-slate design deployable as a
// layer over today's kernel interface (the Section 5 "short-term
// enhancements" path): every facility wakeup becomes one kernel timer, so
// the facility's batching directly reduces jiffy-timer traffic.
//
// It satisfies the core package's Backend interface without importing it
// (same method set), keeping the dependency pointing upward only.
type CoreBackend struct {
	// Base is the timer base to arm on.
	Base *Base
}

// Now implements core.Backend.
func (b CoreBackend) Now() sim.Time { return b.Base.Now() }

// At implements core.Backend: one quiet kernel timer per facility wakeup.
func (b CoreBackend) At(t sim.Time, fn func()) func() bool {
	tm := &Timer{Quiet: false}
	b.Base.Init(tm, "core:facility-wakeup", 0, fn)
	b.Base.Mod(tm, TimeToJiffies(t))
	return func() bool { return b.Base.Del(tm) }
}
