package jiffies

import (
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/timerwheel"
	"timerstudy/internal/trace"
)

func newTestBase(opts ...Option) (*sim.Engine, *trace.Buffer, *Base) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 20)
	return eng, tr, NewBase(eng, tr, opts...)
}

func TestConversions(t *testing.T) {
	if JiffyDuration != 4*sim.Millisecond {
		t.Fatalf("JiffyDuration = %v", JiffyDuration)
	}
	if TimeToJiffies(sim.Time(0)) != 0 {
		t.Fatal("t=0")
	}
	if TimeToJiffies(sim.Time(4*sim.Millisecond)) != 1 {
		t.Fatal("t=4ms")
	}
	if TimeToJiffies(sim.Time(4*sim.Millisecond+1)) != 2 {
		t.Fatal("rounding up failed")
	}
	if MsecsToJiffies(1*sim.Millisecond) != 1 {
		t.Fatal("1ms should round up to 1 jiffy")
	}
	if MsecsToJiffies(8*sim.Millisecond) != 2 {
		t.Fatal("8ms = 2 jiffies")
	}
	if MsecsToJiffies(0) != 0 {
		t.Fatal("0")
	}
	if JiffiesToTime(250) != sim.Time(sim.Second) {
		t.Fatal("250 jiffies = 1s at HZ=250")
	}
}

func TestTimerFiresOnJiffyBoundary(t *testing.T) {
	eng, tr, b := newTestBase()
	var firedAt sim.Time
	tm := &Timer{Origin: "test"}
	b.Init(tm, "kernel/test", 0, func() { firedAt = eng.Now() })
	// Arm for 10 ms → jiffy 3 (12 ms), the quantization the paper notes.
	b.ModTimeout(tm, 10*sim.Millisecond)
	eng.Run(sim.Time(sim.Second))
	if firedAt != sim.Time(12*sim.Millisecond) {
		t.Fatalf("fired at %v, want 12ms", firedAt)
	}
	recs := tr.Records()
	var ops []trace.Op
	for _, r := range recs {
		ops = append(ops, r.Op)
	}
	if len(recs) != 3 || recs[0].Op != trace.OpInit || recs[1].Op != trace.OpSet || recs[2].Op != trace.OpExpire {
		t.Fatalf("trace ops = %v", ops)
	}
	if recs[1].Timeout != int64(12*sim.Millisecond) {
		t.Fatalf("recorded timeout = %v", recs[1].Timeout)
	}
}

func TestModOnUninitializedPanics(t *testing.T) {
	_, _, b := newTestBase()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Mod(&Timer{}, 10)
}

func TestDelCancels(t *testing.T) {
	eng, tr, b := newTestBase()
	fired := false
	tm := &Timer{}
	b.Init(tm, "kernel/test", 0, func() { fired = true })
	b.ModTimeout(tm, 100*sim.Millisecond)
	if !b.Del(tm) {
		t.Fatal("del of pending timer returned false")
	}
	if b.Del(tm) {
		t.Fatal("double-del returned true")
	}
	eng.Run(sim.Time(sim.Second))
	if fired {
		t.Fatal("canceled timer fired")
	}
	// Both del calls are accesses and appear in the trace, as the paper's
	// instrumentation records repeated deletions.
	if got := tr.Counters().ByOp[trace.OpCancel]; got != 2 {
		t.Fatalf("cancel records = %d, want 2", got)
	}
}

func TestPeriodicReset(t *testing.T) {
	eng, _, b := newTestBase()
	var fires []sim.Time
	tm := &Timer{}
	b.Init(tm, "kernel/periodic", 0, func() {
		fires = append(fires, eng.Now())
		if len(fires) < 5 {
			b.ModTimeout(tm, 100*sim.Millisecond)
		}
	})
	b.ModTimeout(tm, 100*sim.Millisecond)
	eng.Run(sim.Time(sim.Second))
	if len(fires) != 5 {
		t.Fatalf("fires = %v", fires)
	}
	for i, ft := range fires {
		want := sim.Time(100 * sim.Millisecond * sim.Duration(i+1))
		if ft != want {
			t.Fatalf("fire %d at %v, want %v", i, ft, want)
		}
	}
}

func TestRoundJiffies(t *testing.T) {
	eng, _, b := newTestBase()
	eng.Run(sim.Time(sim.Second)) // jiffy = 250
	if b.Jiffies() != 250 {
		t.Fatalf("jiffies = %d", b.Jiffies())
	}
	// 250+10 = 260, rem 10 < 62 → rounds down to 250 which is in the past →
	// returns the original value.
	if got := b.RoundJiffies(260); got != 260 {
		t.Fatalf("RoundJiffies(260) = %d", got)
	}
	// 250+100 = 350, rem 100 ≥ 62 → rounds up to 500.
	if got := b.RoundJiffies(350); got != 500 {
		t.Fatalf("RoundJiffies(350) = %d", got)
	}
	// Relative form.
	if got := b.RoundJiffiesRelative(100); got != 250 {
		t.Fatalf("RoundJiffiesRelative(100) = %d", got)
	}
}

func TestRoundJiffiesBatchesWakeups(t *testing.T) {
	// Ten 1-second-ish periodic timers with random phases: rounded, they
	// expire together and the engine sees far fewer wakeups.
	countWakeups := func(round bool) uint64 {
		eng := sim.NewEngine(7)
		tr := trace.NewBuffer(0)
		b := NewBase(eng, tr, WithNoHZ(true))
		for i := 0; i < 10; i++ {
			tm := &Timer{}
			offset := sim.Duration(eng.Rand().Int63n(int64(sim.Second)))
			var rearm func()
			rearm = func() {
				dj := MsecsToJiffies(sim.Second)
				if round {
					dj = b.RoundJiffiesRelative(dj)
				}
				b.Mod(tm, b.Jiffies()+dj)
			}
			b.Init(tm, "kernel/housekeeping", 0, rearm)
			eng.At(sim.Time(offset), "arm", rearm)
		}
		eng.Run(sim.Time(30 * sim.Second))
		return eng.Stats().Wakeups
	}
	plain := countWakeups(false)
	rounded := countWakeups(true)
	if rounded >= plain {
		t.Fatalf("rounding did not reduce wakeups: %d → %d", plain, rounded)
	}
}

func TestDynticksSkipsIdleTicks(t *testing.T) {
	run := func(nohz bool) uint64 {
		eng := sim.NewEngine(1)
		b := NewBase(eng, trace.NewBuffer(0), WithNoHZ(nohz))
		tm := &Timer{}
		b.Init(tm, "kernel/one", 0, func() {})
		b.ModTimeout(tm, 10*sim.Second)
		eng.Run(sim.Time(30 * sim.Second))
		return b.TickCount
	}
	periodic := run(false)
	tickless := run(true)
	if periodic < 30*HZ-5 {
		t.Fatalf("periodic ticks = %d, want ≈%d", periodic, 30*HZ)
	}
	// Tickless: ~1 tick/s idle cap plus the timer expiry.
	if tickless > 40 {
		t.Fatalf("tickless ticks = %d, want ≤40", tickless)
	}
}

func TestDynticksStillFiresOnTime(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewBase(eng, trace.NewBuffer(0), WithNoHZ(true))
	var firedAt sim.Time
	tm := &Timer{}
	b.Init(tm, "kernel/x", 0, func() { firedAt = eng.Now() })
	b.ModTimeout(tm, 5*sim.Second)
	eng.Run(sim.Time(10 * sim.Second))
	if firedAt != sim.Time(5*sim.Second) {
		t.Fatalf("fired at %v, want 5s", firedAt)
	}
}

func TestDynticksRetickOnNewNearTimer(t *testing.T) {
	// While sleeping toward a far-out timer, arming a near timer must pull
	// the tick forward.
	eng := sim.NewEngine(1)
	b := NewBase(eng, trace.NewBuffer(0), WithNoHZ(true))
	far := &Timer{}
	b.Init(far, "kernel/far", 0, func() {})
	b.ModTimeout(far, 20*sim.Second)
	var firedAt sim.Time
	near := &Timer{}
	b.Init(near, "kernel/near", 0, func() { firedAt = eng.Now() })
	eng.At(sim.Time(2*sim.Second), "arm-near", func() {
		b.ModTimeout(near, 50*sim.Millisecond)
	})
	eng.Run(sim.Time(10 * sim.Second))
	want := sim.Time(2*sim.Second + 52*sim.Millisecond) // next jiffy ≥ 2.05s
	if firedAt != want {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
}

func TestDeferrableDoesNotWakeIdle(t *testing.T) {
	// A deferrable timer alone must not generate wakeups beyond the 1 s
	// idle cap; it fires when something else wakes the CPU.
	eng := sim.NewEngine(1)
	b := NewBase(eng, trace.NewBuffer(0), WithNoHZ(true))
	var deferredAt sim.Time
	d := &Timer{Deferrable: true}
	b.Init(d, "kernel/deferrable", 0, func() { deferredAt = eng.Now() })
	b.ModTimeout(d, 100*sim.Millisecond)
	// A non-deferrable timer wakes the CPU at 3 s.
	n := &Timer{}
	b.Init(n, "kernel/real", 0, func() {})
	b.ModTimeout(n, 3*sim.Second)
	eng.Run(sim.Time(5 * sim.Second))
	if deferredAt == 0 {
		t.Fatal("deferrable timer never fired")
	}
	// It must NOT have fired at its nominal 100 ms expiry; the idle cap
	// wakes the CPU at 1 s and the deferrable fires then.
	if deferredAt < sim.Time(sim.Second) {
		t.Fatalf("deferrable fired too early: %v", deferredAt)
	}
}

func TestAlternateWheelBackends(t *testing.T) {
	for _, q := range []timerwheel.Queue{
		timerwheel.NewSortedList(), timerwheel.NewHeap(),
		timerwheel.NewHashedWheel(256),
	} {
		eng := sim.NewEngine(1)
		b := NewBase(eng, trace.NewBuffer(0), WithQueue(q))
		var fired int
		for i := 0; i < 10; i++ {
			tm := &Timer{}
			b.Init(tm, "kernel/x", 0, func() { fired++ })
			b.ModTimeout(tm, sim.Duration(i+1)*100*sim.Millisecond)
		}
		eng.Run(sim.Time(2 * sim.Second))
		if fired != 10 {
			t.Fatalf("%s: fired %d/10", q.Name(), fired)
		}
	}
}

func TestHRTimerNanosecondResolution(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1024)
	hr := NewHighRes(eng, tr)
	var firedAt sim.Time
	tm := &HRTimer{}
	hr.Init(tm, "hrtimer/test", 0, func() { firedAt = eng.Now() })
	hr.Start(tm, 1500*sim.Microsecond)
	eng.Run(sim.Time(sim.Second))
	if firedAt != sim.Time(1500*sim.Microsecond) {
		t.Fatalf("fired at %v: hrtimers must not be jiffy-quantized", firedAt)
	}
	if tm.id&hrIDBit == 0 {
		t.Fatal("hrtimer ID not in the hrtimer space")
	}
}

func TestHRTimerCancelAndRestart(t *testing.T) {
	eng := sim.NewEngine(1)
	hr := NewHighRes(eng, trace.NewBuffer(1024))
	fired := 0
	tm := &HRTimer{}
	hr.Init(tm, "hrtimer/test", 0, func() { fired++ })
	hr.Start(tm, sim.Second)
	if !hr.Cancel(tm) {
		t.Fatal("cancel failed")
	}
	if hr.Cancel(tm) {
		t.Fatal("double cancel succeeded")
	}
	hr.Start(tm, sim.Second)
	hr.Start(tm, 2*sim.Second) // restart moves, does not duplicate
	eng.Run(sim.Time(5 * sim.Second))
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

func TestTraceAttribution(t *testing.T) {
	eng, tr, b := newTestBase()
	tm := &Timer{PID: 0, UserFlagged: true, Deferrable: true}
	b.Init(tm, "syscall/select", 1234, func() {})
	tm.UserFlagged = true
	b.ModTimeout(tm, 10*sim.Millisecond)
	eng.Run(sim.Time(100 * sim.Millisecond))
	for _, r := range tr.Records() {
		if r.PID != 1234 {
			t.Fatalf("PID = %d", r.PID)
		}
		if tr.OriginName(r.Origin) != "syscall/select" {
			t.Fatalf("origin = %q", tr.OriginName(r.Origin))
		}
		if !r.IsUser() {
			t.Fatalf("record %v not flagged user", r.Op)
		}
		if r.Flags&trace.FlagDeferrable == 0 {
			t.Fatalf("record %v not flagged deferrable", r.Op)
		}
	}
}
