package jiffies

import (
	"math/rand"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Property-style: under a random mod/del/run schedule, timers never fire
// before their programmed jiffy and never more than one cascade-tick late.
func TestNeverEarlyNeverLostUnderRandomOps(t *testing.T) {
	eng := sim.NewEngine(5)
	tr := trace.NewBuffer(0)
	b := NewBase(eng, tr)
	rng := rand.New(rand.NewSource(9))

	type state struct {
		t        *Timer
		expireAt uint64 // jiffy it was last armed for, 0 when idle
	}
	timers := make([]*state, 40)
	for i := range timers {
		st := &state{t: &Timer{}}
		b.Init(st.t, "kernel/fuzz", 0, func() {
			now := b.Jiffies()
			if st.expireAt == 0 {
				t.Errorf("fired while idle")
			} else if now < st.expireAt {
				t.Errorf("fired at jiffy %d, armed for %d (early)", now, st.expireAt)
			} else if now > st.expireAt+1 {
				t.Errorf("fired at jiffy %d, armed for %d (late)", now, st.expireAt)
			}
			st.expireAt = 0
		})
		timers[i] = st
	}
	var step func()
	step = func() {
		st := timers[rng.Intn(len(timers))]
		switch rng.Intn(3) {
		case 0, 1:
			dj := uint64(rng.Intn(800) + 1)
			st.expireAt = b.Jiffies() + dj
			b.Mod(st.t, st.expireAt)
		case 2:
			if b.Del(st.t) {
				st.expireAt = 0
			}
		}
		if eng.Now() < sim.Time(20*sim.Second) {
			eng.After(sim.Duration(rng.Intn(int(100*sim.Millisecond)))+1, "fuzz", step)
		}
	}
	eng.After(0, "fuzz", step)
	eng.Run(sim.Time(30 * sim.Second))
	// Everything armed for within the horizon must have fired.
	for i, st := range timers {
		if st.expireAt != 0 && st.expireAt < b.Jiffies() {
			t.Errorf("timer %d lost: armed for %d, now %d", i, st.expireAt, b.Jiffies())
		}
	}
}

func TestQuietTimerProducesNoRecords(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 10)
	b := NewBase(eng, tr)
	tm := &Timer{Quiet: true}
	b.Init(tm, "syscall/x", 1, func() {})
	b.ModTimeout(tm, 10*sim.Millisecond)
	b.Del(tm)
	b.ModTimeout(tm, 10*sim.Millisecond)
	eng.Run(sim.Time(sim.Second))
	if tr.Counters().Total != 0 {
		t.Fatalf("quiet timer logged %d records", tr.Counters().Total)
	}
}

func TestReinitAfterFire(t *testing.T) {
	eng, _, b := newTestBase()
	n := 0
	tm := &Timer{}
	b.Init(tm, "kernel/a", 0, func() { n += 1 })
	b.ModTimeout(tm, 10*sim.Millisecond)
	eng.Run(sim.Time(100 * sim.Millisecond))
	// Re-initialize the fired struct with a new callback, kernel-style.
	b.Init(tm, "kernel/b", 0, func() { n += 100 })
	b.ModTimeout(tm, 10*sim.Millisecond)
	eng.Run(sim.Time(sim.Second))
	if n != 101 {
		t.Fatalf("n = %d", n)
	}
}

func TestInitOnPendingPanics(t *testing.T) {
	_, _, b := newTestBase()
	tm := &Timer{}
	b.Init(tm, "kernel/a", 0, func() {})
	b.ModTimeout(tm, sim.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Init(tm, "kernel/a", 0, func() {})
}

func TestRoundJiffiesExactBoundary(t *testing.T) {
	eng, _, b := newTestBase()
	eng.Run(sim.Time(2 * sim.Second)) // jiffies = 500
	// A value already on a second boundary in the future stays put.
	if got := b.RoundJiffies(750); got != 750 {
		t.Fatalf("RoundJiffies(750) = %d", got)
	}
	// Rounding must never move a value into the past.
	if got := b.RoundJiffies(b.Jiffies() + 1); got < b.Jiffies()+1 {
		t.Fatalf("rounded into the past: %d", got)
	}
}

func TestDynticksLongSleepWakesForFarTimer(t *testing.T) {
	// A timer beyond the 1 s idle cap: the tick chain must carry across
	// multiple idle sleeps and still fire exactly.
	eng := sim.NewEngine(1)
	b := NewBase(eng, trace.NewBuffer(0), WithNoHZ(true))
	var at sim.Time
	tm := &Timer{}
	b.Init(tm, "kernel/far", 0, func() { at = eng.Now() })
	b.ModTimeout(tm, 7*sim.Second)
	eng.Run(sim.Time(20 * sim.Second))
	if at != sim.Time(7*sim.Second) {
		t.Fatalf("fired at %v", at)
	}
}

func TestDeferrableFiresWithConcurrentWork(t *testing.T) {
	// With the CPU busy (periodic non-deferrable activity), deferrable
	// timers fire essentially on time.
	eng := sim.NewEngine(1)
	b := NewBase(eng, trace.NewBuffer(0), WithNoHZ(true))
	busy := &Timer{}
	b.Init(busy, "kernel/busy", 0, func() { b.ModTimeout(busy, 20*sim.Millisecond) })
	b.ModTimeout(busy, 20*sim.Millisecond)
	var at sim.Time
	d := &Timer{Deferrable: true}
	b.Init(d, "kernel/deferrable", 0, func() { at = eng.Now() })
	b.ModTimeout(d, 100*sim.Millisecond)
	eng.Run(sim.Time(sim.Second))
	if at < sim.Time(100*sim.Millisecond) || at > sim.Time(130*sim.Millisecond) {
		t.Fatalf("deferrable fired at %v on a busy system", at)
	}
}

func TestHRTimerIDsDistinctFromStandard(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 10)
	b := NewBase(eng, tr)
	hr := NewHighRes(eng, tr)
	st := &Timer{}
	b.Init(st, "kernel/std", 0, func() {})
	ht := &HRTimer{}
	hr.Init(ht, "hrtimer/x", 0, func() {})
	if st.ID() == ht.id {
		t.Fatal("ID spaces collide")
	}
}

func TestCoreBackendCancel(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewBase(eng, trace.NewBuffer(0))
	cb := CoreBackend{Base: b}
	ran := false
	cancel := cb.At(cb.Now().Add(sim.Second), func() { ran = true })
	if !cancel() {
		t.Fatal("cancel failed")
	}
	if cancel() {
		t.Fatal("double cancel succeeded")
	}
	eng.Run(sim.Time(2 * sim.Second))
	if ran {
		t.Fatal("canceled backend timer fired")
	}
}
