package core

import (
	"math"
	"math/bits"

	"timerstudy/internal/sim"
)

// Section 5.1: adaptive timeouts. "Rather than specifying a willingness to
// wait for an (arbitrary) 30 seconds, the programmer should request to
// 'time out' once the system is 99% confident that a message will never be
// arriving." The Estimator learns the distribution of observed wait times;
// AdaptiveTimeout turns a confidence level into a concrete timeout with
// exponential backoff after failures and level-shift recovery after
// environment changes (the paper's LAN-to-WAN example).

// estBuckets covers 1 ns .. ~9.2 s per power of two, then a tail.
const estBuckets = 64

// Estimator is an online latency-distribution sketch: logarithmic buckets
// with exponential forgetting. It is cheap enough to embed in every timer
// (a few hundred bytes, O(1) updates) — feasibility is exactly the paper's
// open question ("whether it is feasible to fit a simple model to the
// distribution of wait-times in a running system").
type Estimator struct {
	buckets [estBuckets]float64
	total   float64
	n       uint64

	fast, slow float64 // EWMA means in ns, for level-shift detection
	shiftRun   int
	// Shifts counts detected level shifts (diagnostics).
	Shifts uint64
}

func bucketOf(d sim.Duration) int {
	if d < 1 {
		d = 1
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= estBuckets {
		b = estBuckets - 1
	}
	return b
}

// Observe folds in a wait-time sample.
func (e *Estimator) Observe(d sim.Duration) {
	e.n++
	e.buckets[bucketOf(d)]++
	e.total++

	x := float64(d)
	if e.n == 1 {
		e.fast, e.slow = x, x
		return
	}
	e.fast += 0.3 * (x - e.fast)
	e.slow += 0.02 * (x - e.slow)
	// A sustained disagreement between the fast and slow means marks a
	// level shift (latency regime change): forget the old distribution
	// quickly rather than waiting for it to wash out.
	if e.slow > 0 && (e.fast > 3*e.slow || e.fast < e.slow/3) {
		e.shiftRun++
		if e.shiftRun >= 8 {
			e.shiftRun = 0
			e.Shifts++
			for i := range e.buckets {
				e.buckets[i] /= 8
			}
			e.total /= 8
			e.slow = e.fast
		}
	} else {
		e.shiftRun = 0
	}
}

// Samples returns the number of observations.
func (e *Estimator) Samples() uint64 { return e.n }

// Quantile returns an upper bound for the q-quantile of observed waits
// (q in (0,1)), interpolating within the winning bucket. With no samples it
// returns 0.
func (e *Estimator) Quantile(q float64) sim.Duration {
	if e.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * e.total
	var cum float64
	for i, c := range e.buckets {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo := math.Exp2(float64(i))
			hi := math.Exp2(float64(i + 1))
			frac := (target - cum) / c
			return sim.Duration(lo + frac*(hi-lo))
		}
		cum += c
	}
	return sim.Duration(math.Exp2(estBuckets))
}

// Mean returns the fast EWMA mean.
func (e *Estimator) Mean() sim.Duration { return sim.Duration(e.fast) }

// AdaptiveTimeout derives timeout values from an Estimator.
type AdaptiveTimeout struct {
	f   *Facility
	est Estimator

	origin string
	// Confidence is the target quantile (e.g. 0.99).
	Confidence float64
	// Safety multiplies the quantile (headroom above the observed tail).
	Safety float64
	// Floor and Ceil clamp the result; Ceil also serves as the
	// conservative value while the estimator is cold.
	Floor, Ceil sim.Duration
	// MinSamples gates adaptation: below it, Current returns Ceil.
	MinSamples uint64

	// Timeouts and Successes count outcomes.
	Timeouts, Successes uint64
}

// NewAdaptiveTimeout creates an adaptive timeout source. Zero-value knobs
// get sane defaults (confidence 0.99, safety 2, min samples 8).
func (f *Facility) NewAdaptiveTimeout(origin string, confidence float64, floor, ceil sim.Duration) *AdaptiveTimeout {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.99
	}
	return &AdaptiveTimeout{
		f: f, origin: origin, Confidence: confidence, Safety: 2,
		Floor: floor, Ceil: ceil, MinSamples: 8,
	}
}

// Estimator exposes the underlying distribution sketch.
func (a *AdaptiveTimeout) Estimator() *Estimator { return &a.est }

// Current returns the base timeout the adaptive policy would use now:
// quantile(confidence) × safety, clamped to [Floor, Ceil]; Ceil while cold.
func (a *AdaptiveTimeout) Current() sim.Duration {
	return a.CurrentRetry(0)
}

// CurrentRetry is Current with exponential backoff applied for the given
// retry ordinal: value × 2^retry, still clamped to Ceil. Backoff belongs to
// an operation's retry sequence (as in TCP), not to the call site globally
// — parallel first attempts must not inflate each other.
func (a *AdaptiveTimeout) CurrentRetry(retry uint) sim.Duration {
	if a.est.Samples() < a.MinSamples {
		return a.Ceil
	}
	d := sim.Duration(float64(a.est.Quantile(a.Confidence)) * a.Safety)
	for i := uint(0); i < retry; i++ {
		d *= 2
		if d >= a.Ceil {
			break
		}
	}
	if d < a.Floor {
		d = a.Floor
	}
	if a.Ceil > 0 && d > a.Ceil {
		d = a.Ceil
	}
	return d
}

// Arm starts a guard at the current adaptive value (first attempt). Callers
// report the outcome through the returned guard's Done (success path should
// also call ObserveSuccess with the measured latency).
func (a *AdaptiveTimeout) Arm(onTimeout func()) *Guard {
	return a.ArmRetry(0, onTimeout)
}

// ArmRetry arms the retry-th attempt of an operation with backed-off value.
func (a *AdaptiveTimeout) ArmRetry(retry uint, onTimeout func()) *Guard {
	return a.f.NewGuard(nil, a.origin, Exact(a.CurrentRetry(retry)), func() {
		a.Timeouts++
		onTimeout()
	})
}

// ObserveSuccess records a completed wait: the latency feeds the estimator
// — the control loop closing, which the study found almost no timers doing.
func (a *AdaptiveTimeout) ObserveSuccess(latency sim.Duration) {
	a.Successes++
	a.est.Observe(latency)
}
