package core

import (
	"timerstudy/internal/sim"
)

// The Section 5.4 use-case interfaces: one purpose-built abstraction per
// usage pattern the study identifies, replacing "a single set/cancel
// interface used differently in practice".

// Ticker is the periodic pattern: "every time period of length t, invoke
// function f". The schedule is drift-free — periods are counted from an
// absolute phase, so the callback's own latency does not accumulate, one of
// the advantages Section 5.4 names ("not having to reset themselves and
// correct for the time taken"). Slack lets imprecise tickers batch while
// the long-run average frequency is preserved.
type Ticker struct {
	f       *Facility
	origin  string
	period  sim.Duration
	slack   sim.Duration
	next    sim.Time
	entry   *Entry
	fn      func()
	stopped bool
	// Ticks counts deliveries.
	Ticks uint64
}

// NewTicker starts a periodic ticker. slack = 0 gives a precise ticker.
func (f *Facility) NewTicker(origin string, period, slack sim.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("core: ticker period must be positive")
	}
	t := &Ticker{f: f, origin: origin, period: period, slack: slack, fn: fn}
	t.next = f.Now().Add(period)
	t.arm()
	return t
}

func (t *Ticker) arm() {
	delay := t.next.Sub(t.f.Now())
	if delay < 0 {
		delay = 0
	}
	t.entry = t.f.Arm(t.origin, Window(delay, t.slack), func() {
		if t.stopped {
			return
		}
		t.Ticks++
		// Drift-free: the next deadline advances from the schedule, not
		// from the (possibly slack-delayed) fire instant.
		t.next = t.next.Add(t.period)
		for t.next.Sub(t.f.Now()) < 0 {
			t.next = t.next.Add(t.period) // skip missed periods
		}
		t.arm()
		t.fn()
	})
}

// Stop halts the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	_ = t.f.Cancel(t.entry)
}

// RateTicker is the loosest periodic spec of Section 5.3: "every 5 minutes,
// on average over an hour". Individual ticks may land anywhere within a
// whole period of their nominal slot (maximum batching freedom), but the
// drift-free schedule guarantees the long-run rate exactly.
type RateTicker struct {
	*Ticker
}

// NewRateTicker starts an average-rate ticker: period sets the rate; each
// tick's window spans the full period.
func (f *Facility) NewRateTicker(origin string, period sim.Duration, fn func()) *RateTicker {
	return &RateTicker{Ticker: f.NewTicker(origin, period, period-sim.Nanosecond, fn)}
}

// Guard is the timeout pattern: "if this procedure has not returned in time
// t, invoke function e" — the auto-object idiom Win32 GUI code uses. Create
// it at procedure entry, call Done at return; the expiry handler runs only
// if Done came too late.
type Guard struct {
	entry *Entry
	f     *Facility
	done  bool
}

// NewGuard arms a timeout guard. parent may be nil; with a parent, the
// nesting rule applies (an inner guard never outlasts its parent).
func (f *Facility) NewGuard(parent *Entry, origin string, spec Spec, onTimeout func()) *Guard {
	g := &Guard{f: f}
	g.entry = f.ArmChild(parent, origin, spec, func() {
		if !g.done {
			g.done = true
			onTimeout()
		}
	})
	return g
}

// Done reports completion; it returns true if the guard was still pending
// (i.e. the timeout has not fired).
func (g *Guard) Done() bool {
	if g.done {
		return false
	}
	g.done = true
	return g.f.Cancel(g.entry)
}

// Entry exposes the underlying entry so children can nest under it.
func (g *Guard) Entry() *Entry { return g.entry }

// Watchdog is the watchdog pattern: "if this code path has not been
// executed within time t, invoke function f". Kick defers expiry by the
// full interval. Unlike the raw re-set idiom, kicking is cheap: the
// facility only re-arms the backend when the deadline's batch must move.
type Watchdog struct {
	f        *Facility
	origin   string
	interval sim.Duration
	slack    sim.Duration
	entry    *Entry
	fn       func()
	stopped  bool
	// Expiries counts firings (a healthy watchdog has zero).
	Expiries uint64
}

// NewWatchdog arms a watchdog; it must be kicked at least every interval.
func (f *Facility) NewWatchdog(origin string, interval, slack sim.Duration, onExpire func()) *Watchdog {
	w := &Watchdog{f: f, origin: origin, interval: interval, slack: slack, fn: onExpire}
	w.arm()
	return w
}

func (w *Watchdog) arm() {
	w.entry = w.f.Arm(w.origin, Window(w.interval, w.slack), func() {
		if w.stopped {
			return
		}
		w.Expiries++
		w.fn()
	})
}

// Kick defers the watchdog by a full interval.
func (w *Watchdog) Kick() {
	if w.stopped {
		return
	}
	_ = w.f.Cancel(w.entry)
	w.arm()
}

// Stop disarms the watchdog.
func (w *Watchdog) Stop() {
	w.stopped = true
	_ = w.f.Cancel(w.entry)
}

// Delay is the delay pattern: "after time t, invoke function e" — the one
// case matching the traditional API directly.
func (f *Facility) Delay(origin string, spec Spec, fn func()) *Entry {
	return f.Arm(origin, spec, fn)
}

// Deferred is the Vista lazy-work pattern of Section 4.1.1: Touch marks
// activity; fn runs once the resource has been quiet for the interval, then
// the cycle restarts on the next Touch.
type Deferred struct {
	f        *Facility
	origin   string
	interval sim.Duration
	slack    sim.Duration
	entry    *Entry
	fn       func()
	// Fires counts quiet-period expirations.
	Fires uint64
}

// NewDeferred creates an idle-triggered action. It stays disarmed until the
// first Touch.
func (f *Facility) NewDeferred(origin string, interval, slack sim.Duration, fn func()) *Deferred {
	return &Deferred{f: f, origin: origin, interval: interval, slack: slack, fn: fn}
}

// Touch marks activity, deferring (or starting) the quiet-period timer.
func (d *Deferred) Touch() {
	if d.entry.Pending() {
		_ = d.f.Cancel(d.entry)
	}
	d.entry = d.f.Arm(d.origin, Window(d.interval, d.slack), func() {
		d.Fires++
		d.fn()
	})
}

// Pending reports whether a quiet-period timer is armed.
func (d *Deferred) Pending() bool { return d.entry.Pending() }
