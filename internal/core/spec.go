package core

import (
	"fmt"

	"timerstudy/internal/sim"
)

// Spec is the richer expression of "when" from Section 5.3: a window of
// acceptable fire instants rather than a point. "Please wake up this thread
// at some convenient time in the next 10 minutes" becomes
// Window(0, 10*Minute); "in 600.0 s ± 10 ms" becomes Exact(600s) (a
// degenerate window). The wider the window, the more freedom the facility
// has to batch wakeups.
type Spec struct {
	// After is the earliest acceptable delay from now.
	After sim.Duration
	// Slack widens the window: the timer may fire up to Slack after After.
	Slack sim.Duration
}

// Exact is the traditional precise timeout: fire at exactly d from now
// (subject to the backend's own granularity).
func Exact(d sim.Duration) Spec { return Spec{After: d} }

// Window allows firing anywhere in [d, d+slack] — the generalized
// round_jiffies/deferrable/coalescing spec.
func Window(d, slack sim.Duration) Spec { return Spec{After: d, Slack: slack} }

// AnyTimeAfter is the Section 5.3 example "any time after 10 minutes, for a
// delay timer": a window with generous slack proportional to the delay.
func AnyTimeAfter(d sim.Duration) Spec { return Spec{After: d, Slack: d / 4} }

// Validate rejects nonsensical specs. A negative After or Slack is always a
// caller bug (a subtraction that went past zero, an overflowed shift), and
// silently clamping it to zero turns "fire in -5 s" into "fire immediately" —
// exactly the class of unexamined timeout value Section 5.2 warns about.
func (s Spec) Validate() error {
	if s.After < 0 {
		return fmt.Errorf("core: spec %v: negative After (%v)", s, s.After)
	}
	if s.Slack < 0 {
		return fmt.Errorf("core: spec %v: negative Slack (%v)", s, s.Slack)
	}
	return nil
}

// window resolves the spec against now.
func (s Spec) window(now sim.Time) (earliest, latest sim.Time) {
	after := s.After
	if after < 0 {
		after = 0
	}
	slack := s.Slack
	if slack < 0 {
		slack = 0
	}
	return now.Add(after), now.Add(after + slack)
}

// String renders the spec for diagnostics.
func (s Spec) String() string {
	if s.Slack == 0 {
		return fmt.Sprintf("exact(%v)", s.After)
	}
	return fmt.Sprintf("window(%v+%v)", s.After, s.Slack)
}
