package core

import (
	"testing"
	"testing/quick"

	"timerstudy/internal/sim"
)

func newF() (*sim.Engine, *Facility) {
	eng := sim.NewEngine(1)
	return eng, New(SimBackend{Eng: eng})
}

func TestArmFiresWithinWindow(t *testing.T) {
	eng, f := newF()
	var at sim.Time
	f.Arm("x", Window(sim.Second, 500*sim.Millisecond), func() { at = eng.Now() })
	eng.Run(sim.Time(sim.Minute))
	if at < sim.Time(sim.Second) || at > sim.Time(1500*sim.Millisecond) {
		t.Fatalf("fired at %v, outside [1s, 1.5s]", at)
	}
}

func TestExactFiresExactly(t *testing.T) {
	eng, f := newF()
	var at sim.Time
	f.Arm("x", Exact(sim.Second), func() { at = eng.Now() })
	eng.Run(sim.Time(sim.Minute))
	if at != sim.Time(sim.Second) {
		t.Fatalf("fired at %v", at)
	}
}

func TestCancel(t *testing.T) {
	eng, f := newF()
	fired := false
	e := f.Arm("x", Exact(sim.Second), func() { fired = true })
	if !e.Pending() {
		t.Fatal("not pending")
	}
	if !f.Cancel(e) {
		t.Fatal("cancel failed")
	}
	if f.Cancel(e) {
		t.Fatal("double cancel")
	}
	eng.Run(sim.Time(sim.Minute))
	if fired {
		t.Fatal("canceled entry fired")
	}
	if f.PendingWakeups() != 0 {
		t.Fatal("backend timer leaked after last cancel")
	}
}

func TestCoalescingSharesWakeups(t *testing.T) {
	eng, f := newF()
	fired := 0
	// Ten timers, all with windows overlapping around 1 s: one wakeup.
	for i := 0; i < 10; i++ {
		f.Arm("x", Window(sim.Duration(900+10*i)*sim.Millisecond, 300*sim.Millisecond), func() { fired++ })
	}
	if f.PendingWakeups() != 1 {
		t.Fatalf("wakeups scheduled = %d, want 1", f.PendingWakeups())
	}
	eng.Run(sim.Time(sim.Minute))
	if fired != 10 {
		t.Fatalf("fired = %d", fired)
	}
	if got := f.Stats().Wakeups; got != 1 {
		t.Fatalf("wakeups taken = %d, want 1", got)
	}
	if got := f.Stats().Coalesced; got != 9 {
		t.Fatalf("coalesced = %d, want 9", got)
	}
}

func TestNoCoalescingAcrossDisjointWindows(t *testing.T) {
	eng, f := newF()
	f.Arm("a", Exact(sim.Second), func() {})
	f.Arm("b", Exact(2*sim.Second), func() {})
	if f.PendingWakeups() != 2 {
		t.Fatalf("wakeups = %d, want 2", f.PendingWakeups())
	}
	eng.Run(sim.Time(sim.Minute))
	if f.Stats().Wakeups != 2 {
		t.Fatalf("wakeups = %d", f.Stats().Wakeups)
	}
}

// Property: a batch never fires outside the intersection of its members'
// windows, whatever windows arrive.
func TestWindowRespectedProperty(t *testing.T) {
	check := func(afters []uint16, slacks []uint16) bool {
		eng, f := newF()
		ok := true
		n := len(afters)
		if n > len(slacks) {
			n = len(slacks)
		}
		for i := 0; i < n; i++ {
			after := sim.Duration(afters[i]) * sim.Millisecond
			slack := sim.Duration(slacks[i]) * sim.Millisecond
			lo, hi := sim.Time(after), sim.Time(after+slack)
			f.Arm("p", Window(after, slack), func() {
				if eng.Now() < lo || eng.Now() > hi {
					ok = false
				}
			})
		}
		// Max window is 65.5 s after + 65.5 s slack; run well past it.
		eng.Run(sim.Time(3 * sim.Minute))
		return ok && f.PendingEntries() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerDriftFree(t *testing.T) {
	eng, f := newF()
	var ticks []sim.Time
	f.NewTicker("tick", 100*sim.Millisecond, 0, func() {
		ticks = append(ticks, eng.Now())
	})
	eng.Run(sim.Time(1050 * sim.Millisecond))
	if len(ticks) != 10 {
		t.Fatalf("ticks = %d", len(ticks))
	}
	for i, at := range ticks {
		want := sim.Time(100 * sim.Millisecond * sim.Duration(i+1))
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerSlackPreservesAverageRate(t *testing.T) {
	eng, f := newF()
	tk := f.NewTicker("tick", 100*sim.Millisecond, 50*sim.Millisecond, func() {})
	eng.Run(sim.Time(10 * sim.Second))
	// Drift-free schedule: ~100 ticks despite per-tick slack.
	if tk.Ticks < 95 || tk.Ticks > 101 {
		t.Fatalf("ticks = %d, want ≈100", tk.Ticks)
	}
}

func TestTickerStop(t *testing.T) {
	eng, f := newF()
	tk := f.NewTicker("tick", 100*sim.Millisecond, 0, func() {})
	eng.Run(sim.Time(550 * sim.Millisecond))
	tk.Stop()
	n := tk.Ticks
	eng.Run(sim.Time(5 * sim.Second))
	if tk.Ticks != n {
		t.Fatal("ticked after stop")
	}
}

func TestTickersCoalesce(t *testing.T) {
	// Ten sloppy 1 s tickers share wakeups; ten precise ones do not.
	run := func(slack sim.Duration) uint64 {
		eng, f := newF()
		for i := 0; i < 10; i++ {
			f.NewTicker("t", sim.Second+sim.Duration(i)*17*sim.Millisecond, slack, func() {})
		}
		eng.Run(sim.Time(30 * sim.Second))
		return f.Stats().Wakeups
	}
	precise := run(0)
	sloppy := run(400 * sim.Millisecond)
	if sloppy >= precise/2 {
		t.Fatalf("slack did not save wakeups: %d → %d", precise, sloppy)
	}
}

func TestGuardDoneBeforeTimeout(t *testing.T) {
	eng, f := newF()
	timedOut := false
	g := f.NewGuard(nil, "op", Exact(sim.Second), func() { timedOut = true })
	eng.At(sim.Time(100*sim.Millisecond), "finish", func() {
		if !g.Done() {
			t.Error("Done returned false while pending")
		}
	})
	eng.Run(sim.Time(sim.Minute))
	if timedOut {
		t.Fatal("guard fired after Done")
	}
	if g.Done() {
		t.Fatal("second Done returned true")
	}
}

func TestGuardTimeout(t *testing.T) {
	eng, f := newF()
	timedOut := false
	g := f.NewGuard(nil, "op", Exact(sim.Second), func() { timedOut = true })
	eng.Run(sim.Time(sim.Minute))
	if !timedOut {
		t.Fatal("guard never fired")
	}
	if g.Done() {
		t.Fatal("Done after timeout returned true")
	}
}

func TestNestedGuardClippedToParent(t *testing.T) {
	// Section 5.4: an inner timeout longer than the enclosing one is
	// clipped — the inner guard fires no later than the outer deadline.
	eng, f := newF()
	var outerAt, innerAt sim.Time
	outer := f.NewGuard(nil, "outer", Exact(sim.Second), func() { outerAt = eng.Now() })
	f.NewGuard(outer.Entry(), "inner", Exact(10*sim.Second), func() { innerAt = eng.Now() })
	eng.Run(sim.Time(sim.Minute))
	if innerAt == 0 || innerAt > outerAt {
		t.Fatalf("inner fired at %v, outer at %v", innerAt, outerAt)
	}
	if innerAt != sim.Time(sim.Second) {
		t.Fatalf("inner not clipped: %v", innerAt)
	}
}

func TestProvenanceChain(t *testing.T) {
	_, f := newF()
	a := f.Arm("rpc-call", Exact(sim.Second), func() {})
	b := f.ArmChild(a, "tcp-connect", Exact(500*sim.Millisecond), func() {})
	chain := b.Chain()
	if len(chain) != 2 || chain[0] != "tcp-connect" || chain[1] != "rpc-call" {
		t.Fatalf("chain = %v", chain)
	}
	if b.Parent() != a {
		t.Fatal("parent lost")
	}
}

func TestWatchdogKickPreventsExpiry(t *testing.T) {
	eng, f := newF()
	w := f.NewWatchdog("wd", sim.Second, 0, func() {})
	var kick func()
	kick = func() {
		w.Kick()
		if eng.Now() < sim.Time(10*sim.Second) {
			eng.After(500*sim.Millisecond, "kick", kick)
		}
	}
	eng.After(500*sim.Millisecond, "kick", kick)
	eng.Run(sim.Time(10 * sim.Second))
	if w.Expiries != 0 {
		t.Fatalf("watchdog expired %d times despite kicks", w.Expiries)
	}
	eng.Run(sim.Time(20 * sim.Second))
	if w.Expiries == 0 {
		t.Fatal("watchdog never expired after kicks stopped")
	}
	w.Stop()
}

func TestDeferredFiresAfterQuiet(t *testing.T) {
	eng, f := newF()
	d := f.NewDeferred("lazy-close", sim.Second, 0, func() {})
	// Activity every 300 ms until t=3 s, then quiet.
	var touch func()
	touch = func() {
		d.Touch()
		if eng.Now() < sim.Time(3*sim.Second) {
			eng.After(300*sim.Millisecond, "touch", touch)
		}
	}
	eng.After(0, "touch", touch)
	eng.Run(sim.Time(10 * sim.Second))
	if d.Fires != 1 {
		t.Fatalf("deferred fired %d times, want 1 (after the quiet period)", d.Fires)
	}
}

func TestOverlapBothMustExpire(t *testing.T) {
	eng, f := newF()
	var which int
	var at sim.Time
	o := f.ArmOverlapping(BothMustExpire, "dhcp", 10*sim.Second, 5*sim.Second, func(w int) { which, at = w, eng.Now() })
	if f.PendingWakeups() != 1 {
		t.Fatalf("wakeups = %d, want 1 (one timer elided)", f.PendingWakeups())
	}
	eng.Run(sim.Time(sim.Minute))
	if which != 1 || at != sim.Time(10*sim.Second) {
		t.Fatalf("which=%d at=%v", which, at)
	}
	if f.Stats().Elided != 1 {
		t.Fatalf("elided = %d", f.Stats().Elided)
	}
	_ = o
}

func TestOverlapEitherMayExpire(t *testing.T) {
	eng, f := newF()
	var which int
	var at sim.Time
	f.ArmOverlapping(EitherMayExpire, "lookup", 10*sim.Second, 5*sim.Second, func(w int) { which, at = w, eng.Now() })
	eng.Run(sim.Time(sim.Minute))
	if which != 2 || at != sim.Time(5*sim.Second) {
		t.Fatalf("which=%d at=%v", which, at)
	}
}

func TestOverlapChainedCancelBeforeFirstStage(t *testing.T) {
	// NeitherNeedExpire: canceling before the short stage means the long
	// timer is never registered at all.
	eng, f := newF()
	o := f.ArmOverlapping(NeitherNeedExpire, "ka-vs-rto", 7200*sim.Second, sim.Second, func(int) {})
	arms := f.Stats().Arms
	eng.At(sim.Time(500*sim.Millisecond), "cancel", func() {
		if !o.Cancel() {
			t.Error("cancel failed")
		}
	})
	eng.Run(sim.Time(sim.Minute))
	if f.Stats().Arms != arms {
		t.Fatal("second stage was armed despite cancel")
	}
	if o.Pending() {
		t.Fatal("still pending")
	}
}

func TestOverlapChainedSecondStage(t *testing.T) {
	eng, f := newF()
	var fires []int
	f.ArmOverlapping(NeitherNeedExpire, "x", 3*sim.Second, sim.Second, func(w int) { fires = append(fires, w) })
	eng.Run(sim.Time(sim.Minute))
	// Stage 2 fires at 1 s, stage 1 at 3 s (1 s + 2 s remainder).
	if len(fires) != 2 || fires[0] != 2 || fires[1] != 1 {
		t.Fatalf("fires = %v", fires)
	}
	if eng.Now() < sim.Time(3*sim.Second) {
		t.Fatal("chain ended early")
	}
}

func TestEstimatorQuantiles(t *testing.T) {
	var e Estimator
	if e.Quantile(0.99) != 0 {
		t.Fatal("empty estimator should return 0")
	}
	// 1000 samples around 10 ms, 10 around 300 ms.
	for i := 0; i < 1000; i++ {
		e.Observe(10 * sim.Millisecond)
	}
	for i := 0; i < 10; i++ {
		e.Observe(300 * sim.Millisecond)
	}
	q50 := e.Quantile(0.5)
	q999 := e.Quantile(0.999)
	if q50 < 8*sim.Millisecond || q50 > 17*sim.Millisecond {
		t.Fatalf("q50 = %v", q50)
	}
	if q999 < 250*sim.Millisecond || q999 > 600*sim.Millisecond {
		t.Fatalf("q999 = %v", q999)
	}
	if e.Samples() != 1010 {
		t.Fatalf("samples = %d", e.Samples())
	}
}

func TestEstimatorLevelShift(t *testing.T) {
	var e Estimator
	for i := 0; i < 500; i++ {
		e.Observe(time10ms())
	}
	before := e.Quantile(0.99)
	// The user moves from LAN to WAN: latency jumps 20×.
	for i := 0; i < 60; i++ {
		e.Observe(200 * sim.Millisecond)
	}
	after := e.Quantile(0.99)
	if e.Shifts == 0 {
		t.Fatal("level shift not detected")
	}
	if after <= before*4 {
		t.Fatalf("q99 did not track the shift: %v → %v", before, after)
	}
}

func time10ms() sim.Duration { return 10 * sim.Millisecond }

// Property: quantiles are monotone in q.
func TestEstimatorMonotoneProperty(t *testing.T) {
	check := func(samples []uint32) bool {
		var e Estimator
		for _, s := range samples {
			e.Observe(sim.Duration(s%1_000_000_000) + 1)
		}
		last := sim.Duration(-1)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			v := e.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveTimeoutLifecycle(t *testing.T) {
	_, f := newF()
	a := f.NewAdaptiveTimeout("fetch", 0.99, 10*sim.Millisecond, 30*sim.Second)
	// Cold: conservative ceiling.
	if a.Current() != 30*sim.Second {
		t.Fatalf("cold timeout = %v", a.Current())
	}
	for i := 0; i < 100; i++ {
		a.ObserveSuccess(100 * sim.Millisecond)
	}
	warm := a.Current()
	if warm > 2*sim.Second || warm < 100*sim.Millisecond {
		t.Fatalf("warm timeout = %v, want a small multiple of 100 ms", warm)
	}
}

func TestAdaptiveTimeoutRetryBackoff(t *testing.T) {
	eng, f := newF()
	a := f.NewAdaptiveTimeout("fetch", 0.99, 10*sim.Millisecond, sim.Minute)
	for i := 0; i < 100; i++ {
		a.ObserveSuccess(100 * sim.Millisecond)
	}
	base := a.Current()
	// Retry ordinals back off exponentially, capped at the ceiling.
	if got := a.CurrentRetry(1); got != 2*base {
		t.Fatalf("retry 1 = %v, want %v", got, 2*base)
	}
	if got := a.CurrentRetry(2); got != 4*base {
		t.Fatalf("retry 2 = %v, want %v", got, 4*base)
	}
	if got := a.CurrentRetry(30); got != sim.Minute {
		t.Fatalf("retry 30 = %v, want ceiling", got)
	}
	// Timeout outcomes are counted.
	a.ArmRetry(1, func() {})
	eng.Run(eng.Now().Add(2 * sim.Minute))
	if a.Timeouts != 1 || a.Successes != 100 {
		t.Fatalf("counters: %d %d", a.Timeouts, a.Successes)
	}
}

func TestAdaptiveDetectsFailureFasterThanFixed30s(t *testing.T) {
	// The headline experiment (Section 5.1 / the title): with a learned
	// distribution, failure detection happens orders of magnitude before a
	// fixed 30 s timeout would fire.
	eng, f := newF()
	a := f.NewAdaptiveTimeout("rpc", 0.99, sim.Millisecond, 30*sim.Second)
	for i := 0; i < 500; i++ {
		// Typical RPC latencies ~1-5 ms.
		a.ObserveSuccess(sim.Duration(1+i%5) * sim.Millisecond)
	}
	var detectedAt sim.Time
	start := eng.Now()
	a.Arm(func() { detectedAt = eng.Now() })
	eng.Run(eng.Now().Add(sim.Minute))
	detection := detectedAt.Sub(start)
	if detection <= 0 {
		t.Fatal("never detected")
	}
	if detection > sim.Second {
		t.Fatalf("detection took %v, want well under 1 s (vs fixed 30 s)", detection)
	}
}

func TestRateTickerMaintainsAverageRate(t *testing.T) {
	eng, f := newF()
	rt := f.NewRateTicker("avg", sim.Second, func() {})
	eng.Run(sim.Time(sim.Minute))
	// "Every second on average": ±1 tick of 60 despite full-period slack.
	if rt.Ticks < 58 || rt.Ticks > 61 {
		t.Fatalf("ticks = %d over 60 s, want ≈60", rt.Ticks)
	}
}

func TestRateTickersShareWakeups(t *testing.T) {
	eng, f := newF()
	for i := 0; i < 20; i++ {
		f.NewRateTicker("avg", sim.Second, func() {})
	}
	eng.Run(sim.Time(sim.Minute))
	st := f.Stats()
	// 20 tickers × 60 ticks with full-period windows: massive batching.
	if st.Wakeups*5 > st.Fires {
		t.Fatalf("wakeups = %d for %d fires: rate tickers should batch", st.Wakeups, st.Fires)
	}
}

func TestCancelSiblingDuringBatchFire(t *testing.T) {
	// Two entries share a batch; the first callback cancels the second.
	// The canceled sibling must not fire.
	eng, f := newF()
	var fired []string
	var b *Entry
	f.Arm("a", Window(sim.Second, 100*sim.Millisecond), func() {
		fired = append(fired, "a")
		f.Cancel(b)
	})
	b = f.Arm("b", Window(sim.Second, 100*sim.Millisecond), func() {
		fired = append(fired, "b")
	})
	if f.PendingWakeups() != 1 {
		t.Fatalf("wakeups = %d", f.PendingWakeups())
	}
	eng.Run(sim.Time(sim.Minute))
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestArmDuringBatchFire(t *testing.T) {
	// Arming inside a batch callback must not disturb the firing batch.
	eng, f := newF()
	n := 0
	f.Arm("a", Exact(sim.Second), func() {
		f.Arm("child", Exact(sim.Second), func() { n += 10 })
		n++
	})
	eng.Run(sim.Time(sim.Minute))
	if n != 11 {
		t.Fatalf("n = %d", n)
	}
}

func TestArmChildOfExpiredParentUnclipped(t *testing.T) {
	eng, f := newF()
	parent := f.Arm("p", Exact(100*sim.Millisecond), func() {})
	eng.Run(sim.Time(sim.Second))
	var at sim.Time
	f.ArmChild(parent, "c", Exact(5*sim.Second), func() { at = eng.Now() })
	eng.Run(sim.Time(sim.Minute))
	// The parent already resolved; the child keeps its own deadline.
	if at != sim.Time(6*sim.Second) {
		t.Fatalf("child fired at %v", at)
	}
}

func TestOverlapCancelAfterFireReturnsFalse(t *testing.T) {
	eng, f := newF()
	o := f.ArmOverlapping(EitherMayExpire, "x", 2*sim.Second, sim.Second, func(int) {})
	eng.Run(sim.Time(sim.Minute))
	if o.Cancel() {
		t.Fatal("cancel after fire returned true")
	}
}

// TestDHCPRenewalTimers reproduces the paper's Section 5.2 worked example:
// DHCP's T1 (renew) and T2 (rebind) timers overlap, and "either just t1, or
// both t1 and t2 expiring signify a failure" — so max(t1, t2) is the
// effective deadline and one registration suffices (RFC 2131 §4.4.5).
func TestDHCPRenewalTimers(t *testing.T) {
	eng, f := newF()
	const lease = 80 * sim.Second
	t1 := lease / 2     // renew at 50% of lease
	t2 := lease * 7 / 8 // rebind at 87.5%
	renewed := false
	var deadlineAt sim.Time
	o := f.ArmOverlapping(BothMustExpire, "dhcp/renewal", t2, t1, func(int) {
		deadlineAt = eng.Now()
	})
	// The DHCP server answers the renew request before T2: the whole pair
	// cancels with one operation and one pending timer ever existed.
	eng.At(sim.Time(t1).Add(2*sim.Second), "dhcpack", func() {
		renewed = o.Cancel()
	})
	eng.Run(sim.Time(2 * sim.Minute))
	if !renewed {
		t.Fatal("renewal did not cancel the pair")
	}
	if deadlineAt != 0 {
		t.Fatalf("deadline fired at %v despite renewal", deadlineAt)
	}
	if f.Stats().Elided != 1 {
		t.Fatalf("elided = %d, want the redundant timer dropped", f.Stats().Elided)
	}

	// A dead server: the single registration fires at max(t1, t2).
	var missAt sim.Time
	f.ArmOverlapping(BothMustExpire, "dhcp/renewal", t2, t1, func(int) {
		missAt = eng.Now()
	})
	start := eng.Now()
	eng.Run(eng.Now().Add(2 * sim.Minute))
	if missAt.Sub(start) != t2 {
		t.Fatalf("deadline at +%v, want %v", missAt.Sub(start), t2)
	}
}
