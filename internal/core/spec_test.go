package core

import (
	"testing"

	"timerstudy/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Exact(0), true},
		{Exact(sim.Second), true},
		{Window(sim.Second, 200*sim.Millisecond), true},
		{AnyTimeAfter(10 * sim.Minute), true},
		{Exact(-sim.Second), false},
		{Window(sim.Second, -sim.Millisecond), false},
		{Window(-1, -1), false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestArmRejectsNegativeSpec(t *testing.T) {
	// A negative delay is a caller bug (an underflowed subtraction); it must
	// panic loudly at Arm rather than be silently clamped to "now".
	for _, spec := range []Spec{Exact(-sim.Second), Window(0, -sim.Millisecond)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Arm(%v) did not panic", spec)
				}
			}()
			_, f := newF()
			f.Arm("bad", spec, func() {})
		}()
	}
}

func TestArmChildRejectsNegativeSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ArmChild with negative spec did not panic")
		}
	}()
	_, f := newF()
	parent := f.Arm("parent", Exact(sim.Minute), func() {})
	f.ArmChild(parent, "child", Exact(-sim.Second), func() {})
}
