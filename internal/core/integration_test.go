package core_test

import (
	"testing"

	"timerstudy/internal/core"
	"timerstudy/internal/jiffies"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// The facility deployed over the Linux jiffy subsystem: the "short-term
// enhancement" path — batching shows up directly as fewer kernel timers.
func TestFacilityOverJiffiesBase(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := trace.NewBuffer(1 << 16)
	base := jiffies.NewBase(eng, tr)
	f := core.New(jiffies.CoreBackend{Base: base})

	var at sim.Time
	f.Arm("x", core.Exact(sim.Second), func() { at = eng.Now() })
	eng.Run(sim.Time(10 * sim.Second))
	if at != sim.Time(sim.Second) {
		t.Fatalf("fired at %v (jiffy-aligned 1 s expected)", at)
	}

	// Ten sloppy entries: one kernel timer set.
	before := tr.Counters().ByOp[trace.OpSet]
	fired := 0
	for i := 0; i < 10; i++ {
		f.Arm("y", core.Window(sim.Second, 500*sim.Millisecond), func() { fired++ })
	}
	eng.Run(eng.Now().Add(5 * sim.Second))
	if fired != 10 {
		t.Fatalf("fired = %d", fired)
	}
	sets := tr.Counters().ByOp[trace.OpSet] - before
	// One batch target, possibly retargeted a few times as entries join;
	// far fewer than ten independent kernel timers.
	if sets > 11 {
		t.Fatalf("kernel sets = %d for 10 coalesced entries", sets)
	}
	if facTimers := countOrigin(tr, "core:facility-wakeup"); facTimers == 0 {
		t.Fatal("no facility wakeups visible in the kernel trace")
	}
}

func countOrigin(tr *trace.Buffer, origin string) int {
	n := 0
	for _, r := range tr.Records() {
		if tr.OriginName(r.Origin) == origin {
			n++
		}
	}
	return n
}

// Sub-jiffy precision is lost over the jiffies backend (as it must be):
// the facility fires on the next tick, never early.
func TestFacilityOverJiffiesQuantizes(t *testing.T) {
	eng := sim.NewEngine(1)
	base := jiffies.NewBase(eng, trace.NewBuffer(0))
	f := core.New(jiffies.CoreBackend{Base: base})
	var at sim.Time
	f.Arm("x", core.Exact(sim.Millisecond), func() { at = eng.Now() })
	eng.Run(sim.Time(sim.Second))
	if at < sim.Time(sim.Millisecond) {
		t.Fatalf("fired early: %v", at)
	}
	if at != sim.Time(4*sim.Millisecond) {
		t.Fatalf("fired at %v, want the 4 ms jiffy", at)
	}
}
