package core

import (
	"timerstudy/internal/sim"
)

// Section 5.2: declared relationships between timers. When code knows that
// two timeouts overlap and how their expiries relate, the facility can
// register fewer concurrent timers — or only one.

// OverlapKind classifies an overlapping pair t1, t2 (t1 set at or before
// t2, expiring later), following the paper's taxonomy.
type OverlapKind int

const (
	// BothMustExpire: either just t1, or both expiring signify the
	// failure; max(t1, t2) is the effective expiry and t2 is redundant
	// (the paper's case 1a, citing DHCP's T1/T2 renewal timers).
	BothMustExpire OverlapKind = iota
	// EitherMayExpire: only the earlier deadline matters; min(t1, t2) is
	// the effective expiry and the longer timer is redundant (case 1b).
	EitherMayExpire
	// NeitherNeedExpire: the timers guard the same liveness and cancel
	// together (case 1c, TCP keepalive vs retransmission); the facility
	// arms the shorter one and chains the longer for the remainder only if
	// the shorter actually expires — the overlap-to-dependency
	// transformation that reduces concurrent timers.
	NeitherNeedExpire
)

// Overlap is a pair of logically overlapping timeouts armed through the
// minimal set of real timers.
type Overlap struct {
	f      *Facility
	live   *Entry
	chain  func() // arms the second stage, for NeitherNeedExpire
	done   bool
	onFire func(which int)
}

// ArmOverlapping arms the declared pair: d1 is the longer timeout, d2 the
// shorter (d2 <= d1 is enforced by swapping). onExpire receives 1 or 2 for
// which logical timeout fired. The return's Cancel covers both.
func (f *Facility) ArmOverlapping(kind OverlapKind, origin string, d1, d2 sim.Duration, onExpire func(which int)) *Overlap {
	if d2 > d1 {
		d1, d2 = d2, d1
	}
	o := &Overlap{f: f, onFire: onExpire}
	switch kind {
	case BothMustExpire:
		// Only max matters: one timer at d1; d2 never armed.
		f.stats.Elided++
		o.live = f.Arm(origin, Exact(d1), func() { o.fire(1) })
	case EitherMayExpire:
		// Only min matters: one timer at d2; d1 never armed.
		f.stats.Elided++
		o.live = f.Arm(origin, Exact(d2), func() { o.fire(2) })
	case NeitherNeedExpire:
		// Chain: arm d2; if it expires, arm the remainder to d1. A cancel
		// before d2 means d1 was never registered at all.
		remainder := d1 - d2
		o.live = f.Arm(origin, Exact(d2), func() {
			if o.done {
				return
			}
			o.onFire(2)
			if o.done {
				return
			}
			o.live = f.Arm(origin, Exact(remainder), func() { o.fire(1) })
		})
	}
	return o
}

func (o *Overlap) fire(which int) {
	if o.done {
		return
	}
	o.done = true
	o.onFire(which)
}

// Cancel stops whichever real timer is live; both logical timeouts are
// dead afterwards.
func (o *Overlap) Cancel() bool {
	if o.done {
		return false
	}
	o.done = true
	return o.f.Cancel(o.live)
}

// Pending reports whether the pair can still fire.
func (o *Overlap) Pending() bool { return !o.done && o.live.Pending() }
