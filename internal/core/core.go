// Package core implements the timer-system redesign the paper argues for in
// Section 5 — the reproduction's "primary contribution" library. Instead of
// the single low-level set/cancel interface whose uses the measurement study
// teases apart, it offers:
//
//   - a richer notion of time (Section 5.3): every timer is armed with a
//     TimeSpec window [Earliest, Latest], letting the facility batch
//     imprecise timers into shared wakeups (generalizing round_jiffies,
//     deferrable timers and Vista's coalescing windows),
//   - use-case-specific interfaces (Section 5.4): Ticker, Guard (timeout),
//     Watchdog, Delay and Deferred, matching the five usage patterns the
//     study identifies,
//   - timeout provenance and dependency tracking (Section 5.2): timers
//     carry origins and parent links; declared overlap/dependency relations
//     between timers let the facility elide or chain registrations,
//   - adaptive timeouts (Section 5.1): an online latency-distribution
//     estimator supplies confidence-based timeout values with exponential
//     backoff and level-shift recovery, generalizing what TCP does for
//     retransmission to any timeout in the system.
//
// The facility runs over any Backend; the simulation backend makes its
// behaviour deterministic and lets the benchmarks measure wakeup counts and
// failure-detection latency against the fixed-timeout status quo.
package core

import (
	"fmt"

	"timerstudy/internal/sim"
)

// Backend is the single underlying timer the facility multiplexes onto —
// the "one timer (such as that provided by hardware) underneath" of
// Section 2.
type Backend interface {
	// Now returns the current time.
	Now() sim.Time
	// At schedules fn at t, returning a cancel function. Implementations
	// need only support one outstanding callback per At call.
	At(t sim.Time, fn func()) (cancel func() bool)
}

// SimBackend adapts a simulation engine.
type SimBackend struct {
	// Eng is the discrete-event engine to schedule on.
	Eng *sim.Engine
}

// Now implements Backend.
func (b SimBackend) Now() sim.Time { return b.Eng.Now() }

// At implements Backend.
func (b SimBackend) At(t sim.Time, fn func()) func() bool {
	ev := b.Eng.At(t, "core:timer", fn)
	return func() bool { return b.Eng.Cancel(ev) }
}

// Entry is one armed timer inside the facility.
type Entry struct {
	f        *Facility
	spec     Spec
	earliest sim.Time
	latest   sim.Time
	fn       func()
	batch    *batch
	index    int // position in batch.entries
	fired    bool
	canceled bool

	// origin/provenance
	origin string
	parent *Entry
}

// Pending reports whether the entry is armed.
func (e *Entry) Pending() bool { return e != nil && e.batch != nil && !e.fired && !e.canceled }

// Origin returns the entry's provenance label.
func (e *Entry) Origin() string { return e.origin }

// Parent returns the provenance parent, if declared.
func (e *Entry) Parent() *Entry { return e.parent }

// Chain returns the provenance chain from this entry to the root, the
// debugging view Section 5.2 wants ("being able to trace execution through
// the system").
func (e *Entry) Chain() []string {
	var out []string
	for x := e; x != nil; x = x.parent {
		out = append(out, x.origin)
	}
	return out
}

// String formats the entry with its window for diagnostics.
func (e *Entry) String() string {
	return fmt.Sprintf("%s[%v..%v]", e.origin, e.earliest, e.latest)
}

// Stats counts facility-level activity; Wakeups vs Arms is the coalescing
// win the Section 5.3 benchmark reports.
type Stats struct {
	// Arms counts entry registrations.
	Arms uint64
	// Fires counts delivered callbacks.
	Fires uint64
	// Cancels counts canceled entries.
	Cancels uint64
	// Wakeups counts backend callbacks taken (batches fired).
	Wakeups uint64
	// Coalesced counts entries that joined an existing batch instead of
	// creating a wakeup of their own.
	Coalesced uint64
	// Elided counts entries never armed because a declared relation made
	// them redundant.
	Elided uint64
}

// Facility is the timer multiplexer: entries with windows are grouped into
// batches, each batch backed by one backend timer.
type Facility struct {
	backend Backend
	batches []*batch
	stats   Stats
}

// batch is a set of entries sharing one wakeup instant.
type batch struct {
	at      sim.Time // current fire instant
	floor   sim.Time // max of members' earliest: cannot fire before
	ceil    sim.Time // min of members' latest: cannot fire after
	entries []*Entry
	cancel  func() bool
	f       *Facility
}

// New creates a facility over a backend.
func New(b Backend) *Facility { return &Facility{backend: b} }

// Now returns the backend's time.
func (f *Facility) Now() sim.Time { return f.backend.Now() }

// Stats returns a copy of the counters.
func (f *Facility) Stats() Stats { return f.stats }

// Arm registers fn to run within the spec's window, attributed to origin.
func (f *Facility) Arm(origin string, spec Spec, fn func()) *Entry {
	e := &Entry{f: f, spec: spec, fn: fn, origin: origin}
	f.arm(e)
	return e
}

// ArmChild is Arm with a declared provenance parent (Section 5.2): the
// child's window is clipped to not outlast the parent — a nested timeout
// longer than its enclosing timeout can never matter, so the facility
// shortens it (the Section 5.4 nesting rule).
func (f *Facility) ArmChild(parent *Entry, origin string, spec Spec, fn func()) *Entry {
	e := &Entry{f: f, spec: spec, fn: fn, origin: origin, parent: parent}
	f.arm(e)
	if parent != nil && parent.Pending() && e.Pending() && e.latest > parent.latest {
		// Clip: fire no later than the parent; tighten earliest too if the
		// clip inverted the window.
		e.remove()
		e.latest = parent.latest
		if e.earliest > e.latest {
			e.earliest = e.latest
		}
		f.place(e)
	}
	return e
}

func (f *Facility) arm(e *Entry) {
	if err := e.spec.Validate(); err != nil {
		// Same contract as NewTicker: a malformed request is a programming
		// error, not a runtime condition to limp past.
		panic(err)
	}
	now := f.backend.Now()
	e.earliest, e.latest = e.spec.window(now)
	f.stats.Arms++
	f.place(e)
}

// place puts an entry into a compatible batch, or creates one. Batch choice
// maximizes sharing: any batch whose fire instant can be moved inside the
// entry's window accepts it.
func (f *Facility) place(e *Entry) {
	for _, b := range f.batches {
		// The batch can fire anywhere in [b.floor∨e.earliest, b.ceil∧e.latest].
		lo := maxTime(b.floor, e.earliest)
		hi := minTime(b.ceil, e.latest)
		if lo > hi {
			continue
		}
		b.floor, b.ceil = lo, hi
		// Fire as late as allowed: later instants collect more joiners.
		b.retarget(hi)
		e.batch = b
		e.index = len(b.entries)
		b.entries = append(b.entries, e)
		f.stats.Coalesced++
		return
	}
	b := &batch{f: f, floor: e.earliest, ceil: e.latest}
	e.batch = b
	e.index = 0
	b.entries = []*Entry{e}
	f.batches = append(f.batches, b)
	b.at = e.latest
	b.cancel = f.backend.At(b.at, b.fire)
}

func (b *batch) retarget(t sim.Time) {
	if t == b.at {
		return
	}
	_ = b.cancel()
	b.at = t
	b.cancel = b.f.backend.At(t, b.fire)
}

func (b *batch) fire() {
	f := b.f
	f.stats.Wakeups++
	f.dropBatch(b)
	for _, e := range b.entries {
		if e.canceled {
			continue
		}
		e.fired = true
		e.batch = nil
		f.stats.Fires++
		e.fn()
	}
}

func (f *Facility) dropBatch(b *batch) {
	for i, x := range f.batches {
		if x == b {
			f.batches = append(f.batches[:i], f.batches[i+1:]...)
			return
		}
	}
}

// Cancel removes a pending entry; it reports whether the entry was pending.
// When the last member of a batch cancels, the backend timer is canceled
// too — no spurious wakeup.
func (f *Facility) Cancel(e *Entry) bool {
	if !e.Pending() {
		return false
	}
	f.stats.Cancels++
	e.remove()
	e.canceled = true
	return true
}

// remove detaches a pending entry from its batch.
func (e *Entry) remove() {
	b := e.batch
	e.batch = nil
	last := len(b.entries) - 1
	for i, x := range b.entries {
		if x == e {
			b.entries[i] = b.entries[last]
			b.entries = b.entries[:last]
			break
		}
	}
	if len(b.entries) == 0 {
		_ = b.cancel()
		e.f.dropBatch(b)
	}
}

// PendingEntries returns the number of armed entries (tests/examples).
func (f *Facility) PendingEntries() int {
	n := 0
	for _, b := range f.batches {
		n += len(b.entries)
	}
	return n
}

// PendingWakeups returns the number of distinct scheduled wakeups.
func (f *Facility) PendingWakeups() int { return len(f.batches) }

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
