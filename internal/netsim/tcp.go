package netsim

import (
	"errors"
	"fmt"

	"timerstudy/internal/sim"
)

// Transport constants mirroring the Linux values the paper observes
// (Table 3): the 200 ms minimum RTO (seen as 0.204 s = 51 jiffies), the
// 40 ms delayed-ACK timer (0.04 s), the 3 s initial connect/retransmit
// timeout, and the 7200 s keepalive.
const (
	// MinRTO is the minimum retransmission timeout.
	MinRTO = 200 * sim.Millisecond
	// MaxRTO caps exponential backoff.
	MaxRTO = 120 * sim.Second
	// InitialRTO applies before any RTT sample exists (RFC 1122 / BSD 3 s).
	InitialRTO = 3 * sim.Second
	// DelayedAckTimeout is the receiver's ACK delay.
	DelayedAckTimeout = 40 * sim.Millisecond
	// KeepaliveIdle is the famous two-hour keepalive.
	KeepaliveIdle = 7200 * sim.Second
	// MaxDataRetries aborts a connection after this many consecutive
	// retransmissions (tcp_retries2-ish).
	MaxDataRetries = 12
	// MaxSynRetries aborts connection establishment (tcp_syn_retries).
	MaxSynRetries = 5
	headerSize    = 40
)

// ErrTimeout is returned when retransmissions are exhausted.
var ErrTimeout = errors.New("netsim: connection timed out")

// ErrReset is returned for connections aborted by the peer or closed
// locally with I/O pending.
var ErrReset = errors.New("netsim: connection reset")

type segKind uint8

const (
	segSYN segKind = iota
	segSYNACK
	segDATA
	segACK
	segFIN
)

type segment struct {
	kind     segKind
	fromPort uint16
	toPort   uint16
	seq      uint64 // message sequence for DATA
	ack      uint64 // cumulative: highest delivered seq
	payload  any
	size     int
	// wndClosed advertises a zero receive window; probe marks a
	// window-probe segment from the persist machinery.
	wndClosed bool
	probe     bool
}

// RTOEstimator is the Jacobson/Karels mean-and-variance estimator used by
// TCP (Section 5.1: "A prominent example of the use of adaptive
// timeouts..."), with Karn's rule applied by the caller (no samples from
// retransmitted messages).
type RTOEstimator struct {
	srtt   sim.Duration
	rttvar sim.Duration
	seeded bool
}

// Observe folds in one RTT sample.
func (e *RTOEstimator) Observe(rtt sim.Duration) {
	if !e.seeded {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.seeded = true
		return
	}
	err := rtt - e.srtt
	if err < 0 {
		err = -err
	}
	e.srtt += (rtt - e.srtt) / 8
	e.rttvar += (err - e.rttvar) / 4
}

// RTO returns srtt + 4·rttvar clamped to [MinRTO, MaxRTO], or InitialRTO
// before the first sample.
func (e *RTOEstimator) RTO() sim.Duration {
	if !e.seeded {
		return InitialRTO
	}
	rto := e.srtt + 4*e.rttvar
	if rto < MinRTO {
		rto = MinRTO
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	return rto
}

// SRTT returns the smoothed RTT (zero before seeding).
func (e *RTOEstimator) SRTT() sim.Duration { return e.srtt }

// Stack is one host's TCP-lite instance.
type Stack struct {
	net  *Network
	fac  Facility
	host string

	listeners map[uint16]func(*Conn)
	conns     map[string]*Conn // key host:port:port
	nextPort  uint16

	arp *arpCache

	// KeepaliveEnabled arms the 7200 s keepalive on established
	// connections (on for the Linux personality, off for Vista — the paper
	// notes its absence from the Vista webserver trace).
	KeepaliveEnabled bool

	// OriginPrefix labels this stack's kernel timers; default "kernel/tcp".
	OriginPrefix string

	// OnRaw receives non-TCP, non-ARP packets addressed to this host
	// (datagram traffic like the Skype voice stream). May be nil.
	OnRaw func(Packet)
}

// NewStack attaches a TCP-lite instance for host to the network, arming its
// timers through fac. The ARP neighbour subsystem starts immediately.
func NewStack(n *Network, host string, fac Facility) *Stack {
	s := &Stack{
		net: n, fac: fac, host: host,
		listeners:    map[uint16]func(*Conn){},
		conns:        map[string]*Conn{},
		nextPort:     32768,
		OriginPrefix: "kernel/tcp",
	}
	s.arp = newARPCache(s)
	n.Attach(host, s.receive)
	return s
}

// Host returns the stack's host name.
func (s *Stack) Host() string { return s.host }

// Facility returns the timer facility (used by the ARP subsystem and tests).
func (s *Stack) Facility() Facility { return s.fac }

// Listen registers an accept callback for a port.
func (s *Stack) Listen(port uint16, accept func(*Conn)) {
	s.listeners[port] = accept
}

func connKey(remote string, remotePort, localPort uint16) string {
	return fmt.Sprintf("%s:%d:%d", remote, remotePort, localPort)
}

type connState uint8

const (
	stateSynSent connState = iota
	stateEstablished
	stateClosed
)

type outMsg struct {
	seq     uint64
	size    int
	payload any
	acked   func(error)
	retrans int
	sentAt  sim.Time
}

// Conn is a TCP-lite connection carrying whole messages reliably with
// cumulative ACKs, one message in flight per direction.
type Conn struct {
	stack      *Stack
	remote     string
	remotePort uint16
	localPort  uint16
	state      connState
	server     bool

	est RTOEstimator

	retransTimer   Handle
	delackTimer    Handle
	keepaliveTimer Handle
	persistTimer   Handle

	nextSeq       uint64
	inflight      *outMsg
	sendq         []*outMsg
	lastDelivered uint64
	ackPending    bool
	recvClosed    bool // we advertise a zero window
	peerClosed    bool // the peer advertised a zero window
	persistShift  int  // persist backoff exponent

	onConnect   func(*Conn, error)
	synSent     sim.Time
	synRetries  int
	gotFirstAck bool

	// OnMessage receives delivered application messages.
	OnMessage func(c *Conn, size int, payload any)
	// OnClose runs once when the connection dies (FIN, reset, or timeout
	// abort). err is nil for a clean remote close.
	OnClose func(err error)
}

// RemoteHost returns the peer's host name.
func (c *Conn) RemoteHost() string { return c.remote }

// Established reports whether the handshake completed and the connection is
// still open.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Estimator exposes the connection's RTO state (read-only use).
func (c *Conn) Estimator() *RTOEstimator { return &c.est }

func (s *Stack) newConn(remote string, remotePort, localPort uint16, server bool) *Conn {
	c := &Conn{
		stack: s, remote: remote, remotePort: remotePort, localPort: localPort,
		server: server,
	}
	// The per-socket timer structures, created at socket creation as in
	// inet_csk: stable identities per connection.
	c.retransTimer = s.fac.NewTimer(s.OriginPrefix+":retransmit", c.onRetransTimeout)
	c.delackTimer = s.fac.NewTimer(s.OriginPrefix+":delack", c.onDelackTimeout)
	c.keepaliveTimer = s.fac.NewTimer(s.OriginPrefix+":keepalive", c.onKeepalive)
	c.persistTimer = s.fac.NewTimer(s.OriginPrefix+":persist", c.onPersist)
	s.conns[connKey(remote, remotePort, localPort)] = c
	return c
}

// Connect opens a connection; cb receives the established connection or an
// error after SYN retries are exhausted. Name resolution (ARP) happens
// first, as for a LAN peer.
func (s *Stack) Connect(remote string, port uint16, cb func(*Conn, error)) {
	s.nextPort++
	localPort := s.nextPort
	c := s.newConn(remote, port, localPort, false)
	c.state = stateSynSent
	c.onConnect = cb
	s.arp.resolve(remote, func(ok bool) {
		if c.state != stateSynSent {
			return
		}
		if !ok {
			c.fail(ErrTimeout)
			return
		}
		c.sendSYN()
	})
}

func (c *Conn) sendSYN() {
	c.synSent = c.stack.fac.Now()
	c.transmit(segment{kind: segSYN, size: headerSize})
	c.armRetrans()
}

func (c *Conn) armRetrans() {
	rto := c.est.RTO()
	for i := 0; i < c.backoffShifts(); i++ {
		rto *= 2
		if rto >= MaxRTO {
			rto = MaxRTO
			break
		}
	}
	c.retransTimer.Arm(rto)
}

func (c *Conn) backoffShifts() int {
	if c.inflight != nil {
		return c.inflight.retrans
	}
	return 0
}

func (c *Conn) transmit(seg segment) {
	seg.fromPort = c.localPort
	seg.toPort = c.remotePort
	seg.ack = c.lastDelivered
	seg.wndClosed = c.recvClosed
	c.stack.net.Send(Packet{
		From: c.stack.host, To: c.remote,
		Size: seg.size, Payload: seg,
	})
}

// Send queues a message; acked runs when the peer's ACK covers it (or with
// an error when the connection dies first).
func (c *Conn) Send(size int, payload any, acked func(error)) {
	if c.state == stateClosed {
		if acked != nil {
			acked(ErrReset)
		}
		return
	}
	c.nextSeq++
	m := &outMsg{seq: c.nextSeq, size: size, payload: payload, acked: acked}
	c.sendq = append(c.sendq, m)
	c.pump()
}

func (c *Conn) pump() {
	if c.state != stateEstablished || c.inflight != nil || len(c.sendq) == 0 {
		return
	}
	if c.peerClosed {
		// The peer advertised a zero window: nothing may be sent. The
		// persist timer probes the receiver so that a lost window-update
		// cannot deadlock the connection (Section 5.1's second adaptive
		// TCP timer), backing off exponentially like the RTO.
		if !c.persistTimer.Pending() {
			c.armPersist()
		}
		return
	}
	m := c.sendq[0]
	c.sendq = c.sendq[:copy(c.sendq, c.sendq[1:])]
	c.inflight = m
	m.sentAt = c.stack.fac.Now()
	// Data carries a cumulative ACK: cancel a pending delayed ACK.
	if c.ackPending {
		_ = c.delackTimer.Stop()
		c.ackPending = false
	}
	c.transmit(segment{kind: segDATA, seq: m.seq, size: m.size + headerSize, payload: m.payload})
	c.armRetrans()
}

func (c *Conn) onRetransTimeout() {
	switch c.state {
	case stateSynSent:
		c.synRetries++
		if c.synRetries >= MaxSynRetries {
			c.fail(ErrTimeout)
			return
		}
		// Exponential backoff on the initial 3 s timeout: 3, 6, 12, 24 s...
		c.transmit(segment{kind: segSYN, size: headerSize})
		rto := InitialRTO
		for i := 0; i < c.synRetries; i++ {
			rto *= 2
		}
		c.retransTimer.Arm(rto)
	case stateEstablished:
		if c.inflight == nil {
			return // spurious
		}
		c.inflight.retrans++
		if c.inflight.retrans > MaxDataRetries {
			c.fail(ErrTimeout)
			return
		}
		c.transmit(segment{kind: segDATA, seq: c.inflight.seq,
			size: c.inflight.size + headerSize, payload: c.inflight.payload})
		c.armRetrans()
	}
}

func (c *Conn) onDelackTimeout() {
	if c.state != stateEstablished || !c.ackPending {
		return
	}
	c.ackPending = false
	c.transmit(segment{kind: segACK, size: headerSize})
}

// armPersist schedules the next zero-window probe with exponential backoff.
func (c *Conn) armPersist() {
	d := c.est.RTO()
	for i := 0; i < c.persistShift; i++ {
		d *= 2
		if d >= MaxRTO {
			d = MaxRTO
			break
		}
	}
	c.persistTimer.Arm(d)
}

// onPersist fires the window probe.
func (c *Conn) onPersist() {
	if c.state != stateEstablished || !c.peerClosed {
		return
	}
	c.persistShift++
	c.transmit(segment{kind: segACK, size: headerSize, probe: true})
	c.armPersist()
}

func (c *Conn) onKeepalive() {
	// Two virtual hours of idleness: probe. No workload in this study runs
	// long enough to reach it (the paper makes the same observation); the
	// probe simply re-arms.
	if c.state == stateEstablished {
		c.transmit(segment{kind: segACK, size: headerSize})
		c.keepaliveTimer.Arm(KeepaliveIdle)
	}
}

// fail aborts the connection with an error.
func (c *Conn) fail(err error) {
	if c.state == stateClosed {
		return
	}
	cb := c.onConnect
	c.teardown()
	if cb != nil {
		cb(nil, err)
	} else if c.inflight != nil && c.inflight.acked != nil {
		c.inflight.acked(err)
	}
	if c.OnClose != nil {
		c.OnClose(err)
	}
}

// Close sends FIN and tears the connection down. Pending sends error with
// ErrReset.
func (c *Conn) Close() {
	if c.state == stateClosed {
		return
	}
	c.transmit(segment{kind: segFIN, size: headerSize})
	pendingErr := c.pendingSends()
	c.teardown()
	for _, m := range pendingErr {
		if m.acked != nil {
			m.acked(ErrReset)
		}
	}
}

func (c *Conn) pendingSends() []*outMsg {
	var out []*outMsg
	if c.inflight != nil {
		out = append(out, c.inflight)
	}
	out = append(out, c.sendq...)
	return out
}

func (c *Conn) teardown() {
	c.state = stateClosed
	c.inflight = nil
	c.sendq = nil
	_ = c.retransTimer.Stop()
	_ = c.delackTimer.Stop()
	_ = c.persistTimer.Stop()
	if c.stack.KeepaliveEnabled {
		_ = c.keepaliveTimer.Stop()
	}
	// The socket dies; its embedded timer structs go back to the slab.
	c.retransTimer.Release()
	c.delackTimer.Release()
	c.keepaliveTimer.Release()
	c.persistTimer.Release()
	delete(c.stack.conns, connKey(c.remote, c.remotePort, c.localPort))
}

// receive dispatches an incoming packet to ARP or the owning connection.
func (s *Stack) receive(p Packet) {
	switch seg := p.Payload.(type) {
	case arpPayload:
		s.arp.receive(p.From, seg)
		return
	case segment:
		s.arp.observed(p.From)
		s.receiveSegment(p.From, seg)
	default:
		// Datagrams and LAN noise: refresh the neighbour cache, then hand
		// non-broadcast traffic to the raw tap.
		s.arp.observed(p.From)
		if s.OnRaw != nil {
			s.OnRaw(p)
		}
	}
}

func (s *Stack) receiveSegment(from string, seg segment) {
	key := connKey(from, seg.fromPort, seg.toPort)
	c, ok := s.conns[key]
	if !ok {
		if seg.kind == segSYN {
			if accept, lok := s.listeners[seg.toPort]; lok {
				nc := s.newConn(from, seg.fromPort, seg.toPort, true)
				nc.establish()
				nc.synSent = s.fac.Now() // SYNACK departure, for the RTT sample
				nc.transmit(segment{kind: segSYNACK, size: headerSize})
				accept(nc)
			}
			// No listener: silently drop, the client's SYN backs off —
			// the "refused connection" behaviour layered services retry
			// against in Section 2.2.2.
		}
		return
	}
	c.noteWindow(seg)
	switch seg.kind {
	case segSYN:
		// Duplicate SYN on an accepted connection: re-ack.
		c.transmit(segment{kind: segSYNACK, size: headerSize})
	case segSYNACK:
		if c.state == stateSynSent {
			_ = c.retransTimer.Stop()
			rtt := s.fac.Now().Sub(c.synSent)
			if c.synRetries == 0 {
				c.est.Observe(rtt)
			}
			c.establish()
			cb := c.onConnect
			c.onConnect = nil
			c.transmit(segment{kind: segACK, size: headerSize})
			if cb != nil {
				cb(c, nil)
			}
		}
	case segDATA:
		if c.state != stateEstablished {
			return
		}
		c.sampleHandshakeRTT()
		c.processAck(seg.ack)
		if seg.seq == c.lastDelivered+1 {
			c.lastDelivered = seg.seq
			if c.OnMessage != nil {
				c.OnMessage(c, seg.size-headerSize, seg.payload)
			}
		}
		// Delayed ACK: arm (or leave armed) the 40 ms timer; a response
		// written before it fires piggybacks the ACK instead.
		if c.state == stateEstablished && c.inflight == nil && len(c.sendq) == 0 {
			if !c.ackPending {
				c.ackPending = true
				c.delackTimer.Arm(DelayedAckTimeout)
			}
		} else if c.state == stateEstablished {
			c.pump()
		}
	case segACK:
		c.sampleHandshakeRTT()
		if seg.probe {
			// Window probe: answer immediately with our window state.
			c.transmit(segment{kind: segACK, size: headerSize})
		}
		c.processAck(seg.ack)
	case segFIN:
		if c.state == stateClosed {
			return
		}
		pending := c.pendingSends()
		c.teardown()
		for _, m := range pending {
			if m.acked != nil {
				m.acked(ErrReset)
			}
		}
		if c.OnClose != nil {
			c.OnClose(nil)
		}
	}
}

// sampleHandshakeRTT seeds a server-side estimator from the SYNACK→ACK
// round trip, as real stacks do — without it every response's retransmit
// timer would be armed at the 3 s initial RTO instead of the ~0.2 s minimum
// the paper observes (Table 3's 0.204 s row).
func (c *Conn) sampleHandshakeRTT() {
	if !c.server || c.gotFirstAck {
		return
	}
	c.gotFirstAck = true
	c.est.Observe(c.stack.fac.Now().Sub(c.synSent))
}

// noteWindow folds the peer's advertised window into sender state and
// restarts transmission when it reopens.
func (c *Conn) noteWindow(seg segment) {
	wasClosed := c.peerClosed
	c.peerClosed = seg.wndClosed
	if wasClosed && !c.peerClosed {
		c.persistShift = 0
		if c.persistTimer.Pending() {
			_ = c.persistTimer.Stop()
		}
		c.pump()
	}
}

// PauseReceiving advertises a zero receive window (the application stopped
// reading); the peer's sends queue behind its persist timer.
func (c *Conn) PauseReceiving() {
	if c.recvClosed || c.state != stateEstablished {
		c.recvClosed = true
		return
	}
	c.recvClosed = true
	c.transmit(segment{kind: segACK, size: headerSize})
}

// ResumeReceiving reopens the window and announces it.
func (c *Conn) ResumeReceiving() {
	if !c.recvClosed {
		return
	}
	c.recvClosed = false
	if c.state == stateEstablished {
		c.transmit(segment{kind: segACK, size: headerSize})
	}
}

func (c *Conn) establish() {
	c.state = stateEstablished
	if c.stack.KeepaliveEnabled {
		c.keepaliveTimer.Arm(KeepaliveIdle)
	}
	c.pump()
}

func (c *Conn) processAck(ack uint64) {
	if c.inflight == nil || ack < c.inflight.seq {
		return
	}
	m := c.inflight
	c.inflight = nil
	_ = c.retransTimer.Stop()
	if m.retrans == 0 { // Karn's rule
		c.est.Observe(c.stack.fac.Now().Sub(m.sentAt))
	}
	if m.acked != nil {
		m.acked(nil)
	}
	c.pump()
}
