package netsim

import (
	"sort"

	"timerstudy/internal/sim"
)

// Fabric is the fleet-scale link matrix: the datacenter's cabling, shared by
// every simulated host. Unlike Network — which is bound to one engine and
// mutates per-send state (rng, label cache, delivery counters) — a Fabric
// holds only link *configuration*, split into two phases:
//
//   - build phase (single-threaded): AddHost, SetDefaultPath, SetPath;
//   - frozen phase (after Freeze): PathFor, RecvLabel, MinLatency, Hosts and
//     Bandwidth are pure reads over immutable maps, safe to call from any
//     number of parallel host workers without synchronization.
//
// The split is what makes per-window parallel host advance race-free: link
// lookups happen on worker goroutines inside host callbacks, so any lazily
// populated cache here would be a data race (TestFabricConcurrentReads pins
// this under -race, and the goroutinecapture analyzer audits the callers).
// Delivery labels are therefore interned eagerly at Freeze — one per host,
// not one per pair, so a 10k-host fabric interns 10k strings, not 100M.
type Fabric struct {
	frozen bool
	def    PathConfig
	paths  map[pathKey]PathConfig
	hosts  []string
	seen   map[string]bool
	labels map[string]string // host -> interned inbound-delivery event label
	minLat sim.Duration
	hasMin bool
	// bandwidth is the serialization rate in bytes per virtual second
	// (default 125 MB/s, matching Network).
	bandwidth int64
}

const (
	// defaultFabricLatency: one-way propagation inside a datacenter row
	// (top-of-rack + aggregation), the lookahead the default fleet gets.
	defaultFabricLatency = 200 * sim.Microsecond
	// defaultFabricJitter: switch queueing variance on the same path.
	defaultFabricJitter = 20 * sim.Microsecond
)

// NewFabric returns an empty fabric with the datacenter default link: 200 µs
// one-way, 20 µs jitter, no loss, gigabit serialization.
func NewFabric() *Fabric {
	return &Fabric{
		def:       PathConfig{Latency: defaultFabricLatency, Jitter: defaultFabricJitter},
		paths:     map[pathKey]PathConfig{},
		seen:      map[string]bool{},
		labels:    map[string]string{},
		bandwidth: 125 << 20,
	}
}

// mutable panics after Freeze: the frozen phase is what makes unsynchronized
// concurrent reads sound, so late mutation is a programming error.
func (f *Fabric) mutable(op string) {
	if f.frozen {
		panic("netsim: Fabric." + op + " after Freeze")
	}
}

// AddHost registers a host. Hosts must be registered before Freeze so their
// delivery labels can be interned eagerly.
func (f *Fabric) AddHost(name string) {
	f.mutable("AddHost")
	if f.seen[name] {
		return
	}
	f.seen[name] = true
	f.hosts = append(f.hosts, name)
}

// SetDefaultPath changes the default link behaviour.
func (f *Fabric) SetDefaultPath(cfg PathConfig) {
	f.mutable("SetDefaultPath")
	f.def = cfg
}

// SetPath overrides the link between two hosts (order-insensitive).
func (f *Fabric) SetPath(a, b string, cfg PathConfig) {
	f.mutable("SetPath")
	f.paths[mkPath(a, b)] = cfg
}

// SetBandwidth changes the serialization rate (bytes per virtual second);
// 0 disables serialization delay.
func (f *Fabric) SetBandwidth(bytesPerSec int64) {
	f.mutable("SetBandwidth")
	f.bandwidth = bytesPerSec
}

// Freeze ends the build phase: it interns the per-host delivery labels,
// computes the minimum link latency (the fleet's conservative lookahead),
// and sorts the host list. After Freeze every accessor is a lock-free read.
func (f *Fabric) Freeze() {
	f.mutable("Freeze")
	f.frozen = true
	sort.Strings(f.hosts)
	for _, h := range f.hosts {
		f.labels[h] = "net:recv@" + h
	}
	// Lookahead is bounded by the *base* latency of the cheapest link:
	// jitter and serialization only ever add delay, so every message sent at
	// time t is delivered at t + MinLatency or later.
	if len(f.hosts) > 1 {
		f.minLat = f.def.Latency
		f.hasMin = true
	}
	for _, cfg := range f.paths {
		if !f.hasMin || cfg.Latency < f.minLat {
			f.minLat = cfg.Latency
			f.hasMin = true
		}
	}
}

// Frozen reports whether the build phase has ended.
func (f *Fabric) Frozen() bool { return f.frozen }

// PathFor returns the config governing traffic between two hosts. Safe for
// concurrent use after Freeze.
func (f *Fabric) PathFor(a, b string) PathConfig {
	if cfg, ok := f.paths[mkPath(a, b)]; ok {
		return cfg
	}
	return f.def
}

// RecvLabel returns the interned inbound-delivery event label for a host
// ("net:recv@ws-0001"), or "" for an unregistered host. Safe for concurrent
// use after Freeze.
func (f *Fabric) RecvLabel(host string) string { return f.labels[host] }

// MinLatency returns the smallest one-way link latency across the fabric —
// the conservative lookahead bound. ok is false when the fabric has fewer
// than two hosts and no explicit paths (no cross-host traffic is possible,
// so the lookahead is unbounded). Safe for concurrent use after Freeze.
func (f *Fabric) MinLatency() (sim.Duration, bool) { return f.minLat, f.hasMin }

// Bandwidth returns the serialization rate in bytes per virtual second.
// Safe for concurrent use after Freeze.
func (f *Fabric) Bandwidth() int64 { return f.bandwidth }

// Hosts returns the registered host names, sorted. The slice is shared;
// callers must not mutate it.
func (f *Fabric) Hosts() []string { return f.hosts }
