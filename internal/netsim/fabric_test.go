package netsim

import (
	"fmt"
	"sync"
	"testing"

	"timerstudy/internal/sim"
)

func buildTestFabric(hosts int) *Fabric {
	f := NewFabric()
	for i := 0; i < hosts; i++ {
		f.AddHost(fmt.Sprintf("h-%03d", i))
	}
	f.SetPath("h-000", "h-001", PathConfig{Latency: 50 * sim.Microsecond})
	f.SetPath("h-001", "h-002", PathConfig{Latency: 900 * sim.Microsecond, Jitter: 100 * sim.Microsecond})
	f.Freeze()
	return f
}

// TestFabricConcurrentReads is the fleet's concurrency contract: after
// Freeze, link-delay lookups and label-cache reads happen from every parallel
// host worker at once. Run under -race (check.sh does), any lazily populated
// state here shows up as a report.
func TestFabricConcurrentReads(t *testing.T) {
	f := buildTestFabric(32)
	hosts := f.Hosts()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a := hosts[(i+w)%len(hosts)]
				b := hosts[(i*7+w*3)%len(hosts)]
				cfg := f.PathFor(a, b)
				if cfg.Latency <= 0 {
					t.Errorf("PathFor(%s,%s) latency %v", a, b, cfg.Latency)
					return
				}
				if f.RecvLabel(a) == "" || f.RecvLabel(b) == "" {
					t.Errorf("missing recv label for %s or %s", a, b)
					return
				}
				if _, ok := f.MinLatency(); !ok {
					t.Error("MinLatency not available after Freeze")
					return
				}
				_ = f.Bandwidth()
			}
		}(w)
	}
	wg.Wait()
}

func TestFabricMinLatency(t *testing.T) {
	f := buildTestFabric(4)
	min, ok := f.MinLatency()
	if !ok || min != 50*sim.Microsecond {
		t.Fatalf("MinLatency = %v,%v want 50µs,true (cheapest explicit path)", min, ok)
	}

	// A single host with no paths has no cross-host traffic: lookahead
	// unbounded.
	lone := NewFabric()
	lone.AddHost("only")
	lone.Freeze()
	if _, ok := lone.MinLatency(); ok {
		t.Fatal("MinLatency reported a bound for a single-host fabric")
	}

	// A zero-latency link collapses the lookahead to zero (degenerate
	// lock-step mode in the fleet).
	z := NewFabric()
	z.AddHost("a")
	z.AddHost("b")
	z.SetPath("a", "b", PathConfig{Latency: 0})
	z.Freeze()
	if min, ok := z.MinLatency(); !ok || min != 0 {
		t.Fatalf("zero-latency fabric MinLatency = %v,%v want 0,true", min, ok)
	}
}

func TestFabricFreezeDiscipline(t *testing.T) {
	f := NewFabric()
	f.AddHost("a")
	f.AddHost("a") // duplicate is a no-op
	f.AddHost("b")
	f.Freeze()
	if got := f.Hosts(); len(got) != 2 {
		t.Fatalf("hosts after duplicate AddHost: %v", got)
	}
	if f.RecvLabel("a") != "net:recv@a" {
		t.Fatalf("RecvLabel(a) = %q", f.RecvLabel("a"))
	}
	if f.RecvLabel("ghost") != "" {
		t.Fatalf("RecvLabel(ghost) = %q, want empty", f.RecvLabel("ghost"))
	}
	for name, fn := range map[string]func(){
		"AddHost":        func() { f.AddHost("c") },
		"SetPath":        func() { f.SetPath("a", "b", PathConfig{}) },
		"SetDefaultPath": func() { f.SetDefaultPath(PathConfig{}) },
		"SetBandwidth":   func() { f.SetBandwidth(1) },
		"Freeze":         func() { f.Freeze() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Freeze did not panic", name)
				}
			}()
			fn()
		}()
	}
}
