package netsim

import (
	"testing"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/ktimer"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

type fixture struct {
	eng *sim.Engine
	tr  *trace.Buffer
	net *Network
}

func newFixture(seed int64) *fixture {
	eng := sim.NewEngine(seed)
	return &fixture{eng: eng, tr: trace.NewBuffer(1 << 20), net: NewNetwork(eng)}
}

func (f *fixture) linuxStack(host string) *Stack {
	base := jiffies.NewBase(f.eng, f.tr)
	s := NewStack(f.net, host, &LinuxFacility{Base: base})
	s.KeepaliveEnabled = true
	return s
}

func (f *fixture) vistaStack(host string) *Stack {
	k := ktimer.NewKernel(f.eng, f.tr)
	return NewStack(f.net, host, &VistaFacility{Kernel: k})
}

func TestRTOEstimatorJacobson(t *testing.T) {
	var e RTOEstimator
	if e.RTO() != InitialRTO {
		t.Fatalf("initial RTO = %v", e.RTO())
	}
	e.Observe(100 * sim.Millisecond)
	// First sample: srtt=100ms, rttvar=50ms → rto=300ms.
	if e.RTO() != 300*sim.Millisecond {
		t.Fatalf("RTO after first sample = %v", e.RTO())
	}
	// Converging on a steady 100 ms RTT drives rttvar down; RTO clamps at
	// the 200 ms minimum.
	for i := 0; i < 100; i++ {
		e.Observe(100 * sim.Millisecond)
	}
	if e.RTO() != MinRTO {
		t.Fatalf("steady-state RTO = %v, want clamp at %v", e.RTO(), MinRTO)
	}
	// A latency spike inflates variance and the RTO follows.
	e.Observe(2 * sim.Second)
	if e.RTO() <= MinRTO {
		t.Fatal("RTO did not react to a spike")
	}
}

func TestRTOEstimatorClampsMax(t *testing.T) {
	var e RTOEstimator
	for i := 0; i < 5; i++ {
		e.Observe(200 * sim.Second)
	}
	if e.RTO() != MaxRTO {
		t.Fatalf("RTO = %v, want clamp at %v", e.RTO(), MaxRTO)
	}
}

func TestConnectAndExchange(t *testing.T) {
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	var gotReq, gotResp string
	srv.Listen(80, func(c *Conn) {
		c.OnMessage = func(c *Conn, size int, payload any) {
			gotReq = payload.(string)
			c.Send(1200, "response", nil)
		}
	})
	cli.Connect("server", 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.OnMessage = func(_ *Conn, size int, payload any) {
			gotResp = payload.(string)
		}
		c.Send(300, "request", nil)
	})
	f.eng.Run(sim.Time(5 * sim.Second))
	if gotReq != "request" || gotResp != "response" {
		t.Fatalf("req=%q resp=%q", gotReq, gotResp)
	}
}

func TestConnectToUnreachableHostTimesOut(t *testing.T) {
	f := newFixture(1)
	cli := f.linuxStack("client")
	// "ghost" is not attached: ARP solicits all die.
	var gotErr error
	done := false
	cli.Connect("ghost", 80, func(c *Conn, err error) { gotErr, done = err, true })
	f.eng.Run(sim.Time(sim.Minute))
	if !done || gotErr == nil {
		t.Fatalf("err = %v done = %v", gotErr, done)
	}
	// ARP gives up after 3 solicits × 1 s.
	if f.eng.Now() > sim.Time(sim.Minute) {
		t.Fatal("took too long")
	}
}

func TestConnectRefusedBacksOffExponentially(t *testing.T) {
	// Host attached (answers ARP) but nothing listens: SYNs vanish and the
	// client retries on the 3 s initial timeout, doubling — the layering
	// pathology of Section 2.2.2.
	f := newFixture(1)
	_ = f.linuxStack("server") // no listener
	cli := f.linuxStack("client")
	var doneAt sim.Time
	var gotErr error
	cli.Connect("server", 80, func(c *Conn, err error) { gotErr, doneAt = err, f.eng.Now() })
	f.eng.Run(sim.Time(5 * sim.Minute))
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v", gotErr)
	}
	// 3+6+12+24+48 s of backoff ≈ 93 s before giving up after the 5th
	// retry — the classic tcp_syn_retries=5 schedule.
	want := sim.Time(93 * sim.Second)
	if doneAt < want-sim.Time(2*sim.Second) || doneAt > want+sim.Time(10*sim.Second) {
		t.Fatalf("gave up at %v, want ≈%v", doneAt, want)
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	f := newFixture(3)
	f.net.SetDefaultPath(PathConfig{Latency: sim.Millisecond, Jitter: sim.Millisecond, Loss: 0.2})
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	delivered := 0
	srv.Listen(80, func(c *Conn) {
		c.OnMessage = func(c *Conn, size int, payload any) { delivered++ }
	})
	sent := 0
	cli.Connect("server", 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		var next func(error)
		next = func(error) {
			if sent < 20 {
				sent++
				c.Send(1000, sent, next)
			}
		}
		next(nil)
	})
	f.eng.Run(sim.Time(10 * sim.Minute))
	if delivered != 20 {
		t.Fatalf("delivered %d/20 (sent=%d)", delivered, sent)
	}
}

func TestKarnNoSampleFromRetransmit(t *testing.T) {
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	srv.Listen(80, func(c *Conn) {
		c.OnMessage = func(c *Conn, size int, payload any) {}
	})
	var conn *Conn
	cli.Connect("server", 80, func(c *Conn, err error) { conn = c })
	f.eng.Run(sim.Time(sim.Second))
	if conn == nil {
		t.Fatal("no connection")
	}
	srttBefore := conn.Estimator().SRTT()
	// Make the link black-hole outbound long enough to force retransmits,
	// then restore.
	f.net.SetPath("client", "server", PathConfig{Latency: sim.Millisecond, Loss: 1})
	conn.Send(100, "x", nil)
	f.eng.Run(f.eng.Now().Add(sim.Second))
	f.net.SetPath("client", "server", PathConfig{Latency: sim.Millisecond})
	f.eng.Run(f.eng.Now().Add(10 * sim.Second))
	// The message was retransmitted; Karn's rule forbids sampling it, and
	// one handshake sample must remain the only contribution.
	if got := conn.Estimator().SRTT(); got != srttBefore {
		t.Fatalf("srtt changed on a retransmitted sample: %v → %v", srttBefore, got)
	}
}

func TestDelayedAckTimerPattern(t *testing.T) {
	// A one-way message stream with a silent receiver must show 40 ms
	// delack sets on the receiver side.
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	srv.Listen(80, func(c *Conn) { c.OnMessage = func(*Conn, int, any) {} })
	cli.Connect("server", 80, func(c *Conn, err error) {
		c.Send(100, "one", nil)
	})
	f.eng.Run(sim.Time(2 * sim.Second))
	found := false
	for _, r := range f.tr.Records() {
		if r.Op == trace.OpSet && f.tr.OriginName(r.Origin) == "kernel/tcp:delack" {
			found = true
			if r.Timeout < int64(DelayedAckTimeout) || r.Timeout > int64(DelayedAckTimeout+4*sim.Millisecond) {
				t.Fatalf("delack timeout recorded as %d", r.Timeout)
			}
		}
	}
	if !found {
		t.Fatal("no delack set in trace")
	}
}

func TestKeepaliveArmedOnLinuxOnly(t *testing.T) {
	run := func(linux bool) bool {
		f := newFixture(1)
		var srv, cli *Stack
		if linux {
			srv, cli = f.linuxStack("server"), f.linuxStack("client")
		} else {
			srv, cli = f.vistaStack("server"), f.vistaStack("client")
		}
		srv.Listen(80, func(c *Conn) {})
		cli.Connect("server", 80, func(c *Conn, err error) {})
		f.eng.Run(sim.Time(2 * sim.Second))
		for _, r := range f.tr.Records() {
			// Jiffy rounding may push the recorded value a hair past 7200 s.
			if r.Op == trace.OpSet && r.Timeout >= int64(KeepaliveIdle) &&
				r.Timeout < int64(KeepaliveIdle+8*sim.Millisecond) {
				return true
			}
		}
		return false
	}
	if !run(true) {
		t.Fatal("Linux trace missing the 7200 s keepalive")
	}
	if run(false) {
		t.Fatal("Vista trace contains the 7200 s keepalive (paper: it should not)")
	}
}

func TestCloseCancelsConnectionTimers(t *testing.T) {
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	srv.Listen(80, func(c *Conn) {})
	var conn *Conn
	cli.Connect("server", 80, func(c *Conn, err error) { conn = c })
	f.eng.Run(sim.Time(sim.Second))
	if conn == nil || !conn.Established() {
		t.Fatal("no established conn")
	}
	before := f.tr.Counters().ByOp[trace.OpCancel]
	conn.Close()
	after := f.tr.Counters().ByOp[trace.OpCancel]
	if after <= before {
		t.Fatal("close canceled no timers")
	}
	f.eng.Run(sim.Time(10 * sim.Second))
	if conn.Established() {
		t.Fatal("still established")
	}
}

func TestRemoteCloseNotifies(t *testing.T) {
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) { serverConn = c })
	closed := false
	var closeErr error = ErrTimeout
	cli.Connect("server", 80, func(c *Conn, err error) {
		c.OnClose = func(e error) { closed, closeErr = true, e }
	})
	f.eng.Run(sim.Time(sim.Second))
	serverConn.Close()
	f.eng.Run(sim.Time(2 * sim.Second))
	if !closed || closeErr != nil {
		t.Fatalf("closed=%v err=%v", closed, closeErr)
	}
}

func TestARPFiveSecondCancelPattern(t *testing.T) {
	// LAN noise keeps confirming a neighbour whose entry keeps going
	// stale: the 5 s neigh-timer is set and then canceled at random
	// offsets — Figure 8's "array of points at 5 seconds".
	f := newFixture(11)
	a := f.linuxStack("a")
	_ = f.linuxStack("b")
	a.Connect("b", 9, func(*Conn, error) {}) // seeds the neighbour entry
	// Poisson-ish broadcast noise from b.
	var noise func()
	noise = func() {
		f.net.Broadcast("b", "chatter")
		f.eng.After(sim.Duration(f.eng.Rand().Int63n(int64(8*sim.Second))), "noise", noise)
	}
	f.eng.After(0, "noise", noise)
	f.eng.Run(sim.Time(10 * sim.Minute))
	sets, cancels := 0, 0
	for _, r := range f.tr.Records() {
		if f.tr.OriginName(r.Origin) != "kernel/arp:neigh-timer" {
			continue
		}
		switch r.Op {
		case trace.OpSet:
			if r.Timeout == int64(arpDelayProbe) {
				sets++
			}
		case trace.OpCancel:
			cancels++
		}
	}
	if sets < 3 {
		t.Fatalf("only %d five-second ARP sets", sets)
	}
	if cancels == 0 {
		t.Fatal("no ARP cancels: LAN noise is not confirming entries")
	}
}

func TestARPPeriodicTimersPresent(t *testing.T) {
	f := newFixture(1)
	_ = f.linuxStack("a")
	f.eng.Run(sim.Time(sim.Minute))
	want := map[string]int{"kernel/arp:gc": 0, "kernel/arp:neigh-periodic": 0, "kernel/arp:cache-flush": 0}
	for _, r := range f.tr.Records() {
		if r.Op != trace.OpExpire {
			continue
		}
		name := f.tr.OriginName(r.Origin)
		if _, ok := want[name]; ok {
			want[name]++
		}
	}
	if want["kernel/arp:gc"] < 25 || want["kernel/arp:neigh-periodic"] < 12 || want["kernel/arp:cache-flush"] < 6 {
		t.Fatalf("periodic ARP expiries = %v", want)
	}
}

func TestVistaStackFreshTimerIdentities(t *testing.T) {
	f := newFixture(1)
	srv := f.vistaStack("server")
	cli := f.vistaStack("client")
	srv.Listen(80, func(c *Conn) {})
	for i := 0; i < 3; i++ {
		cli.Connect("server", 80, func(c *Conn, err error) {
			if c != nil {
				c.Close()
			}
		})
		f.eng.Run(f.eng.Now().Add(sim.Second))
	}
	ids := map[uint64]bool{}
	for _, r := range f.tr.Records() {
		if r.Op == trace.OpSet && f.tr.OriginName(r.Origin) == "kernel/tcp:retransmit" {
			ids[r.TimerID] = true
		}
	}
	if len(ids) < 3 {
		t.Fatalf("connections shared retransmit timer identities: %d", len(ids))
	}
}

func TestNetworkPathOverrideAndBandwidth(t *testing.T) {
	f := newFixture(1)
	var at sim.Time
	f.net.Attach("dst", func(p Packet) { at = f.eng.Now() })
	f.net.Attach("src", func(Packet) {})
	f.net.SetPath("src", "dst", PathConfig{Latency: 100 * sim.Millisecond})
	f.net.Bandwidth = 1 << 20 // 1 MiB/s
	f.net.Send(Packet{From: "src", To: "dst", Size: 1 << 20})
	f.eng.RunAll()
	want := sim.Time(1100 * sim.Millisecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if f.net.Delivered != 1 {
		t.Fatalf("delivered count = %d", f.net.Delivered)
	}
}

func TestNetworkDropsToUnknownHost(t *testing.T) {
	f := newFixture(1)
	f.net.Send(Packet{From: "a", To: "nowhere", Size: 10})
	f.eng.RunAll()
	if f.net.Dropped != 1 {
		t.Fatalf("dropped = %d", f.net.Dropped)
	}
}

func TestPersistTimerProbesZeroWindow(t *testing.T) {
	// Receiver closes its window; the sender's persist timer probes with
	// exponential backoff; reopening resumes delivery.
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	var serverConn *Conn
	delivered := 0
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnMessage = func(*Conn, int, any) { delivered++ }
	})
	var clientConn *Conn
	cli.Connect("server", 80, func(c *Conn, err error) { clientConn = c })
	f.eng.Run(sim.Time(sim.Second))
	if serverConn == nil || clientConn == nil {
		t.Fatal("no connection")
	}
	serverConn.PauseReceiving()
	f.eng.Run(f.eng.Now().Add(100 * sim.Millisecond))
	clientConn.Send(500, "blocked", nil)
	f.eng.Run(f.eng.Now().Add(30 * sim.Second))
	if delivered != 0 {
		t.Fatal("message delivered through a closed window")
	}
	// Persist sets must appear in the trace with growing values.
	var persists []int64
	for _, r := range f.tr.Records() {
		if r.Op == trace.OpSet && f.tr.OriginName(r.Origin) == "kernel/tcp:persist" {
			persists = append(persists, r.Timeout)
		}
	}
	if len(persists) < 3 {
		t.Fatalf("only %d persist sets", len(persists))
	}
	if persists[len(persists)-1] <= persists[0] {
		t.Fatalf("no backoff: %v", persists)
	}
	// Reopen: the queued message flows.
	serverConn.ResumeReceiving()
	f.eng.Run(f.eng.Now().Add(10 * sim.Second))
	if delivered != 1 {
		t.Fatalf("delivered = %d after window reopened", delivered)
	}
	if clientConn.persistTimer.Pending() {
		t.Fatal("persist timer still pending after window reopened")
	}
}

func TestPersistSurvivesLostWindowUpdate(t *testing.T) {
	// The deadlock the persist timer exists to break: the window-update
	// ACK is lost; only probing recovers.
	f := newFixture(2)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	var serverConn *Conn
	delivered := 0
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnMessage = func(*Conn, int, any) { delivered++ }
	})
	var clientConn *Conn
	cli.Connect("server", 80, func(c *Conn, err error) { clientConn = c })
	f.eng.Run(sim.Time(sim.Second))
	serverConn.PauseReceiving()
	f.eng.Run(f.eng.Now().Add(100 * sim.Millisecond))
	clientConn.Send(500, "blocked", nil)
	f.eng.Run(f.eng.Now().Add(sim.Second))
	// Lose the reopen announcement.
	f.net.SetPath("server", "client", PathConfig{Latency: sim.Millisecond, Loss: 1})
	serverConn.ResumeReceiving()
	f.eng.Run(f.eng.Now().Add(100 * sim.Millisecond))
	f.net.SetPath("server", "client", PathConfig{Latency: sim.Millisecond})
	// A probe must discover the open window and unblock the transfer.
	f.eng.Run(f.eng.Now().Add(2 * sim.Minute))
	if delivered != 1 {
		t.Fatalf("delivered = %d: persist probe did not break the deadlock", delivered)
	}
}

func TestDuplicateSYNHandled(t *testing.T) {
	// The client's SYN retransmits when the SYNACK is lost; the server's
	// accepted connection must answer the duplicate instead of spawning a
	// second connection.
	f := newFixture(4)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	accepts := 0
	srv.Listen(80, func(c *Conn) { accepts++ })
	// Warm the ARP cache so the loss window only affects TCP.
	cli.Connect("server", 80, func(c *Conn, err error) {
		if c != nil {
			c.Close()
		}
	})
	f.eng.Run(sim.Time(sim.Second))
	accepts = 0
	// Lose the first SYNACK only.
	f.net.SetPath("server", "client", PathConfig{Latency: sim.Millisecond, Loss: 1})
	var conn *Conn
	cli.Connect("server", 80, func(c *Conn, err error) { conn = c })
	f.eng.Run(f.eng.Now().Add(2 * sim.Second))
	f.net.SetPath("server", "client", PathConfig{Latency: sim.Millisecond})
	f.eng.Run(sim.Time(sim.Minute))
	if conn == nil || !conn.Established() {
		t.Fatal("never established after SYNACK loss")
	}
	if accepts != 1 {
		t.Fatalf("accepts = %d", accepts)
	}
}

func TestSendOnClosedConnErrors(t *testing.T) {
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	srv.Listen(80, func(c *Conn) {})
	var conn *Conn
	cli.Connect("server", 80, func(c *Conn, err error) { conn = c })
	f.eng.Run(sim.Time(sim.Second))
	conn.Close()
	var got error
	conn.Send(10, "x", func(err error) { got = err })
	if got != ErrReset {
		t.Fatalf("err = %v", got)
	}
}

func TestPipelinedSendsDeliverInOrder(t *testing.T) {
	f := newFixture(1)
	srv := f.linuxStack("server")
	cli := f.linuxStack("client")
	var got []int
	srv.Listen(80, func(c *Conn) {
		c.OnMessage = func(_ *Conn, _ int, payload any) { got = append(got, payload.(int)) }
	})
	cli.Connect("server", 80, func(c *Conn, err error) {
		for i := 0; i < 10; i++ {
			c.Send(100, i, nil)
		}
	})
	f.eng.Run(sim.Time(sim.Minute))
	if len(got) != 10 {
		t.Fatalf("got %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestBlackholeAnswersARPOnly(t *testing.T) {
	f := newFixture(1)
	cli := f.linuxStack("client")
	f.net.AttachBlackhole("ghost")
	var gotErr error
	var doneAt sim.Time
	cli.Connect("ghost", 80, func(c *Conn, err error) { gotErr, doneAt = err, f.eng.Now() })
	f.eng.Run(sim.Time(3 * sim.Minute))
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v", gotErr)
	}
	// ARP resolved (the "gateway" answered), so TCP burned its full SYN
	// schedule: ~93 s, not the 3 s ARP failure.
	if doneAt < sim.Time(90*sim.Second) {
		t.Fatalf("gave up at %v: ARP should have resolved", doneAt)
	}
	if !cli.ARPReachable("ghost") {
		t.Fatal("ghost not in the neighbour cache")
	}
}
