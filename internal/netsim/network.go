package netsim

import (
	"math/rand"
	"sort"

	"timerstudy/internal/sim"
)

// Packet is anything delivered across the simulated network.
type Packet struct {
	From, To string
	// Size in bytes, for serialization delay.
	Size int
	// Payload is opaque to the network.
	Payload any
}

// pathKey orders a host pair canonically.
type pathKey struct{ a, b string }

func mkPath(a, b string) pathKey {
	if a > b {
		a, b = b, a
	}
	return pathKey{a, b}
}

// PathConfig describes one link's behaviour.
type PathConfig struct {
	// Latency is the one-way propagation delay.
	Latency sim.Duration
	// Jitter is the maximum additional uniform random delay.
	Jitter sim.Duration
	// Loss is the probability a packet is dropped.
	Loss float64
}

// Network is the simulated LAN/WAN: point-to-point delivery with
// per-path latency, jitter and loss, plus broadcast for ARP-style traffic.
type Network struct {
	eng   *sim.Engine
	rng   *rand.Rand
	def   PathConfig
	paths map[pathKey]PathConfig
	hosts map[string]func(Packet)
	// links interns the per-direction event labels ("net:a->b") so Send
	// does not build a string per packet. Keys are directional, so pathKey
	// is used here without mkPath canonicalization.
	links map[pathKey]string
	// Bandwidth is the serialization rate in bytes per virtual second
	// (default 125 MB/s ≈ gigabit).
	Bandwidth int64

	// Delivered and Dropped count packets for diagnostics.
	Delivered, Dropped uint64
}

// NewNetwork builds a network with a default path configuration (a quiet
// gigabit department LAN: 65 µs one-way, 20 µs jitter, no loss).
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{
		eng:       eng,
		rng:       eng.Rand(),
		def:       PathConfig{Latency: 65 * sim.Microsecond, Jitter: 20 * sim.Microsecond},
		paths:     map[pathKey]PathConfig{},
		hosts:     map[string]func(Packet){},
		links:     map[pathKey]string{},
		Bandwidth: 125 << 20,
	}
}

// SetDefaultPath changes the default link behaviour.
func (n *Network) SetDefaultPath(cfg PathConfig) { n.def = cfg }

// SetPath overrides the link between two hosts (order-insensitive).
func (n *Network) SetPath(a, b string, cfg PathConfig) { n.paths[mkPath(a, b)] = cfg }

// Attach registers a host's receive function. Reattaching replaces it.
func (n *Network) Attach(host string, recv func(Packet)) {
	n.hosts[host] = recv
}

// linkLabel returns the interned event label for one direction of a link.
func (n *Network) linkLabel(from, to string) string {
	k := pathKey{from, to}
	if s, ok := n.links[k]; ok {
		return s
	}
	s := "net:" + from + "->" + to
	n.links[k] = s
	return s
}

// pathFor returns the config governing a packet between two hosts.
func (n *Network) pathFor(a, b string) PathConfig {
	if cfg, ok := n.paths[mkPath(a, b)]; ok {
		return cfg
	}
	return n.def
}

// Send transmits a packet; it may be silently lost. Unknown destinations are
// dropped (an unplugged cable), which is how workloads simulate unreachable
// servers.
func (n *Network) Send(p Packet) {
	cfg := n.pathFor(p.From, p.To)
	if cfg.Loss > 0 && n.rng.Float64() < cfg.Loss {
		n.Dropped++
		return
	}
	recv, ok := n.hosts[p.To]
	if !ok {
		n.Dropped++
		return
	}
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += sim.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	if n.Bandwidth > 0 && p.Size > 0 {
		delay += sim.Duration(int64(p.Size) * int64(sim.Second) / n.Bandwidth)
	}
	n.eng.After(delay, n.linkLabel(p.From, p.To), func() {
		n.Delivered++
		recv(p)
	})
}

// Broadcast delivers a packet to every attached host except the sender —
// the LAN chatter that keeps ARP caches warm in the paper's testbed. Hosts
// are visited in sorted order so simulations stay deterministic.
func (n *Network) Broadcast(from string, payload any) {
	for _, host := range n.sortedHosts() {
		if host == from {
			continue
		}
		host := host
		recv := n.hosts[host]
		cfg := n.pathFor(from, host)
		delay := cfg.Latency
		if cfg.Jitter > 0 {
			delay += sim.Duration(n.rng.Int63n(int64(cfg.Jitter)))
		}
		n.eng.After(delay, "net:broadcast", func() {
			recv(Packet{From: from, To: host, Payload: payload})
		})
	}
}

func (n *Network) sortedHosts() []string {
	out := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Hosts returns the attached host names, sorted.
func (n *Network) Hosts() []string { return n.sortedHosts() }
