package netsim

import (
	"sort"

	"timerstudy/internal/sim"
)

// The ARP/neighbour subsystem, shaped to reproduce the timer family Table 3
// attributes to ARP: a 2 s periodic gc, a 4 s periodic neighbour-table scan,
// a 5 s per-entry probe timeout that LAN activity cancels "at random
// intervals after it has been set" (the paper traces this to chatter on the
// department LAN), and an 8 s periodic cache flush.
const (
	arpGCInterval      = 2 * sim.Second
	arpPeriodicScan    = 4 * sim.Second
	arpDelayProbe      = 5 * sim.Second
	arpFlushInterval   = 8 * sim.Second
	arpSolicitInterval = 1 * sim.Second
	arpMaxSolicits     = 3
	arpMaxProbes       = 3
	// arpReachableTime is how long a confirmation keeps an entry fresh
	// (jittered per entry, as the kernel jitters base_reachable_time).
	arpReachableTime = 30 * sim.Second
)

type arpPayload struct {
	request bool // request (or probe) vs. reply
}

type arpState uint8

const (
	arpIncomplete arpState = iota
	arpReachable
	arpStale
	arpProbing
)

type arpEntry struct {
	host        string
	state       arpState
	confirmedAt sim.Time
	reachFor    sim.Duration
	// timer is the per-neighbour timer struct (dynamically allocated with
	// the entry, as in neigh_alloc). It serves solicit retransmits, the
	// 5 s delay-probe, and probe retries, depending on state.
	timer    Handle
	solicits int
	probes   int
	waiting  []func(bool)
}

type arpCache struct {
	s       *Stack
	entries map[string]*arpEntry
	gc      Handle
	scan    Handle
	flush   Handle
}

func newARPCache(s *Stack) *arpCache {
	a := &arpCache{s: s, entries: map[string]*arpEntry{}}
	a.gc = s.fac.NewTimer("kernel/arp:gc", a.onGC)
	a.gc.Arm(arpGCInterval)
	a.scan = s.fac.NewTimer("kernel/arp:neigh-periodic", a.onScan)
	a.scan.Arm(arpPeriodicScan)
	a.flush = s.fac.NewTimer("kernel/arp:cache-flush", a.onFlush)
	a.flush.Arm(arpFlushInterval)
	return a
}

func (a *arpCache) entry(host string) *arpEntry {
	e, ok := a.entries[host]
	if !ok {
		e = &arpEntry{host: host, state: arpIncomplete}
		e.reachFor = arpReachableTime/2 + sim.Duration(a.s.net.rng.Int63n(int64(arpReachableTime)))
		e.timer = a.s.fac.NewTimer("kernel/arp:neigh-timer", func() { a.onEntryTimer(e) })
		a.entries[host] = e
	}
	return e
}

// resolve makes host reachable before transmission; cb(false) after solicit
// retries exhaust (no such host).
func (a *arpCache) resolve(host string, cb func(bool)) {
	e := a.entry(host)
	switch e.state {
	case arpReachable, arpStale, arpProbing:
		// Usable immediately; stale entries get verified in the background.
		cb(true)
	case arpIncomplete:
		e.waiting = append(e.waiting, cb)
		if len(e.waiting) == 1 {
			e.solicits = 0
			a.solicit(e)
		}
	}
}

func (a *arpCache) solicit(e *arpEntry) {
	a.s.net.Send(Packet{From: a.s.host, To: e.host, Size: 28,
		Payload: arpPayload{request: true}})
	e.timer.Arm(arpSolicitInterval)
}

// observed confirms a neighbour from any traffic. If the 5 s delay-probe was
// pending, this is the Table 3 "5 s ARP timer canceled at a random interval".
func (a *arpCache) observed(host string) {
	e := a.entry(host)
	if (e.state == arpStale || e.state == arpProbing) && e.timer.Pending() {
		_ = e.timer.Stop()
	}
	wasIncomplete := e.state == arpIncomplete
	e.state = arpReachable
	e.confirmedAt = a.s.fac.Now()
	if wasIncomplete {
		if e.timer.Pending() {
			_ = e.timer.Stop()
		}
		waiting := e.waiting
		e.waiting = nil
		for _, cb := range waiting {
			cb(true)
		}
	}
}

// receive handles ARP packets.
func (a *arpCache) receive(from string, pl arpPayload) {
	if pl.request {
		a.s.net.Send(Packet{From: a.s.host, To: from, Size: 28,
			Payload: arpPayload{request: false}})
	}
	a.observed(from)
}

// onEntryTimer multiplexes the per-entry timer by state.
func (a *arpCache) onEntryTimer(e *arpEntry) {
	switch e.state {
	case arpIncomplete:
		e.solicits++
		if e.solicits >= arpMaxSolicits {
			waiting := e.waiting
			e.waiting = nil
			delete(a.entries, e.host)
			e.timer.Release()
			for _, cb := range waiting {
				cb(false)
			}
			return
		}
		a.solicit(e)
	case arpStale:
		// Delay-probe expired with no confirming traffic: actively probe.
		e.state = arpProbing
		e.probes = 0
		a.probe(e)
	case arpProbing:
		e.probes++
		if e.probes >= arpMaxProbes {
			delete(a.entries, e.host)
			e.timer.Release()
			return
		}
		a.probe(e)
	}
}

func (a *arpCache) probe(e *arpEntry) {
	a.s.net.Send(Packet{From: a.s.host, To: e.host, Size: 28,
		Payload: arpPayload{request: true}})
	e.timer.Arm(arpSolicitInterval)
}

// sortedEntries returns entries in host order: deterministic iteration.
func (a *arpCache) sortedEntries() []*arpEntry {
	hosts := make([]string, 0, len(a.entries))
	for h := range a.entries {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	out := make([]*arpEntry, len(hosts))
	for i, h := range hosts {
		out[i] = a.entries[h]
	}
	return out
}

// onGC ages reachable entries to stale and arms the 5 s delay-probe.
func (a *arpCache) onGC() {
	now := a.s.fac.Now()
	for _, e := range a.sortedEntries() {
		if e.state == arpReachable && now.Sub(e.confirmedAt) > e.reachFor {
			e.state = arpStale
			e.timer.Arm(arpDelayProbe)
		}
	}
	a.gc.Arm(arpGCInterval)
}

// onScan is the neighbour-table periodic work (neigh_periodic_work).
func (a *arpCache) onScan() {
	// Drop long-dead stale entries that never re-confirmed.
	now := a.s.fac.Now()
	for _, e := range a.sortedEntries() {
		if e.state == arpStale && now.Sub(e.confirmedAt) > 4*e.reachFor && !e.timer.Pending() {
			delete(a.entries, e.host)
			e.timer.Release()
		}
	}
	a.scan.Arm(arpPeriodicScan)
}

// onFlush is the periodic cache flush of Table 3.
func (a *arpCache) onFlush() {
	// The flush drops nothing that is in active use; it bounds table size.
	if len(a.entries) > 512 {
		for _, e := range a.sortedEntries() {
			if e.state == arpStale && !e.timer.Pending() {
				delete(a.entries, e.host)
				e.timer.Release()
			}
		}
	}
	a.flush.Arm(arpFlushInterval)
}

// Reachable reports whether host is currently resolved (tests).
func (a *arpCache) reachable(host string) bool {
	e, ok := a.entries[host]
	return ok && e.state == arpReachable
}

// ARPReachable exposes neighbour state for tests and workloads.
func (s *Stack) ARPReachable(host string) bool { return s.arp.reachable(host) }

// AttachBlackhole attaches a host that answers ARP (as a gateway proxy-ARPs
// for routed destinations) but silently drops everything else — the
// behaviour of an unplugged or crashed machine behind a router, which is
// what makes TCP grind through its full SYN backoff in the Section 2.2.2
// case study.
func (n *Network) AttachBlackhole(host string) {
	n.Attach(host, func(p Packet) {
		if pl, ok := p.Payload.(arpPayload); ok && pl.request {
			n.Send(Packet{From: host, To: p.From, Size: 28, Payload: arpPayload{request: false}})
		}
	})
}
