// Package netsim is the simulated network substrate: a lossy, latency-bearing
// LAN/WAN, an ARP neighbour subsystem, and a TCP-lite transport whose timer
// behaviour follows the real stacks the paper traces — adaptive Jacobson
// retransmission timeouts with exponential backoff (Section 5.1's canonical
// example of adaptivity), the 40 ms delayed-ACK timer, 3 s connect/socket
// timeouts, the 7200 s keepalive, and the ARP 2/4/5/8-second timer family of
// Table 3.
//
// The transport arms its timers through the Facility interface, so the same
// stack runs over the Linux jiffies subsystem (statically allocated, reused
// timer structs) and the Vista KTIMER subsystem (freshly allocated objects),
// reproducing the allocation-behaviour difference the paper highlights.
package netsim

import (
	"timerstudy/internal/jiffies"
	"timerstudy/internal/ktimer"
	"timerstudy/internal/sim"
)

// Handle is an armed-or-idle timer owned by the transport.
type Handle interface {
	// Arm (re)sets the timer to fire fn after d.
	Arm(d sim.Duration)
	// Stop cancels; reports whether it was pending.
	Stop() bool
	// Pending reports the armed state.
	Pending() bool
	// Release returns the timer to its owner when the connection dies. On
	// Linux the struct goes back to the slab and its identity is reused by
	// the next connection (which is why the paper sees only ~100 distinct
	// timer addresses in a 30000-connection webserver trace); on Vista the
	// freshly allocated KTIMER is simply dropped.
	Release()
}

// Facility creates kernel timers for the transport, hiding which OS
// personality provides them.
type Facility interface {
	// NewTimer returns a timer with the given origin label and callback.
	NewTimer(origin string, fn func()) Handle
	// Now returns current virtual time.
	Now() sim.Time
}

// --- Linux adapter ---

// LinuxFacility arms transport timers on a jiffies base. Timer structs are
// embedded in slab-allocated protocol objects (sockets, neighbour entries),
// so released structs are recycled and their addresses — hence trace
// identities — recur, Linux behaviour.
type LinuxFacility struct {
	// Base is the standard timer base to arm on.
	Base *jiffies.Base

	slab map[string][]*jiffies.Timer
}

type linuxHandle struct {
	f *LinuxFacility
	t *jiffies.Timer
}

// NewTimer implements Facility.
func (f *LinuxFacility) NewTimer(origin string, fn func()) Handle {
	if free := f.slab[origin]; len(free) > 0 {
		t := free[len(free)-1]
		f.slab[origin] = free[:len(free)-1]
		t.SetCallback(fn)
		return &linuxHandle{f: f, t: t}
	}
	t := &jiffies.Timer{}
	f.Base.Init(t, origin, 0, fn)
	return &linuxHandle{f: f, t: t}
}

// Now implements Facility.
func (f *LinuxFacility) Now() sim.Time { return f.Base.Now() }

func (h *linuxHandle) Arm(d sim.Duration) { h.f.Base.ModTimeout(h.t, d) }
func (h *linuxHandle) Stop() bool         { return h.f.Base.Del(h.t) }
func (h *linuxHandle) Pending() bool      { return h.t.Pending() }

func (h *linuxHandle) Release() {
	if h.t.Pending() {
		_ = h.f.Base.Del(h.t)
	}
	if h.f.slab == nil {
		h.f.slab = make(map[string][]*jiffies.Timer)
	}
	h.f.slab[h.t.Origin] = append(h.f.slab[h.t.Origin], h.t)
}

// --- Vista adapter ---

// VistaFacility arms transport timers as KTIMER objects. Vista's re-architected
// TCP/IP stack uses per-CPU timing wheels internally, but at the KTIMER
// boundary each protocol timer is a dynamically allocated object; a fresh
// KTimer is allocated per Handle, so identities are never reused — Vista
// behaviour as the paper describes it.
type VistaFacility struct {
	// Kernel is the NT timer machinery to arm on.
	Kernel *ktimer.Kernel
}

type vistaHandle struct {
	k *ktimer.Kernel
	t *ktimer.KTimer
}

// NewTimer implements Facility.
func (f *VistaFacility) NewTimer(origin string, fn func()) Handle {
	t := f.Kernel.NewTimer(origin, 0, false, nil)
	h := &vistaHandle{k: f.Kernel, t: t}
	h.t.SetDPC(fn)
	return h
}

// Now implements Facility.
func (f *VistaFacility) Now() sim.Time { return f.Kernel.Now() }

func (h *vistaHandle) Arm(d sim.Duration) { h.k.SetTimerIn(h.t, d, 0) }
func (h *vistaHandle) Stop() bool         { return h.k.CancelTimer(h.t) }
func (h *vistaHandle) Pending() bool      { return h.t.Pending() }

func (h *vistaHandle) Release() {
	if h.t.Pending() {
		_ = h.k.CancelTimer(h.t)
	}
	// Dynamically allocated and never reused: drop it.
}
