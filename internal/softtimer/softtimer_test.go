package softtimer

import (
	"testing"
	"testing/quick"

	"timerstudy/internal/sim"
)

// busyHost simulates a host passing through trigger states (syscall
// returns) at the given mean interval.
func busyHost(eng *sim.Engine, f *Facility, mean sim.Duration, until sim.Time) {
	var step func()
	step = func() {
		f.TriggerState()
		if eng.Now() < until {
			d := sim.Duration(eng.Rand().ExpFloat64() * float64(mean))
			if d < sim.Microsecond {
				d = sim.Microsecond
			}
			eng.After(d, "trigger", step)
		}
	}
	eng.After(0, "trigger", step)
}

func TestSoftDeliveryOnBusyHost(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, 10*sim.Millisecond)
	busyHost(eng, f, 20*sim.Microsecond, sim.Time(sim.Second))
	fired := 0
	var arm func()
	arm = func() {
		f.Schedule(100*sim.Microsecond, func() {
			fired++
			if eng.Now() < sim.Time(900*sim.Millisecond) {
				arm()
			}
		})
	}
	arm()
	eng.Run(sim.Time(sim.Second))
	if fired < 5000 {
		t.Fatalf("fired = %d", fired)
	}
	st := f.Stats()
	// On a busy host essentially everything is delivered softly, at
	// microsecond-scale latency, with almost no hardware interrupts.
	if st.HardFired > st.SoftFired/50 {
		t.Fatalf("hard=%d soft=%d: busy host should deliver softly", st.HardFired, st.SoftFired)
	}
	if st.MeanLatency() > 100*sim.Microsecond {
		t.Fatalf("mean latency = %v", st.MeanLatency())
	}
}

func TestOverflowBoundsLatencyOnIdleHost(t *testing.T) {
	// No trigger states at all: the overflow interrupt must deliver, and
	// latency is bounded by the overflow period.
	eng := sim.NewEngine(1)
	f := New(eng, 5*sim.Millisecond)
	var firedAt sim.Time
	f.Schedule(sim.Millisecond, func() { firedAt = eng.Now() })
	eng.Run(sim.Time(sim.Second))
	if firedAt == 0 {
		t.Fatal("never fired")
	}
	lag := firedAt.Sub(sim.Time(sim.Millisecond))
	if lag < 0 || lag > 5*sim.Millisecond {
		t.Fatalf("lag = %v, want within one overflow period", lag)
	}
	st := f.Stats()
	if st.HardFired != 1 || st.SoftFired != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoOverflowInterruptsWhenIdle(t *testing.T) {
	// With no pending timers the hardware timer stays off — the whole
	// point versus a periodic tick.
	eng := sim.NewEngine(1)
	f := New(eng, sim.Millisecond)
	tm := f.Schedule(10*sim.Millisecond, func() {})
	if !f.Cancel(tm) {
		t.Fatal("cancel failed")
	}
	if f.Cancel(tm) {
		t.Fatal("double cancel")
	}
	eng.Run(sim.Time(sim.Second))
	if got := f.Stats().OverflowInterrupts; got > 1 {
		t.Fatalf("overflow interrupts = %d with nothing pending", got)
	}
}

func TestCancelPreventsDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, sim.Millisecond)
	fired := false
	tm := f.Schedule(10*sim.Millisecond, func() { fired = true })
	f.Cancel(tm)
	eng.Run(sim.Time(sim.Second))
	if fired {
		t.Fatal("canceled timer fired")
	}
	if f.Pending() != 0 {
		t.Fatal("still pending")
	}
}

// Property: a timer never fires before its deadline, whatever the trigger
// pattern.
func TestNeverEarlyProperty(t *testing.T) {
	check := func(delays []uint16, triggerGaps []uint16) bool {
		eng := sim.NewEngine(3)
		f := New(eng, 2*sim.Millisecond)
		ok := true
		for _, d := range delays {
			dd := sim.Duration(d) * sim.Microsecond
			deadline := eng.Now().Add(dd)
			f.Schedule(dd, func() {
				if eng.Now() < deadline {
					ok = false
				}
			})
		}
		at := sim.Time(0)
		for _, g := range triggerGaps {
			at = at.Add(sim.Duration(g) * sim.Microsecond)
			eng.At(at, "trig", func() { f.TriggerState() })
		}
		eng.Run(sim.Time(sim.Second))
		return ok && f.Pending() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The headline comparison: per-timer hardware interrupts vs soft delivery
// for high-rate network polling (the use-case of the paper's reference
// [4]). Soft timers cut hardware interrupts by orders of magnitude at a
// modest latency cost.
func TestInterruptReductionVsPerTimerInterrupts(t *testing.T) {
	const rate = 50 * sim.Microsecond // 20 kHz polling, Gb-NIC territory
	run := func(soft bool) (hwInterrupts uint64, meanLag sim.Duration) {
		eng := sim.NewEngine(1)
		if soft {
			f := New(eng, 10*sim.Millisecond)
			busyHost(eng, f, 30*sim.Microsecond, sim.Time(100*sim.Millisecond))
			var arm func()
			arm = func() {
				f.Schedule(rate, func() {
					if eng.Now() < sim.Time(90*sim.Millisecond) {
						arm()
					}
				})
			}
			arm()
			eng.Run(sim.Time(100 * sim.Millisecond))
			st := f.Stats()
			return st.OverflowInterrupts, st.MeanLatency()
		}
		// Baseline: one hardware interrupt per timer (engine events).
		var n uint64
		var rearm func()
		rearm = func() {
			eng.After(rate, "hw-timer", func() {
				n++
				if eng.Now() < sim.Time(90*sim.Millisecond) {
					rearm()
				}
			})
		}
		rearm()
		eng.Run(sim.Time(100 * sim.Millisecond))
		return n, 0
	}
	hard, _ := run(false)
	softN, lag := run(true)
	if softN*100 > hard {
		t.Fatalf("soft timers took %d hw interrupts vs %d per-timer", softN, hard)
	}
	if lag > 200*sim.Microsecond {
		t.Fatalf("soft delivery latency = %v", lag)
	}
	t.Logf("hardware interrupts: %d per-timer vs %d soft (mean soft lag %v)", hard, softN, lag)
}

func BenchmarkScheduleFireSoft(b *testing.B) {
	eng := sim.NewEngine(1)
	f := New(eng, sim.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Schedule(10*sim.Microsecond, func() {})
		f.TriggerState()
		eng.Run(eng.Now().Add(20 * sim.Microsecond))
		f.TriggerState()
	}
}
