// Package softtimer implements soft timers (Aron & Druschel, TOCS 2000),
// the related-work design the paper discusses for cheap microsecond-
// resolution timing: instead of programming a hardware interrupt per
// timeout, expired timers are checked and fired at "trigger states" the
// system passes through anyway — system-call returns, exception exits, the
// idle loop. A coarse hardware overflow timer bounds the worst-case
// delivery latency when trigger states are scarce.
//
// The paper's Section 6 positions soft timers as a point solution to timer
// overhead for network processing; this package lets the benchmarks compare
// it quantitatively against interrupt-per-timer facilities on the same
// simulated host.
package softtimer

import (
	"timerstudy/internal/sim"
)

// timer is the facility-owned node for one scheduled soft timeout. Nodes
// recycle through a freelist once fired or canceled, mirroring the engine's
// event pool; user code holds generation-validated Timer handles.
type timer struct {
	deadline sim.Time
	fn       func()
	index    int
	seq      uint64
	gen      uint64
	pending  bool
	next     *timer // freelist link
}

// Timer is a handle to one scheduled soft timeout, valid while it pends. A
// handle to a fired or canceled timer reports Pending false forever, even
// after its storage is recycled; the zero Timer is a handle to nothing.
type Timer struct {
	n   *timer
	gen uint64
}

// Pending reports whether the timer is still queued.
func (t Timer) Pending() bool { return t.n != nil && t.n.gen == t.gen && t.n.pending }

// Deadline returns the scheduled expiry instant, or 0 for a stale handle.
func (t Timer) Deadline() sim.Time {
	if t.Pending() {
		return t.n.deadline
	}
	return 0
}

// Stats tallies delivery behaviour; the soft/hard split and the latency
// moments are the facility's evaluation metrics.
type Stats struct {
	// Scheduled counts Schedule calls; Canceled counts cancels.
	Scheduled, Canceled uint64
	// SoftFired counts timers delivered from trigger states; HardFired
	// counts those the overflow interrupt had to deliver.
	SoftFired, HardFired uint64
	// OverflowInterrupts counts hardware interrupts taken.
	OverflowInterrupts uint64
	// TriggerChecks counts trigger-state polls.
	TriggerChecks uint64
	// TotalLatency and MaxLatency measure delivery lag past the deadline.
	TotalLatency sim.Duration
	MaxLatency   sim.Duration
}

// MeanLatency returns average delivery lag.
func (s Stats) MeanLatency() sim.Duration {
	n := s.SoftFired + s.HardFired
	if n == 0 {
		return 0
	}
	return s.TotalLatency / sim.Duration(n)
}

// Facility is a soft-timer subsystem bound to a simulation engine.
type Facility struct {
	eng        *sim.Engine
	q          timerHeap
	free       *timer
	seq        uint64
	overflow   sim.Duration
	overEv     sim.Event
	overflowFn func() // bound once; re-arming the backstop must not allocate
	stats      Stats
}

// New creates a facility whose hardware overflow interrupt runs every
// overflowPeriod (Aron & Druschel used 1-10 ms). The interrupt only fires
// while timers are pending.
func New(eng *sim.Engine, overflowPeriod sim.Duration) *Facility {
	if overflowPeriod <= 0 {
		overflowPeriod = sim.Millisecond
	}
	f := &Facility{eng: eng, overflow: overflowPeriod}
	f.overflowFn = func() {
		f.stats.OverflowInterrupts++
		f.fire(true)
		f.ensureOverflow()
	}
	return f
}

// Stats returns a copy of the counters.
func (f *Facility) Stats() Stats { return f.stats }

// Pending returns the number of queued timers.
func (f *Facility) Pending() int { return f.q.len() }

func (f *Facility) acquire() *timer {
	if n := f.free; n != nil {
		f.free = n.next
		n.next = nil
		return n
	}
	return &timer{}
}

func (f *Facility) release(n *timer) {
	n.gen++
	n.fn = nil
	n.pending = false
	n.next = f.free
	f.free = n
}

// Schedule queues fn to run no earlier than d from now. Delivery happens at
// the next trigger state or overflow interrupt after the deadline. Steady-
// state calls are allocation-free: the timer node comes from a freelist and
// the returned handle is a value.
func (f *Facility) Schedule(d sim.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	f.seq++
	n := f.acquire()
	n.deadline, n.fn, n.seq = f.eng.Now().Add(d), fn, f.seq
	n.pending = true
	f.q.push(n)
	f.stats.Scheduled++
	f.ensureOverflow()
	return Timer{n: n, gen: n.gen}
}

// Cancel removes a pending timer. Stale handles are safe and return false.
func (f *Facility) Cancel(t Timer) bool {
	if !t.Pending() {
		return false
	}
	f.q.remove(t.n)
	f.release(t.n)
	f.stats.Canceled++
	if f.q.len() == 0 && f.overEv.Pending() {
		_ = f.eng.Cancel(f.overEv)
	}
	return true
}

// TriggerState is the hook the host system calls at convenient points
// (system-call return, exception exit, idle loop): expired timers fire here
// for free, without any hardware interrupt.
func (f *Facility) TriggerState() int {
	f.stats.TriggerChecks++
	return f.fire(false)
}

// fire delivers all due timers, attributing them to soft or hard delivery.
// Each node is recycled before its callback runs, so a reschedule from
// inside the callback reuses it immediately.
func (f *Facility) fire(hard bool) int {
	now := f.eng.Now()
	n := 0
	for f.q.len() > 0 && f.q.items[0].deadline <= now {
		t := f.q.pop()
		lag := now.Sub(t.deadline)
		f.stats.TotalLatency += lag
		if lag > f.stats.MaxLatency {
			f.stats.MaxLatency = lag
		}
		if hard {
			f.stats.HardFired++
		} else {
			f.stats.SoftFired++
		}
		n++
		fn := t.fn
		f.release(t)
		fn()
	}
	return n
}

// ensureOverflow keeps the hardware backstop armed while timers pend.
func (f *Facility) ensureOverflow() {
	if f.overEv.Pending() {
		return
	}
	if f.q.len() == 0 {
		return
	}
	f.overEv = f.eng.After(f.overflow, "softtimer:overflow", f.overflowFn)
}

// timerHeap is an index-based binary min-heap over (deadline, seq) — the
// same hand-rolled shape as the engine's heap queue, without container/heap
// boxing.
type timerHeap struct {
	items []*timer
}

func timerLess(a, b *timer) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

func (h *timerHeap) len() int { return len(h.items) }

func (h *timerHeap) push(n *timer) {
	n.index = len(h.items)
	h.items = append(h.items, n)
	h.up(n.index)
}

func (h *timerHeap) pop() *timer {
	n := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[0].index = 0
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	n.index = -1
	return n
}

func (h *timerHeap) remove(n *timer) {
	i := n.index
	last := len(h.items) - 1
	if i != last {
		h.items[i] = h.items[last]
		h.items[i].index = i
	}
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	n.index = -1
}

func (h *timerHeap) up(i int) {
	items := h.items
	n := items[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := items[parent]
		if !timerLess(n, p) {
			break
		}
		items[i] = p
		p.index = i
		i = parent
	}
	items[i] = n
	n.index = i
}

func (h *timerHeap) down(i int) {
	items := h.items
	n := items[i]
	size := len(items)
	for {
		child := 2*i + 1
		if child >= size {
			break
		}
		if r := child + 1; r < size && timerLess(items[r], items[child]) {
			child = r
		}
		c := items[child]
		if !timerLess(c, n) {
			break
		}
		items[i] = c
		c.index = i
		i = child
	}
	items[i] = n
	n.index = i
}
