// Package softtimer implements soft timers (Aron & Druschel, TOCS 2000),
// the related-work design the paper discusses for cheap microsecond-
// resolution timing: instead of programming a hardware interrupt per
// timeout, expired timers are checked and fired at "trigger states" the
// system passes through anyway — system-call returns, exception exits, the
// idle loop. A coarse hardware overflow timer bounds the worst-case
// delivery latency when trigger states are scarce.
//
// The paper's Section 6 positions soft timers as a point solution to timer
// overhead for network processing; this package lets the benchmarks compare
// it quantitatively against interrupt-per-timer facilities on the same
// simulated host.
package softtimer

import (
	"container/heap"

	"timerstudy/internal/sim"
)

// Timer is one scheduled soft timeout.
type Timer struct {
	deadline sim.Time
	fn       func()
	index    int
	seq      uint64
}

// Deadline returns the scheduled expiry instant.
func (t *Timer) Deadline() sim.Time { return t.deadline }

// Pending reports whether the timer is still queued.
func (t *Timer) Pending() bool { return t.index >= 0 }

// Stats tallies delivery behaviour; the soft/hard split and the latency
// moments are the facility's evaluation metrics.
type Stats struct {
	// Scheduled counts Schedule calls; Canceled counts cancels.
	Scheduled, Canceled uint64
	// SoftFired counts timers delivered from trigger states; HardFired
	// counts those the overflow interrupt had to deliver.
	SoftFired, HardFired uint64
	// OverflowInterrupts counts hardware interrupts taken.
	OverflowInterrupts uint64
	// TriggerChecks counts trigger-state polls.
	TriggerChecks uint64
	// TotalLatency and MaxLatency measure delivery lag past the deadline.
	TotalLatency sim.Duration
	MaxLatency   sim.Duration
}

// MeanLatency returns average delivery lag.
func (s Stats) MeanLatency() sim.Duration {
	n := s.SoftFired + s.HardFired
	if n == 0 {
		return 0
	}
	return s.TotalLatency / sim.Duration(n)
}

// Facility is a soft-timer subsystem bound to a simulation engine.
type Facility struct {
	eng      *sim.Engine
	q        timerHeap
	seq      uint64
	overflow sim.Duration
	overEv   *sim.Event
	stats    Stats
}

// New creates a facility whose hardware overflow interrupt runs every
// overflowPeriod (Aron & Druschel used 1-10 ms). The interrupt only fires
// while timers are pending.
func New(eng *sim.Engine, overflowPeriod sim.Duration) *Facility {
	if overflowPeriod <= 0 {
		overflowPeriod = sim.Millisecond
	}
	return &Facility{eng: eng, overflow: overflowPeriod}
}

// Stats returns a copy of the counters.
func (f *Facility) Stats() Stats { return f.stats }

// Pending returns the number of queued timers.
func (f *Facility) Pending() int { return len(f.q) }

// Schedule queues fn to run no earlier than d from now. Delivery happens at
// the next trigger state or overflow interrupt after the deadline.
func (f *Facility) Schedule(d sim.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	f.seq++
	t := &Timer{deadline: f.eng.Now().Add(d), fn: fn, seq: f.seq}
	heap.Push(&f.q, t)
	f.stats.Scheduled++
	f.ensureOverflow()
	return t
}

// Cancel removes a pending timer.
func (f *Facility) Cancel(t *Timer) bool {
	if t == nil || t.index < 0 {
		return false
	}
	heap.Remove(&f.q, t.index)
	f.stats.Canceled++
	if len(f.q) == 0 && f.overEv != nil && f.overEv.Pending() {
		_ = f.eng.Cancel(f.overEv)
		f.overEv = nil
	}
	return true
}

// TriggerState is the hook the host system calls at convenient points
// (system-call return, exception exit, idle loop): expired timers fire here
// for free, without any hardware interrupt.
func (f *Facility) TriggerState() int {
	f.stats.TriggerChecks++
	return f.fire(false)
}

// fire delivers all due timers, attributing them to soft or hard delivery.
func (f *Facility) fire(hard bool) int {
	now := f.eng.Now()
	n := 0
	for len(f.q) > 0 && f.q[0].deadline <= now {
		t := heap.Pop(&f.q).(*Timer)
		lag := now.Sub(t.deadline)
		f.stats.TotalLatency += lag
		if lag > f.stats.MaxLatency {
			f.stats.MaxLatency = lag
		}
		if hard {
			f.stats.HardFired++
		} else {
			f.stats.SoftFired++
		}
		n++
		t.fn()
	}
	return n
}

// ensureOverflow keeps the hardware backstop armed while timers pend.
func (f *Facility) ensureOverflow() {
	if f.overEv != nil && f.overEv.Pending() {
		return
	}
	if len(f.q) == 0 {
		return
	}
	f.overEv = f.eng.After(f.overflow, "softtimer:overflow", func() {
		f.stats.OverflowInterrupts++
		f.fire(true)
		f.overEv = nil
		f.ensureOverflow()
	})
}

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
