package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timerstudy/internal/lint"
)

// TestLoadBrokenSyntax pins the loader's contract on unparseable input: an
// error naming the file, never a panic.
func TestLoadBrokenSyntax(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDirAs(filepath.Join("testdata", "src", "broken_syntax"), "timerstudy/internal/lintfixture/brokensyntax")
	if err == nil {
		t.Fatal("loading a syntactically invalid package succeeded")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error does not name the offending file: %v", err)
	}
}

// TestLoadBrokenTypes pins the contract on parseable-but-untypeable input.
func TestLoadBrokenTypes(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDirAs(filepath.Join("testdata", "src", "broken_types"), "timerstudy/internal/lintfixture/brokentypes")
	if err == nil {
		t.Fatal("loading a type-broken package succeeded")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error does not mention type-checking: %v", err)
	}
	// A failed load must not poison the loader for later good packages.
	if _, err := loader.LoadDirAs(filepath.Join("testdata", "src", "wallclock"), "timerstudy/internal/lintfixture/wallafter"); err != nil {
		t.Errorf("good package fails to load after a broken one: %v", err)
	}
}

// TestLoadAllWorkerCounts pins the parallel loader's determinism: every
// worker count yields the same package set, and findings over those
// packages are identical.
func TestLoadAllWorkerCounts(t *testing.T) {
	var base []string
	for _, workers := range []int{1, 4, 16} {
		loader, err := lint.NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := loader.LoadAllWorkers(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		if base == nil {
			base = paths
			continue
		}
		if strings.Join(base, " ") != strings.Join(paths, " ") {
			t.Errorf("workers=%d: package set %v, want %v", workers, paths, base)
		}
	}
}

// TestJSONGoldenOrdering locks the JSON rendering and its file/line/col
// ordering to a committed golden: the CI artifact must be byte-stable for a
// given set of violations, or diffing findings between runs is hopeless.
func TestJSONGoldenOrdering(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", "mapiter"), "timerstudy/internal/lintfixture/mapiter")
	if err != nil {
		t.Fatal(err)
	}
	ds := lint.Run(loader, []*lint.Package{pkg}, lint.Analyzers())
	for i := 1; i < len(ds); i++ {
		a, b := ds[i-1], ds[i]
		if a.File > b.File || (a.File == b.File && (a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col))) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
	got, err := lint.JSON(ds)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	goldenPath := filepath.Join("testdata", "golden", "mapiter.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("JSON output differs from golden %s (run with UPDATE_GOLDEN=1 to regenerate)\ngot:\n%s", goldenPath, got)
	}
}
