package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// cancelNames are the case-folded method/function names whose boolean result
// encodes the paper's Section 3 lifecycle distinction: true means the timer
// was still pending and is now canceled; false means it already expired (or
// never existed) and its callback may have run. Dropping that bit is how
// cancel/expiry races are born.
var cancelNames = map[string]bool{
	"cancel":        true,
	"canceltimer":   true,
	"ntcanceltimer": true,
	"kecanceltimer": true,
	"deltimer":      true,
	"del":           true,
	"killtimer":     true,
	"stop":          true,
	"done":          true,
}

// UncheckedCancel flags statements that call a Cancel/Del/Stop-shaped
// function returning a single bool and discard the result. Use the value, or
// write `_ = x.Cancel()` to acknowledge the race explicitly.
var UncheckedCancel = &Analyzer{
	Name: "uncheckedcancel",
	Doc: "the bool result of Cancel/DelTimer/Stop-shaped calls distinguishes " +
		"pending from expired and must not be silently dropped",
	Run: runUncheckedCancel,
}

func runUncheckedCancel(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			name := callName(call)
			if name == "" || !cancelNames[strings.ToLower(name)] {
				return true
			}
			if !returnsSingleBool(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s dropped: the bool distinguishes canceled-while-pending from already-expired; use it or write `_ = %s(...)`",
				name, name)
			return true
		})
	}
}

// callName extracts the bare called name from direct and selector calls.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// returnsSingleBool reports whether the call's static type is exactly one
// untyped-bool-compatible result.
func returnsSingleBool(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}
