package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("timerstudy/internal/sim").
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object facts.
	Info *types.Info
}

// Loader loads and type-checks the module's packages using only the standard
// library: our own packages are type-checked from source recursively; the
// standard library is resolved through go/importer's source importer.
type Loader struct {
	// ModuleDir is the absolute directory containing go.mod.
	ModuleDir string
	// ModulePath is the module path declared in go.mod ("timerstudy").
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // memoized by import path
	busy map[string]bool     // import-cycle guard
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		busy:       map[string]bool{},
	}, nil
}

// Fset returns the shared position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package of the module, skipping testdata, hidden
// directories and vendor trees, returning packages sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir under its natural module import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadDirAs(abs, path)
}

// LoadDirAs loads the package in dir, registering it under the given import
// path. Tests use this to place fixture packages on policed paths.
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// moduleImporter resolves module-internal import paths from source and
// delegates everything else to the standard-library source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDirAs(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
