package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("timerstudy/internal/sim").
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object facts.
	Info *types.Info
}

// Loader loads and type-checks the module's packages using only the standard
// library: our own packages are type-checked from source recursively; the
// standard library is resolved through go/importer's source importer.
//
// The loader is safe for concurrent use: LoadAll type-checks independent
// packages on a worker pool, deduplicating shared imports through a
// single-flight table. Import cycles among module packages are detected
// up front from a parse-only pass, so a broken fixture errors instead of
// deadlocking the pool.
type Loader struct {
	// ModuleDir is the absolute directory containing go.mod.
	ModuleDir string
	// ModulePath is the module path declared in go.mod ("timerstudy").
	ModulePath string

	fset *token.FileSet

	// stdMu serializes the standard-library source importer, which is not
	// documented to be concurrency-safe. Its internal memoization makes
	// repeat imports cheap, so the serialization only bites on first touch.
	stdMu sync.Mutex
	std   types.Importer

	// mu guards pkgs and inflight.
	mu       sync.Mutex
	pkgs     map[string]*Package // memoized by import path
	inflight map[string]*flight  // single-flight for concurrent loads
}

// flight is one in-progress package load another goroutine can wait on.
type flight struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		inflight:   map[string]*flight{},
	}, nil
}

// Fset returns the shared position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package of the module on a worker pool sized to
// GOMAXPROCS, skipping testdata, hidden directories and vendor trees,
// returning packages sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) { return l.LoadAllWorkers(0) }

// LoadAllWorkers is LoadAll with an explicit worker count (<=0 means
// GOMAXPROCS). Type-checking is scheduled in dependency order: a package
// starts once its module-internal imports are done, so workers never block
// on each other's in-flight loads longer than one import edge.
func (l *Loader) LoadAllWorkers(workers int) ([]*Package, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	order, deps, err := l.dependencyOrder(dirs)
	if err != nil {
		return nil, err
	}
	if workers > len(order) {
		workers = len(order)
	}

	// Topological wave scheduling: ready paths flow through a queue;
	// finishing a package unblocks its dependents.
	dependents := map[string][]string{}
	indegree := map[string]int{}
	for _, path := range order {
		indegree[path] = len(deps[path])
		for _, dep := range deps[path] {
			dependents[dep] = append(dependents[dep], path)
		}
	}
	var (
		mu        sync.Mutex
		ready     []string
		completed int
		firstErr  error
		wg        sync.WaitGroup
	)
	cond := sync.NewCond(&mu)
	for _, path := range order {
		if indegree[path] == 0 {
			ready = append(ready, path)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && completed < len(order) && firstErr == nil {
					cond.Wait()
				}
				if firstErr != nil || len(ready) == 0 {
					mu.Unlock()
					return
				}
				path := ready[0]
				ready = ready[1:]
				mu.Unlock()

				_, err := l.LoadDirAs(dirs[path], path)

				mu.Lock()
				completed++
				if err != nil && firstErr == nil {
					firstErr = err
				}
				for _, dep := range dependents[path] {
					indegree[dep]--
					if indegree[dep] == 0 {
						ready = append(ready, dep)
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var out []*Package
	l.mu.Lock()
	for _, path := range order {
		if p, ok := l.pkgs[path]; ok {
			out = append(out, p)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// moduleDirs maps every module package's import path to its directory.
func (l *Loader) moduleDirs() (map[string]string, error) {
	dirs := map[string]string{}
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			importPath, err := l.dirImportPath(path)
			if err != nil {
				return err
			}
			dirs[importPath] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// dependencyOrder parses import clauses only (cheap) and topologically sorts
// the module-internal dependency graph, reporting any cycle by its path.
func (l *Loader) dependencyOrder(dirs map[string]string) (order []string, deps map[string][]string, err error) {
	deps = map[string][]string{}
	paths := make([]string, 0, len(dirs))
	for path := range dirs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		imports, err := l.moduleImports(dirs[path])
		if err != nil {
			return nil, nil, err
		}
		for _, imp := range imports {
			if _, ok := dirs[imp]; ok {
				deps[path] = append(deps[path], imp)
			}
		}
	}
	// Kahn's algorithm over the sorted paths keeps the order deterministic.
	indegree := map[string]int{}
	dependents := map[string][]string{}
	for _, path := range paths {
		indegree[path] = len(deps[path])
		for _, dep := range deps[path] {
			dependents[dep] = append(dependents[dep], path)
		}
	}
	queue := make([]string, 0, len(paths))
	for _, path := range paths {
		if indegree[path] == 0 {
			queue = append(queue, path)
		}
	}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		order = append(order, path)
		for _, dep := range dependents[path] {
			indegree[dep]--
			if indegree[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if len(order) != len(paths) {
		var cyclic []string
		for _, path := range paths {
			if indegree[path] > 0 {
				cyclic = append(cyclic, path)
			}
		}
		return nil, nil, fmt.Errorf("lint: import cycle among %s", strings.Join(cyclic, ", "))
	}
	return order, deps, nil
}

// moduleImports lists the module-internal import paths of the package in dir,
// from a parse of import clauses only (a separate throwaway FileSet, so the
// real one sees each file exactly once).
func (l *Loader) moduleImports(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirImportPath resolves a module directory to its natural import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir under its natural module import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.dirImportPath(dir)
	if err != nil {
		return nil, err
	}
	abs, _ := filepath.Abs(dir)
	return l.LoadDirAs(abs, path)
}

// LoadDirAs loads the package in dir, registering it under the given import
// path. Tests use this to place fixture packages on policed paths.
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	return l.load(dir, path, nil)
}

// load resolves one package, deduplicating concurrent loads of the same path
// and detecting same-goroutine import cycles through the chain of paths the
// current type-check descended through.
func (l *Loader) load(dir, path string, chain []string) (*Package, error) {
	for _, c := range chain {
		if c == path {
			return nil, fmt.Errorf("lint: import cycle through %s (chain %s)", path, strings.Join(append(chain, path), " -> "))
		}
	}
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if fl, ok := l.inflight[path]; ok {
		// Another goroutine is loading this package. Legal Go cannot cycle
		// across goroutines here: LoadAll schedules in dependency order and
		// rejects cyclic module graphs before any type-check starts.
		l.mu.Unlock()
		<-fl.done
		return fl.pkg, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	l.inflight[path] = fl
	l.mu.Unlock()

	fl.pkg, fl.err = l.typecheck(dir, path, append(chain, path))

	l.mu.Lock()
	if fl.err == nil {
		l.pkgs[path] = fl.pkg
	}
	delete(l.inflight, path)
	l.mu.Unlock()
	close(fl.done)
	return fl.pkg, fl.err
}

// typecheck parses and type-checks the package in dir as path.
func (l *Loader) typecheck(dir, path string, chain []string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: &chainImporter{l: l, chain: chain}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// chainImporter resolves module-internal import paths from source, threading
// the loading chain for cycle detection, and delegates everything else to
// the (serialized) standard-library source importer.
type chainImporter struct {
	l     *Loader
	chain []string
}

func (m *chainImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.load(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path, m.chain)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}
