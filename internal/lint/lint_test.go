package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"timerstudy/internal/lint"
)

// fixtures maps each testdata fixture directory to the import path the
// harness loads it under; paths are chosen to land on the tree each
// analyzer polices.
var fixtures = []struct {
	dir string
	as  string
}{
	{"magictimeout", "timerstudy/internal/workloads/lintfixture"},
	{"wallclock", "timerstudy/internal/lintfixture/wall"},
	{"uncheckedcancel", "timerstudy/internal/lintfixture/cancel"},
	{"exactspec", "timerstudy/internal/lintfixture/exact"},
	{"rawsink", "timerstudy/internal/lintfixture/rawsink"},
	{"mapiter", "timerstudy/internal/lintfixture/mapiter"},
	{"goroutinecapture", "timerstudy/internal/lintfixture/capture"},
	{"allocfree", "timerstudy/internal/lintfixture/alloc"},
}

// wantRe matches expectation comments:
//
//	// want:<analyzer> "substring"        — finding expected on this line
//	// want+2:<analyzer> "substring"      — finding expected two lines below
var wantRe = regexp.MustCompile(`// want([+-][0-9]+)?:([a-z]+) "([^"]*)"`)

type expectation struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
	met      bool
}

func collectExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for lineNo := 1; sc.Scan(); lineNo++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				offset := 0
				if m[1] != "" {
					offset, err = strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", e.Name(), lineNo, m[1])
					}
				}
				out = append(out, &expectation{
					file:     e.Name(),
					line:     lineNo + offset,
					analyzer: m[2],
					substr:   m[3],
				})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}

func TestFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", fx.dir)
			loader, err := lint.NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.LoadDirAs(dir, fx.as)
			if err != nil {
				t.Fatal(err)
			}
			ds := lint.Run(loader, []*lint.Package{pkg}, lint.Analyzers())

			wants := collectExpectations(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no expectations", fx.dir)
			}
			for _, d := range ds {
				if !matchExpectation(wants, d) {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for _, w := range wants {
				if !w.met {
					t.Errorf("missing finding: %s:%d: %s: ...%s...", w.file, w.line, w.analyzer, w.substr)
				}
			}
		})
	}
}

func matchExpectation(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.met || w.file != filepath.Base(d.File) || w.line != d.Line || w.analyzer != d.Analyzer {
			continue
		}
		if !strings.Contains(d.String(), w.substr) {
			continue
		}
		w.met = true
		return true
	}
	return false
}

// TestMagicTimeoutCategories pins the taxonomy classification the analyzer
// attaches to representative values from the paper's Section 4 tables.
func TestMagicTimeoutCategories(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", "magictimeout"), "timerstudy/cmd/lintfixture")
	if err != nil {
		t.Fatal(err)
	}
	ds := lint.Run(loader, []*lint.Package{pkg}, lint.Analyzers())
	got := map[string]string{}
	for _, d := range ds {
		if d.Analyzer == "magictimeout" && d.Category != "" {
			got[fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)] = d.Category
		}
	}
	want := map[string]string{
		"magic.go:14": "round-seconds",        // 30s
		"magic.go:18": "power-of-ten",         // 100ms
		"magic.go:19": "small-jiffy-multiple", // 12ms = 3 jiffies
		"magic.go:20": "power-of-ten",         // 10s
	}
	for key, cat := range want {
		if got[key] != cat {
			t.Errorf("%s: category = %q, want %q", key, got[key], cat)
		}
	}
}
