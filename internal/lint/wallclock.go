package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockPoliced is the tree wallclock polices: every internal package is
// part of the deterministic simulation and must route time and randomness
// through the seeded sim engine. cmd/ and examples/ are hosts that may
// legitimately measure wall time (e.g. benchmark harness self-timing).
const wallClockPoliced = "timerstudy/internal/"

// forbiddenTimeFuncs are package time functions that read or wait on the
// host clock. Pure types/constants (time.Duration, time.Millisecond) are
// fine — only the functions leak nondeterminism.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Since": true, "Until": true,
}

// allowedRandFuncs are the math/rand constructors that accept an explicit
// Source or seed; everything else at package level uses the shared global
// source, whose default seeding breaks run-to-run reproducibility.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// WallClock forbids host-clock reads and unseeded global math/rand use in
// internal packages: the reproduction's results are only meaningful if every
// run over the same seed produces the same virtual-time trace.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "internal packages must use virtual sim time and seeded randomness, " +
		"never time.Now/Sleep/After or global math/rand",
	Run: runWallClock,
}

func runWallClock(pass *Pass) {
	if !strings.HasPrefix(pass.Pkg.Path, wallClockPoliced) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkClockSeeding(pass, call)
				return true
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s reads the host clock; internal packages must use the virtual sim clock (sim.Engine)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && !allowedRandFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"rand.%s uses the unseeded global source; draw from the engine's seeded *rand.Rand instead",
						fn.Name())
				}
			}
			return true
		})
	}
}

// checkClockSeeding flags rand sources seeded from the host clock — the
// rand.NewSource(time.Now().UnixNano()) idiom. The constructor itself is on
// the allow list (an explicit seed is the fix for global-source use), so a
// clock-derived seed would otherwise pass as "seeded" while still making
// every run different. Section 2 of the paper measures distributions over
// repeated runs; those are comparable only under a fixed, recorded seed.
func checkClockSeeding(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return
	}
	switch fn.Name() {
	case "NewSource", "Seed", "NewPCG", "NewChaCha8":
	default:
		return
	}
	for _, arg := range call.Args {
		if readsHostClock(pass, arg) {
			pass.Report("seeding", call.Pos(),
				"rand.%s seeded from the host clock makes every run different; use the experiment's fixed, recorded seed",
				fn.Name())
			return
		}
	}
}

// readsHostClock reports whether the expression subtree calls into package
// time (Now and friends — any function there reads or derives from the host
// clock when used as a seed).
func readsHostClock(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := pass.Pkg.Info.Uses[id].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() == nil && forbiddenTimeFuncs[fn.Name()] {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeFunc resolves a call's callee to its types.Func, if any.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
