package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockPoliced is the tree wallclock polices: every internal package is
// part of the deterministic simulation and must route time and randomness
// through the seeded sim engine. cmd/ and examples/ are hosts that may
// legitimately measure wall time (e.g. benchmark harness self-timing).
const wallClockPoliced = "timerstudy/internal/"

// forbiddenTimeFuncs are package time functions that read or wait on the
// host clock. Pure types/constants (time.Duration, time.Millisecond) are
// fine — only the functions leak nondeterminism.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Since": true, "Until": true,
}

// allowedRandFuncs are the math/rand constructors that accept an explicit
// Source or seed; everything else at package level uses the shared global
// source, whose default seeding breaks run-to-run reproducibility.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// WallClock forbids host-clock reads and unseeded global math/rand use in
// internal packages: the reproduction's results are only meaningful if every
// run over the same seed produces the same virtual-time trace.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "internal packages must use virtual sim time and seeded randomness, " +
		"never time.Now/Sleep/After or global math/rand",
	Run: runWallClock,
}

func runWallClock(pass *Pass) {
	if !strings.HasPrefix(pass.Pkg.Path, wallClockPoliced) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s reads the host clock; internal packages must use the virtual sim clock (sim.Engine)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && !allowedRandFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"rand.%s uses the unseeded global source; draw from the engine's seeded *rand.Rand instead",
						fn.Name())
				}
			}
			return true
		})
	}
}
