// Package brokensyntax is a fixture that must fail to parse: the loader has
// to return an error, never panic, when pointed at it.
package brokensyntax

func missingBody( {
	if true {
}
