// Package mapiterfix exercises the mapiter analyzer: order-sensitive work
// inside a `range` over a map. The harness loads it under a
// timerstudy/internal/... import path.
package mapiterfix

import (
	"fmt"
	"sort"
	"strings"

	"timerstudy/internal/trace"
)

// histogram is the PR 2 bug shape: per-value bins keyed by timeout value.
type histogram map[int64]int

// emitBins replays the value-histogram nondeterminism: records leave the
// loop in map order, so two runs over identical input produce different
// traces.
func emitBins(h histogram, sink trace.Sink) {
	for v, n := range h {
		for i := 0; i < n; i++ {
			sink.Log(trace.Record{Timeout: v}) // want:mapiter "trace record emitted while ranging over a map"
		}
	}
}

// printBins leaks map order into rendered output.
func printBins(h histogram) {
	var b strings.Builder
	for v, n := range h {
		fmt.Println(v, n)                          // want:mapiter "fmt.Println inside a range over a map"
		b.WriteString(fmt.Sprintf("%d:%d\n", v, n)) // want:mapiter "WriteString while ranging over a map"
	}
}

// collectUnsorted appends map keys into an outer slice and never sorts it.
func collectUnsorted(h histogram) []int64 {
	var keys []int64
	for v := range h {
		keys = append(keys, v) // want:mapiter "while ranging over a map leaks iteration order"
	}
	return keys
}

// collectSorted is the blessed idiom: collect, then visibly sort.
func collectSorted(h histogram) []int64 {
	var keys []int64
	for v := range h {
		keys = append(keys, v) // clean: sorted after the loop
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// accumulate performs order-insensitive reduction: sums and map writes
// commute, so iteration order cannot leak.
func accumulate(h histogram) int {
	total := 0
	inverse := map[int]int64{}
	for v, n := range h {
		total += n
		inverse[n] = v
	}
	return total + len(inverse)
}

// loopLocal appends into a slice born inside the iteration; it dies before
// order can be observed across iterations.
func loopLocal(h histogram) {
	for v, n := range h {
		var parts []int64
		for i := 0; i < n; i++ {
			parts = append(parts, v)
		}
		_ = parts
	}
}

// suppressed documents a deliberate exception with a reasoned directive.
func suppressed(h histogram, sink trace.Sink) {
	for v := range h {
		//lint:ignore mapiter fixture: downstream consumer sorts records by timestamp before comparing
		sink.Log(trace.Record{Timeout: v})
	}
}
