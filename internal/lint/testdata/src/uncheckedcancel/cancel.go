// Package cancelfix exercises the uncheckedcancel analyzer.
package cancelfix

type timer struct{}

func (timer) Cancel() bool        { return true }
func (timer) DelTimer() bool      { return false }
func (timer) KeCancelTimer() bool { return true }
func (timer) Stop()               {}
func (timer) Close() bool         { return true }

func use(t timer) {
	t.Cancel()           // want:uncheckedcancel "result of Cancel dropped"
	defer t.DelTimer()   // want:uncheckedcancel "result of DelTimer dropped"
	go t.KeCancelTimer() // want:uncheckedcancel "result of KeCancelTimer dropped"

	_ = t.Cancel() // explicit discard acknowledges the race: clean
	if t.Cancel() {
		return
	}
	t.Stop()  // no result to drop: clean
	t.Close() // not a cancel-shaped name: clean
}
