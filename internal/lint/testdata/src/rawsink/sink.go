// Package rawsink exercises the rawsink analyzer: exported signatures
// outside internal/trace must take the Sink/Source seam, not the concrete
// in-memory buffer.
package rawsink

import "timerstudy/internal/trace"

// RunInto streams into the abstract sink: clean.
func RunInto(s trace.Sink) { _ = s }

// Analyze consumes the abstract source: clean.
func Analyze(src trace.Source) error { return src.ForEach(func(trace.Record) {}) }

// Fill demands the concrete buffer on its write side.
func Fill(tr *trace.Buffer) { _ = tr } // want:rawsink "exported Fill takes *trace.Buffer"

// Reduce demands the concrete buffer on its read side.
func Reduce(n int, tr *trace.Buffer) int { return n + tr.Len() } // want:rawsink "accept trace.Sink (write side) or trace.Source (read side)"

// System is an exported type; its exported methods are API surface.
type System struct{}

// Attach on an exported receiver must use the seam.
func (System) Attach(tr *trace.Buffer) { _ = tr } // want:rawsink "exported Attach takes *trace.Buffer"

type internalSystem struct{}

// attach is unexported: not API, clean.
func (internalSystem) attach(tr *trace.Buffer) { _ = tr }

// Wire is exported but its receiver type is not: not reachable API, clean.
func (internalSystem) Wire(tr *trace.Buffer) { _ = tr }

// fill is unexported: internal plumbing may hold the concrete type.
func fill(tr *trace.Buffer) { tr.Log(trace.Record{}) }
