//lint:file-ignore wallclock this file is the fixture for whole-file opt-out: a host-metrics shim measuring real elapsed time by design

// hostmetrics exercises //lint:file-ignore: every violation below is
// suppressed by the single directive at the top of the file, and the
// directive itself counts as used (an unused file-ignore is a finding).
package wall

import "time"

func hostElapsed() time.Duration {
	start := time.Now() // suppressed by the file-ignore above
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
