// Package wall exercises the wallclock analyzer. The harness loads it under
// a timerstudy/internal/... import path, where host-clock access is banned.
package wall

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	time.Sleep(time.Millisecond) // want:wallclock "time.Sleep reads the host clock"
	<-time.After(time.Second)    // want:wallclock "time.After reads the host clock"
	return time.Now()            // want:wallclock "time.Now reads the host clock"
}

func draw() int {
	r := rand.New(rand.NewSource(42)) // explicit seed: clean
	n := r.Intn(6)                    // method on seeded *rand.Rand: clean
	return n + rand.Intn(6)           // want:wallclock "rand.Intn uses the unseeded global source"
}

// elapsed uses only time's types and constants, which are pure values.
func elapsed(d time.Duration) bool { return d > 3*time.Millisecond }
