// Package wall exercises the wallclock analyzer. The harness loads it under
// a timerstudy/internal/... import path, where host-clock access is banned.
package wall

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	time.Sleep(time.Millisecond) // want:wallclock "time.Sleep reads the host clock"
	<-time.After(time.Second)    // want:wallclock "time.After reads the host clock"
	return time.Now()            // want:wallclock "time.Now reads the host clock"
}

func draw() int {
	r := rand.New(rand.NewSource(42)) // explicit seed: clean
	n := r.Intn(6)                    // method on seeded *rand.Rand: clean
	return n + rand.Intn(6)           // want:wallclock "rand.Intn uses the unseeded global source"
}

func measure() {
	start := time.Now() // want:wallclock "time.Now reads the host clock"
	work()
	_ = time.Since(start)       // want:wallclock "time.Since reads the host clock"
	_ = time.Until(start)       // want:wallclock "time.Until reads the host clock"
	<-time.Tick(time.Second)    // want:wallclock "time.Tick reads the host clock"
	t := time.NewTicker(1)      // want:wallclock "time.NewTicker reads the host clock"
	t.Stop()                    // method on Ticker: the constructor was the violation
	tm := time.NewTimer(1)      // want:wallclock "time.NewTimer reads the host clock"
	_ = tm.Stop()
}

// seeded builds the classic wall-clock-seeded source: the constructor is on
// the allow list, but a clock-derived seed still breaks reproducibility.
func seeded() *rand.Rand {
	// The line below carries two findings: time.Now itself, plus the
	// seeding-shape diagnostic on the NewSource call.
	// want+2:wallclock "time.Now reads the host clock"
	// want+1:wallclock "rand.NewSource seeded from the host clock"
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

func work() {}

// elapsed uses only time's types and constants, which are pure values.
func elapsed(d time.Duration) bool { return d > 3*time.Millisecond }
