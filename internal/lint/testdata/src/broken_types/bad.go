// Package brokentypes parses fine but cannot type-check: undefined names
// and a mistyped assignment. The loader must surface the type error.
package brokentypes

func useUndefined() int {
	var s string = 42
	return undefinedIdentifier + len(s)
}
