// Package exactfix exercises the exactspec analyzer.
package exactfix

import (
	"timerstudy/internal/core"
	"timerstudy/internal/sim"
)

func specs(deadline sim.Duration) []core.Spec {
	return []core.Spec{
		core.Exact(30 * sim.Second),       // want:exactspec "Exact(30s) forbids coalescing"
		core.Exact(500 * sim.Millisecond), // sub-second accuracy need: clean
		core.Exact(deadline),              // runtime policy decision: clean
		core.Window(30*sim.Second, 3*sim.Second),
		core.AnyTimeAfter(2 * sim.Minute),
		//lint:ignore exactspec fixture: a genuinely rigid deadline
		core.Exact(10 * sim.Second),
	}
}
