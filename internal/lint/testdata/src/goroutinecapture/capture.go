// Package capturefix exercises the goroutinecapture analyzer: concurrent
// closures mutating captured shared state. The harness loads it under a
// timerstudy/internal/... import path.
package capturefix

import (
	"sync"

	"timerstudy/internal/sim"
)

// forEach has the worker-pool shape the analyzer keys on: a pool-size int
// parameter named "workers" alongside func parameters. Closures passed here
// run on pool goroutines.
func forEach(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// fanOut is the canonical fleet seam and its canonical corruption, side by
// side: per-worker index writes are safe, a shared append is not.
func fanOut() ([]int, []int) {
	out := make([]int, 8)
	var hist []int
	forEach(8, 4, func(i int) {
		out[i] = i * i         // clean: index is the closure's own parameter
		hist = append(hist, i) // want:goroutinecapture "writes captured variable"
	})
	return out, hist
}

// sharedCounters shows the remaining unsynchronized shapes: a captured
// scalar, a captured map, and a captured slice indexed by a captured var.
func sharedCounters(j int) {
	total := 0
	counts := map[string]int{}
	slots := make([]int, 16)
	go func() {
		total++           // want:goroutinecapture "writes captured variable"
		counts["set"] = 1 // want:goroutinecapture "concurrent write to captured map"
		slots[j] = 1      // want:goroutinecapture "index not derived from this closure"
	}()
	_ = slots
}

// engineShared captures a single-threaded engine: even a read-shaped method
// call races with the owner goroutine's scheduling.
func engineShared() {
	e := sim.NewEngine(1)
	go func() {
		e.Step() // want:goroutinecapture "captured single-threaded sim.Engine"
	}()
}

// lockedAccumulate brings a mutex, the analyzer's coarse evidence that the
// author thought about synchronization.
func lockedAccumulate() []int {
	var mu sync.Mutex
	var hist []int
	forEach(8, 4, func(i int) {
		mu.Lock()
		hist = append(hist, i) // clean: closure takes the lock
		mu.Unlock()
	})
	return hist
}

// channelFunnel hands results to one consumer over a channel; nothing
// shared is written.
func channelFunnel() int {
	res := make(chan int, 8)
	forEach(8, 4, func(i int) {
		res <- i // clean: channel send is a synchronized seam
	})
	total := 0
	for i := 0; i < 8; i++ {
		total += <-res
	}
	return total
}

// loopCapture references the range variable from a spawned goroutine;
// per-iteration semantics (go >= 1.22) make it safe but implicit, so it is
// a warning, not an error.
func loopCapture(ws []int) {
	done := make(chan struct{}, len(ws))
	for _, w := range ws {
		go func() {
			_ = w // want:goroutinecapture "captures loop variable"
			done <- struct{}{}
		}()
	}
}

// suppressed documents a deliberate exception with a reasoned directive.
func suppressed() {
	n := 0
	done := make(chan struct{})
	go func() {
		//lint:ignore goroutinecapture fixture: the channel below sequences this write before the read
		n = 42
		close(done)
	}()
	<-done
	_ = n
}
