// Package allocfix exercises the allocfree analyzer. Unlike the other
// fixtures this one is also compiled by the real toolchain: the analyzer
// shells out to `go build -gcflags=-m=2` on this directory and maps the
// escape diagnostics back into the annotated functions below.
package allocfix

var sink *int

// hotClean is the invariant holding: arithmetic over stack values, nothing
// escapes, no finding.
//
//lint:allocfree fixture: pure arithmetic hot path
func hotClean(a, b int) int {
	s := 0
	for i := a; i < b; i++ {
		s += i * i
	}
	return s
}

// regressed is the deliberately-broken hot path: the local escapes through
// the package-level sink, and the analyzer must flag the exact line.
//
//lint:allocfree fixture: deliberately regressed — the line below must be flagged
func regressed(n int) int {
	x := n + 1 // want:allocfree "heap allocation in //lint:allocfree function regressed"
	sink = &x
	return *sink
}

// pooled has a cold grow path inside a hot function; the allocation is
// acknowledged with a reasoned suppression, the steady state stays gated.
//
//lint:allocfree fixture: steady-state reslice; grow is cold and suppressed
func pooled(buf []byte, n int) []byte {
	if cap(buf) < n {
		//lint:ignore allocfree fixture: cold grow path, amortized across calls
		buf = make([]byte, n)
	}
	return buf[:n]
}

// unannotated allocates freely: without the marker the analyzer has no
// opinion.
func unannotated(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
