package magic

import "timerstudy/internal/sim"

const (
	// retryBudget: fixture stand-in for a provenance-annotated registry value.
	retryBudget = 5 * sim.Second

	// want+2:magictimeout "no provenance comment"

	undocumented = 7 * sim.Second
)

var _ = undocumented
