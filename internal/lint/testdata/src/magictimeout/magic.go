// Package magic exercises the magictimeout analyzer. The test harness loads
// it under a policed import path; `// want[+N]:<analyzer> "substring"`
// comments state the expected diagnostics.
package magic

import "timerstudy/internal/sim"

func poll(timeout sim.Duration) {}
func think(mean sim.Duration)   {}
func run(d sim.Duration)        {}
func led(blinkTO sim.Duration)  {}

func calls() {
	poll(30 * sim.Second)      // want:magictimeout "hard-coded timeout 30s"
	poll(retryBudget)          // named registry constant: clean
	poll(0)                    // zero means non-blocking: clean
	think(2 * sim.Second)      // a distribution mean is not a timeout: clean
	run(100 * sim.Millisecond) // want:magictimeout "hard-coded timeout 100ms"
	led(3 * lintFixtureJiffy)  // want:magictimeout "hard-coded timeout 12ms"
	poll(2 * retryBudget)      // want:magictimeout "hard-coded timeout 10s"
	//lint:ignore magictimeout fixture demonstrates a reasoned suppression
	poll(5 * sim.Second)
	poll(variable()) // runtime-computed: clean
}

// lintFixtureJiffy is a local constant built from a unit token, so uses of
// it still count as magic.
const lintFixtureJiffy = 4 * sim.Millisecond

func variable() sim.Duration { return retryBudget }

// want+2:lint "malformed //lint:ignore"
//
//lint:ignore magictimeout
var _ = 0

// want+2:lint "unused //lint:ignore"
//
//lint:ignore wallclock nothing on the next line violates wallclock
var _ = 1

// wrapped regression-tests suppression scoping: the directive sits above a
// call wrapped over several lines, and the magic constant (the finding
// position) is on the call's LAST line, not the line directly under the
// directive. The whole statement must be covered — this used to leak.
func wrapped() {
	//lint:ignore magictimeout fixture: directive above a multi-line call covers the whole expression
	poll(
		3 *
			sim.Second,
	)
	run(
		7 * // want:magictimeout "hard-coded timeout 7s"
			sim.Second,
	)
}
