package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// allocFreeMarker opts a function into the escape-analysis gate. It goes in
// the function's doc comment, optionally followed by a note:
//
//	//lint:allocfree steady-state schedule path; guarded by AllocsPerRun
//	func (e *Engine) At(...) ...
const allocFreeMarker = "//lint:allocfree"

// AllocFree checks functions annotated //lint:allocfree against the
// compiler's own escape analysis. The repo's zero-allocation invariant
// (PR 3: pooled events, the timer wheel, the v2 record encoder) is enforced
// dynamically by testing.AllocsPerRun guards, but those fail as an opaque
// count after the regression lands. This analyzer runs
// `go build -gcflags=-m=2` on each annotated package — the build cache
// replays the diagnostics, so warm runs cost one cache probe — and maps
// every "escapes to heap"/"moved to heap" line that falls inside an
// annotated function back to its source position. An alloc regression is
// reported at the offending expression, reviewable in the diff.
//
// Known cold paths inside a hot function (an error panic's fmt.Sprintf, a
// pool's grow-on-empty construction) are suppressed at the line with a
// reasoned //lint:ignore allocfree directive.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //lint:allocfree must be free of heap escapes " +
		"per the compiler's escape analysis (go build -gcflags=-m=2)",
	Run: runAllocFree,
}

// escapeDiag is one parsed compiler escape-analysis diagnostic.
type escapeDiag struct {
	file string // absolute path
	line int
	col  int
	msg  string
}

// escapeLineRe matches the file:line:col prefix of a -m=2 diagnostic line.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeCache memoizes escape diagnostics per package directory: the suite
// runs the analyzer once per loaded package per test, and the underlying
// compile output never changes within one process run.
var escapeCache sync.Map // abs dir -> escapeResult

type escapeResult struct {
	diags []escapeDiag
	err   error
}

// annotatedFunc is one //lint:allocfree function's coverage window.
type annotatedFunc struct {
	name    string
	file    string // filename as the FileSet knows it (for suppressions)
	absFile string // absolute path (for matching compiler output)
	start   int    // first line of the declaration
	end     int    // last line of the body
}

func runAllocFree(pass *Pass) {
	var fns []annotatedFunc
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			if !hasAllocFreeMarker(fd.Doc) {
				continue
			}
			pos := pass.Fset.Position(fd.Pos())
			end := pass.Fset.Position(fd.End())
			abs, err := filepath.Abs(pos.Filename)
			if err != nil {
				abs = pos.Filename
			}
			fns = append(fns, annotatedFunc{
				name:    funcDisplayName(fd),
				file:    pos.Filename,
				absFile: abs,
				start:   pos.Line,
				end:     end.Line,
			})
		}
	}
	if len(fns) == 0 {
		return
	}

	res := escapeDiagsFor(pass.Pkg.Dir)
	if res.err != nil {
		// A package that does not compile under the real toolchain cannot
		// honor the annotation; surface that at the first annotated function.
		pass.ReportPosition(SeverityError, "build", token.Position{
			Filename: fns[0].file, Line: fns[0].start, Column: 1,
		}, "cannot verify //lint:allocfree: %v", res.err)
		return
	}
	for _, d := range res.diags {
		for _, fn := range fns {
			if d.file != fn.absFile || d.line < fn.start || d.line > fn.end {
				continue
			}
			pass.ReportPosition(SeverityError, "escape", token.Position{
				Filename: fn.file, Line: d.line, Column: d.col,
			}, "heap allocation in //lint:allocfree function %s: %s", fn.name, strings.TrimSuffix(d.msg, ":"))
			break
		}
	}
}

// hasAllocFreeMarker reports whether a doc comment carries //lint:allocfree.
func hasAllocFreeMarker(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if c.Text == allocFreeMarker || strings.HasPrefix(c.Text, allocFreeMarker+" ") {
			return true
		}
	}
	return false
}

// funcDisplayName renders "Name" or "(Recv).Name" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		if id, ok := t.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
	case *ast.Ident:
		b.WriteString(t.Name)
	}
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// escapeDiagsFor compiles the package in dir with -gcflags=-m=2 and returns
// the heap-escape diagnostics, memoized per directory.
func escapeDiagsFor(dir string) escapeResult {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	if cached, ok := escapeCache.Load(abs); ok {
		return cached.(escapeResult)
	}
	res := runEscapeAnalysis(abs)
	escapeCache.Store(abs, res)
	return res
}

// runEscapeAnalysis shells out to the go tool. The compiler is the only
// authoritative source of escape facts; reimplementing its analysis over
// go/types would diverge from what the binary actually does.
func runEscapeAnalysis(absDir string) escapeResult {
	goBin, err := exec.LookPath("go")
	if err != nil {
		return escapeResult{err: fmt.Errorf("go toolchain not found: %w", err)}
	}
	root, err := findModuleRoot(absDir)
	if err != nil {
		return escapeResult{err: err}
	}
	rel, err := filepath.Rel(root, absDir)
	if err != nil {
		return escapeResult{err: err}
	}
	target := "./" + filepath.ToSlash(rel)
	if rel == "." {
		target = "."
	}
	cmd := exec.Command(goBin, "build", "-gcflags=-m=2", target)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return escapeResult{err: fmt.Errorf("go build -gcflags=-m=2 %s: %v\n%s", target, err, firstLines(string(out), 10))}
	}
	var diags []escapeDiag
	seen := map[string]bool{} // -m=2 restates verdicts (trace + summary form)
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		// -m=2 emits inlining facts and per-edge "flow:" traces under the
		// same position prefix; only the escape verdicts gate the invariant.
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if strings.HasPrefix(msg, "flow:") || strings.HasPrefix(msg, "from ") {
			continue
		}
		// A constant string "escaping" (a panic argument, typically) lives in
		// rodata; no allocation happens at runtime.
		if strings.HasPrefix(msg, `"`) || strings.HasPrefix(msg, "`") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		key := file + ":" + m[2] + ":" + m[3]
		if seen[key] {
			continue
		}
		seen[key] = true
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, escapeDiag{file: file, line: ln, col: col, msg: msg})
	}
	return escapeResult{diags: diags}
}

// firstLines truncates s to at most n lines for an error message.
func firstLines(s string, n int) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) > n {
		lines = append(lines[:n], "...")
	}
	return strings.Join(lines, "\n")
}
