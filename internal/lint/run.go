package lint

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzers returns the full analyzer suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MagicTimeout, WallClock, UncheckedCancel, ExactSpec, RawSink}
}

// Run applies the analyzers to the packages, filters suppressed findings,
// reports malformed and unused suppression directives, and returns the
// surviving diagnostics sorted by position.
func Run(fsetOwner *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	fset := fsetOwner.Fset()
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(fset, pkg.Files)
		out = append(out, sup.malformed...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !sup.suppresses(d) {
				out = append(out, d)
			}
		}
		// A directive nothing matched is stale: either the violation is gone
		// or the analyzer name is wrong. Both deserve a finding.
		for file, dirs := range sup.byFile {
			for _, dir := range dirs {
				if !dir.used && analyzerKnown(analyzers, dir.analyzer) {
					out = append(out, Diagnostic{
						Analyzer: "lint",
						File:     file,
						Line:     dir.line,
						Col:      1,
						Message:  "unused //lint:ignore " + dir.analyzer + " directive (no matching finding on this or the next line)",
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

func analyzerKnown(analyzers []*Analyzer, name string) bool {
	if name == "all" {
		return true
	}
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Relativize rewrites diagnostic file paths relative to root, for stable
// output across machines.
func Relativize(root string, ds []Diagnostic) {
	for i := range ds {
		if rel, err := filepath.Rel(root, ds[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			ds[i].File = rel
		}
	}
}

// Text renders diagnostics one per line in file:line:col form.
func Text(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders diagnostics as an indented JSON array.
func JSON(ds []Diagnostic) ([]byte, error) {
	if ds == nil {
		ds = []Diagnostic{}
	}
	return json.MarshalIndent(ds, "", "  ")
}
