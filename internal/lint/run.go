package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Analyzers returns the full analyzer suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MagicTimeout, WallClock, UncheckedCancel, ExactSpec, RawSink,
		MapIter, GoroutineCapture, AllocFree,
	}
}

// Select resolves a comma-separated list of analyzer names ("" means all).
func Select(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// AnalyzerStat records one analyzer's cost and yield over a run, for the
// bench pipeline: analyzer time is tracked like every other phase.
type AnalyzerStat struct {
	Name     string  `json:"name"`
	Findings int     `json:"findings"`
	WallMS   float64 `json:"wall_ms"`
}

// Run applies the analyzers to the packages, filters suppressed findings,
// reports malformed and unused suppression directives, and returns the
// surviving diagnostics sorted by position.
func Run(fsetOwner *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ds, _ := RunStats(fsetOwner, pkgs, analyzers)
	return ds
}

// RunStats is Run plus per-analyzer cost/yield accounting, in analyzer order.
func RunStats(fsetOwner *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerStat) {
	fset := fsetOwner.Fset()
	stats := make([]AnalyzerStat, len(analyzers))
	for i, a := range analyzers {
		stats[i].Name = a.Name
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(fset, pkg.Files)
		out = append(out, sup.malformed...)
		var raw []Diagnostic
		for i, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			//lint:ignore wallclock analyzer self-timing measures host-process cost for the bench report, not simulated time
			t0 := time.Now()
			before := len(raw)
			a.Run(pass)
			//lint:ignore wallclock analyzer self-timing measures host-process cost for the bench report, not simulated time
			stats[i].WallMS += float64(time.Since(t0).Nanoseconds()) / 1e6
			stats[i].Findings += len(raw) - before
		}
		for _, d := range raw {
			if sup.suppresses(d) {
				continue
			}
			out = append(out, d)
		}
		// A directive nothing matched is stale: either the violation is gone
		// or the analyzer name is wrong. Both deserve a finding.
		for file, dirs := range sup.byFile {
			for _, dir := range dirs {
				if !dir.used && analyzerKnown(analyzers, dir.analyzer) {
					kind := "//lint:ignore"
					if dir.wholeFile {
						kind = "//lint:file-ignore"
					}
					out = append(out, Diagnostic{
						Analyzer: "lint",
						Severity: SeverityError,
						File:     file,
						Line:     dir.line,
						Col:      1,
						Message:  "unused " + kind + " " + dir.analyzer + " directive (no matching finding in its scope)",
					})
				}
			}
		}
	}
	// Suppressed findings still count toward per-analyzer yield above; the
	// surviving set is what gates CI. Keep the output deterministically
	// ordered by position regardless of package or analyzer order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, stats
}

func analyzerKnown(analyzers []*Analyzer, name string) bool {
	if name == "all" {
		return true
	}
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// MaxSeverity returns the highest severity among the diagnostics (errors
// outrank warnings), or "" for an empty set.
func MaxSeverity(ds []Diagnostic) Severity {
	out := Severity("")
	for _, d := range ds {
		switch d.severity() {
		case SeverityError:
			return SeverityError
		case SeverityWarning:
			out = SeverityWarning
		}
	}
	return out
}

// FilterSeverity keeps diagnostics at or above min ("warning" keeps all,
// "error" keeps errors only).
func FilterSeverity(ds []Diagnostic, min Severity) []Diagnostic {
	if min == "" || min == SeverityWarning {
		return ds
	}
	var out []Diagnostic
	for _, d := range ds {
		if d.severity() == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// Relativize rewrites diagnostic file paths relative to root, for stable
// output across machines.
func Relativize(root string, ds []Diagnostic) {
	for i := range ds {
		if rel, err := filepath.Rel(root, ds[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			ds[i].File = rel
		}
	}
}

// Text renders diagnostics one per line in file:line:col form.
func Text(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders diagnostics as an indented JSON array.
func JSON(ds []Diagnostic) ([]byte, error) {
	if ds == nil {
		ds = []Diagnostic{}
	}
	return json.MarshalIndent(ds, "", "  ")
}

// GitHub renders diagnostics as GitHub Actions workflow commands, one per
// line, so a CI run annotates the offending lines of a pull request.
func GitHub(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		level := "error"
		if d.severity() == SeverityWarning {
			level = "warning"
		}
		msg := d.Message
		if d.Category != "" {
			msg = fmt.Sprintf("%s [%s]", msg, d.Category)
		}
		// Workflow-command escaping: %, CR and LF in the message payload.
		msg = strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(msg)
		fmt.Fprintf(&b, "::%s file=%s,line=%d,col=%d,title=timerlint %s::%s\n",
			level, d.File, d.Line, d.Col, d.Analyzer, msg)
	}
	return b.String()
}

// baselineEntry is one accepted pre-existing finding. Line numbers are
// deliberately absent: a baseline must survive unrelated edits to the file,
// so entries match on (file, analyzer, message) only.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteBaseline records the findings in path as an accepted-debt baseline
// for later ApplyBaseline calls. An empty set writes an empty baseline.
func WriteBaseline(path string, ds []Diagnostic) error {
	entries := make([]baselineEntry, 0, len(ds))
	for _, d := range ds {
		entries = append(entries, baselineEntry{File: d.File, Analyzer: d.Analyzer, Message: d.Message})
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline drops findings matching entries of the baseline at path,
// consuming each entry at most once, and returns the survivors plus the
// number suppressed. Incremental adoption: commit today's findings as the
// baseline, gate CI on the survivors, burn the file down over time.
func ApplyBaseline(path string, ds []Diagnostic) ([]Diagnostic, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, 0, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	remaining := map[baselineEntry]int{}
	for _, e := range entries {
		remaining[e]++
	}
	var out []Diagnostic
	suppressed := 0
	for _, d := range ds {
		key := baselineEntry{File: d.File, Analyzer: d.Analyzer, Message: d.Message}
		if remaining[key] > 0 {
			remaining[key]--
			suppressed++
			continue
		}
		out = append(out, d)
	}
	return out, suppressed, nil
}
