package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// unsafeSharedTypes are module types that are documented single-threaded:
// calling any method on a captured instance from a concurrent closure is a
// data race unless the caller built its own synchronization seam.
var unsafeSharedTypes = map[string]map[string]bool{
	"timerstudy/internal/sim":      {"Engine": true},
	"timerstudy/internal/trace":    {"Buffer": true, "StreamWriter": true},
	"timerstudy/internal/analysis": {"Pipeline": true},
}

// workerParamNames mark an int parameter that sizes a worker pool; a func
// parameter in the same signature is assumed to be invoked from pool
// goroutines (the workloads.ForEach / RunAll seam, and the parallel fleet
// engine to come).
var workerParamNames = map[string]bool{
	"workers": true, "parallel": true, "parallelism": true,
	"concurrency": true, "jobs": true,
}

// GoroutineCapture flags concurrent closures — `go` statements and function
// literals handed to worker-pool APIs — that capture and mutate shared
// state: writes to captured slices/maps/scalars, and method calls on
// captured single-threaded facilities (*sim.Engine, *trace.Buffer,
// *analysis.Pipeline). The byte-identical-traces invariant (PR 2) holds
// only because every worker owns its engine and sink; an unsynchronized
// shared accumulator is both a race and a determinism leak.
//
// Recognized safe seams: closures that take a mutex (any Lock/RLock call in
// the body), channel sends/receives, and per-worker-index writes to a
// captured slice (out[i] = ... where i is a closure parameter or
// closure-local variable — distinct indices per worker never alias).
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc: "go statements and worker-pool closures must not mutate captured " +
		"shared state without a mutex, channel, or per-worker seam",
	Run: runGoroutineCapture,
}

func runGoroutineCapture(pass *Pass) {
	if !strings.HasPrefix(pass.Pkg.Path, "timerstudy/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		var loops []ast.Node // enclosing for/range statements, innermost last
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
				ast.Inspect(nodeBody(n), walk)
				loops = loops[:len(loops)-1]
				return false
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkLoopVarCapture(pass, loops, lit)
					checkConcurrentClosure(pass, lit, "go statement")
				}
			case *ast.CallExpr:
				for _, lit := range workerPoolClosures(pass, n) {
					checkConcurrentClosure(pass, lit, "worker-pool closure")
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// nodeBody returns the body block of a for or range statement.
func nodeBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// workerPoolClosures returns function literals passed to a call whose
// signature pairs a pool-size int parameter with func parameters.
func workerPoolClosures(pass *Pass, call *ast.CallExpr) []*ast.FuncLit {
	sig := calleeSignature(pass, call)
	if sig == nil {
		return nil
	}
	pool := false
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if b, ok := p.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 &&
			workerParamNames[strings.ToLower(p.Name())] {
			pool = true
			break
		}
	}
	if !pool {
		return nil
	}
	var out []*ast.FuncLit
	for i, arg := range call.Args {
		p := paramAt(sig, i)
		if p == nil {
			continue
		}
		if _, isFunc := p.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			out = append(out, lit)
		}
	}
	return out
}

// checkLoopVarCapture reports a goroutine closure referencing an enclosing
// loop's iteration variable. Per-iteration loop variables (go >= 1.22) make
// this safe at runtime, but the capture still couples goroutine lifetime to
// loop state the reader must reason about; pass the value as an argument.
func checkLoopVarCapture(pass *Pass, loops []ast.Node, lit *ast.FuncLit) {
	vars := map[types.Object]bool{}
	for _, loop := range loops {
		switch l := loop.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{l.Key, l.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Pkg.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
		}
	}
	if len(vars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Pkg.Info.Uses[id]; obj != nil && vars[obj] {
			pass.ReportSeverity(SeverityWarning, "loopvar", id.Pos(),
				"goroutine closure captures loop variable %q; pass it as an argument so the iteration it belongs to is explicit",
				id.Name)
			delete(vars, obj) // one report per variable per closure
		}
		return true
	})
}

// checkConcurrentClosure flags unsynchronized mutation of captured state
// inside a closure that will run on another goroutine.
func checkConcurrentClosure(pass *Pass, lit *ast.FuncLit, context string) {
	if closureTakesLock(pass, lit) {
		return
	}
	captured := func(id *ast.Ident) *types.Var {
		obj, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return nil
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return nil // declared inside the closure (params included)
		}
		return obj
	}
	localIdx := func(idx ast.Expr) bool {
		// An index expression is a per-worker seam if every variable in it
		// is closure-local (a parameter or declared inside the body).
		ok := true
		ast.Inspect(idx, func(n ast.Node) bool {
			if id, isID := n.(*ast.Ident); isID {
				if v := captured(id); v != nil {
					ok = false
				}
			}
			return ok
		})
		return ok
	}
	report := func(pos ast.Node, format string, args ...any) {
		pass.Report("shared-write", pos.Pos(), format, args...)
	}

	checkWrite := func(lhs ast.Expr) {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if v := captured(e); v != nil {
				pass.Report("shared-write", e.Pos(),
					"closure run on another goroutine writes captured variable %q without synchronization; use a mutex, a channel, or a per-worker copy", e.Name)
			}
		case *ast.IndexExpr:
			root, rootOk := ast.Unparen(e.X).(*ast.Ident)
			if !rootOk {
				return
			}
			v := captured(root)
			if v == nil {
				return
			}
			if _, isMap := v.Type().Underlying().(*types.Map); isMap {
				report(e, "concurrent write to captured map %q (map writes race even on distinct keys); guard it with a mutex or shard per worker", root.Name)
				return
			}
			if !localIdx(e.Index) {
				report(e, "write to captured slice %q at an index not derived from this closure's own variables; distinct per-worker indices are the only safe unsynchronized seam", root.Name)
			}
		case *ast.SelectorExpr:
			if root := selectorRoot(e); root != nil {
				if v := captured(root); v != nil && isUnsafeSharedType(v.Type()) {
					report(e, "field write on captured %s %q from a concurrent closure; give each worker its own instance", typeLabel(v.Type()), root.Name)
				}
			}
		case *ast.StarExpr:
			if root, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if v := captured(root); v != nil {
					report(e, "write through captured pointer %q from a concurrent closure without synchronization", root.Name)
				}
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != lit {
				return true // nested literals inherit the same capture checks
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if root, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v := captured(root); v != nil && isUnsafeSharedType(v.Type()) {
						report(n, "%s.%s called on a captured single-threaded %s from a concurrent closure; give each worker its own instance or funnel calls through one goroutine",
							root.Name, sel.Sel.Name, typeLabel(v.Type()))
					}
				}
			}
		}
		return true
	})
}

// closureTakesLock reports whether the closure body calls a Lock/RLock
// method anywhere — the coarse "this closure brought a mutex" signal; the
// race detector remains the dynamic backstop for misuse.
func closureTakesLock(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}

// selectorRoot returns the leftmost identifier of a selector chain.
func selectorRoot(e *ast.SelectorExpr) *ast.Ident {
	x := ast.Unparen(e.X)
	for {
		switch v := x.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			x = ast.Unparen(v.X)
		case *ast.StarExpr:
			x = ast.Unparen(v.X)
		case *ast.IndexExpr:
			x = ast.Unparen(v.X)
		default:
			return nil
		}
	}
}

// isUnsafeSharedType reports whether t (or *t) is one of the module's
// documented single-threaded facilities.
func isUnsafeSharedType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	names := unsafeSharedTypes[obj.Pkg().Path()]
	return names != nil && names[obj.Name()]
}

// typeLabel renders a type's short name for diagnostics.
func typeLabel(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			parts := strings.Split(pkg.Path(), "/")
			return parts[len(parts)-1] + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
