package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"timerstudy/internal/sim"
)

// simPkgPath is the package whose Duration type and unit constants define
// "a timeout value" throughout the module.
const simPkgPath = "timerstudy/internal/sim"

// magicPoliced are the import-path prefixes magictimeout polices: the trees
// the study's own Section 4 critique applies to. Library packages (core,
// kernel, ktimer, ...) model *foreign* systems whose constants are the
// object of study, not configuration of ours.
var magicPoliced = []string{
	"timerstudy/internal/workloads",
	"timerstudy/internal/fleet",
	"timerstudy/internal/serve",
	"timerstudy/internal/trace",
	"timerstudy/examples/",
	"timerstudy/cmd/",
}

// registryFile is the per-package constants registry magictimeout steers
// timeout values into; every constant there must carry a provenance comment.
const registryFile = "timeouts.go"

// timeoutParamExact and timeoutParamSubstrings decide whether a callee
// parameter is timeout-shaped. Matching is by the parameter's declared name,
// which go/types preserves: `Poll(timeout sim.Duration, ...)` matches,
// `exp(mean sim.Duration)` does not — a think-time distribution mean is a
// modeling parameter, not a timeout anyone waits on.
var (
	timeoutParamExact = map[string]bool{
		"d": true, "d1": true, "d2": true, "to": true,
		"dur": true, "duration": true, "after": true,
	}
	timeoutParamSubstrings = []string{
		"timeout", "period", "interval", "deadline", "delay",
		"slack", "window", "due", "elapse", "value", "every", "budget",
	}
)

// MagicTimeout flags hard-coded sim.Duration constants passed as timeout
// arguments outside the timeouts.go registry, classifying each into the
// paper's round-number taxonomy, and requires every registry constant to
// carry a provenance comment.
var MagicTimeout = &Analyzer{
	Name: "magictimeout",
	Doc: "hard-coded timeout values must live in a provenance-annotated " +
		"timeouts.go registry (paper Section 4 / 5.2)",
	Run: runMagicTimeout,
}

func runMagicTimeout(pass *Pass) {
	if !pathHasPrefix(pass.Pkg.Path, magicPoliced) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == registryFile {
			checkRegistryProvenance(pass, f)
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCallTimeouts(pass, call)
			return true
		})
	}
}

// checkCallTimeouts flags constant literal-bearing Duration arguments bound
// to timeout-shaped parameters of call.
func checkCallTimeouts(pass *Pass, call *ast.CallExpr) {
	sig := calleeSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil || !isSimDuration(param.Type()) {
			continue
		}
		if param.Name() != "" && !timeoutParamName(param.Name()) {
			continue
		}
		tv, ok := pass.Pkg.Info.Types[arg]
		if !ok || tv.Value == nil {
			continue // runtime-computed values are decisions, not magic
		}
		v, ok := constant.Int64Val(constant.ToInt(tv.Value))
		if !ok || v == 0 {
			continue // zero means "non-blocking", a semantic, not a value
		}
		if !containsMagicToken(pass, arg) {
			continue // a named registry constant reference is the goal state
		}
		pass.Report(classifyTimeout(sim.Duration(v)), arg.Pos(),
			"hard-coded timeout %v passed as parameter %q of %s; name it in the %s registry with a provenance comment",
			sim.Duration(v), param.Name(), calleeLabel(call), registryFile)
	}
}

// calleeSignature resolves the called function's signature, returning nil
// for type conversions and non-function calls.
func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramAt returns the parameter an argument index binds to, folding
// variadic tails onto the last parameter's element type holder.
func paramAt(sig *types.Signature, i int) *types.Var {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		// The variadic slot: its type is a slice; timeout parameters are
		// never variadic in this module, so skip it.
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i)
}

// isSimDuration reports whether t is (an alias of) sim.Duration.
func isSimDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath
}

// timeoutParamName reports whether a parameter name is timeout-shaped.
func timeoutParamName(name string) bool {
	lower := strings.ToLower(name)
	if timeoutParamExact[lower] || strings.HasSuffix(lower, "to") {
		return true
	}
	for _, sub := range timeoutParamSubstrings {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// containsMagicToken reports whether expr syntactically contains a numeric
// literal or a bare sim time-unit constant (sim.Second, ...). References to
// named constants declared elsewhere — the registry — contain neither.
func containsMagicToken(pass *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.INT || n.Kind == token.FLOAT {
				found = true
			}
		case *ast.Ident:
			if obj, ok := pass.Pkg.Info.Uses[n]; ok && isSimUnitConst(obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSimUnitConst reports whether obj is one of sim's duration unit
// constants.
func isSimUnitConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != simPkgPath {
		return false
	}
	switch c.Name() {
	case "Nanosecond", "Microsecond", "Millisecond", "Second", "Minute", "Hour":
		return true
	}
	return false
}

// calleeLabel renders the call target for diagnostics.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	default:
		return "call"
	}
}

// Paper Section 4 round-number taxonomy. Jiffy arithmetic uses the Linux
// personality's HZ=250 tick (4 ms), the configuration the study traced.
const lintJiffy = 4 * sim.Millisecond

// classifyTimeout maps a duration onto the paper's taxonomy of human-chosen
// values. Order matters: the most specific (and most telling) class wins.
func classifyTimeout(d sim.Duration) string {
	if d < 0 {
		d = -d
	}
	switch {
	case isPowerOfTen(int64(d)):
		// 1 ms, 10 ms, ..., 1 s, 10 s, 100 s: a digit-1-and-zeros value in
		// *some* decimal unit — the paper's dominant pattern.
		return "power-of-ten"
	case d%sim.Minute == 0:
		return "round-minutes"
	case d%sim.Second == 0:
		return "round-seconds"
	case d%lintJiffy == 0 && isPowerOfTwo(int64(d/lintJiffy)):
		return "binary-jiffies"
	case d%lintJiffy == 0 && d <= 100*lintJiffy:
		return "small-jiffy-multiple"
	case d%sim.Millisecond == 0:
		return "round-millis"
	case d < sim.Millisecond:
		return "sub-jiffy"
	default:
		return "irregular"
	}
}

func isPowerOfTen(v int64) bool {
	if v <= 0 {
		return false
	}
	for v%10 == 0 {
		v /= 10
	}
	return v == 1
}

func isPowerOfTwo(v int64) bool { return v > 0 && v&(v-1) == 0 }

// checkRegistryProvenance requires every constant in a timeouts.go registry
// to carry a comment stating where its value comes from (Section 5.2's
// provenance proposal applied to our own configuration).
func checkRegistryProvenance(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if vs.Doc.Text() == "" && vs.Comment.Text() == "" && (len(gd.Specs) > 1 || gd.Doc.Text() == "") {
				for _, name := range vs.Names {
					pass.Reportf(name.Pos(),
						"registry constant %s has no provenance comment (why this value? where does it come from?)",
						name.Name)
				}
			}
		}
	}
}

// pathHasPrefix reports whether path is equal to or below any of the
// prefixes (entries ending in "/" match subtrees only).
func pathHasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
			continue
		}
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
