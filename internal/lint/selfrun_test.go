package lint_test

import (
	"strings"
	"testing"

	"timerstudy/internal/lint"
)

// TestSelfRunClean is the golden invariant: the repo lints itself clean.
// Every hard-coded sim.Duration lives in a provenance-annotated timeouts.go,
// no internal package reads the wall clock, no cancel result is silently
// dropped, and every large Exact spec carries a reasoned suppression. A
// failure here means a new finding slipped in — fix it or suppress it with
// a //lint:ignore line explaining why.
func TestSelfRunClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	ds := lint.Run(loader, pkgs, lint.Analyzers())
	if len(ds) != 0 {
		var b strings.Builder
		for _, d := range ds {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		t.Fatalf("timerlint found %d finding(s) in the repo:\n%s", len(ds), b.String())
	}
}
