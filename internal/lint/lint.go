// Package lint is a from-scratch static-analysis framework on the standard
// library's go/ast, go/parser and go/types — no external dependencies — that
// turns the paper's measurement taxonomy into machine-checked invariants over
// this repository itself.
//
// The paper's central Section 4 result is that timeout values are
// overwhelmingly fixed, human-chosen round numbers with no recorded
// provenance. A reproduction of that study accumulating its own unexplained
// `3*sim.Second` literals would be self-refuting, so the lint pass polices
// four domain invariants:
//
//   - magictimeout: hard-coded sim.Duration values used as timeout arguments
//     must live in a provenance-annotated constants registry, and each
//     finding is classified into the paper's round-number taxonomy
//     (power-of-ten, round seconds, binary jiffies, ...).
//   - wallclock: internal packages must not touch the host clock
//     (time.Now/Sleep/After) or the unseeded math/rand global source — the
//     whole reproduction depends on deterministic virtual time.
//   - uncheckedcancel: the boolean result of Cancel/Del/Stop-shaped calls
//     distinguishes canceled-while-pending from already-expired (the
//     Section 3 lifecycle distinction) and must not be silently dropped.
//   - exactspec: core.Exact with a large constant delay forgoes the
//     Section 5.3 coalescing windows; Window/AnyTimeAfter (or a reasoned
//     suppression) is required.
//
// Diagnostics are position-accurate and can be suppressed at the offending
// line (or the line above it) with:
//
//	//lint:ignore <analyzer> <reason>
//
// where <analyzer> is one of the analyzer names (or "all") and <reason> is a
// mandatory human explanation — an unsuppressed echo of the paper's
// provenance proposal (Section 5.2).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding, positioned at a token in a source file.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Category is an analyzer-specific classification; for magictimeout it
	// is the paper's round-number taxonomy class.
	Category string `json:"category,omitempty"`
	// Pos locates the finding.
	Pos token.Position `json:"-"`
	// File/Line/Col are the JSON-friendly projection of Pos.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message states the violation and the expected fix.
	Message string `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	msg := d.Message
	if d.Category != "" {
		msg = fmt.Sprintf("%s [%s]", msg, d.Category)
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, msg)
}

// Analyzer is one lint pass: a name (used in diagnostics and suppression
// directives), a one-paragraph doc, and a Run function applied per package.
type Analyzer struct {
	// Name is the analyzer identifier ("magictimeout", ...).
	Name string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass)
}

// Pass is the per-(analyzer, package) execution context handed to Run.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps positions; shared across all packages of a load.
	Fset *token.FileSet
	// Pkg is the loaded, type-checked package under inspection.
	Pkg *Package
	// report collects diagnostics (suppression is applied by the runner).
	report func(Diagnostic)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report("", pos, format, args...)
}

// Report records a finding with an explicit category.
func (p *Pass) Report(category string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Category: category,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression in the package under inspection.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
	reason   string
	line     int
	used     bool
}

// suppressions indexes a package's ignore directives by file.
type suppressions struct {
	byFile map[string][]*ignoreDirective
	// malformed collects directives missing an analyzer or reason; they are
	// themselves reported, so a typo cannot silently disable a check.
	malformed []Diagnostic
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions scans a package's comments for ignore directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byFile: map[string][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.SplitN(rest, " ", 2)
				if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				s.byFile[pos.Filename] = append(s.byFile[pos.Filename], &ignoreDirective{
					analyzer: fields[0],
					reason:   strings.TrimSpace(fields[1]),
					line:     pos.Line,
				})
			}
		}
	}
	return s
}

// suppresses reports whether d is covered by a directive on its own line or
// the line directly above, for the matching analyzer (or "all").
func (s *suppressions) suppresses(d Diagnostic) bool {
	for _, dir := range s.byFile[d.File] {
		if dir.line != d.Line && dir.line != d.Line-1 {
			continue
		}
		if dir.analyzer == "all" || dir.analyzer == d.Analyzer {
			dir.used = true
			return true
		}
	}
	return false
}
