// Package lint is a from-scratch static-analysis framework on the standard
// library's go/ast, go/parser and go/types — no external dependencies — that
// turns the paper's measurement taxonomy into machine-checked invariants over
// this repository itself.
//
// The paper's central Section 4 result is that timeout values are
// overwhelmingly fixed, human-chosen round numbers with no recorded
// provenance. A reproduction of that study accumulating its own unexplained
// `3*sim.Second` literals would be self-refuting, so the lint pass polices
// four domain invariants:
//
//   - magictimeout: hard-coded sim.Duration values used as timeout arguments
//     must live in a provenance-annotated constants registry, and each
//     finding is classified into the paper's round-number taxonomy
//     (power-of-ten, round seconds, binary jiffies, ...).
//   - wallclock: internal packages must not touch the host clock
//     (time.Now/Sleep/After) or the unseeded math/rand global source — the
//     whole reproduction depends on deterministic virtual time.
//   - uncheckedcancel: the boolean result of Cancel/Del/Stop-shaped calls
//     distinguishes canceled-while-pending from already-expired (the
//     Section 3 lifecycle distinction) and must not be silently dropped.
//   - exactspec: core.Exact with a large constant delay forgoes the
//     Section 5.3 coalescing windows; Window/AnyTimeAfter (or a reasoned
//     suppression) is required.
//
// Since PR 2-4 the repo has grown invariants of its own — byte-identical
// traces at any worker count, and an allocation-free hot path — so the suite
// also polices the determinism and performance properties the parallel fleet
// engine will be written under:
//
//   - mapiter: no order-sensitive output (trace records, shared-slice
//     appends, rendered text) from inside a `range` over a map, unless the
//     collected slice is visibly sorted afterwards — the exact bug class PR 2
//     fixed by hand in the value-histogram ordering.
//   - goroutinecapture: `go` statements and worker-pool closures must not
//     capture and mutate shared state (engines, trace buffers, pipelines,
//     plain maps/slices) without a mutex, channel or per-worker-index seam.
//   - allocfree: functions annotated //lint:allocfree are checked against
//     the compiler's own escape analysis (`go build -gcflags=-m=2`), so an
//     alloc regression is reported at the offending line instead of as an
//     opaque AllocsPerRun failure.
//
// Diagnostics are position-accurate and can be suppressed at the offending
// line (or the line above it — a directive above a multi-line statement
// covers the whole statement) with:
//
//	//lint:ignore <analyzer> <reason>
//
// where <analyzer> is one of the analyzer names (or "all") and <reason> is a
// mandatory human explanation — an unsuppressed echo of the paper's
// provenance proposal (Section 5.2). A whole file opts out of one analyzer
// with:
//
//	//lint:file-ignore <analyzer> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Severity grades a finding. Errors are invariant violations that gate CI;
// warnings are hazards worth a human look that do not fail the build on
// their own (the text and GitHub output formats carry the distinction).
type Severity string

const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Diagnostic is one finding, positioned at a token in a source file.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Category is an analyzer-specific classification; for magictimeout it
	// is the paper's round-number taxonomy class.
	Category string `json:"category,omitempty"`
	// Severity grades the finding; empty means SeverityError.
	Severity Severity `json:"severity,omitempty"`
	// Pos locates the finding.
	Pos token.Position `json:"-"`
	// File/Line/Col are the JSON-friendly projection of Pos.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message states the violation and the expected fix.
	Message string `json:"message"`
}

// severity returns the effective severity (the zero value means error).
func (d Diagnostic) severity() Severity {
	if d.Severity == "" {
		return SeverityError
	}
	return d.Severity
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	msg := d.Message
	if d.Category != "" {
		msg = fmt.Sprintf("%s [%s]", msg, d.Category)
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, msg)
}

// Analyzer is one lint pass: a name (used in diagnostics and suppression
// directives), a one-paragraph doc, and a Run function applied per package.
type Analyzer struct {
	// Name is the analyzer identifier ("magictimeout", ...).
	Name string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Severity is the default grade of this analyzer's findings; the zero
	// value means SeverityError.
	Severity Severity
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass)
}

// Pass is the per-(analyzer, package) execution context handed to Run.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps positions; shared across all packages of a load.
	Fset *token.FileSet
	// Pkg is the loaded, type-checked package under inspection.
	Pkg *Package
	// report collects diagnostics (suppression is applied by the runner).
	report func(Diagnostic)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report("", pos, format, args...)
}

// Report records a finding with an explicit category.
func (p *Pass) Report(category string, pos token.Pos, format string, args ...any) {
	p.ReportSeverity(p.Analyzer.Severity, category, pos, format, args...)
}

// ReportSeverity records a finding with an explicit severity override
// (empty means the analyzer's default).
func (p *Pass) ReportSeverity(sev Severity, category string, pos token.Pos, format string, args ...any) {
	p.ReportPosition(sev, category, p.Fset.Position(pos), format, args...)
}

// ReportPosition records a finding at an already-resolved file position.
// Analyzers whose evidence comes from outside the parsed AST (allocfree maps
// compiler escape diagnostics back to source) use this entry point.
func (p *Pass) ReportPosition(sev Severity, category string, position token.Position, format string, args ...any) {
	if sev == "" {
		sev = p.Analyzer.Severity
	}
	if sev == "" {
		sev = SeverityError
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Category: category,
		Severity: sev,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression in the package under inspection.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
	reason   string
	line     int
	// endLine is the last line the directive covers: the end of the
	// statement (or const spec) starting on the directive's line or the
	// line below, so one directive above a wrapped multi-line call covers
	// findings anywhere inside the call.
	endLine int
	// wholeFile marks a //lint:file-ignore directive.
	wholeFile bool
	used      bool
}

// suppressions indexes a package's ignore directives by file.
type suppressions struct {
	byFile map[string][]*ignoreDirective
	// malformed collects directives missing an analyzer or reason; they are
	// themselves reported, so a typo cannot silently disable a check.
	malformed []Diagnostic
}

const (
	ignorePrefix     = "//lint:ignore "
	fileIgnorePrefix = "//lint:file-ignore "
)

// collectSuppressions scans a package's comments for ignore directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byFile: map[string][]*ignoreDirective{}}
	for _, f := range files {
		extents := stmtExtents(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				var rest string
				wholeFile := false
				switch {
				case strings.HasPrefix(c.Text, ignorePrefix):
					rest = strings.TrimPrefix(c.Text, ignorePrefix)
				case strings.HasPrefix(c.Text, fileIgnorePrefix):
					rest = strings.TrimPrefix(c.Text, fileIgnorePrefix)
					wholeFile = true
				case c.Text == strings.TrimSpace(ignorePrefix):
					rest = "" // directive with no payload at all: malformed
				case c.Text == strings.TrimSpace(fileIgnorePrefix):
					rest = ""
					wholeFile = true
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				kind := "//lint:ignore"
				if wholeFile {
					kind = "//lint:file-ignore"
				}
				fields := strings.SplitN(strings.TrimSpace(rest), " ", 2)
				if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "lint",
						Severity: SeverityError,
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  fmt.Sprintf("malformed %s directive: want \"%s <analyzer> <reason>\"", kind, kind),
					})
					continue
				}
				dir := &ignoreDirective{
					analyzer:  fields[0],
					reason:    strings.TrimSpace(fields[1]),
					line:      pos.Line,
					endLine:   pos.Line + 1,
					wholeFile: wholeFile,
				}
				// The covered statement starts either on the directive's own
				// line (trailing comment) or on the line below; extend the
				// window to that statement's last line.
				if end, ok := extents[pos.Line]; ok && end > dir.endLine {
					dir.endLine = end
				}
				if end, ok := extents[pos.Line+1]; ok && end > dir.endLine {
					dir.endLine = end
				}
				s.byFile[pos.Filename] = append(s.byFile[pos.Filename], dir)
			}
		}
	}
	return s
}

// stmtExtents maps the starting line of every simple statement (and const/var
// spec) of f to the largest ending line among nodes starting there. Block
// statements (if/for/switch bodies) are deliberately excluded: a directive
// above an `if` should not silence the whole block.
func stmtExtents(fset *token.FileSet, f *ast.File) map[int]int {
	extents := map[int]int{}
	record := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > extents[start] {
			extents[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.DeclStmt,
			*ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
			*ast.ValueSpec:
			record(n)
		}
		return true
	})
	return extents
}

// suppresses reports whether d is covered by a matching directive: a
// file-ignore anywhere in the file, or a line directive whose window (its
// own line through the end of the statement below it) contains d.
func (s *suppressions) suppresses(d Diagnostic) bool {
	for _, dir := range s.byFile[d.File] {
		if !dir.wholeFile && (d.Line < dir.line || d.Line > dir.endLine) {
			continue
		}
		if dir.analyzer == "all" || dir.analyzer == d.Analyzer {
			dir.used = true
			return true
		}
	}
	return false
}
