package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// rawSinkExempt is the one package allowed to traffic in *trace.Buffer in
// its exported API: the trace package itself, where Buffer is defined and
// is one implementation of Sink/Source among several.
const rawSinkExempt = "timerstudy/internal/trace"

// RawSink forbids *trace.Buffer in exported signatures outside
// internal/trace: an exported function that demands the concrete in-memory
// buffer cannot consume a spilled v2 stream or feed an external sink, which
// silently re-couples the caller to O(records) memory. Write sides must
// accept trace.Sink, read sides trace.Source; Buffer satisfies both, so
// widening a signature never breaks an in-memory caller.
var RawSink = &Analyzer{
	Name: "rawsink",
	Doc: "exported functions outside internal/trace must accept trace.Sink or " +
		"trace.Source, not the concrete *trace.Buffer",
	Run: runRawSink,
}

func runRawSink(pass *Pass) {
	if pass.Pkg.Path == rawSinkExempt || !strings.HasPrefix(pass.Pkg.Path, "timerstudy/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			// Methods on unexported receivers are not part of the API.
			if fd.Recv != nil && !exportedRecv(fd.Recv) {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if !isTraceBufferPtr(pass.TypeOf(field.Type)) {
					continue
				}
				kind := "trace.Sink (write side) or trace.Source (read side)"
				pass.Reportf(field.Type.Pos(),
					"exported %s takes *trace.Buffer; accept %s so callers can stream instead of buffering",
					fd.Name.Name, kind)
			}
		}
	}
}

// exportedRecv reports whether a receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// isTraceBufferPtr reports whether t is *trace.Buffer (from internal/trace).
func isTraceBufferPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Buffer" && obj.Pkg() != nil && obj.Pkg().Path() == rawSinkExempt
}
