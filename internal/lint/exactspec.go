package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"timerstudy/internal/sim"
)

// corePkgPath declares Exact/Window/AnyTimeAfter.
const corePkgPath = "timerstudy/internal/core"

// exactSpecThreshold is the delay above which Exact forgoes meaningful
// coalescing. The paper's Section 5.3 evaluation shows expirations cluster
// when second-scale timeouts get even modest slack; below one second the
// firing-accuracy cost of a window starts to matter, so short Exact specs
// pass.
const exactSpecThreshold = sim.Duration(1 * sim.Second)

// ExactSpec flags core.Exact calls with a large compile-time-constant delay:
// an exact deadline at that scale defeats the Section 5.3 coalescing
// redesign. Use Window/AnyTimeAfter, or suppress with the reason the
// deadline is genuinely rigid.
var ExactSpec = &Analyzer{
	Name: "exactspec",
	Doc: "core.Exact with a second-scale constant delay defeats timer " +
		"coalescing; use Window or AnyTimeAfter (paper Section 5.3)",
	Run: runExactSpec,
}

func runExactSpec(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !isCoreExact(pass, call.Fun) {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil {
				return true // runtime-computed deadlines are a policy decision
			}
			v, ok := constant.Int64Val(constant.ToInt(tv.Value))
			if !ok || sim.Duration(v) < exactSpecThreshold {
				return true
			}
			pass.Reportf(call.Pos(),
				"Exact(%v) forbids coalescing at a scale where slack is nearly free; use Window(%v, slack) or AnyTimeAfter(%v)",
				sim.Duration(v), sim.Duration(v), sim.Duration(v))
			return true
		})
	}
}

// isCoreExact reports whether fun resolves to the Exact function declared in
// internal/core (matched by object, so aliases and dot-imports still hit).
func isCoreExact(pass *Pass, fun ast.Expr) bool {
	var id *ast.Ident
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == "Exact" && fn.Pkg() != nil && fn.Pkg().Path() == corePkgPath
}
