package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// tracePkgPath declares Record/Sink, the types whose appearance inside a map
// iteration marks order-sensitive emission.
const tracePkgPath = "timerstudy/internal/trace"

// MapIter flags order-sensitive work performed while ranging over a map:
// Go randomizes map iteration order per run, so anything emitted from the
// loop body — trace records, appends to a slice that is never sorted,
// rendered text — differs between byte-identical inputs. This is exactly the
// bug class behind the PR 2 value-histogram nondeterminism (jiffy/user bins
// tying on Value were emitted in map order), caught at review time instead
// of by golden-test drift.
//
// The analyzer recognizes the two deterministic idioms and stays quiet for
// them: collecting into a slice that is visibly sorted after the loop
// (sort.* / slices.Sort* on the same variable), and pure order-insensitive
// accumulation (map/counter writes, integer sums).
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "no trace emission, unsorted shared-slice append, or output while " +
		"ranging over a map; iteration order is randomized per run",
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	if !strings.HasPrefix(pass.Pkg.Path, "timerstudy/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, f, rs)
			return true
		})
	}
}

// checkMapRangeBody walks one map-range body for order-sensitive effects.
func checkMapRangeBody(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges report on their own; don't double-visit.
			if n != rs {
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, file, rs, n)
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, file, rs, n)
		}
		return true
	})
}

// checkMapRangeCall flags calls that emit ordered output: anything taking a
// trace.Record (Sink.Log and friends), fmt printing to a stream, and direct
// Write/WriteString-style sinks.
func checkMapRangeCall(pass *Pass, file *ast.File, rs *ast.RangeStmt, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if t := pass.TypeOf(arg); t != nil && isTraceRecord(t) {
			pass.Report("emit", call.Pos(),
				"trace record emitted while ranging over a map: record order would differ run to run; iterate sorted keys instead")
			return
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			if obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Print") {
				pass.Report("output", call.Pos(),
					"fmt.%s inside a range over a map: output line order is randomized per run; iterate sorted keys instead", obj.Name())
				return
			}
			if obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") {
				pass.Report("output", call.Pos(),
					"fmt.%s inside a range over a map: output line order is randomized per run; iterate sorted keys instead", obj.Name())
				return
			}
		}
		switch fun.Sel.Name {
		case "WriteString", "WriteByte", "WriteRune", "Write":
			// A writer method: only order-sensitive if the writer outlives
			// the loop (an io.Writer, strings.Builder, bytes.Buffer, ...);
			// a writer born inside the iteration cannot observe order.
			m, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
			if !ok || m.Type().(*types.Signature).Recv() == nil {
				return
			}
			if root, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
				if v, ok := pass.Pkg.Info.Uses[root].(*types.Var); ok &&
					v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
					return
				}
			}
			pass.Report("output", call.Pos(),
				"%s while ranging over a map: emitted byte order is randomized per run; iterate sorted keys instead", fun.Sel.Name)
		}
	}
}

// checkMapRangeAppend flags appends from a map-range body into a slice
// declared outside the loop, unless that slice is visibly sorted after the
// loop in the same function.
func checkMapRangeAppend(pass *Pass, file *ast.File, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Pkg.Info.Uses[target]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[target]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		// Only appends to slices declared OUTSIDE the loop leak iteration
		// order; a loop-local slice dies with the iteration.
		if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
			continue
		}
		if sortedAfter(pass, file, rs, v) {
			continue
		}
		pass.Report("append", as.Pos(),
			"append to %q while ranging over a map leaks iteration order; sort %q after the loop (or range over sorted keys)",
			target.Name, target.Name)
	}
}

// sortedAfter reports whether v is passed to a sort.* or slices.* call after
// the range statement, anywhere in the enclosing file — the "visibly sorted
// first" escape hatch for the collect-keys-then-sort idiom.
func sortedAfter(pass *Pass, file *ast.File, rs *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isTraceRecord reports whether t is (an alias of) trace.Record.
func isTraceRecord(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Record" && obj.Pkg() != nil && obj.Pkg().Path() == tracePkgPath
}
