package workloads

import (
	"testing"

	"timerstudy/internal/sim"
)

// TestQueueKindsByteIdenticalTraces is the engine-level half of the golden
// determinism contract: for all nine evaluation workloads, a heap-backed and
// a wheel-backed engine must produce byte-identical traces and identical
// wakeup accounting. Any divergence means one queue is not dequeuing in
// strict (when, seq) order.
func TestQueueKindsByteIdenticalTraces(t *testing.T) {
	base := Config{Seed: 7, Duration: 20 * sim.Second}
	heapCfg, wheelCfg := base, base
	heapCfg.Queue = sim.QueueHeap
	wheelCfg.Queue = sim.QueueWheel
	heapRes := RunAll(EvaluationSpecs(heapCfg), 0)
	wheelRes := RunAll(EvaluationSpecs(wheelCfg), 0)
	if len(heapRes) != len(wheelRes) {
		t.Fatalf("result counts differ: %d vs %d", len(heapRes), len(wheelRes))
	}
	for i := range heapRes {
		h, w := heapRes[i], wheelRes[i]
		if h.Name != w.Name || h.OS != w.OS {
			t.Fatalf("result %d: order diverged (%s/%s vs %s/%s)", i, h.OS, h.Name, w.OS, w.Name)
		}
		if h.Trace.Len() != w.Trace.Len() {
			t.Fatalf("%s/%s: record counts differ: heap %d, wheel %d",
				h.OS, h.Name, h.Trace.Len(), w.Trace.Len())
		}
		wr := w.Trace.Records()
		for j, r := range h.Trace.Records() {
			if r != wr[j] {
				t.Fatalf("%s/%s: record %d differs: heap %+v, wheel %+v",
					h.OS, h.Name, j, r, wr[j])
			}
		}
		if h.Stats != w.Stats {
			t.Fatalf("%s/%s: stats differ: heap %+v, wheel %+v", h.OS, h.Name, h.Stats, w.Stats)
		}
	}
}
