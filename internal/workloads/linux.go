package workloads

import (
	"math/rand"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/kernel"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// linuxSystem is a booted Debian-ish box: kernel housekeeping timers, the
// network stack with ARP, LAN background chatter, and the stock daemons of
// the paper's idle description (syslogd, inetd, atd, cron, portmapper,
// gettys).
type linuxSystem struct {
	cfg   Config
	eng   *sim.Engine
	sink  trace.Sink
	tr    *trace.Buffer // nil when cfg.Sink streams the records away
	l     *kernel.Linux
	net   *netsim.Network
	stack *netsim.Stack
	rng   *rand.Rand
	kit   *HostKit
}

func newLinuxSystem(cfg Config) *linuxSystem {
	eng := cfg.newEngine()
	sink, buf := cfg.traceSink()
	l := kernel.NewLinux(eng, sink)
	sys := &linuxSystem{cfg: cfg, eng: eng, sink: sink, tr: buf, l: l, rng: eng.Rand()}
	sys.kit = &HostKit{Eng: eng, L: l, Rng: sys.rng}
	sys.net = netsim.NewNetwork(eng)
	sys.stack = netsim.NewStack(sys.net, "testbox", &netsim.LinuxFacility{Base: l.Base()})
	sys.stack.KeepaliveEnabled = true
	sys.kit.BootKernelDaemons()
	sys.kit.BootUserDaemons()
	sys.bootLAN()
	return sys
}

// The modeling idioms below live in HostKit (hostparts.go) so the fleet's
// per-host models share them; linuxSystem keeps its historical method names
// as delegates.

func (s *linuxSystem) exp(mean sim.Duration) sim.Duration       { return s.kit.Exp(mean) }
func (s *linuxSystem) uniform(lo, hi sim.Duration) sim.Duration { return s.kit.Uniform(lo, hi) }

func (s *linuxSystem) periodic(origin string, period sim.Duration, body func()) *jiffies.Timer {
	return s.kit.Periodic(origin, period, body)
}

func (s *linuxSystem) diskIO() { s.kit.DiskIO() }

func (s *linuxSystem) selectLoop(p *kernel.Process, timeout, activityMean sim.Duration) {
	s.kit.SelectLoop(p, timeout, activityMean)
}

// bootLAN attaches phantom LAN neighbours whose broadcast chatter keeps the
// ARP cache churning (the random 5 s cancels of Figure 8).
func (s *linuxSystem) bootLAN() {
	neighbours := []string{"lanhost1", "lanhost2", "lanhost3", "printer", "router"}
	for _, h := range neighbours {
		h := h
		s.net.Attach(h, func(netsim.Packet) {})
		var chatter func()
		chatter = func() {
			s.net.Broadcast(h, "arp-chatter")
			s.eng.After(s.exp(6*sim.Second), "lan:chatter", chatter)
		}
		s.eng.After(s.exp(6*sim.Second), "lan:chatter", chatter)
	}
	// Seed our neighbour entries by talking to the router once.
	s.eng.After(lanSeedDelay, "lan:seed", func() {
		s.stack.Connect("router", 7, func(c *netsim.Conn, err error) {
			if c != nil {
				c.Close()
			}
		})
	})
}

// startX starts the X server and window manager with their select
// countdowns: Xorg counts down from its 600 s screensaver deadline, icewm
// from a 60 s housekeeping deadline with a 1 s clock redraw generating
// activity for both.
func (s *linuxSystem) startX(xActivityMean sim.Duration) {
	xorg := s.l.NewProcess("Xorg")
	icewm := s.l.NewProcess("icewm")
	s.selectLoop(xorg, xorgScreensaverTimeout, xActivityMean)
	s.selectLoop(icewm, icewmHousekeepingTimeout, 4*xActivityMean)
}

// finish runs the engine for the configured duration and packages results.
func (s *linuxSystem) finish(name string) *Result {
	s.eng.Run(sim.Time(s.cfg.Duration))
	return &Result{
		Name: name, OS: "linux", Trace: s.tr, Counters: sinkCounters(s.sink),
		Duration: s.cfg.Duration, Stats: s.eng.Stats(),
	}
}

// newUntracedBase creates a jiffies base whose records go nowhere: the timer
// subsystem of a machine that participates in the experiment but is not the
// system under test (remote web hosts, the httperf load generator).
func newUntracedBase(s *linuxSystem) *jiffies.Base {
	return jiffies.NewBase(s.eng, trace.NewBuffer(0))
}

// remoteBase is shorthand used by the application workloads.
func (s *linuxSystem) remoteBase() *jiffies.Base { return newUntracedBase(s) }

// LinuxIdle is the paper's idle desktop: booted system, X and icewm running,
// network connected, nobody home.
func LinuxIdle(cfg Config) *Result {
	sys := newLinuxSystem(cfg)
	sys.startX(60 * sim.Millisecond)
	return sys.finish(Idle)
}
