package workloads

import (
	"math/rand"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/kernel"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// linuxSystem is a booted Debian-ish box: kernel housekeeping timers, the
// network stack with ARP, LAN background chatter, and the stock daemons of
// the paper's idle description (syslogd, inetd, atd, cron, portmapper,
// gettys).
type linuxSystem struct {
	cfg   Config
	eng   *sim.Engine
	sink  trace.Sink
	tr    *trace.Buffer // nil when cfg.Sink streams the records away
	l     *kernel.Linux
	net   *netsim.Network
	stack *netsim.Stack
	rng   *rand.Rand

	// Block-layer timer slabs: command and unplug timers live in request
	// structures that are recycled, so their trace identities recur — the
	// same reuse that keeps the paper's timer counts at ~100 per trace.
	idePool    []*jiffies.Timer
	unplugPool []*jiffies.Timer
}

func newLinuxSystem(cfg Config) *linuxSystem {
	eng := cfg.newEngine()
	sink, buf := cfg.traceSink()
	l := kernel.NewLinux(eng, sink)
	sys := &linuxSystem{cfg: cfg, eng: eng, sink: sink, tr: buf, l: l, rng: eng.Rand()}
	sys.net = netsim.NewNetwork(eng)
	sys.stack = netsim.NewStack(sys.net, "testbox", &netsim.LinuxFacility{Base: l.Base()})
	sys.stack.KeepaliveEnabled = true
	sys.bootKernelDaemons()
	sys.bootUserDaemons()
	sys.bootLAN()
	return sys
}

// exp returns an exponentially distributed delay with the given mean,
// bounded away from zero.
func (s *linuxSystem) exp(mean sim.Duration) sim.Duration {
	d := sim.Duration(s.rng.ExpFloat64() * float64(mean))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d
}

// uniform returns a delay in [lo, hi).
func (s *linuxSystem) uniform(lo, hi sim.Duration) sim.Duration {
	if hi <= lo {
		return lo
	}
	return lo + sim.Duration(s.rng.Int63n(int64(hi-lo)))
}

// periodic installs a self-re-arming kernel timer — the ClassPeriodic
// pattern (page-out timer, work queues). jitter adds call-site arming slack,
// reproducing the up-to-2 ms value jitter of Section 3.1.
func (s *linuxSystem) periodic(origin string, period sim.Duration, body func()) *jiffies.Timer {
	var t *jiffies.Timer
	t = s.l.KernelTimer(origin, func() {
		if body != nil {
			body()
		}
		s.l.Base().ModTimeout(t, period)
	})
	// First arming at a random phase.
	s.eng.After(s.uniform(0, period), origin+":phase", func() {
		s.l.Base().ModTimeout(t, period)
	})
	return t
}

// diskIO models one block-layer request: the 4 ms unplug timer (mostly
// expiring) and the 30 s IDE command timeout (canceled when the command
// completes) — Table 3's 0.004 s and 30 s rows. Timer structs come from
// per-purpose slabs and return there, as the kernel's request structures do.
func (s *linuxSystem) diskIO() {
	ide := s.popTimer(&s.idePool, "kernel/ide:command-timeout")
	done := false
	ide.SetCallback(func() { done = true }) // command timeout: request aborts
	s.l.Base().ModTimeout(ide, ideCommandTimeout)
	s.eng.After(s.uniform(2*sim.Millisecond, 12*sim.Millisecond), "ide:complete", func() {
		if !done {
			// Completion vs. timeout race is part of the modeled behavior.
			_ = s.l.Base().Del(ide)
		}
		s.idePool = append(s.idePool, ide)
	})

	unplug := s.popTimer(&s.unplugPool, "kernel/block:unplug")
	unplug.SetCallback(func() {
		s.unplugPool = append(s.unplugPool, unplug)
	})
	s.l.Base().ModTimeout(unplug, blockUnplugTimeout)
}

// popTimer takes a recycled timer from a slab, initializing a fresh one on
// first use.
func (s *linuxSystem) popTimer(pool *[]*jiffies.Timer, origin string) *jiffies.Timer {
	if n := len(*pool); n > 0 {
		t := (*pool)[n-1]
		*pool = (*pool)[:n-1]
		return t
	}
	return s.l.KernelTimer(origin, nil)
}

func (s *linuxSystem) bootKernelDaemons() {
	b := s.l.Base()
	// The Table 3 periodic family.
	s.periodic("kernel/workqueue:timer", workqueueTimerPeriod, nil)
	s.periodic("kernel/workqueue:delayed", workqueueDelayedPeriod, nil)
	s.periodic("kernel/hres:clocksource-watchdog", clocksourceWatchdogPeriod, nil)
	s.periodic("kernel/usb:hcd-poll", usbHcdPollPeriod, nil)
	s.periodic("kernel/e1000:watchdog", e1000WatchdogPeriod, nil)
	s.periodic("kernel/pktsched:qdisc", qdiscPeriod, nil)
	s.periodic("kernel/vm:vmstat-update", vmstatUpdatePeriod, nil)
	s.periodic("kernel/mm:slab-reap", slabReapPeriod, nil)
	// Dirty page write-back occasionally finds work and does disk I/O.
	s.periodic("kernel/mm:writeback", writebackInterval, func() {
		if s.rng.Intn(4) == 0 {
			s.diskIO()
		}
	})
	// Page-out timer.
	s.periodic("kernel/mm:page-out", pageOutInterval, nil)
	// Console blank: a long watchdog; no console input ever arrives in
	// these workloads, so it expires once (blanks) per 10 minutes of trace.
	var blank *jiffies.Timer
	blank = s.l.KernelTimer("kernel/console:blank", func() {
		b.ModTimeout(blank, consoleBlankTimeout)
	})
	b.ModTimeout(blank, consoleBlankTimeout)
}

func (s *linuxSystem) bootUserDaemons() {
	// init polls its children every 5 s (Table 3).
	s.selectLoop(s.l.NewProcess("init"), initPollTimeout, 0)
	// Stock daemons wake rarely on fixed human values.
	s.selectLoop(s.l.NewProcess("syslogd"), syslogdPollTimeout, 0)
	s.selectLoop(s.l.NewProcess("cron"), cronPollTimeout, 0)
	s.selectLoop(s.l.NewProcess("atd"), atdPollTimeout, 0)
	s.selectLoop(s.l.NewProcess("inetd"), inetdPollTimeout, 0)
	s.selectLoop(s.l.NewProcess("portmap"), portmapPollTimeout, 0)
}

// selectLoop runs a daemon's event loop: select with a constant timeout; if
// activityMean > 0, fd activity completes some selects early and the loop
// continues with the written-back remainder — the Figure 4 countdown idiom.
// With activityMean == 0 the select always expires (pure periodic daemon).
func (s *linuxSystem) selectLoop(p *kernel.Process, timeout sim.Duration, activityMean sim.Duration) {
	var issue func(to sim.Duration)
	var pending *kernel.Pending
	issue = func(to sim.Duration) {
		if to <= 0 {
			to = timeout
		}
		pending = p.Select(to, func(r kernel.SelectResult) {
			if r.TimedOut || r.Remaining == 0 {
				// Deadline reached: handle housekeeping, restart at the
				// programmed constant.
				issue(timeout)
				return
			}
			// fd activity: service it, re-issue with the remainder.
			issue(r.Remaining)
		})
	}
	issue(timeout)
	if activityMean > 0 {
		var activity func()
		activity = func() {
			pending.Complete()
			s.eng.After(s.exp(activityMean), p.Name+":activity", activity)
		}
		s.eng.After(s.exp(activityMean), p.Name+":activity", activity)
	}
}

// bootLAN attaches phantom LAN neighbours whose broadcast chatter keeps the
// ARP cache churning (the random 5 s cancels of Figure 8).
func (s *linuxSystem) bootLAN() {
	neighbours := []string{"lanhost1", "lanhost2", "lanhost3", "printer", "router"}
	for _, h := range neighbours {
		h := h
		s.net.Attach(h, func(netsim.Packet) {})
		var chatter func()
		chatter = func() {
			s.net.Broadcast(h, "arp-chatter")
			s.eng.After(s.exp(6*sim.Second), "lan:chatter", chatter)
		}
		s.eng.After(s.exp(6*sim.Second), "lan:chatter", chatter)
	}
	// Seed our neighbour entries by talking to the router once.
	s.eng.After(lanSeedDelay, "lan:seed", func() {
		s.stack.Connect("router", 7, func(c *netsim.Conn, err error) {
			if c != nil {
				c.Close()
			}
		})
	})
}

// startX starts the X server and window manager with their select
// countdowns: Xorg counts down from its 600 s screensaver deadline, icewm
// from a 60 s housekeeping deadline with a 1 s clock redraw generating
// activity for both.
func (s *linuxSystem) startX(xActivityMean sim.Duration) {
	xorg := s.l.NewProcess("Xorg")
	icewm := s.l.NewProcess("icewm")
	s.selectLoop(xorg, xorgScreensaverTimeout, xActivityMean)
	s.selectLoop(icewm, icewmHousekeepingTimeout, 4*xActivityMean)
}

// finish runs the engine for the configured duration and packages results.
func (s *linuxSystem) finish(name string) *Result {
	s.eng.Run(sim.Time(s.cfg.Duration))
	return &Result{
		Name: name, OS: "linux", Trace: s.tr, Counters: sinkCounters(s.sink),
		Duration: s.cfg.Duration, Stats: s.eng.Stats(),
	}
}

// newUntracedBase creates a jiffies base whose records go nowhere: the timer
// subsystem of a machine that participates in the experiment but is not the
// system under test (remote web hosts, the httperf load generator).
func newUntracedBase(s *linuxSystem) *jiffies.Base {
	return jiffies.NewBase(s.eng, trace.NewBuffer(0))
}

// remoteBase is shorthand used by the application workloads.
func (s *linuxSystem) remoteBase() *jiffies.Base { return newUntracedBase(s) }

// LinuxIdle is the paper's idle desktop: booted system, X and icewm running,
// network connected, nobody home.
func LinuxIdle(cfg Config) *Result {
	sys := newLinuxSystem(cfg)
	sys.startX(60 * sim.Millisecond)
	return sys.finish(Idle)
}
