package workloads

import (
	"fmt"
	"math/rand"

	"timerstudy/internal/ktimer"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// vistaSystem is a booted Vista Ultimate box: the NT timer machinery, the
// 26 background service processes of the paper's idle description, the
// network stack (no TCP keepalive, per the paper's observation), and LAN
// chatter.
type vistaSystem struct {
	cfg   Config
	eng   *sim.Engine
	sink  trace.Sink
	tr    *trace.Buffer // nil when cfg.Sink streams the records away
	k     *ktimer.Kernel
	net   *netsim.Network
	stack *netsim.Stack
	rng   *rand.Rand

	nextPID int32
}

func newVistaSystem(cfg Config) *vistaSystem {
	eng := cfg.newEngine()
	sink, buf := cfg.traceSink()
	sys := &vistaSystem{cfg: cfg, eng: eng, sink: sink, tr: buf, k: ktimer.NewKernel(eng, sink), rng: eng.Rand(), nextPID: 3}
	sys.net = netsim.NewNetwork(eng)
	sys.stack = netsim.NewStack(sys.net, "vistabox", &netsim.VistaFacility{Kernel: sys.k})
	sys.bootServices()
	sys.bootKernelDrivers()
	sys.bootLAN()
	return sys
}

func (s *vistaSystem) pid() int32 {
	s.nextPID += 4
	return s.nextPID
}

func (s *vistaSystem) exp(mean sim.Duration) sim.Duration {
	d := sim.Duration(s.rng.ExpFloat64() * float64(mean))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d
}

func (s *vistaSystem) uniform(lo, hi sim.Duration) sim.Duration {
	if hi <= lo {
		return lo
	}
	return lo + sim.Duration(s.rng.Int63n(int64(hi-lo)))
}

// waitLoop runs a service thread that waits on an event with a constant
// timeout in a loop. Most waits time out (polling); a fraction are
// satisfied by simulated activity — the expiry-dominated Vista behaviour of
// Table 2.
func (s *vistaSystem) waitLoop(th *ktimer.Thread, timeout sim.Duration, satisfyProb float64) {
	obj := ktimer.NewEvent()
	var loop func(ktimer.WaitResult)
	loop = func(ktimer.WaitResult) {
		obj.Reset()
		th.WaitFor(timeout, loop, obj)
		if satisfyProb > 0 && s.rng.Float64() < satisfyProb {
			s.eng.After(s.uniform(0, timeout), th.Name+":signal", func() {
				s.k.Signal(obj)
			})
		}
	}
	loop(ktimer.WaitTimeout)
}

// vistaIdleWaitValues are the Figure 7 idle/webserver constants background
// services poll at: round human values plus the clock-granularity oddities
// (0.1156 s = 100 ms + one 15.625 ms tick, 0.5156 s likewise).
var vistaIdleWaitValues = []sim.Duration{
	sim.Duration(115625 * int64(sim.Microsecond)), // 0.1156
	200 * sim.Millisecond,
	250 * sim.Millisecond,
	500 * sim.Millisecond,
	sim.Duration(515625 * int64(sim.Microsecond)), // 0.5156
	sim.Second,
	sim.Second,
	2 * sim.Second,
	2 * sim.Second,
	3 * sim.Second,
	3 * sim.Second,
}

// bootServices starts the 26 background processes of the idle Vista
// desktop. Each runs one or two wait-polling threads on a constant from the
// Figure 7 family, plus the occasional threadpool housekeeping timer.
func (s *vistaSystem) bootServices() {
	names := []string{
		"csrss.exe", "wininit.exe", "services.exe", "lsass.exe", "winlogon.exe",
		"svchost-1.exe", "svchost-2.exe", "svchost-3.exe", "svchost-4.exe", "svchost-5.exe",
		"svchost-6.exe", "svchost-7.exe", "svchost-8.exe", "svchost-9.exe", "svchost-10.exe",
		"svchost-11.exe", "svchost-12.exe", "spoolsv.exe", "SearchIndexer.exe", "audiodg.exe",
		"dwm.exe", "taskeng.exe", "wmpnetwk.exe", "SLsvc.exe", "sidebar.exe", "traysnd.exe",
	}
	for i, name := range names {
		pid := s.pid()
		th := s.k.NewThread(pid, name)
		v := vistaIdleWaitValues[(i*5)%len(vistaIdleWaitValues)]
		// csrss, the desktop compositor and the audio tray app poll fast —
		// the paper names them as the >2 timers/s sources on the idle box.
		if name == "csrss.exe" || name == "audiodg.exe" || name == "traysnd.exe" || name == "dwm.exe" {
			v = 400 * sim.Millisecond
		} else if v < sim.Second {
			// Most services poll at the slow end; the sub-second constants
			// appear through a minority of threads.
			if i%4 != 0 {
				v = vistaIdleWaitValues[5+(i%6)]
			}
		}
		s.waitLoop(th, v, 0.07)
		if i%2 == 0 {
			th2 := s.k.NewThread(pid, name+"!w2")
			s.waitLoop(th2, vistaIdleWaitValues[7+((i*3)%4)], 0.05)
		}
		// Housekeeping threadpool timer with a coalescing window.
		if i%3 == 0 {
			pool := s.k.NewPool(pid, name)
			tp := pool.NewTimer(name+"/housekeeping", func() {})
			tp.Set(s.uniform(5*sim.Second, 30*sim.Second), vistaHousekeepingPeriod, vistaHousekeepingWindow)
		}
		// NT API one-shot timers for deferred work (lazy handle closing):
		// the Vista "deferred" pattern of Section 4.1.1.
		if i%4 == 2 {
			s.deferredCloser(pid, name)
		}
	}
}

// deferredCloser models the lazy-close idiom of Section 4.1.1: a 5 s NT
// timer deferred (re-set) on every registry access, expiring after a quiet
// spell to close the handles, then restarting with the next access.
func (s *vistaSystem) deferredCloser(pid int32, name string) {
	origin := name + "/lazy-close"
	var t *ktimer.KTimer
	var access func()
	access = func() {
		if t == nil {
			t = s.k.NtSetTimer(pid, origin, lazyCloseTimeout, func() { t = nil })
		} else {
			// Defer: re-set the same handle's timer.
			s.k.SetTimerIn(t, lazyCloseTimeout, 0)
		}
		// Accesses cluster in bursts with quiet gaps longer than 5 s.
		var gap sim.Duration
		if s.rng.Float64() < 0.7 {
			gap = s.exp(2 * sim.Second)
		} else {
			gap = 6*sim.Second + s.exp(20*sim.Second)
		}
		s.eng.After(gap, origin, access)
	}
	s.eng.After(s.exp(5*sim.Second), origin, access)
}

// bootKernelDrivers models the NT kernel/driver timers: DPC-based one-shots
// re-armed on expiry (storage, NDIS, USB polling), giving the kernel line
// of Figure 1 its baseline.
func (s *vistaSystem) bootKernelDrivers() {
	drivers := []struct {
		origin string
		period sim.Duration
	}{
		{"system/ndis:poll", 100 * sim.Millisecond},
		{"system/storport:io-watchdog", 250 * sim.Millisecond},
		{"system/usbhub:poll", 125 * sim.Millisecond},
		{"system/hdaudio:dpc", 50 * sim.Millisecond},
		{"system/tcpip:wheel-tick", 100 * sim.Millisecond},
		{"system/ataport:watchdog", sim.Second},
		{"system/cng:entropy", 2 * sim.Second},
		{"system/mm:working-set", sim.Second},
	}
	for _, d := range drivers {
		d := d
		t := s.k.NewTimer(d.origin, 0, false, nil)
		var rearm func()
		rearm = func() { s.k.SetTimerIn(t, d.period, 0) }
		t.SetDPC(rearm)
		s.eng.After(s.uniform(0, d.period), d.origin+":phase", rearm)
	}
}

func (s *vistaSystem) bootLAN() {
	for _, h := range []string{"dc1", "fileserver", "printer", "router"} {
		h := h
		s.net.Attach(h, func(netsim.Packet) {})
		var chatter func()
		chatter = func() {
			s.net.Broadcast(h, "netbios-chatter")
			s.eng.After(s.exp(8*sim.Second), "lan:chatter", chatter)
		}
		s.eng.After(s.exp(8*sim.Second), "lan:chatter", chatter)
	}
}

func (s *vistaSystem) finish(name string) *Result {
	s.eng.Run(sim.Time(s.cfg.Duration))
	return &Result{
		Name: name, OS: "vista", Trace: s.tr, Counters: sinkCounters(s.sink),
		Duration: s.cfg.Duration, Stats: s.eng.Stats(),
	}
}

// VistaIdle is the idle Vista desktop: a logged-in console, no foreground
// applications, 26 background processes.
func VistaIdle(cfg Config) *Result {
	sys := newVistaSystem(cfg)
	return sys.finish(Idle)
}

// zeroWaitSpinner issues bursts of zero-timeout waits — the non-blocking
// polling that puts the 0 bar in Figure 7.
func (s *vistaSystem) zeroWaitSpinner(th *ktimer.Thread, burst int, mean sim.Duration) {
	var spin func()
	spin = func() {
		n := 1 + s.rng.Intn(burst)
		for i := 0; i < n; i++ {
			th.WaitFor(0, func(ktimer.WaitResult) {})
		}
		s.eng.After(s.exp(mean), th.Name+":spin", spin)
	}
	spin()
}

// shortWaitLoop polls with a sub-clock-granularity timeout: every wait is
// delivered at the next 15.6 ms interrupt, hundreds of percent late — the
// Vista Firefox pathology of Figures 8-10.
func (s *vistaSystem) shortWaitLoop(th *ktimer.Thread, timeout sim.Duration) {
	obj := ktimer.NewEvent()
	var loop func(ktimer.WaitResult)
	loop = func(ktimer.WaitResult) {
		obj.Reset()
		th.WaitFor(timeout, loop, obj)
	}
	loop(ktimer.WaitTimeout)
}

// VistaFirefox is the browser workload on Vista: the background system plus
// Firefox with Flash, spinning on zero and sub-millisecond waits, GUI
// WM_TIMERs, and afd selects for the network.
func VistaFirefox(cfg Config) *Result {
	sys := newVistaSystem(cfg)
	pid := sys.pid()
	// Event-loop threads with very short timeouts.
	for i, to := range []sim.Duration{sim.Millisecond, sim.Millisecond, 3 * sim.Millisecond, 10 * sim.Millisecond} {
		th := sys.k.NewThread(pid, fmt.Sprintf("firefox.exe!ev%d", i))
		sys.shortWaitLoop(th, to)
	}
	// The message pump polls aggressively while Flash animates.
	pump := sys.k.NewThread(pid, "firefox.exe!pump")
	sys.zeroWaitSpinner(pump, 18, 25*sim.Millisecond)
	// GUI timers: Flash frame timer and a 50 ms UI tick.
	q := sys.k.NewMessageQueue(pid, "firefox.exe")
	q.SetTimer(1, flashFrameTick, func() {})
	q.SetTimer(2, vistaUITick, func() {})
	// Network: afd selects guarding socket reads from the page's host.
	webHost := "myspace.com"
	remoteK := ktimer.NewKernel(sys.eng, trace.NewBuffer(0))
	srvStack := netsim.NewStack(sys.net, webHost, &netsim.VistaFacility{Kernel: remoteK})
	srvStack.Listen(80, func(c *netsim.Conn) {
		c.OnMessage = func(c *netsim.Conn, size int, _ any) {
			c.Send(2000+sys.rng.Intn(30000), "page", nil)
		}
	})
	sys.net.SetPath("vistabox", webHost, netsim.PathConfig{
		Latency: 20 * sim.Millisecond, Jitter: 10 * sim.Millisecond, Loss: 0.005,
	})
	var fetch func()
	fetch = func() {
		cancel := sys.k.AfdSelect(pid, "firefox.exe", fetchGuardTimeout, func(bool) {})
		sys.stack.Connect(webHost, 80, func(c *netsim.Conn, err error) {
			if err != nil {
				cancel()
				return
			}
			c.OnMessage = func(c *netsim.Conn, size int, _ any) {
				cancel()
				c.Close()
			}
			c.Send(500, "GET /", nil)
		})
		sys.eng.After(sys.exp(2*sim.Second), "firefox:fetch", fetch)
	}
	sys.eng.After(appStartDelay, "firefox:start", fetch)
	return sys.finish(Firefox)
}

// VistaSkype is the call workload on Vista: audio polling near the 20 ms
// frame cadence, the 115.6/515.6 ms oddities, and zero-wait spinning.
func VistaSkype(cfg Config) *Result {
	sys := newVistaSystem(cfg)
	pid := sys.pid()
	audio := sys.k.NewThread(pid, "skype.exe!audio")
	sys.shortWaitLoop(audio, voiceFrameInterval)
	ui := sys.k.NewThread(pid, "skype.exe!ui")
	sys.waitLoop(ui, skypeOddWaitShort, 0.3)
	ui2 := sys.k.NewThread(pid, "skype.exe!ui2")
	sys.waitLoop(ui2, skypeOddWaitLong, 0.2)
	spin := sys.k.NewThread(pid, "skype.exe!engine")
	sys.zeroWaitSpinner(spin, 8, 30*sim.Millisecond)
	// GUI blink/meter timers.
	q := sys.k.NewMessageQueue(pid, "skype.exe")
	q.SetTimer(1, skypeBlinkTick, func() {})
	q.SetTimer(2, skypeMeterTick, func() {})
	// Voice datagrams to the peer (no kernel TCP timers).
	peer := "skypepeer"
	sys.net.Attach(peer, func(netsim.Packet) {})
	sys.net.SetPath("vistabox", peer, netsim.PathConfig{
		Latency: 35 * sim.Millisecond, Jitter: 15 * sim.Millisecond, Loss: 0.01,
	})
	var stream func()
	stream = func() {
		sys.net.Send(netsim.Packet{From: "vistabox", To: peer, Size: 320, Payload: "frame"})
		sys.eng.After(voiceFrameInterval, "skype:frame", stream)
	}
	sys.eng.After(appStartDelay, "skype:start", stream)
	return sys.finish(Skype)
}

// VistaWebserver is the loaded Vista web server: the paper used a 100 Mb
// switch between server and client for this experiment. The Vista TCP stack
// allocates fresh KTIMERs per connection and arms no keepalive.
func VistaWebserver(cfg Config) *Result {
	sys := newVistaSystem(cfg)
	pid := sys.pid()
	// Worker threads poll for connections.
	for i := 0; i < 4; i++ {
		th := sys.k.NewThread(pid, fmt.Sprintf("httpd.exe!w%d", i))
		sys.waitLoop(th, httpdWorkerPoll, 0.4)
	}
	sys.stack.Listen(80, func(c *netsim.Conn) {
		// Per-connection guard via afd select, Windows style.
		cancel := sys.k.AfdSelect(pid, "httpd.exe", httpdConnWatchdog, func(timedOut bool) {
			if timedOut {
				c.Close()
			}
		})
		c.OnMessage = func(c *netsim.Conn, size int, _ any) {
			cancel()
			sys.eng.After(sys.uniform(sim.Millisecond, 15*sim.Millisecond), "httpd:handle", func() {
				c.Send(2000+sys.rng.Intn(14000), "response", nil)
			})
		}
	})
	// 100 Mb switch: ~10× the latency, ~1/10 the bandwidth of the Linux
	// experiment's gigabit LAN.
	clientK := ktimer.NewKernel(sys.eng, trace.NewBuffer(0))
	clientStack := netsim.NewStack(sys.net, "loadgen", &netsim.VistaFacility{Kernel: clientK})
	sys.net.SetPath("vistabox", "loadgen", netsim.PathConfig{
		Latency: 300 * sim.Microsecond, Jitter: 100 * sim.Microsecond,
	})
	sys.net.Bandwidth = 12 << 20
	total := int(int64(sys.cfg.Duration) * 30000 / int64(30*sim.Minute))
	if total < 1 {
		total = 1
	}
	h := &vistaHttperf{sys: sys, stack: clientStack, total: total, parallel: 10, stateTO: 5 * sim.Second}
	h.start()
	return sys.finish(Webserver)
}

type vistaHttperf struct {
	sys      *vistaSystem
	stack    *netsim.Stack
	total    int
	parallel int
	stateTO  sim.Duration
	issued   int
	active   int
}

func (h *vistaHttperf) start() {
	interval := h.sys.cfg.Duration / sim.Duration(h.total)
	var tick func()
	tick = func() {
		if h.issued >= h.total {
			return
		}
		if h.active < h.parallel {
			h.issued++
			h.active++
			h.request()
		}
		h.sys.eng.After(interval, "httperf:pace", tick)
	}
	h.sys.eng.After(interval, "httperf:pace", tick)
}

func (h *vistaHttperf) request() {
	sys := h.sys
	done := false
	finish := func() {
		if !done {
			done = true
			h.active--
		}
	}
	watchdog := sys.eng.After(h.stateTO, "httperf:timeout", finish)
	h.stack.Connect("vistabox", 80, func(c *netsim.Conn, err error) {
		if err != nil {
			finish()
			return
		}
		c.OnMessage = func(c *netsim.Conn, size int, _ any) {
			// Response vs. watchdog race is the modeled behavior.
			_ = sys.eng.Cancel(watchdog)
			c.Close()
			finish()
		}
		c.Send(200+sys.rng.Intn(300), "GET /", nil)
	})
}
