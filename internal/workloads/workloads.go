// Package workloads builds the traced systems of Section 3.5: an idle
// desktop, the Firefox web browser rendering a Flash-heavy page, a Skype
// call, and a loaded web server — each on both the Linux and the Vista
// personality — plus the busy Vista desktop (Outlook + browser) behind
// Figure 1.
//
// Every workload is a deterministic function of its seed. Application
// behaviour is modelled from the timer signatures the paper documents
// (Table 3, Figures 3-7): the models issue the same syscall/API streams the
// real programs issued, so the analysis pipeline sees the same shapes.
package workloads

import (
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// Config parameterizes a workload run.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Duration is the traced virtual time (the paper runs 30 minutes; the
	// desktop trace of Figure 1 runs 90 seconds).
	Duration sim.Duration
	// TraceCap bounds the in-memory trace; 0 means the paper's 512 MiB
	// relayfs equivalent.
	TraceCap int
	// Queue selects the engine's event-queue implementation (default
	// sim.QueueHeap). Traces are byte-identical across kinds; the choice
	// only affects run time.
	Queue sim.QueueKind
	// Sink, if non-nil, receives the trace records instead of an in-memory
	// buffer — e.g. a trace.StreamWriter spilling to disk during the run.
	// Result.Trace is then nil (the records were never stored); TraceCap is
	// ignored. Record bytes are identical either way: sinks intern origins
	// with the same ID assignment.
	Sink trace.Sink
}

// newEngine builds the workload's engine from the config.
func (c Config) newEngine() *sim.Engine {
	return sim.NewEngine(c.Seed, sim.WithEventQueue(c.Queue))
}

// Default returns the paper's 30-minute configuration.
func Default() Config {
	return Config{Seed: 1, Duration: 30 * sim.Minute}
}

func (c Config) traceCap() int {
	if c.TraceCap > 0 {
		return c.TraceCap
	}
	return trace.DefaultCapacity
}

// traceSink resolves the destination for the run's records: the configured
// external sink, or a fresh in-memory buffer. buf is nil exactly when the
// records are going elsewhere (Result.Trace will be nil too).
func (c Config) traceSink() (sink trace.Sink, buf *trace.Buffer) {
	if c.Sink != nil {
		return c.Sink, nil
	}
	buf = trace.NewBuffer(c.traceCap())
	return buf, buf
}

// sinkCounters reads the operation counters off a sink when it keeps them
// (Buffer and StreamWriter both do).
func sinkCounters(s trace.Sink) trace.Counters {
	if c, ok := s.(interface{ Counters() trace.Counters }); ok {
		return c.Counters()
	}
	return trace.Counters{}
}

// Result is a completed workload run.
type Result struct {
	// Name identifies the workload ("idle", "firefox", ...).
	Name string
	// OS is "linux" or "vista".
	OS string
	// Trace holds the recorded operations. It is nil when the run streamed
	// its records to an external Config.Sink; use Counters for the totals
	// and replay the sink's output for analysis.
	Trace *trace.Buffer
	// Counters are the sink-side operation totals, valid whether the records
	// were buffered or streamed away.
	Counters trace.Counters
	// Duration is the traced virtual time.
	Duration sim.Duration
	// Stats carries engine-level wakeup/idle accounting.
	Stats sim.Stats
}

// Workload names.
const (
	Idle      = "idle"
	Skype     = "skype"
	Firefox   = "firefox"
	Webserver = "webserver"
	Desktop   = "desktop"
)

// LinuxWorkloads lists the Table 1 columns in paper order.
func LinuxWorkloads() []string { return []string{Idle, Skype, Firefox, Webserver} }

// VistaWorkloads lists the Table 2 columns in paper order.
func VistaWorkloads() []string { return []string{Idle, Skype, Firefox, Webserver} }

// RunLinux runs a named Linux workload.
func RunLinux(name string, cfg Config) *Result {
	switch name {
	case Idle:
		return LinuxIdle(cfg)
	case Skype:
		return LinuxSkype(cfg)
	case Firefox:
		return LinuxFirefox(cfg)
	case Webserver:
		return LinuxWebserver(cfg)
	default:
		panic("workloads: unknown linux workload " + name)
	}
}

// RunVista runs a named Vista workload.
func RunVista(name string, cfg Config) *Result {
	switch name {
	case Idle:
		return VistaIdle(cfg)
	case Skype:
		return VistaSkype(cfg)
	case Firefox:
		return VistaFirefox(cfg)
	case Webserver:
		return VistaWebserver(cfg)
	case Desktop:
		return VistaDesktop(cfg)
	default:
		panic("workloads: unknown vista workload " + name)
	}
}
