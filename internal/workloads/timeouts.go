package workloads

import "timerstudy/internal/sim"

// This file is the package's timeout registry: every fixed duration a
// workload arms a timer with lives here, with the provenance the paper's
// Section 5.2 asks for. The magictimeout analyzer rejects timeout literals
// anywhere else in the package and requires a comment on every constant
// below. These values are measurements, not tuning knobs: each one was
// observed in the traces of the source study (tables and figures cited per
// constant), so changing one means modeling a different system.

// Linux kernel housekeeping (Table 3's periodic family).
const (
	// ideCommandTimeout: Table 3's 30 s IDE command abort, canceled on I/O completion.
	ideCommandTimeout = 30 * sim.Second
	// blockUnplugTimeout: Table 3's 0.004 s block-layer unplug timer (1 jiffy at HZ=250).
	blockUnplugTimeout = 4 * sim.Millisecond
	// workqueueTimerPeriod: kernel work-queue flush tick, 1 s in the traced kernel.
	workqueueTimerPeriod = sim.Second
	// workqueueDelayedPeriod: delayed-work variant of the work-queue tick, 2 s.
	workqueueDelayedPeriod = 2 * sim.Second
	// clocksourceWatchdogPeriod: hres clocksource sanity check, 0.5 s.
	clocksourceWatchdogPeriod = 500 * sim.Millisecond
	// usbHcdPollPeriod: USB host-controller root-hub poll, 248 ms (62 jiffies) in the traced kernel.
	usbHcdPollPeriod = 248 * sim.Millisecond
	// e1000WatchdogPeriod: e1000 NIC link watchdog, 2 s.
	e1000WatchdogPeriod = 2 * sim.Second
	// qdiscPeriod: packet-scheduler housekeeping, 5 s.
	qdiscPeriod = 5 * sim.Second
	// vmstatUpdatePeriod: per-CPU VM statistics fold, 1 s.
	vmstatUpdatePeriod = sim.Second
	// slabReapPeriod: slab-cache reaper, 2 s.
	slabReapPeriod = 2 * sim.Second
	// writebackInterval: dirty-page write-back kupdate tick, 5 s.
	writebackInterval = 5 * sim.Second
	// pageOutInterval: Table 3's 10 s page-out timer (ClassPeriodic example).
	pageOutInterval = 10 * sim.Second
	// consoleBlankTimeout: console blanking watchdog, 10 min in the traced kernel.
	consoleBlankTimeout = 600 * sim.Second
)

// Linux daemons and X session (the idle desktop of Section 4.1).
const (
	// initPollTimeout: init's 5 s child-poll select (Table 3).
	initPollTimeout = 5 * sim.Second
	// syslogdPollTimeout: syslogd's 30 s select, the paper's title constant.
	syslogdPollTimeout = 30 * sim.Second
	// cronPollTimeout: cron wakes every minute to scan crontabs.
	cronPollTimeout = 60 * sim.Second
	// atdPollTimeout: atd checks its job queue every minute.
	atdPollTimeout = 60 * sim.Second
	// inetdPollTimeout: inetd's 2 min housekeeping select.
	inetdPollTimeout = 120 * sim.Second
	// portmapPollTimeout: portmapper's 5 min select, the longest idle daemon constant.
	portmapPollTimeout = 300 * sim.Second
	// xorgScreensaverTimeout: Xorg's 600 s screensaver countdown (the Figure 4 countdown idiom).
	xorgScreensaverTimeout = 600 * sim.Second
	// icewmHousekeepingTimeout: icewm's 60 s housekeeping deadline, counted down by clock redraws.
	icewmHousekeepingTimeout = 60 * sim.Second
	// lanSeedDelay: one-shot delay before seeding the ARP cache via the router; value arbitrary, pre-trace.
	lanSeedDelay = sim.Second
)

// Linux applications (Firefox, Skype, Apache/httperf — Tables 1 and 3).
const (
	// firefoxPollShort: Firefox event-loop poll, 1 jiffy (Table 3's 0.004 s row).
	firefoxPollShort = 4 * sim.Millisecond
	// firefoxPollMid: Firefox event-loop poll, 2 jiffies (Table 3's 0.008 s row).
	firefoxPollMid = 8 * sim.Millisecond
	// firefoxPollLong: Firefox event-loop poll, 3 jiffies (Table 3's 0.012 s row).
	firefoxPollLong = 12 * sim.Millisecond
	// pageFetchMean: mean think time between page phone-home fetches; models the Flash+JS page.
	pageFetchMean = 2 * sim.Second
	// voiceFrameInterval: the 20 ms VoIP audio frame cadence both Skype traces center on.
	voiceFrameInterval = 20 * sim.Millisecond
	// appStartDelay: one-shot delay before an application's first network activity; pre-trace warmup.
	appStartDelay = sim.Second
	// skypeUIPollTimeout: Skype UI thread's 0.5 s select (Figure 6).
	skypeUIPollTimeout = 500 * sim.Millisecond
	// skypeUIPollOddTimeout: Skype's second UI constant, 0.4999 s — a distinct call site in the trace (Figure 6).
	skypeUIPollOddTimeout = 499900 * sim.Microsecond
	// skypeSignalDelay: one-shot delay before connecting to the supernode; pre-trace warmup.
	skypeSignalDelay = 2 * sim.Second
	// apacheSelectTimeout: Apache master event loop's 1 s select (Table 3 Timeout row).
	apacheSelectTimeout = sim.Second
	// journalCommitInterval: jbd's 5 s journal commit timer, mostly forced early (Figure 11).
	journalCommitInterval = 5 * sim.Second
	// apacheWorkerIdleKill: prefork worker self-kill watchdog, deferred 30 s per request (Figure 2).
	apacheWorkerIdleKill = 30 * sim.Second
	// apacheConnWatchdog: per-connection 15 s poll guard on the request path.
	apacheConnWatchdog = 15 * sim.Second
	// httperfStateTimeout: the load generator's --timeout 5 per-state watchdog from the paper's setup.
	httperfStateTimeout = 5 * sim.Second
)

// Vista desktop and applications (Figure 1, Section 4.1.1).
const (
	// browserPumpTimeout: IE message-pump wait, tens of sets per second on the Figure 1 desktop.
	browserPumpTimeout = 30 * sim.Millisecond
	// browserGUITick: IE GUI timer at 100 ms.
	browserGUITick = 100 * sim.Millisecond
	// outlookUpcallGuard: Outlook's 5 s per-upcall timeout assertion (Section 2.2.1's idiom).
	outlookUpcallGuard = 5 * sim.Second
	// outlookBurstGap: spacing of upcall batches during mail-sync bursts; sub-frame, keeps the burst at thousands/s.
	outlookBurstGap = 2 * sim.Millisecond
	// outlookHousekeepingTimeout: Outlook background thread's 250 ms wait loop.
	outlookHousekeepingTimeout = 250 * sim.Millisecond
	// vistaHousekeepingPeriod: service threadpool housekeeping period (Section 4.1.1's coalescable class).
	vistaHousekeepingPeriod = 10 * sim.Second
	// vistaHousekeepingWindow: tolerable-delay window passed with the period; Vista's coalescing API in action.
	vistaHousekeepingWindow = sim.Second
	// lazyCloseTimeout: the 5 s deferred lazy-handle-close NT timer of Section 4.1.1.
	lazyCloseTimeout = 5 * sim.Second
	// flashFrameTick: Flash frame GUI timer on Vista, 10 ms.
	flashFrameTick = 10 * sim.Millisecond
	// vistaUITick: Firefox's 50 ms UI tick GUI timer.
	vistaUITick = 50 * sim.Millisecond
	// fetchGuardTimeout: afd select guarding each page fetch, 2 s.
	fetchGuardTimeout = 2 * sim.Second
	// skypeOddWaitShort: Skype's 115.625 ms wait — an irregular value straight from the Vista trace.
	skypeOddWaitShort = 115625 * sim.Microsecond
	// skypeOddWaitLong: Skype's 515.625 ms companion oddity from the same trace.
	skypeOddWaitLong = 515625 * sim.Microsecond
	// skypeBlinkTick: Skype GUI blink timer, 100 ms.
	skypeBlinkTick = 100 * sim.Millisecond
	// skypeMeterTick: Skype level-meter GUI timer, 500 ms.
	skypeMeterTick = 500 * sim.Millisecond
	// httpdWorkerPoll: Vista web-server worker's 1 s connection poll.
	httpdWorkerPoll = sim.Second
	// httpdConnWatchdog: per-connection afd select guard, 15 s, matching the Linux experiment.
	httpdConnWatchdog = 15 * sim.Second
)

// Trace-length constants (not armed timeouts, but kept here for the same
// provenance discipline).
const (
	// DesktopTraceDuration: the Figure 1 busy-desktop trace runs 90 seconds
	// in the paper, regardless of the 30-minute length of the other traces.
	DesktopTraceDuration = 90 * sim.Second
)
