package workloads

import (
	"fmt"

	"timerstudy/internal/kernel"
	"timerstudy/internal/netsim"
	"timerstudy/internal/sim"
)

// pollCycler runs an application thread that repeatedly polls file
// descriptors with a constant short timeout, the dominant Firefox pattern
// (Table 3 rows at 0.004/0.008/0.012 s): fd activity cancels some polls at a
// uniformly distributed fraction of the timeout; the rest expire.
func (s *linuxSystem) pollCycler(p *kernel.Process, timeout sim.Duration, cancelProb float64, thinkMean sim.Duration) {
	th := p.NewThread()
	var cycle func()
	cycle = func() {
		w := th.Poll(timeout, func(kernel.SelectResult) {
			s.eng.After(s.exp(thinkMean), p.Name+":think", cycle)
		})
		if s.rng.Float64() < cancelProb {
			// Activity arrives somewhere within the timeout window, so
			// cancels spread evenly over 0-100 % (the Figure 10 cluster).
			s.eng.After(s.uniform(0, timeout), p.Name+":fd", w.Complete)
		}
	}
	cycle()
}

// flashLoop is the soft-real-time render loop of the Flash plugin: one very
// short poll per frame, value hopping between 1, 2 and 3 jiffies — the
// unclassifiable short timers of Section 4.1.1.
func (s *linuxSystem) flashLoop(p *kernel.Process) {
	th := p.NewThread()
	values := []sim.Duration{4 * sim.Millisecond, 8 * sim.Millisecond, 12 * sim.Millisecond}
	var frame func()
	frame = func() {
		to := values[s.rng.Intn(len(values))]
		w := th.Poll(to, func(kernel.SelectResult) {
			frame()
		})
		// Frame-ready events cancel most polls partway through.
		if s.rng.Float64() < 0.6 {
			s.eng.After(s.uniform(0, to), p.Name+":frame-ready", w.Complete)
		}
	}
	frame()
}

// fetchPage opens HTTP connections from the browser box to a web host and
// performs transfers, exercising the kernel TCP timers.
func (s *linuxSystem) fetchPage(server string, conns, requests int, every sim.Duration) {
	for i := 0; i < conns; i++ {
		i := i
		s.eng.After(s.uniform(0, sim.Second), "fetch:start", func() {
			s.stack.Connect(server, 80, func(c *netsim.Conn, err error) {
				if err != nil {
					return
				}
				c.OnMessage = func(*netsim.Conn, int, any) {}
				left := requests
				var next func()
				next = func() {
					if left == 0 {
						return
					}
					left--
					c.Send(400+s.rng.Intn(1200), fmt.Sprintf("GET /%d", i), func(error) {
						s.eng.After(s.exp(every), "fetch:next", next)
					})
				}
				next()
			})
		})
	}
}

// LinuxFirefox is the browser workload: the idle system plus Firefox
// rendering a Flash- and JavaScript-heavy page. Flash animation keeps the X
// server busy, so X's countdown cancels become frequent.
func LinuxFirefox(cfg Config) *Result {
	sys := newLinuxSystem(cfg)
	sys.startX(80 * sim.Millisecond) // animation traffic keeps X hot
	ff := sys.l.NewProcess("firefox")
	// Several event-loop threads polling fds at the three signature values.
	// Fd activity cancels most polls (Table 1: the Firefox trace cancels
	// far more than it expires).
	sys.pollCycler(ff, firefoxPollShort, 0.85, 3*sim.Millisecond)
	sys.pollCycler(ff, firefoxPollMid, 0.8, 5*sim.Millisecond)
	sys.pollCycler(ff, firefoxPollLong, 0.78, 6*sim.Millisecond)
	// Two Flash plugin instances animating.
	sys.flashLoop(ff)
	sys.flashLoop(ff)
	// The page phones home periodically (myspace.com with Flash+JS).
	webHost := "myspace.com"
	srvStack := netsim.NewStack(sys.net, webHost, &netsim.LinuxFacility{Base: sys.remoteBase()})
	srvStack.Listen(80, func(c *netsim.Conn) {
		c.OnMessage = func(c *netsim.Conn, size int, _ any) {
			c.Send(2000+sys.rng.Intn(30000), "page", nil)
		}
	})
	sys.net.SetPath("testbox", webHost, netsim.PathConfig{
		Latency: 20 * sim.Millisecond, Jitter: 10 * sim.Millisecond, Loss: 0.005,
	})
	sys.fetchPage(webHost, 4, 1<<30, pageFetchMean)
	return sys.finish(Firefox)
}

// LinuxSkype is the VoIP workload: a call in progress. The audio pipeline
// polls on short adaptive timeouts around the 20 ms frame cadence, the UI
// thread uses the 0.5 s / 0.4999 s constants, and the engine spins on
// non-blocking polls (the zero-timeout spike of Figure 6).
func LinuxSkype(cfg Config) *Result {
	sys := newLinuxSystem(cfg)
	sys.startX(800 * sim.Millisecond)
	sk := sys.l.NewProcess("skype")

	// Voice peer: frames flow as plain datagrams (no kernel TCP timers —
	// the paper's Skype trace is overwhelmingly user-side). The peer
	// streams one frame every 20 ms, jittered by the WAN path.
	peer := "skypepeer"
	sys.net.Attach(peer, func(netsim.Packet) {})
	sys.net.SetPath("testbox", peer, netsim.PathConfig{
		Latency: 35 * sim.Millisecond, Jitter: 15 * sim.Millisecond, Loss: 0.01,
	})
	var stream func()
	stream = func() {
		sys.net.Send(netsim.Packet{From: peer, To: "testbox", Size: 320, Payload: "frame"})
		sys.eng.After(voiceFrameInterval, "skypepeer:frame", stream)
	}
	sys.eng.After(appStartDelay, "skypepeer:start", stream)

	// The audio thread: after each frame, poll for the next with an
	// adaptive timeout tracking observed inter-arrival jitter — a genuine
	// control loop (rare in the traces) producing the sub-1 s adaptive
	// cluster of Figure 9. Arrivals cancel the poll; losses let it expire.
	jitterEst := 20 * sim.Millisecond
	lastArrival := sim.Time(0)
	audioTh := sk.NewThread()
	var pendingAudio *kernel.Pending
	var audio func()
	audio = func() {
		// Send our own frame out (fire and forget).
		sys.net.Send(netsim.Packet{From: "testbox", To: peer, Size: 320, Payload: "frame"})
		to := 20*sim.Millisecond + 2*jitterEst + sim.Duration(sys.rng.Int63n(int64(4*sim.Millisecond)))
		pendingAudio = audioTh.Poll(to, func(kernel.SelectResult) { audio() })
	}
	sys.stack.OnRaw = func(p netsim.Packet) {
		if p.Payload != "frame" {
			return
		}
		now := sys.eng.Now()
		if lastArrival != 0 {
			iat := now.Sub(lastArrival)
			dev := iat - 20*sim.Millisecond
			if dev < 0 {
				dev = -dev
			}
			jitterEst += (dev - jitterEst) / 8
			if jitterEst < sim.Millisecond {
				jitterEst = sim.Millisecond
			}
		}
		lastArrival = now
		pendingAudio.Complete()
	}
	sys.eng.After(appStartDelay, "skype:start", audio)

	// The UI thread: 0.5 s and 0.4999 s selects (two different call
	// sites, as the trace shows).
	sys.pollCycler(sk, skypeUIPollTimeout, 0.3, 50*sim.Millisecond)
	halfTh := sk.NewThread()
	var halfish func()
	halfish = func() {
		halfTh.Select(skypeUIPollOddTimeout, func(kernel.SelectResult) { halfish() })
	}
	halfish()

	// The engine's non-blocking polls: bursts of poll(0).
	var spin func()
	spin = func() {
		n := 1 + sys.rng.Intn(4)
		for i := 0; i < n; i++ {
			sk.Poll(0, func(kernel.SelectResult) {})
		}
		sys.eng.After(sys.exp(60*sim.Millisecond), "skype:spin", spin)
	}
	spin()

	// Signaling connection to a supernode: a long-lived TCP connection
	// with occasional keepalive-ish chatter (kernel socket timers).
	super := "supernode"
	superStack := netsim.NewStack(sys.net, super, &netsim.LinuxFacility{Base: sys.remoteBase()})
	superStack.Listen(443, func(c *netsim.Conn) {
		c.OnMessage = func(c *netsim.Conn, size int, _ any) { c.Send(80, "ok", nil) }
	})
	sys.net.SetPath("testbox", super, netsim.PathConfig{
		Latency: 50 * sim.Millisecond, Jitter: 30 * sim.Millisecond, Loss: 0.02,
	})
	sys.eng.After(skypeSignalDelay, "skype:signal", func() {
		sys.stack.Connect(super, 443, func(c *netsim.Conn, err error) {
			if err != nil {
				return
			}
			c.OnMessage = func(*netsim.Conn, int, any) {}
			var ping func()
			ping = func() {
				c.Send(120, "ping", nil)
				sys.eng.After(sys.exp(20*sim.Second), "skype:ping", ping)
			}
			ping()
		})
	})
	return sys.finish(Skype)
}

// LinuxWebserver is the loaded Apache box driven by an httperf client from
// another machine: 30000 requests, 10 concurrent, 5 s per-state timeouts on
// the client side. X is not running (as in the paper). Only the server
// machine is traced.
func LinuxWebserver(cfg Config) *Result {
	sys := newLinuxSystem(cfg)
	apache := sys.l.NewProcess("apache2")

	// Apache master event loop: 1 s select, partly canceled by accept
	// activity (Table 3 calls it a Timeout).
	sys.selectLoop(apache, apacheSelectTimeout, 3*sim.Second)

	// Journal commit: armed on dirty data, canceled 80-100 % in (forced
	// commit), re-armed by the next write — the Figure 11 cluster.
	journalDirty := false
	journal := sys.l.KernelTimer("kernel/jbd:commit", func() {
		journalDirty = false
		sys.diskIO()
	})
	logWrite := func() {
		if !journalDirty {
			journalDirty = true
			sys.l.Base().ModTimeout(journal, journalCommitInterval)
			// Most commits are forced early by fsync-ish activity.
			if sys.rng.Float64() < 0.8 {
				after := sys.uniform(4*sim.Second, 5*sim.Second)
				sys.eng.After(after, "jbd:force", func() {
					if journalDirty {
						journalDirty = false
						// Forced commit vs. timer expiry race is modeled.
						_ = sys.l.Base().Del(journal)
						sys.diskIO()
					}
				})
			}
		}
	}

	// The server socket: each request is handled by a prefork worker
	// (reused, so watchdog timer identities recur) that guards the
	// connection with Apache's 15 s poll watchdog.
	type worker struct {
		th *kernel.Thread
		// idle is the worker's self-kill watchdog, deferred by 30 s every
		// time the worker handles a request — the webserver watchdogs of
		// Figure 2 ("Apache uses watchdogs to timeout connections").
		idle *kernel.PosixTimer
	}
	var workers []*worker
	newWorker := func() *worker {
		w := &worker{th: apache.NewThread()}
		w.idle = apache.TimerCreate("worker-idle-watchdog", nil)
		return w
	}
	// Prefork: StartServers=10 workers exist (and arm their idle
	// watchdogs) from boot, like the stock Apache configuration.
	for i := 0; i < 10; i++ {
		w := newWorker()
		w.idle.Settime(apacheWorkerIdleKill, 0)
		workers = append(workers, w)
	}
	rr := 0
	getWorker := func() *worker {
		if n := len(workers); n > 0 {
			// Round-robin over the pool so every worker stays busy enough
			// to keep deferring its watchdog.
			rr++
			i := rr % n
			w := workers[i]
			workers = append(workers[:i], workers[i+1:]...)
			return w
		}
		return newWorker()
	}
	sys.stack.Listen(80, func(c *netsim.Conn) {
		w := getWorker()
		w.idle.Settime(apacheWorkerIdleKill, 0) // defer the self-kill watchdog
		guard := w.th.Poll(apacheConnWatchdog, func(r kernel.SelectResult) {
			workers = append(workers, w)
			if r.TimedOut {
				c.Close()
			}
		})
		c.OnMessage = func(c *netsim.Conn, size int, _ any) {
			guard.Complete()
			// Process and respond: think time plus a log write.
			sys.eng.After(sys.uniform(sim.Millisecond, 15*sim.Millisecond), "apache:handle", func() {
				logWrite()
				c.Send(2000+sys.rng.Intn(14000), "response", nil)
			})
		}
	})

	// httperf on a separate machine (its own untraced timer base): the
	// paper's 30000 requests over 30 minutes = 16.7 req/s, scaled to the
	// configured duration.
	total := int(int64(sys.cfg.Duration) * 30000 / int64(30*sim.Minute))
	if total < 1 {
		total = 1
	}
	client := newHttperf(sys, "loadgen", total, 10, httperfStateTimeout)
	client.start()
	return sys.finish(Webserver)
}

// httperf models the load generator: totalRequests spread over the trace,
// at most parallel outstanding, each connection with a 5 s per-state
// timeout, one request per connection.
type httperf struct {
	sys       *linuxSystem
	stack     *netsim.Stack
	total     int
	parallel  int
	stateTO   sim.Duration
	issued    int
	active    int
	interval  sim.Duration
	completed int
	timedOut  int
}

func newHttperf(sys *linuxSystem, host string, total, parallel int, stateTO sim.Duration) *httperf {
	h := &httperf{sys: sys, total: total, parallel: parallel, stateTO: stateTO}
	h.stack = netsim.NewStack(sys.net, host, &netsim.LinuxFacility{Base: newUntracedBase(sys)})
	h.interval = sys.cfg.Duration / sim.Duration(total)
	return h
}

func (h *httperf) start() {
	var tick func()
	tick = func() {
		if h.issued >= h.total {
			return
		}
		if h.active < h.parallel {
			h.issued++
			h.active++
			h.request()
		}
		h.sys.eng.After(h.interval, "httperf:pace", tick)
	}
	h.sys.eng.After(h.interval, "httperf:pace", tick)
}

func (h *httperf) request() {
	sys := h.sys
	done := false
	finish := func(ok bool) {
		if done {
			return
		}
		done = true
		h.active--
		if ok {
			h.completed++
		} else {
			h.timedOut++
		}
	}
	// Client-side 5 s state watchdog (untraced: it lives on the load
	// generator).
	watchdog := sys.eng.After(h.stateTO, "httperf:timeout", func() { finish(false) })
	h.stack.Connect("testbox", 80, func(c *netsim.Conn, err error) {
		if err != nil {
			finish(false)
			return
		}
		c.OnMessage = func(c *netsim.Conn, size int, _ any) {
			// Response vs. watchdog race is the modeled behavior.
			_ = sys.eng.Cancel(watchdog)
			c.Close()
			finish(true)
		}
		c.Send(200+sys.rng.Intn(300), "GET /", nil)
	})
}
