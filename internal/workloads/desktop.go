package workloads

import (
	"strings"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// VistaDesktop is the 90-second trace behind Figure 1: a typical desktop
// with Outlook and a web browser in the foreground. The kernel sets around
// a thousand timers per second, the browser tens, and Outlook about seventy
// — except during activity bursts, when its user-interface code wraps every
// upcall in a 5-second timeout assertion and the rate explodes to thousands
// per second (the coding idiom Section 2.2.1 uncovered).
func VistaDesktop(cfg Config) *Result {
	if cfg.Duration == 0 {
		cfg.Duration = 90 * sim.Second
	}
	sys := newVistaSystem(cfg)

	// Busy-desktop kernel: extra driver DPC timers re-arming at
	// millisecond scale (disk, network and audio all active) to reach the
	// ≈1000 sets/s kernel line.
	busyDrivers := []struct {
		origin string
		period sim.Duration
	}{
		{"system/tcpip:busy", 4 * sim.Millisecond},
		{"system/tcpip:busy2", 9 * sim.Millisecond},
		{"system/ndis:busy", 6 * sim.Millisecond},
		{"system/ndis:busy2", 11 * sim.Millisecond},
		{"system/storport:busy", 5 * sim.Millisecond},
		{"system/storport:busy2", 12 * sim.Millisecond},
		{"system/hdaudio:busy", 3 * sim.Millisecond},
		{"system/hdaudio:mix", 8 * sim.Millisecond},
		{"system/dxgkrnl:vsync", 7 * sim.Millisecond},
		{"system/dxgkrnl:present", 10 * sim.Millisecond},
		{"system/usbhub:busy", 13 * sim.Millisecond},
		{"system/afd:busy", 14 * sim.Millisecond},
		{"system/smb:busy", 9 * sim.Millisecond},
		{"system/rdbss:busy", 12 * sim.Millisecond},
	}
	for _, d := range busyDrivers {
		d := d
		t := sys.k.NewTimer(d.origin, 0, false, nil)
		var rearm func()
		rearm = func() { sys.k.SetTimerIn(t, d.period, 0) }
		t.SetDPC(rearm)
		sys.eng.After(sys.uniform(0, d.period), d.origin+":phase", rearm)
	}

	// The browser: tens of timer sets per second.
	bpid := sys.pid()
	bth := sys.k.NewThread(bpid, "iexplore.exe!ev")
	sys.shortWaitLoop(bth, browserPumpTimeout)
	bq := sys.k.NewMessageQueue(bpid, "iexplore.exe")
	bq.SetTimer(1, browserGUITick, func() {})

	// Outlook: the UI-upcall guard. Every upcall sets a 5 s threadpool
	// timeout assertion and cancels it on return.
	opid := sys.pid()
	pool := sys.k.NewPool(opid, "outlook.exe")
	guard := func() {
		tp := pool.NewTimer("outlook.exe/ui-guard", func() {})
		tp.Set(outlookUpcallGuard, 0, 0)
		// The upcall returns quickly; the assertion is canceled. The guard
		// usually loses the race on purpose — the dropped pending/expired
		// bit is exactly the modeled idiom.
		sys.eng.After(sys.uniform(50*sim.Microsecond, 2*sim.Millisecond), "outlook:return", func() {
			_ = tp.Cancel()
		})
	}
	// Idle Outlook: ~70 upcalls per second (message pump churn).
	var pump func()
	pump = func() {
		guard()
		sys.eng.After(sys.exp(14*sim.Millisecond), "outlook:pump", pump)
	}
	sys.eng.After(0, "outlook:pump", pump)
	// Bursts: mail sync at 20 s and 55 s drives thousands of upcalls per
	// second for a couple of seconds.
	for _, burstStart := range []sim.Duration{20 * sim.Second, 55 * sim.Second} {
		burstStart := burstStart
		burstEnd := burstStart + 2*sim.Second
		var burst func()
		burst = func() {
			for i := 0; i < 14; i++ {
				guard()
			}
			if sim.Duration(sys.eng.Now()) < burstEnd {
				sys.eng.After(outlookBurstGap, "outlook:burst", burst)
			}
		}
		sys.eng.After(burstStart, "outlook:burst", burst)
	}

	// An Outlook housekeeping wait loop too, for the idle floor.
	oth := sys.k.NewThread(opid, "outlook.exe!bg")
	sys.waitLoop(oth, outlookHousekeepingTimeout, 0.1)

	return sys.finish(Desktop)
}

// DesktopGrouper maps trace records to the Figure 1 lines: Outlook, the
// browser, other system processes, and the kernel. The grouping needs only
// the record and its resolved origin, so it works over any trace.Source.
func DesktopGrouper() analysis.Grouper {
	return func(r trace.Record, origin string) string {
		switch {
		case strings.HasPrefix(origin, "outlook.exe"):
			return "Outlook"
		case strings.HasPrefix(origin, "iexplore.exe"):
			return "Browser"
		case r.PID == 0 || strings.HasPrefix(origin, "system/") || strings.HasPrefix(origin, "kernel/"):
			return "Kernel"
		default:
			return "System"
		}
	}
}
