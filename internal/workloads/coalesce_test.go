package workloads

import (
	"testing"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/kernel"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// bootDaemonHost builds a kit with the full kernel-daemon population plus
// one counting 1 s periodic, runs it for the span, and returns the engine
// and the counter's fire count. NoHZ is on: under a periodic tick the tick
// itself dominates wakeups and coalescing is invisible (the pre-dynticks
// situation the paper describes); only a tickless kernel turns fewer timer
// instants into fewer wakeups.
func bootDaemonHost(coalesce sim.Duration, span sim.Time) (*sim.Engine, int) {
	eng := sim.NewEngine(99)
	l := kernel.NewLinux(eng, trace.NewHashSink(), jiffies.WithNoHZ(true))
	k := NewHostKit(eng, l)
	k.SetCoalesce(coalesce)
	k.BootKernelDaemons()
	fires := 0
	k.Periodic("test:counter", sim.Second, func() { fires++ })
	eng.Run(span)
	return eng, fires
}

// TestCoalesceReducesWakeups: with the periodic daemons on a shared grid,
// distinct wakeup instants collapse — the round_jiffies effect the knob
// models — while each timer keeps (nearly) its programmed rate: coalescing
// batches fires, it does not swallow them.
func TestCoalesceReducesWakeups(t *testing.T) {
	const span = sim.Time(30 * sim.Second)
	off, offFires := bootDaemonHost(0, span)
	on, onFires := bootDaemonHost(100*sim.Millisecond, span)
	if off.Stats().Wakeups == 0 {
		t.Fatal("daemon host produced no wakeups")
	}
	if on.Stats().Wakeups >= off.Stats().Wakeups {
		t.Fatalf("coalescing did not reduce wakeups: %d (on) vs %d (off)",
			on.Stats().Wakeups, off.Stats().Wakeups)
	}
	// Deferral, not suppression: each cycle stretches by at most one
	// window (the slack rule in armCoalesced), so a 1 s periodic under a
	// 100 ms grid keeps within ~10% of its uncoalesced fire count.
	if offFires < 25 {
		t.Fatalf("counter barely fired uncoalesced: %d", offFires)
	}
	if onFires < offFires*9/10 {
		t.Fatalf("coalescing suppressed fires: %d (on) vs %d (off)", onFires, offFires)
	}
}

// TestCoalesceDeterministic: the knob is part of the deterministic state —
// equal windows give equal runs, and SetCoalesce validates its input.
func TestCoalesceDeterministic(t *testing.T) {
	const span = sim.Time(5 * sim.Second)
	a, _ := bootDaemonHost(sim.Duration(sim.Millisecond)*250, span)
	b, _ := bootDaemonHost(sim.Duration(sim.Millisecond)*250, span)
	if a.State() != b.State() {
		t.Fatalf("coalesced runs diverged:\na: %+v\nb: %+v", a.State(), b.State())
	}

	eng := sim.NewEngine(1)
	k := NewHostKit(eng, kernel.NewLinux(eng, trace.NewHashSink()))
	k.SetCoalesce(-5)
	if k.Coalesce() != 0 {
		t.Fatalf("negative window accepted: %v", k.Coalesce())
	}
	k.SetCoalesce(sim.Second)
	if k.Coalesce() != sim.Second {
		t.Fatalf("window not stored: %v", k.Coalesce())
	}
}
