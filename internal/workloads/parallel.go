package workloads

import (
	"runtime"
	"sync"
)

// Every workload run is an independent deterministic function of its Spec —
// it owns its seeded rand.Rand, sim engine and trace buffer — so the nine
// evaluation traces can execute concurrently without changing a single byte
// of any result. This file provides the fan-out used by cmd/experiments and
// the root benchmarks.

// Spec names one workload run: which personality, which workload, and its
// configuration.
type Spec struct {
	// OS selects the personality: "linux" or "vista".
	OS string
	// Name is the workload name (Idle, Skype, ...).
	Name string
	// Cfg parameterizes the run.
	Cfg Config
}

// Run executes the spec.
func (s Spec) Run() *Result {
	switch s.OS {
	case "linux":
		return RunLinux(s.Name, s.Cfg)
	case "vista":
		return RunVista(s.Name, s.Cfg)
	default:
		panic("workloads: unknown OS " + s.OS)
	}
}

// ForEach runs every spec on a pool of up to workers goroutines (workers<=0
// means GOMAXPROCS) and hands each finished result to fn from the worker
// goroutine. fn must be safe for concurrent calls with distinct i; results
// are not retained here, so a caller that reduces each trace inside fn keeps
// at most workers traces alive at once.
func ForEach(specs []Spec, workers int, fn func(i int, res *Result)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			fn(i, specs[i].Run())
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i, specs[i].Run())
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RunAll runs the specs concurrently and returns the results in spec order.
func RunAll(specs []Spec, workers int) []*Result {
	out := make([]*Result, len(specs))
	ForEach(specs, workers, func(i int, res *Result) { out[i] = res })
	return out
}

// EvaluationSpecs lists the paper's nine evaluation traces — the four Linux
// and four Vista workloads at cfg's duration, plus the 90-second Vista
// desktop of Figure 1 — in the order the tables and figures consume them.
func EvaluationSpecs(cfg Config) []Spec {
	var specs []Spec
	for _, n := range LinuxWorkloads() {
		specs = append(specs, Spec{OS: "linux", Name: n, Cfg: cfg})
	}
	for _, n := range VistaWorkloads() {
		specs = append(specs, Spec{OS: "vista", Name: n, Cfg: cfg})
	}
	desktopCfg := cfg
	desktopCfg.Duration = DesktopTraceDuration
	specs = append(specs, Spec{OS: "vista", Name: Desktop, Cfg: desktopCfg})
	return specs
}
