package workloads

import (
	"math/rand"

	"timerstudy/internal/jiffies"
	"timerstudy/internal/kernel"
	"timerstudy/internal/sim"
)

// HostKit is the reusable per-host modeling toolkit: the random-delay
// helpers, the periodic-kernel-timer and select-loop idioms, and the
// block-layer timer slabs that every Linux workload model is built from.
// The single-machine workloads (linuxSystem) delegate here; the fleet's
// host models (internal/fleet) construct their own kit per simulated host,
// so a 1k-host datacenter boots 1k instances of the same daemons the
// paper's single traced box ran.
//
// A HostKit is bound to one engine and must only be used from that engine's
// callbacks (or before the fleet starts) — the same single-threaded
// discipline as every other per-host object.
type HostKit struct {
	Eng *sim.Engine
	L   *kernel.Linux
	Rng *rand.Rand

	// Block-layer timer slabs: command and unplug timers live in request
	// structures that are recycled, so their trace identities recur — the
	// same reuse that keeps the paper's timer counts at ~100 per trace.
	idePool    []*jiffies.Timer
	unplugPool []*jiffies.Timer

	// coalesce is the periodic-timer coalescing grid width; 0 = off. See
	// SetCoalesce.
	coalesce sim.Duration
}

// NewHostKit binds a kit to a booted kernel personality. Randomness comes
// from the engine's own deterministic stream.
func NewHostKit(eng *sim.Engine, l *kernel.Linux) *HostKit {
	return &HostKit{Eng: eng, L: l, Rng: eng.Rand()}
}

// Exp returns an exponentially distributed delay with the given mean,
// bounded away from zero.
func (k *HostKit) Exp(mean sim.Duration) sim.Duration {
	d := sim.Duration(k.Rng.ExpFloat64() * float64(mean))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d
}

// Uniform returns a delay in [lo, hi).
func (k *HostKit) Uniform(lo, hi sim.Duration) sim.Duration {
	if hi <= lo {
		return lo
	}
	return lo + sim.Duration(k.Rng.Int63n(int64(hi-lo)))
}

// SetCoalesce sets the coalescing window for the ClassPeriodic timer
// family: every Periodic (re-)arm rounds its expiry up to the next
// multiple of w, so the independent daemons' timers land on shared
// instants and batch into one wakeup — the round_jiffies/deferrable-timer
// remedy the paper's Section 5 argues for, as a run-time knob (the control
// plane's coalescing-window command, internal/control). w <= 0 turns
// coalescing off. Same single-threaded discipline as everything else on
// the kit: call from the host's own callbacks or at a fleet barrier.
func (k *HostKit) SetCoalesce(w sim.Duration) {
	if w < 0 {
		w = 0
	}
	k.coalesce = w
}

// Coalesce returns the active coalescing window (0 = off).
func (k *HostKit) Coalesce() sim.Duration { return k.coalesce }

// armCoalesced arms t to fire after d, rounded up to the coalescing grid
// when one is set. Rounding is up, never down — coalescing may only defer
// a periodic timer (firing early would violate the timeout contract) — and
// applies only when the window is no longer than the delay itself, the
// kernel's slack rule: deferral stretches a cycle by at most one window,
// it never swallows whole periods of a timer finer than the grid.
func (k *HostKit) armCoalesced(t *jiffies.Timer, d sim.Duration) {
	if w := int64(k.coalesce); w > 0 && w <= int64(d) {
		deadline := int64(k.Eng.Now()) + int64(d)
		if r := deadline % w; r != 0 {
			d += sim.Duration(w - r)
		}
	}
	k.L.Base().ModTimeout(t, d)
}

// Periodic installs a self-re-arming kernel timer — the ClassPeriodic
// pattern (page-out timer, work queues). The first arming lands at a random
// phase, reproducing the up-to-2 ms value jitter of Section 3.1. Arms honor
// the kit's coalescing window (SetCoalesce).
func (k *HostKit) Periodic(origin string, period sim.Duration, body func()) *jiffies.Timer {
	var t *jiffies.Timer
	t = k.L.KernelTimer(origin, func() {
		if body != nil {
			body()
		}
		k.armCoalesced(t, period)
	})
	k.Eng.After(k.Uniform(0, period), origin+":phase", func() {
		k.armCoalesced(t, period)
	})
	return t
}

// SelectLoop runs a daemon's event loop: select with a constant timeout; if
// activityMean > 0, fd activity completes some selects early and the loop
// continues with the written-back remainder — the Figure 4 countdown idiom.
// With activityMean == 0 the select always expires (pure periodic daemon).
func (k *HostKit) SelectLoop(p *kernel.Process, timeout, activityMean sim.Duration) {
	var issue func(to sim.Duration)
	var pending *kernel.Pending
	issue = func(to sim.Duration) {
		if to <= 0 {
			to = timeout
		}
		pending = p.Select(to, func(r kernel.SelectResult) {
			if r.TimedOut || r.Remaining == 0 {
				// Deadline reached: handle housekeeping, restart at the
				// programmed constant.
				issue(timeout)
				return
			}
			// fd activity: service it, re-issue with the remainder.
			issue(r.Remaining)
		})
	}
	issue(timeout)
	if activityMean > 0 {
		var activity func()
		activity = func() {
			pending.Complete()
			k.Eng.After(k.Exp(activityMean), p.Name+":activity", activity)
		}
		k.Eng.After(k.Exp(activityMean), p.Name+":activity", activity)
	}
}

// DiskIO models one block-layer request: the 4 ms unplug timer (mostly
// expiring) and the 30 s IDE command timeout (canceled when the command
// completes) — Table 3's 0.004 s and 30 s rows. Timer structs come from
// per-purpose slabs and return there, as the kernel's request structures do.
func (k *HostKit) DiskIO() {
	ide := k.popTimer(&k.idePool, "kernel/ide:command-timeout")
	done := false
	ide.SetCallback(func() { done = true }) // command timeout: request aborts
	k.L.Base().ModTimeout(ide, ideCommandTimeout)
	k.Eng.After(k.Uniform(2*sim.Millisecond, 12*sim.Millisecond), "ide:complete", func() {
		if !done {
			// Completion vs. timeout race is part of the modeled behavior.
			_ = k.L.Base().Del(ide)
		}
		k.idePool = append(k.idePool, ide)
	})

	unplug := k.popTimer(&k.unplugPool, "kernel/block:unplug")
	unplug.SetCallback(func() {
		k.unplugPool = append(k.unplugPool, unplug)
	})
	k.L.Base().ModTimeout(unplug, blockUnplugTimeout)
}

// popTimer takes a recycled timer from a slab, initializing a fresh one on
// first use.
func (k *HostKit) popTimer(pool *[]*jiffies.Timer, origin string) *jiffies.Timer {
	if n := len(*pool); n > 0 {
		t := (*pool)[n-1]
		*pool = (*pool)[:n-1]
		return t
	}
	return k.L.KernelTimer(origin, nil)
}

// BootKernelDaemons starts the Table 3 periodic kernel-timer family plus
// write-back (with occasional disk I/O) and the console-blank watchdog.
func (k *HostKit) BootKernelDaemons() {
	b := k.L.Base()
	k.Periodic("kernel/workqueue:timer", workqueueTimerPeriod, nil)
	k.Periodic("kernel/workqueue:delayed", workqueueDelayedPeriod, nil)
	k.Periodic("kernel/hres:clocksource-watchdog", clocksourceWatchdogPeriod, nil)
	k.Periodic("kernel/usb:hcd-poll", usbHcdPollPeriod, nil)
	k.Periodic("kernel/e1000:watchdog", e1000WatchdogPeriod, nil)
	k.Periodic("kernel/pktsched:qdisc", qdiscPeriod, nil)
	k.Periodic("kernel/vm:vmstat-update", vmstatUpdatePeriod, nil)
	k.Periodic("kernel/mm:slab-reap", slabReapPeriod, nil)
	// Dirty page write-back occasionally finds work and does disk I/O.
	k.Periodic("kernel/mm:writeback", writebackInterval, func() {
		if k.Rng.Intn(4) == 0 {
			k.DiskIO()
		}
	})
	// Page-out timer.
	k.Periodic("kernel/mm:page-out", pageOutInterval, nil)
	// Console blank: a long watchdog; no console input ever arrives in
	// these workloads, so it expires once (blanks) per 10 minutes of trace.
	var blank *jiffies.Timer
	blank = k.L.KernelTimer("kernel/console:blank", func() {
		b.ModTimeout(blank, consoleBlankTimeout)
	})
	b.ModTimeout(blank, consoleBlankTimeout)
}

// BootUserDaemons starts the stock daemons of the paper's idle description:
// init's 5 s child poll plus syslogd, cron, atd, inetd and the portmapper,
// each a pure-expiry select loop on its fixed human-scale timeout.
func (k *HostKit) BootUserDaemons() {
	k.SelectLoop(k.L.NewProcess("init"), initPollTimeout, 0)
	k.SelectLoop(k.L.NewProcess("syslogd"), syslogdPollTimeout, 0)
	k.SelectLoop(k.L.NewProcess("cron"), cronPollTimeout, 0)
	k.SelectLoop(k.L.NewProcess("atd"), atdPollTimeout, 0)
	k.SelectLoop(k.L.NewProcess("inetd"), inetdPollTimeout, 0)
	k.SelectLoop(k.L.NewProcess("portmap"), portmapPollTimeout, 0)
}
