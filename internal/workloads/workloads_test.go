package workloads

import (
	"bytes"
	"testing"

	"timerstudy/internal/analysis"
	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// testCfg keeps unit-test runs quick; shapes are rate-based so they hold at
// any duration.
func testCfg() Config { return Config{Seed: 7, Duration: 90 * sim.Second} }

func summarize(t *testing.T, res *Result) analysis.Summary {
	t.Helper()
	if res.Trace.Counters().Dropped != 0 {
		t.Fatalf("%s/%s dropped %d records", res.OS, res.Name, res.Trace.Counters().Dropped)
	}
	return analysis.Summarize(res.Trace)
}

func TestLinuxWorkloadOrdering(t *testing.T) {
	// Table 1 ordering: Firefox >> Skype > Idle; all user-dominated except
	// the webserver, which is kernel-dominated.
	cfg := testCfg()
	idle := summarize(t, LinuxIdle(cfg))
	skype := summarize(t, LinuxSkype(cfg))
	firefox := summarize(t, LinuxFirefox(cfg))
	web := summarize(t, LinuxWebserver(cfg))

	if !(firefox.Accesses > 2*skype.Accesses && skype.Accesses > idle.Accesses) {
		t.Errorf("access ordering broken: firefox=%d skype=%d idle=%d",
			firefox.Accesses, skype.Accesses, idle.Accesses)
	}
	for name, s := range map[string]analysis.Summary{"idle": idle, "skype": skype, "firefox": firefox} {
		if s.UserSpace <= s.Kernel {
			t.Errorf("%s: user=%d <= kernel=%d; paper shows user domination", name, s.UserSpace, s.Kernel)
		}
	}
	if web.Kernel <= web.UserSpace {
		t.Errorf("webserver: kernel=%d <= user=%d; paper shows kernel domination", web.Kernel, web.UserSpace)
	}
	// Linux cancels heavily (Skype, Firefox, Webserver all cancel more
	// than they expire in Table 1).
	for name, s := range map[string]analysis.Summary{"skype": skype, "webserver": web} {
		if s.Canceled <= s.Expired {
			t.Errorf("%s: canceled=%d <= expired=%d", name, s.Canceled, s.Expired)
		}
	}
	// Concurrency is a few tens, as in Table 1.
	for name, s := range map[string]analysis.Summary{"idle": idle, "skype": skype, "firefox": firefox, "webserver": web} {
		if s.Concurrency < 10 || s.Concurrency > 100 {
			t.Errorf("%s: concurrency=%d outside the paper's range", name, s.Concurrency)
		}
	}
	// Timer-struct reuse keeps distinct Linux identities small even for
	// the 30000-connection webserver.
	if web.Timers > 300 {
		t.Errorf("webserver timers=%d; slab reuse broken", web.Timers)
	}
}

func TestVistaWorkloadOrdering(t *testing.T) {
	cfg := testCfg()
	idle := summarize(t, VistaIdle(cfg))
	skype := summarize(t, VistaSkype(cfg))
	firefox := summarize(t, VistaFirefox(cfg))
	web := summarize(t, VistaWebserver(cfg))

	if !(firefox.Accesses > skype.Accesses && skype.Accesses > idle.Accesses) {
		t.Errorf("access ordering broken: firefox=%d skype=%d idle=%d",
			firefox.Accesses, skype.Accesses, idle.Accesses)
	}
	// Vista: timers mostly expire; cancelations are rare (Table 2).
	for name, s := range map[string]analysis.Summary{"idle": idle, "skype": skype, "firefox": firefox} {
		if s.Expired <= 5*s.Canceled {
			t.Errorf("%s: expired=%d canceled=%d; Vista should be expiry-dominated", name, s.Expired, s.Canceled)
		}
	}
	// The idle Vista box is kernel-heavy (Table 2: 215k kernel vs 56k user).
	if idle.Kernel <= idle.UserSpace {
		t.Errorf("idle: kernel=%d <= user=%d", idle.Kernel, idle.UserSpace)
	}
	// Dynamic allocation: raw identities far exceed call-site clusters for
	// the webserver.
	if web.Timers < 10*web.ClusteredTimers {
		t.Errorf("webserver: timers=%d clustered=%d; Vista should allocate fresh KTIMERs", web.Timers, web.ClusteredTimers)
	}
}

func TestLinuxIdleClassShares(t *testing.T) {
	// Figure 2: the idle workload is dominated by periodic timers and has
	// almost no watchdogs; "other" is substantial (the X select idiom).
	res := LinuxIdle(testCfg())
	shares := analysis.ComputeClassShares(analysis.Lifecycles(res.Trace))
	if shares.Share(analysis.ClassPeriodic) < 25 {
		t.Errorf("idle periodic share = %.1f%%, want ≥25%%", shares.Share(analysis.ClassPeriodic))
	}
	if shares.Share(analysis.ClassWatchdog) > 15 {
		t.Errorf("idle watchdog share = %.1f%%, want small", shares.Share(analysis.ClassWatchdog))
	}
}

func TestLinuxWebserverHasWatchdogsAndTimeouts(t *testing.T) {
	// Figure 2: Apache uses watchdogs/timeouts to guard connections.
	res := LinuxWebserver(testCfg())
	ls := analysis.Lifecycles(res.Trace)
	shares := analysis.ComputeClassShares(ls)
	got := shares.Share(analysis.ClassTimeout) + shares.Share(analysis.ClassWatchdog)
	if got < 10 {
		t.Errorf("webserver timeout+watchdog share = %.1f%%, want ≥10%%", got)
	}
}

func TestLinuxIdleCountdownPresent(t *testing.T) {
	// Figure 4: the X server's select timer counts down from 600 s.
	res := LinuxIdle(testCfg())
	ls := analysis.Lifecycles(res.Trace)
	found := false
	for _, tl := range ls {
		if tl.Origin != "Xorg/select" {
			continue
		}
		for _, c := range analysis.CountdownChains(tl) {
			if c.Len() >= 10 && tl.Uses[c.Start].Timeout > 500*sim.Second {
				found = true
			}
		}
	}
	if !found {
		t.Error("no 600 s X select countdown found")
	}
	pts := analysis.SetSeries(ls, "Xorg")
	if len(pts) < 100 {
		t.Errorf("only %d Xorg series points", len(pts))
	}
}

func TestLinuxIdleFilteredValuesAreConstants(t *testing.T) {
	// Figure 5: filtering X/icewm and collapsing countdowns leaves the
	// programmer constants; the USB 0.248 s and clocksource 0.5 s rows
	// must be prominent.
	res := LinuxIdle(testCfg())
	ls := analysis.Lifecycles(res.Trace)
	entries, _ := analysis.CommonValues(ls, analysis.ValueOptions{
		JiffyBinKernel: true, MinSharePercent: 2,
		CollapseCountdowns: true,
		ExcludeProcesses:   []string{"Xorg", "icewm"},
	})
	want := map[sim.Duration]bool{248 * sim.Millisecond: false, 500 * sim.Millisecond: false, sim.Second: false}
	for _, e := range entries {
		if _, ok := want[e.Value]; ok {
			want[e.Value] = true
		}
	}
	for v, ok := range want {
		if !ok {
			t.Errorf("expected common value %v missing; entries: %+v", v, entries)
		}
	}
}

func TestLinuxSkypeValueSignature(t *testing.T) {
	// Figure 6: Skype's syscall values include 0, 0.4999 and 0.5 s.
	res := LinuxSkype(testCfg())
	ls := analysis.Lifecycles(res.Trace)
	entries, _ := analysis.CommonValues(ls, analysis.ValueOptions{UserOnly: true, MinSharePercent: 1})
	seen := map[sim.Duration]bool{}
	for _, e := range entries {
		seen[e.Value] = true
	}
	for _, v := range []sim.Duration{0, 499900 * sim.Microsecond, 500 * sim.Millisecond} {
		if !seen[v] {
			t.Errorf("Skype value %v missing from ≥1%% histogram: %+v", v, entries)
		}
	}
}

func TestLinuxWebserverKeepaliveAndRetransmitValues(t *testing.T) {
	// Table 3: the 7200 s keepalive and ~0.2 s retransmission rows.
	res := LinuxWebserver(testCfg())
	ls := analysis.Lifecycles(res.Trace)
	var sawKeepalive, sawRTO, sawDelack, saw15 bool
	for _, tl := range ls {
		for _, u := range tl.Uses {
			switch {
			case tl.Origin == "kernel/tcp:keepalive" && u.Timeout >= 7200*sim.Second:
				sawKeepalive = true
			case tl.Origin == "kernel/tcp:retransmit" && u.Timeout >= 190*sim.Millisecond && u.Timeout <= 210*sim.Millisecond:
				sawRTO = true
			case tl.Origin == "kernel/tcp:delack":
				sawDelack = true
			case tl.Origin == "apache2/poll" && u.Timeout == 15*sim.Second:
				saw15 = true
			}
		}
	}
	if !sawKeepalive || !sawRTO || !sawDelack || !saw15 {
		t.Errorf("missing signatures: keepalive=%v rto=%v delack=%v apache15=%v",
			sawKeepalive, sawRTO, sawDelack, saw15)
	}
}

func TestLinuxFirefoxShortTimerScatter(t *testing.T) {
	// Figures 8-11: sub-10 ms timers ride above 100% (jiffy quantization);
	// Firefox's cancels spread over 0-100%.
	res := LinuxFirefox(testCfg())
	ls := analysis.Lifecycles(res.Trace)
	pts := analysis.Scatter(ls, analysis.DefaultScatterOptions())
	late, early := 0, 0
	for _, p := range pts {
		if p.Timeout <= 10*sim.Millisecond && p.RatioPct >= 100 {
			late += p.Count
		}
		if p.RatioPct < 100 {
			early += p.Count
		}
	}
	if late == 0 {
		t.Error("no late short-timer deliveries: jiffy quantization missing")
	}
	if early == 0 {
		t.Error("no early cancels in scatter")
	}
}

func TestVistaDesktopFigure1Shapes(t *testing.T) {
	res := VistaDesktop(Config{Seed: 7, Duration: 90 * sim.Second})
	rates := analysis.SetRates(res.Trace, res.Duration, DesktopGrouper())
	byName := map[string]analysis.RateSeries{}
	for _, s := range rates {
		byName[s.Group] = s
	}
	kernel, ok := byName["Kernel"]
	if !ok || kernel.Mean() < 400 || kernel.Mean() > 3000 {
		t.Errorf("kernel mean = %.0f/s, want ≈1000", kernel.Mean())
	}
	outlook := byName["Outlook"]
	if outlook.Peak() < 2000 {
		t.Errorf("outlook peak = %d/s, want thousands during bursts", outlook.Peak())
	}
	if outlook.Mean() > float64(outlook.Peak())/4 {
		t.Errorf("outlook bursts not bursty: mean=%.0f peak=%d", outlook.Mean(), outlook.Peak())
	}
	browser := byName["Browser"]
	if browser.Mean() < 5 || browser.Mean() > 400 {
		t.Errorf("browser mean = %.0f/s, want tens", browser.Mean())
	}
	if system := byName["System"]; system.Mean() <= 0 {
		t.Error("no system-process line")
	}
}

func TestVistaDeferredPatternPresent(t *testing.T) {
	res := VistaIdle(Config{Seed: 7, Duration: 5 * sim.Minute})
	shares := analysis.ComputeClassShares(analysis.Lifecycles(res.Trace))
	if shares.Counts[analysis.ClassDeferred] == 0 {
		t.Error("no deferred-class timers in the Vista trace")
	}
}

func TestVistaShortWaitsDeliveredLate(t *testing.T) {
	// The Vista Firefox pathology: sub-millisecond waits delivered at
	// clock granularity, far beyond the 250 % cutoff.
	res := VistaFirefox(testCfg())
	ls := analysis.Lifecycles(res.Trace)
	over := 0
	for _, tl := range ls {
		for _, u := range tl.Uses {
			if r, ok := u.Ratio(); ok && u.Timeout <= sim.Millisecond && u.Timeout > 0 && r > 2.5 {
				over++
			}
		}
	}
	if over < 100 {
		t.Errorf("only %d sub-ms waits delivered >250%% late", over)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	cfg := Config{Seed: 3, Duration: 30 * sim.Second}
	a := LinuxFirefox(cfg)
	b := LinuxFirefox(cfg)
	ca, cb := a.Trace.Counters(), b.Trace.Counters()
	if ca != cb {
		t.Fatalf("same seed diverged: %+v vs %+v", ca, cb)
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatal("trace lengths differ")
	}
	for i, r := range a.Trace.Records() {
		if r != b.Trace.Records()[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := LinuxFirefox(Config{Seed: 4, Duration: 30 * sim.Second})
	if c.Trace.Counters() == ca {
		t.Fatal("different seeds produced identical counters")
	}
}

func TestRunDispatchers(t *testing.T) {
	cfg := Config{Seed: 1, Duration: 5 * sim.Second}
	for _, n := range LinuxWorkloads() {
		if r := RunLinux(n, cfg); r.Name != n || r.OS != "linux" {
			t.Errorf("RunLinux(%q) = %s/%s", n, r.OS, r.Name)
		}
	}
	for _, n := range VistaWorkloads() {
		if r := RunVista(n, cfg); r.Name != n || r.OS != "vista" {
			t.Errorf("RunVista(%q) = %s/%s", n, r.OS, r.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown workload did not panic")
		}
	}()
	RunLinux("nope", cfg)
}

func TestTraceEncodesAndDecodes(t *testing.T) {
	res := LinuxIdle(Config{Seed: 1, Duration: 10 * sim.Second})
	var buf bytes.Buffer
	if err := res.Trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != res.Trace.Len() {
		t.Fatalf("len %d != %d", got.Len(), res.Trace.Len())
	}
}

func TestDesktopDeterminism(t *testing.T) {
	cfg := Config{Seed: 5, Duration: 30 * sim.Second}
	a := VistaDesktop(cfg)
	b := VistaDesktop(cfg)
	if a.Trace.Counters() != b.Trace.Counters() {
		t.Fatalf("desktop diverged: %+v vs %+v", a.Trace.Counters(), b.Trace.Counters())
	}
}

func TestTraceCapDropsGracefully(t *testing.T) {
	// A tiny buffer: the workload must complete, counting drops like
	// relayfs would, never crashing or overwriting.
	res := LinuxFirefox(Config{Seed: 1, Duration: 30 * sim.Second, TraceCap: 1000})
	c := res.Trace.Counters()
	if res.Trace.Len() != 1000 {
		t.Fatalf("len = %d", res.Trace.Len())
	}
	if c.Dropped == 0 {
		t.Fatal("nothing dropped despite tiny cap")
	}
	if c.Total != uint64(res.Trace.Len())+c.Dropped {
		t.Fatalf("counters inconsistent: %+v", c)
	}
	if res.Counters != c {
		t.Fatalf("Result.Counters %+v != buffer counters %+v", res.Counters, c)
	}
}

// TestExternalSinkMatchesBuffer checks the Config.Sink seam: streaming a run
// through a StreamWriter must produce the exact record and origin stream the
// in-memory buffer records, leave Result.Trace nil, and carry the counters.
func TestExternalSinkMatchesBuffer(t *testing.T) {
	cfg := Config{Seed: 1, Duration: 30 * sim.Second}
	buffered := LinuxIdle(cfg)

	var spill bytes.Buffer
	sw := trace.NewStreamWriter(&spill)
	cfg.Sink = sw
	streamed := LinuxIdle(cfg)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if streamed.Trace != nil {
		t.Fatal("Result.Trace not nil with an external sink")
	}
	if streamed.Counters != buffered.Counters {
		t.Fatalf("counters %+v != %+v", streamed.Counters, buffered.Counters)
	}

	sr, err := trace.NewStreamReader(bytes.NewReader(spill.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := buffered.Trace.Records()
	i := 0
	err = sr.ForEach(func(r trace.Record) {
		if i < len(want) && r != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, r, want[i])
		}
		if gn, wn := sr.OriginName(r.Origin), buffered.Trace.OriginName(r.Origin); gn != wn {
			t.Fatalf("record %d origin: %q != %q", i, gn, wn)
		}
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("streamed %d records, buffered %d", i, len(want))
	}
}

func TestWebserverRelationInference(t *testing.T) {
	// Section 5.2 end-to-end: the webserver trace contains inferable
	// couplings between per-connection timers.
	res := LinuxWebserver(Config{Seed: 7, Duration: 3 * sim.Minute})
	rels := analysis.InferRelations(analysis.Lifecycles(res.Trace), analysis.InferOptions{})
	if len(rels) == 0 {
		t.Fatal("no relations inferred from the webserver trace")
	}
	var sawDep, sawOverlap bool
	for _, r := range rels {
		switch r.Kind {
		case analysis.RelDependsOn:
			sawDep = true
		case analysis.RelOverlaps:
			sawOverlap = true
		}
	}
	if !sawDep || !sawOverlap {
		t.Fatalf("kinds missing: dep=%v overlap=%v", sawDep, sawOverlap)
	}
}
