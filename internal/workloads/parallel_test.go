package workloads

import (
	"testing"

	"timerstudy/internal/sim"
)

// TestRunAllDeterministicAcrossWorkers is the workload-level half of the
// parallel-safety argument: the same specs produce record-identical traces
// whether run serially or on a saturated pool.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Seed: 7, Duration: 20 * sim.Second}
	specs := EvaluationSpecs(cfg)
	serial := RunAll(specs, 1)
	parallel := RunAll(specs, len(specs))
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range specs {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name || s.OS != p.OS {
			t.Fatalf("spec %d: result order not preserved (%s/%s vs %s/%s)",
				i, s.OS, s.Name, p.OS, p.Name)
		}
		if s.Trace.Len() != p.Trace.Len() {
			t.Fatalf("%s/%s: record counts differ: %d vs %d",
				s.OS, s.Name, s.Trace.Len(), p.Trace.Len())
		}
		for j, r := range s.Trace.Records() {
			if r != p.Trace.Records()[j] {
				t.Fatalf("%s/%s: record %d differs: %+v vs %+v",
					s.OS, s.Name, j, r, p.Trace.Records()[j])
			}
		}
	}
}

func TestEvaluationSpecsShape(t *testing.T) {
	cfg := Config{Seed: 1, Duration: sim.Minute}
	specs := EvaluationSpecs(cfg)
	if len(specs) != 9 {
		t.Fatalf("specs = %d, want 9 (4 linux + 4 vista + desktop)", len(specs))
	}
	last := specs[len(specs)-1]
	if last.OS != "vista" || last.Name != Desktop || last.Cfg.Duration != DesktopTraceDuration {
		t.Fatalf("desktop spec = %+v", last)
	}
	for _, s := range specs[:8] {
		if s.Cfg.Duration != cfg.Duration {
			t.Fatalf("spec %+v lost cfg duration", s)
		}
	}
}
