package serve

import (
	"sync"

	"timerstudy/internal/trace"
)

// rateRing is the time-windowed ring of per-second ingest-rate buckets
// behind /api/rates: arrival-stamped counts of bytes, records and timer
// operations. It is wall-clock service state — the virtual-time rate
// tables stay in the analysis package — sized at one bucket per second for
// the configured window and overwritten in place as time advances, so
// memory is fixed no matter how long the service runs.
type rateBucket struct {
	Sec     int64  `json:"t"`
	Bytes   uint64 `json:"bytes"`
	Records uint64 `json:"records"`
	Set     uint64 `json:"set"`
	Expired uint64 `json:"expired"`
	Cancel  uint64 `json:"canceled"`
}

type rateRing struct {
	mu      sync.Mutex
	buckets []rateBucket
}

func newRateRing(windowSecs int) *rateRing {
	return &rateRing{buckets: make([]rateBucket, windowSecs)}
}

// slot returns the bucket for an absolute unix second, resetting it if the
// ring has lapped since it was last written.
func (r *rateRing) slot(sec int64) *rateBucket {
	b := &r.buckets[int(sec%int64(len(r.buckets)))]
	if b.Sec != sec {
		*b = rateBucket{Sec: sec}
	}
	return b
}

// add folds one accepted batch into the bucket of its arrival second.
func (r *rateRing) add(sec int64, bytes uint64, recs []trace.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.slot(sec)
	b.Bytes += bytes
	b.Records += uint64(len(recs))
	for _, rec := range recs {
		switch rec.Op {
		case trace.OpSet, trace.OpWait:
			b.Set++
		case trace.OpExpire:
			b.Expired++
		case trace.OpCancel:
			b.Cancel++
		}
	}
}

// window returns the last n seconds ending at now, oldest first,
// zero-filling seconds with no arrivals. n is clamped to the ring size.
func (r *rateRing) window(now int64, n int) []rateBucket {
	if n < 1 {
		n = 1
	}
	if n > len(r.buckets) {
		n = len(r.buckets)
	}
	out := make([]rateBucket, 0, n)
	r.mu.Lock()
	defer r.mu.Unlock()
	for sec := now - int64(n) + 1; sec <= now; sec++ {
		b := r.buckets[int(sec%int64(len(r.buckets)))]
		if b.Sec != sec {
			b = rateBucket{Sec: sec}
		}
		out = append(out, b)
	}
	return out
}
