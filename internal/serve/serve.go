// Package serve is the live timer-trace service: an HTTP endpoint that
// ingests v2 trace streams from many concurrent producers (trace.HTTPSink),
// folds each stream into its own incremental analysis.Partial as batches
// arrive, and answers queries from a merged global view.
//
// Design rules, in order:
//
//   - Determinism. The merged report depends only on stream contents and
//     names, never on arrival order: partials are merged in lexicographic
//     stream-name order (analysis.MergePartials is order-sensitive only for
//     the cross-stream concurrency bound, and name order pins it). A
//     quiesced server — every stream has delivered its counters footer —
//     answers /api/summary, /api/origins and /api/histograms with bytes
//     identical to offline timerstat over the concatenated streams.
//   - Bounded memory. Per stream: one decoder chunk + origin table + one
//     reusable body buffer (≤ MaxBodyBytes) + the analysis shard. Globally:
//     MaxStreams streams, IngestConcurrency bodies in flight, one cached
//     merged view. Nothing grows with total records ingested.
//   - No background goroutines. Merges happen on the query path, rate-
//     limited by MergeEvery while producers are live and immediate once the
//     server quiesces, so an idle server does nothing and tests control
//     time fully through the Clock seam.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"timerstudy/internal/analysis"
	"timerstudy/internal/trace"
)

// Options configures a Server; the zero value is usable.
type Options struct {
	// Pipeline configures the per-stream analysis shards; zero value is the
	// standard pipeline.
	Pipeline analysis.Pipeline
	// Clock supplies the service's wall clock (rate buckets, merge cadence,
	// uptime). Nil means the host clock; tests inject a fake.
	Clock func() time.Time
	// MergeEvery rate-limits query-triggered merges while streams are live.
	// 0 means defaultMergeCadence; negative means merge on every query.
	MergeEvery time.Duration
	// MaxBodyBytes caps one ingest POST body; 0 means defaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxStreams caps distinct producer streams; 0 means defaultMaxStreams.
	MaxStreams int
	// IngestConcurrency caps POST bodies being read/decoded at once;
	// 0 means defaultIngestConcurrency.
	IngestConcurrency int
	// RateWindowSecs sizes the per-second ingest-rate ring; 0 means
	// defaultRateWindowSecs.
	RateWindowSecs int
	// Version is reported by /api/metrics (version.String() in cmds).
	Version string
}

// Server implements the ingest and query endpoints. Create with New, mount
// via Handler.
type Server struct {
	pipe       analysis.Pipeline
	clock      func() time.Time
	cadence    time.Duration
	maxBody    int64
	maxStreams int
	version    string
	start      time.Time

	mux *http.ServeMux
	sem chan struct{} // ingest concurrency limiter

	mu      sync.Mutex // guards streams map (per-stream state has its own lock)
	streams map[string]*stream

	// gen counts accepted state changes; a cached merge is identified by the
	// gen it covered, so gen != merged.gen means the view is stale.
	gen     atomic.Uint64
	mergeMu sync.Mutex // serializes merges; queries read the cached pointer
	merged  atomic.Pointer[mergedState]

	rates *rateRing
	hub   hub // steering relay between dashboard and simulation driver

	// Metrics is exported for the loopback benchmark; handlers bump it
	// directly.
	Metrics Metrics
}

// mergedState is one immutable merged view: the pre-rendered JSON sections
// plus the generation it covered.
type mergedState struct {
	gen     uint64
	at      time.Time
	records uint64

	summary    []byte
	origins    []byte
	histograms []byte
}

// hostClock is the service's one real-clock read; everything else goes
// through the injected Clock seam.
//
//lint:ignore wallclock live service needs the host clock by definition
func hostClock() time.Time { return time.Now() }

// New builds a Server from opts, applying the documented defaults.
func New(opts Options) *Server {
	s := &Server{
		pipe:       opts.Pipeline,
		clock:      opts.Clock,
		cadence:    opts.MergeEvery,
		maxBody:    opts.MaxBodyBytes,
		maxStreams: opts.MaxStreams,
		version:    opts.Version,
		streams:    make(map[string]*stream),
	}
	if s.clock == nil {
		s.clock = hostClock
	}
	if s.cadence == 0 {
		s.cadence = defaultMergeCadence
	}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBodyBytes
	}
	if s.maxStreams <= 0 {
		s.maxStreams = defaultMaxStreams
	}
	conc := opts.IngestConcurrency
	if conc <= 0 {
		conc = defaultIngestConcurrency
	}
	s.sem = make(chan struct{}, conc)
	window := opts.RateWindowSecs
	if window <= 0 {
		window = defaultRateWindowSecs
	}
	s.rates = newRateRing(window)
	s.start = s.clock()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/api/ingest", s.handleIngest)
	s.mux.HandleFunc("/api/summary", s.section(func(m *mergedState) []byte { return m.summary }))
	s.mux.HandleFunc("/api/origins", s.section(func(m *mergedState) []byte { return m.origins }))
	s.mux.HandleFunc("/api/histograms", s.section(func(m *mergedState) []byte { return m.histograms }))
	s.mux.HandleFunc("/api/rates", s.handleRates)
	s.mux.HandleFunc("/api/command", s.handleCommand)
	s.mux.HandleFunc("/api/command/drain", s.handleCommandDrain)
	s.mux.HandleFunc("/api/command/report", s.handleCommandReport)
	s.mux.HandleFunc("/api/command/log", s.handleCommandLog)
	s.mux.HandleFunc("/api/streams", s.handleStreams)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", s.handleDashboard)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// reject refuses a POST and counts it.
func (s *Server) reject(w http.ResponseWriter, code int, msg string) {
	s.Metrics.Rejected.Add(1)
	http.Error(w, msg, code)
}

// handleIngest accepts one frame-aligned batch of a producer's stream.
// Batches carry (stream, seq, instance) headers; a duplicate seq is
// acknowledged without re-applying (the producer is retrying a batch whose
// response was lost), a gap is a permanent 409, and a decode error poisons
// the stream so later batches cannot silently build on corrupt state.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	name := r.Header.Get(trace.HeaderStream)
	if name == "" {
		s.reject(w, http.StatusBadRequest, "missing "+trace.HeaderStream)
		return
	}
	seq, err := strconv.ParseUint(r.Header.Get(trace.HeaderSeq), 10, 64)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad "+trace.HeaderSeq)
		return
	}
	instance := r.Header.Get(trace.HeaderInstance)

	st, code, msg := s.getStream(name, instance, seq)
	if st == nil {
		s.reject(w, code, msg)
		return
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.instance != instance {
		s.reject(w, http.StatusConflict,
			fmt.Sprintf("stream %q owned by instance %q", name, st.instance))
		return
	}
	if st.errMsg != "" {
		s.reject(w, http.StatusBadRequest, "stream poisoned: "+st.errMsg)
		return
	}
	switch {
	case seq < st.nextSeq:
		// Retry of an already-applied batch: acknowledge idempotently.
		s.Metrics.DupPosts.Add(1)
		w.WriteHeader(http.StatusOK)
		return
	case seq > st.nextSeq:
		s.reject(w, http.StatusConflict,
			fmt.Sprintf("sequence gap: got %d want %d", seq, st.nextSeq))
		return
	}

	body, err := readBody(st.body[:0], r.Body, s.maxBody)
	st.body = body[:0]
	if err != nil {
		code := http.StatusBadRequest
		if err == errBodyTooLarge {
			code = http.StatusRequestEntityTooLarge
		}
		s.reject(w, code, err.Error())
		return
	}

	now := s.clock()
	framesBefore := st.dec.Frames()
	var records uint64
	err = st.dec.Feed(body, func(c trace.Chunk) error {
		st.pa.AddChunk(c)
		records += uint64(len(c.Records))
		s.rates.add(now.Unix(), 0, c.Records)
		return nil
	})
	s.rates.add(now.Unix(), uint64(len(body)), nil)
	if err != nil {
		// Chunks decoded before the error are already folded in; poison the
		// stream so nothing more lands on the partial state.
		st.errMsg = err.Error()
		s.gen.Add(1)
		s.reject(w, http.StatusBadRequest, err.Error())
		return
	}

	st.nextSeq = seq + 1
	st.bytes.Add(uint64(len(body)))
	st.records.Add(records)
	st.frames.Add(uint64(st.dec.Frames() - framesBefore))
	st.lastUnix.Store(now.Unix())
	if st.dec.Done() && !st.closed.Swap(true) {
		s.Metrics.StreamsClosed.Add(1)
	}
	s.Metrics.Posts.Add(1)
	s.Metrics.IngestBytes.Add(uint64(len(body)))
	s.Metrics.IngestRecords.Add(records)
	s.Metrics.IngestFrames.Add(uint64(st.dec.Frames() - framesBefore))
	s.gen.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

var errBodyTooLarge = fmt.Errorf("serve: request body exceeds limit")

// readBody reads all of rc into buf (reusing its capacity), failing once the
// size limit is crossed rather than buffering an unbounded body.
func readBody(buf []byte, rc io.Reader, max int64) ([]byte, error) {
	lr := io.LimitReader(rc, max+1)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			if int64(len(buf)) > max {
				return buf, errBodyTooLarge
			}
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// view returns the merged state the query endpoints serve, remerging when
// the cache is stale AND either the server has quiesced (merge immediately:
// the final answer must be exact) or the cadence has elapsed (live view may
// lag by at most MergeEvery).
func (s *Server) view() *mergedState {
	cur := s.merged.Load()
	if cur != nil && cur.gen == s.gen.Load() {
		return cur
	}
	if cur != nil && s.cadence > 0 && s.clock().Sub(cur.at) < s.cadence && !s.allClosed() {
		return cur
	}
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	// Re-check under the lock: a concurrent query may have merged already.
	gen := s.gen.Load()
	if cur := s.merged.Load(); cur != nil && cur.gen == gen {
		return cur
	}
	start := s.clock()
	parts, records := s.orderedPartials()
	rep := s.pipe.MergePartials(parts)
	end := s.clock()
	m := &mergedState{
		gen:        gen,
		at:         end,
		records:    records,
		summary:    rep.SummaryJSON(),
		origins:    rep.OriginsJSON(),
		histograms: rep.HistogramsJSON(),
	}
	s.merged.Store(m)
	s.Metrics.Merges.Add(1)
	s.Metrics.MergeNSLast.Store(uint64(end.Sub(start).Nanoseconds()))
	s.Metrics.MergeNSTotal.Add(uint64(end.Sub(start).Nanoseconds()))
	s.Metrics.MergedRecords.Store(records)
	return m
}

// FinalMerge forces one last merge and reports what the service absorbed —
// the graceful-shutdown log line. After the listener closes no more
// batches can arrive, so the returned view is the run's exact final state.
func (s *Server) FinalMerge() (records uint64, streams int) {
	m := s.view()
	s.mu.Lock()
	streams = len(s.streams)
	s.mu.Unlock()
	return m.records, streams
}

func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// section serves one pre-rendered JSON section of the merged view.
func (s *Server) section(sel func(*mergedState) []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, sel(s.view()))
	}
}

// ratesResponse is the JSON shape of /api/rates.
type ratesResponse struct {
	NowUnix int64        `json:"now_unix"`
	WindowS int          `json:"window_s"`
	Buckets []rateBucket `json:"buckets"`
}

func (s *Server) handleRates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	window := 60
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad window", http.StatusBadRequest)
			return
		}
		window = n
	}
	now := s.clock().Unix()
	buckets := s.rates.window(now, window)
	body, err := json.MarshalIndent(ratesResponse{
		NowUnix: now, WindowS: len(buckets), Buckets: buckets,
	}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, append(body, '\n'))
}

// streamJSON is one row of /api/streams.
type streamJSON struct {
	Name     string  `json:"name"`
	Instance string  `json:"instance"`
	NextSeq  uint64  `json:"next_seq"`
	Bytes    uint64  `json:"bytes"`
	Records  uint64  `json:"records"`
	Frames   uint64  `json:"frames"`
	Closed   bool    `json:"closed"`
	AgeS     float64 `json:"age_s"` // seconds since last accepted batch
	Error    string  `json:"error,omitempty"`
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	now := s.clock().Unix()
	s.mu.Lock()
	sts := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		sts = append(sts, st)
	}
	s.mu.Unlock()
	sort.Slice(sts, func(i, j int) bool { return sts[i].name < sts[j].name })
	rows := make([]streamJSON, 0, len(sts))
	for _, st := range sts {
		st.mu.Lock()
		row := streamJSON{
			Name:     st.name,
			Instance: st.instance,
			NextSeq:  st.nextSeq,
			Bytes:    st.bytes.Load(),
			Records:  st.records.Load(),
			Frames:   st.frames.Load(),
			Closed:   st.closed.Load(),
			Error:    st.errMsg,
		}
		st.mu.Unlock()
		if last := st.lastUnix.Load(); last > 0 && now > last {
			row.AgeS = float64(now - last)
		}
		rows = append(rows, row)
	}
	body, err := json.MarshalIndent(struct {
		Streams []streamJSON `json:"streams"`
	}{rows}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, append(body, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	snap := s.Metrics.Snapshot(s.version, s.clock().Sub(s.start))
	body, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, append(body, '\n'))
}
