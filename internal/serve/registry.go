package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"timerstudy/internal/analysis"
	"timerstudy/internal/trace"
)

// stream is the server-side state for one producer stream: a frame decoder
// (origin table + reused chunk scratch), an incremental analysis shard, and
// the sequence-number protocol that makes retried POSTs idempotent. Memory
// per stream is bounded: one decoder chunk, one reusable body buffer capped
// at the configured max body size, the origin table, and the shard (whose
// arena is proportional to live timers, not records seen).
type stream struct {
	name     string
	instance string

	// mu orders POSTs within the stream; producers send batches serially,
	// so contention here means a retry racing its own original.
	mu      sync.Mutex
	dec     *trace.FrameDecoder
	pa      *analysis.Partial
	nextSeq uint64
	body    []byte // reusable POST body buffer, cap ≤ maxBody+1
	errMsg  string // non-empty once the stream is poisoned by a decode error

	// Read without the stream lock by /api/streams and /api/metrics.
	bytes    atomic.Uint64
	records  atomic.Uint64
	frames   atomic.Uint64
	closed   atomic.Bool
	lastUnix atomic.Int64 // arrival second of the most recent accepted POST
}

// getStream returns the registered stream, creating it when this is the
// stream's first batch (seq 0). A non-zero seq for an unknown name means the
// server restarted or evicted state mid-stream; the producer cannot recover
// by retrying, so it is a permanent 409. The created stream is returned
// unlocked.
func (s *Server) getStream(name, instance string, seq uint64) (*stream, int, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[name]; ok {
		return st, 0, ""
	}
	if seq != 0 {
		return nil, 409, "unknown stream at non-zero sequence (server lost state?)"
	}
	if len(s.streams) >= s.maxStreams {
		return nil, 503, "stream limit reached"
	}
	st := &stream{
		name:     name,
		instance: instance,
		dec:      trace.NewFrameDecoder(),
		pa:       s.pipe.NewPartial(),
	}
	s.streams[name] = st
	s.Metrics.StreamsOpened.Add(1)
	return st, 0, ""
}

// orderedPartials snapshots the stream set in lexicographic name order — the
// deterministic merge order that makes the global report independent of
// arrival and ingestion timing — and returns the total records they have
// absorbed.
func (s *Server) orderedPartials() ([]*analysis.Partial, uint64) {
	s.mu.Lock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	parts := make([]*analysis.Partial, 0, len(names))
	sort.Strings(names)
	var records uint64
	for _, name := range names {
		st := s.streams[name]
		parts = append(parts, st.pa)
		records += st.records.Load()
	}
	s.mu.Unlock()
	return parts, records
}

// allClosed reports whether every registered stream has received its
// counters footer; a server with no streams counts as quiesced (the merge of
// nothing is the empty report).
func (s *Server) allClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.streams {
		if !st.closed.Load() {
			return false
		}
	}
	return true
}
