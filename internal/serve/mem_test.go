package serve

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"timerstudy/internal/sim"
	"timerstudy/internal/trace"
)

// TestServeBoundedMemoryUnderIngest is the service-side bounded-memory
// acceptance test (the ingest analogue of analysis's
// TestPipelineBoundedMemoryOverStream): 2M records over 8 concurrent
// producer streams must land in server heap growth that tracks the
// per-connection budget — decoder chunk + body buffer + shard live state —
// not the record count. The streamed bytes are ~80 MB; the allowed growth
// is a quarter of that.
func TestServeBoundedMemoryUnderIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("streams ~80 MB through the ingest path")
	}
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}

	const (
		nstreams   = 8
		recsPer    = 250_000 // 8 × 250k = 2M records
		ntimers    = 512
		norigins   = 64
		budgetFrac = 4 // heap growth must stay under wireBytes/budgetFrac
	)

	clk := newFakeClock()
	srv := New(Options{Pipeline: testPipeline(), Clock: clk.now})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	var wg sync.WaitGroup
	errs := make(chan error, nstreams)
	for s := 0; s < nstreams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sink, err := trace.NewHTTPSink(ts.URL, fmt.Sprintf("mem-%02d", s),
				trace.HTTPSinkOptions{Instance: "mem"})
			if err != nil {
				errs <- err
				return
			}
			origins := make([]uint32, norigins)
			for i := range origins {
				origins[i] = sink.Origin(fmt.Sprintf("kernel/gen-%d", i))
			}
			ns := uint64(s+1) << 48
			for i := 0; i < recsPer; i += 2 {
				id := ns | uint64(i/2)%ntimers
				o := origins[(uint64(i/2)%ntimers)%norigins]
				ti := sim.Time(i) * sim.Time(sim.Millisecond)
				sink.Log(trace.Record{T: ti, TimerID: id, Op: trace.OpSet,
					Origin: o, Timeout: int64(10 * sim.Millisecond)})
				sink.Log(trace.Record{T: ti + sim.Time(10*sim.Millisecond),
					TimerID: id, Op: trace.OpExpire, Origin: o})
			}
			if err := sink.Close(); err != nil {
				errs <- err
				return
			}
			if st := sink.Stats(); st.DroppedBatches != 0 {
				errs <- fmt.Errorf("stream %d dropped %d batches", s, st.DroppedBatches)
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// One merge so the cached view's cost counts against the budget too.
	httpGet(t, ts.URL+"/api/summary")

	runtime.GC()
	runtime.ReadMemStats(&m1)

	wireBytes := srv.Metrics.IngestBytes.Load()
	if wireBytes < uint64(nstreams*recsPer*trace.RecordSize) {
		t.Fatalf("ingested only %d bytes", wireBytes)
	}
	if got := srv.Metrics.IngestRecords.Load(); got != nstreams*recsPer {
		t.Fatalf("ingested %d records, want %d", got, nstreams*recsPer)
	}

	growth := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	budget := int64(wireBytes) / budgetFrac
	t.Logf("streamed %d MB over %d streams; heap growth %d KB (budget %d KB)",
		wireBytes>>20, nstreams, growth>>10, budget>>10)
	if growth > budget {
		t.Fatalf("server heap grew %d bytes; budget %d (streamed %d)",
			growth, budget, wireBytes)
	}
}
