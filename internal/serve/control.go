package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// The command hub relays steering between the dashboard and the simulation
// driver. The service never touches fleet state itself — determinism lives
// in internal/control, which only the process that owns the simulation
// loop may drive — so the hub is a mailbox with three sides:
//
//   - Browsers/curl POST /api/command to stage a request and get a ticket.
//   - The driver (experiments -poll) POSTs /api/command/drain at each
//     window barrier, taking every staged request, and reports decisions
//     plus its latest control snapshot via POST /api/command/report.
//   - Anyone GETs /api/command/log for the decided results, the driver's
//     snapshot, and its recent patch feed.
//
// Commands are strings here (kind and host by name): the hub cannot
// validate against a fleet it does not have, and keeping it untyped means
// serve does not import the control plane. Validation happens where it is
// authoritative — control.Plane.Enqueue in the driver — and the verdict
// travels back as a CommandResult.

// CommandRequest is the POST /api/command body.
type CommandRequest struct {
	// Kind is the command name (control.Kind.String(): "spike", "kill",
	// "restart", "policy", "coalesce", "queue").
	Kind string `json:"kind"`
	// Host is the target host name, or "*" for fleet-wide.
	Host string `json:"host"`
	// Arg is the kind-specific operand (spike factor, policy id,
	// coalescing window in nanoseconds, queue kind).
	Arg int64 `json:"arg"`
	// DurMS bounds the effect in virtual milliseconds, for kinds that
	// expire.
	DurMS int64 `json:"dur_ms"`
	// Window is the fleet window boundary to apply at; 0 means the next
	// boundary.
	Window uint64 `json:"window"`
}

// StagedCommand is one hub entry awaiting the driver.
type StagedCommand struct {
	Ticket uint64 `json:"ticket"`
	CommandRequest
}

// CommandResult is the driver's verdict on one staged command.
type CommandResult struct {
	Ticket   uint64 `json:"ticket"`
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	// Seq and Window are the control plane's stamps for accepted commands.
	Seq    uint64 `json:"seq,omitempty"`
	Window uint64 `json:"window,omitempty"`
}

// ControlReport is the POST /api/command/report body: decisions plus the
// driver's current view, stored verbatim (the snapshot/patch shapes belong
// to the control package and the hub does not interpret them).
type ControlReport struct {
	Results  []CommandResult `json:"results,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	Patches  json.RawMessage `json:"patches,omitempty"`
}

// hub is the staging state; one per Server.
type hub struct {
	mu       sync.Mutex
	ticket   uint64
	staged   []StagedCommand
	results  []CommandResult // ring of the newest decisions
	snapshot json.RawMessage
	patches  json.RawMessage
	reports  uint64
}

// handleCommand stages one steering request.
func (s *Server) handleCommand(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req CommandRequest
	if err := json.NewDecoder(limitBody(w, r)).Decode(&req); err != nil {
		http.Error(w, "bad command JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Kind == "" {
		http.Error(w, "command needs a kind", http.StatusBadRequest)
		return
	}
	h := &s.hub
	h.mu.Lock()
	if len(h.staged) >= maxStagedCommands {
		h.mu.Unlock()
		http.Error(w, "command backlog full (no driver polling?)", http.StatusServiceUnavailable)
		return
	}
	h.ticket++
	sc := StagedCommand{Ticket: h.ticket, CommandRequest: req}
	h.staged = append(h.staged, sc)
	h.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
	writeJSONValue(w, struct {
		Ticket uint64 `json:"ticket"`
	}{sc.Ticket})
}

// handleCommandDrain hands the driver every staged command, emptying the
// backlog. POST: draining mutates the hub.
func (s *Server) handleCommandDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	h := &s.hub
	h.mu.Lock()
	out := h.staged
	h.staged = nil
	h.mu.Unlock()
	if out == nil {
		out = []StagedCommand{}
	}
	writeJSONValue(w, struct {
		Commands []StagedCommand `json:"commands"`
	}{out})
}

// handleCommandReport stores the driver's decisions and latest view.
func (s *Server) handleCommandReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var rep ControlReport
	if err := json.NewDecoder(limitBody(w, r)).Decode(&rep); err != nil {
		http.Error(w, "bad report JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	h := &s.hub
	h.mu.Lock()
	h.results = append(h.results, rep.Results...)
	if over := len(h.results) - maxCommandResults; over > 0 {
		h.results = append(h.results[:0:0], h.results[over:]...)
	}
	if len(rep.Snapshot) > 0 {
		h.snapshot = rep.Snapshot
	}
	if len(rep.Patches) > 0 {
		h.patches = rep.Patches
	}
	h.reports++
	h.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleCommandLog serves the decided results (optionally ?after=TICKET),
// the driver's latest snapshot and its recent patches.
func (s *Server) handleCommandLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	after := uint64(0)
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad after", http.StatusBadRequest)
			return
		}
		after = n
	}
	h := &s.hub
	h.mu.Lock()
	results := make([]CommandResult, 0, len(h.results))
	for _, res := range h.results {
		if res.Ticket > after {
			results = append(results, res)
		}
	}
	resp := struct {
		Staged   int             `json:"staged"`
		Reports  uint64          `json:"reports"`
		Results  []CommandResult `json:"results"`
		Snapshot json.RawMessage `json:"snapshot,omitempty"`
		Patches  json.RawMessage `json:"patches,omitempty"`
	}{len(h.staged), h.reports, results, h.snapshot, h.patches}
	h.mu.Unlock()
	writeJSONValue(w, resp)
}

// limitBody bounds a control-endpoint body: steering payloads are tiny,
// and anything near the trace-batch limit is abuse, not steering.
func limitBody(w http.ResponseWriter, r *http.Request) io.Reader {
	return http.MaxBytesReader(w, r.Body, maxCommandBody)
}

// writeJSONValue marshals v with the API's indentation contract.
func writeJSONValue(w http.ResponseWriter, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, append(body, '\n'))
}
